/**
 * @file
 * OC-PMEM reserved-area layout for SnG's control blocks.
 *
 * Auto-Stop serializes three kinds of state into a reserved region
 * at the top of OC-PMEM:
 *
 *  - BCB (bootloader control block): the commit flag, the machine
 *    exception program counter (MEPC) Go re-executes from, registers
 *    invisible to the kernel, the master's register file, and the
 *    Start-Gap wear-leveler registers.
 *  - PCB dump: per-process architectural state (Drive-to-Idle stores
 *    each task's registers on its PCB; the PCBs themselves live in
 *    OC-PMEM, so this dump is their authoritative persistent form).
 *  - DCB dump: per-device context written during device stop.
 */

#ifndef LIGHTPC_PECOS_LAYOUT_HH
#define LIGHTPC_PECOS_LAYOUT_HH

#include <cstdint>

#include "kernel/process.hh"
#include "mem/request.hh"
#include "psm/start_gap.hh"

namespace lightpc::pecos
{

/** Magic value marking a valid committed EP-cut. */
constexpr std::uint64_t epCutMagic = 0x4c69676874504321ULL;  // LightPC!

/** Serialized bootloader control block. */
struct Bcb
{
    std::uint64_t magic = 0;      ///< epCutMagic when committed
    std::uint64_t mepc = 0;       ///< resume program counter
    std::uint64_t machineRegs[8] = {};  ///< kernel-invisible registers
    kernel::RegisterFile masterRegs;
    psm::StartGapState wearState;
    std::uint32_t cores = 0;
    std::uint32_t processCount = 0;
    std::uint32_t deviceCount = 0;
    std::uint32_t pad = 0;
};

/** One serialized PCB entry. */
struct PcbEntry
{
    std::uint32_t pid = 0;
    std::uint32_t state = 0;  ///< kernel::TaskState
    std::int32_t cpu = -1;
    std::uint32_t pad = 0;
    kernel::RegisterFile regs;
};

/** One serialized DCB entry. */
struct DcbEntry
{
    std::uint64_t cookie = 0;
    std::uint64_t contextBytes = 0;
};

/** Placement of the reserved area within OC-PMEM. */
struct ReservedLayout
{
    mem::Addr base = 0;

    explicit ReservedLayout(std::uint64_t pmem_capacity)
    {
        // The top 16 MB of OC-PMEM is reserved for SnG.
        base = pmem_capacity - (std::uint64_t(16) << 20);
    }

    mem::Addr bcbAddr() const { return base; }
    mem::Addr pcbAddr() const { return base + 4096; }

    mem::Addr
    dcbAddr() const
    {
        return base + (std::uint64_t(4) << 20);
    }

    /**
     * Device payload region: the DCB entry array is capped at 64 KB;
     * context images and MMIO copies are packed after it, in dpm
     * order. Stop writes here and Go reads back from the same
     * offsets.
     */
    mem::Addr dcbPayloadAddr() const { return dcbAddr() + (64 << 10); }
};

} // namespace lightpc::pecos

#endif // LIGHTPC_PECOS_LAYOUT_HH
