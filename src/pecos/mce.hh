/**
 * @file
 * Machine-check escalation: PSM containment faults into PecOS.
 *
 * When the PSM's ECC tiers give up on a codeword it sets the error
 * containment bit and the host takes a machine-check exception.
 * Section V-A notes "the MCE handler can be implemented in various
 * ways"; this module implements both arms of psm::McePolicy:
 *
 *  - ResetColdBoot (the paper's current version): OC-PMEM is wiped
 *    through the reset port and the system cold-boots. Everything is
 *    lost, but nothing wrong is ever consumed.
 *
 *  - Contain: the handler maps the faulting physical address to the
 *    owning process, kills that process, and retires the faulting
 *    line's physical slot so the address range stays usable. The
 *    rest of the system — including a subsequent SnG stop/resume —
 *    carries on. Faults in unowned (kernel) memory cannot be blamed
 *    on a killable task and escalate to the cold-boot arm.
 */

#ifndef LIGHTPC_PECOS_MCE_HH
#define LIGHTPC_PECOS_MCE_HH

#include <cstdint>
#include <vector>

#include "kernel/kernel.hh"
#include "psm/psm.hh"

namespace lightpc::pecos
{

/** What the handler did about one machine check. */
enum class MceAction
{
    /** Owning task killed; system continues. */
    Contained,
    /** OC-PMEM reset; the caller must cold-boot the system. */
    ColdBoot,
};

/** Outcome of one machine-check exception. */
struct MceOutcome
{
    MceAction action = MceAction::ColdBoot;
    /** PID killed (Contained only; 0 when none). */
    std::uint32_t killedPid = 0;
    /** The faulting line's slot was moved to a spare. */
    bool lineRetired = false;
};

/** Handler counters. */
struct MceStats
{
    std::uint64_t raised = 0;        ///< machine checks taken
    std::uint64_t contained = 0;     ///< resolved by killing a task
    std::uint64_t coldBoots = 0;     ///< resolved by OC-PMEM reset
    std::uint64_t tasksKilled = 0;
    std::uint64_t linesRetired = 0;  ///< retirements from the handler
    std::uint64_t retireFailures = 0; ///< spare pool was exhausted
    std::uint64_t kernelEscalations = 0; ///< unowned fault -> reset
};

/**
 * The PecOS machine-check handler.
 *
 * Ownership of physical ranges is registered explicitly (the
 * simulator has no page tables): campaigns and tests map each
 * process's working set once, and the handler resolves faulting
 * addresses against those ranges.
 */
class MceHandler
{
  public:
    MceHandler(kernel::Kernel &kernel, psm::Psm &psm);

    /** Declare [base, base+bytes) owned by @p pid. */
    void registerOwner(mem::Addr base, std::uint64_t bytes,
                       std::uint32_t pid);

    /** Drop every range owned by @p pid (process exit). */
    void unregisterOwner(std::uint32_t pid);

    /** PID owning @p addr, or 0 for unowned (kernel) memory. */
    std::uint32_t ownerOf(mem::Addr addr) const;

    /**
     * Take the machine check for a containment fault at @p addr.
     * Applies the PSM's configured policy; see the file comment for
     * the two arms. Under ColdBoot OC-PMEM has been wiped when this
     * returns — the caller is responsible for the cold boot itself
     * (rebuilding kernel state, as platform::System does).
     */
    MceOutcome handle(mem::Addr addr, Tick when);

    const MceStats &stats() const { return _stats; }

  private:
    /** The cold-boot arm: wipe OC-PMEM, count the reset. */
    MceOutcome coldBoot();

    struct Range
    {
        mem::Addr base;
        std::uint64_t bytes;
        std::uint32_t pid;
    };

    kernel::Kernel &kern;
    psm::Psm &psm;
    std::vector<Range> ranges;
    MceStats _stats;
};

} // namespace lightpc::pecos

#endif // LIGHTPC_PECOS_MCE_HH
