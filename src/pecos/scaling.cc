#include "pecos/scaling.hh"

#include "kernel/kernel.hh"
#include "mem/backing_store.hh"
#include "psm/psm.hh"

namespace lightpc::pecos
{

ScalingResult
simulateWorstCaseStop(std::uint32_t cores, std::uint64_t cache_bytes,
                      std::uint64_t seed)
{
    kernel::KernelParams kparams;
    kparams.cores = cores;
    kparams.busy = true;
    kparams.seed = seed;
    kernel::Kernel kern(kparams);
    kern.devices() = kernel::DeviceManager::makeWorstCase(seed);

    psm::Psm psm;
    mem::BackingStore pmem;

    Sng sng(kern, psm, pmem, {});
    // Every cacheline dirty, spread evenly over the cores.
    sng.setFallbackDirtyLines(
        cache_bytes / mem::cacheLineBytes / cores);

    ScalingResult result;
    result.cores = cores;
    result.cacheBytes = cache_bytes;
    result.report = sng.stop(0);
    return result;
}

} // namespace lightpc::pecos
