#include "pecos/sng.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace lightpc::pecos
{

const char *
stopSubPhaseName(StopSubPhase phase)
{
    switch (phase) {
      case StopSubPhase::None: return "none";
      case StopSubPhase::DriveToIdle: return "drive-to-idle";
      case StopSubPhase::DeviceContextSave: return "device-context-save";
      case StopSubPhase::MasterCacheFlush: return "master-cache-flush";
      case StopSubPhase::WorkerOffline: return "worker-offline";
      case StopSubPhase::BootloaderDump: return "bootloader-dump";
      case StopSubPhase::CommitWindow: return "commit-window";
      case StopSubPhase::PostCommit: return "post-commit";
    }
    return "?";
}

const char *
goSubPhaseName(GoSubPhase phase)
{
    switch (phase) {
      case GoSubPhase::None: return "none";
      case GoSubPhase::BcbRestore: return "bcb-restore";
      case GoSubPhase::CoreBringup: return "core-bringup";
      case GoSubPhase::DeviceRestore: return "device-restore";
      case GoSubPhase::ProcessThaw: return "process-thaw";
      case GoSubPhase::CommitClear: return "commit-clear";
      case GoSubPhase::Complete: return "complete";
    }
    return "?";
}

Sng::Sng(kernel::Kernel &kernel, psm::Psm &psm_in,
         mem::BackingStore &pmem_in,
         std::vector<cache::L1Cache *> caches_in, const SngCosts &costs)
    : kern(kernel),
      psm(psm_in),
      pmem(pmem_in),
      caches(std::move(caches_in)),
      _costs(costs),
      layout(psm_in.capacityBytes()),
      port(psm_in),
      timed(port, &pmem_in)
{
}

bool
Sng::hasCommit() const
{
    return pmem.readValue<std::uint64_t>(layout.bcbAddr()) == epCutMagic;
}

void
Sng::invalidateCommit(Tick when)
{
    pmem.setWriteClock(when);
    pmem.writeValue(layout.bcbAddr(), std::uint64_t(0));
}

Tick
Sng::driveToIdle(Tick when, StopReport &report)
{
    using kernel::TaskState;

    // The core seizing the power-event interrupt becomes master and
    // sets the system-wide persistent flag.
    Tick t = when + _costs.setPersistentFlag;
    kern.setPersistentFlag(true);

    const std::uint32_t cores = kern.cores();
    std::vector<Tick> core_done(cores, t);

    // The master traverses every alive PCB derived from init; the
    // walk streams IPIs to workers, so it overlaps with their work.
    const Tick walk_done =
        t + _costs.pcbWalkPerTask * kern.processCount();

    // Wake sleepers and spread them over the cores by load.
    std::vector<std::size_t> load(cores);
    for (std::uint32_t c = 0; c < cores; ++c)
        load[c] = kern.runQueue(c).size();

    auto sleepers = kern.sleepingProcesses();
    report.sleepersWoken = sleepers.size();
    for (kernel::Process *proc : sleepers) {
        const std::uint32_t target = static_cast<std::uint32_t>(
            std::min_element(load.begin(), load.end())
            - load.begin());
        ++load[target];
        proc->setCpu(static_cast<int>(target));
        proc->setSignalPending(true);

        // IPI to the worker, fake signal handling from the kernel
        // stack, any pending work, then a context switch out into
        // TASK_UNINTERRUPTIBLE.
        Tick cost = _costs.ipi;
        if (!proc->isKernelThread())
            cost += _costs.fakeSignal;
        cost += _costs.pendingWorkItem * proc->pendingWork();
        cost += _costs.contextSwitch + _costs.parkTask;
        core_done[target] += cost;

        proc->setPendingWork(0);
        proc->setSignalPending(false);
        proc->setNeedResched(false);
        proc->setState(TaskState::Uninterruptible);
        ++report.tasksParked;
    }

    // Park everything already running or queued on each core.
    for (std::uint32_t c = 0; c < cores; ++c) {
        auto &queue = kern.runQueue(c);
        for (kernel::Process *proc : queue) {
            Tick cost = 0;
            if (!proc->isKernelThread())
                cost += _costs.fakeSignal;
            cost += _costs.pendingWorkItem * proc->pendingWork();
            cost += _costs.contextSwitch + _costs.parkTask;
            core_done[c] += cost;
            proc->setPendingWork(0);
            proc->setNeedResched(false);
            proc->setState(TaskState::Uninterruptible);
            ++report.tasksParked;
        }
        queue.clear();
    }

    // Serialize every PCB into the reserved area. The architectural
    // state was stored on the PCB during each context switch (cost
    // already charged above); this is its persistent image. Each
    // entry lands as the master's walk reaches it, so a power cut
    // mid-walk leaves exactly the walked prefix durable.
    mem::Addr addr = layout.pcbAddr();
    Tick pcb_t = t;
    for (std::size_t i = 0; i < kern.processCount(); ++i) {
        const kernel::Process &proc = kern.process(i);
        PcbEntry entry;
        entry.pid = proc.pid();
        entry.state = static_cast<std::uint32_t>(proc.state());
        entry.cpu = proc.cpu();
        entry.regs = proc.regs();
        pcb_t += _costs.pcbWalkPerTask;
        pmem.setWriteClock(pcb_t);
        pmem.writeValue(addr, entry);
        addr += sizeof(PcbEntry);
        report.controlBlockBytes += sizeof(PcbEntry);
    }

    // Each core finally places its idle task and synchronizes.
    Tick done = walk_done;
    for (std::uint32_t c = 0; c < cores; ++c)
        done = std::max(done, core_done[c] + _costs.idlePlacement);
    return done + _costs.barrier;
}

Tick
Sng::autoStopDevices(Tick when, StopReport &report)
{
    const double quiesce = kern.params().busy
        ? _costs.busyQuiesceFactor : _costs.idleQuiesceFactor;

    Tick t = when;
    mem::Addr dcb_addr = layout.dcbAddr();
    mem::Addr payload_addr = layout.dcbPayloadAddr();
    for (const auto &dev : kern.devices().list()) {
        const kernel::DpmCosts &costs = dev->costs();
        // dpm_prepare / dpm_suspend / dpm_suspend_noirq in list
        // order (dependencies).
        t += costs.prepare;
        t += static_cast<Tick>(
            static_cast<double>(costs.suspend) * quiesce);
        t += costs.suspendNoirq;

        // Device context into its DCB.
        DcbEntry entry;
        entry.cookie = dev->contextCookie();
        entry.contextBytes = dev->contextBytes();
        pmem.setWriteClock(t);
        pmem.writeValue(dcb_addr, entry);
        dcb_addr += sizeof(DcbEntry);
        if (kernel::DeviceContext *ctx = dev->context()) {
            // Real driver state (descriptor rings, queue heads):
            // serialize the image through the durability cursor, so
            // what Go resurrects is exactly what beat the rails.
            ctxScratch.clear();
            ctx->saveContext(ctxScratch);
            if (ctxScratch.size() != dev->contextBytes())
                panic("device '", dev->name(), "' context image is ",
                      ctxScratch.size(), " bytes, declared ",
                      dev->contextBytes());
            t = timed.writeBytes(t, payload_addr, ctxScratch.data(),
                                 ctxScratch.size());
            ++report.contextImagesSaved;
        } else {
            t = timed.writeSpan(t, payload_addr, dev->contextBytes());
        }
        payload_addr += dev->contextBytes();
        report.controlBlockBytes += sizeof(DcbEntry)
            + dev->contextBytes();

        // Peripheral MMIO regions are not on OC-PMEM; copy them.
        const std::uint64_t mmio_lines =
            (dev->mmioBytes() + 63) / 64;
        t += mmio_lines * _costs.mmioReadPer64B;
        t = timed.writeSpan(t, payload_addr, dev->mmioBytes());
        payload_addr += dev->mmioBytes();
        report.controlBlockBytes += dev->mmioBytes();

        dev->setSuspended(true);
        ++report.devicesSuspended;
    }
    report.ctxSaveDone = t;

    // The device-stop phase ends with the master's cache flush.
    if (!caches.empty() && caches[0]) {
        report.dirtyLinesFlushed += caches[0]->dirtyLines();
        t = caches[0]->flushAll(t);
    } else {
        report.dirtyLinesFlushed += fallbackDirtyLines;
        t = timed.writeSpan(t, layout.base,
                            fallbackDirtyLines * mem::cacheLineBytes);
    }
    return t;
}

Tick
Sng::drawEpCut(Tick when, StopReport &report)
{
    const std::uint32_t cores = kern.cores();

    // Clean __cpu_up_task/stack_pointer so Go controls the bring-up
    // sequence instead of finding stale idle-task pointers.
    Tick t = when + Tick(cores) * _costs.cleanPointersPerCore;

    // Workers offline one by one: IPI, cache dump, fence, report.
    for (std::uint32_t c = 1; c < cores; ++c) {
        t += _costs.ipi;
        if (c < caches.size() && caches[c]) {
            report.dirtyLinesFlushed += caches[c]->dirtyLines();
            t = caches[c]->flushAll(t);
        } else {
            report.dirtyLinesFlushed += fallbackDirtyLines;
            t = timed.writeSpan(t, layout.base,
                                fallbackDirtyLines
                                    * mem::cacheLineBytes);
        }
        t += _costs.perWorkerOffline;
    }
    report.workerOfflineDone = t;

    // Master: exception into the bootloader, dump kernel-invisible
    // registers + wear-leveler state into the BCB, record the MEPC,
    // clear the persistent flag, and store the commit. Executed
    // uncached from the bootloader, hence the large constant.
    t += _costs.masterBootloaderConst;

    Bcb bcb;
    bcb.magic = 0;  // the commit store comes last, alone
    bcb.mepc = 0xffffffff80000042ULL;  // kernel-side Go entry
    for (std::size_t i = 0; i < std::size(bcb.machineRegs); ++i)
        bcb.machineRegs[i] = 0xc0de0000 + i;
    bcb.masterRegs = kern.process(0).regs();
    bcb.wearState = psm.saveWearState();
    bcb.cores = cores;
    bcb.processCount =
        static_cast<std::uint32_t>(kern.processCount());
    bcb.deviceCount =
        static_cast<std::uint32_t>(kern.devices().count());

    // BCB body first, with a zero magic: a power cut tearing this
    // write leaves no valid commit behind.
    t = timed.writeBytes(t, layout.bcbAddr(), &bcb, sizeof(Bcb));
    report.controlBlockBytes += sizeof(Bcb);

    kern.setPersistentFlag(false);

    // Memory synchronization: no outstanding request may remain in
    // the PSM or the row buffers before the commit is stored.
    t = psm.flush(t);

    // The commit itself: one atomic 8-byte magic store, issued only
    // after everything it covers is quiescent. The EP-cut exists iff
    // this store beat the rails.
    report.commitStart = t;
    t = timed.writeValue(t, layout.bcbAddr(), epCutMagic);
    report.commitAt = t;
    t = psm.flush(t);
    return t;
}

StopReport
Sng::stop(Tick when, Tick holdup)
{
    StopReport report;
    report.start = when;

    // A finite hold-up is a power cut at when + holdup. Arm the
    // backing store's durability cursor so that *every* byte written
    // after the rails fall out of specification — PCB/DCB prefixes,
    // payloads, the BCB, and the commit — is dropped or torn, not
    // just the commit magic. Campaigns that armed a cut themselves
    // (fault::FaultInjector) take precedence.
    const bool arm_here = holdup != maxTick && !pmem.powerCutArmed();
    if (arm_here)
        pmem.armPowerCut(when + holdup,
                         /*torn_seed=*/0x746f726eULL ^ when ^ holdup);

    report.processStopDone = driveToIdle(when, report);
    report.deviceStopDone =
        autoStopDevices(report.processStopDone, report);
    report.offlineDone = drawEpCut(report.deviceStopDone, report);

    if (pmem.powerCutArmed()) {
        report.cutTick = pmem.powerCutTick();
        report.commitFailed = report.commitAt >= report.cutTick;
        report.writesDropped = pmem.cutStats().droppedWrites;
        report.writesTorn = pmem.cutStats().tornWrites;

        const Tick cut = report.cutTick;
        if (cut >= report.commitAt)
            report.cutSubPhase = StopSubPhase::PostCommit;
        else if (cut >= report.commitStart)
            report.cutSubPhase = StopSubPhase::CommitWindow;
        else if (cut >= report.workerOfflineDone)
            report.cutSubPhase = StopSubPhase::BootloaderDump;
        else if (cut >= report.deviceStopDone)
            report.cutSubPhase = StopSubPhase::WorkerOffline;
        else if (cut >= report.ctxSaveDone)
            report.cutSubPhase = StopSubPhase::MasterCacheFlush;
        else if (cut >= report.processStopDone)
            report.cutSubPhase = StopSubPhase::DeviceContextSave;
        else
            report.cutSubPhase = StopSubPhase::DriveToIdle;
    }
    if (arm_here)
        pmem.disarmPowerCut();
    return report;
}

GoReport
Sng::resume(Tick when)
{
    using kernel::TaskState;

    GoReport report;
    report.start = when;

    // Bootloader: is this a power recovery or a cold boot?
    Tick t = when + _costs.commitCheck;
    Bcb bcb = pmem.readValue<Bcb>(layout.bcbAddr());
    if (bcb.magic != epCutMagic) {
        report.coldBoot = true;
        report.bcbRestored = report.coresUp = report.devicesResumed =
            report.thawDone = report.commitClearAt = report.done = t;
        if (pmem.powerCutArmed())
            report.cutTick = pmem.powerCutTick();
        return report;
    }

    // Restore bootloader/kernel registers and the wear-leveler.
    t += _costs.bcbRestore;
    t = timed.readSpan(t, layout.bcbAddr(), sizeof(Bcb));
    psm.restoreWearState(bcb.wearState);
    kern.process(0).regs() = bcb.masterRegs;
    report.bcbRestored = t;

    // Power up the workers one by one; they spin on the cleaned
    // kernel task pointers until the master places idle tasks.
    const std::uint32_t cores = kern.cores();
    for (std::uint32_t c = 1; c < cores; ++c)
        t += _costs.powerUpWorker + _costs.ipi;
    report.coresUp = t;

    // Revive devices in inverse dpm order: dpm_resume_noirq,
    // dpm_resume, dpm_complete, plus DCB reads and MMIO restores.
    // The payload offsets mirror autoStopDevices exactly: context
    // image then MMIO copy per device, packed after the DCB array.
    const auto &devices = kern.devices().list();
    std::vector<mem::Addr> payload_off(devices.size());
    {
        mem::Addr off = layout.dcbPayloadAddr();
        report.payloadBase = off;
        for (std::size_t i = 0; i < devices.size(); ++i) {
            payload_off[i] = off;
            off += devices[i]->contextBytes()
                + devices[i]->mmioBytes();
        }
        report.payloadEnd = off;
    }
    mem::Addr dcb_addr = layout.dcbAddr()
        + devices.size() * sizeof(DcbEntry);
    for (std::size_t i = devices.size(); i-- > 0;) {
        kernel::Device &dev = *devices[i];
        dcb_addr -= sizeof(DcbEntry);
        const DcbEntry entry = pmem.readValue<DcbEntry>(dcb_addr);
        // The volatile-side cookie is garbage after a real power
        // loss; the DCB copy is authoritative.
        dev.setContextCookie(entry.cookie);

        const kernel::DpmCosts &costs = dev.costs();
        t += costs.resumeNoirq + costs.resume + costs.complete;
        t = timed.readSpan(t, dcb_addr, sizeof(DcbEntry));
        // Driver context from the payload region where Auto-Stop
        // serialized it (not from the DCB entry array).
        if (kernel::DeviceContext *ctx = dev.context()) {
            // The volatile rings are garbage after a real power
            // loss; the durable DCB image is authoritative.
            ctxScratch.resize(dev.contextBytes());
            t = timed.readBytes(t, payload_off[i], ctxScratch.data(),
                                ctxScratch.size());
            ctx->restoreContext(ctxScratch.data(), ctxScratch.size());
            ++report.contextImagesRestored;
        } else {
            t = timed.readSpan(t, payload_off[i], dev.contextBytes());
        }
        // The saved MMIO image: read back from OC-PMEM, then
        // replayed into the peripheral with uncached stores.
        t = timed.readSpan(t, payload_off[i] + dev.contextBytes(),
                           dev.mmioBytes());
        const std::uint64_t mmio_lines = (dev.mmioBytes() + 63) / 64;
        t += mmio_lines * _costs.mmioReadPer64B;
        report.payloadBytesRead +=
            dev.contextBytes() + dev.mmioBytes();
        dev.setSuspended(false);
        ++report.devicesRevived;
    }
    report.devicesResumed = t;

    // Restore every PCB from OC-PMEM and reschedule: kernel tasks
    // first, then user tasks, flipping TASK_UNINTERRUPTIBLE back to
    // TASK_NORMAL and rebuilding the per-core run queues.
    mem::Addr addr = layout.pcbAddr();
    std::vector<PcbEntry> entries(kern.processCount());
    for (auto &entry : entries) {
        entry = pmem.readValue<PcbEntry>(addr);
        addr += sizeof(PcbEntry);
    }

    for (int pass = 0; pass < 2; ++pass) {
        for (std::size_t i = 0; i < kern.processCount(); ++i) {
            kernel::Process &proc = kern.process(i);
            const bool kernel_pass = pass == 0;
            if (proc.isKernelThread() != kernel_pass)
                continue;
            const PcbEntry &entry = entries[i];
            if (entry.pid != proc.pid())
                warn("PCB order mismatch for pid ", proc.pid());
            proc.regs() = entry.regs;
            if (static_cast<TaskState>(entry.state)
                == TaskState::Uninterruptible) {
                proc.setState(TaskState::Runnable);
                std::uint32_t cpu = entry.cpu < 0
                    ? 0 : static_cast<std::uint32_t>(entry.cpu)
                        % cores;
                proc.setCpu(static_cast<int>(cpu));
                kern.runQueue(cpu).push_back(&proc);
                t += _costs.scheduleTask;
                ++report.tasksScheduled;
            }
        }
    }
    t += Tick(cores) * _costs.tlbFlushPerCore;
    report.thawDone = t;

    // Clear the commit: the next boot without a new EP-cut is cold.
    // This atomic store is the resume's linearization point — if a
    // power cut drops it, the durable EP-cut stays valid and the
    // next boot re-runs this exact Go (resume is idempotent because
    // everything before this line only *reads* OC-PMEM).
    t = timed.writeValue(t, layout.bcbAddr(), std::uint64_t(0));
    report.commitClearAt = t;

    report.done = t;

    if (pmem.powerCutArmed()) {
        report.cutTick = pmem.powerCutTick();
        report.interrupted = report.commitClearAt >= report.cutTick;

        // The commit-clear store completes at done; it is durable
        // (the resume converged) only when the cut is strictly
        // after it, so Complete matches !interrupted exactly.
        const Tick cut = report.cutTick;
        if (cut > report.done)
            report.cutSubPhase = GoSubPhase::Complete;
        else if (cut >= report.thawDone)
            report.cutSubPhase = GoSubPhase::CommitClear;
        else if (cut >= report.devicesResumed)
            report.cutSubPhase = GoSubPhase::ProcessThaw;
        else if (cut >= report.coresUp)
            report.cutSubPhase = GoSubPhase::DeviceRestore;
        else if (cut >= report.bcbRestored)
            report.cutSubPhase = GoSubPhase::CoreBringup;
        else
            report.cutSubPhase = GoSubPhase::BcbRestore;
    }
    return report;
}

AbortReport
Sng::abortStop(Tick when)
{
    using kernel::TaskState;

    AbortReport report;
    report.start = when;

    // Devices revive in inverse dpm order from their *live* volatile
    // state: the rails never fell, so nothing was lost and no DCB
    // payload read is needed.
    Tick t = when;
    const auto &devices = kern.devices().list();
    for (std::size_t i = devices.size(); i-- > 0;) {
        kernel::Device &dev = *devices[i];
        if (!dev.suspended())
            continue;
        const kernel::DpmCosts &costs = dev.costs();
        t += costs.resumeNoirq + costs.resume + costs.complete;
        dev.setSuspended(false);
        ++report.devicesRevived;
    }
    report.devicesResumed = t;

    // Parked tasks flip straight back onto their run queues; their
    // registers still live in the (never powered-down) PCBs.
    const std::uint32_t cores = kern.cores();
    for (std::size_t i = 0; i < kern.processCount(); ++i) {
        kernel::Process &proc = kern.process(i);
        if (proc.state() != TaskState::Uninterruptible)
            continue;
        proc.setState(TaskState::Runnable);
        const std::uint32_t cpu = proc.cpu() < 0
            ? 0 : static_cast<std::uint32_t>(proc.cpu()) % cores;
        proc.setCpu(static_cast<int>(cpu));
        kern.runQueue(cpu).push_back(&proc);
        t += _costs.scheduleTask;
        ++report.tasksUnparked;
    }

    kern.setPersistentFlag(false);

    // An EP-cut the aborted Stop already committed describes a
    // machine state the resumed execution immediately diverges from;
    // leaving it would let a later cold boot resurrect a stale past.
    if (hasCommit()) {
        invalidateCommit(t);
        report.commitCleared = true;
    }

    report.done = t;
    return report;
}

} // namespace lightpc::pecos
