/**
 * @file
 * SnG worst-case scalability (Fig. 22).
 *
 * The paper's FPGA cannot hold more than 8 physical cores, so the
 * authors instrument per-component worst-case costs and *estimate*
 * larger machines. Our substrate has no such limit: we simulate the
 * worst case directly — the maximum dpm_list population (730
 * drivers), every cacheline dirty, and the requested core count —
 * and report the measured Stop latency against the ATX (16 ms spec)
 * and server (55 ms) hold-up budgets.
 */

#ifndef LIGHTPC_PECOS_SCALING_HH
#define LIGHTPC_PECOS_SCALING_HH

#include <cstdint>

#include "pecos/sng.hh"

namespace lightpc::pecos
{

/** One Fig. 22 grid point. */
struct ScalingResult
{
    std::uint32_t cores = 0;
    std::uint64_t cacheBytes = 0;  ///< total cache, fully dirty
    StopReport report;

    bool
    withinBudget(Tick budget) const
    {
        return report.totalTicks() <= budget;
    }
};

/**
 * Simulate a worst-case Stop: @p cores cores, @p cache_bytes of
 * fully-dirty cache, the maximum driver population, and a busy
 * process load.
 */
ScalingResult simulateWorstCaseStop(std::uint32_t cores,
                                    std::uint64_t cache_bytes,
                                    std::uint64_t seed = 3);

} // namespace lightpc::pecos

#endif // LIGHTPC_PECOS_SCALING_HH
