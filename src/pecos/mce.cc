#include "pecos/mce.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace lightpc::pecos
{

MceHandler::MceHandler(kernel::Kernel &kernel, psm::Psm &psm_)
    : kern(kernel), psm(psm_)
{
}

void
MceHandler::registerOwner(mem::Addr base, std::uint64_t bytes,
                          std::uint32_t pid)
{
    if (bytes == 0)
        fatal("MceHandler::registerOwner: empty range");
    if (pid == 0)
        fatal("MceHandler::registerOwner: pid 0 is reserved");
    ranges.push_back(Range{base, bytes, pid});
}

void
MceHandler::unregisterOwner(std::uint32_t pid)
{
    ranges.erase(std::remove_if(ranges.begin(), ranges.end(),
                                [pid](const Range &r) {
                                    return r.pid == pid;
                                }),
                 ranges.end());
}

std::uint32_t
MceHandler::ownerOf(mem::Addr addr) const
{
    for (const Range &r : ranges)
        if (addr >= r.base && addr - r.base < r.bytes)
            return r.pid;
    return 0;
}

MceOutcome
MceHandler::coldBoot()
{
    MceOutcome out;
    out.action = MceAction::ColdBoot;
    ++_stats.coldBoots;
    // handleContainment() under ResetColdBoot wipes OC-PMEM through
    // the reset port (preserving the MCE/reset counters). Under
    // Contain it declines — but a cold boot reached through kernel
    // escalation must still wipe the media, or the next boot would
    // inherit the uncontained corruption; take the reset port
    // directly in that case, with the same counter preservation.
    if (!psm.handleContainment())
        psm.containmentReset();
    return out;
}

MceOutcome
MceHandler::handle(mem::Addr addr, Tick when)
{
    ++_stats.raised;

    if (psm.params().mcePolicy == psm::McePolicy::ResetColdBoot)
        return coldBoot();

    // Contain: blame the owning task.
    const std::uint32_t pid = ownerOf(addr);
    if (pid == 0) {
        // Kernel memory has no killable owner; corruption there
        // cannot be contained and the only safe arm is the reset.
        ++_stats.kernelEscalations;
        return coldBoot();
    }

    MceOutcome out;
    out.action = MceAction::Contained;
    ++_stats.contained;

    if (kern.exitProcess(pid))
        ++_stats.tasksKilled;
    unregisterOwner(pid);
    out.killedPid = pid;

    // The faulting slot is physically rotten: take it out of service
    // so the *address* stays usable for whoever maps it next. The
    // data under it is gone either way — that is what killing the
    // owner admits.
    if (psm.retireFaultyLine(addr, when)) {
        out.lineRetired = true;
        ++_stats.linesRetired;
    } else {
        ++_stats.retireFailures;
    }

    // Tell the PSM the containment was absorbed without a reset
    // (keeps the Contain-arm bookkeeping exercised).
    psm.handleContainment();
    return out;
}

} // namespace lightpc::pecos
