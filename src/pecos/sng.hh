/**
 * @file
 * Stop-and-Go: PecOS's single execution persistence cut (Sections
 * III-B and IV).
 *
 * Stop runs in two phases when a power-event interrupt fires:
 *
 *  - Drive-to-Idle: the interrupted core becomes master, sets the
 *    system-wide persistent flag, and walks every PCB from init.
 *    User tasks get a fake signal (TIF_SIGPENDING) so they drain
 *    their kernel-mode work; sleepers are woken and spread over the
 *    workers (IPIs) in a load-balanced way, driven through pending
 *    work, then context-switched out TASK_UNINTERRUPTIBLE and
 *    removed from the run queues. No cache flush or fence happens in
 *    this phase.
 *
 *  - Auto-Stop: the master suspends every dpm_list driver in order
 *    (prepare / suspend / suspend_noirq), writes DCBs and MMIO
 *    copies to OC-PMEM, then offlines the cores: kernel task/stack
 *    pointers are cleaned, each worker dumps its caches and reports,
 *    and the master finally traps into the bootloader to dump the
 *    kernel-invisible registers and the wear-leveler state into the
 *    BCB, record the MEPC, clear the persistent flag, and store the
 *    commit — the EP-cut.
 *
 * Go mirrors it on power recovery: check the commit, restore the
 * BCB, power the workers up one by one, resume drivers in inverse
 * dpm order, restore MMIO regions, flush TLBs, and reschedule kernel
 * then user tasks by flipping TASK_UNINTERRUPTIBLE back to normal.
 */

#ifndef LIGHTPC_PECOS_SNG_HH
#define LIGHTPC_PECOS_SNG_HH

#include <cstdint>
#include <vector>

#include "cache/l1_cache.hh"
#include "kernel/kernel.hh"
#include "mem/timed_mem.hh"
#include "pecos/layout.hh"
#include "psm/psm.hh"
#include "sim/ticks.hh"

namespace lightpc::pecos
{

/** Per-operation costs of the SnG implementation paths. */
struct SngCosts
{
    // Drive-to-Idle.
    Tick setPersistentFlag = 500;            ///< atomic flag, 0.5 us
    Tick pcbWalkPerTask = 2 * tickUs;        ///< master PCB traversal
    Tick ipi = 2 * tickUs;                   ///< IPI delivery
    Tick fakeSignal = 14 * tickUs;           ///< signal + entry.S path
    Tick pendingWorkItem = 38 * tickUs;      ///< drain one work item
    Tick contextSwitch = 10 * tickUs;        ///< switch out + PCB store
    Tick parkTask = 5 * tickUs;              ///< dequeue + state change
    Tick idlePlacement = 3 * tickUs;         ///< idle task per core
    Tick barrier = 2 * tickUs;               ///< core synchronization

    // Auto-Stop.
    Tick mmioReadPer64B = 40 * tickNs;       ///< uncached MMIO copy
    Tick cleanPointersPerCore = 2 * tickUs;  ///< cpu_up_task/stack ptr
    Tick perWorkerOffline = 45 * tickUs;     ///< IPI+suspend handshake
    Tick masterBootloaderConst = 4300 * tickUs;  ///< uncached
        ///< bootloader execution: exception, register dump, commit

    // Go.
    Tick commitCheck = 150 * tickUs;         ///< bootloader boot path
    Tick bcbRestore = 400 * tickUs;          ///< registers + wear state
    Tick powerUpWorker = 120 * tickUs;       ///< per-core bring-up
    Tick tlbFlushPerCore = 15 * tickUs;
    Tick scheduleTask = 10 * tickUs;         ///< wait-queue -> run queue

    /**
     * dpm_suspend() quiesce scaling when the system is busy
     * (outstanding I/O to stop) vs idle.
     */
    double busyQuiesceFactor = 1.0;
    double idleQuiesceFactor = 0.78;
};

/**
 * The drain sub-phase a power cut landed in. Campaigns assert
 * per-phase coverage from this enum instead of re-deriving it from
 * report timestamps (which drift whenever a cost changes).
 */
enum class StopSubPhase : std::uint8_t
{
    None,               ///< no cut armed during the Stop
    DriveToIdle,        ///< parking tasks, PCB walk
    DeviceContextSave,  ///< dpm suspend + DCB/MMIO serialization
    MasterCacheFlush,   ///< the master's dirty-line dump
    WorkerOffline,      ///< per-worker IPI + cache dump + offline
    BootloaderDump,     ///< BCB body + register dump + fence
    CommitWindow,       ///< the atomic commit store itself
    PostCommit,         ///< cut landed after the commit completed
};

const char *stopSubPhaseName(StopSubPhase phase);

/** The Go sub-phase a power cut landed in. */
enum class GoSubPhase : std::uint8_t
{
    None,           ///< no cut armed during the Go
    BcbRestore,     ///< commit check + BCB/wear-state reload
    CoreBringup,    ///< per-worker power-up
    DeviceRestore,  ///< inverse-dpm revive + context/MMIO reads
    ProcessThaw,    ///< PCB restore + reschedule + TLB flush
    CommitClear,    ///< the final atomic commit-clear store
    Complete,       ///< cut landed after the resume completed
};

const char *goSubPhaseName(GoSubPhase phase);

/** Decomposed Stop latency (Fig. 8b). */
struct StopReport
{
    Tick start = 0;
    Tick processStopDone = 0;  ///< Drive-to-Idle complete
    Tick ctxSaveDone = 0;      ///< dpm suspend + DCB/MMIO serialized
    Tick deviceStopDone = 0;   ///< device stop incl. master flush
    Tick workerOfflineDone = 0;  ///< every worker dumped + offline
    Tick commitStart = 0;      ///< issue tick of the commit store
    Tick offlineDone = 0;      ///< EP-cut committed

    /**
     * Completion tick of the final commit store (the atomic BCB
     * magic write, issued after everything else is fenced). The
     * EP-cut is durable iff this precedes the power-cut tick.
     */
    Tick commitAt = 0;

    /** The armed power-cut tick, maxTick when no cut was armed. */
    Tick cutTick = maxTick;

    /** Which drain sub-phase was in flight at cutTick. */
    StopSubPhase cutSubPhase = StopSubPhase::None;

    /**
     * The power rails fell out of specification before the commit
     * landed: no EP-cut exists and the next boot is cold. Set when
     * stop() is given a hold-up deadline it cannot meet, or when an
     * externally-armed power cut preempted the commit.
     */
    bool commitFailed = false;

    /** Durability-cursor outcomes while the cut was armed. */
    std::uint64_t writesDropped = 0;
    std::uint64_t writesTorn = 0;

    std::uint64_t tasksParked = 0;
    std::uint64_t sleepersWoken = 0;
    std::uint64_t devicesSuspended = 0;
    std::uint64_t dirtyLinesFlushed = 0;
    std::uint64_t controlBlockBytes = 0;

    /** Devices whose bound DeviceContext was serialized for real. */
    std::uint64_t contextImagesSaved = 0;

    Tick processStopTicks() const { return processStopDone - start; }
    Tick
    deviceStopTicks() const
    {
        return deviceStopDone - processStopDone;
    }
    Tick offlineTicks() const { return offlineDone - deviceStopDone; }
    Tick totalTicks() const { return offlineDone - start; }
};

/** Go latency decomposition. */
struct GoReport
{
    Tick start = 0;
    Tick bcbRestored = 0;
    Tick coresUp = 0;
    Tick devicesResumed = 0;
    Tick thawDone = 0;      ///< PCBs restored, queues rebuilt, TLBs
    Tick done = 0;

    /**
     * Completion tick of the final commit-clear store (an atomic
     * 8-byte write, the resume's linearization point). The resume
     * *converged* iff this beat any armed power cut; a torn resume
     * leaves the commit in place, so re-running Go from the same
     * durable image is always legal.
     */
    Tick commitClearAt = 0;

    /** The armed power-cut tick, maxTick when no cut was armed. */
    Tick cutTick = maxTick;

    /** Which Go sub-phase was in flight at cutTick. */
    GoSubPhase cutSubPhase = GoSubPhase::None;

    /**
     * A power cut preempted the commit-clear: the machine died
     * mid-resume and the durable EP-cut is still valid. The next
     * boot must re-run Go from that image (idempotent).
     */
    bool interrupted = false;

    bool coldBoot = false;  ///< no commit found
    std::uint64_t devicesRevived = 0;
    std::uint64_t tasksScheduled = 0;

    /** Devices whose DCB image was handed back to a DeviceContext. */
    std::uint64_t contextImagesRestored = 0;

    /** First byte of the device payload region Go read back. */
    mem::Addr payloadBase = 0;
    /** One past the last payload byte (context + MMIO images). */
    mem::Addr payloadEnd = 0;
    /** Device context + MMIO bytes actually read from OC-PMEM. */
    std::uint64_t payloadBytesRead = 0;

    Tick totalTicks() const { return done - start; }
};

/**
 * What an aborted Stop did (brownout recovered before the hold-up
 * floor, so the machine resumes in place instead of cutting power).
 */
struct AbortReport
{
    Tick start = 0;
    Tick devicesResumed = 0;
    Tick done = 0;

    std::uint64_t devicesRevived = 0;
    std::uint64_t tasksUnparked = 0;

    /** A landed EP-cut was invalidated (it described a state the
     *  resumed execution immediately diverges from). */
    bool commitCleared = false;

    Tick totalTicks() const { return done - start; }
};

/**
 * The Stop-and-Go engine bound to one platform.
 */
class Sng
{
  public:
    /**
     * @param kernel  The PecOS kernel state to stop/resume.
     * @param psm     OC-PMEM controller (flush port, wear state).
     * @param pmem    Functional OC-PMEM contents (control blocks).
     * @param caches  The live per-core caches to dump (may be empty;
     *                then @p fallback_dirty_lines is used per core).
     */
    Sng(kernel::Kernel &kernel, psm::Psm &psm,
        mem::BackingStore &pmem, std::vector<cache::L1Cache *> caches,
        const SngCosts &costs = SngCosts());

    const SngCosts &costs() const { return _costs; }

    /** Dirty lines assumed per core when no cache model is bound. */
    void setFallbackDirtyLines(std::uint64_t lines)
    {
        fallbackDirtyLines = lines;
    }

    /**
     * Stop: produce the EP-cut. Mutates the kernel (all tasks
     * parked, devices suspended) and OC-PMEM (BCB/PCB/DCB written,
     * commit stored).
     *
     * @param when    The power-event interrupt tick.
     * @param holdup  How long the PSU keeps the rails alive after
     *                @p when. If Stop cannot finish in time, the
     *                commit never lands (report.commitFailed) and
     *                the next resume() is a cold boot — exactly the
     *                failure mode Fig. 22 budgets against. The
     *                deadline is enforced through the backing
     *                store's durability cursor, so *nothing* written
     *                after the cut tick persists (not just the
     *                commit magic). When the caller has already
     *                armed a power cut on the store (a
     *                fault::FaultInjector campaign), that cut is
     *                honored instead.
     */
    StopReport stop(Tick when, Tick holdup = maxTick);

    /**
     * Go: power-recovery path. Restores PCB register state from
     * OC-PMEM (so any volatile-side corruption after the EP-cut is
     * healed), revives devices in inverse dpm order, and reschedules
     * every parked task.
     */
    GoReport resume(Tick when);

    /**
     * Abort an in-flight Stop: the mains sag recovered before the
     * PSU's hold-up floor, so power never actually fails. The
     * machine resumes *in place* from its intact volatile state — no
     * reboot, no OC-PMEM context reads: devices revive in inverse
     * dpm order from their live driver state, parked tasks flip
     * straight back onto their run queues, and any EP-cut commit the
     * Stop already drew is invalidated (execution is about to
     * diverge from the image it describes).
     */
    AbortReport abortStop(Tick when);

    /** True when OC-PMEM holds a committed EP-cut. */
    bool hasCommit() const;

    /**
     * Invalidate the durable EP-cut at @p when (one atomic store):
     * the next boot without a fresh commit is cold. The degraded
     * escalation path of a recovery supervisor, and the tail of an
     * aborted Stop.
     */
    void invalidateCommit(Tick when);

  private:
    /** A MemoryPort view over the PSM for TimedMem. */
    class PsmPort : public mem::MemoryPort
    {
      public:
        explicit PsmPort(psm::Psm &psm) : psm(psm) {}

        mem::AccessResult
        access(const mem::MemRequest &req, Tick when) override
        {
            return psm.access(req, when);
        }

        Tick fence(Tick when) override { return psm.flush(when); }

      private:
        psm::Psm &psm;
    };

    Tick driveToIdle(Tick when, StopReport &report);
    Tick autoStopDevices(Tick when, StopReport &report);
    Tick drawEpCut(Tick when, StopReport &report);

    kernel::Kernel &kern;
    psm::Psm &psm;
    mem::BackingStore &pmem;
    std::vector<cache::L1Cache *> caches;
    SngCosts _costs;
    ReservedLayout layout;
    PsmPort port;
    mem::TimedMem timed;
    std::uint64_t fallbackDirtyLines = 200;

    /** Scratch buffer for DeviceContext images (reused per device). */
    std::vector<std::uint8_t> ctxScratch;
};

} // namespace lightpc::pecos

#endif // LIGHTPC_PECOS_SNG_HH
