/**
 * @file
 * Umbrella header: the LightPC simulator's public API in one
 * include.
 *
 * Fine-grained headers remain available (and are what the library
 * itself uses); this is a convenience for downstream applications:
 *
 * @code
 *   #include "lightpc.hh"
 *
 *   lightpc::platform::System system({});
 *   auto run = system.run(lightpc::workload::findWorkload("Redis"));
 *   auto cut = system.sng().stop(system.eventQueue().now());
 * @endcode
 */

#ifndef LIGHTPC_LIGHTPC_HH
#define LIGHTPC_LIGHTPC_HH

// Simulation kernel.
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "sim/sim_object.hh"
#include "sim/ticks.hh"

// Statistics and reporting.
#include "stats/histogram.hh"
#include "stats/summary.hh"
#include "stats/table.hh"
#include "stats/time_series.hh"

// Memory substrate.
#include "mem/backing_store.hh"
#include "mem/dram_device.hh"
#include "mem/memory_port.hh"
#include "mem/pmem_dimm.hh"
#include "mem/pram_device.hh"
#include "mem/request.hh"
#include "mem/timed_mem.hh"

// The Persistent Support Module and its reliability tiers.
#include "psm/bare_nvdimm.hh"
#include "psm/psm.hh"
#include "psm/start_gap.hh"
#include "psm/symbol_ecc.hh"
#include "psm/xcc.hh"

// Cores and caches.
#include "cache/l1_cache.hh"
#include "cpu/core.hh"
#include "cpu/instr.hh"

// Power and PSU models.
#include "power/power_model.hh"
#include "power/psu.hh"

// PecOS: kernel substrate and Stop-and-Go.
#include "kernel/device.hh"
#include "kernel/kernel.hh"
#include "kernel/process.hh"
#include "pecos/scaling.hh"
#include "pecos/sng.hh"

// Persistence mechanisms.
#include "persist/checkpoint.hh"
#include "persist/dax.hh"
#include "persist/object_pool.hh"

// Power-cut fault injection.
#include "fault/campaign.hh"
#include "fault/fault_injector.hh"
#include "fault/power_rail.hh"

// Workloads.
#include "workload/spec.hh"
#include "workload/stream_bench.hh"
#include "workload/synthetic.hh"
#include "workload/trace.hh"

// Platform assemblies.
#include "platform/dram_array.hh"
#include "platform/pmem_modes.hh"
#include "platform/system.hh"

#endif // LIGHTPC_LIGHTPC_HH
