/**
 * @file
 * Sparse functional memory.
 *
 * Timing models in mem/ and psm/ are purely temporal; persistence
 * correctness (object pools, crash/recovery tests, ECC round trips)
 * additionally needs real bytes. BackingStore provides a sparse,
 * page-granular byte store used as the functional half of OC-PMEM and
 * DRAM.
 *
 * Power-cut durability cursor: for fault-injection campaigns the
 * store can be armed with a cut tick — the moment the rails fall out
 * of specification. Writes carry timestamps (either an explicit
 * [start, end] interval via writeTimed(), or the write clock set with
 * setWriteClock() for instantaneous control-block stores); bytes
 * whose completion lands after the cut never become durable, and the
 * one cache line in flight at the cut is torn: a seeded RNG decides
 * how many of its bytes made it to media. Writes of at most eight
 * bytes are atomic (a single aligned store instruction) and are never
 * torn — they either complete before the cut or vanish.
 */

#ifndef LIGHTPC_MEM_BACKING_STORE_HH
#define LIGHTPC_MEM_BACKING_STORE_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "mem/request.hh"
#include "sim/rng.hh"
#include "sim/ticks.hh"

namespace lightpc::mem
{

/** What happened to writes while a power cut was armed. */
struct DurabilityCutStats
{
    std::uint64_t durableWrites = 0;  ///< fully landed before the cut
    std::uint64_t droppedWrites = 0;  ///< entirely after the cut
    std::uint64_t tornWrites = 0;     ///< straddled the cut
    std::uint64_t staleWrites = 0;    ///< started before a past epoch
    std::uint64_t durableBytes = 0;
    std::uint64_t droppedBytes = 0;
    std::uint64_t staleBytes = 0;
    Addr lastTornLine = 0;            ///< line address of the last tear
    std::uint64_t lastTornBytes = 0;  ///< bytes of it that landed
};

/**
 * Sparse byte-addressable storage. Unwritten bytes read as zero.
 */
class BackingStore
{
  public:
    /** Backing page size (an implementation detail, not a TLB page). */
    static constexpr std::uint64_t pageBytes = 4096;

    BackingStore() = default;

    /** Read @p len bytes at @p addr into @p out. */
    void read(Addr addr, void *out, std::uint64_t len) const;

    /**
     * Write @p len bytes from @p in at @p addr. With a power cut
     * armed the write is treated as instantaneous at the current
     * write clock.
     */
    void write(Addr addr, const void *in, std::uint64_t len);

    /**
     * Write with an explicit service interval: the span's cache lines
     * complete uniformly over [start, end]. Falls back to a plain
     * write when no cut is armed.
     */
    void writeTimed(Tick start, Tick end, Addr addr, const void *in,
                    std::uint64_t len);

    /** Convenience: read a trivially-copyable value. */
    template <typename T>
    T
    readValue(Addr addr) const
    {
        static_assert(std::is_trivially_copyable_v<T>);
        T value;
        read(addr, &value, sizeof(T));
        return value;
    }

    /** Convenience: write a trivially-copyable value. */
    template <typename T>
    void
    writeValue(Addr addr, const T &value)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        write(addr, &value, sizeof(T));
    }

    /** Zero-fill a range (releases whole pages when aligned). */
    void clear(Addr addr, std::uint64_t len);

    /** Drop all contents (the OC-PMEM reset port). */
    void reset() { pages.clear(); }

    /** Number of materialized pages (for footprint assertions). */
    std::size_t materializedPages() const { return pages.size(); }

    /** Deep equality against another store (crash/recovery checks). */
    bool equals(const BackingStore &other) const;

    /**
     * Order-independent FNV-1a digest of all non-zero contents
     * (pages visited in sorted id order; all-zero pages skipped, so
     * materialization history does not perturb the digest).
     */
    std::uint64_t contentDigest() const;

    /** Become a deep copy of @p other's contents (cursor state is
     *  not copied — the clone starts disarmed). */
    void copyContentsFrom(const BackingStore &other);

    // --- power-cut durability cursor ------------------------------

    /**
     * Arm a power cut: writes completing at or after @p cut_tick are
     * not durable. @p torn_seed drives the torn-line RNG. Resets the
     * cut statistics and opens a new cut epoch.
     */
    void armPowerCut(Tick cut_tick, std::uint64_t torn_seed);

    /**
     * Power restored: subsequent writes are durable again. The cut
     * tick that just fired becomes the epoch floor — a later, re-armed
     * cut must never let a write whose service interval began before
     * this instant land, or bytes dropped by the first cut would be
     * resurrected by replaying the same timed interval under the
     * second (the single-epoch bug compound campaigns tripped over).
     */
    void
    disarmPowerCut()
    {
        cutArmed = false;
        _epochFloor = std::max(_epochFloor, _cutTick);
    }

    /**
     * Cancel an armed cut that never fired — AC recovered, or a
     * watchdog deadline was disarmed, before the machine reached the
     * cut tick. No outage happened at that instant, so the epoch
     * floor must NOT advance to it: writes issued by the continuing
     * execution legitimately begin before the (hypothetical) cut.
     */
    void cancelPowerCut() { cutArmed = false; }

    bool powerCutArmed() const { return cutArmed; }
    Tick powerCutTick() const { return _cutTick; }

    /** Cut epochs opened so far (armPowerCut() calls). */
    std::uint64_t cutEpoch() const { return _cutEpoch; }

    /** Writes may not begin before this tick (last fired cut). */
    Tick epochFloor() const { return _epochFloor; }

    /**
     * Timestamp applied to subsequent untimed write()/writeValue()
     * calls while a cut is armed.
     */
    void setWriteClock(Tick when) { _writeClock = when; }
    Tick writeClock() const { return _writeClock; }

    /** Outcome counters since the last armPowerCut(). */
    const DurabilityCutStats &cutStats() const { return _cutStats; }

  private:
    using Page = std::array<std::uint8_t, pageBytes>;

    Page *findPage(Addr page_id) const;
    Page &materialize(Addr page_id);

    /** The unconditional write path (no durability filtering). */
    void writeRaw(Addr addr, const void *in, std::uint64_t len);

    std::unordered_map<Addr, std::unique_ptr<Page>> pages;

    bool cutArmed = false;
    Tick _cutTick = 0;
    Tick _writeClock = 0;
    Tick _epochFloor = 0;
    std::uint64_t _cutEpoch = 0;
    Rng tornRng{1};
    DurabilityCutStats _cutStats;
};

} // namespace lightpc::mem

#endif // LIGHTPC_MEM_BACKING_STORE_HH
