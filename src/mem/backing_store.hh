/**
 * @file
 * Sparse functional memory.
 *
 * Timing models in mem/ and psm/ are purely temporal; persistence
 * correctness (object pools, crash/recovery tests, ECC round trips)
 * additionally needs real bytes. BackingStore provides a sparse,
 * page-granular byte store used as the functional half of OC-PMEM and
 * DRAM.
 */

#ifndef LIGHTPC_MEM_BACKING_STORE_HH
#define LIGHTPC_MEM_BACKING_STORE_HH

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "mem/request.hh"

namespace lightpc::mem
{

/**
 * Sparse byte-addressable storage. Unwritten bytes read as zero.
 */
class BackingStore
{
  public:
    /** Backing page size (an implementation detail, not a TLB page). */
    static constexpr std::uint64_t pageBytes = 4096;

    BackingStore() = default;

    /** Read @p len bytes at @p addr into @p out. */
    void read(Addr addr, void *out, std::uint64_t len) const;

    /** Write @p len bytes from @p in at @p addr. */
    void write(Addr addr, const void *in, std::uint64_t len);

    /** Convenience: read a trivially-copyable value. */
    template <typename T>
    T
    readValue(Addr addr) const
    {
        static_assert(std::is_trivially_copyable_v<T>);
        T value;
        read(addr, &value, sizeof(T));
        return value;
    }

    /** Convenience: write a trivially-copyable value. */
    template <typename T>
    void
    writeValue(Addr addr, const T &value)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        write(addr, &value, sizeof(T));
    }

    /** Zero-fill a range (releases whole pages when aligned). */
    void clear(Addr addr, std::uint64_t len);

    /** Drop all contents (the OC-PMEM reset port). */
    void reset() { pages.clear(); }

    /** Number of materialized pages (for footprint assertions). */
    std::size_t materializedPages() const { return pages.size(); }

    /** Deep equality against another store (crash/recovery checks). */
    bool equals(const BackingStore &other) const;

  private:
    using Page = std::array<std::uint8_t, pageBytes>;

    Page *findPage(Addr page_id) const;
    Page &materialize(Addr page_id);

    std::unordered_map<Addr, std::unique_ptr<Page>> pages;
};

} // namespace lightpc::mem

#endif // LIGHTPC_MEM_BACKING_STORE_HH
