#include "mem/pmem_dimm.hh"

#include <algorithm>

namespace lightpc::mem
{

PmemDimm::PmemDimm(const PmemDimmParams &params)
    : _params(params),
      media(params.media),
      sram(params.sramBytes, params.sramLineBytes, params.sramWays),
      dram(params.dramBytes, params.dramLineBytes, params.dramWays)
{
}

void
PmemDimm::drainLsq(Tick now)
{
    while (!lsq.empty() && lsq.front().drainAt <= now) {
        const LsqEntry entry = lsq.front();
        lsq.pop_front();
        fillSram(entry.block, /*dirty=*/true, entry.drainAt);
    }
}

void
PmemDimm::fillSram(Addr block, bool dirty, Tick now)
{
    const auto out = sram.access(block, dirty);
    if (out.evicted && out.evictedDirty) {
        // Inclusive hierarchy: SRAM castouts land in the DRAM buffer.
        fillDram(out.evictedBlock, /*dirty=*/true, now);
    } else if (!out.hit) {
        // Keep inclusion: the block must also be resident below.
        if (!dram.contains(block))
            fillDram(block, /*dirty=*/false, now);
    }
}

void
PmemDimm::fillDram(Addr addr, bool dirty, Tick now)
{
    const auto out = dram.access(addr, dirty);
    if (out.evicted && out.evictedDirty) {
        // The dirty blocks of the castout become 256 B media writes;
        // charge them as background work on the media timeline.
        for (std::uint32_t i = 0; i < _params.castoutMediaWrites;
             ++i) {
            media.write(now,
                        out.evictedBlock + Addr(i) * pmemMediaGranularity,
                        /*early_return=*/true);
        }
    }
}

AccessResult
PmemDimm::access(const MemRequest &req, Tick when)
{
    AccessResult result;
    Tick t = when + _params.firmwareLatency;

    // Firmware backpressure: once the media backlog passes the
    // limit, the DIMM stops accepting work until it drains.
    if (media.busyUntil() > t + _params.mediaBacklogLimit)
        t = media.busyUntil() - _params.mediaBacklogLimit;
    drainLsq(t);

    const Addr block = mediaBlock(req.addr);

    if (req.op == MemOp::Write) {
        // Write combining: a pending entry for the same 256 B media
        // block absorbs this cacheline for free.
        for (const auto &entry : lsq) {
            if (entry.block == block) {
                ++combined;
                result.completeAt = t;
                result.mediaFreeAt = media.busyUntil();
                result.internalCacheHit = true;
                return result;
            }
        }
        if (lsq.size() >= _params.lsqEntries) {
            // Backpressure: wait for the oldest entry to drain.
            const Tick drain_at = lsq.front().drainAt;
            t = std::max(t, drain_at);
            drainLsq(t);
        }
        t += _params.lsqInsertLatency;
        const Tick drain_base = std::max(lastDrain, t);
        const Tick drain_at = drain_base + _params.lsqDrainInterval;
        lastDrain = drain_at;
        lsq.push_back({block, drain_at});
        result.completeAt = t;
        result.mediaFreeAt = media.busyUntil();
        return result;
    }

    // Read path: LSQ forwarding, then the inclusive SRAM/DRAM levels,
    // then the media (which may be busy with evicted writes).
    for (const auto &entry : lsq) {
        if (entry.block == block) {
            ++readHits;
            result.completeAt = t + _params.sramLatency;
            result.internalCacheHit = true;
            result.mediaFreeAt = media.busyUntil();
            return result;
        }
    }

    t += _params.sramLatency;  // tag check always pays SRAM access
    if (sram.contains(block)) {
        ++readHits;
        sram.access(block, /*dirty=*/false);
        result.completeAt = t;
        result.internalCacheHit = true;
        result.mediaFreeAt = media.busyUntil();
        return result;
    }

    t += _params.dramLatency;
    if (dram.contains(req.addr)) {
        ++readHits;
        dram.access(req.addr, /*dirty=*/false);
        fillSram(block, /*dirty=*/false, t);
        result.completeAt = t;
        result.internalCacheHit = true;
        result.mediaFreeAt = media.busyUntil();
        return result;
    }

    // Miss everywhere: a 256 B media read, serialized behind any
    // write drains already occupying the PRAM.
    const AccessResult media_read = media.read(t);
    fillDram(req.addr, /*dirty=*/false, media_read.completeAt);
    fillSram(block, /*dirty=*/false, media_read.completeAt);
    result.completeAt = media_read.completeAt;
    result.mediaFreeAt = media.busyUntil();
    return result;
}

void
PmemDimm::reset()
{
    media.reset();
    sram.invalidateAll();
    dram.invalidateAll();
    lsq.clear();
    lastDrain = 0;
    readHits = 0;
    combined = 0;
}

} // namespace lightpc::mem
