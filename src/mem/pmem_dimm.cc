#include "mem/pmem_dimm.hh"

#include <algorithm>

namespace lightpc::mem
{

PmemDimm::PmemDimm(const PmemDimmParams &params)
    : _params(params),
      media(params.media),
      sram(params.sramBytes, params.sramLineBytes, params.sramWays),
      dram(params.dramBytes, params.dramLineBytes, params.dramWays)
{
}

void
PmemDimm::drainLsq(Tick now)
{
    while (!lsq.empty() && lsq.front()->readyAt <= now) {
        PooledRequest *entry = lsq.popFront();
        const Addr block = entry->addr;
        const Tick drain_at = entry->readyAt;
        lsqPool.release(entry);
        fillSram(block, /*dirty=*/true, drain_at);
    }
}

void
PmemDimm::fillSram(Addr block, bool dirty, Tick now)
{
    const auto out = sram.access(block, dirty);
    if (out.evicted && out.evictedDirty) {
        // Inclusive hierarchy: SRAM castouts land in the DRAM buffer.
        fillDram(out.evictedBlock, /*dirty=*/true, now);
    } else if (!out.hit) {
        // Keep inclusion: the block must also be resident below.
        if (!dram.contains(block))
            fillDram(block, /*dirty=*/false, now);
    }
}

void
PmemDimm::fillDram(Addr addr, bool dirty, Tick now)
{
    const auto out = dram.access(addr, dirty);
    if (out.evicted && out.evictedDirty) {
        // The dirty blocks of the castout become 256 B media writes;
        // charge them as background work on the media timeline.
        for (std::uint32_t i = 0; i < _params.castoutMediaWrites;
             ++i) {
            media.write(now,
                        out.evictedBlock + Addr(i) * pmemMediaGranularity,
                        /*early_return=*/true);
        }
    }
}

AccessResult
PmemDimm::access(const MemRequest &req, Tick when)
{
    AccessResult result;
    Tick t = when + _params.firmwareLatency;

    // Firmware backpressure: once the media backlog passes the
    // limit, the DIMM stops accepting work until it drains.
    if (media.busyUntil() > t + _params.mediaBacklogLimit)
        t = media.busyUntil() - _params.mediaBacklogLimit;
    drainLsq(t);

    const Addr block = mediaBlock(req.addr);

    if (req.op == MemOp::Write) {
        // Write combining: a pending entry for the same 256 B media
        // block absorbs this cacheline for free.
        for (const PooledRequest *entry = lsq.begin(); entry;
             entry = entry->next) {
            if (entry->addr == block) {
                ++combined;
                result.completeAt = t;
                result.mediaFreeAt = media.busyUntil();
                result.internalCacheHit = true;
                return result;
            }
        }
        if (lsq.size() >= _params.lsqEntries) {
            // Backpressure: wait for the oldest entry to drain.
            const Tick drain_at = lsq.front()->readyAt;
            t = std::max(t, drain_at);
            drainLsq(t);
        }
        t += _params.lsqInsertLatency;
        const Tick drain_base = std::max(lastDrain, t);
        const Tick drain_at = drain_base + _params.lsqDrainInterval;
        lastDrain = drain_at;
        PooledRequest *entry = lsqPool.acquire();
        entry->op = MemOp::Write;
        entry->addr = block;
        entry->readyAt = drain_at;
        lsq.pushBack(entry);
        result.completeAt = t;
        result.mediaFreeAt = media.busyUntil();
        return result;
    }

    // Read path: LSQ forwarding, then the inclusive SRAM/DRAM levels,
    // then the media (which may be busy with evicted writes).
    for (const PooledRequest *entry = lsq.begin(); entry;
         entry = entry->next) {
        if (entry->addr == block) {
            ++readHits;
            result.completeAt = t + _params.sramLatency;
            result.internalCacheHit = true;
            result.mediaFreeAt = media.busyUntil();
            return result;
        }
    }

    t += _params.sramLatency;  // tag check always pays SRAM access
    if (sram.contains(block)) {
        ++readHits;
        sram.access(block, /*dirty=*/false);
        result.completeAt = t;
        result.internalCacheHit = true;
        result.mediaFreeAt = media.busyUntil();
        return result;
    }

    t += _params.dramLatency;
    if (dram.contains(req.addr)) {
        ++readHits;
        dram.access(req.addr, /*dirty=*/false);
        fillSram(block, /*dirty=*/false, t);
        result.completeAt = t;
        result.internalCacheHit = true;
        result.mediaFreeAt = media.busyUntil();
        return result;
    }

    // Miss everywhere: a 256 B media read, serialized behind any
    // write drains already occupying the PRAM.
    const AccessResult media_read = media.read(t);
    fillDram(req.addr, /*dirty=*/false, media_read.completeAt);
    fillSram(block, /*dirty=*/false, media_read.completeAt);
    result.completeAt = media_read.completeAt;
    result.mediaFreeAt = media.busyUntil();
    return result;
}

void
PmemDimm::reset()
{
    media.reset();
    sram.invalidateAll();
    dram.invalidateAll();
    lsq.releaseAll(lsqPool);
    lastDrain = 0;
    readHits = 0;
    combined = 0;
}

} // namespace lightpc::mem
