#include "mem/timed_mem.hh"

namespace lightpc::mem
{

Tick
TimedMem::span(Tick when, Addr addr, std::uint64_t len, MemOp op)
{
    if (len == 0)
        return when;

    const Addr first_line = addr & ~Addr(cacheLineBytes - 1);
    const Addr last_line =
        (addr + len - 1) & ~Addr(cacheLineBytes - 1);
    const std::uint64_t lines =
        (last_line - first_line) / cacheLineBytes + 1;

    Tick t = when;
    const std::uint64_t exact = std::min(lines, sampleLimit);
    PooledRequest *req = pool.acquire();
    req->op = op;
    req->size = cacheLineBytes;
    for (std::uint64_t i = 0; i < exact; ++i) {
        req->addr = first_line + i * cacheLineBytes;
        const AccessResult result = port.access(*req, t);
        t = result.completeAt;
    }
    pool.release(req);

    if (lines > exact) {
        // Extrapolate the remainder at the sampled per-line rate.
        const Tick per_line = (t - when) / exact;
        t += per_line * (lines - exact);
    }
    return t;
}

Tick
TimedMem::writeBytes(Tick when, Addr addr, const void *data,
                     std::uint64_t len)
{
    const Tick end = span(when, addr, len, MemOp::Write);
    if (store)
        store->writeTimed(when, end, addr, data, len);
    return end;
}

Tick
TimedMem::fence(Tick when)
{
    return port.fence(when);
}

Tick
TimedMem::readBytes(Tick when, Addr addr, void *out, std::uint64_t len)
{
    if (store)
        store->read(addr, out, len);
    return span(when, addr, len, MemOp::Read);
}

Tick
TimedMem::writeSpan(Tick when, Addr addr, std::uint64_t len)
{
    return span(when, addr, len, MemOp::Write);
}

Tick
TimedMem::readSpan(Tick when, Addr addr, std::uint64_t len)
{
    return span(when, addr, len, MemOp::Read);
}

} // namespace lightpc::mem
