/**
 * @file
 * Tag-only set-associative cache model.
 *
 * Tracks presence, dirtiness, and LRU order without storing data.
 * Used for the SRAM and DRAM buffer levels inside the Optane-style
 * PMEM DIMM model; the CPU's L1 model in cache/ builds on the same
 * structure but adds flush enumeration.
 */

#ifndef LIGHTPC_MEM_TAG_CACHE_HH
#define LIGHTPC_MEM_TAG_CACHE_HH

#include <cstdint>
#include <vector>

#include "mem/request.hh"
#include "sim/logging.hh"

namespace lightpc::mem
{

/**
 * LRU set-associative tag array.
 */
class TagCache
{
  public:
    /** Result of a lookup-and-allocate operation. */
    struct Outcome
    {
        bool hit = false;
        /** A valid line was evicted to make room. */
        bool evicted = false;
        /** The evicted line was dirty. */
        bool evictedDirty = false;
        /** Block address of the evicted line (when evicted). */
        Addr evictedBlock = 0;
    };

    /**
     * @param capacity_bytes Total capacity.
     * @param line_bytes     Block size (power of two).
     * @param ways           Associativity.
     */
    TagCache(std::uint64_t capacity_bytes, std::uint32_t line_bytes,
             std::uint32_t ways)
        : lineBytes(line_bytes), numWays(ways)
    {
        if (line_bytes == 0 || (line_bytes & (line_bytes - 1)) != 0)
            fatal("TagCache line size must be a power of two");
        if (ways == 0)
            fatal("TagCache requires at least one way");
        const std::uint64_t lines = capacity_bytes / line_bytes;
        numSets = static_cast<std::uint32_t>(lines / ways);
        if (numSets == 0)
            numSets = 1;
        sets.assign(std::size_t(numSets) * numWays, Line{});
    }

    std::uint32_t lineSize() const { return lineBytes; }
    std::uint32_t ways() const { return numWays; }
    std::uint32_t setCount() const { return numSets; }

    /** Block (line-aligned) address for @p addr. */
    Addr blockOf(Addr addr) const { return addr & ~Addr(lineBytes - 1); }

    /** Probe without modifying state. */
    bool
    contains(Addr addr) const
    {
        const Addr block = blockOf(addr);
        const auto [base, _] = setRange(block);
        for (std::uint32_t w = 0; w < numWays; ++w) {
            const Line &line = sets[base + w];
            if (line.valid && line.block == block)
                return true;
        }
        return false;
    }

    /**
     * Access @p addr, allocating on miss.
     *
     * @param addr  Byte address.
     * @param dirty Mark the line dirty (stores / fills of dirty data).
     */
    Outcome
    access(Addr addr, bool dirty)
    {
        const Addr block = blockOf(addr);
        const auto [base, _] = setRange(block);
        Outcome out;

        std::uint32_t victim = 0;
        std::uint64_t oldest = ~std::uint64_t(0);
        for (std::uint32_t w = 0; w < numWays; ++w) {
            Line &line = sets[base + w];
            if (line.valid && line.block == block) {
                out.hit = true;
                line.lastUse = ++useClock;
                line.dirty = line.dirty || dirty;
                return out;
            }
            if (!line.valid) {
                victim = w;
                oldest = 0;
            } else if (line.lastUse < oldest) {
                victim = w;
                oldest = line.lastUse;
            }
        }

        Line &line = sets[base + victim];
        if (line.valid) {
            out.evicted = true;
            out.evictedDirty = line.dirty;
            out.evictedBlock = line.block;
        }
        line.valid = true;
        line.dirty = dirty;
        line.block = block;
        line.lastUse = ++useClock;
        return out;
    }

    /** Invalidate one block if present. @return true if it was dirty. */
    bool
    invalidate(Addr addr)
    {
        const Addr block = blockOf(addr);
        const auto [base, _] = setRange(block);
        for (std::uint32_t w = 0; w < numWays; ++w) {
            Line &line = sets[base + w];
            if (line.valid && line.block == block) {
                const bool dirty = line.dirty;
                line = Line{};
                return dirty;
            }
        }
        return false;
    }

    /** Number of valid lines. */
    std::uint64_t
    validLines() const
    {
        std::uint64_t n = 0;
        for (const auto &line : sets)
            n += line.valid ? 1 : 0;
        return n;
    }

    /** Number of valid dirty lines. */
    std::uint64_t
    dirtyLines() const
    {
        std::uint64_t n = 0;
        for (const auto &line : sets)
            n += (line.valid && line.dirty) ? 1 : 0;
        return n;
    }

    /** Collect all dirty block addresses (cache dump support). */
    std::vector<Addr>
    collectDirty() const
    {
        std::vector<Addr> blocks;
        for (const auto &line : sets)
            if (line.valid && line.dirty)
                blocks.push_back(line.block);
        return blocks;
    }

    /** Clear dirty bits (after a flush) without invalidating. */
    void
    cleanAll()
    {
        for (auto &line : sets)
            line.dirty = false;
    }

    /** Drop everything. */
    void
    invalidateAll()
    {
        std::fill(sets.begin(), sets.end(), Line{});
    }

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        Addr block = 0;
        std::uint64_t lastUse = 0;
    };

    /** First index of the set holding @p block, plus the set index. */
    std::pair<std::size_t, std::uint32_t>
    setRange(Addr block) const
    {
        const std::uint32_t set =
            static_cast<std::uint32_t>((block / lineBytes) % numSets);
        return {std::size_t(set) * numWays, set};
    }

    std::uint32_t lineBytes;
    std::uint32_t numWays;
    std::uint32_t numSets;
    std::uint64_t useClock = 0;
    std::vector<Line> sets;
};

} // namespace lightpc::mem

#endif // LIGHTPC_MEM_TAG_CACHE_HH
