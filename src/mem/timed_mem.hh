/**
 * @file
 * Combined functional + timed memory accessor.
 *
 * SnG and the persistence baselines move real bytes (control blocks,
 * checkpoint images) through the simulated memory: TimedMem pairs a
 * MemoryPort (timing) with an optional BackingStore (function) and
 * exposes byte-span operations that charge line-granular access time.
 *
 * Large spans (system images, multi-megabyte checkpoints) are
 * extrapolated from a simulated sample prefix so that multi-gigabyte
 * dumps do not require tens of millions of access() calls; the
 * sampled prefix still runs through the real port, so mode
 * differences (early-return vs blocking, DRAM vs PRAM) are captured.
 */

#ifndef LIGHTPC_MEM_TIMED_MEM_HH
#define LIGHTPC_MEM_TIMED_MEM_HH

#include <cstdint>

#include "mem/backing_store.hh"
#include "mem/memory_port.hh"
#include "mem/request.hh"

namespace lightpc::mem
{

/**
 * Byte-span reads/writes with timing.
 */
class TimedMem
{
  public:
    /**
     * @param port  Timing path.
     * @param store Functional bytes (may be null for timing-only use).
     */
    explicit TimedMem(MemoryPort &port, BackingStore *store = nullptr)
        : port(port), store(store)
    {}

    /**
     * Functional + timed write. @return completion tick.
     *
     * The store (when present) receives the write with its service
     * interval, so an armed power-cut cursor can drop or tear the
     * suffix that completes after the rails fall out of spec.
     */
    Tick writeBytes(Tick when, Addr addr, const void *data,
                    std::uint64_t len);

    /** Fence through the underlying port. @return quiescence tick. */
    Tick fence(Tick when);

    /** Functional + timed read. @return completion tick. */
    Tick readBytes(Tick when, Addr addr, void *out, std::uint64_t len);

    /** Timing-only write of @p len bytes (content irrelevant). */
    Tick writeSpan(Tick when, Addr addr, std::uint64_t len);

    /** Timing-only read of @p len bytes. */
    Tick readSpan(Tick when, Addr addr, std::uint64_t len);

    /** Convenience for trivially-copyable values. */
    template <typename T>
    Tick
    writeValue(Tick when, Addr addr, const T &value)
    {
        return writeBytes(when, addr, &value, sizeof(T));
    }

    template <typename T>
    Tick
    readValue(Tick when, Addr addr, T &out)
    {
        return readBytes(when, addr, &out, sizeof(T));
    }

    BackingStore *backing() { return store; }

    /** Default lines simulated exactly before extrapolating. */
    static constexpr std::uint64_t sampleLines = 4096;

    /**
     * Change the exact-simulation prefix. Use a large value when the
     * *device-side* backlog matters (e.g. measuring how long a fence
     * after the span takes), since extrapolated lines never reach
     * the port and leave its timeline unaware of them.
     */
    void setSampleLimit(std::uint64_t lines) { sampleLimit = lines; }

  private:
    Tick span(Tick when, Addr addr, std::uint64_t len, MemOp op);

    MemoryPort &port;
    BackingStore *store;
    std::uint64_t sampleLimit = sampleLines;
    /** Line requests issued by span() come from this pool. */
    RequestPool pool;
};

} // namespace lightpc::mem

#endif // LIGHTPC_MEM_TIMED_MEM_HH
