#include "mem/dram_device.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace lightpc::mem
{

DramDevice::DramDevice(const DramParams &params)
    : _params(params), nextRefresh(_params.refreshInterval)
{
    if (_params.banks == 0)
        fatal("DramDevice requires at least one bank");
    bankState.resize(_params.banks);
    rowDecode.set(_params.rowBytes);
    bankDecode.set(_params.banks);
}

void
DramDevice::catchUpRefresh(Tick when)
{
    // All-bank refresh: every elapsed tREFI window blocks the DIMM
    // for tRFC. Charging the windows one by one made an access after
    // a long idle period O(idle / tREFI); since the windows' end
    // times increase monotonically, only the latest one can still
    // bind each bank's busyUntil, so all elapsed windows collapse
    // into one O(banks) update with identical results.
    if (nextRefresh > when)
        return;
    const std::uint64_t windows =
        (when - nextRefresh) / _params.refreshInterval + 1;
    const Tick last_end = nextRefresh
        + (windows - 1) * _params.refreshInterval
        + _params.refreshLatency;
    for (auto &bank : bankState)
        bank.busyUntil = std::max(bank.busyUntil, last_end);
    nextRefresh += windows * _params.refreshInterval;
    refreshes += windows;
}

AccessResult
DramDevice::access(const MemRequest &req, Tick when)
{
    catchUpRefresh(when);

    const std::uint64_t global_row = rowDecode.div(req.addr);
    const std::uint32_t bank_idx =
        static_cast<std::uint32_t>(bankDecode.mod(global_row));
    const std::uint64_t row = bankDecode.div(global_row);
    Bank &bank = bankState[bank_idx];

    AccessResult result;
    const Tick start = std::max(when, bank.busyUntil);
    const bool hit = bank.openRow == row;
    result.rowBufferHit = hit;
    const Tick latency =
        hit ? _params.rowHitLatency : _params.rowMissLatency;
    result.completeAt = start + latency;
    result.mediaFreeAt = result.completeAt;
    bank.busyUntil = result.completeAt;
    bank.openRow = row;

    if (hit)
        ++hits;
    else
        ++misses;
    if (req.op == MemOp::Read)
        ++reads;
    else
        ++writes;
    return result;
}

void
DramDevice::reset()
{
    for (auto &bank : bankState)
        bank = Bank{};
    nextRefresh = _params.refreshInterval;
    hits = misses = refreshes = reads = writes = 0;
}

} // namespace lightpc::mem
