#include "mem/dram_device.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace lightpc::mem
{

DramDevice::DramDevice(const DramParams &params)
    : _params(params), nextRefresh(_params.refreshInterval)
{
    if (_params.banks == 0)
        fatal("DramDevice requires at least one bank");
    bankState.resize(_params.banks);
}

void
DramDevice::catchUpRefresh(Tick when)
{
    // All-bank refresh: every elapsed tREFI window blocks the DIMM
    // for tRFC. Only windows that an access could actually collide
    // with matter for timing; each is charged to every bank.
    while (nextRefresh <= when) {
        const Tick refresh_end = nextRefresh + _params.refreshLatency;
        for (auto &bank : bankState)
            bank.busyUntil = std::max(bank.busyUntil, refresh_end);
        nextRefresh += _params.refreshInterval;
        ++refreshes;
    }
}

AccessResult
DramDevice::access(const MemRequest &req, Tick when)
{
    catchUpRefresh(when);

    const std::uint64_t global_row = req.addr / _params.rowBytes;
    const std::uint32_t bank_idx =
        static_cast<std::uint32_t>(global_row % _params.banks);
    const std::uint64_t row = global_row / _params.banks;
    Bank &bank = bankState[bank_idx];

    AccessResult result;
    const Tick start = std::max(when, bank.busyUntil);
    const bool hit = bank.openRow == row;
    result.rowBufferHit = hit;
    const Tick latency =
        hit ? _params.rowHitLatency : _params.rowMissLatency;
    result.completeAt = start + latency;
    result.mediaFreeAt = result.completeAt;
    bank.busyUntil = result.completeAt;
    bank.openRow = row;

    if (hit)
        ++hits;
    else
        ++misses;
    if (req.op == MemOp::Read)
        ++reads;
    else
        ++writes;
    return result;
}

void
DramDevice::reset()
{
    for (auto &bank : bankState)
        bank = Bank{};
    nextRefresh = _params.refreshInterval;
    hits = misses = refreshes = reads = writes = 0;
}

} // namespace lightpc::mem
