/**
 * @file
 * Optane-style PMEM DIMM complex (Figure 2a).
 *
 * Models the self-contained DIMM the paper reverse-engineers: a
 * load-store queue that write-combines 64 B cachelines into 256 B
 * media requests, a two-level inclusive internal cache (SRAM for
 * 256 B read-modify operations, DRAM for 4 KB buffering and address
 * translation), firmware management cost on every access, and the
 * bare PRAM media underneath.
 *
 * The point of this model is Fig. 2b: DIMM-level reads are slower and
 * far more variable than bare PRAM reads (multi-buffer lookups,
 * firmware, media contention with evicted writes), while DIMM-level
 * writes are faster than bare PRAM writes (absorbed by the buffers)
 * until backpressure sets in.
 */

#ifndef LIGHTPC_MEM_PMEM_DIMM_HH
#define LIGHTPC_MEM_PMEM_DIMM_HH

#include <cstdint>

#include "mem/pram_device.hh"
#include "mem/request.hh"
#include "mem/tag_cache.hh"
#include "sim/ticks.hh"

namespace lightpc::mem
{

/** Configuration of one PMEM DIMM. */
struct PmemDimmParams
{
    /** Underlying PRAM media (256 B granularity at DIMM level). */
    PramParams media;

    /** Internal SRAM cache (256 B read-modify buffer). */
    std::uint64_t sramBytes = 256 * 1024;
    std::uint32_t sramLineBytes = pmemMediaGranularity;
    std::uint32_t sramWays = 8;
    Tick sramLatency = 15 * tickNs;

    /** Internal DRAM buffer (4 KB translation/buffering granularity). */
    std::uint64_t dramBytes = std::uint64_t(32) << 20;
    std::uint32_t dramLineBytes = 4096;
    std::uint32_t dramWays = 8;
    Tick dramLatency = 45 * tickNs;

    /** Firmware/translation overhead charged on every access. */
    Tick firmwareLatency = 30 * tickNs;

    /** Load-store queue entries (write combining window). */
    std::uint32_t lsqEntries = 32;

    /** LSQ allocation/reorder cost paid by each accepted write. */
    Tick lsqInsertLatency = 45 * tickNs;

    /** Interval at which the LSQ drains one entry into the SRAM. */
    Tick lsqDrainInterval = 40 * tickNs;

    /**
     * Maximum media backlog the firmware tolerates before it stops
     * accepting new requests (backpressure); bounds the queueing
     * tail a saturating stream can build.
     */
    Tick mediaBacklogLimit = 2000 * tickNs;

    /**
     * Average 256 B media writes per dirty 4 KB castout. The DRAM
     * buffer tracks dirtiness at 4 KB translation granularity, but
     * only the blocks actually written go back to the media.
     */
    std::uint32_t castoutMediaWrites = 2;
};

/**
 * The PMEM DIMM complex: LSQ + SRAM + DRAM + PRAM media + firmware.
 */
class PmemDimm
{
  public:
    explicit PmemDimm(const PmemDimmParams &params = PmemDimmParams());

    const PmemDimmParams &params() const { return _params; }

    /** Service one 64 B access starting no earlier than @p when. */
    AccessResult access(const MemRequest &req, Tick when);

    /** Reads served from an internal buffer (SRAM/DRAM/LSQ). */
    std::uint64_t internalReadHits() const { return readHits; }

    /** Reads that reached the PRAM media. */
    std::uint64_t mediaReads() const { return media.readCount(); }

    /** Writes that reached the PRAM media. */
    std::uint64_t mediaWrites() const { return media.writeCount(); }

    /** Writes combined into an already-pending LSQ entry. */
    std::uint64_t combinedWrites() const { return combined; }

    /** Reset all internal state. */
    void reset();

  private:
    /** Retire LSQ entries whose drain time has passed. */
    void drainLsq(Tick now);

    /** Push one block into the SRAM, cascading evictions downward. */
    void fillSram(Addr block, bool dirty, Tick now);

    /** Push one block into the DRAM buffer, evicting to media. */
    void fillDram(Addr addr, bool dirty, Tick now);

    Addr mediaBlock(Addr addr) const
    {
        return addr & ~Addr(pmemMediaGranularity - 1);
    }

    PmemDimmParams _params;
    PramDevice media;
    TagCache sram;
    TagCache dram;
    /**
     * Write-combining LSQ: pooled request nodes (addr = 256 B media
     * block, readyAt = drain time) on an intrusive list, so queueing
     * a write never allocates.
     */
    RequestPool lsqPool;
    RequestList lsq;
    Tick lastDrain = 0;
    std::uint64_t readHits = 0;
    std::uint64_t combined = 0;
};

} // namespace lightpc::mem

#endif // LIGHTPC_MEM_PMEM_DIMM_HH
