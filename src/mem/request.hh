/**
 * @file
 * Memory request and response types shared across the memory system.
 */

#ifndef LIGHTPC_MEM_REQUEST_HH
#define LIGHTPC_MEM_REQUEST_HH

#include <cstdint>

#include "sim/ticks.hh"

namespace lightpc::mem
{

/** Physical byte address. */
using Addr = std::uint64_t;

/** Cache line size used throughout the system (bytes). */
constexpr std::uint32_t cacheLineBytes = 64;

/** Per-PRAM-device input granularity (bytes), per [58]. */
constexpr std::uint32_t pramDeviceGranularity = 32;

/** Per-DRAM-device input granularity (bytes). */
constexpr std::uint32_t dramDeviceGranularity = 8;

/** Physical access granularity of DIMM-level PRAM media (bytes). */
constexpr std::uint32_t pmemMediaGranularity = 256;

/** Kind of memory operation. */
enum class MemOp
{
    Read,
    Write,
};

/** A single memory access as seen below the caches. */
struct MemRequest
{
    MemOp op = MemOp::Read;
    Addr addr = 0;
    std::uint32_t size = cacheLineBytes;

    /** Line-aligned address. */
    Addr lineAddr() const { return addr & ~Addr(cacheLineBytes - 1); }
};

/** Outcome of a timed access. */
struct AccessResult
{
    /**
     * When the data is available (reads) or the write is accepted
     * from the issuer's point of view (early-return writes complete
     * here even though media stays busy longer).
     */
    Tick completeAt = 0;

    /** When the servicing media becomes free again. */
    Tick mediaFreeAt = 0;

    /** Read was served by ECC reconstruction instead of the target. */
    bool reconstructed = false;

    /** Read/write hit an open row buffer. */
    bool rowBufferHit = false;

    /** Read hit an internal (SRAM/DRAM) buffer of a PMEM DIMM. */
    bool internalCacheHit = false;

    /** Data was repaired from ECC after a device fault. */
    bool corrected = false;

    /**
     * Uncorrectable: the error containment bit is set and the host
     * must take the machine-check path.
     */
    bool containment = false;
};

} // namespace lightpc::mem

#endif // LIGHTPC_MEM_REQUEST_HH
