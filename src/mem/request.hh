/**
 * @file
 * Memory request and response types shared across the memory system,
 * plus the slab-pooled request free-list the PSM/DIMM pipeline uses
 * so that queued requests never hit the heap on the steady state.
 */

#ifndef LIGHTPC_MEM_REQUEST_HH
#define LIGHTPC_MEM_REQUEST_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/ticks.hh"

namespace lightpc::mem
{

/** Physical byte address. */
using Addr = std::uint64_t;

/** Cache line size used throughout the system (bytes). */
constexpr std::uint32_t cacheLineBytes = 64;

/** Per-PRAM-device input granularity (bytes), per [58]. */
constexpr std::uint32_t pramDeviceGranularity = 32;

/** Per-DRAM-device input granularity (bytes). */
constexpr std::uint32_t dramDeviceGranularity = 8;

/** Physical access granularity of DIMM-level PRAM media (bytes). */
constexpr std::uint32_t pmemMediaGranularity = 256;

/** Kind of memory operation. */
enum class MemOp
{
    Read,
    Write,
};

/** A single memory access as seen below the caches. */
struct MemRequest
{
    MemOp op = MemOp::Read;
    Addr addr = 0;
    std::uint32_t size = cacheLineBytes;

    /** Line-aligned address. */
    Addr lineAddr() const { return addr & ~Addr(cacheLineBytes - 1); }
};

/** Outcome of a timed access. */
struct AccessResult
{
    /**
     * When the data is available (reads) or the write is accepted
     * from the issuer's point of view (early-return writes complete
     * here even though media stays busy longer).
     */
    Tick completeAt = 0;

    /** When the servicing media becomes free again. */
    Tick mediaFreeAt = 0;

    /** Read was served by ECC reconstruction instead of the target. */
    bool reconstructed = false;

    /** Read/write hit an open row buffer. */
    bool rowBufferHit = false;

    /** Read hit an internal (SRAM/DRAM) buffer of a PMEM DIMM. */
    bool internalCacheHit = false;

    /** Data was repaired from ECC after a device fault. */
    bool corrected = false;

    /**
     * Uncorrectable: the error containment bit is set and the host
     * must take the machine-check path.
     */
    bool containment = false;
};

/**
 * A request that can sit in a device queue: the access itself plus
 * a ready timestamp and an intrusive link. Nodes are owned by a
 * RequestPool and threaded through RequestList queues, so enqueueing
 * a request is two pointer writes — no allocation, no copy of a
 * container element.
 */
struct PooledRequest : MemRequest
{
    /** When the queue owning this request may retire it. */
    Tick readyAt = 0;

    /** Next request in the owning list (or free list). */
    PooledRequest *next = nullptr;
};

/**
 * Slab-backed free-list of PooledRequest nodes.
 *
 * Slabs are never relocated or returned until destruction, so node
 * pointers stay valid while queued. Steady-state acquire/release is
 * a two-instruction free-list pop/push.
 */
class RequestPool
{
  public:
    RequestPool() = default;

    RequestPool(const RequestPool &) = delete;
    RequestPool &operator=(const RequestPool &) = delete;

    /** Take a node (fields reset to defaults). */
    PooledRequest *
    acquire()
    {
        if (!freeHead) [[unlikely]]
            grow();
        PooledRequest *node = freeHead;
        freeHead = node->next;
        *static_cast<MemRequest *>(node) = MemRequest{};
        node->readyAt = 0;
        node->next = nullptr;
        return node;
    }

    /** Return a node to the pool. @pre not linked into any list. */
    void
    release(PooledRequest *node)
    {
        node->next = freeHead;
        freeHead = node;
    }

    /** Nodes allocated across all slabs (bounded-memory tests). */
    std::size_t capacity() const { return slabs.size() * slabSize; }

  private:
    static constexpr std::size_t slabSize = 64;

    void
    grow()
    {
        slabs.push_back(std::make_unique<PooledRequest[]>(slabSize));
        PooledRequest *slab = slabs.back().get();
        for (std::size_t i = slabSize; i-- > 0;) {
            slab[i].next = freeHead;
            freeHead = &slab[i];
        }
    }

    std::vector<std::unique_ptr<PooledRequest[]>> slabs;
    PooledRequest *freeHead = nullptr;
};

/**
 * Intrusive FIFO of PooledRequest nodes (a device queue). The list
 * never owns memory; nodes go back to their RequestPool on release.
 */
class RequestList
{
  public:
    bool empty() const { return head == nullptr; }
    std::size_t size() const { return count; }

    PooledRequest *front() { return head; }
    const PooledRequest *front() const { return head; }

    /** First node, for intrusive iteration via ->next. */
    PooledRequest *begin() { return head; }
    const PooledRequest *begin() const { return head; }

    void
    pushBack(PooledRequest *node)
    {
        node->next = nullptr;
        if (tail)
            tail->next = node;
        else
            head = node;
        tail = node;
        ++count;
    }

    /** Unlink and return the oldest node. @pre !empty(). */
    PooledRequest *
    popFront()
    {
        PooledRequest *node = head;
        head = node->next;
        if (!head)
            tail = nullptr;
        node->next = nullptr;
        --count;
        return node;
    }

    /** Release every queued node back to @p pool. */
    void
    releaseAll(RequestPool &pool)
    {
        while (head) {
            PooledRequest *node = head;
            head = node->next;
            pool.release(node);
        }
        tail = nullptr;
        count = 0;
    }

  private:
    PooledRequest *head = nullptr;
    PooledRequest *tail = nullptr;
    std::size_t count = 0;
};

} // namespace lightpc::mem

#endif // LIGHTPC_MEM_REQUEST_HH
