/**
 * @file
 * DRAM DIMM timing model.
 *
 * A banked DRAM device with per-bank row buffers and periodic refresh.
 * Used as LegacyPC's working memory, as the local-node DRAM behind the
 * Optane-style PMEM complex, and as the DRAM reference series in
 * Fig. 2b. Refresh is modeled both for timing (tRFC windows that delay
 * colliding accesses) and for the power model (the refresh burden
 * LightPC eliminates).
 */

#ifndef LIGHTPC_MEM_DRAM_DEVICE_HH
#define LIGHTPC_MEM_DRAM_DEVICE_HH

#include <cstdint>
#include <vector>

#include "mem/request.hh"
#include "sim/fast_div.hh"
#include "sim/ticks.hh"

namespace lightpc::mem
{

/** Configuration of one DRAM DIMM. */
struct DramParams
{
    /** Number of banks. */
    std::uint32_t banks = 8;

    /** Row (page) size per bank in bytes. */
    std::uint64_t rowBytes = 2048;

    /** Access latency when the target row is open. */
    Tick rowHitLatency = 25 * tickNs;

    /** Access latency when another row must be closed first. */
    Tick rowMissLatency = 50 * tickNs;

    /** Average refresh command interval (tREFI). */
    Tick refreshInterval = 7800 * tickNs;

    /** Refresh duration during which a bank is unavailable (tRFC). */
    Tick refreshLatency = 350 * tickNs;

    /** DIMM capacity in bytes. */
    std::uint64_t capacityBytes = std::uint64_t(8) << 30;
};

/**
 * One DRAM DIMM with banked row buffers and refresh.
 */
class DramDevice
{
  public:
    explicit DramDevice(const DramParams &params = DramParams());

    const DramParams &params() const { return _params; }

    /**
     * Service an access starting no earlier than @p when.
     *
     * Reads and writes share the row-buffer timing; DRAM writes are
     * absorbed by the open row just like reads (no PRAM-style cooling
     * window).
     */
    AccessResult access(const MemRequest &req, Tick when);

    /** Total accesses that hit an open row. */
    std::uint64_t rowHits() const { return hits; }

    /** Total accesses that required opening a row. */
    std::uint64_t rowMisses() const { return misses; }

    /** Refresh windows charged so far. */
    std::uint64_t refreshCount() const { return refreshes; }

    /** Total reads serviced. */
    std::uint64_t readCount() const { return reads; }

    /** Total writes serviced. */
    std::uint64_t writeCount() const { return writes; }

    /** Reset timing state. */
    void reset();

  private:
    struct Bank
    {
        Tick busyUntil = 0;
        std::uint64_t openRow = ~std::uint64_t(0);
    };

    /** Charge any refresh windows that elapsed before @p when. */
    void catchUpRefresh(Tick when);

    DramParams _params;
    FastDiv rowDecode;   ///< divisor: rowBytes
    FastDiv bankDecode;  ///< divisor: banks
    std::vector<Bank> bankState;
    Tick nextRefresh;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t refreshes = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
};

} // namespace lightpc::mem

#endif // LIGHTPC_MEM_DRAM_DEVICE_HH
