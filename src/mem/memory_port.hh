/**
 * @file
 * Abstract memory port.
 *
 * Cores and caches talk to "whatever is below" through this
 * interface; platform/ wires it to DRAM (LegacyPC), the PSM
 * (LightPC / LightPC-B), or the Optane-style PMEM complex (the
 * Fig. 4 modes).
 */

#ifndef LIGHTPC_MEM_MEMORY_PORT_HH
#define LIGHTPC_MEM_MEMORY_PORT_HH

#include "mem/request.hh"
#include "sim/ticks.hh"

namespace lightpc::mem
{

/**
 * A timed request/response port.
 */
class MemoryPort
{
  public:
    virtual ~MemoryPort() = default;

    /** Service one access starting no earlier than @p when. */
    virtual AccessResult access(const MemRequest &req, Tick when) = 0;

    /**
     * Fence: drain all buffered/outstanding work.
     * @return The tick at which the memory below is quiescent.
     */
    virtual Tick fence(Tick when) { return when; }
};

} // namespace lightpc::mem

#endif // LIGHTPC_MEM_MEMORY_PORT_HH
