#include "mem/backing_store.hh"

#include <algorithm>

namespace lightpc::mem
{

BackingStore::Page *
BackingStore::findPage(Addr page_id) const
{
    auto it = pages.find(page_id);
    return it == pages.end() ? nullptr : it->second.get();
}

BackingStore::Page &
BackingStore::materialize(Addr page_id)
{
    auto &slot = pages[page_id];
    if (!slot) {
        slot = std::make_unique<Page>();
        slot->fill(0);
    }
    return *slot;
}

void
BackingStore::read(Addr addr, void *out, std::uint64_t len) const
{
    auto *dst = static_cast<std::uint8_t *>(out);
    while (len > 0) {
        const Addr page_id = addr / pageBytes;
        const std::uint64_t offset = addr % pageBytes;
        const std::uint64_t chunk = std::min(len, pageBytes - offset);
        if (const Page *page = findPage(page_id))
            std::memcpy(dst, page->data() + offset, chunk);
        else
            std::memset(dst, 0, chunk);
        dst += chunk;
        addr += chunk;
        len -= chunk;
    }
}

void
BackingStore::write(Addr addr, const void *in, std::uint64_t len)
{
    const auto *src = static_cast<const std::uint8_t *>(in);
    while (len > 0) {
        const Addr page_id = addr / pageBytes;
        const std::uint64_t offset = addr % pageBytes;
        const std::uint64_t chunk = std::min(len, pageBytes - offset);
        Page &page = materialize(page_id);
        std::memcpy(page.data() + offset, src, chunk);
        src += chunk;
        addr += chunk;
        len -= chunk;
    }
}

void
BackingStore::clear(Addr addr, std::uint64_t len)
{
    while (len > 0) {
        const Addr page_id = addr / pageBytes;
        const std::uint64_t offset = addr % pageBytes;
        const std::uint64_t chunk = std::min(len, pageBytes - offset);
        if (offset == 0 && chunk == pageBytes) {
            pages.erase(page_id);
        } else if (Page *page = findPage(page_id)) {
            std::memset(page->data() + offset, 0, chunk);
        }
        addr += chunk;
        len -= chunk;
    }
}

bool
BackingStore::equals(const BackingStore &other) const
{
    // A page absent on one side must be all-zero on the other.
    auto zero = [](const Page &p) {
        return std::all_of(p.begin(), p.end(),
                           [](std::uint8_t b) { return b == 0; });
    };
    for (const auto &[id, page] : pages) {
        const Page *theirs = other.findPage(id);
        if (theirs) {
            if (*page != *theirs)
                return false;
        } else if (!zero(*page)) {
            return false;
        }
    }
    for (const auto &[id, page] : other.pages) {
        if (!findPage(id) && !zero(*page))
            return false;
    }
    return true;
}

} // namespace lightpc::mem
