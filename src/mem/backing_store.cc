#include "mem/backing_store.hh"

#include <algorithm>

namespace lightpc::mem
{

BackingStore::Page *
BackingStore::findPage(Addr page_id) const
{
    auto it = pages.find(page_id);
    return it == pages.end() ? nullptr : it->second.get();
}

BackingStore::Page &
BackingStore::materialize(Addr page_id)
{
    auto &slot = pages[page_id];
    if (!slot) {
        slot = std::make_unique<Page>();
        slot->fill(0);
    }
    return *slot;
}

void
BackingStore::read(Addr addr, void *out, std::uint64_t len) const
{
    auto *dst = static_cast<std::uint8_t *>(out);
    while (len > 0) {
        const Addr page_id = addr / pageBytes;
        const std::uint64_t offset = addr % pageBytes;
        const std::uint64_t chunk = std::min(len, pageBytes - offset);
        if (const Page *page = findPage(page_id))
            std::memcpy(dst, page->data() + offset, chunk);
        else
            std::memset(dst, 0, chunk);
        dst += chunk;
        addr += chunk;
        len -= chunk;
    }
}

void
BackingStore::writeRaw(Addr addr, const void *in, std::uint64_t len)
{
    const auto *src = static_cast<const std::uint8_t *>(in);
    while (len > 0) {
        const Addr page_id = addr / pageBytes;
        const std::uint64_t offset = addr % pageBytes;
        const std::uint64_t chunk = std::min(len, pageBytes - offset);
        Page &page = materialize(page_id);
        std::memcpy(page.data() + offset, src, chunk);
        src += chunk;
        addr += chunk;
        len -= chunk;
    }
}

void
BackingStore::write(Addr addr, const void *in, std::uint64_t len)
{
    if (cutArmed) {
        writeTimed(_writeClock, _writeClock, addr, in, len);
        return;
    }
    writeRaw(addr, in, len);
}

void
BackingStore::armPowerCut(Tick cut_tick, std::uint64_t torn_seed)
{
    cutArmed = true;
    _cutTick = cut_tick;
    ++_cutEpoch;
    tornRng = Rng(torn_seed);
    _cutStats = DurabilityCutStats{};
}

void
BackingStore::writeTimed(Tick start, Tick end, Addr addr,
                         const void *in, std::uint64_t len)
{
    if (!cutArmed) {
        writeRaw(addr, in, len);
        return;
    }
    if (len == 0)
        return;
    if (end < start)
        end = start;

    // A write whose service interval began before a previously fired
    // cut belongs to a dead epoch: the machine it was issued on lost
    // power mid-flight. Replaying it under a newer armed cut must not
    // resurrect the dropped suffix.
    if (_epochFloor > 0 && start < _epochFloor) {
        ++_cutStats.staleWrites;
        _cutStats.staleBytes += len;
        return;
    }

    // An aligned store instruction is atomic: never torn.
    if (len <= 8) {
        if (end < _cutTick) {
            writeRaw(addr, in, len);
            ++_cutStats.durableWrites;
            _cutStats.durableBytes += len;
        } else {
            ++_cutStats.droppedWrites;
            _cutStats.droppedBytes += len;
        }
        return;
    }

    if (end < _cutTick) {
        writeRaw(addr, in, len);
        ++_cutStats.durableWrites;
        _cutStats.durableBytes += len;
        return;
    }
    if (start >= _cutTick) {
        ++_cutStats.droppedWrites;
        _cutStats.droppedBytes += len;
        return;
    }

    // The write straddles the cut: lines complete uniformly over
    // [start, end]; the prefix that finished before the rails fell
    // is durable, the line in flight at the cut is torn, the rest
    // is lost.
    const Addr first_line = addr & ~Addr(cacheLineBytes - 1);
    const Addr last_line =
        (addr + len - 1) & ~Addr(cacheLineBytes - 1);
    const std::uint64_t lines =
        (last_line - first_line) / cacheLineBytes + 1;
    const double frac = static_cast<double>(_cutTick - start)
        / static_cast<double>(end - start);
    std::uint64_t durable_lines =
        static_cast<std::uint64_t>(frac * static_cast<double>(lines));
    durable_lines = std::min(durable_lines, lines - 1);

    std::uint64_t durable_len = 0;
    if (durable_lines > 0) {
        const Addr durable_end =
            first_line + durable_lines * cacheLineBytes;
        durable_len = std::min<std::uint64_t>(len, durable_end - addr);
    }

    // Tear the boundary line: the RNG decides how many of its bytes
    // reached the media before the rails left specification.
    const Addr torn_start = addr + durable_len;
    const Addr torn_line = torn_start & ~Addr(cacheLineBytes - 1);
    const std::uint64_t line_avail = std::min<std::uint64_t>(
        len - durable_len,
        torn_line + cacheLineBytes - torn_start);
    const std::uint64_t torn_bytes = tornRng.below(line_avail + 1);

    if (durable_len + torn_bytes > 0)
        writeRaw(addr, in, durable_len + torn_bytes);

    ++_cutStats.tornWrites;
    _cutStats.durableBytes += durable_len + torn_bytes;
    _cutStats.droppedBytes += len - durable_len - torn_bytes;
    _cutStats.lastTornLine = torn_line;
    _cutStats.lastTornBytes = torn_bytes;
}

void
BackingStore::clear(Addr addr, std::uint64_t len)
{
    while (len > 0) {
        const Addr page_id = addr / pageBytes;
        const std::uint64_t offset = addr % pageBytes;
        const std::uint64_t chunk = std::min(len, pageBytes - offset);
        if (offset == 0 && chunk == pageBytes) {
            pages.erase(page_id);
        } else if (Page *page = findPage(page_id)) {
            std::memset(page->data() + offset, 0, chunk);
        }
        addr += chunk;
        len -= chunk;
    }
}

std::uint64_t
BackingStore::contentDigest() const
{
    std::vector<Addr> ids;
    ids.reserve(pages.size());
    for (const auto &[id, page] : pages) {
        const bool zero =
            std::all_of(page->begin(), page->end(),
                        [](std::uint8_t b) { return b == 0; });
        if (!zero)
            ids.push_back(id);
    }
    std::sort(ids.begin(), ids.end());

    std::uint64_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 0x100000001b3ULL;
        }
    };
    for (const Addr id : ids) {
        mix(id);
        const Page &page = *findPage(id);
        for (const std::uint8_t b : page) {
            h ^= b;
            h *= 0x100000001b3ULL;
        }
    }
    return h;
}

void
BackingStore::copyContentsFrom(const BackingStore &other)
{
    pages.clear();
    for (const auto &[id, page] : other.pages)
        pages[id] = std::make_unique<Page>(*page);
}

bool
BackingStore::equals(const BackingStore &other) const
{
    // A page absent on one side must be all-zero on the other.
    auto zero = [](const Page &p) {
        return std::all_of(p.begin(), p.end(),
                           [](std::uint8_t b) { return b == 0; });
    };
    for (const auto &[id, page] : pages) {
        const Page *theirs = other.findPage(id);
        if (theirs) {
            if (*page != *theirs)
                return false;
        } else if (!zero(*page)) {
            return false;
        }
    }
    for (const auto &[id, page] : other.pages) {
        if (!findPage(id) && !zero(*page))
            return false;
    }
    return true;
}

} // namespace lightpc::mem
