/**
 * @file
 * Bare-metal PRAM (phase-change) device timing model.
 *
 * Models one crosspoint PRAM die as used on a Bare-NVDIMM: reads are
 * nearly DRAM speed (1.1x, Table I), writes are ~4x slower because the
 * thermal core must cool off before the cell can be touched again
 * (Section V-A). The device is serialized: the media stays busy for
 * the full write latency, which is exactly what produces the
 * read-after-write head-of-line blocking that the PSM's early-return +
 * ECC reconstruction removes.
 *
 * Endurance (set/reset cycles) is tracked per region so wear-leveling
 * can be validated and lifetime projected (Section VIII).
 */

#ifndef LIGHTPC_MEM_PRAM_DEVICE_HH
#define LIGHTPC_MEM_PRAM_DEVICE_HH

#include <cstdint>
#include <vector>

#include "mem/request.hh"
#include "sim/fast_div.hh"
#include "sim/ticks.hh"

namespace lightpc::mem
{

/** Configuration of one PRAM die. */
struct PramParams
{
    /** Media read latency for one device-granule access. */
    Tick readLatency = 55 * tickNs;

    /**
     * Media write latency, including the thermal cooling window
     * during which the die cannot be accessed again. The paper puts
     * PRAM writes at 4-8x its reads at the processor side (Section
     * V-A), and the PRAM part it cites ([61], 8 Gb, 40 MB/s program
     * bandwidth) sustains one 32 B device write per ~800 ns.
     */
    Tick writeLatency = 800 * tickNs;

    /** Die capacity in bytes. */
    std::uint64_t capacityBytes = std::uint64_t(2) << 30;

    /** Write endurance per cell region (set/reset cycles). */
    std::uint64_t enduranceCycles = 100'000'000;

    /** Wear-accounting region size in bytes. */
    std::uint64_t wearRegionBytes = std::uint64_t(1) << 20;
};

/**
 * One serialized PRAM die.
 */
class PramDevice
{
  public:
    explicit PramDevice(const PramParams &params = PramParams());

    const PramParams &params() const { return _params; }

    /**
     * Service a read beginning no earlier than @p when.
     *
     * The die serializes: if a write is still cooling off, the read
     * waits (the blocking behaviour LightPC-B exhibits).
     */
    AccessResult read(Tick when);

    /**
     * Service a write beginning no earlier than @p when.
     *
     * @param when         Earliest start time.
     * @param addr         Device-local byte address (wear tracking).
     * @param early_return When true the issuer considers the write
     *                     complete at acceptance (LightPC); the media
     *                     still stays busy for the cooling window.
     */
    AccessResult write(Tick when, Addr addr, bool early_return);

    /**
     * MemoryPort-style entry: service @p req starting no earlier
     * than @p when. Writes are synchronous (no early return) — the
     * PSM layers above decide when early-return semantics apply and
     * call write() directly.
     */
    AccessResult
    access(const MemRequest &req, Tick when)
    {
        if (req.op == MemOp::Read)
            return read(when);
        return write(when, req.addr, /*early_return=*/false);
    }

    /** Time at which the die becomes free. */
    Tick busyUntil() const { return _busyUntil; }

    /** True if the die would delay an access arriving at @p when. */
    bool busyAt(Tick when) const { return _busyUntil > when; }

    /** Total reads serviced. */
    std::uint64_t readCount() const { return reads; }

    /** Total writes serviced. */
    std::uint64_t writeCount() const { return writes; }

    /** Aggregate ticks requests spent waiting on a busy die. */
    Tick stallTicks() const { return stalled; }

    /** Per-region write counts (wear-leveling validation). */
    const std::vector<std::uint64_t> &wearByRegion() const
    {
        return wear;
    }

    /** Largest per-region write count. */
    std::uint64_t maxRegionWear() const;

    /**
     * Remaining lifetime fraction of the most-worn region in [0, 1].
     */
    double lifetimeRemaining() const;

    /** Reset timing and wear state (the OC-PMEM reset port). */
    void reset();

  private:
    PramParams _params;
    FastDiv wearRegion;   ///< divisor: wearRegionBytes
    FastDiv wearRegions;  ///< divisor: wear.size()
    Tick _busyUntil = 0;
    Tick stalled = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::vector<std::uint64_t> wear;
};

} // namespace lightpc::mem

#endif // LIGHTPC_MEM_PRAM_DEVICE_HH
