/**
 * @file
 * Bare-metal PRAM (phase-change) device timing model.
 *
 * Models one crosspoint PRAM die as used on a Bare-NVDIMM: reads are
 * nearly DRAM speed (1.1x, Table I), writes are ~4x slower because the
 * thermal core must cool off before the cell can be touched again
 * (Section V-A). The device is serialized: the media stays busy for
 * the full write latency, which is exactly what produces the
 * read-after-write head-of-line blocking that the PSM's early-return +
 * ECC reconstruction removes.
 *
 * Endurance (set/reset cycles) is tracked per region so wear-leveling
 * can be validated and lifetime projected (Section VIII). The wear
 * counters additionally feed the media-fault model: past a
 * configurable wear onset, writes stochastically create *stuck-at*
 * symbols that persist until the line is retired, and every read can
 * additionally suffer transient (resistance-drift) symbol flips at a
 * configurable raw error rate. The PSM's RAS pipeline turns those
 * faults into XCC corrections, symbol-ECC reconstructions, or
 * contained MCEs — never silent corruption.
 */

#ifndef LIGHTPC_MEM_PRAM_DEVICE_HH
#define LIGHTPC_MEM_PRAM_DEVICE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "mem/request.hh"
#include "sim/fast_div.hh"
#include "sim/rng.hh"
#include "sim/ticks.hh"
#include "stats/histogram.hh"

namespace lightpc::mem
{

/**
 * Media-fault model of one PRAM die (Section V-A reliability).
 *
 * A "symbol" is one byte of a 32 B device granule — the unit the
 * symbol-based ECC tier operates on. Each device granule carries
 * internal per-granule detection (CRC-class), so a corrupted granule
 * is always *detected* and surfaces to the PSM as an erasure; the
 * codecs then either repair it or raise the containment bit.
 */
struct MediaFaultParams
{
    /** Master switch; when false no fault state is ever sampled. */
    bool enabled = false;

    /**
     * Transient per-symbol raw error rate: the probability that any
     * given symbol of a granule read comes back flipped (resistance
     * drift). Cleared by a rewrite of the line (patrol scrub).
     */
    double transientBer = 0.0;

    /**
     * Probability that a write to a fully-worn region leaves one
     * symbol of a written granule permanently stuck. Scales linearly
     * from zero at `wearOnsetFraction` to this value at 100% wear.
     */
    double wearStuckRate = 0.0;

    /** Wear fraction below which no stuck-at faults are created. */
    double wearOnsetFraction = 0.5;

    /** Cap on tracked stuck symbols per 32 B granule. */
    std::uint32_t maxStuckPerGranule = 8;

    /** Seed of the per-device fault RNG (salted per unit by the PSM). */
    std::uint64_t seed = 0x7261734cULL;  // "rasL"
};

/**
 * Address-space tag for the parity granule that accompanies a data
 * granule pair. The device models its group's companion ECC granule
 * (written in lockstep with every line write, so it wears and sticks
 * at the same rate) under `line_addr | pramParityTag`.
 */
constexpr Addr pramParityTag = Addr(1) << 63;

/** Sampled corruption of one 32 B granule read. */
struct GranuleFaults
{
    std::uint32_t stuck = 0;    ///< persistent stuck-at symbols
    std::uint32_t flipped = 0;  ///< transient drift flips (this read)

    std::uint32_t total() const { return stuck + flipped; }
    bool any() const { return total() != 0; }
};

/** Configuration of one PRAM die. */
struct PramParams
{
    /** Media read latency for one device-granule access. */
    Tick readLatency = 55 * tickNs;

    /**
     * Media write latency, including the thermal cooling window
     * during which the die cannot be accessed again. The paper puts
     * PRAM writes at 4-8x its reads at the processor side (Section
     * V-A), and the PRAM part it cites ([61], 8 Gb, 40 MB/s program
     * bandwidth) sustains one 32 B device write per ~800 ns.
     */
    Tick writeLatency = 800 * tickNs;

    /** Die capacity in bytes. */
    std::uint64_t capacityBytes = std::uint64_t(2) << 30;

    /** Write endurance per cell region (set/reset cycles). */
    std::uint64_t enduranceCycles = 100'000'000;

    /** Wear-accounting region size in bytes. */
    std::uint64_t wearRegionBytes = std::uint64_t(1) << 20;

    /** Media-fault model (disabled by default). */
    MediaFaultParams faults;
};

/**
 * One serialized PRAM die.
 */
class PramDevice
{
  public:
    explicit PramDevice(const PramParams &params = PramParams());

    const PramParams &params() const { return _params; }

    /**
     * Service a read beginning no earlier than @p when.
     *
     * The die serializes: if a write is still cooling off, the read
     * waits (the blocking behaviour LightPC-B exhibits).
     */
    AccessResult read(Tick when);

    /**
     * Service a write beginning no earlier than @p when.
     *
     * @param when         Earliest start time.
     * @param addr         Device-local byte address (wear tracking).
     * @param early_return When true the issuer considers the write
     *                     complete at acceptance (LightPC); the media
     *                     still stays busy for the cooling window.
     */
    AccessResult write(Tick when, Addr addr, bool early_return);

    /**
     * MemoryPort-style entry: service @p req starting no earlier
     * than @p when. Writes are synchronous (no early return) — the
     * PSM layers above decide when early-return semantics apply and
     * call write() directly.
     */
    AccessResult
    access(const MemRequest &req, Tick when)
    {
        if (req.op == MemOp::Read)
            return read(when);
        return write(when, req.addr, /*early_return=*/false);
    }

    /** Time at which the die becomes free. */
    Tick busyUntil() const { return _busyUntil; }

    /** True if the die would delay an access arriving at @p when. */
    bool busyAt(Tick when) const { return _busyUntil > when; }

    /** Total reads serviced. */
    std::uint64_t readCount() const { return reads; }

    /** Total writes serviced. */
    std::uint64_t writeCount() const { return writes; }

    /** Aggregate ticks requests spent waiting on a busy die. */
    Tick stallTicks() const { return stalled; }

    /** Per-region write counts (wear-leveling validation). */
    const std::vector<std::uint64_t> &wearByRegion() const
    {
        return wear;
    }

    /** Largest per-region write count. */
    std::uint64_t maxRegionWear() const;

    /**
     * Per-region wear quantiles: one histogram sample per region,
     * value = the region's saturating write count. The fault model
     * and bench_ablation_wear_leveling read the same numbers.
     */
    stats::Histogram wearHistogram() const;

    /** Fold this die's per-region wear samples into @p hist. */
    void addWearSamples(stats::Histogram &hist) const;

    /** Fraction of endurance consumed at @p addr's region in [0,1]. */
    double wearFraction(Addr addr) const;

    /**
     * Remaining lifetime fraction of the most-worn region in [0, 1].
     */
    double lifetimeRemaining() const;

    // --- media-fault model ----------------------------------------

    /**
     * Re-seed the fault RNG (the PSM salts the configured seed per
     * service unit so dies do not replay each other's fault trace).
     */
    void seedFaults(std::uint64_t seed);

    /**
     * Sample the corruption of a 32 B granule read at device-local
     * address @p granule_addr. Transient flips are drawn fresh per
     * call; stuck symbols repeat until retireGranule()/reset().
     * Returns an empty sample when the model is disabled.
     */
    GranuleFaults sampleReadFaults(Addr granule_addr);

    /** Persistent stuck symbols recorded for one granule. */
    std::uint32_t stuckSymbols(Addr granule_addr) const;

    /**
     * Forget the stuck state of a granule (the line containing it
     * was retired; its traffic now lands on a spare).
     */
    void retireGranule(Addr granule_addr);

    /** Granules currently carrying at least one stuck symbol. */
    std::size_t stuckGranuleCount() const { return stuckMap.size(); }

    /**
     * Age the die: set every region's wear counter to @p cycles
     * (saturating), as if that many writes had landed uniformly.
     * Campaign pre-conditioning for wear-level sweeps.
     */
    void preWear(std::uint64_t cycles);

    /** Reset timing and wear state (the OC-PMEM reset port). */
    void reset();

  private:
    /** Saturating wear increment for the region holding @p addr. */
    void recordWear(Addr addr);

    /** Stochastic stuck-at creation for a written granule. */
    void maybeStick(Addr granule_addr, double wear_fraction);

    PramParams _params;
    FastDiv wearRegion;   ///< divisor: wearRegionBytes
    FastDiv wearRegions;  ///< divisor: wear.size()
    Tick _busyUntil = 0;
    Tick stalled = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::vector<std::uint64_t> wear;

    /** Fault RNG (sampling order is part of the seeded trace). */
    Rng faultRng;
    /** P(>=1 transient flip per granule read), fixed at construction. */
    double pAnyFlip = 0.0;
    /** Granule address -> persistent stuck-symbol count. */
    std::unordered_map<Addr, std::uint32_t> stuckMap;
};

} // namespace lightpc::mem

#endif // LIGHTPC_MEM_PRAM_DEVICE_HH
