#include "mem/pram_device.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace lightpc::mem
{

PramDevice::PramDevice(const PramParams &params)
    : _params(params)
{
    if (_params.wearRegionBytes == 0)
        fatal("PramDevice wearRegionBytes must be nonzero");
    const std::uint64_t regions =
        (_params.capacityBytes + _params.wearRegionBytes - 1)
        / _params.wearRegionBytes;
    wear.assign(regions ? regions : 1, 0);
    wearRegion.set(_params.wearRegionBytes);
    wearRegions.set(wear.size());
}

AccessResult
PramDevice::read(Tick when)
{
    AccessResult result;
    const Tick start = std::max(when, _busyUntil);
    stalled += start - when;
    result.completeAt = start + _params.readLatency;
    result.mediaFreeAt = result.completeAt;
    _busyUntil = result.completeAt;
    ++reads;
    return result;
}

AccessResult
PramDevice::write(Tick when, Addr addr, bool early_return)
{
    AccessResult result;
    const Tick start = std::max(when, _busyUntil);
    stalled += start - when;
    result.mediaFreeAt = start + _params.writeLatency;
    result.completeAt = early_return ? start : result.mediaFreeAt;
    _busyUntil = result.mediaFreeAt;
    ++writes;
    const std::uint64_t region = wearRegions.mod(wearRegion.div(addr));
    ++wear[region];
    return result;
}

std::uint64_t
PramDevice::maxRegionWear() const
{
    return *std::max_element(wear.begin(), wear.end());
}

double
PramDevice::lifetimeRemaining() const
{
    const double used = static_cast<double>(maxRegionWear())
        / static_cast<double>(_params.enduranceCycles);
    return used >= 1.0 ? 0.0 : 1.0 - used;
}

void
PramDevice::reset()
{
    _busyUntil = 0;
    stalled = 0;
    reads = 0;
    writes = 0;
    std::fill(wear.begin(), wear.end(), 0);
}

} // namespace lightpc::mem
