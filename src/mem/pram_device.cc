#include "mem/pram_device.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace lightpc::mem
{

PramDevice::PramDevice(const PramParams &params)
    : _params(params), faultRng(params.faults.seed)
{
    if (_params.wearRegionBytes == 0)
        fatal("PramDevice wearRegionBytes must be nonzero");
    if (_params.faults.transientBer < 0.0
        || _params.faults.transientBer > 1.0
        || _params.faults.wearStuckRate < 0.0
        || _params.faults.wearStuckRate > 1.0)
        fatal("PramDevice fault rates must be in [0, 1]");
    if (_params.faults.wearOnsetFraction < 0.0
        || _params.faults.wearOnsetFraction >= 1.0)
        fatal("PramDevice wearOnsetFraction must be in [0, 1)");
    const std::uint64_t regions =
        (_params.capacityBytes + _params.wearRegionBytes - 1)
        / _params.wearRegionBytes;
    wear.assign(regions ? regions : 1, 0);
    wearRegion.set(_params.wearRegionBytes);
    wearRegions.set(wear.size());
    // P(at least one of the 32 symbols flips) = 1 - (1-ber)^32,
    // hoisted out of the per-read path.
    pAnyFlip = 1.0
        - std::pow(1.0 - _params.faults.transientBer,
                   static_cast<double>(pramDeviceGranularity));
}

AccessResult
PramDevice::read(Tick when)
{
    AccessResult result;
    const Tick start = std::max(when, _busyUntil);
    stalled += start - when;
    result.completeAt = start + _params.readLatency;
    result.mediaFreeAt = result.completeAt;
    _busyUntil = result.completeAt;
    ++reads;
    return result;
}

void
PramDevice::recordWear(Addr addr)
{
    const std::uint64_t region = wearRegions.mod(wearRegion.div(addr));
    // Saturate at the rated endurance: a counter that wrapped would
    // report a hammered region as pristine, silently disarming both
    // the lifetime projection and the wear-driven fault model, and
    // wearFraction() caps at 1.0 anyway — counting past the rating
    // only skews the wear histograms.
    std::uint64_t &w = wear[region];
    if (w < _params.enduranceCycles)
        ++w;
}

void
PramDevice::maybeStick(Addr granule_addr, double wear_fraction)
{
    const MediaFaultParams &f = _params.faults;
    const double onset = f.wearOnsetFraction;
    if (wear_fraction <= onset || f.wearStuckRate <= 0.0)
        return;
    const double excess = std::min(
        (wear_fraction - onset) / (1.0 - onset), 1.0);
    if (!faultRng.chance(f.wearStuckRate * excess))
        return;
    std::uint32_t &stuck = stuckMap[granule_addr];
    if (stuck < f.maxStuckPerGranule)
        ++stuck;
}

AccessResult
PramDevice::write(Tick when, Addr addr, bool early_return)
{
    AccessResult result;
    const Tick start = std::max(when, _busyUntil);
    stalled += start - when;
    result.mediaFreeAt = start + _params.writeLatency;
    result.completeAt = early_return ? start : result.mediaFreeAt;
    _busyUntil = result.mediaFreeAt;
    ++writes;
    recordWear(addr);
    if (_params.faults.enabled) {
        // A line write programs both 32 B granules; cells of a worn
        // region may fail to switch and come up stuck.
        const double frac = wearFraction(addr);
        const Addr granule = addr & ~Addr(pramDeviceGranularity - 1);
        maybeStick(granule, frac);
        maybeStick(granule + pramDeviceGranularity, frac);
        // The companion parity granule reprograms with every line
        // write, so it accumulates stuck cells at the same rate.
        maybeStick(granule | pramParityTag, frac);
    }
    return result;
}

std::uint64_t
PramDevice::maxRegionWear() const
{
    return *std::max_element(wear.begin(), wear.end());
}

stats::Histogram
PramDevice::wearHistogram() const
{
    stats::Histogram hist;
    addWearSamples(hist);
    return hist;
}

void
PramDevice::addWearSamples(stats::Histogram &hist) const
{
    for (const std::uint64_t w : wear)
        hist.add(w);
}

double
PramDevice::wearFraction(Addr addr) const
{
    const std::uint64_t region = wearRegions.mod(wearRegion.div(addr));
    return std::min(
        static_cast<double>(wear[region])
            / static_cast<double>(_params.enduranceCycles),
        1.0);
}

double
PramDevice::lifetimeRemaining() const
{
    const double used = static_cast<double>(maxRegionWear())
        / static_cast<double>(_params.enduranceCycles);
    return used >= 1.0 ? 0.0 : 1.0 - used;
}

void
PramDevice::seedFaults(std::uint64_t seed)
{
    faultRng = Rng(seed);
}

GranuleFaults
PramDevice::sampleReadFaults(Addr granule_addr)
{
    GranuleFaults out;
    if (!_params.faults.enabled)
        return out;
    out.stuck = stuckSymbols(granule_addr);

    const double ber = _params.faults.transientBer;
    if (ber > 0.0) {
        // Fast path: one draw against the precomputed P(>=1 flip in
        // 32 symbols) rejects the whole granule in the overwhelmingly
        // common clean case; only then sample the remaining symbols.
        if (faultRng.uniform() < pAnyFlip) {
            out.flipped = 1;
            for (std::uint32_t s = 1; s < pramDeviceGranularity; ++s) {
                if (faultRng.uniform() < ber)
                    ++out.flipped;
            }
        }
    }
    return out;
}

std::uint32_t
PramDevice::stuckSymbols(Addr granule_addr) const
{
    const auto it = stuckMap.find(granule_addr);
    return it == stuckMap.end() ? 0 : it->second;
}

void
PramDevice::retireGranule(Addr granule_addr)
{
    stuckMap.erase(granule_addr);
}

void
PramDevice::preWear(std::uint64_t cycles)
{
    // Same saturation point as recordWear().
    std::fill(wear.begin(), wear.end(),
              std::min(cycles, _params.enduranceCycles));
}

void
PramDevice::reset()
{
    _busyUntil = 0;
    stalled = 0;
    reads = 0;
    writes = 0;
    std::fill(wear.begin(), wear.end(), 0);
    stuckMap.clear();
    faultRng = Rng(_params.faults.seed);
}

} // namespace lightpc::mem
