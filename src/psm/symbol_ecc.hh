/**
 * @file
 * Symbol-based erasure code — the finer-granule ECC tier LightPC's
 * Section VIII sketches as future work.
 *
 * XCC (the XOR pair code) regenerates one known-bad 32 B half per
 * cacheline in a single cycle, but cannot cope with two or more
 * simultaneously dead devices. The paper proposes layering a
 * symbol-based code used *only* in that rare case, accepting its
 * en/decoding latency in exchange for chipkill-class coverage.
 *
 * This is a Reed-Solomon-style erasure code over GF(2^8) in
 * evaluation form: the k data symbols are the coefficients of a
 * polynomial of degree < k, and the n = k + r codeword symbols are
 * its evaluations at n distinct field points. Any k surviving
 * symbols reconstruct the data by solving the corresponding
 * Vandermonde system (erasure positions are known from per-device
 * fault state, so no error location step is needed). Striped across
 * a Bare-NVDIMM's devices, the code tolerates any r simultaneously
 * dead devices.
 */

#ifndef LIGHTPC_PSM_SYMBOL_ECC_HH
#define LIGHTPC_PSM_SYMBOL_ECC_HH

#include <cstdint>
#include <vector>

namespace lightpc::psm
{

/**
 * Erasure code over GF(2^8); maximum-distance-separable.
 */
class SymbolEcc
{
  public:
    /**
     * @param data_symbols   k: data symbols per codeword.
     * @param parity_symbols r: extra symbols (erasures tolerated).
     * @pre k + r <= 255.
     */
    SymbolEcc(unsigned data_symbols, unsigned parity_symbols);

    unsigned dataSymbols() const { return k; }
    unsigned paritySymbols() const { return r; }
    unsigned codewordSymbols() const { return k + r; }

    /** Encode k data symbols into an n-symbol codeword. */
    std::vector<std::uint8_t>
    encode(const std::vector<std::uint8_t> &data) const;

    /**
     * Allocation-free encode: @p data holds k symbols, @p codeword
     * receives n. Horner steps use the per-position multiplication
     * rows built at construction (one lookup per step, no log/exp
     * pair, no zero branches).
     */
    void encodeInto(const std::uint8_t *data,
                    std::uint8_t *codeword) const;

    /**
     * Recover the k data symbols from a codeword with erasures.
     *
     * @param codeword n symbols; erased entries may hold anything.
     * @param erased   n flags; true marks an erased symbol.
     * @param out      Receives the k recovered data symbols.
     * @return false when fewer than k symbols survive
     *         (unrecoverable — the containment case).
     */
    bool decode(const std::vector<std::uint8_t> &codeword,
                const std::vector<bool> &erased,
                std::vector<std::uint8_t> &out) const;

    /**
     * Lane (device) convenience: @p lanes holds k lanes of
     * @p lane_bytes each, lane-major; one codeword is computed per
     * byte offset. @return n lanes, lane-major.
     */
    std::vector<std::uint8_t>
    encodeLanes(const std::vector<std::uint8_t> &lanes,
                std::size_t lane_bytes) const;

    /**
     * Lane-wise decode; @p lanes holds n lanes, @p erased flags one
     * entry per lane. @p out receives k data lanes.
     */
    bool decodeLanes(const std::vector<std::uint8_t> &lanes,
                     std::size_t lane_bytes,
                     const std::vector<bool> &erased,
                     std::vector<std::uint8_t> &out) const;

  private:
    /**
     * Find k survivors and invert their Vandermonde system.
     *
     * @param erased    n erasure flags.
     * @param survivors Receives the k surviving positions.
     * @param recovery  Receives the k x k recovery matrix R with
     *                  data = R * surviving values.
     * @return false when fewer than k symbols survive.
     */
    bool buildRecovery(const std::vector<bool> &erased,
                       std::vector<unsigned> &survivors,
                       std::vector<std::uint8_t> &recovery) const;

    unsigned k;
    unsigned r;

    /**
     * Per-position Horner rows: row i maps acc -> acc * point(i),
     * 256 entries each, built once per codec.
     */
    std::vector<std::uint8_t> hornerRows;
};

} // namespace lightpc::psm

#endif // LIGHTPC_PSM_SYMBOL_ECC_HH
