#include "psm/scrub.hh"

#include "sim/logging.hh"

namespace lightpc::psm
{

PatrolScrubber::PatrolScrubber(Psm &psm_, const ScrubParams &params)
    : psm(psm_), _params(params)
{
    if (_params.linesPerStep == 0)
        fatal("PatrolScrubber linesPerStep must be nonzero");
    if (psm.managedLines() == 0)
        fatal("PatrolScrubber needs a nonempty managed space");
}

std::uint64_t
PatrolScrubber::step(Tick when)
{
    std::uint64_t serviced = 0;
    for (std::uint64_t budget = _params.linesPerStep; budget > 0;
         --budget) {
        const Psm::ScrubOutcome out = psm.scrubLine(_cursor, when);
        if (!out.serviced) {
            // Busy unit (or the line is dirty in its row buffer).
            // Stay on the line so the sweep stays gapless, up to the
            // retry budget; a persistently-hot line is abandoned
            // until the next sweep rather than stalling the patrol.
            if (_params.maxRetries != 0
                && ++retries >= _params.maxRetries) {
                ++_stats.skipped;
            } else {
                break;
            }
        } else {
            ++serviced;
            ++_stats.serviced;
            if (out.repaired)
                ++_stats.repairs;
            if (out.retired)
                ++_stats.retirements;
            if (out.containment)
                ++_stats.containments;
        }
        retries = 0;
        if (++_cursor == psm.managedLines()) {
            _cursor = 0;
            ++_stats.sweeps;
            // End the step at the sweep boundary even with budget
            // left: a step that spilled into the next sweep would
            // make per-sweep accounting (lines serviced exactly
            // once per sweep) depend on step alignment.
            break;
        }
    }
    return serviced;
}

void
PatrolScrubber::reset()
{
    _cursor = 0;
    retries = 0;
    _stats = ScrubberStats{};
}

} // namespace lightpc::psm
