/**
 * @file
 * Patrol scrubber: background sweep of OC-PMEM for latent media
 * faults.
 *
 * Transient (drift) corruption accumulates silently on cold lines —
 * nothing reads them, so nothing corrects them, and a line can decay
 * past what the ECC tiers repair before anyone notices. The patrol
 * scrubber closes that window: it walks every *logical* line in
 * order, reading each codeword in an idle row-buffer slot, letting
 * the PSM rewrite transiently-corrupted lines and retire slots whose
 * media has started sticking.
 *
 * Sweeping logical (not physical) indices makes the sweep immune to
 * Start-Gap rotation: the gap can move any number of times mid-sweep
 * and each logical line is still visited exactly once per sweep —
 * no line is skipped because it rotated behind the cursor and none
 * is scrubbed twice because it rotated ahead of it. (The physical
 * gap slot holds no data and needs no scrubbing.)
 */

#ifndef LIGHTPC_PSM_SCRUB_HH
#define LIGHTPC_PSM_SCRUB_HH

#include <cstdint>

#include "psm/psm.hh"
#include "sim/ticks.hh"

namespace lightpc::psm
{

/** Configuration of the patrol scrubber. */
struct ScrubParams
{
    /** Lines visited per step() call (the idle-slot budget). */
    std::uint64_t linesPerStep = 64;

    /**
     * Give up on a busy line after this many consecutive deferrals
     * and move on (it will be caught next sweep); keeps one hot unit
     * from stalling the whole patrol. Zero retries forever.
     */
    std::uint32_t maxRetries = 8;
};

/** Counters of one scrubber instance. */
struct ScrubberStats
{
    std::uint64_t sweeps = 0;       ///< complete passes over the space
    std::uint64_t serviced = 0;     ///< lines actually checked
    std::uint64_t repairs = 0;      ///< transient rewrites
    std::uint64_t retirements = 0;  ///< slots moved to spares
    std::uint64_t containments = 0; ///< uncorrectable lines found
    std::uint64_t skipped = 0;      ///< lines abandoned after retries
};

/**
 * The patrol sim-object. Call step() whenever the platform has idle
 * time; the scrubber advances its cursor and services up to
 * linesPerStep lines through Psm::scrubLine().
 */
class PatrolScrubber
{
  public:
    explicit PatrolScrubber(Psm &psm,
                            const ScrubParams &params = ScrubParams());

    const ScrubParams &params() const { return _params; }

    /**
     * Advance the sweep at time @p when.
     *
     * @return Lines serviced this step (deferred lines don't count).
     */
    std::uint64_t step(Tick when);

    /** Next logical line the patrol will visit. */
    std::uint64_t cursor() const { return _cursor; }

    /** Complete passes over the managed space so far. */
    std::uint64_t sweepsCompleted() const { return _stats.sweeps; }

    const ScrubberStats &stats() const { return _stats; }

    /** Restart the sweep from line 0 (cold boot). */
    void reset();

  private:
    Psm &psm;
    ScrubParams _params;
    std::uint64_t _cursor = 0;
    std::uint32_t retries = 0;
    ScrubberStats _stats;
};

} // namespace lightpc::psm

#endif // LIGHTPC_PSM_SCRUB_HH
