/**
 * @file
 * Persistent Support Module (Section V-A).
 *
 * The PSM sits between the processor complex and the Bare-NVDIMMs,
 * exposing the conventional read/write ports plus the two persistence
 * ports: flush (drain row buffers and fence all outstanding media
 * work — the "memory synchronization" SnG relies on) and reset (wipe
 * OC-PMEM after an uncontainable error).
 *
 * Conflict management (the LightPC vs LightPC-B distinction):
 *
 *  - Early-return writes: a write completes toward the issuer as soon
 *    as the row buffer accepts it; the PRAM cooling window proceeds
 *    in the background. LightPC-B instead holds the issuer until the
 *    media write completes.
 *
 *  - XCC read reconstruction: a read targeting a group that is busy
 *    cooling off a write is regenerated from the paired half and the
 *    ECC device in one read latency + one XOR cycle, instead of
 *    queueing behind the write (the head-of-line blocking LightPC-B
 *    suffers in Fig. 16).
 *
 * Reliability: Start-Gap wear leveling rotates the line address
 * space every `writeThreshold` writes (plus a static randomizer),
 * and XCC provides half-line reconstruction for large-granularity
 * faults with an error containment bit that raises an MCE.
 */

#ifndef LIGHTPC_PSM_PSM_HH
#define LIGHTPC_PSM_PSM_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "mem/request.hh"
#include "psm/bare_nvdimm.hh"
#include "psm/retire.hh"
#include "psm/start_gap.hh"
#include "psm/symbol_ecc.hh"
#include "sim/fast_div.hh"
#include "stats/histogram.hh"

namespace lightpc::psm
{

/** Host reaction to an uncorrectable (containment) fault. */
enum class McePolicy
{
    /** Reset OC-PMEM and cold-boot (the paper's current version). */
    ResetColdBoot,
    /** Contain: fail the access, let the OS kill the owning task. */
    Contain,
};

/** Configuration of the PSM and its channels. */
struct PsmParams
{
    /** Number of Bare-NVDIMMs behind the PSM (prototype: six). */
    std::uint32_t dimms = 6;

    /** Per-DIMM geometry and device timing. */
    BareNvdimmParams dimm;

    /** Front-side bus (AXI crossbar) latency per access. */
    Tick busLatency = 10 * tickNs;

    /** Row-buffer hit service latency. */
    Tick rowBufferLatency = 5 * tickNs;

    /** XCC XOR stage: one cycle of fully combinational logic. */
    Tick xorLatency = 1 * tickNs;

    /** Row buffer (open page) size per group, in bytes. */
    std::uint64_t rowBufferBytes = 2048;

    /** LightPC: writes complete at row-buffer acceptance. */
    bool earlyReturnWrites = true;

    /** LightPC: reads to busy groups reconstruct via XCC. */
    bool eccReconstruction = true;

    /** Enable Start-Gap wear leveling. */
    bool wearLeveling = true;

    /** Gap movement period in writes. */
    std::uint64_t wearThreshold = 100;

    /** Static randomizer seed. */
    std::uint64_t wearSeed = 0x5eedf00dULL;

    /**
     * Machine-check policy when XCC cannot contain a fault
     * (Section V-A: "the MCE handler can be implemented in various
     * ways"). ResetColdBoot is the paper's current version.
     */
    McePolicy mcePolicy = McePolicy::ResetColdBoot;

    /**
     * Section VIII future work: fall back to the symbol-based
     * erasure code when two or more devices of a pair are dead,
     * instead of containing. Costs symbolEccLatency per repaired
     * read.
     */
    bool symbolEccFallback = false;
    Tick symbolEccLatency = 150 * tickNs;

    /**
     * Physical line slots carved from the top of the managed space
     * as a retirement spare pool (graceful degradation for media
     * that has started sticking). Zero disables retirement.
     */
    std::uint64_t spareLines = 0;
};

/** Aggregated PSM statistics. */
struct PsmStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t rowBufferReadHits = 0;
    std::uint64_t rowBufferWriteHits = 0;
    std::uint64_t reconstructedReads = 0;
    std::uint64_t blockedReads = 0;
    Tick readStallTicks = 0;
    std::uint64_t wearMoves = 0;
    std::uint64_t flushes = 0;
    /** Quiescence tick returned by the most recent flush. */
    Tick lastFlushQuiescentAt = 0;
    std::uint64_t mceCount = 0;
    std::uint64_t correctedReads = 0;     ///< XCC half-line repairs
    std::uint64_t symbolCorrections = 0;  ///< symbol-ECC fallbacks
    std::uint64_t resets = 0;             ///< MCE-triggered resets

    // --- media-error RAS pipeline ---------------------------------
    /** Reads whose codeword was actually decoded (faults enabled). */
    std::uint64_t rasCheckedReads = 0;
    /** Decoded data disagreed with ground truth: silent corruption.
     *  The RAS invariant is that this stays exactly zero. */
    std::uint64_t sdcEvents = 0;
    /** Corrupted parity granules rewritten in place (scrub-on-read). */
    std::uint64_t parityRewrites = 0;
    /** Physical line slots moved to the spare pool. */
    std::uint64_t retiredLines = 0;
    /** Retirements skipped because the spare pool was empty. */
    std::uint64_t spareExhausted = 0;
    /** Lines checked by the patrol scrubber. */
    std::uint64_t scrubbedLines = 0;
    /** Scrub passes that rewrote a line to clear transient faults. */
    std::uint64_t scrubRepairs = 0;
    /** Scrub steps skipped because the service unit was busy. */
    std::uint64_t scrubDeferrals = 0;
    /** Uncorrectable codewords detected (containment raised). */
    std::uint64_t uncorrectableReads = 0;
};

/**
 * The PSM controller.
 */
class Psm
{
  public:
    explicit Psm(const PsmParams &params = PsmParams());

    const PsmParams &params() const { return _params; }

    /** Total OC-PMEM capacity in bytes. */
    std::uint64_t capacityBytes() const { return capacity; }

    /** Logical 64 B lines managed (excludes the spare pool). */
    std::uint64_t managedLines() const { return lineCount; }

    /** Independent service units (dimms x groups per DIMM). */
    std::uint32_t serviceUnits() const { return units; }

    /** Service one line-sized access starting no earlier than @p when. */
    mem::AccessResult access(const mem::MemRequest &req, Tick when);

    /**
     * Flush port: close every dirty row buffer and fence until all
     * media work (including background early-return writes) retires.
     *
     * @return The tick at which OC-PMEM is quiescent.
     */
    Tick flush(Tick when);

    /**
     * Reset port: wipe timing/wear state; the host performs a cold
     * boot afterwards (the current MCE containment policy).
     */
    void resetPort();

    /** Record a detected uncorrectable fault (containment bit). */
    void raiseMce() { ++_stats.mceCount; }

    // --- patrol scrub / retirement --------------------------------

    /** Outcome of one patrol-scrub visit to a line. */
    struct ScrubOutcome
    {
        /** The line was actually checked (false: deferred, retry). */
        bool serviced = false;
        /** A rewrite cleared transient corruption. */
        bool repaired = false;
        /** Stuck media moved the line's slot to a spare. */
        bool retired = false;
        /** Uncorrectable codeword: containment raised. */
        bool containment = false;
    };

    /**
     * Patrol-scrub one logical line: read its codeword in an idle
     * row-buffer slot, rewrite it if transiently corrupted, retire
     * its physical slot if the media has stuck symbols, and raise
     * containment when the codeword is beyond both ECC tiers.
     *
     * Returns serviced = false (and touches nothing) when the line's
     * service unit is busy or its row buffer holds the line dirty —
     * the scrubber only uses idle slots and retries later.
     *
     * @pre logical_line < managedLines().
     */
    ScrubOutcome scrubLine(std::uint64_t logical_line, Tick when);

    /** The retirement/remap table (inspection). */
    const RetireTable &retireTable() const { return retire; }

    /**
     * MCE-handler service: retire the physical slot currently
     * serving @p addr (a containment fault the host chose to
     * contain rather than reset away). The slot's data is lost —
     * the handler kills the owning task — but the slot itself is
     * taken out of service so the address stays usable.
     *
     * @return false when the spare pool is exhausted.
     */
    bool retireFaultyLine(mem::Addr addr, Tick when);

    /**
     * Aggregate per-region wear quantiles across every device group
     * (one histogram sample per wear region; saturating counts).
     */
    stats::Histogram wearHistogram() const;

    // --- reliability: fault injection and handling ----------------

    /**
     * Mark one 32 B half-device of a group permanently bad (large-
     * granularity fault). Reads to the unit then take the XCC
     * repair path; with both halves bad they take the symbol-ECC
     * fallback or raise containment.
     *
     * @param half 0 or 1 within the dual-channel group.
     */
    void injectFault(std::uint32_t dimm, std::uint32_t group,
                     std::uint32_t half);

    /** Heal all injected faults (device replacement). */
    void clearFaults();

    /** Currently-faulty half-devices. */
    std::uint32_t faultCount() const;

    /**
     * Host machine-check path for a containment result. Under
     * ResetColdBoot wipes OC-PMEM via the reset port and reports
     * true (the system must cold-boot); under Contain returns false
     * (the OS kills the owning task and continues).
     */
    bool handleContainment();

    /**
     * Wipe OC-PMEM via the reset port while preserving the MCE and
     * reset counters across the wipe. This is the containment reset
     * handleContainment() takes under ResetColdBoot; the MCE handler
     * also takes it directly when a kernel-side machine check under
     * Contain forces a cold boot anyway.
     */
    void containmentReset();

    /**
     * Section VIII future work: rotate the static randomizer seed
     * to break adversarial write patterns. The media must be
     * migrated to the new mapping; the (timed) migration cost is
     * returned via the completion tick.
     *
     * @return The tick at which the migration completes.
     */
    Tick reseedWearLeveler(Tick when, std::uint64_t new_seed);

    /** Running statistics. */
    const PsmStats &stats() const { return _stats; }

    /** Read latency distribution (processor-visible). */
    const stats::Histogram &readLatencyHist() const { return readHist; }

    /** Write latency distribution (processor-visible). */
    const stats::Histogram &writeLatencyHist() const
    {
        return writeHist;
    }

    /** The wear-leveler registers (persisted at the EP-cut). */
    StartGapState saveWearState() const { return wearLevel->save(); }

    /** Restore wear-leveler registers after power recovery. */
    void restoreWearState(const StartGapState &s)
    {
        wearLevel->restore(s);
    }

    /** Direct access to a DIMM (tests, wear inspection). */
    BareNvdimm &dimm(std::uint32_t idx) { return *nvdimms[idx]; }
    const BareNvdimm &dimm(std::uint32_t idx) const
    {
        return *nvdimms[idx];
    }

    /** Reset statistics only (between benchmark phases). */
    void resetStats();

  private:
    /** Where a physical line lives. */
    struct Route
    {
        std::uint32_t dimm;
        std::uint32_t group;
        std::uint32_t unit;    ///< global service-unit index
        mem::Addr localAddr;   ///< byte offset within the group
        std::uint64_t page;    ///< group-local row-buffer page index
        std::uint32_t lineInPage;
        /** Start-Gap output slot (the retirement-table key); the
         *  addressing fields above reflect any retirement remap. */
        std::uint64_t slot;
    };

    /** Per-group open-page write aggregation. */
    struct RowBuffer
    {
        /** One bit per line of the open page. */
        std::uint64_t dirtyMask = 0;
        std::uint64_t openPage = ~std::uint64_t(0);
        mem::Addr pageAddr = 0;
    };

    Route route(mem::Addr addr) const;
    Route routePhysical(std::uint64_t physical_line) const;
    mem::PramDevice &unitDevice(const Route &r);

    /** Re-salt every unit's fault RNG (construction and reset). */
    void seedUnitFaultRngs();

    /** Close a dirty row buffer, emitting its media write. */
    mem::AccessResult closeRowBuffer(std::uint32_t unit, Tick when);

    /** Sampled media state of one line's three codeword lanes. */
    struct LineFaults
    {
        mem::GranuleFaults a;  ///< half A (localAddr)
        mem::GranuleFaults b;  ///< half B (localAddr + 32)
        mem::GranuleFaults p;  ///< parity granule (ECC device)
        bool anyStuck() const
        {
            return a.stuck || b.stuck || p.stuck;
        }
        bool any() const { return a.any() || b.any() || p.any(); }
    };

    /** Device-local key of a line's parity granule. */
    static mem::Addr parityKey(mem::Addr local_addr)
    {
        return local_addr | mem::pramParityTag;
    }

    /** Draw the media-fault state of the line at @p r. */
    LineFaults sampleLineFaults(const Route &r);

    /**
     * Decode one line's codeword through the real codecs against
     * synthesized ground truth. Updates correction/SDC statistics
     * and @p result's corrected/containment flags, and extends
     * @p result.completeAt by the decode latency consumed.
     *
     * @return true when the line's physical slot should be retired
     *         (persistent stuck symbols survived the decode).
     */
    bool rasDecodeLine(const Route &r, const LineFaults &lf,
                       mem::AccessResult &result);

    /**
     * Move @p r's physical slot to a spare and forget its stuck
     * media state; the displaced data is copied over with one
     * background line write. No-op when the pool is exhausted.
     */
    void retireSlot(const Route &r, Tick when);

    PsmParams _params;
    std::uint64_t capacity;
    std::uint64_t lineCount;
    std::uint32_t units;
    /** Per-access routing divisors, fixed at construction. */
    FastDiv lineDecode;    ///< divisor: lineCount
    FastDiv pageDecode;    ///< divisor: rowBufferBytes / cacheLineBytes
    FastDiv unitDecode;    ///< divisor: units
    FastDiv groupDecode;   ///< divisor: groups per DIMM
    std::vector<std::unique_ptr<BareNvdimm>> nvdimms;
    std::vector<RowBuffer> rowBuffers;
    /** Reconstruction lanes: one ECC timeline per two groups. */
    std::vector<Tick> eccBusyUntil;
    /** Per-unit fault flags: bit 0 = half A bad, bit 1 = half B. */
    std::vector<std::uint8_t> unitFaults;
    std::unique_ptr<StartGap> wearLevel;
    /** Physical-slot retirement table (after Start-Gap). */
    RetireTable retire{0, 0};
    /** Symbol tier for the two-erasure fallback (lazily built). */
    std::unique_ptr<SymbolEcc> symbolTier;
    PsmStats _stats;
    stats::Histogram readHist;
    stats::Histogram writeHist;
};

} // namespace lightpc::psm

#endif // LIGHTPC_PSM_PSM_HH
