/**
 * @file
 * Persistent Support Module (Section V-A).
 *
 * The PSM sits between the processor complex and the Bare-NVDIMMs,
 * exposing the conventional read/write ports plus the two persistence
 * ports: flush (drain row buffers and fence all outstanding media
 * work — the "memory synchronization" SnG relies on) and reset (wipe
 * OC-PMEM after an uncontainable error).
 *
 * Conflict management (the LightPC vs LightPC-B distinction):
 *
 *  - Early-return writes: a write completes toward the issuer as soon
 *    as the row buffer accepts it; the PRAM cooling window proceeds
 *    in the background. LightPC-B instead holds the issuer until the
 *    media write completes.
 *
 *  - XCC read reconstruction: a read targeting a group that is busy
 *    cooling off a write is regenerated from the paired half and the
 *    ECC device in one read latency + one XOR cycle, instead of
 *    queueing behind the write (the head-of-line blocking LightPC-B
 *    suffers in Fig. 16).
 *
 * Reliability: Start-Gap wear leveling rotates the line address
 * space every `writeThreshold` writes (plus a static randomizer),
 * and XCC provides half-line reconstruction for large-granularity
 * faults with an error containment bit that raises an MCE.
 */

#ifndef LIGHTPC_PSM_PSM_HH
#define LIGHTPC_PSM_PSM_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "mem/request.hh"
#include "psm/bare_nvdimm.hh"
#include "psm/start_gap.hh"
#include "sim/fast_div.hh"
#include "stats/histogram.hh"

namespace lightpc::psm
{

/** Host reaction to an uncorrectable (containment) fault. */
enum class McePolicy
{
    /** Reset OC-PMEM and cold-boot (the paper's current version). */
    ResetColdBoot,
    /** Contain: fail the access, let the OS kill the owning task. */
    Contain,
};

/** Configuration of the PSM and its channels. */
struct PsmParams
{
    /** Number of Bare-NVDIMMs behind the PSM (prototype: six). */
    std::uint32_t dimms = 6;

    /** Per-DIMM geometry and device timing. */
    BareNvdimmParams dimm;

    /** Front-side bus (AXI crossbar) latency per access. */
    Tick busLatency = 10 * tickNs;

    /** Row-buffer hit service latency. */
    Tick rowBufferLatency = 5 * tickNs;

    /** XCC XOR stage: one cycle of fully combinational logic. */
    Tick xorLatency = 1 * tickNs;

    /** Row buffer (open page) size per group, in bytes. */
    std::uint64_t rowBufferBytes = 2048;

    /** LightPC: writes complete at row-buffer acceptance. */
    bool earlyReturnWrites = true;

    /** LightPC: reads to busy groups reconstruct via XCC. */
    bool eccReconstruction = true;

    /** Enable Start-Gap wear leveling. */
    bool wearLeveling = true;

    /** Gap movement period in writes. */
    std::uint64_t wearThreshold = 100;

    /** Static randomizer seed. */
    std::uint64_t wearSeed = 0x5eedf00dULL;

    /**
     * Machine-check policy when XCC cannot contain a fault
     * (Section V-A: "the MCE handler can be implemented in various
     * ways"). ResetColdBoot is the paper's current version.
     */
    McePolicy mcePolicy = McePolicy::ResetColdBoot;

    /**
     * Section VIII future work: fall back to the symbol-based
     * erasure code when two or more devices of a pair are dead,
     * instead of containing. Costs symbolEccLatency per repaired
     * read.
     */
    bool symbolEccFallback = false;
    Tick symbolEccLatency = 150 * tickNs;
};

/** Aggregated PSM statistics. */
struct PsmStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t rowBufferReadHits = 0;
    std::uint64_t rowBufferWriteHits = 0;
    std::uint64_t reconstructedReads = 0;
    std::uint64_t blockedReads = 0;
    Tick readStallTicks = 0;
    std::uint64_t wearMoves = 0;
    std::uint64_t flushes = 0;
    /** Quiescence tick returned by the most recent flush. */
    Tick lastFlushQuiescentAt = 0;
    std::uint64_t mceCount = 0;
    std::uint64_t correctedReads = 0;     ///< XCC half-line repairs
    std::uint64_t symbolCorrections = 0;  ///< symbol-ECC fallbacks
    std::uint64_t resets = 0;             ///< MCE-triggered resets
};

/**
 * The PSM controller.
 */
class Psm
{
  public:
    explicit Psm(const PsmParams &params = PsmParams());

    const PsmParams &params() const { return _params; }

    /** Total OC-PMEM capacity in bytes. */
    std::uint64_t capacityBytes() const { return capacity; }

    /** Independent service units (dimms x groups per DIMM). */
    std::uint32_t serviceUnits() const { return units; }

    /** Service one line-sized access starting no earlier than @p when. */
    mem::AccessResult access(const mem::MemRequest &req, Tick when);

    /**
     * Flush port: close every dirty row buffer and fence until all
     * media work (including background early-return writes) retires.
     *
     * @return The tick at which OC-PMEM is quiescent.
     */
    Tick flush(Tick when);

    /**
     * Reset port: wipe timing/wear state; the host performs a cold
     * boot afterwards (the current MCE containment policy).
     */
    void resetPort();

    /** Record a detected uncorrectable fault (containment bit). */
    void raiseMce() { ++_stats.mceCount; }

    // --- reliability: fault injection and handling ----------------

    /**
     * Mark one 32 B half-device of a group permanently bad (large-
     * granularity fault). Reads to the unit then take the XCC
     * repair path; with both halves bad they take the symbol-ECC
     * fallback or raise containment.
     *
     * @param half 0 or 1 within the dual-channel group.
     */
    void injectFault(std::uint32_t dimm, std::uint32_t group,
                     std::uint32_t half);

    /** Heal all injected faults (device replacement). */
    void clearFaults();

    /** Currently-faulty half-devices. */
    std::uint32_t faultCount() const;

    /**
     * Host machine-check path for a containment result. Under
     * ResetColdBoot wipes OC-PMEM via the reset port and reports
     * true (the system must cold-boot); under Contain returns false
     * (the OS kills the owning task and continues).
     */
    bool handleContainment();

    /**
     * Section VIII future work: rotate the static randomizer seed
     * to break adversarial write patterns. The media must be
     * migrated to the new mapping; the (timed) migration cost is
     * returned via the completion tick.
     *
     * @return The tick at which the migration completes.
     */
    Tick reseedWearLeveler(Tick when, std::uint64_t new_seed);

    /** Running statistics. */
    const PsmStats &stats() const { return _stats; }

    /** Read latency distribution (processor-visible). */
    const stats::Histogram &readLatencyHist() const { return readHist; }

    /** Write latency distribution (processor-visible). */
    const stats::Histogram &writeLatencyHist() const
    {
        return writeHist;
    }

    /** The wear-leveler registers (persisted at the EP-cut). */
    StartGapState saveWearState() const { return wearLevel->save(); }

    /** Restore wear-leveler registers after power recovery. */
    void restoreWearState(const StartGapState &s)
    {
        wearLevel->restore(s);
    }

    /** Direct access to a DIMM (tests, wear inspection). */
    BareNvdimm &dimm(std::uint32_t idx) { return *nvdimms[idx]; }
    const BareNvdimm &dimm(std::uint32_t idx) const
    {
        return *nvdimms[idx];
    }

    /** Reset statistics only (between benchmark phases). */
    void resetStats();

  private:
    /** Where a physical line lives. */
    struct Route
    {
        std::uint32_t dimm;
        std::uint32_t group;
        std::uint32_t unit;    ///< global service-unit index
        mem::Addr localAddr;   ///< byte offset within the group
        std::uint64_t page;    ///< group-local row-buffer page index
        std::uint32_t lineInPage;
    };

    /** Per-group open-page write aggregation. */
    struct RowBuffer
    {
        /** One bit per line of the open page. */
        std::uint64_t dirtyMask = 0;
        std::uint64_t openPage = ~std::uint64_t(0);
        mem::Addr pageAddr = 0;
    };

    Route route(mem::Addr addr) const;
    mem::PramDevice &unitDevice(const Route &r);

    /** Close a dirty row buffer, emitting its media write. */
    mem::AccessResult closeRowBuffer(std::uint32_t unit, Tick when);

    PsmParams _params;
    std::uint64_t capacity;
    std::uint64_t lineCount;
    std::uint32_t units;
    /** Per-access routing divisors, fixed at construction. */
    FastDiv lineDecode;    ///< divisor: lineCount
    FastDiv pageDecode;    ///< divisor: rowBufferBytes / cacheLineBytes
    FastDiv unitDecode;    ///< divisor: units
    FastDiv groupDecode;   ///< divisor: groups per DIMM
    std::vector<std::unique_ptr<BareNvdimm>> nvdimms;
    std::vector<RowBuffer> rowBuffers;
    /** Reconstruction lanes: one ECC timeline per two groups. */
    std::vector<Tick> eccBusyUntil;
    /** Per-unit fault flags: bit 0 = half A bad, bit 1 = half B. */
    std::vector<std::uint8_t> unitFaults;
    std::unique_ptr<StartGap> wearLevel;
    PsmStats _stats;
    stats::Histogram readHist;
    stats::Histogram writeHist;
};

} // namespace lightpc::psm

#endif // LIGHTPC_PSM_PSM_HH
