/**
 * @file
 * Line retirement / remap table (graceful degradation tier).
 *
 * Stuck-at symbols are permanent media damage: rewriting the line
 * does not heal them, and as stuck cells accumulate a line marches
 * toward the uncorrectable (containment) case. The PSM therefore
 * keeps a small remap table layered *after* Start-Gap: a physical
 * line slot whose media has started sticking is retired to a spare
 * slot carved from the top of the managed space, and all future
 * traffic — from whichever logical line Start-Gap currently rotates
 * onto that slot — lands on the spare instead.
 *
 * The table is keyed by physical slot because the damage is physical:
 * Start-Gap keeps rotating logical lines across slots, but a bad slot
 * stays bad no matter which logical line is passing through it.
 *
 * In hardware the table lives in PSM SRAM and is persisted with the
 * other PSM registers at the EP-cut; an OC-PMEM reset (the
 * ResetColdBoot MCE arm) clears it together with the media state.
 */

#ifndef LIGHTPC_PSM_RETIRE_HH
#define LIGHTPC_PSM_RETIRE_HH

#include <cstdint>
#include <unordered_map>

namespace lightpc::psm
{

/**
 * Physical-slot remap table with a bump-allocated spare pool.
 */
class RetireTable
{
  public:
    /**
     * @param spare_base  First physical slot of the spare pool.
     * @param spare_count Slots in the pool (0 disables retirement).
     */
    RetireTable(std::uint64_t spare_base, std::uint64_t spare_count)
        : spareBase(spare_base), spareCount(spare_count)
    {
    }

    /** Final physical slot serving @p slot (identity when healthy). */
    std::uint64_t
    remap(std::uint64_t slot) const
    {
        const auto it = map.find(slot);
        return it == map.end() ? slot : it->second;
    }

    /** True when a spare is still available. */
    bool canRetire() const { return nextSpare < spareCount; }

    /**
     * Retire the slot currently serving @p slot. If @p slot was
     * already remapped, the *spare* went bad and is replaced by a
     * fresh one (the chain is collapsed: remap stays one lookup).
     *
     * @return The replacement slot, or ~0 when the pool is empty.
     */
    std::uint64_t
    retire(std::uint64_t slot)
    {
        if (!canRetire())
            return ~std::uint64_t(0);
        const std::uint64_t spare = spareBase + nextSpare++;
        map[slot] = spare;
        ++retired;
        return spare;
    }

    /** True when @p slot is currently served by a spare. */
    bool isRetired(std::uint64_t slot) const
    {
        return map.find(slot) != map.end();
    }

    /** Retirements performed (replacing a bad spare counts again). */
    std::uint64_t retiredCount() const { return retired; }

    /** Slots remapped right now. */
    std::uint64_t mappedCount() const { return map.size(); }

    /** Spares still available. */
    std::uint64_t sparesLeft() const { return spareCount - nextSpare; }

    /** Total pool size. */
    std::uint64_t spareTotal() const { return spareCount; }

    /** Wipe all mappings (OC-PMEM reset). */
    void
    reset()
    {
        map.clear();
        nextSpare = 0;
        retired = 0;
    }

  private:
    std::uint64_t spareBase;
    std::uint64_t spareCount;
    std::uint64_t nextSpare = 0;
    std::uint64_t retired = 0;
    /** bad physical slot -> spare slot serving it. */
    std::unordered_map<std::uint64_t, std::uint64_t> map;
};

} // namespace lightpc::psm

#endif // LIGHTPC_PSM_RETIRE_HH
