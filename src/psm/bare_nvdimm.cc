#include "psm/bare_nvdimm.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace lightpc::psm
{

BareNvdimm::BareNvdimm(const BareNvdimmParams &params)
    : _params(params)
{
    if (_params.devicesPerDimm == 0 || (_params.devicesPerDimm % 2) != 0)
        fatal("BareNvdimm requires an even, nonzero device count");

    std::uint32_t group_count;
    if (_params.layout == DimmLayout::DualChannel) {
        group_count = _params.devicesPerDimm / 2;
        _serviceBytes = 2 * mem::pramDeviceGranularity;
    } else {
        group_count = 1;
        _serviceBytes =
            _params.devicesPerDimm * mem::pramDeviceGranularity;
    }

    // Each group owns an equal slice of the DIMM capacity.
    mem::PramParams per_group = _params.device;
    per_group.capacityBytes =
        _params.device.capacityBytes * _params.devicesPerDimm
        / group_count;
    groups.reserve(group_count);
    for (std::uint32_t i = 0; i < group_count; ++i)
        groups.push_back(std::make_unique<mem::PramDevice>(per_group));
}

Tick
BareNvdimm::busyUntil() const
{
    Tick latest = 0;
    for (const auto &group : groups)
        latest = std::max(latest, group->busyUntil());
    return latest;
}

void
BareNvdimm::reset()
{
    for (auto &group : groups)
        group->reset();
}

} // namespace lightpc::psm
