/**
 * @file
 * XOR-based ECC codec (XCC, Section V-A).
 *
 * A 64 B cacheline is striped over a dual-channel PRAM group as two
 * 32 B halves; XCC keeps their XOR as parity. Because the code is
 * fully combinational (pure XOR), en/decoding costs one cycle in
 * hardware and needs no metadata: parity location is statically
 * mapped. XCC serves two purposes:
 *
 *  1. Conflict management: a read whose target half is busy cooling
 *     off after a write is regenerated from the other half + parity
 *     instead of waiting (the non-blocking service of LightPC).
 *  2. Reliability: a corrupted half (large-granularity fault) is
 *     detected against parity and either corrected from the healthy
 *     half or flagged with an error containment bit, raising an MCE
 *     at the host.
 */

#ifndef LIGHTPC_PSM_XCC_HH
#define LIGHTPC_PSM_XCC_HH

#include <array>
#include <cstdint>
#include <cstring>

#include "mem/request.hh"

namespace lightpc::psm
{

/** One 32 B device half-line. */
using HalfLine = std::array<std::uint8_t, mem::pramDeviceGranularity>;

/** Decode outcome for reliability checks. */
struct XccDecode
{
    /** Data is usable (possibly after correction). */
    bool ok = false;
    /** The error containment bit: raise an MCE at the host. */
    bool containment = false;
    /** Data was regenerated from parity. */
    bool corrected = false;
};

/**
 * Stateless XOR codec over 32 B halves.
 */
class XccCodec
{
  public:
    /** parity = a XOR b. */
    static HalfLine
    encode(const HalfLine &a, const HalfLine &b)
    {
        HalfLine parity;
        for (std::size_t i = 0; i < parity.size(); ++i)
            parity[i] = static_cast<std::uint8_t>(a[i] ^ b[i]);
        return parity;
    }

    /** Regenerate a missing half from the other half and parity. */
    static HalfLine
    reconstruct(const HalfLine &other, const HalfLine &parity)
    {
        return encode(other, parity);
    }

    /** True when (a, b, parity) is a consistent codeword. */
    static bool
    consistent(const HalfLine &a, const HalfLine &b,
               const HalfLine &parity)
    {
        return encode(a, b) == parity;
    }

    /**
     * Reliability decode: checks the codeword and, when exactly one
     * half is known-bad (@p a_bad / @p b_bad from per-device fault
     * state), corrects it in place from parity.
     *
     * When both halves are bad, or the codeword is inconsistent with
     * no known-bad half to blame, the error containment bit is set —
     * the host raises an MCE (the current LightPC policy resets
     * OC-PMEM and cold-boots, Section V-A).
     */
    static XccDecode
    decode(HalfLine &a, HalfLine &b, const HalfLine &parity,
           bool a_bad, bool b_bad)
    {
        XccDecode out;
        if (a_bad && b_bad) {
            out.containment = true;
            return out;
        }
        if (a_bad) {
            a = reconstruct(b, parity);
            out.ok = true;
            out.corrected = true;
            return out;
        }
        if (b_bad) {
            b = reconstruct(a, parity);
            out.ok = true;
            out.corrected = true;
            return out;
        }
        if (!consistent(a, b, parity)) {
            out.containment = true;
            return out;
        }
        out.ok = true;
        return out;
    }
};

} // namespace lightpc::psm

#endif // LIGHTPC_PSM_XCC_HH
