#include "psm/start_gap.hh"

#include <bit>

#include "sim/logging.hh"

namespace lightpc::psm
{

namespace
{

/** splitmix64-style mixer used as the Feistel round function. */
std::uint32_t
mix32(std::uint32_t x, std::uint64_t key)
{
    std::uint64_t z = x + key + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::uint32_t>(z ^ (z >> 31));
}

} // namespace

StartGap::StartGap(const StartGapParams &params)
    : _params(params), gapReg(params.lines)
{
    if (_params.lines < 2)
        fatal("StartGap requires at least two lines");
    if (_params.writeThreshold == 0)
        fatal("StartGap writeThreshold must be nonzero");
    if (_params.pageLines == 0 || _params.lines % _params.pageLines != 0)
        fatal("StartGap pageLines must be nonzero and divide lines");
}

std::uint64_t
StartGap::randomize(std::uint64_t line) const
{
    if (!_params.randomize)
        return line;

    // Permute at page granularity: consecutive lines within a page
    // stay adjacent (preserving row-buffer locality), while pages
    // scatter over the whole space for wear spreading.
    const std::uint64_t page = line / _params.pageLines;
    const std::uint64_t offset = line % _params.pageLines;
    const std::uint64_t page_count = _params.lines / _params.pageLines;

    // Balanced Feistel network over an even number of bits covering
    // [0, page_count); cycle-walk values that land outside the
    // domain. The network is a fixed bijection for a given seed, so
    // the "static randomizer" costs no metadata.
    unsigned bits = 64u - static_cast<unsigned>(
        std::countl_zero(page_count - 1));
    if (bits < 2)
        bits = 2;
    if (bits & 1)
        ++bits;
    const unsigned half_bits = bits / 2;
    const std::uint32_t half_mask =
        half_bits >= 32 ? 0xffffffffu : ((1u << half_bits) - 1);

    std::uint64_t value = page;
    do {
        std::uint32_t left = static_cast<std::uint32_t>(
            (value >> half_bits) & half_mask);
        std::uint32_t right =
            static_cast<std::uint32_t>(value & half_mask);
        for (unsigned round = 0; round < 4; ++round) {
            const std::uint32_t tmp = right;
            right = (left ^ mix32(right, _params.randomizerSeed + round))
                & half_mask;
            left = tmp;
        }
        value = (std::uint64_t(left) << half_bits) | right;
    } while (value >= page_count);
    return value * _params.pageLines + offset;
}

std::uint64_t
StartGap::remap(std::uint64_t logical_line) const
{
    if (logical_line >= _params.lines)
        panic("StartGap remap out of range: ", logical_line);
    const std::uint64_t randomized = randomize(logical_line);
    std::uint64_t pa = (randomized + startReg) % _params.lines;
    if (pa >= gapReg)
        ++pa;
    return pa;
}

bool
StartGap::recordWrite()
{
    if (++writeCounter < _params.writeThreshold)
        return false;
    writeCounter = 0;
    ++moves;
    if (gapReg == 0) {
        // The gap wraps from slot 0 back to slot N and the whole
        // space has rotated by one line.
        gapReg = _params.lines;
        startReg = (startReg + 1) % _params.lines;
    } else {
        --gapReg;
    }
    return true;
}

StartGapState
StartGap::save() const
{
    StartGapState state;
    state.start = startReg;
    state.gap = gapReg;
    state.writeCounter = writeCounter;
    state.totalMoves = moves;
    state.randomizerSeed = _params.randomizerSeed;
    return state;
}

void
StartGap::restore(const StartGapState &state)
{
    if (state.randomizerSeed != _params.randomizerSeed)
        fatal("StartGap restore with mismatched randomizer seed");
    startReg = state.start;
    gapReg = state.gap;
    writeCounter = state.writeCounter;
    moves = state.totalMoves;
}

} // namespace lightpc::psm
