/**
 * @file
 * Start-Gap wear leveling (Qureshi et al. [53], as adopted in
 * Section V-A / VIII).
 *
 * The address space of N lines is laid out over N+1 physical slots;
 * one slot (the gap) is always empty. Every `writeThreshold` writes
 * the gap moves by one slot, slowly rotating the whole address space.
 * A static randomizer (a fixed Feistel bijection over line indices,
 * seeded once) is applied first so that spatially-correlated hot
 * lines do not march through physical space together.
 *
 * The wear-leveler's entire persistent state — start, gap, the write
 * counter, and the randomizer seed — is under 64 B and is saved into
 * the EP-cut at SnG time so leveling survives power cycles.
 */

#ifndef LIGHTPC_PSM_START_GAP_HH
#define LIGHTPC_PSM_START_GAP_HH

#include <cstdint>

namespace lightpc::psm
{

/** Configuration of the Start-Gap wear leveler. */
struct StartGapParams
{
    /** Number of logical 64 B lines managed. */
    std::uint64_t lines = 1 << 20;

    /** Gap movement period in writes (paper default: 100). */
    std::uint64_t writeThreshold = 100;

    /** Seed of the static randomizer. */
    std::uint64_t randomizerSeed = 0x5eedf00dULL;

    /** Disable the static randomizer (for unit-testing raw gap math). */
    bool randomize = true;

    /**
     * Randomizer granularity in lines: the Feistel permutation
     * shuffles groups of this many consecutive lines as a unit so
     * that wear spreads without destroying the row-buffer page
     * locality the PSM depends on. Must divide `lines`.
     */
    std::uint64_t pageLines = 32;
};

/** The <64 B register file the EP-cut persists. */
struct StartGapState
{
    std::uint64_t start = 0;
    std::uint64_t gap = 0;
    std::uint64_t writeCounter = 0;
    std::uint64_t totalMoves = 0;
    std::uint64_t randomizerSeed = 0;
};

/**
 * Start-Gap remapper.
 */
class StartGap
{
  public:
    explicit StartGap(const StartGapParams &params = StartGapParams());

    const StartGapParams &params() const { return _params; }

    /**
     * Map a logical line index to its physical slot in [0, lines].
     *
     * @pre logical_line < params().lines.
     */
    std::uint64_t remap(std::uint64_t logical_line) const;

    /**
     * Record one line write; moves the gap when the threshold is
     * reached.
     *
     * @return true when a gap movement occurred (the caller owes one
     *         extra media line copy for the displaced line).
     */
    bool recordWrite();

    /** Registers to persist at the EP-cut. */
    StartGapState save() const;

    /** Restore registers after power recovery. */
    void restore(const StartGapState &state);

    /** Current gap slot (testing/visualization). */
    std::uint64_t gap() const { return gapReg; }

    /** Current start register. */
    std::uint64_t start() const { return startReg; }

    /** Total gap movements so far. */
    std::uint64_t totalMoves() const { return moves; }

  private:
    /** Static bijective randomizer over [0, lines). */
    std::uint64_t randomize(std::uint64_t line) const;

    StartGapParams _params;
    std::uint64_t startReg = 0;
    std::uint64_t gapReg;
    std::uint64_t writeCounter = 0;
    std::uint64_t moves = 0;
};

} // namespace lightpc::psm

#endif // LIGHTPC_PSM_START_GAP_HH
