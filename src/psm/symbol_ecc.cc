#include "psm/symbol_ecc.hh"

#include <algorithm>

#include "psm/gf256.hh"
#include "sim/logging.hh"

namespace lightpc::psm
{

namespace
{

/** Evaluation point for codeword position i: alpha^i (distinct). */
std::uint8_t
point(unsigned i)
{
    return gf256::pow(gf256::generator, i);
}

} // namespace

SymbolEcc::SymbolEcc(unsigned data_symbols, unsigned parity_symbols)
    : k(data_symbols), r(parity_symbols)
{
    if (k == 0 || r == 0 || k + r > 255)
        fatal("SymbolEcc requires 0 < k, 0 < r, k + r <= 255");
    // One multiplication row per codeword position: every Horner
    // step at position i multiplies the accumulator by point(i), so
    // the whole encode needs no log/exp pair lookups at all.
    hornerRows.resize(std::size_t(k + r) * 256);
    for (unsigned i = 0; i < k + r; ++i)
        gf256::mulRow(point(i), &hornerRows[std::size_t(i) * 256]);
}

void
SymbolEcc::encodeInto(const std::uint8_t *data,
                      std::uint8_t *codeword) const
{
    for (unsigned i = 0; i < k + r; ++i) {
        // Horner evaluation of the data polynomial at point(i),
        // with the multiply folded into one row lookup.
        const std::uint8_t *row = &hornerRows[std::size_t(i) * 256];
        std::uint8_t acc = 0;
        for (unsigned j = k; j-- > 0;)
            acc = static_cast<std::uint8_t>(row[acc] ^ data[j]);
        codeword[i] = acc;
    }
}

std::vector<std::uint8_t>
SymbolEcc::encode(const std::vector<std::uint8_t> &data) const
{
    if (data.size() != k)
        fatal("SymbolEcc::encode expects ", k, " symbols");
    std::vector<std::uint8_t> codeword(k + r);
    encodeInto(data.data(), codeword.data());
    return codeword;
}

bool
SymbolEcc::buildRecovery(const std::vector<bool> &erased,
                         std::vector<unsigned> &survivors,
                         std::vector<std::uint8_t> &recovery) const
{
    survivors.clear();
    for (unsigned i = 0; i < k + r && survivors.size() < k; ++i)
        if (!erased[i])
            survivors.push_back(i);
    if (survivors.size() < k)
        return false;  // beyond the code's erasure budget

    // Invert the survivors' Vandermonde matrix by eliminating
    // [V | I] to [I | V^-1] over GF(2^8). k is small (device
    // counts), and — unlike solving per byte — this runs once per
    // erasure pattern; every byte then costs one k x k multiply.
    const unsigned w = 2 * k;
    std::vector<std::uint8_t> m(std::size_t(k) * w, 0);
    for (unsigned row = 0; row < k; ++row) {
        const std::uint8_t x = point(survivors[row]);
        std::uint8_t p = 1;
        for (unsigned col = 0; col < k; ++col) {
            m[row * w + col] = p;
            p = gf256::mul(p, x);
        }
        m[row * w + k + row] = 1;
    }

    for (unsigned col = 0; col < k; ++col) {
        // Pivot.
        unsigned pivot = col;
        while (pivot < k && m[pivot * w + col] == 0)
            ++pivot;
        if (pivot == k)
            return false;  // should not happen: V is invertible
        if (pivot != col) {
            for (unsigned j = 0; j < w; ++j)
                std::swap(m[pivot * w + j], m[col * w + j]);
        }
        const std::uint8_t inv_p = gf256::inv(m[col * w + col]);
        for (unsigned j = col; j < w; ++j)
            m[col * w + j] = gf256::mul(m[col * w + j], inv_p);
        for (unsigned row = 0; row < k; ++row) {
            if (row == col)
                continue;
            const std::uint8_t f = m[row * w + col];
            if (f == 0)
                continue;
            for (unsigned j = col; j < w; ++j)
                m[row * w + j] = gf256::add(
                    m[row * w + j], gf256::mul(f, m[col * w + j]));
        }
    }

    recovery.assign(std::size_t(k) * k, 0);
    for (unsigned i = 0; i < k; ++i)
        for (unsigned j = 0; j < k; ++j)
            recovery[i * k + j] = m[i * w + k + j];
    return true;
}

bool
SymbolEcc::decode(const std::vector<std::uint8_t> &codeword,
                  const std::vector<bool> &erased,
                  std::vector<std::uint8_t> &out) const
{
    if (codeword.size() != k + r || erased.size() != k + r)
        fatal("SymbolEcc::decode expects ", k + r, " symbols");

    std::vector<unsigned> survivors;
    std::vector<std::uint8_t> recovery;
    if (!buildRecovery(erased, survivors, recovery))
        return false;

    out.resize(k);
    for (unsigned i = 0; i < k; ++i) {
        std::uint8_t acc = 0;
        for (unsigned j = 0; j < k; ++j)
            acc = gf256::add(
                acc, gf256::mul(recovery[i * k + j],
                                codeword[survivors[j]]));
        out[i] = acc;
    }
    return true;
}

std::vector<std::uint8_t>
SymbolEcc::encodeLanes(const std::vector<std::uint8_t> &lanes,
                       std::size_t lane_bytes) const
{
    if (lanes.size() != k * lane_bytes)
        fatal("SymbolEcc::encodeLanes expects ", k, " lanes");
    std::vector<std::uint8_t> coded((k + r) * lane_bytes);
    std::vector<std::uint8_t> data(k);
    std::vector<std::uint8_t> codeword(k + r);
    for (std::size_t b = 0; b < lane_bytes; ++b) {
        for (unsigned lane = 0; lane < k; ++lane)
            data[lane] = lanes[lane * lane_bytes + b];
        encodeInto(data.data(), codeword.data());
        for (unsigned lane = 0; lane < k + r; ++lane)
            coded[lane * lane_bytes + b] = codeword[lane];
    }
    return coded;
}

bool
SymbolEcc::decodeLanes(const std::vector<std::uint8_t> &lanes,
                       std::size_t lane_bytes,
                       const std::vector<bool> &erased,
                       std::vector<std::uint8_t> &out) const
{
    if (lanes.size() != (k + r) * lane_bytes)
        fatal("SymbolEcc::decodeLanes expects ", k + r, " lanes");

    // The erasure pattern is shared by every byte offset, so the
    // Vandermonde inversion runs once; each byte is then a k x k
    // matrix-vector multiply instead of a fresh Gaussian
    // elimination.
    std::vector<unsigned> survivors;
    std::vector<std::uint8_t> recovery;
    if (!buildRecovery(erased, survivors, recovery))
        return false;

    out.assign(k * lane_bytes, 0);
    std::vector<std::uint8_t> values(k);
    for (std::size_t b = 0; b < lane_bytes; ++b) {
        for (unsigned j = 0; j < k; ++j)
            values[j] = lanes[survivors[j] * lane_bytes + b];
        for (unsigned i = 0; i < k; ++i) {
            std::uint8_t acc = 0;
            for (unsigned j = 0; j < k; ++j)
                acc = gf256::add(
                    acc, gf256::mul(recovery[i * k + j], values[j]));
            out[i * lane_bytes + b] = acc;
        }
    }
    return true;
}

} // namespace lightpc::psm
