#include "psm/symbol_ecc.hh"

#include "psm/gf256.hh"
#include "sim/logging.hh"

namespace lightpc::psm
{

namespace
{

/** Evaluation point for codeword position i: alpha^i (distinct). */
std::uint8_t
point(unsigned i)
{
    return gf256::pow(gf256::generator, i);
}

} // namespace

SymbolEcc::SymbolEcc(unsigned data_symbols, unsigned parity_symbols)
    : k(data_symbols), r(parity_symbols)
{
    if (k == 0 || r == 0 || k + r > 255)
        fatal("SymbolEcc requires 0 < k, 0 < r, k + r <= 255");
}

std::vector<std::uint8_t>
SymbolEcc::encode(const std::vector<std::uint8_t> &data) const
{
    if (data.size() != k)
        fatal("SymbolEcc::encode expects ", k, " symbols");
    std::vector<std::uint8_t> codeword(k + r);
    for (unsigned i = 0; i < k + r; ++i) {
        // Horner evaluation of the data polynomial at point(i).
        const std::uint8_t x = point(i);
        std::uint8_t acc = 0;
        for (unsigned j = k; j-- > 0;)
            acc = gf256::add(gf256::mul(acc, x), data[j]);
        codeword[i] = acc;
    }
    return codeword;
}

bool
SymbolEcc::decode(const std::vector<std::uint8_t> &codeword,
                  const std::vector<bool> &erased,
                  std::vector<std::uint8_t> &out) const
{
    if (codeword.size() != k + r || erased.size() != k + r)
        fatal("SymbolEcc::decode expects ", k + r, " symbols");

    // Collect k surviving evaluations.
    std::vector<unsigned> survivors;
    for (unsigned i = 0; i < k + r && survivors.size() < k; ++i)
        if (!erased[i])
            survivors.push_back(i);
    if (survivors.size() < k)
        return false;  // beyond the code's erasure budget

    // Solve the Vandermonde system V * data = values by Gaussian
    // elimination over GF(2^8). k is small (device counts), so the
    // cubic cost is irrelevant here; hardware would use a pipelined
    // syndrome decoder.
    std::vector<std::uint8_t> m(k * (k + 1));
    for (unsigned row = 0; row < k; ++row) {
        const std::uint8_t x = point(survivors[row]);
        std::uint8_t p = 1;
        for (unsigned col = 0; col < k; ++col) {
            m[row * (k + 1) + col] = p;
            p = gf256::mul(p, x);
        }
        m[row * (k + 1) + k] = codeword[survivors[row]];
    }

    for (unsigned col = 0; col < k; ++col) {
        // Pivot.
        unsigned pivot = col;
        while (pivot < k && m[pivot * (k + 1) + col] == 0)
            ++pivot;
        if (pivot == k)
            return false;  // should not happen: V is invertible
        if (pivot != col) {
            for (unsigned j = 0; j <= k; ++j)
                std::swap(m[pivot * (k + 1) + j],
                          m[col * (k + 1) + j]);
        }
        const std::uint8_t inv_p =
            gf256::inv(m[col * (k + 1) + col]);
        for (unsigned j = col; j <= k; ++j)
            m[col * (k + 1) + j] =
                gf256::mul(m[col * (k + 1) + j], inv_p);
        for (unsigned row = 0; row < k; ++row) {
            if (row == col)
                continue;
            const std::uint8_t f = m[row * (k + 1) + col];
            if (f == 0)
                continue;
            for (unsigned j = col; j <= k; ++j)
                m[row * (k + 1) + j] = gf256::add(
                    m[row * (k + 1) + j],
                    gf256::mul(f, m[col * (k + 1) + j]));
        }
    }

    out.resize(k);
    for (unsigned i = 0; i < k; ++i)
        out[i] = m[i * (k + 1) + k];
    return true;
}

std::vector<std::uint8_t>
SymbolEcc::encodeLanes(const std::vector<std::uint8_t> &lanes,
                       std::size_t lane_bytes) const
{
    if (lanes.size() != k * lane_bytes)
        fatal("SymbolEcc::encodeLanes expects ", k, " lanes");
    std::vector<std::uint8_t> coded((k + r) * lane_bytes);
    std::vector<std::uint8_t> data(k);
    for (std::size_t b = 0; b < lane_bytes; ++b) {
        for (unsigned lane = 0; lane < k; ++lane)
            data[lane] = lanes[lane * lane_bytes + b];
        const auto codeword = encode(data);
        for (unsigned lane = 0; lane < k + r; ++lane)
            coded[lane * lane_bytes + b] = codeword[lane];
    }
    return coded;
}

bool
SymbolEcc::decodeLanes(const std::vector<std::uint8_t> &lanes,
                       std::size_t lane_bytes,
                       const std::vector<bool> &erased,
                       std::vector<std::uint8_t> &out) const
{
    if (lanes.size() != (k + r) * lane_bytes)
        fatal("SymbolEcc::decodeLanes expects ", k + r, " lanes");
    out.assign(k * lane_bytes, 0);
    std::vector<std::uint8_t> codeword(k + r);
    std::vector<std::uint8_t> data;
    for (std::size_t b = 0; b < lane_bytes; ++b) {
        for (unsigned lane = 0; lane < k + r; ++lane)
            codeword[lane] = lanes[lane * lane_bytes + b];
        if (!decode(codeword, erased, data))
            return false;
        for (unsigned lane = 0; lane < k; ++lane)
            out[lane * lane_bytes + b] = data[lane];
    }
    return true;
}

} // namespace lightpc::psm
