/**
 * @file
 * Bare-metal PRAM DIMM channel geometry (Section V-B, Fig. 13).
 *
 * A Bare-NVDIMM carries eight PRAM devices plus ECC devices. Two
 * layouts are modeled:
 *
 *  - DramLike: all eight devices share one chip enable, so any access
 *    drives the whole rank at 8 x 32 B = 256 B granularity. A 64 B
 *    cacheline write needs a read-modify cycle and every access
 *    monopolizes the rank (one service unit per DIMM).
 *
 *  - DualChannel (LightPC's design): devices are paired, each pair
 *    with its own chip enable, so a 64 B line is served by one
 *    2 x 32 B group while the other three groups stay available —
 *    intra-DIMM parallelism on top of the usual inter-DIMM
 *    interleaving.
 */

#ifndef LIGHTPC_PSM_BARE_NVDIMM_HH
#define LIGHTPC_PSM_BARE_NVDIMM_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "mem/pram_device.hh"
#include "mem/request.hh"

namespace lightpc::psm
{

/** Chip-enable grouping of the eight PRAM devices. */
enum class DimmLayout
{
    DualChannel,  ///< 4 independent 2-device groups (LightPC).
    DramLike,     ///< 1 rank-wide group, 256 B granularity.
};

/** Configuration of one Bare-NVDIMM. */
struct BareNvdimmParams
{
    DimmLayout layout = DimmLayout::DualChannel;

    /** Timing/endurance of each PRAM device. */
    mem::PramParams device;

    /** Data devices per DIMM (conventionally eight). */
    std::uint32_t devicesPerDimm = 8;
};

/**
 * One Bare-NVDIMM: a set of independently-schedulable device groups.
 */
class BareNvdimm
{
  public:
    explicit BareNvdimm(const BareNvdimmParams &params);

    const BareNvdimmParams &params() const { return _params; }

    /** Independent service units on this DIMM (4 or 1). */
    std::uint32_t groupCount() const
    {
        return static_cast<std::uint32_t>(groups.size());
    }

    /** Bytes served by one group access (64 or 256). */
    std::uint32_t serviceBytes() const { return _serviceBytes; }

    /**
     * A 64 B write on the DramLike layout must read-modify the full
     * 256 B rank access.
     */
    bool needsReadModifyWrite() const
    {
        return _params.layout == DimmLayout::DramLike;
    }

    /** Access the group timing model. */
    mem::PramDevice &group(std::uint32_t idx) { return *groups[idx]; }
    const mem::PramDevice &group(std::uint32_t idx) const
    {
        return *groups[idx];
    }

    /** Latest busy-until across all groups (flush support). */
    Tick busyUntil() const;

    /** Reset all groups. */
    void reset();

  private:
    BareNvdimmParams _params;
    std::uint32_t _serviceBytes;
    std::vector<std::unique_ptr<mem::PramDevice>> groups;
};

} // namespace lightpc::psm

#endif // LIGHTPC_PSM_BARE_NVDIMM_HH
