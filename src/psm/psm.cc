#include "psm/psm.hh"

#include <algorithm>

#include "psm/xcc.hh"
#include "sim/logging.hh"

namespace lightpc::psm
{

namespace
{

/**
 * Ground-truth byte @p i of the line stored at @p key (a splitmix64
 * hash). The data path is not simulated byte-for-byte, but the RAS
 * pipeline must run the *real* codecs on *real* codewords, so every
 * line has a deterministic pattern reconstructible from its location:
 * decode output is compared against it and any disagreement is a
 * silent-data-corruption event.
 */
std::uint8_t
patternByte(std::uint64_t key, std::uint32_t i)
{
    std::uint64_t z = key + 0x9e3779b97f4a7c15ULL * (i + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::uint8_t>(z ^ (z >> 31));
}

/** Fill @p h with the stored pattern of @p key, bytes [base, base+32). */
void
fillPattern(HalfLine &h, std::uint64_t key, std::uint32_t base)
{
    for (std::uint32_t i = 0; i < h.size(); ++i)
        h[i] = patternByte(key, base + i);
}

/**
 * Apply @p n symbol faults to @p h. The erasure model keys off
 * *which granules* are corrupt, not which symbols, so the positions
 * are arbitrary; the values must genuinely differ so the parity
 * consistency check is exercised for real.
 */
void
corruptSymbols(HalfLine &h, std::uint32_t n)
{
    const std::uint32_t limit =
        std::min<std::uint32_t>(n, static_cast<std::uint32_t>(h.size()));
    for (std::uint32_t i = 0; i < limit; ++i)
        h[i] ^= 0xA5;
}

} // namespace

Psm::Psm(const PsmParams &params)
    : _params(params)
{
    if (_params.dimms == 0)
        fatal("Psm requires at least one DIMM");
    const std::uint64_t page_lines_check =
        _params.rowBufferBytes / mem::cacheLineBytes;
    if (page_lines_check == 0 || page_lines_check > 64)
        fatal("Psm rowBufferBytes must hold 1..64 lines");

    nvdimms.reserve(_params.dimms);
    for (std::uint32_t i = 0; i < _params.dimms; ++i)
        nvdimms.push_back(std::make_unique<BareNvdimm>(_params.dimm));

    units = _params.dimms * nvdimms[0]->groupCount();
    rowBuffers.assign(units, RowBuffer{});
    eccBusyUntil.assign((units + 1) / 2, 0);
    unitFaults.assign(units, 0);

    capacity = 0;
    for (std::uint32_t d = 0; d < _params.dimms; ++d)
        for (std::uint32_t g = 0; g < nvdimms[d]->groupCount(); ++g)
            capacity += nvdimms[d]->group(g).params().capacityBytes;

    const std::uint64_t total_lines = capacity / mem::cacheLineBytes;
    const std::uint64_t page_lines =
        _params.rowBufferBytes / mem::cacheLineBytes;
    if (_params.spareLines >= total_lines)
        fatal("Psm spareLines must leave managed capacity");
    // Carve the spare pool from the top of the physical space, then
    // round the managed line count down to a whole number of pages.
    lineCount = total_lines - _params.spareLines;
    lineCount -= lineCount % page_lines;
    // Spares sit just past the Start-Gap slot range [0, lineCount].
    retire = RetireTable(lineCount + 1, _params.spareLines);
    StartGapParams sg;
    sg.lines = lineCount;
    sg.writeThreshold = _params.wearThreshold;
    sg.randomizerSeed = _params.wearSeed;
    sg.pageLines = page_lines;
    wearLevel = std::make_unique<StartGap>(sg);

    lineDecode.set(lineCount);
    pageDecode.set(page_lines);
    unitDecode.set(units);
    groupDecode.set(nvdimms[0]->groupCount());

    if (_params.dimm.device.faults.enabled || _params.symbolEccFallback)
        symbolTier = std::make_unique<SymbolEcc>(2, 2);
    seedUnitFaultRngs();
}

void
Psm::seedUnitFaultRngs()
{
    // Salt the configured seed per service unit so that dies do not
    // replay each other's fault trace (one shared trace would make
    // every group fail in lockstep and mask routing bugs).
    if (!_params.dimm.device.faults.enabled)
        return;
    const std::uint32_t groups = nvdimms[0]->groupCount();
    for (std::uint32_t u = 0; u < units; ++u)
        nvdimms[u / groups]->group(u % groups).seedFaults(
            _params.dimm.device.faults.seed
            ^ (0x9e3779b97f4a7c15ULL * (u + 1)));
}

Psm::Route
Psm::routePhysical(std::uint64_t physical_line) const
{
    // Interleave at row-buffer-page granularity: a sequential page
    // burst fills one group's row buffer while other pages spread
    // over the remaining DIMMs/groups (intra- and inter-DIMM
    // parallelism, Section V-B). All divisors are fixed at
    // construction, so the decode is shifts/masks on the usual
    // power-of-two geometries.
    const std::uint64_t global_page = pageDecode.div(physical_line);

    Route r;
    r.slot = physical_line;
    r.unit = static_cast<std::uint32_t>(unitDecode.mod(global_page));
    r.dimm = static_cast<std::uint32_t>(groupDecode.div(r.unit));
    r.group = static_cast<std::uint32_t>(groupDecode.mod(r.unit));
    r.page = unitDecode.div(global_page);
    r.lineInPage =
        static_cast<std::uint32_t>(pageDecode.mod(physical_line));
    r.localAddr = (r.page * pageDecode.value() + r.lineInPage)
        * mem::cacheLineBytes;
    return r;
}

Psm::Route
Psm::route(mem::Addr addr) const
{
    const std::uint64_t logical_line =
        lineDecode.mod(addr / mem::cacheLineBytes);
    const std::uint64_t physical_line = _params.wearLeveling
        ? wearLevel->remap(logical_line)
        : logical_line;

    // Retirement is layered after Start-Gap: the damage is physical,
    // so the table is keyed by the slot the wear leveler produced —
    // whatever logical line rotates onto a retired slot is served by
    // its spare.
    Route r = routePhysical(retire.remap(physical_line));
    r.slot = physical_line;
    return r;
}

mem::PramDevice &
Psm::unitDevice(const Route &r)
{
    return nvdimms[r.dimm]->group(r.group);
}

mem::AccessResult
Psm::closeRowBuffer(std::uint32_t unit, Tick when)
{
    RowBuffer &rb = rowBuffers[unit];
    mem::AccessResult drain;
    drain.mediaFreeAt = when;
    if (rb.dirtyMask != 0) {
        const std::uint32_t groups_per_dimm = nvdimms[0]->groupCount();
        BareNvdimm &dimm = *nvdimms[unit / groups_per_dimm];
        mem::PramDevice &dev = dimm.group(unit % groups_per_dimm);
        // The deferred dirty lines hit the media now, one cooling
        // window each (the device serializes internally). Early-
        // return semantics apply to the *requester*; the media
        // always pays the full write time. On the DramLike layout
        // every line write first reads the surrounding 256 B rank
        // access (read-modify-write).
        std::uint64_t mask = rb.dirtyMask;
        for (std::uint32_t line = 0; mask != 0; ++line, mask >>= 1) {
            if (!(mask & 1))
                continue;
            const mem::Addr line_addr =
                rb.pageAddr + mem::Addr(line) * mem::cacheLineBytes;
            Tick start = when;
            if (dimm.needsReadModifyWrite())
                start = dev.read(when).completeAt;
            drain = dev.write(start, line_addr, /*early_return=*/true);
        }
        rb.dirtyMask = 0;
    }
    rb.openPage = ~std::uint64_t(0);
    return drain;
}

Psm::LineFaults
Psm::sampleLineFaults(const Route &r)
{
    mem::PramDevice &dev = unitDevice(r);
    LineFaults lf;
    lf.a = dev.sampleReadFaults(r.localAddr);
    lf.b = dev.sampleReadFaults(
        r.localAddr + mem::pramDeviceGranularity);
    lf.p = dev.sampleReadFaults(parityKey(r.localAddr));
    return lf;
}

bool
Psm::rasDecodeLine(const Route &r, const LineFaults &lf,
                   mem::AccessResult &result)
{
    ++_stats.rasCheckedReads;
    if (!lf.any())
        return false;

    // Ground truth: the line's deterministic stored pattern and the
    // parity the write path would have committed alongside it.
    const std::uint64_t key =
        (std::uint64_t(r.unit) << 40) ^ r.localAddr;
    HalfLine truth_a, truth_b;
    fillPattern(truth_a, key, 0);
    fillPattern(truth_b, key, mem::pramDeviceGranularity);
    const HalfLine truth_p = XccCodec::encode(truth_a, truth_b);

    // What the media returns this read: the stored codeword with the
    // sampled symbol corruption applied.
    HalfLine a = truth_a, b = truth_b, p = truth_p;
    corruptSymbols(a, lf.a.total());
    corruptSymbols(b, lf.b.total());
    corruptSymbols(p, lf.p.total());

    // Erasure model: each 32 B granule carries internal CRC-class
    // detection, so a corrupted granule surfaces as a *known-bad*
    // lane rather than silent wrong data.
    const bool a_bad = lf.a.any();
    const bool b_bad = lf.b.any();
    const bool p_bad = lf.p.any();

    mem::PramDevice &dev = unitDevice(r);
    Tick &ecc = eccBusyUntil[r.unit / 2];

    if ((a_bad && b_bad) || ((a_bad || b_bad) && p_bad)) {
        // Two erasures among the three XCC lanes: the XOR pair code
        // is out of its depth. Either the symbol tier recovers the
        // data halves, or the containment bit goes up.
        bool recovered = false;
        if (_params.symbolEccFallback && symbolTier) {
            // Lane layout: [half A, half B, RS parity 0, RS parity 1]
            // on the Section VIII spare devices (modeled clean). Any
            // two erased lanes are recoverable; the erasure flags
            // come from the per-granule detection above.
            //
            // The code is evaluation-form (non-systematic): each
            // stored lane holds codeword evaluations, not the raw
            // half, so a granule's media faults corrupt its
            // *evaluation* lane in place. Substituting the raw
            // halves here would hand the decoder a clean-flagged
            // lane with wrong contents — exactly the silent
            // corruption the campaign exists to catch.
            const std::size_t lane = mem::pramDeviceGranularity;
            std::vector<std::uint8_t> data(2 * lane);
            std::copy(truth_a.begin(), truth_a.end(), data.begin());
            std::copy(truth_b.begin(), truth_b.end(),
                      data.begin() + lane);
            std::vector<std::uint8_t> stored =
                symbolTier->encodeLanes(data, lane);
            const auto corrupt_lane = [&](std::size_t idx,
                                          std::uint32_t n) {
                const std::size_t limit =
                    std::min<std::size_t>(n, lane);
                for (std::size_t i = 0; i < limit; ++i)
                    stored[idx * lane + i] ^= 0xA5;
            };
            if (a_bad)
                corrupt_lane(0, lf.a.total());
            if (b_bad)
                corrupt_lane(1, lf.b.total());
            const std::vector<bool> erased{a_bad, b_bad, false, false};
            std::vector<std::uint8_t> out;
            if (symbolTier->decodeLanes(stored, lane, erased, out)) {
                recovered = true;
                ++_stats.symbolCorrections;
                result.corrected = true;
                if (!std::equal(out.begin(), out.end(), data.begin()))
                    ++_stats.sdcEvents;
                const Tick start = std::max(result.completeAt, ecc);
                result.completeAt = start + _params.symbolEccLatency;
                ecc = result.completeAt;
            }
        }
        if (!recovered) {
            ++_stats.uncorrectableReads;
            raiseMce();
            result.containment = true;
            result.corrected = false;
            return false;  // the MCE handler owns the slot's fate
        }
    } else if (a_bad || b_bad) {
        // One data half erased, parity healthy: the XCC repair path,
        // one XOR cycle on the reconstruction lane.
        const XccDecode xd = XccCodec::decode(a, b, p, a_bad, b_bad);
        if (!xd.ok || a != truth_a || b != truth_b)
            ++_stats.sdcEvents;
        ++_stats.correctedReads;
        result.corrected = true;
        const Tick start = std::max(result.completeAt, ecc);
        result.completeAt = start + _params.xorLatency;
        ecc = result.completeAt;
    } else {
        // Only the parity granule is corrupt: data is served as-is,
        // but the codeword must *detect* the damage — a corrupted
        // parity that still checks out would be silent rot waiting
        // for the next half-line failure.
        if (XccCodec::consistent(a, b, p))
            ++_stats.sdcEvents;
        ++_stats.parityRewrites;
        // Reprogram the parity granule on the ECC device.
        ecc = std::max(ecc, result.completeAt)
            + dev.params().writeLatency;
    }
    return lf.anyStuck();
}

void
Psm::retireSlot(const Route &r, Tick when)
{
    if (!retire.canRetire()) {
        ++_stats.spareExhausted;
        return;
    }
    const std::uint64_t spare = retire.retire(r.slot);
    ++_stats.retiredLines;
    // The bad slot's stuck state is out of service now; dropping it
    // keeps the per-device map bounded.
    mem::PramDevice &dev = unitDevice(r);
    dev.retireGranule(r.localAddr);
    dev.retireGranule(r.localAddr + mem::pramDeviceGranularity);
    dev.retireGranule(parityKey(r.localAddr));
    // Copy the displaced line onto its spare: one background write
    // on the spare's service unit.
    const Route spare_r = routePhysical(spare);
    unitDevice(spare_r).write(when, spare_r.localAddr,
                              /*early_return=*/true);
}

bool
Psm::retireFaultyLine(mem::Addr addr, Tick when)
{
    const Route r = route(addr);
    if (!retire.canRetire()) {
        ++_stats.spareExhausted;
        return false;
    }
    retireSlot(r, when);
    return true;
}

Psm::ScrubOutcome
Psm::scrubLine(std::uint64_t logical_line, Tick when)
{
    ScrubOutcome out;
    const Route r = route(logical_line * mem::cacheLineBytes);
    mem::PramDevice &dev = unitDevice(r);
    RowBuffer &rb = rowBuffers[r.unit];

    // Idle-slot discipline: the patrol never delays demand traffic.
    // A line sitting dirty in its row buffer is about to be rewritten
    // at drain anyway, so scrubbing it now would be wasted wear.
    const bool line_dirty = rb.openPage == r.page
        && (rb.dirtyMask & (std::uint64_t(1) << r.lineInPage));
    if (dev.busyAt(when) || line_dirty) {
        ++_stats.scrubDeferrals;
        return out;
    }

    out.serviced = true;
    ++_stats.scrubbedLines;
    const mem::AccessResult media = dev.read(when);
    if (!_params.dimm.device.faults.enabled)
        return out;

    const LineFaults lf = sampleLineFaults(r);
    if (!lf.any())
        return out;

    mem::AccessResult res;
    res.completeAt = media.completeAt;
    const bool want_retire = rasDecodeLine(r, lf, res);
    if (res.containment) {
        out.containment = true;
        return out;
    }
    if (want_retire) {
        retireSlot(r, res.completeAt);
        out.retired = true;
        return out;
    }
    // Transient-only corruption: a rewrite refreshes the cells.
    dev.write(res.completeAt, r.localAddr, /*early_return=*/true);
    ++_stats.scrubRepairs;
    out.repaired = true;
    return out;
}

stats::Histogram
Psm::wearHistogram() const
{
    stats::Histogram hist;
    for (const auto &dimm : nvdimms)
        for (std::uint32_t g = 0; g < dimm->groupCount(); ++g)
            dimm->group(g).addWearSamples(hist);
    return hist;
}

mem::AccessResult
Psm::access(const mem::MemRequest &req, Tick when)
{
    mem::AccessResult result;
    Tick t = when + _params.busLatency;
    const Route r = route(req.addr);
    mem::PramDevice &dev = unitDevice(r);
    RowBuffer &rb = rowBuffers[r.unit];
    const mem::Addr page_base = r.page * _params.rowBufferBytes;

    if (req.op == mem::MemOp::Write) {
        ++_stats.writes;

        // Start-Gap bookkeeping: every threshold-th write moves the
        // gap, costing one extra line copy on the media.
        if (_params.wearLeveling && wearLevel->recordWrite()) {
            ++_stats.wearMoves;
            const mem::AccessResult copy_read = dev.read(t);
            dev.write(copy_read.completeAt, r.localAddr,
                      /*early_return=*/true);
        }

        if (!_params.earlyReturnWrites) {
            // LightPC-B: a conventional controller cannot track the
            // PRAM thermal state, so every write is synchronous at
            // the media — no row-buffer absorption, no early return.
            // The full cooling window occupies the device and stalls
            // the issuer (Section V-A).
            Tick start = t;
            if (nvdimms[r.dimm]->needsReadModifyWrite())
                start = dev.read(t).completeAt;
            const mem::AccessResult media =
                dev.write(start, r.localAddr, /*early_return=*/false);
            result.completeAt = media.completeAt;
            result.mediaFreeAt = media.mediaFreeAt;
            writeHist.add(result.completeAt - when);
            return result;
        }

        if (rb.openPage == r.page) {
            // Aggregated by the open row buffer.
            ++_stats.rowBufferWriteHits;
            rb.dirtyMask |= std::uint64_t(1) << r.lineInPage;
            result.rowBufferHit = true;
            result.completeAt = t + _params.rowBufferLatency;
            result.mediaFreeAt = dev.busyUntil();
            writeHist.add(result.completeAt - when);
            return result;
        }

        // Page change: close the previous page (its dirty lines
        // drain to the media in the background), then open the new
        // one and absorb this write — early return to the issuer.
        closeRowBuffer(r.unit, t);
        rb.openPage = r.page;
        rb.pageAddr = page_base;
        rb.dirtyMask = std::uint64_t(1) << r.lineInPage;
        result.completeAt = t + _params.rowBufferLatency;
        result.mediaFreeAt = dev.busyUntil();
        writeHist.add(result.completeAt - when);
        return result;
    }

    // Read path.
    ++_stats.reads;

    if (rb.openPage == r.page
        && (rb.dirtyMask & (std::uint64_t(1) << r.lineInPage))) {
        // Forwarded from the open row buffer.
        ++_stats.rowBufferReadHits;
        result.rowBufferHit = true;
        result.completeAt = t + _params.rowBufferLatency;
        result.mediaFreeAt = dev.busyUntil();
        readHist.add(result.completeAt - when);
        return result;
    }

    // Reliability: media faults on this unit.
    if (const std::uint8_t faults = unitFaults[r.unit]) {
        Tick &ecc = eccBusyUntil[r.unit / 2];
        const Tick start = std::max(t, ecc);
        if (faults == 0x3) {
            // Both halves dead. The XOR pair code is out of its
            // depth: either the symbol-ECC tier recovers the line
            // from the surviving devices, or the containment bit
            // goes up and the host takes the MCE path.
            if (_params.symbolEccFallback) {
                ++_stats.symbolCorrections;
                result.corrected = true;
                result.completeAt = start
                    + dev.params().readLatency
                    + _params.symbolEccLatency;
                ecc = result.completeAt;
            } else {
                raiseMce();
                result.containment = true;
                result.completeAt =
                    start + dev.params().readLatency;
            }
        } else {
            // One half dead: regenerate it from the healthy half
            // and the parity device, one read + one XOR.
            ++_stats.correctedReads;
            result.corrected = true;
            result.completeAt = start + dev.params().readLatency
                + _params.xorLatency;
            ecc = result.completeAt;
        }
        result.mediaFreeAt = dev.busyUntil();
        readHist.add(result.completeAt - when);
        return result;
    }

    const bool media_faults = _params.dimm.device.faults.enabled;

    if (dev.busyAt(t) && _params.eccReconstruction) {
        // Non-blocking service: regenerate the target from the
        // paired half + parity on the ECC lane instead of waiting
        // for the in-flight write to cool off.
        ++_stats.reconstructedReads;
        Tick &ecc = eccBusyUntil[r.unit / 2];
        const Tick start = std::max(t, ecc);
        result.completeAt =
            start + dev.params().readLatency + _params.xorLatency;
        ecc = result.completeAt;
        result.reconstructed = true;
    } else {
        if (dev.busyAt(t)) {
            // LightPC-B: head-of-line blocking behind the write.
            ++_stats.blockedReads;
            _stats.readStallTicks += dev.busyUntil() - t;
        }
        const mem::AccessResult media = dev.read(t);
        result.completeAt = media.completeAt;
    }

    if (media_faults) {
        // Every media-touching read runs the full codeword through
        // the real codecs: corrections are counted, not assumed, and
        // any decode/ground-truth mismatch is a recorded SDC event.
        const LineFaults lf = sampleLineFaults(r);
        if (rasDecodeLine(r, lf, result))
            retireSlot(r, result.completeAt);
    }

    result.mediaFreeAt = dev.busyUntil();
    readHist.add(result.completeAt - when);
    return result;
}

Tick
Psm::flush(Tick when)
{
    ++_stats.flushes;
    Tick quiescent = when;
    for (std::uint32_t u = 0; u < units; ++u) {
        const mem::AccessResult drain = closeRowBuffer(u, when);
        quiescent = std::max(quiescent, drain.mediaFreeAt);
    }
    for (const auto &dimm : nvdimms)
        quiescent = std::max(quiescent, dimm->busyUntil());
    for (Tick ecc : eccBusyUntil)
        quiescent = std::max(quiescent, ecc);
    _stats.lastFlushQuiescentAt = quiescent;
    return quiescent;
}

void
Psm::resetPort()
{
    for (auto &dimm : nvdimms)
        dimm->reset();
    seedUnitFaultRngs();
    std::fill(rowBuffers.begin(), rowBuffers.end(), RowBuffer{});
    std::fill(eccBusyUntil.begin(), eccBusyUntil.end(), Tick(0));
    StartGapParams sg = wearLevel->params();
    wearLevel = std::make_unique<StartGap>(sg);
    // A cold boot wipes OC-PMEM, and the DIMM reset above restored
    // pristine media, so the remap table starts over too.
    retire.reset();
    _stats = PsmStats{};
    readHist.reset();
    writeHist.reset();
}

void
Psm::resetStats()
{
    _stats = PsmStats{};
    readHist.reset();
    writeHist.reset();
}

void
Psm::injectFault(std::uint32_t dimm_idx, std::uint32_t group,
                 std::uint32_t half)
{
    if (dimm_idx >= _params.dimms
        || group >= nvdimms[dimm_idx]->groupCount() || half > 1)
        fatal("Psm::injectFault out of range");
    const std::uint32_t unit =
        dimm_idx * nvdimms[0]->groupCount() + group;
    unitFaults[unit] |= std::uint8_t(1) << half;
}

void
Psm::clearFaults()
{
    std::fill(unitFaults.begin(), unitFaults.end(), 0);
}

std::uint32_t
Psm::faultCount() const
{
    std::uint32_t n = 0;
    for (const std::uint8_t f : unitFaults)
        n += (f & 1) + ((f >> 1) & 1);
    return n;
}

bool
Psm::handleContainment()
{
    if (_params.mcePolicy == McePolicy::Contain)
        return false;
    // The paper's current version: wipe OC-PMEM through the reset
    // port and reinitialize the system with a cold boot.
    containmentReset();
    return true;
}

void
Psm::containmentReset()
{
    const std::uint64_t preserved_mce = _stats.mceCount;
    const std::uint64_t preserved_resets = _stats.resets + 1;
    resetPort();
    _stats.mceCount = preserved_mce;
    _stats.resets = preserved_resets;
}

Tick
Psm::reseedWearLeveler(Tick when, std::uint64_t new_seed)
{
    // Changing the static randomizer relocates every page: the
    // media must be migrated to the new mapping. Each unit streams
    // its contents through one read + one write per line, all units
    // in parallel.
    const std::uint64_t lines_per_unit = lineCount / units;
    const Tick per_line = _params.dimm.device.readLatency
        + _params.dimm.device.writeLatency;
    const Tick done = when + lines_per_unit * per_line;

    StartGapParams sg = wearLevel->params();
    sg.randomizerSeed = new_seed;
    wearLevel = std::make_unique<StartGap>(sg);
    _params.wearSeed = new_seed;
    return done;
}

} // namespace lightpc::psm
