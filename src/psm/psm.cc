#include "psm/psm.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace lightpc::psm
{

Psm::Psm(const PsmParams &params)
    : _params(params)
{
    if (_params.dimms == 0)
        fatal("Psm requires at least one DIMM");
    const std::uint64_t page_lines_check =
        _params.rowBufferBytes / mem::cacheLineBytes;
    if (page_lines_check == 0 || page_lines_check > 64)
        fatal("Psm rowBufferBytes must hold 1..64 lines");

    nvdimms.reserve(_params.dimms);
    for (std::uint32_t i = 0; i < _params.dimms; ++i)
        nvdimms.push_back(std::make_unique<BareNvdimm>(_params.dimm));

    units = _params.dimms * nvdimms[0]->groupCount();
    rowBuffers.assign(units, RowBuffer{});
    eccBusyUntil.assign((units + 1) / 2, 0);
    unitFaults.assign(units, 0);

    capacity = 0;
    for (std::uint32_t d = 0; d < _params.dimms; ++d)
        for (std::uint32_t g = 0; g < nvdimms[d]->groupCount(); ++g)
            capacity += nvdimms[d]->group(g).params().capacityBytes;

    lineCount = capacity / mem::cacheLineBytes;
    const std::uint64_t page_lines =
        _params.rowBufferBytes / mem::cacheLineBytes;
    // Round the managed line count down to a whole number of pages.
    lineCount -= lineCount % page_lines;
    StartGapParams sg;
    sg.lines = lineCount;
    sg.writeThreshold = _params.wearThreshold;
    sg.randomizerSeed = _params.wearSeed;
    sg.pageLines = page_lines;
    wearLevel = std::make_unique<StartGap>(sg);

    lineDecode.set(lineCount);
    pageDecode.set(page_lines);
    unitDecode.set(units);
    groupDecode.set(nvdimms[0]->groupCount());
}

Psm::Route
Psm::route(mem::Addr addr) const
{
    const std::uint64_t logical_line =
        lineDecode.mod(addr / mem::cacheLineBytes);
    const std::uint64_t physical_line = _params.wearLeveling
        ? wearLevel->remap(logical_line)
        : logical_line;

    // Interleave at row-buffer-page granularity: a sequential page
    // burst fills one group's row buffer while other pages spread
    // over the remaining DIMMs/groups (intra- and inter-DIMM
    // parallelism, Section V-B). All divisors are fixed at
    // construction, so the decode is shifts/masks on the usual
    // power-of-two geometries.
    const std::uint64_t global_page = pageDecode.div(physical_line);

    Route r;
    r.unit = static_cast<std::uint32_t>(unitDecode.mod(global_page));
    r.dimm = static_cast<std::uint32_t>(groupDecode.div(r.unit));
    r.group = static_cast<std::uint32_t>(groupDecode.mod(r.unit));
    r.page = unitDecode.div(global_page);
    r.lineInPage =
        static_cast<std::uint32_t>(pageDecode.mod(physical_line));
    r.localAddr = (r.page * pageDecode.value() + r.lineInPage)
        * mem::cacheLineBytes;
    return r;
}

mem::PramDevice &
Psm::unitDevice(const Route &r)
{
    return nvdimms[r.dimm]->group(r.group);
}

mem::AccessResult
Psm::closeRowBuffer(std::uint32_t unit, Tick when)
{
    RowBuffer &rb = rowBuffers[unit];
    mem::AccessResult drain;
    drain.mediaFreeAt = when;
    if (rb.dirtyMask != 0) {
        const std::uint32_t groups_per_dimm = nvdimms[0]->groupCount();
        BareNvdimm &dimm = *nvdimms[unit / groups_per_dimm];
        mem::PramDevice &dev = dimm.group(unit % groups_per_dimm);
        // The deferred dirty lines hit the media now, one cooling
        // window each (the device serializes internally). Early-
        // return semantics apply to the *requester*; the media
        // always pays the full write time. On the DramLike layout
        // every line write first reads the surrounding 256 B rank
        // access (read-modify-write).
        std::uint64_t mask = rb.dirtyMask;
        for (std::uint32_t line = 0; mask != 0; ++line, mask >>= 1) {
            if (!(mask & 1))
                continue;
            const mem::Addr line_addr =
                rb.pageAddr + mem::Addr(line) * mem::cacheLineBytes;
            Tick start = when;
            if (dimm.needsReadModifyWrite())
                start = dev.read(when).completeAt;
            drain = dev.write(start, line_addr, /*early_return=*/true);
        }
        rb.dirtyMask = 0;
    }
    rb.openPage = ~std::uint64_t(0);
    return drain;
}

mem::AccessResult
Psm::access(const mem::MemRequest &req, Tick when)
{
    mem::AccessResult result;
    Tick t = when + _params.busLatency;
    const Route r = route(req.addr);
    mem::PramDevice &dev = unitDevice(r);
    RowBuffer &rb = rowBuffers[r.unit];
    const mem::Addr page_base = r.page * _params.rowBufferBytes;

    if (req.op == mem::MemOp::Write) {
        ++_stats.writes;

        // Start-Gap bookkeeping: every threshold-th write moves the
        // gap, costing one extra line copy on the media.
        if (_params.wearLeveling && wearLevel->recordWrite()) {
            ++_stats.wearMoves;
            const mem::AccessResult copy_read = dev.read(t);
            dev.write(copy_read.completeAt, r.localAddr,
                      /*early_return=*/true);
        }

        if (!_params.earlyReturnWrites) {
            // LightPC-B: a conventional controller cannot track the
            // PRAM thermal state, so every write is synchronous at
            // the media — no row-buffer absorption, no early return.
            // The full cooling window occupies the device and stalls
            // the issuer (Section V-A).
            Tick start = t;
            if (nvdimms[r.dimm]->needsReadModifyWrite())
                start = dev.read(t).completeAt;
            const mem::AccessResult media =
                dev.write(start, r.localAddr, /*early_return=*/false);
            result.completeAt = media.completeAt;
            result.mediaFreeAt = media.mediaFreeAt;
            writeHist.add(result.completeAt - when);
            return result;
        }

        if (rb.openPage == r.page) {
            // Aggregated by the open row buffer.
            ++_stats.rowBufferWriteHits;
            rb.dirtyMask |= std::uint64_t(1) << r.lineInPage;
            result.rowBufferHit = true;
            result.completeAt = t + _params.rowBufferLatency;
            result.mediaFreeAt = dev.busyUntil();
            writeHist.add(result.completeAt - when);
            return result;
        }

        // Page change: close the previous page (its dirty lines
        // drain to the media in the background), then open the new
        // one and absorb this write — early return to the issuer.
        closeRowBuffer(r.unit, t);
        rb.openPage = r.page;
        rb.pageAddr = page_base;
        rb.dirtyMask = std::uint64_t(1) << r.lineInPage;
        result.completeAt = t + _params.rowBufferLatency;
        result.mediaFreeAt = dev.busyUntil();
        writeHist.add(result.completeAt - when);
        return result;
    }

    // Read path.
    ++_stats.reads;

    if (rb.openPage == r.page
        && (rb.dirtyMask & (std::uint64_t(1) << r.lineInPage))) {
        // Forwarded from the open row buffer.
        ++_stats.rowBufferReadHits;
        result.rowBufferHit = true;
        result.completeAt = t + _params.rowBufferLatency;
        result.mediaFreeAt = dev.busyUntil();
        readHist.add(result.completeAt - when);
        return result;
    }

    // Reliability: media faults on this unit.
    if (const std::uint8_t faults = unitFaults[r.unit]) {
        Tick &ecc = eccBusyUntil[r.unit / 2];
        const Tick start = std::max(t, ecc);
        if (faults == 0x3) {
            // Both halves dead. The XOR pair code is out of its
            // depth: either the symbol-ECC tier recovers the line
            // from the surviving devices, or the containment bit
            // goes up and the host takes the MCE path.
            if (_params.symbolEccFallback) {
                ++_stats.symbolCorrections;
                result.corrected = true;
                result.completeAt = start
                    + dev.params().readLatency
                    + _params.symbolEccLatency;
                ecc = result.completeAt;
            } else {
                raiseMce();
                result.containment = true;
                result.completeAt =
                    start + dev.params().readLatency;
            }
        } else {
            // One half dead: regenerate it from the healthy half
            // and the parity device, one read + one XOR.
            ++_stats.correctedReads;
            result.corrected = true;
            result.completeAt = start + dev.params().readLatency
                + _params.xorLatency;
            ecc = result.completeAt;
        }
        result.mediaFreeAt = dev.busyUntil();
        readHist.add(result.completeAt - when);
        return result;
    }

    if (dev.busyAt(t) && _params.eccReconstruction) {
        // Non-blocking service: regenerate the target from the
        // paired half + parity on the ECC lane instead of waiting
        // for the in-flight write to cool off.
        ++_stats.reconstructedReads;
        Tick &ecc = eccBusyUntil[r.unit / 2];
        const Tick start = std::max(t, ecc);
        result.completeAt =
            start + dev.params().readLatency + _params.xorLatency;
        ecc = result.completeAt;
        result.reconstructed = true;
        result.mediaFreeAt = dev.busyUntil();
        readHist.add(result.completeAt - when);
        return result;
    }

    if (dev.busyAt(t)) {
        // LightPC-B: head-of-line blocking behind the write.
        ++_stats.blockedReads;
        _stats.readStallTicks += dev.busyUntil() - t;
    }
    const mem::AccessResult media = dev.read(t);
    result.completeAt = media.completeAt;
    result.mediaFreeAt = dev.busyUntil();
    readHist.add(result.completeAt - when);
    return result;
}

Tick
Psm::flush(Tick when)
{
    ++_stats.flushes;
    Tick quiescent = when;
    for (std::uint32_t u = 0; u < units; ++u) {
        const mem::AccessResult drain = closeRowBuffer(u, when);
        quiescent = std::max(quiescent, drain.mediaFreeAt);
    }
    for (const auto &dimm : nvdimms)
        quiescent = std::max(quiescent, dimm->busyUntil());
    for (Tick ecc : eccBusyUntil)
        quiescent = std::max(quiescent, ecc);
    _stats.lastFlushQuiescentAt = quiescent;
    return quiescent;
}

void
Psm::resetPort()
{
    for (auto &dimm : nvdimms)
        dimm->reset();
    std::fill(rowBuffers.begin(), rowBuffers.end(), RowBuffer{});
    std::fill(eccBusyUntil.begin(), eccBusyUntil.end(), Tick(0));
    StartGapParams sg = wearLevel->params();
    wearLevel = std::make_unique<StartGap>(sg);
    _stats = PsmStats{};
    readHist.reset();
    writeHist.reset();
}

void
Psm::resetStats()
{
    _stats = PsmStats{};
    readHist.reset();
    writeHist.reset();
}

void
Psm::injectFault(std::uint32_t dimm_idx, std::uint32_t group,
                 std::uint32_t half)
{
    if (dimm_idx >= _params.dimms
        || group >= nvdimms[dimm_idx]->groupCount() || half > 1)
        fatal("Psm::injectFault out of range");
    const std::uint32_t unit =
        dimm_idx * nvdimms[0]->groupCount() + group;
    unitFaults[unit] |= std::uint8_t(1) << half;
}

void
Psm::clearFaults()
{
    std::fill(unitFaults.begin(), unitFaults.end(), 0);
}

std::uint32_t
Psm::faultCount() const
{
    std::uint32_t n = 0;
    for (const std::uint8_t f : unitFaults)
        n += (f & 1) + ((f >> 1) & 1);
    return n;
}

bool
Psm::handleContainment()
{
    if (_params.mcePolicy == McePolicy::Contain)
        return false;
    // The paper's current version: wipe OC-PMEM through the reset
    // port and reinitialize the system with a cold boot.
    const std::uint64_t preserved_mce = _stats.mceCount;
    const std::uint64_t preserved_resets = _stats.resets + 1;
    resetPort();
    _stats.mceCount = preserved_mce;
    _stats.resets = preserved_resets;
    return true;
}

Tick
Psm::reseedWearLeveler(Tick when, std::uint64_t new_seed)
{
    // Changing the static randomizer relocates every page: the
    // media must be migrated to the new mapping. Each unit streams
    // its contents through one read + one write per line, all units
    // in parallel.
    const std::uint64_t lines_per_unit = lineCount / units;
    const Tick per_line = _params.dimm.device.readLatency
        + _params.dimm.device.writeLatency;
    const Tick done = when + lines_per_unit * per_line;

    StartGapParams sg = wearLevel->params();
    sg.randomizerSeed = new_seed;
    wearLevel = std::make_unique<StartGap>(sg);
    _params.wearSeed = new_seed;
    return done;
}

} // namespace lightpc::psm
