/**
 * @file
 * L1 cache timing model.
 *
 * A write-back, write-allocate, set-associative cache with a small
 * writeback buffer. Two properties matter for LightPC:
 *
 *  - Loads that miss block their core until the memory below
 *    responds (reads are the critical path, Section VI-A).
 *  - Dirty-line state is enumerable so SnG's "cache dump" can flush
 *    the real dirty footprint through the PSM at PRAM write speed.
 */

#ifndef LIGHTPC_CACHE_L1_CACHE_HH
#define LIGHTPC_CACHE_L1_CACHE_HH

#include <cstdint>
#include <vector>

#include "mem/memory_port.hh"
#include "mem/request.hh"
#include "mem/tag_cache.hh"
#include "sim/ticks.hh"

namespace lightpc::cache
{

/** Configuration of one L1 cache. */
struct L1Params
{
    /** Capacity in bytes (prototype: 16 KB each for I$ and D$). */
    std::uint64_t capacityBytes = 16 * 1024;

    /** Line size in bytes. */
    std::uint32_t lineBytes = mem::cacheLineBytes;

    /** Associativity. */
    std::uint32_t ways = 4;

    /** Hit latency. */
    Tick hitLatency = 2 * tickNs;

    /** Writeback buffer entries. */
    std::uint32_t writebackEntries = 8;

    /** Per-line iteration cost of a whole-cache flush (controller). */
    Tick flushPerLine = 2 * tickNs;
};

/** Outcome of a cache access from the core's perspective. */
struct CacheAccess
{
    bool hit = false;
    /** When the core may proceed. */
    Tick completeAt = 0;
};

/** Cache statistics. */
struct L1Stats
{
    std::uint64_t loadHits = 0;
    std::uint64_t loadMisses = 0;
    std::uint64_t storeHits = 0;
    std::uint64_t storeMisses = 0;
    std::uint64_t writebacks = 0;
    Tick writebackStallTicks = 0;

    double
    loadHitRate() const
    {
        const auto total = loadHits + loadMisses;
        return total ? static_cast<double>(loadHits)
            / static_cast<double>(total) : 0.0;
    }

    double
    storeHitRate() const
    {
        const auto total = storeHits + storeMisses;
        return total ? static_cast<double>(storeHits)
            / static_cast<double>(total) : 0.0;
    }
};

/**
 * One L1 cache bound to a memory port.
 */
class L1Cache
{
  public:
    L1Cache(const L1Params &params, mem::MemoryPort &below);

    const L1Params &params() const { return _params; }

    /** Service a load issued at @p when. */
    CacheAccess load(mem::Addr addr, Tick when);

    /** Service a store issued at @p when. */
    CacheAccess store(mem::Addr addr, Tick when);

    /**
     * Cache dump: write every dirty line back through the memory
     * port (used by SnG's Auto-Stop and by pmem_persist-style flush
     * loops).
     *
     * @return When the last line has been *issued*; call
     *         MemoryPort::fence() afterwards to wait for media.
     */
    Tick flushAll(Tick when);

    /** Invalidate everything (cold boot). */
    void invalidateAll();

    /** Current number of dirty lines. */
    std::uint64_t dirtyLines() const { return tags.dirtyLines(); }

    /** Current number of valid lines. */
    std::uint64_t validLines() const { return tags.validLines(); }

    const L1Stats &stats() const { return _stats; }

    /** Reset statistics (not contents). */
    void resetStats() { _stats = L1Stats{}; }

  private:
    /** Retire writeback-buffer entries that have completed. */
    void drainWritebacks(Tick now);

    /** Issue one line writeback; may stall if the buffer is full. */
    Tick issueWriteback(mem::Addr block, Tick when);

    L1Params _params;
    mem::MemoryPort &below;
    mem::TagCache tags;
    /** Completion times of in-flight writebacks. */
    std::vector<Tick> wbBusyUntil;
    L1Stats _stats;
};

} // namespace lightpc::cache

#endif // LIGHTPC_CACHE_L1_CACHE_HH
