#include "cache/l1_cache.hh"

#include <algorithm>

namespace lightpc::cache
{

L1Cache::L1Cache(const L1Params &params, mem::MemoryPort &below_port)
    : _params(params),
      below(below_port),
      tags(params.capacityBytes, params.lineBytes, params.ways)
{
    wbBusyUntil.assign(_params.writebackEntries, 0);
}

void
L1Cache::drainWritebacks(Tick)
{
    // Entries retire implicitly: a slot is reusable once its
    // completion time has passed; nothing to do eagerly.
}

Tick
L1Cache::issueWriteback(mem::Addr block, Tick when)
{
    // Find the earliest-free buffer slot; if none is free at `when`,
    // the requester stalls until one retires.
    auto slot = std::min_element(wbBusyUntil.begin(), wbBusyUntil.end());
    Tick start = when;
    if (*slot > when) {
        _stats.writebackStallTicks += *slot - when;
        start = *slot;
    }
    mem::MemRequest req;
    req.op = mem::MemOp::Write;
    req.addr = block;
    req.size = _params.lineBytes;
    const mem::AccessResult result = below.access(req, start);
    *slot = result.completeAt;
    ++_stats.writebacks;
    return start;
}

CacheAccess
L1Cache::load(mem::Addr addr, Tick when)
{
    CacheAccess out;
    const auto tag = tags.access(addr, /*dirty=*/false);
    if (tag.hit) {
        ++_stats.loadHits;
        out.hit = true;
        out.completeAt = when + _params.hitLatency;
        return out;
    }

    ++_stats.loadMisses;
    Tick t = when + _params.hitLatency;  // tag check before miss
    if (tag.evicted && tag.evictedDirty)
        t = issueWriteback(tag.evictedBlock, t);

    mem::MemRequest req;
    req.op = mem::MemOp::Read;
    req.addr = tags.blockOf(addr);
    req.size = _params.lineBytes;
    const mem::AccessResult fill = below.access(req, t);
    out.completeAt = fill.completeAt;
    return out;
}

CacheAccess
L1Cache::store(mem::Addr addr, Tick when)
{
    CacheAccess out;
    const auto tag = tags.access(addr, /*dirty=*/true);
    if (tag.hit) {
        ++_stats.storeHits;
        out.hit = true;
        out.completeAt = when + _params.hitLatency;
        return out;
    }

    // Write-allocate: fetch the line, then merge the store.
    ++_stats.storeMisses;
    Tick t = when + _params.hitLatency;
    if (tag.evicted && tag.evictedDirty)
        t = issueWriteback(tag.evictedBlock, t);

    mem::MemRequest req;
    req.op = mem::MemOp::Read;
    req.addr = tags.blockOf(addr);
    req.size = _params.lineBytes;
    const mem::AccessResult fill = below.access(req, t);
    out.completeAt = fill.completeAt;
    return out;
}

Tick
L1Cache::flushAll(Tick when)
{
    // The cache controller walks the tag array and writes every
    // dirty line back; issue cost per line plus the memory system's
    // own acceptance time (row buffers aggregate consecutive lines).
    Tick t = when;
    for (const mem::Addr block : tags.collectDirty()) {
        t += _params.flushPerLine;
        mem::MemRequest req;
        req.op = mem::MemOp::Write;
        req.addr = block;
        req.size = _params.lineBytes;
        const mem::AccessResult result = below.access(req, t);
        t = std::max(t, result.completeAt);
        ++_stats.writebacks;
    }
    tags.cleanAll();
    return t;
}

void
L1Cache::invalidateAll()
{
    tags.invalidateAll();
    std::fill(wbBusyUntil.begin(), wbBusyUntil.end(), Tick(0));
}

} // namespace lightpc::cache
