#include "stats/table.hh"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "sim/logging.hh"

namespace lightpc::stats
{

Table::Table(std::vector<std::string> header_cols)
    : header(std::move(header_cols))
{
    if (header.empty())
        fatal("Table requires at least one column");
}

void
Table::addRow(std::vector<std::string> row)
{
    if (row.size() != header.size())
        fatal("Table row width ", row.size(), " != header width ",
              header.size());
    body.push_back(std::move(row));
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> width(header.size());
    for (std::size_t c = 0; c < header.size(); ++c)
        width[c] = header[c].size();
    for (const auto &row : body)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << (c == 0 ? "" : "  ")
               << std::left << std::setw(static_cast<int>(width[c]))
               << row[c];
        }
        os << '\n';
    };

    emit(header);
    std::size_t total = 0;
    for (std::size_t c = 0; c < width.size(); ++c)
        total += width[c] + (c == 0 ? 0 : 2);
    os << std::string(total, '-') << '\n';
    for (const auto &row : body)
        emit(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto field = [&](const std::string &s) {
        if (s.find_first_of(",\"\n") == std::string::npos) {
            os << s;
            return;
        }
        os << '"';
        for (const char c : s) {
            if (c == '"')
                os << '"';
            os << c;
        }
        os << '"';
    };
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << ',';
            field(row[c]);
        }
        os << '\n';
    };
    emit(header);
    for (const auto &row : body)
        emit(row);
}

std::string
Table::num(double v, int digits)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(digits) << v;
    return os.str();
}

std::string
Table::ratio(double v, int digits)
{
    return num(v, digits) + "x";
}

std::string
Table::percent(double v, int digits)
{
    return num(v * 100.0, digits) + "%";
}

} // namespace lightpc::stats
