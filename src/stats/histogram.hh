/**
 * @file
 * Log-bucketed latency histogram with percentile queries.
 *
 * Latency distributions in the paper (Fig. 2b) span three orders of
 * magnitude, so buckets grow geometrically: each power of two is
 * subdivided into a fixed number of linear sub-buckets, giving a
 * bounded relative quantile error with O(1) insertion.
 */

#ifndef LIGHTPC_STATS_HISTOGRAM_HH
#define LIGHTPC_STATS_HISTOGRAM_HH

#include <cstdint>
#include <vector>

#include "stats/summary.hh"

namespace lightpc::stats
{

/**
 * HDR-style histogram over non-negative 64-bit values.
 */
class Histogram
{
  public:
    /**
     * @param sub_buckets Linear sub-buckets per power of two; higher
     *                    means finer quantiles (default 1/32 relative
     *                    resolution).
     */
    explicit Histogram(unsigned sub_buckets = 32);

    /** Record one value. */
    void add(std::uint64_t value);

    /** Number of recorded values. */
    std::uint64_t count() const { return summary.count(); }

    /** Arithmetic mean of recorded values. */
    double mean() const { return summary.mean(); }

    /** Smallest recorded value (0 when empty). */
    std::uint64_t min() const;

    /** Largest recorded value (0 when empty). */
    std::uint64_t max() const;

    /** Standard deviation. */
    double stddev() const { return summary.stddev(); }

    /** Coefficient of variation (non-determinism proxy). */
    double cv() const { return summary.cv(); }

    /**
     * Value at quantile @p q in [0, 1]; approximate to bucket
     * resolution. Returns 0 when empty.
     */
    std::uint64_t percentile(double q) const;

    /** Reset all recorded data. */
    void reset();

  private:
    std::size_t bucketIndex(std::uint64_t value) const;
    std::uint64_t bucketLow(std::size_t index) const;

    unsigned subBuckets;
    unsigned subBucketShift;
    std::vector<std::uint64_t> buckets;
    Summary summary;
};

} // namespace lightpc::stats

#endif // LIGHTPC_STATS_HISTOGRAM_HH
