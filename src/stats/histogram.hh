/**
 * @file
 * Log-bucketed latency histogram with percentile queries.
 *
 * Latency distributions in the paper (Fig. 2b) span three orders of
 * magnitude, so buckets grow geometrically: each power of two is
 * subdivided into a fixed number of linear sub-buckets, giving a
 * bounded relative quantile error with O(1) insertion.
 *
 * Samples are staged in a small buffer and folded into the buckets
 * and Welford summary in batches — the simulator records a sample on
 * every memory access, and staging keeps that hot path to one store.
 * The buffer preserves insertion order and the flush replays it
 * sequentially, so every query returns exactly what unstaged
 * insertion would have produced.
 */

#ifndef LIGHTPC_STATS_HISTOGRAM_HH
#define LIGHTPC_STATS_HISTOGRAM_HH

#include <array>
#include <cstdint>
#include <vector>

#include "stats/summary.hh"

namespace lightpc::stats
{

/**
 * HDR-style histogram over non-negative 64-bit values.
 */
class Histogram
{
  public:
    /**
     * @param sub_buckets Linear sub-buckets per power of two; higher
     *                    means finer quantiles (default 1/32 relative
     *                    resolution).
     */
    explicit Histogram(unsigned sub_buckets = 32);

    /** Record one value. */
    void
    add(std::uint64_t value)
    {
        staging[stagedCount] = value;
        if (++stagedCount == stagingCapacity)
            flush();
    }

    /**
     * Fold staged samples into the buckets and summary. Queries
     * flush implicitly; call this at epoch boundaries to bound the
     * staging latency explicitly.
     */
    void flush() const;

    /** Number of recorded values. */
    std::uint64_t
    count() const
    {
        return summary.count() + stagedCount;
    }

    /** Arithmetic mean of recorded values. */
    double
    mean() const
    {
        flush();
        return summary.mean();
    }

    /** Smallest recorded value (0 when empty). */
    std::uint64_t min() const;

    /** Largest recorded value (0 when empty). */
    std::uint64_t max() const;

    /** Standard deviation. */
    double
    stddev() const
    {
        flush();
        return summary.stddev();
    }

    /** Coefficient of variation (non-determinism proxy). */
    double
    cv() const
    {
        flush();
        return summary.cv();
    }

    /**
     * Value at quantile @p q in [0, 1]; approximate to bucket
     * resolution. Returns 0 when empty.
     */
    std::uint64_t percentile(double q) const;

    /**
     * Fold another histogram's samples into this one. Both must use
     * the same sub-bucket resolution. Quantiles afterwards reflect
     * the union of the two sample sets (used to aggregate per-device
     * wear distributions PSM-wide).
     */
    void merge(const Histogram &other);

    /** Reset all recorded data. */
    void reset();

  private:
    std::size_t bucketIndex(std::uint64_t value) const;
    std::uint64_t bucketLow(std::size_t index) const;

    static constexpr unsigned stagingCapacity = 512;

    unsigned subBuckets;
    unsigned subBucketShift;
    // Queries flush lazily, so the folded state is mutable.
    mutable std::vector<std::uint64_t> buckets;
    mutable Summary summary;
    mutable std::array<std::uint64_t, stagingCapacity> staging;
    mutable unsigned stagedCount = 0;
};

} // namespace lightpc::stats

#endif // LIGHTPC_STATS_HISTOGRAM_HH
