/**
 * @file
 * Time-series sampler for dynamic IPC and power traces (Fig. 21).
 */

#ifndef LIGHTPC_STATS_TIME_SERIES_HH
#define LIGHTPC_STATS_TIME_SERIES_HH

#include <algorithm>
#include <iterator>
#include <string>
#include <utility>
#include <vector>

#include "sim/logging.hh"
#include "sim/ticks.hh"

namespace lightpc::stats
{

/** One labelled (time, value) trace. */
class TimeSeries
{
  public:
    struct Sample
    {
        Tick when;
        double value;
    };

    explicit TimeSeries(std::string label) : _label(std::move(label)) {}

    /**
     * Record a sample; ticks must be non-decreasing (integrate() and
     * downsample() both assume time-ordered samples).
     */
    void
    record(Tick when, double value)
    {
        if (!_samples.empty() && when < _samples.back().when)
            panic("TimeSeries '", _label, "': tick ", when,
                  " precedes last recorded tick ",
                  _samples.back().when);
        _samples.push_back({when, value});
    }

    /** Tick of the most recent sample (0 when empty). */
    Tick
    lastTick() const
    {
        return _samples.empty() ? 0 : _samples.back().when;
    }

    const std::string &label() const { return _label; }
    const std::vector<Sample> &samples() const { return _samples; }
    bool empty() const { return _samples.empty(); }

    /** Integrate value over time (e.g. power -> energy in W*ticks). */
    double
    integrate() const
    {
        double acc = 0.0;
        for (std::size_t i = 1; i < _samples.size(); ++i) {
            const double dt = static_cast<double>(
                _samples[i].when - _samples[i - 1].when);
            acc += _samples[i - 1].value * dt;
        }
        return acc;
    }

    /**
     * Downsample to at most @p max_points by averaging equal-width
     * time windows; used when printing figure series.
     */
    std::vector<Sample>
    downsample(std::size_t max_points) const
    {
        if (_samples.size() <= max_points || max_points == 0)
            return _samples;
        std::vector<Sample> out;
        out.reserve(max_points);
        const std::size_t stride =
            (_samples.size() + max_points - 1) / max_points;
        for (std::size_t i = 0; i < _samples.size(); i += stride) {
            double sum = 0.0;
            std::size_t n = 0;
            for (std::size_t j = i;
                 j < _samples.size() && j < i + stride; ++j, ++n)
                sum += _samples[j].value;
            out.push_back({_samples[i].when,
                           sum / static_cast<double>(n)});
        }
        return out;
    }

    /**
     * Fold another trace into this one, interleaving by tick so the
     * result is time-ordered again. Ties keep this trace's samples
     * first, then the other's, preserving each input's own order —
     * so merging per-trial traces in canonical trial order yields
     * the same series no matter how the trials were scheduled.
     */
    void
    merge(const TimeSeries &other)
    {
        if (other._samples.empty())
            return;
        if (_samples.empty()) {
            _samples = other._samples;
            return;
        }
        std::vector<Sample> out;
        out.reserve(_samples.size() + other._samples.size());
        std::merge(_samples.begin(), _samples.end(),
                   other._samples.begin(), other._samples.end(),
                   std::back_inserter(out),
                   [](const Sample &a, const Sample &b) {
                       return a.when < b.when;
                   });
        _samples = std::move(out);
    }

    void clear() { _samples.clear(); }

  private:
    std::string _label;
    std::vector<Sample> _samples;
};

} // namespace lightpc::stats

#endif // LIGHTPC_STATS_TIME_SERIES_HH
