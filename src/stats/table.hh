/**
 * @file
 * Plain-text table formatting shared by benches and examples.
 */

#ifndef LIGHTPC_STATS_TABLE_HH
#define LIGHTPC_STATS_TABLE_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace lightpc::stats
{

/**
 * A simple column-aligned text table.
 *
 * Usage:
 * @code
 *   Table t({"workload", "cycles", "norm"});
 *   t.addRow({"mcf", "1234", "1.07"});
 *   t.print(std::cout);
 * @endcode
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> header);

    /** Append one row; must match the header width. */
    void addRow(std::vector<std::string> row);

    /** Number of data rows. */
    std::size_t rows() const { return body.size(); }

    /** Render with aligned columns and a separator under the header. */
    void print(std::ostream &os) const;

    /**
     * Render as RFC-4180-ish CSV (fields containing commas, quotes,
     * or newlines are quoted) for plotting pipelines. The figure
     * benches switch to this when LIGHTPC_CSV is set.
     */
    void printCsv(std::ostream &os) const;

    /** Format a double with @p digits significant decimals. */
    static std::string num(double v, int digits = 2);

    /** Format a ratio like "4.31x". */
    static std::string ratio(double v, int digits = 2);

    /** Format a percentage like "73%". */
    static std::string percent(double v, int digits = 0);

  private:
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> body;
};

} // namespace lightpc::stats

#endif // LIGHTPC_STATS_TABLE_HH
