#include "stats/histogram.hh"

#include <bit>
#include <cmath>

#include "sim/logging.hh"

namespace lightpc::stats
{

namespace
{

unsigned
log2Floor(std::uint64_t v)
{
    return v ? 63u - static_cast<unsigned>(std::countl_zero(v)) : 0u;
}

} // namespace

Histogram::Histogram(unsigned sub_buckets)
    : subBuckets(sub_buckets)
{
    if (sub_buckets == 0 || (sub_buckets & (sub_buckets - 1)) != 0)
        fatal("Histogram sub_buckets must be a nonzero power of two");
    subBucketShift = log2Floor(sub_buckets);
    // 64 powers of two, each with subBuckets linear slots, plus a
    // dedicated slot for the values below subBuckets where the
    // exponent scheme degenerates.
    buckets.assign(static_cast<std::size_t>(64) * subBuckets + subBuckets,
                   0);
}

std::size_t
Histogram::bucketIndex(std::uint64_t value) const
{
    if (value < subBuckets)
        return static_cast<std::size_t>(value);
    const unsigned exp = log2Floor(value);
    const unsigned sub = static_cast<unsigned>(
        (value >> (exp - subBucketShift)) - subBuckets);
    return static_cast<std::size_t>(subBuckets)
        + static_cast<std::size_t>(exp - subBucketShift) * subBuckets
        + sub;
}

std::uint64_t
Histogram::bucketLow(std::size_t index) const
{
    if (index < subBuckets)
        return index;
    const std::size_t rel = index - subBuckets;
    const unsigned exp =
        static_cast<unsigned>(rel / subBuckets) + subBucketShift;
    const std::uint64_t sub = rel % subBuckets;
    return (std::uint64_t(subBuckets) + sub) << (exp - subBucketShift);
}

void
Histogram::flush() const
{
    // Replay in insertion order: Welford updates are order-dependent,
    // and sequential replay makes the batched results bit-identical
    // to unstaged insertion.
    for (unsigned i = 0; i < stagedCount; ++i) {
        const std::uint64_t value = staging[i];
        ++buckets[bucketIndex(value)];
        summary.add(static_cast<double>(value));
    }
    stagedCount = 0;
}

std::uint64_t
Histogram::min() const
{
    flush();
    return summary.count()
        ? static_cast<std::uint64_t>(summary.min()) : 0;
}

std::uint64_t
Histogram::max() const
{
    flush();
    return summary.count()
        ? static_cast<std::uint64_t>(summary.max()) : 0;
}

std::uint64_t
Histogram::percentile(double q) const
{
    flush();
    const std::uint64_t total = count();
    if (total == 0)
        return 0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    const double target = q * static_cast<double>(total);
    std::uint64_t running = 0;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        running += buckets[i];
        if (static_cast<double>(running) >= target && buckets[i] > 0)
            return bucketLow(i);
    }
    return static_cast<std::uint64_t>(summary.max());
}

void
Histogram::merge(const Histogram &other)
{
    if (other.subBuckets != subBuckets)
        fatal("Histogram::merge needs matching sub-bucket counts");
    flush();
    other.flush();
    for (std::size_t i = 0; i < buckets.size(); ++i)
        buckets[i] += other.buckets[i];
    summary.merge(other.summary);
}

void
Histogram::reset()
{
    std::fill(buckets.begin(), buckets.end(), 0);
    summary.reset();
    stagedCount = 0;
}

} // namespace lightpc::stats
