/**
 * @file
 * Streaming summary statistics (Welford) and small helpers.
 */

#ifndef LIGHTPC_STATS_SUMMARY_HH
#define LIGHTPC_STATS_SUMMARY_HH

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace lightpc::stats
{

/**
 * Running mean / variance / extrema without storing samples.
 */
class Summary
{
  public:
    /** Add one observation. */
    void
    add(double x)
    {
        ++_count;
        const double delta = x - _mean;
        _mean += delta / static_cast<double>(_count);
        _m2 += delta * (x - _mean);
        if (x < _min)
            _min = x;
        if (x > _max)
            _max = x;
        _sum += x;
    }

    /** Number of observations. */
    std::uint64_t count() const { return _count; }

    /** Sum of observations. */
    double sum() const { return _sum; }

    /** Arithmetic mean (0 when empty). */
    double mean() const { return _count ? _mean : 0.0; }

    /** Population variance (0 when fewer than 2 samples). */
    double
    variance() const
    {
        return _count > 1 ? _m2 / static_cast<double>(_count) : 0.0;
    }

    /** Population standard deviation. */
    double stddev() const { return std::sqrt(variance()); }

    /** Smallest observation (+inf when empty). */
    double min() const { return _min; }

    /** Largest observation (-inf when empty). */
    double max() const { return _max; }

    /** Coefficient of variation: stddev / mean (0 when mean is 0). */
    double
    cv() const
    {
        return mean() != 0.0 ? stddev() / mean() : 0.0;
    }

    /** Fold another summary into this one (Chan's parallel update). */
    void
    merge(const Summary &other)
    {
        if (other._count == 0)
            return;
        if (_count == 0) {
            *this = other;
            return;
        }
        const double n1 = static_cast<double>(_count);
        const double n2 = static_cast<double>(other._count);
        const double delta = other._mean - _mean;
        _m2 += other._m2 + delta * delta * n1 * n2 / (n1 + n2);
        _mean += delta * n2 / (n1 + n2);
        _count += other._count;
        _sum += other._sum;
        _min = std::min(_min, other._min);
        _max = std::max(_max, other._max);
    }

    /** Reset to the empty state. */
    void
    reset()
    {
        *this = Summary();
    }

  private:
    std::uint64_t _count = 0;
    double _mean = 0.0;
    double _m2 = 0.0;
    double _sum = 0.0;
    double _min = std::numeric_limits<double>::infinity();
    double _max = -std::numeric_limits<double>::infinity();
};

/** Geometric mean of a vector of positive values (0 when empty). */
inline double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : xs)
        acc += std::log(x);
    return std::exp(acc / static_cast<double>(xs.size()));
}

} // namespace lightpc::stats

#endif // LIGHTPC_STATS_SUMMARY_HH
