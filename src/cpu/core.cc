#include "cpu/core.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace lightpc::cpu
{

Core::Core(std::string name, EventQueue &eq, const CoreParams &params,
           mem::MemoryPort &mem_port)
    : SimObject(std::move(name), eq),
      _params(params),
      _clock(params.freqMhz),
      fetchRng(params.fetchSeed)
{
    issueCost = static_cast<Tick>(
        static_cast<double>(_clock.period()) * _params.baseCpi);
    if (issueCost == 0)
        issueCost = 1;
    _dcache = std::make_unique<cache::L1Cache>(_params.dcache, mem_port);
    if (_params.modelIFetch)
        _icache = std::make_unique<cache::L1Cache>(_params.icache,
                                                   mem_port);
    storeBuffer.assign(_params.storeBufferEntries, 0);
}

void
Core::setCodeRegion(mem::Addr base, std::uint64_t bytes)
{
    if (bytes < mem::cacheLineBytes)
        fatal("code region must hold at least one line");
    codeBase = base;
    codeBytes = bytes;
    fetchPc = 0;
}

void
Core::fetch()
{
    // Sequential fetch with occasional taken branches; only the
    // line-crossing fetches touch the I$ (4 B instructions, 64 B
    // lines -> one probe per 16 sequential instructions). Taken
    // branches follow real control-flow structure: mostly short
    // backward loops, then calls into a small set of hot functions,
    // with a cold-call tail that grows painful as the code
    // footprint outruns the I$.
    const mem::Addr old_line = fetchPc & ~std::uint64_t(63);
    if (fetchRng.chance(_params.branchProbability)) {
        const double kind = fetchRng.uniform();
        if (kind < 0.70) {
            // Loop back-edge: re-execute the last few lines.
            const std::uint64_t back = fetchRng.between(64, 512);
            fetchPc = (fetchPc + codeBytes - back) % codeBytes
                & ~std::uint64_t(3);
        } else if (kind < 0.95) {
            // Call into one of 16 hot function entry points.
            const std::uint64_t fn = fetchRng.below(16);
            fetchPc = (fn * 0x9e3779b97f4a7c15ULL) % codeBytes
                & ~std::uint64_t(3);
        } else {
            // Cold call somewhere in the full footprint.
            fetchPc = fetchRng.below(codeBytes) & ~std::uint64_t(3);
        }
    } else {
        fetchPc = (fetchPc + 4) % codeBytes;
    }
    const mem::Addr line = fetchPc & ~std::uint64_t(63);
    if (line == old_line)
        return;

    const auto access = _icache->load(codeBase + line, now);
    if (!access.hit) {
        // Frontend stall: the pipeline drains until the line lands.
        const Tick stall = access.completeAt - now;
        _stats.fetchStallTicks += stall;
        now = access.completeAt;
    }
}

void
Core::run(InstrStream &instr_stream, Tick when)
{
    if (active)
        fatal("Core ", name(), " is already running a stream");
    stream = &instr_stream;
    active = true;
    streamDone = false;
    ++generation;
    now = std::max(when, eventQueue().now());
    startedAt = now;
    scheduleEpisode();
}

void
Core::stop()
{
    active = false;
    ++generation;
}

double
Core::ipc() const
{
    const Tick elapsed = now - startedAt;
    if (elapsed == 0)
        return 0.0;
    const double cycles =
        static_cast<double>(elapsed) / static_cast<double>(_clock.period());
    return static_cast<double>(_stats.instructions) / cycles;
}

void
Core::scheduleEpisode()
{
    const std::uint64_t gen = generation;
    eventQueue().schedule(now, [this, gen] {
        if (gen == generation)
            episode();
    });
}

Tick
Core::storeBufferAdmit(Tick when, Tick complete_at)
{
    auto slot = std::min_element(storeBuffer.begin(), storeBuffer.end());
    Tick admit = when;
    if (*slot > when) {
        _stats.storeStallTicks += *slot - when;
        admit = *slot;
    }
    *slot = std::max(admit, complete_at);
    return admit;
}

void
Core::episode()
{
    if (!active)
        return;

    for (std::uint32_t n = 0; n < _params.episodeLimit; ++n) {
        Instr instr;
        if (!stream->next(instr)) {
            active = false;
            streamDone = true;
            if (finishedCb)
                finishedCb();
            return;
        }

        ++_stats.instructions;
        if (_icache)
            fetch();
        switch (instr.kind) {
          case InstrKind::Alu:
            now += issueCost;
            _stats.busyTicks += issueCost;
            break;

          case InstrKind::Load: {
            ++_stats.loads;
            const auto access = _dcache->load(instr.addr, now);
            if (access.hit) {
                // Pipelined L1 hit: retires at issue rate.
                now += issueCost;
                _stats.busyTicks += issueCost;
            } else {
                // Blocking load: dependent work waits for the fill.
                const Tick stall = access.completeAt - now;
                _stats.loadStallTicks += stall > issueCost
                    ? stall - issueCost : 0;
                _stats.busyTicks += std::min<Tick>(stall, issueCost);
                now = access.completeAt;
                scheduleEpisode();
                return;
            }
            break;
          }

          case InstrKind::Store: {
            ++_stats.stores;
            const auto access = _dcache->store(instr.addr, now);
            if (access.hit) {
                now += issueCost;
                _stats.busyTicks += issueCost;
            } else {
                // The store retires into the store buffer; the core
                // only waits when the buffer is full.
                const Tick admit =
                    storeBufferAdmit(now, access.completeAt);
                now = admit + issueCost;
                _stats.busyTicks += issueCost;
                scheduleEpisode();
                return;
            }
            break;
          }
        }
    }
    scheduleEpisode();
}

} // namespace lightpc::cpu
