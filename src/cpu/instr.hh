/**
 * @file
 * The instruction abstraction consumed by core timing models.
 *
 * LightPC's evaluation is memory-system bound; cores are driven by
 * instruction *streams* (synthetic generators matched to Table II or
 * real kernels like STREAM) rather than decoded ISA instructions.
 */

#ifndef LIGHTPC_CPU_INSTR_HH
#define LIGHTPC_CPU_INSTR_HH

#include "mem/request.hh"

namespace lightpc::cpu
{

/** Instruction classes that matter for timing. */
enum class InstrKind
{
    Alu,    ///< Non-memory work (1 issue slot).
    Load,   ///< Memory read; blocks the core on an L1 miss.
    Store,  ///< Memory write; retires through the store buffer.
};

/** One dynamic instruction. */
struct Instr
{
    InstrKind kind = InstrKind::Alu;
    mem::Addr addr = 0;
};

/**
 * A source of dynamic instructions.
 */
class InstrStream
{
  public:
    virtual ~InstrStream() = default;

    /**
     * Produce the next instruction.
     * @return false when the stream is exhausted (process finished).
     */
    virtual bool next(Instr &out) = 0;
};

} // namespace lightpc::cpu

#endif // LIGHTPC_CPU_INSTR_HH
