/**
 * @file
 * Core timing model.
 *
 * Approximates the prototype's out-of-order RISC-V core with the
 * properties the evaluation depends on: ALU work and L1 hits retire
 * at pipeline speed, loads that miss L1 *block* (following
 * instructions wait for the data), and stores retire through a store
 * buffer so write latency is tolerable until backpressure.
 *
 * Cores advance through the shared EventQueue one "episode" at a
 * time — from one below-L1 interaction to the next — which keeps
 * multi-core accesses to the shared memory timeline ordered.
 */

#ifndef LIGHTPC_CPU_CORE_HH
#define LIGHTPC_CPU_CORE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "cache/l1_cache.hh"
#include "cpu/instr.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/sim_object.hh"
#include "sim/ticks.hh"

namespace lightpc::cpu
{

/** Configuration of one core. */
struct CoreParams
{
    /** Clock frequency in MHz (ASIC config: 1600, FPGA: 400). */
    std::uint64_t freqMhz = 1600;

    /** Effective issue rate for ALU work / L1 hits (CPI). */
    double baseCpi = 1.0;

    /** Store-buffer entries. */
    std::uint32_t storeBufferEntries = 8;

    /** Max instructions retired per episode (event granularity). */
    std::uint32_t episodeLimit = 256;

    /** L1 D-cache configuration. */
    cache::L1Params dcache;

    /**
     * Model instruction fetch through the 16 KB L1 I-cache
     * (Table I). Off by default: the Table II workloads are
     * characterized by their data traffic, and their code working
     * sets fit the I$; enable it to study code-footprint effects
     * (bench_ablation_icache).
     */
    bool modelIFetch = false;

    /** L1 I-cache configuration (used when modelIFetch). */
    cache::L1Params icache;

    /** Probability an instruction redirects fetch (taken branch). */
    double branchProbability = 0.05;

    /** Seed for the synthetic fetch-target generator. */
    std::uint64_t fetchSeed = 17;
};

/** Per-core statistics. */
struct CoreStats
{
    std::uint64_t instructions = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    Tick busyTicks = 0;        ///< issue + hit time
    Tick loadStallTicks = 0;   ///< blocked on L1 load misses
    Tick storeStallTicks = 0;  ///< store buffer backpressure
    Tick fetchStallTicks = 0;  ///< frontend blocked on I$ misses
};

/**
 * One core with a private L1 D-cache.
 */
class Core : public SimObject
{
  public:
    Core(std::string name, EventQueue &eq, const CoreParams &params,
         mem::MemoryPort &mem_port);

    const CoreParams &params() const { return _params; }

    /** The core's clock domain. */
    const ClockDomain &clock() const { return _clock; }

    /** Attach a stream and begin executing at @p when. */
    void run(InstrStream &stream, Tick when);

    /**
     * Stop fetching immediately (SnG's Drive-to-Idle parking the
     * core on the idle task). The stream can be re-attached later
     * with run() and continues from where it stopped.
     */
    void stop();

    /** True when no work is scheduled (stopped or stream done). */
    bool idle() const { return !active; }

    /** True when the attached stream ran to completion. */
    bool finished() const { return streamDone; }

    /** The core's local time (last retirement). */
    Tick localTime() const { return now; }

    /** Callback invoked when the stream completes. */
    void onFinished(std::function<void()> cb) { finishedCb = cb; }

    /** The private D-cache (SnG flushes it at Auto-Stop). */
    cache::L1Cache &dcache() { return *_dcache; }
    const cache::L1Cache &dcache() const { return *_dcache; }

    /** The private I-cache (null unless modelIFetch). */
    cache::L1Cache *icache() { return _icache.get(); }

    /**
     * Place the code region instruction fetch walks (only
     * meaningful with modelIFetch). Call before run().
     */
    void setCodeRegion(mem::Addr base, std::uint64_t bytes);

    const CoreStats &stats() const { return _stats; }
    void resetStats() { _stats = CoreStats{}; }

    /** Instructions per cycle over everything run so far. */
    double ipc() const;

  private:
    /** Execute until the next below-L1 interaction. */
    void episode();

    void scheduleEpisode();

    /** Stall the core in the store buffer if it is full. */
    Tick storeBufferAdmit(Tick when, Tick complete_at);

    /** Fetch the instruction at the synthetic PC; may stall. */
    void fetch();

    CoreParams _params;
    ClockDomain _clock;
    Tick issueCost;  ///< ticks per retired ALU/hit instruction
    std::unique_ptr<cache::L1Cache> _dcache;
    std::unique_ptr<cache::L1Cache> _icache;
    Rng fetchRng;
    mem::Addr codeBase = std::uint64_t(3) << 30;
    std::uint64_t codeBytes = 256 * 1024;
    std::uint64_t fetchPc = 0;
    InstrStream *stream = nullptr;
    bool active = false;
    bool streamDone = false;
    /** Invalidates episode events from a previous run()/stop(). */
    std::uint64_t generation = 0;
    Tick now = 0;
    Tick startedAt = 0;
    std::vector<Tick> storeBuffer;
    CoreStats _stats;
    std::function<void()> finishedCb;
};

} // namespace lightpc::cpu

#endif // LIGHTPC_CPU_CORE_HH
