#include "cluster/cluster.hh"

#include <algorithm>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "fault/fault_injector.hh"
#include "mem/timed_mem.hh"
#include "net/availability.hh"
#include "persist/checkpoint.hh"
#include "platform/system.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"

namespace lightpc::cluster
{

namespace
{

/** FNV-1a over 64-bit words. */
struct Digest
{
    std::uint64_t h = 0xcbf29ce484222325ULL;

    void
    mix(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (i * 8)) & 0xff;
            h *= 0x100000001b3ULL;
        }
    }
};

constexpr std::uint32_t invalidReplica = ~std::uint32_t(0);

/** Re-propose at most this many records per heartbeat to a laggard. */
constexpr std::uint64_t retransmitWindow = 32;

/** A follower further behind than this is out of the write quorum. */
constexpr std::uint64_t syncedLagRecords = 64;

platform::SystemConfig
sysConfigFor(const ClusterConfig &cfg, std::uint32_t id)
{
    platform::SystemConfig sc;
    sc.kind = platform::PlatformKind::LightPC;
    // Decorrelate the machines: replica id folds into every seed.
    sc.seed = cfg.seed ^ ((id + 1) * 0x9e3779b97f4a7c15ULL);
    sc.kernel.cores = sc.cores;
    sc.kernel.userProcesses = cfg.userProcesses;
    sc.kernel.kernelThreads = cfg.kernelThreads;
    sc.kernel.deviceCount = cfg.deviceCount;
    sc.kernel.busy = true;
    sc.kernel.seed = sc.seed ^ 0x6b65726eULL;  // "kern"
    return sc;
}

net::KvParams
kvParamsFor(const ClusterConfig &cfg)
{
    net::KvParams kp = cfg.kv;
    if (cfg.mode == net::PersistMode::ACheckPc)
        kp.checkpointBytesPerOp = cfg.acheckBytesPerOp;
    if (cfg.mode == net::PersistMode::OpLog)
        kp.writePath = net::WritePath::OpLog;
    // Same retention rule as the single-node plane, widened by a cold
    // reboot: a replica can be dark for offDwell + coldReboot and a
    // conforming client may still be retrying into it afterwards.
    persist::ImageCosts costs;
    kp.dedupRetention = cfg.fleet.maxRetrySpan() + cfg.requestDeadline
        + 2 * cfg.wireLatency + cfg.offDwell + cfg.holdup
        + costs.coldReboot;
    return kp;
}

net::FleetParams
fleetParamsFor(const ClusterConfig &cfg)
{
    net::FleetParams fp = cfg.fleet;
    fp.seed = fp.seed ^ (cfg.seed * 0x9e3779b97f4a7c15ULL);
    return fp;
}

/** One replicated PUT as it travels leader -> followers. */
struct ReplRecord
{
    std::uint64_t seq = 0;    ///< position in the replication log
    std::uint64_t epoch = 0;  ///< epoch of the proposing leader
    std::uint64_t reqId = 0;
    std::uint64_t key = 0;
    std::uint64_t valueSeed = 0;
    std::uint64_t version = 0;  ///< absolute version fixed by the leader
    std::uint32_t client = 0;
};

enum class MsgKind : std::uint8_t
{
    Heartbeat,
    HbAck,
    Propose,
    ProposeAck,
    RequestVote,
    VoteGrant,
    SyncRequest,
    SyncDelta,
    SyncFull,
};

/**
 * One control-plane message. `seq`/`commit`/`lastEpoch` are
 * kind-specific (documented at each send site); the shared_ptr
 * payloads keep the copyable closure small for bulk transfers.
 */
struct Msg
{
    MsgKind kind = MsgKind::Heartbeat;
    std::uint32_t from = 0;
    std::uint64_t epoch = 0;
    std::uint64_t seq = 0;
    std::uint64_t commit = 0;
    std::uint64_t lastEpoch = 0;
    ReplRecord rec{};
    std::shared_ptr<std::vector<ReplRecord>> recs;
    std::shared_ptr<std::vector<net::KvKeyState>> snap;
};

enum class Role : std::uint8_t
{
    Follower,
    Candidate,
    Leader,
};

/** A client attempt blocked on a proposal's commit. */
struct Waiter
{
    std::uint64_t reqId = 0;
    std::uint32_t client = 0;
    std::uint32_t attempt = 0;
};

/** A leader-side proposal awaiting its write quorum. */
struct PendingOp
{
    ReplRecord rec{};
    std::vector<Waiter> waiters;
};

/** Leader-side view of one follower. */
struct Peer
{
    Tick lastAck = 0;         ///< last HbAck/ProposeAck heard
    std::uint64_t held = 0;   ///< follower's verified-prefix top
    bool synced = false;      ///< counts toward the write quorum
};

/**
 * One full LightPC machine plus its replication state. The `staged`
 * map is the follower's *durable* log tail: each accepted proposal is
 * persisted (a small undo transaction over the replica's own pool
 * root) before the ack departs, so it survives a cold boot — that is
 * what keeps Raft's quorum-overlap argument sound when a whole rack
 * cold-boots. The `journal` is the volatile DRAM window of committed
 * records used to serve delta syncs: it rides a Stop-and-Go resume
 * but is lost to a cold boot, which is exactly the asymmetry that
 * sends checkpointing baselines through the full resync path.
 */
struct Replica
{
    explicit Replica(Tick window) : recorder(window) {}

    std::uint32_t id = 0;
    std::unique_ptr<platform::System> sys;
    std::unique_ptr<net::NicDevice> nic;
    std::unique_ptr<mem::TimedMem> timed;
    std::unique_ptr<net::KvService> kv;
    std::unique_ptr<fault::FaultInjector> injector;
    std::unique_ptr<persist::SysPc> sysPc;
    std::unique_ptr<persist::SCheckPc> sCheck;
    net::AvailabilityRecorder recorder;
    Rng rng{1};          ///< torn seeds, dump bodies
    Rng scrambleRng{1};  ///< volatile-loss corruption
    Rng ctrlRng{1};      ///< election jitter

    // Machine state.
    bool powerOn = true;
    bool serviceUp = true;
    bool dumpStall = false;  ///< S-CheckPC stop-the-world dump
    bool serverBusy = false;
    bool txDraining = false;
    bool pendingColdBoot = false;
    bool hbArmed = false;

    /** Machine-side event guard; bumped at every power event. */
    std::uint64_t gen = 0;
    /** Guard for the pending restore (recovery-window cuts extend). */
    std::uint64_t restoreGen = 0;
    std::uint32_t failedResumes = 0;

    // Raft-shaped replication state.
    Role role = Role::Follower;
    std::uint64_t epoch = 0;
    std::uint64_t voteWord = 0;  ///< durable: epoch*64 + votedFor + 1
    std::uint64_t seqApplied = 0;
    std::uint64_t appliedEpoch = 0;

    /**
     * Top of the prefix verified against the current leader's chain
     * (reset to seqApplied when a new leader epoch is first heard);
     * acks report it and commits never advance past it.
     */
    std::uint64_t matchedSeq = 0;

    /** Durable log tail: contiguous in (seqApplied, stagedTop]. */
    std::map<std::uint64_t, ReplRecord> staged;
    /** Volatile committed-record window for delta syncs. */
    std::map<std::uint64_t, ReplRecord> journal;

    std::uint32_t leaderKnown = invalidReplica;
    std::uint64_t leaderEpochSeen = 0;
    Tick lastLeaderHeard = 0;

    // Leader state.
    std::uint64_t nextSeq = 1;
    std::map<std::uint64_t, PendingOp> pendingOps;
    std::unordered_map<std::uint64_t, std::uint64_t> pendingByReq;
    std::unordered_map<std::uint64_t, std::uint64_t> lastProposedVersion;
    std::vector<Peer> peers;

    // Candidate state.
    std::uint64_t votesMask = 0;

    // Catch-up state.
    bool syncInFlight = false;
    Tick syncRequestedAt = 0;

    bool metaDirty = false;  ///< commit meta awaiting the group commit

    // Service pump state (mirrors the single-node plane).
    net::RpcResponse pendingResp{};
    bool havePendingResp = false;
    bool pendingDeferred = false;
    std::vector<net::RpcResponse> deferredAcks;
    bool commitScheduled = false;
    bool drainScheduled = false;

    /** Per-destination link serialization cursor (FIFO per pair). */
    std::vector<Tick> linkBusyTo;

    bool canServe() const { return powerOn && serviceUp && !dumpStall; }

    /** Highest sequence this replica holds (applied or staged). */
    std::uint64_t
    stagedTop() const
    {
        return staged.empty() ? seqApplied : staged.rbegin()->first;
    }
};

/** Content of one committed sequence slot, for the divergence audit. */
struct CommitLedger
{
    std::uint64_t reqId = 0;
    std::uint64_t key = 0;
    std::uint64_t version = 0;
};

/**
 * One live cluster run: N machines, the client fleet, and one master
 * event queue. Event closures capture `this` plus a replica id and a
 * generation guard; the per-replica System event queues are unused
 * (every subsystem call here is synchronous against `eq`).
 */
struct Plane
{
    const ClusterConfig &cfg;
    EventQueue eq;
    net::ClientFleet fleet;
    persist::ImageCosts imageCosts;
    std::vector<std::unique_ptr<Replica>> reps;

    /** Load balancer's current leader belief (from leader hints). */
    std::uint32_t lbLeader = invalidReplica;

    // Fleet-availability accounting (interval accumulation).
    bool writeOkNow = false;  ///< no leader until the first election
    bool readOkNow = true;
    Tick lastAvailEval = 0;
    Tick writeDownSince = 0;

    // Online invariant ledgers.
    std::map<std::uint64_t, std::uint32_t> ackEpochLeader;
    std::map<std::uint64_t, CommitLedger> committedBySeq;
    /** Client-visible twin of ackEpochLeader: epoch -> ack source. */
    std::map<std::uint64_t, std::uint32_t> ackSourceByEpoch;

    ClusterResult res;

    explicit Plane(const ClusterConfig &config)
        : cfg(config), fleet(fleetParamsFor(config))
    {
        res.mode = cfg.mode;
        res.modeName = net::persistModeName(cfg.mode);
        res.replicas = cfg.replicas;
        res.racks = cfg.racks;
        for (std::uint32_t id = 0; id < cfg.replicas; ++id) {
            auto r = std::make_unique<Replica>(cfg.goodputWindow);
            r->id = id;
            r->sys = std::make_unique<platform::System>(
                sysConfigFor(cfg, id));
            r->nic = std::make_unique<net::NicDevice>(
                r->sys->kernel().devices(), "eth0", cfg.nic);
            r->timed = std::make_unique<mem::TimedMem>(
                r->sys->memoryPort(), &r->sys->pmemStore());
            r->kv = std::make_unique<net::KvService>(
                r->sys->pmemStore(), *r->timed, kvParamsFor(cfg));
            r->injector = std::make_unique<fault::FaultInjector>(
                r->sys->pmemStore());
            r->sysPc = std::make_unique<persist::SysPc>(*r->timed);
            r->sCheck = std::make_unique<persist::SCheckPc>(
                *r->timed, cfg.scheckPeriod);
            r->rng = Rng(Rng::streamSeed(cfg.seed, 1000 + id));
            r->scrambleRng = Rng(Rng::streamSeed(cfg.seed, 2000 + id));
            r->ctrlRng = Rng(Rng::streamSeed(cfg.seed, 3000 + id));
            r->peers.assign(cfg.replicas, Peer{});
            r->linkBusyTo.assign(cfg.replicas, 0);
            reps.push_back(std::move(r));
        }
    }

    std::uint32_t majority() const { return cfg.replicas / 2 + 1; }

    // --- small helpers --------------------------------------------

    net::ClusterMeta
    metaOf(const Replica &r) const
    {
        net::ClusterMeta m;
        m.seq = r.stagedTop();
        m.epoch = r.epoch;
        m.voteWord = r.voteWord;
        m.commit = r.seqApplied;
        m.commitEpoch = r.appliedEpoch;
        return m;
    }

    /**
     * Persist the replication meta words on the replica's own PSM
     * path, starting no earlier than @p from. @return the tick the
     * persist completes — every send site whose message claims
     * "durable before this departs" threads it into the departure,
     * so the persistence latency is charged in simulated time.
     */
    Tick
    persistMeta(Replica &r, Tick from = 0)
    {
        Tick t = std::max(from, eq.now());
        r.kv->persistClusterMeta(t, metaOf(r));
        return t;
    }

    /** Epoch of the record at sequence @p s of @p r's chain. */
    std::uint64_t
    epochAt(const Replica &r, std::uint64_t s) const
    {
        if (s == 0)
            return 0;
        if (s <= r.seqApplied)
            return r.appliedEpoch;
        if (auto it = r.staged.find(s); it != r.staged.end())
            return it->second.epoch;
        if (auto it = r.pendingOps.find(s); it != r.pendingOps.end())
            return it->second.rec.epoch;
        if (auto it = r.journal.find(s); it != r.journal.end())
            return it->second.epoch;
        return r.appliedEpoch;
    }

    std::uint32_t
    hintOf(const Replica &r) const
    {
        if (r.role == Role::Leader)
            return r.id;
        return r.leaderKnown;
    }

    void
    violation(const std::string &msg)
    {
        if (std::find(res.violations.begin(), res.violations.end(),
                      msg)
            == res.violations.end())
            res.violations.push_back(msg);
    }

    /** A-CheckPC's synchronous per-op checkpoint on the apply path. */
    void
    chargeCheckpoint(Replica &r, Tick &t)
    {
        const net::KvParams &kp = r.kv->params();
        if (kp.checkpointBytesPerOp == 0)
            return;
        const std::uint64_t pages =
            (kp.checkpointBytesPerOp + 4095) / 4096;
        t += pages * kp.checkpointPerPage;
        t = r.timed->writeSpan(t, kp.checkpointBase,
                               kp.checkpointBytesPerOp);
    }

    // --- fleet availability ---------------------------------------

    /**
     * Close the elapsed interval under the previous fleet state, then
     * re-evaluate. Writes are available while some servable leader
     * holds a quorum of synced replicas; reads while any replica
     * serves at all (stale reads are the documented model).
     */
    void
    recomputeAvailability()
    {
        accountTo(eq.now());
        bool w = false;
        bool rd = false;
        for (const auto &rp : reps) {
            if (!rp->canServe())
                continue;
            rd = true;
            if (rp->role != Role::Leader)
                continue;
            std::uint32_t cnt = 1;
            for (std::uint32_t p = 0; p < cfg.replicas; ++p)
                if (p != rp->id && rp->peers[p].synced)
                    ++cnt;
            if (cnt >= majority())
                w = true;
        }
        if (writeOkNow && !w) {
            writeDownSince = eq.now();
            if (rd)
                ++res.readOnlySpans;
        }
        if (!writeOkNow && w)
            res.worstWriteGap = std::max(
                res.worstWriteGap, eq.now() - writeDownSince);
        writeOkNow = w;
        readOkNow = rd;
    }

    void
    accountTo(Tick now)
    {
        if (now <= lastAvailEval)
            return;
        const Tick span = now - lastAvailEval;
        if (!writeOkNow)
            res.writeUnavailableTicks += span;
        if (!readOkNow)
            res.readUnavailableTicks += span;
        lastAvailEval = now;
    }

    // --- replica links --------------------------------------------

    Tick
    serializeTicks(std::uint64_t bytes) const
    {
        const double secs = static_cast<double>(bytes) * 8.0
            / (cfg.linkGbitPerSec * 1e9);
        return static_cast<Tick>(secs * static_cast<double>(tickSec));
    }

    /**
     * Ship one message. Serialization holds the per-destination link
     * cursor (so a full resync cannot starve heartbeats to *other*
     * replicas), propagation adds linkLatency, and delivery to a dark
     * or dump-stalled replica is dropped — that drop is precisely how
     * an S-CheckPC leader mid-dump gets falsely deposed.
     * @p notBefore delays the departure past a local persist the
     * message's claim depends on (durable-stage acks, vote grants).
     */
    void
    sendMsg(Replica &from, std::uint32_t to, const Msg &m,
            std::uint64_t bytes, Tick notBefore = 0)
    {
        if (to == from.id || to >= cfg.replicas)
            return;
        const Tick now = eq.now();
        Tick &busy = from.linkBusyTo[to];
        const Tick depart = std::max({now, notBefore, busy});
        busy = depart + serializeTicks(bytes);
        const Tick arrive = busy + cfg.linkLatency;
        eq.schedule(arrive, [this, to, m] { deliver(to, m); });
    }

    void
    deliver(std::uint32_t to, const Msg &m)
    {
        Replica &r = *reps[to];
        if (!r.canServe()) {
            ++res.ctrlDrops;
            return;
        }
        handleMsg(r, m);
    }

    void
    broadcast(Replica &from, const Msg &m, std::uint64_t bytes,
              Tick notBefore = 0)
    {
        for (std::uint32_t p = 0; p < cfg.replicas; ++p)
            if (p != from.id)
                sendMsg(from, p, m, bytes, notBefore);
    }

    // --- client plane ---------------------------------------------

    /**
     * Routing: the balancer sends to its leader belief while that
     * replica still answers health checks; otherwise it sprays
     * deterministically across live replicas (keyed on request id and
     * attempt, so retries rotate targets).
     */
    std::uint32_t
    routeTarget(std::uint64_t req_id, std::uint32_t attempt) const
    {
        if (lbLeader != invalidReplica && lbLeader < cfg.replicas
            && reps[lbLeader]->canServe())
            return lbLeader;
        const std::uint32_t start = static_cast<std::uint32_t>(
            (req_id * 1315423911ULL + attempt) % cfg.replicas);
        for (std::uint32_t i = 0; i < cfg.replicas; ++i) {
            const std::uint32_t cand = (start + i) % cfg.replicas;
            if (reps[cand]->canServe())
                return cand;
        }
        return start;
    }

    void
    arrivalFire()
    {
        const Tick now = eq.now();
        if (now > cfg.runFor)
            return;
        net::RpcRequest req = fleet.newRequest(now);
        issueAttempt(req, now);
        eq.schedule(now + fleet.nextInterarrival(),
                    [this] { arrivalFire(); });
    }

    void
    issueAttempt(net::RpcRequest req, Tick now)
    {
        const std::uint32_t target = routeTarget(req.reqId,
                                                 req.attempt);
        req.deadline = now + cfg.requestDeadline;
        eq.schedule(now + cfg.wireLatency,
                    [this, req, target] { rxArrive(target, req); });
        const Tick wait = fleet.timeoutFor(req.client, req.attempt);
        eq.schedule(now + cfg.wireLatency + wait,
                    [this, id = req.reqId, att = req.attempt] {
                        timeoutFire(id, att);
                    });
    }

    void
    timeoutFire(std::uint64_t req_id, std::uint32_t attempt)
    {
        const Tick now = eq.now();
        // Guarded: a fast redirect may have superseded this attempt.
        auto next = fleet.retryAttempt(req_id, now, attempt);
        if (next)
            issueAttempt(*next, now);
    }

    void
    deliverResponse(const net::RpcResponse &resp)
    {
        const Tick now = eq.now();
        if (resp.leaderHint != net::noLeaderHint
            && resp.leaderHint < cfg.replicas)
            lbLeader = resp.leaderHint;
        const Tick first = fleet.firstIssuedAt(resp.reqId);
        // Online split-brain audit rides the *acks*: the commit path
        // keeps its own (epoch -> leader) ledger, but the client-
        // visible write acks must tell the same story. Duplicate
        // acks are audited too — a deposed leader's late ack racing
        // the new leader's is exactly the signal sought.
        if (resp.status == net::RpcStatus::Ok && resp.epoch != 0) {
            auto [it, ins] =
                ackSourceByEpoch.try_emplace(resp.epoch, resp.source);
            if (!ins && it->second != resp.source) {
                ++res.splitBrainEpochs;
                violation("split brain: clients saw PUT acks from "
                          "two replicas inside one epoch");
            }
        }
        const auto outcome = fleet.onResponse(resp, now);
        if (outcome == net::ClientFleet::AckOutcome::Completed) {
            if (resp.source < cfg.replicas)
                reps[resp.source]->recorder.onSuccess(now, first,
                                                      resp.servedAt);
            return;
        }
        if (outcome == net::ClientFleet::AckOutcome::RetriableError
            && resp.status == net::RpcStatus::NotLeader
            && resp.leaderHint != net::noLeaderHint
            && resp.leaderHint < cfg.replicas
            && resp.leaderHint != resp.source) {
            // Fast redirect: the follower knows who leads, so
            // re-issue there after a short pause instead of waiting
            // out the full backoff timeout. Without a usable hint
            // (leaderless interregnum, READ_ONLY degradation) the
            // armed timeout's capped jittered backoff paces the
            // retries — fast-spinning them would burn the attempt
            // budget inside one outage. The attempt guard keeps a
            // late redirect from double-issuing against the armed
            // timeout's retry.
            eq.schedule(now + cfg.redirectDelay,
                        [this, id = resp.reqId, att = resp.attempt] {
                            const Tick rnow = eq.now();
                            auto next =
                                fleet.retryAttempt(id, rnow, att);
                            if (next)
                                issueAttempt(*next, rnow);
                        });
        }
    }

    // --- machine-side service pump --------------------------------

    void
    rxArrive(std::uint32_t target, const net::RpcRequest &req)
    {
        Replica &r = *reps[target];
        if (!r.powerOn)
            return;  // frame hits a dark machine
        r.nic->rxPush(req);
        kickService(r);
    }

    void
    kickService(Replica &r)
    {
        if (!r.canServe() || r.serverBusy)
            return;
        const Tick now = eq.now();
        net::RpcRequest f;
        while (r.nic->rxPop(f)) {
            if (!r.kv->admit(f)) {
                net::RpcResponse rej;
                rej.reqId = f.reqId;
                rej.client = f.client;
                rej.status = net::RpcStatus::Rejected;
                rej.servedAt = now;
                rej.attempt = f.attempt;
                rej.source = r.id;
                rej.leaderHint = hintOf(r);
                r.nic->txPush(rej);
            }
        }
        net::RpcRequest head;
        if (!r.kv->queuePop(head)) {
            kickTx(r);
            return;
        }
        r.serverBusy = true;
        Tick t = now;
        r.pendingDeferred = false;
        r.havePendingResp = true;
        bool replicated = false;
        if (head.op == workload::KvOp::Put) {
            r.pendingResp = servePut(r, head, t, replicated);
            r.havePendingResp = !replicated;
        } else {
            r.pendingResp = r.kv->execute(t, head, &r.pendingDeferred);
            r.pendingResp.source = r.id;
            r.pendingResp.leaderHint = hintOf(r);
        }
        const std::uint64_t g = r.gen;
        const std::uint32_t rid = r.id;
        eq.schedule(t, [this, rid, g] {
            if (g == reps[rid]->gen)
                serviceDone(*reps[rid]);
        });
        kickTx(r);
    }

    /**
     * PUTs never reach KvService::execute directly: a follower
     * answers NOT_LEADER with its leader hint, a quorum-less leader
     * answers READ_ONLY, and a quorum-backed leader runs the
     * replication path (propose now, ack at commit).
     */
    net::RpcResponse
    servePut(Replica &r, const net::RpcRequest &req, Tick &t,
             bool &replicated)
    {
        t += r.kv->params().parseCost;
        net::RpcResponse resp;
        resp.reqId = req.reqId;
        resp.client = req.client;
        resp.attempt = req.attempt;
        resp.source = r.id;
        resp.leaderHint = hintOf(r);
        if (req.deadline != 0 && t > req.deadline) {
            resp.status = net::RpcStatus::DeadlineExceeded;
            return resp;
        }
        if (r.role != Role::Leader) {
            resp.status = net::RpcStatus::NotLeader;
            return resp;
        }
        // Retry of an already-durable PUT: idempotent ack (a write
        // ack from this leader, so it carries the epoch and joins
        // the client-side split-brain audit).
        if (r.kv->isApplied(req.reqId) || r.kv->logPending(req.reqId)) {
            const auto st = r.kv->lookup(req.key);
            resp.status = net::RpcStatus::Ok;
            resp.version = st ? st->version : 0;
            resp.epoch = r.epoch;
            return resp;
        }
        // Retry of a still-pending proposal: join its waiters.
        if (auto it = r.pendingByReq.find(req.reqId);
            it != r.pendingByReq.end()) {
            auto op = r.pendingOps.find(it->second);
            if (op != r.pendingOps.end()) {
                op->second.waiters.push_back(
                    Waiter{req.reqId, req.client, req.attempt});
                replicated = true;
                return resp;
            }
        }
        // Quorum precheck: degrade to read-only instead of acking
        // writes a lone survivor could lose.
        std::uint32_t live = 1;
        for (std::uint32_t p = 0; p < cfg.replicas; ++p)
            if (p != r.id && r.peers[p].synced)
                ++live;
        if (live < majority()) {
            resp.status = net::RpcStatus::ReadOnly;
            return resp;
        }
        std::uint64_t base = 0;
        if (auto lp = r.lastProposedVersion.find(req.key);
            lp != r.lastProposedVersion.end()) {
            base = lp->second;
        } else if (const auto st = r.kv->lookup(req.key)) {
            base = st->version;
        }
        ReplRecord rec;
        rec.seq = r.nextSeq++;
        rec.epoch = r.epoch;
        rec.reqId = req.reqId;
        rec.key = req.key;
        rec.valueSeed = req.valueSeed;
        rec.version = base + 1;
        rec.client = req.client;
        r.lastProposedVersion[rec.key] = rec.version;
        PendingOp op;
        op.rec = rec;
        op.waiters.push_back(
            Waiter{req.reqId, req.client, req.attempt});
        r.pendingOps.emplace(rec.seq, std::move(op));
        r.pendingByReq[rec.reqId] = rec.seq;
        // The leader's own stage is durable before any proposal
        // departs: the record joins the staged map (so a cold boot
        // mid-replication still finds it) and the service path pays
        // the persist cost — t advances, holding the server busy
        // until the stage lands.
        r.staged[rec.seq] = rec;
        t = persistMeta(r, t);
        for (std::uint32_t p = 0; p < cfg.replicas; ++p)
            if (p != r.id)
                proposeOne(r, p, rec, t);
        advanceCommit(r);  // a single-replica cluster self-commits
        replicated = true;
        return resp;
    }

    void
    serviceDone(Replica &r)
    {
        r.serverBusy = false;
        if (r.havePendingResp) {
            if (r.pendingDeferred) {
                r.deferredAcks.push_back(r.pendingResp);
                maybeScheduleCommit(r);
            } else {
                r.nic->txPush(r.pendingResp);
            }
            r.havePendingResp = false;
            r.pendingDeferred = false;
        }
        kickTx(r);
        kickService(r);
    }

    void
    kickTx(Replica &r)
    {
        if (!r.powerOn || r.txDraining || r.nic->txOccupancy() == 0)
            return;
        r.txDraining = true;
        const std::uint64_t g = r.gen;
        const std::uint32_t rid = r.id;
        eq.scheduleIn(cfg.txDrainInterval, [this, rid, g] {
            if (g == reps[rid]->gen)
                txDrainFire(*reps[rid]);
        });
    }

    void
    txDrainFire(Replica &r)
    {
        r.txDraining = false;
        net::RpcResponse resp;
        if (!r.nic->txPop(resp))
            return;
        // On the wire: delivered even if the machine dies now.
        eq.scheduleIn(cfg.wireLatency,
                      [this, resp] { deliverResponse(resp); });
        kickTx(r);
    }

    // --- op-log group commit / drain (per replica) ----------------

    void
    maybeScheduleCommit(Replica &r)
    {
        if (cfg.mode != net::PersistMode::OpLog)
            return;
        if (r.kv->logUncommittedRecords() >= cfg.oplogCommitRecords) {
            commitFire(r);
            return;
        }
        if (r.commitScheduled)
            return;
        r.commitScheduled = true;
        const std::uint64_t g = r.gen;
        const std::uint32_t rid = r.id;
        eq.scheduleIn(cfg.oplogCommitInterval, [this, rid, g] {
            reps[rid]->commitScheduled = false;
            if (g == reps[rid]->gen)
                commitFire(*reps[rid]);
        });
    }

    void
    commitFire(Replica &r)
    {
        if (!r.canServe())
            return;
        Tick t = eq.now();
        r.kv->logCommit(t);
        if (r.metaDirty) {
            // The replication watermark persists only after the
            // records it covers are durable.
            r.kv->persistClusterMeta(t, metaOf(r));
            r.metaDirty = false;
        }
        if (!r.deferredAcks.empty()) {
            auto batch =
                std::make_shared<std::vector<net::RpcResponse>>(
                    std::move(r.deferredAcks));
            r.deferredAcks.clear();
            const std::uint64_t g = r.gen;
            const std::uint32_t rid = r.id;
            eq.schedule(t, [this, rid, g, batch] {
                Replica &r2 = *reps[rid];
                if (g != r2.gen)
                    return;
                const Tick now = eq.now();
                for (net::RpcResponse resp : *batch) {
                    resp.servedAt = now;
                    r2.nic->txPush(resp);
                }
                kickTx(r2);
            });
        }
        scheduleDrain(r);
    }

    void
    scheduleDrain(Replica &r)
    {
        if (cfg.mode != net::PersistMode::OpLog || r.drainScheduled
            || r.kv->logBacklogRecords() == 0)
            return;
        r.drainScheduled = true;
        const std::uint64_t g = r.gen;
        const std::uint32_t rid = r.id;
        eq.scheduleIn(cfg.oplogDrainInterval, [this, rid, g] {
            reps[rid]->drainScheduled = false;
            if (g == reps[rid]->gen)
                drainFire(*reps[rid]);
        });
    }

    void
    drainFire(Replica &r)
    {
        if (!r.canServe())
            return;
        Tick t = eq.now();
        r.kv->logDrain(t, cfg.oplogDrainBatch);
        scheduleDrain(r);
    }

    // --- replication: leader side ---------------------------------

    void
    proposeOne(Replica &r, std::uint32_t to, const ReplRecord &rec,
               Tick notBefore = 0)
    {
        Msg m;
        m.kind = MsgKind::Propose;
        m.from = r.id;
        m.epoch = r.epoch;
        m.seq = rec.seq;
        m.commit = r.seqApplied;
        m.lastEpoch = epochAt(r, rec.seq - 1);  // chain check anchor
        m.rec = rec;
        ++res.proposals;
        sendMsg(r, to, m, cfg.replRecordBytes, notBefore);
    }

    void
    updatePeer(Replica &r, std::uint32_t from, std::uint64_t held)
    {
        Peer &pe = r.peers[from];
        pe.lastAck = eq.now();
        pe.held = std::max(pe.held, held);
        const bool nowSynced =
            r.seqApplied <= pe.held + syncedLagRecords;
        if (nowSynced != pe.synced) {
            pe.synced = nowSynced;
            recomputeAvailability();
        }
    }

    /** Commit, in order, every front proposal with a write quorum. */
    void
    advanceCommit(Replica &r)
    {
        while (!r.pendingOps.empty()) {
            auto it = r.pendingOps.begin();
            if (it->first != r.seqApplied + 1)
                break;
            std::uint32_t acks = 1;  // self (durably staged)
            for (std::uint32_t p = 0; p < cfg.replicas; ++p)
                if (p != r.id && r.peers[p].held >= it->first)
                    ++acks;
            if (acks < majority())
                break;
            PendingOp op = std::move(it->second);
            r.pendingOps.erase(it);
            r.pendingByReq.erase(op.rec.reqId);
            commitOp(r, op);
            // The committed prefix now covers the record; its copy
            // leaves the durable staged tail (the follower apply
            // path does the same as it applies).
            r.staged.erase(op.rec.seq);
        }
    }

    void
    commitOp(Replica &r, const PendingOp &op)
    {
        const ReplRecord &rec = op.rec;
        ++res.commits;
        // Online audits: one content per committed sequence, one
        // acking leader per epoch.
        auto [cit, cIns] = committedBySeq.try_emplace(
            rec.seq, CommitLedger{rec.reqId, rec.key, rec.version});
        if (!cIns
            && (cit->second.reqId != rec.reqId
                || cit->second.key != rec.key
                || cit->second.version != rec.version)) {
            ++res.divergentCommits;
            violation("two leaders committed different records at "
                      "one sequence slot");
        }
        auto [eit, eIns] = ackEpochLeader.try_emplace(rec.epoch, r.id);
        if (!eIns && eit->second != r.id) {
            ++res.splitBrainEpochs;
            violation("split brain: two leaders acked writes inside "
                      "one epoch");
        }
        Tick t = eq.now();
        if (cfg.mode == net::PersistMode::OpLog) {
            r.kv->appendReplicated(t, rec.reqId, rec.key,
                                   rec.valueSeed, rec.version,
                                   rec.client);
            r.seqApplied = rec.seq;
            r.appliedEpoch = rec.epoch;
            r.journal[rec.seq] = rec;
            pruneJournal(r);
            r.metaDirty = true;
            for (const Waiter &w : op.waiters) {
                net::RpcResponse resp;
                resp.reqId = w.reqId;
                resp.client = w.client;
                resp.status = net::RpcStatus::Ok;
                resp.version = rec.version;
                resp.attempt = w.attempt;
                resp.source = r.id;
                resp.leaderHint = r.id;
                resp.epoch = rec.epoch;
                r.deferredAcks.push_back(resp);
            }
            maybeScheduleCommit(r);
        } else {
            r.kv->applyReplicated(t, rec.reqId, rec.key, rec.valueSeed,
                                  rec.version);
            chargeCheckpoint(r, t);
            r.seqApplied = rec.seq;
            r.appliedEpoch = rec.epoch;
            r.journal[rec.seq] = rec;
            pruneJournal(r);
            r.kv->persistClusterMeta(t, metaOf(r));
            if (!op.waiters.empty()) {
                auto batch =
                    std::make_shared<std::vector<net::RpcResponse>>();
                for (const Waiter &w : op.waiters) {
                    net::RpcResponse resp;
                    resp.reqId = w.reqId;
                    resp.client = w.client;
                    resp.status = net::RpcStatus::Ok;
                    resp.version = rec.version;
                    resp.attempt = w.attempt;
                    resp.source = r.id;
                    resp.leaderHint = r.id;
                    resp.epoch = rec.epoch;
                    batch->push_back(resp);
                }
                const std::uint64_t g = r.gen;
                const std::uint32_t rid = r.id;
                // Acks release once the apply + meta persist landed.
                eq.schedule(t, [this, rid, g, batch] {
                    Replica &r2 = *reps[rid];
                    if (g != r2.gen)
                        return;
                    const Tick now = eq.now();
                    for (net::RpcResponse resp : *batch) {
                        resp.servedAt = now;
                        r2.nic->txPush(resp);
                    }
                    kickTx(r2);
                });
            }
        }
    }

    void
    pruneJournal(Replica &r)
    {
        while (r.journal.size() > cfg.journalRetain)
            r.journal.erase(r.journal.begin());
    }

    // --- replication: follower side -------------------------------

    /**
     * Apply staged records up to min(leader commit, verified top).
     * @return the tick the applies (and their watermark persist)
     * complete; eq.now() when nothing applied.
     */
    Tick
    applyCommitted(Replica &r, std::uint64_t leader_commit)
    {
        const std::uint64_t bound =
            std::min(leader_commit, r.matchedSeq);
        bool any = false;
        Tick t = eq.now();
        while (r.seqApplied < bound) {
            auto it = r.staged.find(r.seqApplied + 1);
            if (it == r.staged.end())
                break;
            const ReplRecord rec = it->second;
            if (cfg.mode == net::PersistMode::OpLog) {
                r.kv->appendReplicated(t, rec.reqId, rec.key,
                                       rec.valueSeed, rec.version,
                                       rec.client);
            } else {
                r.kv->applyReplicated(t, rec.reqId, rec.key,
                                      rec.valueSeed, rec.version);
                chargeCheckpoint(r, t);
            }
            r.seqApplied = rec.seq;
            r.appliedEpoch = rec.epoch;
            r.journal[rec.seq] = rec;
            r.staged.erase(it);
            any = true;
        }
        if (any) {
            pruneJournal(r);
            if (cfg.mode == net::PersistMode::OpLog) {
                r.metaDirty = true;
                maybeScheduleCommit(r);
            } else {
                r.kv->persistClusterMeta(t, metaOf(r));
            }
        }
        return t;
    }

    /** Leader-stream bookkeeping shared by Heartbeat and Propose. */
    void
    observeLeader(Replica &r, const Msg &m)
    {
        if (m.epoch > r.epoch)
            adoptEpoch(r, m.epoch);
        if (r.role != Role::Follower) {
            // A candidate yields to a valid leader of its own epoch.
            r.role = Role::Follower;
            recomputeAvailability();
        }
        if (r.leaderEpochSeen != m.epoch || r.leaderKnown != m.from) {
            // New leader chain: the verified prefix restarts at the
            // applied (committed, hence shared) prefix.
            r.leaderEpochSeen = m.epoch;
            r.leaderKnown = m.from;
            r.matchedSeq = r.seqApplied;
        }
        r.lastLeaderHeard = eq.now();
    }

    void
    replyHbAck(Replica &r, std::uint32_t to, Tick notBefore = 0)
    {
        Msg a;
        a.kind = MsgKind::HbAck;
        a.from = r.id;
        a.epoch = r.epoch;
        a.seq = r.matchedSeq;
        a.commit = r.seqApplied;
        sendMsg(r, to, a, cfg.controlMsgBytes, notBefore);
    }

    void
    onHeartbeat(Replica &r, const Msg &m)
    {
        if (m.epoch < r.epoch) {
            replyHbAck(r, m.from);  // deposes the stale leader
            return;
        }
        observeLeader(r, m);
        const Tick applied = applyCommitted(r, m.commit);
        if (r.matchedSeq < m.seq && r.seqApplied < m.commit)
            requestSync(r);
        replyHbAck(r, m.from, applied);
    }

    void
    onPropose(Replica &r, const Msg &m)
    {
        if (m.epoch < r.epoch) {
            replyHbAck(r, m.from);
            return;
        }
        observeLeader(r, m);
        const ReplRecord &rec = m.rec;
        const std::uint64_t top = r.stagedTop();
        Tick ackReady = eq.now();
        if (rec.seq <= r.seqApplied) {
            // Below the committed prefix: already durable here.
        } else if (rec.seq <= top + 1
                   && m.lastEpoch == epochAt(r, rec.seq - 1)) {
            auto it = r.staged.find(rec.seq);
            if (it != r.staged.end()
                && it->second.epoch != rec.epoch) {
                // Conflicting suffix from a dead leader's chain:
                // truncate it (Raft's append-conflict rule).
                r.staged.erase(it, r.staged.end());
                it = r.staged.end();
            }
            const bool fresh =
                it == r.staged.end() || it->second.reqId != rec.reqId;
            if (fresh) {
                r.staged[rec.seq] = rec;
                // Durable stage *before* the ack departs — the
                // quorum-overlap argument under correlated cold
                // boots rests on this persist, and the ack pays
                // for it in simulated time.
                ackReady = persistMeta(r);
            }
            // The chain check verified the predecessor epoch, which
            // by log matching pins the entire prefix.
            r.matchedSeq = std::max(r.matchedSeq, rec.seq);
        } else {
            requestSync(r);
        }
        ackReady = std::max(ackReady, applyCommitted(r, m.commit));
        Msg a;
        a.kind = MsgKind::ProposeAck;
        a.from = r.id;
        a.epoch = r.epoch;
        a.seq = r.matchedSeq;
        a.commit = r.seqApplied;
        sendMsg(r, m.from, a, cfg.controlMsgBytes, ackReady);
    }

    void
    onAck(Replica &r, const Msg &m)
    {
        if (m.epoch > r.epoch) {
            adoptEpoch(r, m.epoch);
            return;
        }
        if (r.role != Role::Leader || m.epoch != r.epoch)
            return;
        updatePeer(r, m.from, m.seq);
        advanceCommit(r);
    }

    // --- elections ------------------------------------------------

    /**
     * Adopt a higher epoch. An ex-leader returns its un-committed
     * proposals to the durable staged tail (they may have reached a
     * quorum — truncating them would break the overlap argument) and
     * drops their waiters un-acked; clients retry idempotently.
     */
    void
    adoptEpoch(Replica &r, std::uint64_t epoch)
    {
        if (epoch <= r.epoch)
            return;
        const bool wasLeader = r.role == Role::Leader;
        if (wasLeader) {
            ++res.stepDowns;
            for (auto &[seq, op] : r.pendingOps)
                r.staged[seq] = op.rec;
            r.pendingOps.clear();
            r.pendingByReq.clear();
            r.lastProposedVersion.clear();
            for (auto it = r.journal.upper_bound(r.seqApplied);
                 it != r.journal.end();)
                it = r.journal.erase(it);
            r.matchedSeq = r.seqApplied;
        }
        r.epoch = epoch;
        r.role = Role::Follower;
        r.votesMask = 0;
        persistMeta(r);
        if (wasLeader)
            recomputeAvailability();
    }

    void
    startElection(Replica &r)
    {
        ++res.elections;
        for (const auto &o : reps)
            if (o->id != r.id && o->role == Role::Leader && o->powerOn
                && o->serviceUp) {
                ++res.falseSuspicions;
                break;
            }
        r.epoch += 1;
        r.role = Role::Candidate;
        r.leaderKnown = invalidReplica;
        // Durable vote for self before soliciting anyone — the
        // solicitations wait out the persist.
        r.voteWord = r.epoch * 64 + r.id + 1;
        const Tick votedBy = persistMeta(r);
        r.votesMask = std::uint64_t(1) << r.id;
        if (std::uint64_t(__builtin_popcountll(r.votesMask))
            >= majority()) {
            becomeLeader(r);  // single-replica cluster
            return;
        }
        Msg m;
        m.kind = MsgKind::RequestVote;
        m.from = r.id;
        m.epoch = r.epoch;
        m.seq = r.stagedTop();
        m.lastEpoch = epochAt(r, r.stagedTop());
        broadcast(r, m, cfg.controlMsgBytes, votedBy);
    }

    void
    onRequestVote(Replica &r, const Msg &m)
    {
        const Tick now = eq.now();
        // Stickiness: while a leader is being heard, ignore
        // candidates entirely (a laggard rejoining mid-sync must not
        // depose a healthy leader).
        if (r.role == Role::Leader)
            return;
        if (now - r.lastLeaderHeard < cfg.electionTimeout)
            return;
        if (m.epoch > r.epoch)
            adoptEpoch(r, m.epoch);
        if (m.epoch != r.epoch)
            return;  // stale candidacy
        const std::uint64_t votedEpoch =
            r.voteWord == 0 ? 0 : (r.voteWord - 1) / 64;
        const std::uint32_t votedFor =
            r.voteWord == 0
                ? invalidReplica
                : static_cast<std::uint32_t>((r.voteWord - 1) % 64);
        const bool canVote = r.voteWord == 0 || votedEpoch < m.epoch
            || (votedEpoch == m.epoch && votedFor == m.from);
        // Raft completeness: candidate's (lastEpoch, lastSeq) must
        // reach ours, staged tail included.
        const std::uint64_t myTop = r.stagedTop();
        const std::uint64_t myLastEpoch = epochAt(r, myTop);
        const bool upToDate = m.lastEpoch > myLastEpoch
            || (m.lastEpoch == myLastEpoch && m.seq >= myTop);
        if (!canVote || !upToDate)
            return;
        r.voteWord = m.epoch * 64 + m.from + 1;
        // The vote is durable before the grant leaves — the grant
        // departure waits out the persist.
        const Tick votedBy = persistMeta(r);
        r.lastLeaderHeard = now;  // back off our own candidacy a beat
        Msg g;
        g.kind = MsgKind::VoteGrant;
        g.from = r.id;
        g.epoch = m.epoch;
        sendMsg(r, m.from, g, cfg.controlMsgBytes, votedBy);
    }

    void
    onVoteGrant(Replica &r, const Msg &m)
    {
        if (r.role != Role::Candidate || m.epoch != r.epoch)
            return;
        r.votesMask |= std::uint64_t(1) << m.from;
        if (std::uint64_t(__builtin_popcountll(r.votesMask))
            >= majority())
            becomeLeader(r);
    }

    void
    becomeLeader(Replica &r)
    {
        ++res.leaderChanges;
        r.role = Role::Leader;
        r.leaderKnown = r.id;
        r.leaderEpochSeen = r.epoch;
        r.lastLeaderHeard = eq.now();
        r.pendingOps.clear();
        r.pendingByReq.clear();
        r.lastProposedVersion.clear();
        if (cfg.mode == net::PersistMode::OpLog) {
            // Make the pool authoritative for version assignment:
            // commit and drain any backlog before taking writes.
            Tick t = eq.now();
            r.kv->logCommit(t);
            r.kv->logDrainAll(t);
            if (r.metaDirty) {
                r.kv->persistClusterMeta(t, metaOf(r));
                r.metaDirty = false;
            }
        }
        // Adopt the whole durable tail, re-tagged with the new epoch
        // (the re-tag is the "current-term barrier": commits only
        // ever count quorums of current-epoch records). The records
        // are *mirrored* into pendingOps, never moved: they stay in
        // the durable staged map until the committed prefix covers
        // them, so the persisted watermark cannot regress and a cold
        // boot before the re-commit still finds them — these records
        // may have committed (and been client-acked) under a prior
        // epoch, and the quorum-overlap argument counts this copy.
        std::uint64_t s = r.seqApplied;
        while (true) {
            auto it = r.staged.find(s + 1);
            if (it == r.staged.end())
                break;
            it->second.epoch = r.epoch;
            const ReplRecord &rec = it->second;
            s = rec.seq;
            PendingOp op;
            op.rec = rec;
            r.pendingOps.emplace(rec.seq, std::move(op));
            r.pendingByReq[rec.reqId] = rec.seq;
            r.lastProposedVersion[rec.key] = rec.version;
        }
        // The tail is contiguous by invariant; any straggler past a
        // gap cannot be re-proposed under this epoch (mirrors the
        // cold-boot trim).
        while (!r.staged.empty() && r.staged.rbegin()->first > s)
            r.staged.erase(std::prev(r.staged.end()));
        r.matchedSeq = s;
        r.nextSeq = s + 1;
        const Tick stagedBy = persistMeta(r);
        for (std::uint32_t p = 0; p < cfg.replicas; ++p) {
            r.peers[p].lastAck = eq.now();
            r.peers[p].held = 0;
            r.peers[p].synced = false;
        }
        // Immediate round: announce, and re-propose the adopted tail
        // (after its re-tagged stage is durable).
        hbRound(r);
        for (const auto &[seq, op] : r.pendingOps)
            for (std::uint32_t p = 0; p < cfg.replicas; ++p)
                if (p != r.id)
                    proposeOne(r, p, op.rec, stagedBy);
        advanceCommit(r);
        if (!r.hbArmed) {
            r.hbArmed = true;
            armHeartbeat(r);
        }
        recomputeAvailability();
    }

    // --- heartbeats -----------------------------------------------

    void
    armHeartbeat(Replica &r)
    {
        const std::uint64_t g = r.gen;
        const std::uint32_t rid = r.id;
        eq.scheduleIn(cfg.heartbeatInterval, [this, rid, g] {
            Replica &r2 = *reps[rid];
            if (g != r2.gen)
                return;  // power event; cutFire cleared hbArmed
            if (r2.role != Role::Leader) {
                r2.hbArmed = false;
                return;
            }
            hbFire(r2);
        });
    }

    void
    hbFire(Replica &r)
    {
        // A dump-stalled leader skips the round (its silence is what
        // lets S-CheckPC leaders get falsely deposed) but keeps the
        // cadence.
        if (r.canServe())
            hbRound(r);
        armHeartbeat(r);
    }

    void
    hbRound(Replica &r)
    {
        const Tick now = eq.now();
        bool changed = false;
        for (std::uint32_t p = 0; p < cfg.replicas; ++p) {
            if (p == r.id)
                continue;
            Peer &pe = r.peers[p];
            if (pe.synced && now - pe.lastAck > cfg.replicaTimeout) {
                pe.synced = false;
                changed = true;
            }
            Msg hb;
            hb.kind = MsgKind::Heartbeat;
            hb.from = r.id;
            hb.epoch = r.epoch;
            hb.seq = r.nextSeq - 1;
            hb.commit = r.seqApplied;
            hb.lastEpoch = r.appliedEpoch;
            ++res.heartbeats;
            sendMsg(r, p, hb, cfg.controlMsgBytes);
            // Retransmit a window of pending proposals to laggards —
            // a proposal sent into a dead replica is otherwise never
            // re-sent and the commit would stall forever.
            if (pe.held < r.nextSeq - 1) {
                std::uint64_t n = 0;
                for (auto it = r.pendingOps.upper_bound(pe.held);
                     it != r.pendingOps.end()
                     && n < retransmitWindow;
                     ++it, ++n)
                    proposeOne(r, p, it->second.rec);
            }
        }
        if (changed)
            recomputeAvailability();
    }

    // --- catch-up -------------------------------------------------

    void
    requestSync(Replica &r)
    {
        if (r.leaderKnown == invalidReplica
            || r.leaderKnown >= cfg.replicas)
            return;
        const Tick now = eq.now();
        if (r.syncInFlight
            && now - r.syncRequestedAt < cfg.replicaTimeout)
            return;
        r.syncInFlight = true;
        r.syncRequestedAt = now;
        Msg m;
        m.kind = MsgKind::SyncRequest;
        m.from = r.id;
        m.epoch = r.epoch;
        m.seq = r.seqApplied;
        sendMsg(r, r.leaderKnown, m, cfg.controlMsgBytes);
    }

    void
    onSyncRequest(Replica &r, const Msg &m)
    {
        if (r.role != Role::Leader)
            return;
        const std::uint64_t from_seq = m.seq;
        if (from_seq >= r.seqApplied)
            return;  // retransmit window covers the pending tail
        const bool haveDelta = !r.journal.empty()
            && r.journal.begin()->first <= from_seq + 1;
        if (haveDelta) {
            auto recs =
                std::make_shared<std::vector<ReplRecord>>();
            for (auto it = r.journal.upper_bound(from_seq);
                 it != r.journal.end() && it->first <= r.seqApplied;
                 ++it)
                recs->push_back(it->second);
            ++res.syncDeltas;
            res.syncRecords += recs->size();
            const std::uint64_t bytes = cfg.controlMsgBytes
                + recs->size() * cfg.replRecordBytes;
            res.syncBytes += bytes;
            Msg d;
            d.kind = MsgKind::SyncDelta;
            d.from = r.id;
            d.epoch = r.epoch;
            d.commit = r.seqApplied;
            d.lastEpoch = r.appliedEpoch;
            d.recs = recs;
            sendMsg(r, m.from, d, bytes);
        } else {
            // The journal window moved past the rejoiner (it was
            // dark through a cold boot): ship the whole machine
            // state over the link.
            if (cfg.mode == net::PersistMode::OpLog) {
                Tick t = eq.now();
                r.kv->logCommit(t);
                r.kv->logDrainAll(t);
                if (r.metaDirty) {
                    r.kv->persistClusterMeta(t, metaOf(r));
                    r.metaDirty = false;
                }
            }
            ++res.syncFulls;
            res.syncBytes += cfg.resyncStateBytes;
            Msg f;
            f.kind = MsgKind::SyncFull;
            f.from = r.id;
            f.epoch = r.epoch;
            f.commit = r.seqApplied;
            f.lastEpoch = r.appliedEpoch;
            f.snap = std::make_shared<std::vector<net::KvKeyState>>(
                r.kv->snapshotRecords());
            sendMsg(r, m.from, f, cfg.resyncStateBytes);
        }
    }

    void
    onSyncDelta(Replica &r, const Msg &m)
    {
        r.syncInFlight = false;
        if (m.epoch < r.epoch)
            return;
        observeLeader(r, m);
        Tick t = eq.now();
        bool any = false;
        for (const ReplRecord &rec : *m.recs) {
            if (rec.seq <= r.seqApplied)
                continue;
            if (rec.seq != r.seqApplied + 1)
                break;
            if (cfg.mode == net::PersistMode::OpLog) {
                r.kv->appendReplicated(t, rec.reqId, rec.key,
                                       rec.valueSeed, rec.version,
                                       rec.client);
            } else {
                r.kv->applyReplicated(t, rec.reqId, rec.key,
                                      rec.valueSeed, rec.version);
                chargeCheckpoint(r, t);
            }
            r.seqApplied = rec.seq;
            r.appliedEpoch = rec.epoch;
            r.journal[rec.seq] = rec;
            any = true;
        }
        if (any) {
            pruneJournal(r);
            // Our stale tail (if any) predates the records we just
            // applied over it: drop it and re-verify from here.
            for (auto it = r.staged.begin(); it != r.staged.end();)
                it = r.staged.erase(it);
            r.matchedSeq = r.seqApplied;
            if (cfg.mode == net::PersistMode::OpLog) {
                r.metaDirty = true;
                maybeScheduleCommit(r);
            } else {
                r.kv->persistClusterMeta(t, metaOf(r));
            }
            replyHbAck(r, m.from, t);
        }
    }

    void
    onSyncFull(Replica &r, const Msg &m)
    {
        r.syncInFlight = false;
        if (m.epoch < r.epoch)
            return;
        observeLeader(r, m);
        Tick t = eq.now();
        for (const net::KvKeyState &ks : *m.snap)
            r.kv->applyReplicated(t, ks.lastReqId, ks.key,
                                  ks.valueSeed, ks.version);
        r.seqApplied = std::max(r.seqApplied, m.commit);
        r.appliedEpoch = m.lastEpoch;
        r.staged.clear();
        r.journal.clear();
        r.matchedSeq = r.seqApplied;
        r.kv->persistClusterMeta(t, metaOf(r));
        replyHbAck(r, m.from, t);
    }

    void
    handleMsg(Replica &r, const Msg &m)
    {
        switch (m.kind) {
        case MsgKind::Heartbeat: onHeartbeat(r, m); break;
        case MsgKind::HbAck: onAck(r, m); break;
        case MsgKind::Propose: onPropose(r, m); break;
        case MsgKind::ProposeAck: onAck(r, m); break;
        case MsgKind::RequestVote: onRequestVote(r, m); break;
        case MsgKind::VoteGrant: onVoteGrant(r, m); break;
        case MsgKind::SyncRequest: onSyncRequest(r, m); break;
        case MsgKind::SyncDelta: onSyncDelta(r, m); break;
        case MsgKind::SyncFull: onSyncFull(r, m); break;
        }
    }

    // --- election timer -------------------------------------------

    void
    armElection(Replica &r, Tick delay)
    {
        const std::uint64_t g = r.gen;
        const std::uint32_t rid = r.id;
        eq.scheduleIn(delay, [this, rid, g] {
            Replica &r2 = *reps[rid];
            if (g != r2.gen)
                return;  // chain restarts at serviceUpFire
            electionFire(r2);
        });
    }

    void
    electionFire(Replica &r)
    {
        const Tick now = eq.now();
        if (r.canServe() && r.role != Role::Leader && !r.syncInFlight
            && now - r.lastLeaderHeard >= cfg.electionTimeout)
            startElection(r);
        armElection(r, cfg.electionTimeout
                           + r.ctrlRng.below(cfg.electionJitter + 1));
    }

    // --- S-CheckPC periodic dump (per replica, staggered) ---------

    void
    armScheck(Replica &r, Tick delay)
    {
        const std::uint64_t g = r.gen;
        const std::uint32_t rid = r.id;
        eq.scheduleIn(delay, [this, rid, g] {
            if (g == reps[rid]->gen)
                scheckFire(*reps[rid]);
        });
    }

    void
    scheckFire(Replica &r)
    {
        const Tick now = eq.now();
        if (r.canServe()) {
            r.dumpStall = true;
            recomputeAvailability();
            const Tick done = r.sCheck->dumpCommitted(
                now, cfg.scheckVmBytes, r.rng.next());
            const std::uint64_t g = r.gen;
            const std::uint32_t rid = r.id;
            eq.schedule(done, [this, rid, g] {
                Replica &r2 = *reps[rid];
                if (g != r2.gen)
                    return;
                r2.dumpStall = false;
                kickService(r2);
                kickTx(r2);
                recomputeAvailability();
            });
        }
        armScheck(r, cfg.scheckPeriod);
    }

    // --- power events ---------------------------------------------

    /** An ex-leader's volatile proposals fold back into the tail. */
    void
    localDemote(Replica &r)
    {
        for (auto &[seq, op] : r.pendingOps)
            r.staged[seq] = op.rec;
        r.pendingOps.clear();
        r.pendingByReq.clear();
        r.lastProposedVersion.clear();
        for (auto it = r.journal.upper_bound(r.seqApplied);
             it != r.journal.end();)
            it = r.journal.erase(it);
        r.matchedSeq = r.seqApplied;
        r.role = Role::Follower;
    }

    void
    cutFire(std::uint32_t rid)
    {
        Replica &r = *reps[rid];
        const Tick now = eq.now();
        ++res.cutsInjected;
        if (!r.powerOn) {
            // A second storm cut on an already-dark replica extends
            // the outage.
            scheduleRestore(r, now + cfg.offDwell);
            return;
        }
        r.recorder.outageBegin(now);
        if (!r.serviceUp) {
            // Cut inside the recovery window: the in-progress resume
            // dies; the supervisor backs off and escalates.
            ++res.resumeFailures;
            ++r.failedResumes;
            ++r.gen;
            r.hbArmed = false;
            r.powerOn = false;
            r.injector->armCut(now, r.rng.next());
            scheduleRestore(r, now + cfg.offDwell);
            recomputeAvailability();
            return;
        }
        ++r.gen;
        r.powerOn = false;
        r.serviceUp = false;
        r.dumpStall = false;
        r.txDraining = false;
        r.hbArmed = false;
        r.pendingColdBoot = false;
        r.injector->armCut(now + cfg.holdup, r.rng.next());

        switch (cfg.mode) {
        case net::PersistMode::SnG: {
            if (r.serverBusy && r.havePendingResp) {
                r.nic->txPush(r.pendingResp);
                r.havePendingResp = false;
            }
            r.serverBusy = false;
            const auto stop = r.sys->sng().stop(now, cfg.holdup);
            r.pendingColdBoot = stop.commitFailed;
            break;
        }
        case net::PersistMode::OpLog: {
            // Emergency group commit inside the hold-up.
            Tick t = now;
            r.kv->logCommit(t);
            if (r.metaDirty) {
                r.kv->persistClusterMeta(t, metaOf(r));
                r.metaDirty = false;
            }
            if (r.serverBusy && r.havePendingResp) {
                if (r.pendingDeferred)
                    r.deferredAcks.push_back(r.pendingResp);
                else
                    r.nic->txPush(r.pendingResp);
                r.havePendingResp = false;
                r.pendingDeferred = false;
            }
            for (net::RpcResponse resp : r.deferredAcks) {
                resp.servedAt = now;
                r.nic->txPush(resp);
            }
            r.deferredAcks.clear();
            r.serverBusy = false;
            const auto stop = r.sys->sng().stop(now, cfg.holdup);
            r.pendingColdBoot = stop.commitFailed;
            break;
        }
        case net::PersistMode::SysPc: {
            r.serverBusy = false;
            r.havePendingResp = false;
            r.sysPc->dumpImageCommitted(
                now, r.sys->kernel().systemImageBytes(),
                r.rng.next());
            r.pendingColdBoot = true;
            break;
        }
        case net::PersistMode::SCheckPc:
        case net::PersistMode::ACheckPc:
            r.serverBusy = false;
            r.havePendingResp = false;
            r.pendingColdBoot = true;
            break;
        }
        scheduleRestore(r, now + cfg.offDwell);
        recomputeAvailability();
    }

    void
    scheduleRestore(Replica &r, Tick at)
    {
        const std::uint64_t g = ++r.restoreGen;
        const std::uint32_t rid = r.id;
        eq.schedule(
            at,
            [this, rid, g] {
                if (g == reps[rid]->restoreGen)
                    restoreFire(*reps[rid]);
            },
            EventPriority::PowerEvent);
    }

    void
    restoreFire(Replica &r)
    {
        const Tick now = eq.now();
        r.injector->powerRestored();
        r.powerOn = true;
        Tick upAt = now;
        const bool sngMode = cfg.mode == net::PersistMode::SnG
            || cfg.mode == net::PersistMode::OpLog;
        // Supervisor escalation: past the attempt budget the EP-cut
        // image is suspect — invalidate it and take the degraded
        // cold-boot path deliberately.
        if (sngMode && r.failedResumes >= cfg.supervisor.maxAttempts
            && r.sys->sng().hasCommit()) {
            r.sys->sng().invalidateCommit(now);
            ++res.degradedColdBoots;
            r.pendingColdBoot = true;
        }
        switch (cfg.mode) {
        case net::PersistMode::SnG:
        case net::PersistMode::OpLog:
            if (!r.pendingColdBoot && r.sys->sng().hasCommit()) {
                r.sys->kernel().scramble(r.scrambleRng);
                r.nic->scrambleVolatile(r.scrambleRng);
                const auto go = r.sys->sng().resume(now);
                res.ringPreservedFrames +=
                    r.nic->rxOccupancy() + r.nic->txOccupancy();
                upAt = go.done;
                ++res.resumes;
            } else {
                upAt = coldBootRecover(r, now + imageCosts.coldReboot);
            }
            break;
        case net::PersistMode::SysPc:
            upAt = coldBootRecover(r, r.sysPc->recover(now));
            break;
        case net::PersistMode::SCheckPc:
            upAt = coldBootRecover(r, r.sCheck->recoverAfterLoss(now));
            break;
        case net::PersistMode::ACheckPc:
            upAt = coldBootRecover(r, now + imageCosts.coldReboot);
            break;
        }
        // Back off after failed resume attempts (capped).
        if (r.failedResumes > 0) {
            const Tick backoff = std::min<Tick>(
                cfg.supervisor.retryBackoff
                    << std::min<std::uint32_t>(r.failedResumes - 1,
                                               16),
                cfg.supervisor.backoffCap);
            upAt += backoff;
        }
        const std::uint64_t g = r.gen;
        const std::uint32_t rid = r.id;
        eq.schedule(upAt, [this, rid, g] {
            if (g == reps[rid]->gen)
                serviceUpFire(*reps[rid]);
        });
    }

    /** @return service-up tick after reboot + pool recovery. */
    Tick
    coldBootRecover(Replica &r, Tick from)
    {
        ++res.coldBoots;
        auto &devices = r.sys->kernel().devices();
        for (std::size_t i = 0; i < devices.count(); ++i)
            devices.device(i).setSuspended(false);
        res.ringFramesLost +=
            r.nic->rxOccupancy() + r.nic->txOccupancy();
        r.nic->resetVolatile();
        r.kv->dropQueue();
        r.deferredAcks.clear();
        Tick t = from;
        r.kv->recover(t);
        // Volatile replication state is gone; reload the durable
        // words. The staged tail is durable (persisted before every
        // ack) — only entries the committed prefix has since covered
        // drop out. The journal, pending proposals, and leader role
        // are DRAM casualties.
        const net::ClusterMeta meta = r.kv->clusterMeta();
        r.epoch = meta.epoch;
        r.voteWord = meta.voteWord;
        r.seqApplied = meta.commit;
        r.appliedEpoch = meta.commitEpoch;
        for (auto it = r.staged.begin();
             it != r.staged.end()
             && it->first <= r.seqApplied;)
            it = r.staged.erase(it);
        // An ex-leader's proposals lived in pendingOps (volatile):
        // honest verified top = the contiguous durable tail.
        std::uint64_t top = r.seqApplied;
        while (r.staged.count(top + 1))
            ++top;
        while (!r.staged.empty()
               && r.staged.rbegin()->first > top)
            r.staged.erase(std::prev(r.staged.end()));
        r.matchedSeq = r.seqApplied;
        r.journal.clear();
        r.pendingOps.clear();
        r.pendingByReq.clear();
        r.lastProposedVersion.clear();
        r.metaDirty = false;
        r.role = Role::Follower;
        r.leaderKnown = invalidReplica;
        r.votesMask = 0;
        r.syncInFlight = false;
        return t;
    }

    void
    serviceUpFire(Replica &r)
    {
        const Tick now = eq.now();
        r.serviceUp = true;
        r.dumpStall = false;
        r.failedResumes = 0;
        // Every recovery re-enters as a follower; a surviving leader
        // (or a fresh election) re-establishes the epoch. A warm
        // Stop-and-Go resume keeps its durable+DRAM log state.
        if (r.role == Role::Leader)
            localDemote(r);
        r.role = Role::Follower;
        r.votesMask = 0;
        r.syncInFlight = false;
        r.lastLeaderHeard = now;  // grace before first candidacy
        armElection(r, cfg.electionTimeout
                           + r.ctrlRng.below(cfg.electionJitter + 1));
        if (cfg.mode == net::PersistMode::SCheckPc)
            armScheck(r, cfg.scheckPeriod);
        kickService(r);
        kickTx(r);
        maybeScheduleCommit(r);
        scheduleDrain(r);
        recomputeAvailability();
    }

    // --- assembly -------------------------------------------------

    void
    finish()
    {
        const Tick horizon = cfg.runFor + cfg.drainGrace;
        res.horizon = horizon;
        accountTo(horizon);
        if (!writeOkNow)
            res.worstWriteGap = std::max(res.worstWriteGap,
                                         horizon - writeDownSince);
        res.writeAvailability = 1.0
            - static_cast<double>(res.writeUnavailableTicks)
                / static_cast<double>(horizon);
        res.readAvailability = 1.0
            - static_cast<double>(res.readUnavailableTicks)
                / static_cast<double>(horizon);

        const net::FleetStats &fs = fleet.stats();
        res.arrivals = fs.arrivals;
        res.attempts = fs.attempts;
        res.retries = fs.retries;
        res.completed = fs.completed;
        res.failed = fs.failed;
        res.duplicateAcks = fs.duplicateAcks;
        res.redirects = fs.redirects;
        res.ackedPuts = fs.ackedPuts;

        // Merge the per-replica recorders in id order (the merge is
        // order-independent; id order keeps the digest canonical).
        net::AvailabilityRecorder merged(cfg.goodputWindow);
        for (const auto &rp : reps)
            merged.merge(rp->recorder);
        auto &lat = merged.latency();
        res.meanUs = merged.latencySummaryUs().mean();
        res.p50Us = ticksToUs(lat.percentile(0.50));
        res.p99Us = ticksToUs(lat.percentile(0.99));
        res.p999Us = ticksToUs(lat.percentile(0.999));
        res.goodputMean = static_cast<double>(res.completed)
            / (static_cast<double>(cfg.runFor)
               / static_cast<double>(tickSec));
        for (const auto &o : merged.outageRecords()) {
            net::ServiceOutage so;
            so.eventAt = o.eventAt;
            so.lastSuccessBefore = o.lastSuccessBefore;
            so.firstSuccessAfter =
                o.closed ? o.firstSuccessAfter : maxTick;
            so.downtime = o.downtime();
            so.attributable = so.downtime == maxTick
                ? maxTick
                : (so.downtime > cfg.offDwell
                       ? so.downtime - cfg.offDwell
                       : 0);
            res.outages.push_back(so);
        }

        // Acked-durability audit against the most advanced replica:
        // every client-acked PUT must still be durable there (the
        // commit chain guarantees the max-seqApplied replica holds
        // the full committed prefix).
        const Replica *best = reps[0].get();
        for (const auto &rp : reps)
            if (rp->seqApplied > best->seqApplied)
                best = rp.get();
        for (const net::AckedPut &put : fleet.ackedPuts()) {
            if (best->kv->logPending(put.reqId))
                continue;
            if (best->kv->isApplied(put.reqId)) {
                const auto st = best->kv->lookup(put.key);
                if (!st || st->version < put.version) {
                    ++res.lostAckedPuts;
                    violation("acked PUT's key version regressed on "
                              "the most advanced replica");
                }
                continue;
            }
            ++res.lostAckedPuts;
            violation("acked PUT missing from the most advanced "
                      "replica (acked-then-lost)");
        }

        Digest d;
        d.mix(res.arrivals);
        d.mix(res.attempts);
        d.mix(res.completed);
        d.mix(res.failed);
        d.mix(res.ackedPuts);
        d.mix(res.redirects);
        d.mix(res.elections);
        d.mix(res.leaderChanges);
        d.mix(res.stepDowns);
        d.mix(res.proposals);
        d.mix(res.commits);
        d.mix(res.heartbeats);
        d.mix(res.ctrlDrops);
        d.mix(res.syncDeltas);
        d.mix(res.syncFulls);
        d.mix(res.syncRecords);
        d.mix(res.resumes);
        d.mix(res.coldBoots);
        d.mix(res.resumeFailures);
        d.mix(res.degradedColdBoots);
        d.mix(res.cutsInjected);
        d.mix(res.writeUnavailableTicks);
        d.mix(res.readUnavailableTicks);
        d.mix(res.worstWriteGap);
        d.mix(res.readOnlySpans);
        d.mix(res.lostAckedPuts);
        d.mix(res.splitBrainEpochs);
        d.mix(res.divergentCommits);
        for (const auto &rp : reps) {
            d.mix(rp->seqApplied);
            d.mix(rp->epoch);
            d.mix(rp->kv->appliedCount());
        }
        d.mix(lat.percentile(0.99));
        d.mix(merged.lastSuccessAt());
        for (const net::ServiceOutage &o : res.outages)
            d.mix(o.downtime);
        res.digest = d.h;
    }

    ClusterResult
    run()
    {
        eq.schedule(fleet.nextInterarrival(),
                    [this] { arrivalFire(); });
        for (const auto &rp : reps) {
            Replica &r = *rp;
            // Replica 0 fires its first election timer with no
            // jitter; everyone else waits at least one jitter span
            // more. The bootstrap leader is deterministic — and it
            // lives in rack 0, the first storm's target.
            const Tick delay = r.id == 0
                ? cfg.electionTimeout
                : cfg.electionTimeout + cfg.electionJitter
                    + r.ctrlRng.below(cfg.electionJitter + 1);
            armElection(r, delay);
            if (cfg.mode == net::PersistMode::SCheckPc)
                armScheck(r, cfg.scheckPeriod
                                 + r.id * (cfg.scheckPeriod
                                           / cfg.replicas));
        }
        // Storm schedule: a pure function of (seed, shape) — the
        // same cuts replay against every persistence mode.
        fault::CutStorm gen(Rng::streamSeed(cfg.seed, 0xc157e5ULL));
        const auto schedule = gen.correlated(
            cfg.runFor / 5, cfg.runFor, cfg.storms, cfg.replicas,
            cfg.racks, cfg.stormRackSpan, cfg.stormWindow);
        res.storms = schedule.size();
        for (const fault::CorrelatedStorm &storm : schedule)
            for (const fault::ReplicaCut &cut : storm.cuts)
                eq.schedule(
                    cut.at,
                    [this, rid = cut.replica] { cutFire(rid); },
                    EventPriority::PowerEvent);

        eq.run(cfg.runFor + cfg.drainGrace);
        finish();
        return res;
    }
};

} // namespace

void
validateClusterConfig(const ClusterConfig &config)
{
    if (config.replicas == 0)
        fatal("ClusterConfig: replicas must be >= 1");
    if (config.replicas > 64)
        fatal("ClusterConfig: replicas must be <= 64 (vote and ack "
              "masks are one machine word)");
    if (config.racks == 0)
        fatal("ClusterConfig: racks must be >= 1");
    if (config.racks > config.replicas)
        fatal("ClusterConfig: racks (", config.racks,
              ") must not exceed replicas (", config.replicas,
              "); an empty rack cannot host a replica");
    if (config.stormRackSpan == 0)
        fatal("ClusterConfig: stormRackSpan must be >= 1");
    if (config.stormRackSpan > config.racks)
        fatal("ClusterConfig: stormRackSpan (", config.stormRackSpan,
              ") must not exceed racks (", config.racks, ")");
    if (config.storms > 0 && config.stormWindow == 0)
        fatal("ClusterConfig: stormWindow must be nonzero when "
              "storms are configured");
    if (config.storms > 0 && config.offDwell == 0)
        fatal("ClusterConfig: offDwell must be nonzero when storms "
              "are configured (a zero-length outage never restores)");
    if (config.heartbeatInterval == 0)
        fatal("ClusterConfig: heartbeatInterval must be nonzero");
    if (config.electionTimeout <= config.heartbeatInterval)
        fatal("ClusterConfig: electionTimeout (",
              config.electionTimeout,
              ") must exceed heartbeatInterval (",
              config.heartbeatInterval,
              "); a healthy leader must be able to refute suspicion");
    if (config.linkGbitPerSec <= 0.0)
        fatal("ClusterConfig: linkGbitPerSec must be positive");
    if (config.replRecordBytes == 0)
        fatal("ClusterConfig: replRecordBytes must be nonzero");
    if (config.journalRetain == 0)
        fatal("ClusterConfig: journalRetain must be >= 1 (an empty "
              "journal forces a full resync on every rejoin)");
    if (config.supervisor.maxAttempts == 0)
        fatal("ClusterConfig: supervisor.maxAttempts must be >= 1");
    if (config.runFor == 0)
        fatal("ClusterConfig: runFor must be nonzero");
    if (config.goodputWindow == 0)
        fatal("ClusterConfig: goodputWindow must be nonzero");
    if (config.fleet.clients == 0)
        fatal("ClusterConfig: fleet.clients must be >= 1");
    if (config.fleet.arrivalsPerSec <= 0.0)
        fatal("ClusterConfig: fleet.arrivalsPerSec must be positive");
    if (config.fleet.maxAttempts == 0)
        fatal("ClusterConfig: fleet.maxAttempts must be >= 1");
    if (config.nic.ringEntries == 0)
        fatal("ClusterConfig: nic.ringEntries must be >= 1");
    if (config.kv.queueCapacity == 0)
        fatal("ClusterConfig: kv.queueCapacity must be >= 1");
}

ClusterResult
runCluster(const ClusterConfig &config)
{
    validateClusterConfig(config);
    Plane plane(config);
    return plane.run();
}

} // namespace lightpc::cluster
