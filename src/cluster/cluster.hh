/**
 * @file
 * Replicated KV cluster: N independent LightPC machines behind a
 * load-balancer model, primary/backup replication with epoch-numbered
 * leader election, and fleet-level availability under rack-correlated
 * cut storms.
 *
 * Each replica is a full platform::System — its own kernel, NIC,
 * PSU-rail fault injector, OC-PMEM backing store, and KvService — so
 * a power cut takes down one *machine*, not a thread. The replication
 * protocol is a compact Raft-shaped primary/backup scheme:
 *
 *  - The leader assigns each acked PUT a (seq, epoch, version) and
 *    proposes it to the followers over simulated NIC links
 *    (serialization at linkGbitPerSec plus linkLatency, per
 *    destination). Followers durably stage the record (a small undo
 *    transaction over the replica's own pool metadata) before
 *    acking; the leader applies and acks the client only once a
 *    write quorum holds the record, in sequence order. A chain check
 *    (the proposed record must extend the follower's verified prefix
 *    with a matching predecessor epoch) gives the log-matching
 *    property, so apply-at-commit can never install a record a
 *    different leader's chain committed differently.
 *
 *  - Elections are epoch-numbered with durable votes (the encoded
 *    vote word rides the pool's root header, so a replica cannot
 *    vote twice in one epoch across a crash) and Raft's completeness
 *    restriction: a candidate must advertise a (lastEpoch, lastSeq)
 *    at least as up-to-date as the voter's. Split-brain prevention
 *    is *audited*, not assumed: every client ack records
 *    (epoch -> acking leader), and two leaders acking in one epoch
 *    is an invariant violation.
 *
 *  - A replica returning from an outage catches up by delta: the
 *    leader serves the missed committed records from its in-DRAM
 *    journal window. A replica that cold-booted (every checkpointing
 *    baseline; SnG only after a failed EP-cut) lost its journal and
 *    admission state and was down ~15x longer, so the journal window
 *    has moved past it and it needs a *full* state resync
 *    (resyncStateBytes over the link) before it counts toward the
 *    write quorum again. That asymmetry — Stop-and-Go resumes with
 *    its volatile replication state intact, checkpointing baselines
 *    re-enter through cold boot + full resync — is the paper's
 *    single-node recovery gap compounded at fleet level.
 *
 *  - While a leader holds no write quorum it degrades gracefully:
 *    GETs still serve (any live replica serves reads; stale reads
 *    are the documented model), PUTs get READ_ONLY and clients
 *    retry; service resumes automatically when a rejoiner syncs.
 *    Followers answer PUTs with NOT_LEADER plus a leader hint, and
 *    clients fast-redirect with a guarded retry.
 *
 * Storm schedules come from fault::CutStorm::correlated() — a pure
 * function of the trial seed, never of who leads at run time — so
 * the same schedule replays against every persistence mode and the
 * availability comparison is apples-to-apples.
 */

#ifndef LIGHTPC_CLUSTER_CLUSTER_HH
#define LIGHTPC_CLUSTER_CLUSTER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "fault/compound.hh"
#include "net/client_fleet.hh"
#include "net/kv_service.hh"
#include "net/nic.hh"
#include "net/service_plane.hh"
#include "sim/ticks.hh"

namespace lightpc::cluster
{

/** One cluster experiment. */
struct ClusterConfig
{
    net::PersistMode mode = net::PersistMode::SnG;

    /** Fleet shape. */
    std::uint32_t replicas = 3;
    std::uint32_t racks = 2;

    /** Arrivals are generated for this long; then the run drains. */
    Tick runFor = 2 * tickSec;
    Tick drainGrace = 2 * tickSec;

    /** Rack-correlated cut storms (see CutStorm::correlated). */
    std::size_t storms = 2;
    std::uint32_t stormRackSpan = 1;
    Tick stormWindow = 8 * tickMs;

    /** AC-off dwell per cut, and PSU hold-up past the event. */
    Tick offDwell = 100 * tickMs;
    Tick holdup = 16 * tickMs;

    // --- control plane --------------------------------------------

    Tick heartbeatInterval = 3 * tickMs;

    /** Follower election timeout (plus per-replica jitter). */
    Tick electionTimeout = 24 * tickMs;
    Tick electionJitter = 12 * tickMs;

    /** Leader marks a silent follower unsynced after this long. */
    Tick replicaTimeout = 30 * tickMs;

    // --- replication links ----------------------------------------

    /** One-way replica <-> replica propagation. */
    Tick linkLatency = 15 * tickUs;

    /** Per-destination link bandwidth (serialization model). */
    double linkGbitPerSec = 10.0;

    /** Wire size of one replicated record / one control message. */
    std::uint64_t replRecordBytes = 96;
    std::uint64_t controlMsgBytes = 64;

    /** Full-resync payload (machine state image over the link). */
    std::uint64_t resyncStateBytes = std::uint64_t(512) << 20;

    /**
     * Committed records each node retains in its (volatile, DRAM)
     * journal window for serving delta syncs. A rejoiner whose
     * applied prefix fell behind the window needs a full resync.
     */
    std::uint64_t journalRetain = 512;

    /** Recovery-window cut policy (capped backoff, escalation). */
    fault::SupervisorConfig supervisor;

    // --- client plane ---------------------------------------------

    Tick wireLatency = 20 * tickUs;
    Tick txDrainInterval = 2 * tickUs;
    Tick requestDeadline = 250 * tickMs;
    Tick goodputWindow = 10 * tickMs;

    /** Client-side pause before a NOT_LEADER/READ_ONLY re-issue. */
    Tick redirectDelay = 150 * tickUs;

    // --- per-mode knobs (mirror ServiceConfig) --------------------

    Tick scheckPeriod = 100 * tickMs;
    std::uint64_t scheckVmBytes = std::uint64_t(48) << 20;
    std::uint64_t acheckBytesPerOp = 18000;
    Tick oplogCommitInterval = 25 * tickUs;
    std::uint32_t oplogCommitRecords = 16;
    Tick oplogDrainInterval = 150 * tickUs;
    std::uint32_t oplogDrainBatch = 32;

    /** Kernel population behind each replica (small: N machines). */
    std::uint32_t userProcesses = 6;
    std::uint32_t kernelThreads = 4;
    std::size_t deviceCount = 12;

    net::FleetParams fleet;
    net::KvParams kv;
    net::NicParams nic;

    std::uint64_t seed = 42;
};

/** Everything one cluster run produces. */
struct ClusterResult
{
    net::PersistMode mode = net::PersistMode::SnG;
    std::string modeName;
    std::uint32_t replicas = 0;
    std::uint32_t racks = 0;
    std::uint64_t storms = 0;
    std::uint64_t cutsInjected = 0;

    // Client side.
    std::uint64_t arrivals = 0;
    std::uint64_t attempts = 0;
    std::uint64_t retries = 0;
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    std::uint64_t duplicateAcks = 0;
    std::uint64_t redirects = 0;
    std::uint64_t ackedPuts = 0;

    // Control plane.
    std::uint64_t elections = 0;      ///< candidacies started
    std::uint64_t leaderChanges = 0;  ///< becomeLeader events
    std::uint64_t falseSuspicions = 0;///< elections vs a live leader
    std::uint64_t stepDowns = 0;
    std::uint64_t proposals = 0;
    std::uint64_t commits = 0;
    std::uint64_t heartbeats = 0;
    std::uint64_t ctrlDrops = 0;      ///< messages lost to dead replicas

    // Catch-up.
    std::uint64_t syncDeltas = 0;
    std::uint64_t syncFulls = 0;
    std::uint64_t syncRecords = 0;    ///< records shipped by deltas
    std::uint64_t syncBytes = 0;      ///< total sync wire bytes

    // Power side.
    std::uint64_t resumes = 0;        ///< warm Stop-and-Go recoveries
    std::uint64_t coldBoots = 0;
    std::uint64_t resumeFailures = 0; ///< cuts landing mid-recovery
    std::uint64_t degradedColdBoots = 0;
    std::uint64_t ringPreservedFrames = 0;
    std::uint64_t ringFramesLost = 0;

    // Fleet availability over [0, runFor + drainGrace].
    Tick horizon = 0;
    Tick writeUnavailableTicks = 0;   ///< no quorum-backed leader
    Tick readUnavailableTicks = 0;    ///< no replica can serve at all
    double writeAvailability = 0.0;
    double readAvailability = 0.0;
    Tick worstWriteGap = 0;           ///< longest write-unavailable span
    std::uint64_t readOnlySpans = 0;  ///< write lost while reads held

    // Merged client-visible latency (first issue -> ack, us).
    double meanUs = 0.0;
    double p50Us = 0.0;
    double p99Us = 0.0;
    double p999Us = 0.0;
    double goodputMean = 0.0;

    /** Per-replica power events as the clients saw them (merged). */
    std::vector<net::ServiceOutage> outages;

    // Invariant audit (all must stay zero / empty).
    std::uint64_t lostAckedPuts = 0;
    std::uint64_t splitBrainEpochs = 0;  ///< two leaders acked one epoch
    std::uint64_t divergentCommits = 0;  ///< one seq, two contents
    std::vector<std::string> violations;

    /** FNV digest of the run's observable counters (determinism). */
    std::uint64_t digest = 0;
};

/**
 * Reject degenerate cluster configurations with a clear message: a
 * replica count of zero (or past the 64-wide ack mask), more racks
 * than replicas, a storm span wider than the rack set, an election
 * timeout that cannot outlast a heartbeat, and every degenerate
 * embedded service knob (zero clients, zero-capacity rings, ...).
 * Called at runCluster entry; exposed for tests.
 */
void validateClusterConfig(const ClusterConfig &config);

/** Run one cluster configuration to completion. */
ClusterResult runCluster(const ClusterConfig &config);

} // namespace lightpc::cluster

#endif // LIGHTPC_CLUSTER_CLUSTER_HH
