#include "fault/ras_campaign.hh"

#include <algorithm>
#include <sstream>

#include "fault/fault_injector.hh"
#include "kernel/kernel.hh"
#include "mem/backing_store.hh"
#include "pecos/mce.hh"
#include "pecos/sng.hh"
#include "psm/scrub.hh"
#include "sim/digest.hh"
#include "sim/parallel.hh"
#include "sim/rng.hh"

namespace lightpc::fault
{

namespace
{

void
flagViolation(RasCampaignResult &result, const std::string &note)
{
    ++result.violations;
    if (result.violationNotes.size() < 8)
        result.violationNotes.push_back(note);
}

/** Small-geometry PSM so trials stay fast: 2 DIMMs x 4 groups x
 *  16 MB = 128 MB OC-PMEM (still clears the 16 MB reserved region
 *  SnG's control blocks live in). */
psm::PsmParams
trialPsmParams(const RasCampaignConfig &config, double ber,
               psm::McePolicy policy, std::uint64_t fault_seed,
               bool rs_fallback)
{
    psm::PsmParams pp;
    pp.symbolEccFallback = rs_fallback;
    pp.dimms = 2;
    pp.dimm.device.capacityBytes = 16 << 20;
    pp.dimm.device.wearRegionBytes = 64 << 10;
    pp.dimm.device.faults.enabled = true;
    pp.dimm.device.faults.transientBer = ber;
    pp.dimm.device.faults.wearStuckRate = config.wearStuckRate;
    pp.dimm.device.faults.seed = fault_seed;
    pp.spareLines = config.spareLines;
    pp.mcePolicy = policy;
    return pp;
}

/** Small kernel population: enough structure for SnG, fast to build. */
kernel::KernelParams
trialKernelParams()
{
    kernel::KernelParams kp;
    kp.cores = 4;
    kp.userProcesses = 16;
    kp.kernelThreads = 8;
    return kp;
}

/** The PsmStats fields the campaign accumulates, delta-folded so a
 *  mid-trial OC-PMEM reset (the ResetColdBoot arm wipes the stats)
 *  cannot lose the counts from before the reset. */
struct PsmFold
{
    psm::PsmStats prev;

    void
    fold(const psm::PsmStats &s, RasCampaignResult &r, RasCell &cell)
    {
        r.checkedReads += s.rasCheckedReads - prev.rasCheckedReads;
        r.sdcEvents += s.sdcEvents - prev.sdcEvents;
        r.correctedReads += s.correctedReads - prev.correctedReads;
        r.symbolCorrections +=
            s.symbolCorrections - prev.symbolCorrections;
        r.parityRewrites += s.parityRewrites - prev.parityRewrites;
        r.uncorrectableReads +=
            s.uncorrectableReads - prev.uncorrectableReads;
        r.linesRetired += s.retiredLines - prev.retiredLines;
        r.spareExhausted += s.spareExhausted - prev.spareExhausted;
        r.scrubbedLines += s.scrubbedLines - prev.scrubbedLines;
        r.scrubRepairs += s.scrubRepairs - prev.scrubRepairs;
        r.scrubDeferrals += s.scrubDeferrals - prev.scrubDeferrals;

        cell.checkedReads += s.rasCheckedReads - prev.rasCheckedReads;
        cell.sdc += s.sdcEvents - prev.sdcEvents;
        cell.corrected += s.correctedReads - prev.correctedReads;
        cell.symbolCorrections +=
            s.symbolCorrections - prev.symbolCorrections;
        cell.parityRewrites +=
            s.parityRewrites - prev.parityRewrites;
        cell.uncorrectable +=
            s.uncorrectableReads - prev.uncorrectableReads;
        cell.retired += s.retiredLines - prev.retiredLines;
        prev = s;
    }
};

/** One trial's partial: the campaign counters it contributed plus
 *  its share of one sweep cell, tagged with the cell's index so the
 *  canonical-order fold can reassemble the cell list. */
struct RasTrialPartial
{
    std::uint64_t cellIdx = 0;
    RasCampaignResult agg;
    RasCell cell;
};

void
mergeCell(RasCell &acc, const RasCell &partial)
{
    acc.trials += partial.trials;
    acc.checkedReads += partial.checkedReads;
    acc.corrected += partial.corrected;
    acc.symbolCorrections += partial.symbolCorrections;
    acc.parityRewrites += partial.parityRewrites;
    acc.uncorrectable += partial.uncorrectable;
    acc.retired += partial.retired;
    acc.sdc += partial.sdc;
    acc.mceContained += partial.mceContained;
    acc.mceColdBoots += partial.mceColdBoots;
}

void
mergeAgg(RasCampaignResult &acc, const RasCampaignResult &partial)
{
    acc.trials += partial.trials;
    acc.reads += partial.reads;
    acc.writes += partial.writes;
    acc.sdcEvents += partial.sdcEvents;
    acc.checkedReads += partial.checkedReads;
    acc.correctedReads += partial.correctedReads;
    acc.symbolCorrections += partial.symbolCorrections;
    acc.parityRewrites += partial.parityRewrites;
    acc.uncorrectableReads += partial.uncorrectableReads;
    acc.mceContained += partial.mceContained;
    acc.mceColdBoots += partial.mceColdBoots;
    acc.tasksKilled += partial.tasksKilled;
    acc.kernelEscalations += partial.kernelEscalations;
    acc.linesRetired += partial.linesRetired;
    acc.spareExhausted += partial.spareExhausted;
    acc.scrubbedLines += partial.scrubbedLines;
    acc.scrubRepairs += partial.scrubRepairs;
    acc.scrubDeferrals += partial.scrubDeferrals;
    acc.containSurvivedSng += partial.containSurvivedSng;
    acc.resumes += partial.resumes;
    acc.coldBootResumes += partial.coldBootResumes;
    acc.cutTrials += partial.cutTrials;
    acc.droppedWrites += partial.droppedWrites;
    acc.tornWrites += partial.tornWrites;
    acc.violations += partial.violations;
    for (const std::string &note : partial.violationNotes) {
        if (acc.violationNotes.size() >= 8)
            break;
        acc.violationNotes.push_back(note);
    }
}

} // namespace

RasCampaignResult
runRasCampaign(const RasCampaignConfig &config)
{
    // One dry SnG stop on the trial geometry for the power-cut
    // window (construction is deterministic, so every trial's Stop
    // timeline is close to this one; the sweep jitter covers the
    // spread from mid-trial kills).
    Tick dry_stop_ticks = 0;
    {
        kernel::Kernel kern(trialKernelParams());
        psm::Psm psm(trialPsmParams(config, 0.0,
                                    psm::McePolicy::ResetColdBoot, 1,
                                    false));
        mem::BackingStore store;
        pecos::Sng sng(kern, psm, store, {});
        dry_stop_ticks = sng.stop(0).totalTicks();
    }

    const psm::McePolicy policies[] = {psm::McePolicy::Contain,
                                       psm::McePolicy::ResetColdBoot};

    // Flatten the (ber x wear x policy x seed) nest into one trial
    // index so the pool can fan the whole sweep out: cell-major in
    // the sequential nest's order, seeds innermost.
    const std::uint64_t n_cells = config.bers.size()
        * config.wearLevels.size() * std::size(policies);
    const std::uint64_t total = n_cells * config.seedsPerCell;
    const std::uint64_t sweep_seed =
        config.seed ^ 0x726173736e67ULL;  // "rassng"

    auto trial = [&config, &policies, dry_stop_ticks,
                  sweep_seed](std::uint64_t trial_idx) {
        RasTrialPartial partial;
        RasCampaignResult &result = partial.agg;
        RasCell &cell = partial.cell;

        const std::uint64_t s = trial_idx % config.seedsPerCell;
        partial.cellIdx = trial_idx / config.seedsPerCell;
        const std::uint64_t policy_idx =
            partial.cellIdx % std::size(policies);
        const std::uint64_t wear_idx = partial.cellIdx
            / std::size(policies) % config.wearLevels.size();
        const std::uint64_t ber_idx = partial.cellIdx
            / std::size(policies) / config.wearLevels.size();

        const double ber = config.bers[ber_idx];
        const double wear = config.wearLevels[wear_idx];
        const psm::McePolicy policy = policies[policy_idx];
        cell.ber = ber;
        cell.wear = wear;
        cell.policy = policy == psm::McePolicy::Contain
            ? "contain" : "reset-cold-boot";

        const std::uint64_t trial_seed =
            Rng::streamSeed(sweep_seed, trial_idx);
        Rng rng(trial_seed);

        // Odd seeds run the Section VIII symbol-erasure
        // fallback: double-erasures become counted RS
        // corrections instead of machine checks, so both
        // ECC tiers see traffic in every cell.
        const bool rs_fallback = s % 2 == 1;

        kernel::Kernel kern(trialKernelParams());
        psm::Psm psm(trialPsmParams(config, ber, policy,
                                    trial_seed,
                                    rs_fallback));
        mem::BackingStore store;
        pecos::Sng sng(kern, psm, store, {});
        pecos::MceHandler mce(kern, psm);
        psm::ScrubParams sp;
        sp.linesPerStep = config.scrubLinesPerStep;
        psm::PatrolScrubber scrubber(psm, sp);
        FaultInjector injector(store);

        // Pre-condition the media to the cell's wear
        // level (campaign aging, not simulated writes).
        const std::uint64_t wear_cycles =
            static_cast<std::uint64_t>(
                wear
                * static_cast<double>(
                    psm.params()
                        .dimm.device.enduranceCycles));
        for (std::uint32_t d = 0;
             d < psm.params().dimms; ++d)
            for (std::uint32_t g = 0;
                 g < psm.dimm(d).groupCount(); ++g)
                psm.dimm(d).group(g).preWear(wear_cycles);

        // Register the hot region's ownership: a few
        // user processes, each owning one slice, so
        // successive contained MCEs blame (and kill)
        // different tasks.
        const std::uint64_t region_bytes =
            config.regionLines * mem::cacheLineBytes;
        std::vector<std::uint32_t> victim_pids;
        for (const auto &proc : kern.processes()) {
            if (proc->pid() == 1
                || proc->isKernelThread())
                continue;
            victim_pids.push_back(proc->pid());
            if (victim_pids.size() >= config.victims)
                break;
        }
        const std::uint64_t slice =
            region_bytes
            / std::max<std::size_t>(victim_pids.size(),
                                    1);
        for (std::size_t v = 0; v < victim_pids.size();
             ++v)
            mce.registerOwner(v * slice, slice,
                              victim_pids[v]);

        // --- demand phase -----------------------------
        PsmFold fold;
        bool contained_this_trial = false;
        bool retired_on_contain = false;
        Tick t = 0;
        for (std::uint64_t op = 0;
             op < config.opsPerTrial; ++op) {
            mem::MemRequest req;
            req.addr =
                rng.below(config.regionLines)
                * mem::cacheLineBytes;
            req.op = rng.chance(config.writeFraction)
                ? mem::MemOp::Write : mem::MemOp::Read;
            const mem::AccessResult res =
                psm.access(req, t);
            t = res.completeAt + 5 * tickNs;
            req.op == mem::MemOp::Read ? ++result.reads
                                       : ++result.writes;

            if (res.containment) {
                // Escalate: the host machine check. The
                // ColdBoot arm wipes the PSM stats, so
                // fold the epoch first.
                fold.fold(psm.stats(), result, cell);
                const pecos::MceOutcome out =
                    mce.handle(req.addr, t);
                fold.prev = psm.stats();
                if (out.action
                    == pecos::MceAction::Contained) {
                    contained_this_trial = true;
                    if (out.lineRetired)
                        retired_on_contain = true;
                }
            }
            if (config.scrubEveryOps
                && op % config.scrubEveryOps == 0)
                scrubber.step(t);
        }

        // --- SnG phase: stop, lose power, resume ------
        const bool cut_armed = config.powerCutEvery
            && trial_idx % config.powerCutEvery == 0;
        Tick cut = maxTick;
        if (cut_armed) {
            cut = t
                + rng.below(dry_stop_ticks
                            + dry_stop_ticks / 4 + 1);
            injector.armCut(cut, rng.next());
            ++result.cutTrials;
        }

        const kernel::SystemSnapshot before =
            kern.snapshot();
        const pecos::StopReport stop = sng.stop(t);
        result.droppedWrites += stop.writesDropped;
        result.tornWrites += stop.writesTorn;

        // Power loss: volatile state is gone either way
        // (the stop was for a shutdown); scramble so a
        // resume reading stale volatile copies cannot
        // pass the register check.
        kern.scramble(rng);
        if (cut_armed)
            injector.powerRestored();

        const bool expect_resume = stop.commitAt < cut;
        if (sng.hasCommit() != expect_resume) {
            std::ostringstream note;
            note << "ras trial " << trial_idx << " cut@"
                 << cut << ": commit durable="
                 << sng.hasCommit() << " expected="
                 << expect_resume;
            flagViolation(result, note.str());
        }

        const pecos::GoReport go =
            sng.resume((cut_armed ? cut : stop.offlineDone)
                       + 100 * tickMs);
        if (go.coldBoot == expect_resume) {
            std::ostringstream note;
            note << "ras trial " << trial_idx
                 << ": coldBoot=" << go.coldBoot
                 << " but commit durable="
                 << expect_resume;
            flagViolation(result, note.str());
        }

        if (!go.coldBoot) {
            // Byte-exact register + device-cookie
            // round-trip through OC-PMEM (scramble above
            // guarantees stale volatile copies cannot
            // pass). Task state is excluded: resume
            // legitimately transitions it.
            const kernel::SystemSnapshot after =
                kern.snapshot();
            bool regs_ok =
                after.entries.size()
                    == before.entries.size()
                && after.deviceCookies
                    == before.deviceCookies;
            for (std::size_t p = 0; regs_ok
                 && p < after.entries.size(); ++p) {
                regs_ok = after.entries[p].pid
                        == before.entries[p].pid
                    && after.entries[p].regs
                        == before.entries[p].regs;
            }
            if (!regs_ok) {
                std::ostringstream note;
                note << "ras trial " << trial_idx
                     << ": resumed with corrupt state";
                flagViolation(result, note.str());
            }
            ++result.resumes;
            if (policy == psm::McePolicy::Contain
                && contained_this_trial
                && retired_on_contain)
                ++result.containSurvivedSng;
        } else {
            ++result.coldBootResumes;
        }

        fold.fold(psm.stats(), result, cell);
        cell.mceContained += mce.stats().contained;
        cell.mceColdBoots += mce.stats().coldBoots;
        result.mceContained += mce.stats().contained;
        result.mceColdBoots += mce.stats().coldBoots;
        result.tasksKilled += mce.stats().tasksKilled;
        result.kernelEscalations +=
            mce.stats().kernelEscalations;
        ++cell.trials;
        ++result.trials;
        return partial;
    };

    // Fan the trials out, then fold in ascending trial index: cell
    // partials land cell-major, so appending on each cell boundary
    // reconstructs the sequential sweep's cell list exactly.
    sim::ParallelExecutor pool(config.threads);
    const std::vector<RasTrialPartial> partials =
        pool.map<RasTrialPartial>(total, trial);

    RasCampaignResult result;
    for (const RasTrialPartial &partial : partials) {
        mergeAgg(result, partial.agg);
        if (result.cells.size() <= partial.cellIdx) {
            RasCell cell;
            cell.ber = partial.cell.ber;
            cell.wear = partial.cell.wear;
            cell.policy = partial.cell.policy;
            result.cells.push_back(cell);
        }
        mergeCell(result.cells[partial.cellIdx], partial.cell);
    }

    sim::Fnv64 digest;
    digest.mix(result.trials);
    digest.mix(result.reads);
    digest.mix(result.writes);
    digest.mix(result.sdcEvents);
    digest.mix(result.checkedReads);
    digest.mix(result.correctedReads);
    digest.mix(result.symbolCorrections);
    digest.mix(result.parityRewrites);
    digest.mix(result.uncorrectableReads);
    digest.mix(result.mceContained);
    digest.mix(result.mceColdBoots);
    digest.mix(result.tasksKilled);
    digest.mix(result.kernelEscalations);
    digest.mix(result.linesRetired);
    digest.mix(result.spareExhausted);
    digest.mix(result.scrubbedLines);
    digest.mix(result.scrubRepairs);
    digest.mix(result.scrubDeferrals);
    digest.mix(result.containSurvivedSng);
    digest.mix(result.resumes);
    digest.mix(result.coldBootResumes);
    digest.mix(result.cutTrials);
    digest.mix(result.droppedWrites);
    digest.mix(result.tornWrites);
    digest.mix(result.violations);
    for (const RasCell &cell : result.cells) {
        digest.mix(cell.trials);
        digest.mix(cell.checkedReads);
        digest.mix(cell.corrected);
        digest.mix(cell.symbolCorrections);
        digest.mix(cell.parityRewrites);
        digest.mix(cell.uncorrectable);
        digest.mix(cell.retired);
        digest.mix(cell.sdc);
        digest.mix(cell.mceContained);
        digest.mix(cell.mceColdBoots);
    }
    result.digest = digest.h;
    return result;
}

} // namespace lightpc::fault
