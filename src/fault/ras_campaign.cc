#include "fault/ras_campaign.hh"

#include <algorithm>
#include <sstream>

#include "fault/fault_injector.hh"
#include "kernel/kernel.hh"
#include "mem/backing_store.hh"
#include "pecos/mce.hh"
#include "pecos/sng.hh"
#include "psm/scrub.hh"
#include "sim/rng.hh"

namespace lightpc::fault
{

namespace
{

void
flagViolation(RasCampaignResult &result, const std::string &note)
{
    ++result.violations;
    if (result.violationNotes.size() < 8)
        result.violationNotes.push_back(note);
}

/** Small-geometry PSM so trials stay fast: 2 DIMMs x 4 groups x
 *  16 MB = 128 MB OC-PMEM (still clears the 16 MB reserved region
 *  SnG's control blocks live in). */
psm::PsmParams
trialPsmParams(const RasCampaignConfig &config, double ber,
               psm::McePolicy policy, std::uint64_t fault_seed,
               bool rs_fallback)
{
    psm::PsmParams pp;
    pp.symbolEccFallback = rs_fallback;
    pp.dimms = 2;
    pp.dimm.device.capacityBytes = 16 << 20;
    pp.dimm.device.wearRegionBytes = 64 << 10;
    pp.dimm.device.faults.enabled = true;
    pp.dimm.device.faults.transientBer = ber;
    pp.dimm.device.faults.wearStuckRate = config.wearStuckRate;
    pp.dimm.device.faults.seed = fault_seed;
    pp.spareLines = config.spareLines;
    pp.mcePolicy = policy;
    return pp;
}

/** Small kernel population: enough structure for SnG, fast to build. */
kernel::KernelParams
trialKernelParams()
{
    kernel::KernelParams kp;
    kp.cores = 4;
    kp.userProcesses = 16;
    kp.kernelThreads = 8;
    return kp;
}

/** The PsmStats fields the campaign accumulates, delta-folded so a
 *  mid-trial OC-PMEM reset (the ResetColdBoot arm wipes the stats)
 *  cannot lose the counts from before the reset. */
struct PsmFold
{
    psm::PsmStats prev;

    void
    fold(const psm::PsmStats &s, RasCampaignResult &r, RasCell &cell)
    {
        r.checkedReads += s.rasCheckedReads - prev.rasCheckedReads;
        r.sdcEvents += s.sdcEvents - prev.sdcEvents;
        r.correctedReads += s.correctedReads - prev.correctedReads;
        r.symbolCorrections +=
            s.symbolCorrections - prev.symbolCorrections;
        r.parityRewrites += s.parityRewrites - prev.parityRewrites;
        r.uncorrectableReads +=
            s.uncorrectableReads - prev.uncorrectableReads;
        r.linesRetired += s.retiredLines - prev.retiredLines;
        r.spareExhausted += s.spareExhausted - prev.spareExhausted;
        r.scrubbedLines += s.scrubbedLines - prev.scrubbedLines;
        r.scrubRepairs += s.scrubRepairs - prev.scrubRepairs;
        r.scrubDeferrals += s.scrubDeferrals - prev.scrubDeferrals;

        cell.checkedReads += s.rasCheckedReads - prev.rasCheckedReads;
        cell.sdc += s.sdcEvents - prev.sdcEvents;
        cell.corrected += s.correctedReads - prev.correctedReads;
        cell.symbolCorrections +=
            s.symbolCorrections - prev.symbolCorrections;
        cell.parityRewrites +=
            s.parityRewrites - prev.parityRewrites;
        cell.uncorrectable +=
            s.uncorrectableReads - prev.uncorrectableReads;
        cell.retired += s.retiredLines - prev.retiredLines;
        prev = s;
    }
};

} // namespace

RasCampaignResult
runRasCampaign(const RasCampaignConfig &config)
{
    RasCampaignResult result;
    Rng sweep_rng(config.seed ^ 0x726173736e67ULL);  // "rassng"

    // One dry SnG stop on the trial geometry for the power-cut
    // window (construction is deterministic, so every trial's Stop
    // timeline is close to this one; the sweep jitter covers the
    // spread from mid-trial kills).
    Tick dry_stop_ticks = 0;
    {
        kernel::Kernel kern(trialKernelParams());
        psm::Psm psm(trialPsmParams(config, 0.0,
                                    psm::McePolicy::ResetColdBoot, 1,
                                    false));
        mem::BackingStore store;
        pecos::Sng sng(kern, psm, store, {});
        dry_stop_ticks = sng.stop(0).totalTicks();
    }

    const psm::McePolicy policies[] = {psm::McePolicy::Contain,
                                       psm::McePolicy::ResetColdBoot};

    std::uint64_t trial_idx = 0;
    for (const double ber : config.bers) {
        for (const double wear : config.wearLevels) {
            for (const psm::McePolicy policy : policies) {
                RasCell cell;
                cell.ber = ber;
                cell.wear = wear;
                cell.policy = policy == psm::McePolicy::Contain
                    ? "contain" : "reset-cold-boot";

                for (std::uint64_t s = 0; s < config.seedsPerCell;
                     ++s, ++trial_idx) {
                    const std::uint64_t trial_seed = sweep_rng.next();
                    Rng rng(trial_seed);

                    // Odd seeds run the Section VIII symbol-erasure
                    // fallback: double-erasures become counted RS
                    // corrections instead of machine checks, so both
                    // ECC tiers see traffic in every cell.
                    const bool rs_fallback = s % 2 == 1;

                    kernel::Kernel kern(trialKernelParams());
                    psm::Psm psm(trialPsmParams(config, ber, policy,
                                                trial_seed,
                                                rs_fallback));
                    mem::BackingStore store;
                    pecos::Sng sng(kern, psm, store, {});
                    pecos::MceHandler mce(kern, psm);
                    psm::ScrubParams sp;
                    sp.linesPerStep = config.scrubLinesPerStep;
                    psm::PatrolScrubber scrubber(psm, sp);
                    FaultInjector injector(store);

                    // Pre-condition the media to the cell's wear
                    // level (campaign aging, not simulated writes).
                    const std::uint64_t wear_cycles =
                        static_cast<std::uint64_t>(
                            wear
                            * static_cast<double>(
                                psm.params()
                                    .dimm.device.enduranceCycles));
                    for (std::uint32_t d = 0;
                         d < psm.params().dimms; ++d)
                        for (std::uint32_t g = 0;
                             g < psm.dimm(d).groupCount(); ++g)
                            psm.dimm(d).group(g).preWear(wear_cycles);

                    // Register the hot region's ownership: a few
                    // user processes, each owning one slice, so
                    // successive contained MCEs blame (and kill)
                    // different tasks.
                    const std::uint64_t region_bytes =
                        config.regionLines * mem::cacheLineBytes;
                    std::vector<std::uint32_t> victim_pids;
                    for (const auto &proc : kern.processes()) {
                        if (proc->pid() == 1
                            || proc->isKernelThread())
                            continue;
                        victim_pids.push_back(proc->pid());
                        if (victim_pids.size() >= config.victims)
                            break;
                    }
                    const std::uint64_t slice =
                        region_bytes
                        / std::max<std::size_t>(victim_pids.size(),
                                                1);
                    for (std::size_t v = 0; v < victim_pids.size();
                         ++v)
                        mce.registerOwner(v * slice, slice,
                                          victim_pids[v]);

                    // --- demand phase -----------------------------
                    PsmFold fold;
                    bool contained_this_trial = false;
                    bool retired_on_contain = false;
                    Tick t = 0;
                    for (std::uint64_t op = 0;
                         op < config.opsPerTrial; ++op) {
                        mem::MemRequest req;
                        req.addr =
                            rng.below(config.regionLines)
                            * mem::cacheLineBytes;
                        req.op = rng.chance(config.writeFraction)
                            ? mem::MemOp::Write : mem::MemOp::Read;
                        const mem::AccessResult res =
                            psm.access(req, t);
                        t = res.completeAt + 5 * tickNs;
                        req.op == mem::MemOp::Read ? ++result.reads
                                                   : ++result.writes;

                        if (res.containment) {
                            // Escalate: the host machine check. The
                            // ColdBoot arm wipes the PSM stats, so
                            // fold the epoch first.
                            fold.fold(psm.stats(), result, cell);
                            const pecos::MceOutcome out =
                                mce.handle(req.addr, t);
                            fold.prev = psm.stats();
                            if (out.action
                                == pecos::MceAction::Contained) {
                                contained_this_trial = true;
                                if (out.lineRetired)
                                    retired_on_contain = true;
                            }
                        }
                        if (config.scrubEveryOps
                            && op % config.scrubEveryOps == 0)
                            scrubber.step(t);
                    }

                    // --- SnG phase: stop, lose power, resume ------
                    const bool cut_armed = config.powerCutEvery
                        && trial_idx % config.powerCutEvery == 0;
                    Tick cut = maxTick;
                    if (cut_armed) {
                        cut = t
                            + rng.below(dry_stop_ticks
                                        + dry_stop_ticks / 4 + 1);
                        injector.armCut(cut, rng.next());
                        ++result.cutTrials;
                    }

                    const kernel::SystemSnapshot before =
                        kern.snapshot();
                    const pecos::StopReport stop = sng.stop(t);
                    result.droppedWrites += stop.writesDropped;
                    result.tornWrites += stop.writesTorn;

                    // Power loss: volatile state is gone either way
                    // (the stop was for a shutdown); scramble so a
                    // resume reading stale volatile copies cannot
                    // pass the register check.
                    kern.scramble(rng);
                    if (cut_armed)
                        injector.powerRestored();

                    const bool expect_resume = stop.commitAt < cut;
                    if (sng.hasCommit() != expect_resume) {
                        std::ostringstream note;
                        note << "ras trial " << trial_idx << " cut@"
                             << cut << ": commit durable="
                             << sng.hasCommit() << " expected="
                             << expect_resume;
                        flagViolation(result, note.str());
                    }

                    const pecos::GoReport go =
                        sng.resume((cut_armed ? cut : stop.offlineDone)
                                   + 100 * tickMs);
                    if (go.coldBoot == expect_resume) {
                        std::ostringstream note;
                        note << "ras trial " << trial_idx
                             << ": coldBoot=" << go.coldBoot
                             << " but commit durable="
                             << expect_resume;
                        flagViolation(result, note.str());
                    }

                    if (!go.coldBoot) {
                        // Byte-exact register + device-cookie
                        // round-trip through OC-PMEM (scramble above
                        // guarantees stale volatile copies cannot
                        // pass). Task state is excluded: resume
                        // legitimately transitions it.
                        const kernel::SystemSnapshot after =
                            kern.snapshot();
                        bool regs_ok =
                            after.entries.size()
                                == before.entries.size()
                            && after.deviceCookies
                                == before.deviceCookies;
                        for (std::size_t p = 0; regs_ok
                             && p < after.entries.size(); ++p) {
                            regs_ok = after.entries[p].pid
                                    == before.entries[p].pid
                                && after.entries[p].regs
                                    == before.entries[p].regs;
                        }
                        if (!regs_ok) {
                            std::ostringstream note;
                            note << "ras trial " << trial_idx
                                 << ": resumed with corrupt state";
                            flagViolation(result, note.str());
                        }
                        ++result.resumes;
                        if (policy == psm::McePolicy::Contain
                            && contained_this_trial
                            && retired_on_contain)
                            ++result.containSurvivedSng;
                    } else {
                        ++result.coldBootResumes;
                    }

                    fold.fold(psm.stats(), result, cell);
                    cell.mceContained += mce.stats().contained;
                    cell.mceColdBoots += mce.stats().coldBoots;
                    result.mceContained += mce.stats().contained;
                    result.mceColdBoots += mce.stats().coldBoots;
                    result.tasksKilled += mce.stats().tasksKilled;
                    result.kernelEscalations +=
                        mce.stats().kernelEscalations;
                    ++cell.trials;
                    ++result.trials;
                }
                result.cells.push_back(cell);
            }
        }
    }
    return result;
}

} // namespace lightpc::fault
