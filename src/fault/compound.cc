#include "fault/compound.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "fault/fault_injector.hh"
#include "fault/power_rail.hh"
#include "mem/timed_mem.hh"
#include "net/kv_service.hh"
#include "persist/checkpoint.hh"
#include "power/power_model.hh"
#include "psm/psm.hh"
#include "sim/digest.hh"
#include "sim/logging.hh"
#include "sim/parallel.hh"

namespace lightpc::fault
{

std::vector<Tick>
CutStorm::poisson(Tick start, Tick mean_gap, std::size_t count)
{
    std::vector<Tick> cuts;
    cuts.reserve(count);
    Tick t = start;
    for (std::size_t i = 0; i < count; ++i) {
        // Exponential gap with the requested mean, at least one tick
        // (two cuts can never share an instant).
        const double u = rng.uniform();
        const double gap =
            -static_cast<double>(mean_gap) * std::log(1.0 - u);
        t += std::max<Tick>(1, static_cast<Tick>(gap));
        cuts.push_back(t);
    }
    return cuts;
}

Tick
CutStorm::uniformIn(Tick lo, Tick hi)
{
    return hi > lo ? lo + rng.below(hi - lo) : lo;
}

std::uint32_t
CutStorm::rackOf(std::uint32_t replica, std::uint32_t replicas,
                 std::uint32_t racks)
{
    if (replicas == 0 || racks == 0)
        fatal("CutStorm::rackOf needs replicas and racks >= 1");
    if (replica >= replicas)
        fatal("CutStorm::rackOf: replica ", replica, " out of range");
    return static_cast<std::uint32_t>(
        std::uint64_t(replica) * racks / replicas);
}

std::vector<CorrelatedStorm>
CutStorm::correlated(Tick start, Tick end, std::size_t storms,
                     std::uint32_t replicas, std::uint32_t racks,
                     std::uint32_t rack_span, Tick window)
{
    if (replicas == 0 || racks == 0)
        fatal("CutStorm::correlated needs replicas and racks >= 1");
    if (racks > replicas)
        fatal("CutStorm::correlated: more racks (", racks,
              ") than replicas (", replicas, ") leaves racks empty");
    if (rack_span == 0 || rack_span > racks)
        fatal("CutStorm::correlated: rack span ", rack_span,
              " outside [1, ", racks, "]");
    if (window == 0)
        fatal("CutStorm::correlated needs a nonzero storm window");

    std::vector<CorrelatedStorm> out;
    if (storms == 0 || end <= start)
        return out;
    out.reserve(storms);
    const Tick spacing = (end - start) / (storms + 1);
    for (std::size_t s = 0; s < storms; ++s) {
        CorrelatedStorm storm;
        const Tick nominal = start + spacing * (s + 1);
        storm.startAt = uniformIn(nominal, nominal + spacing / 4 + 1);

        // Struck racks: the first storm always hits rack 0 (the
        // bootstrap leader's rack — the adversarial choice), the rest
        // start from an rng rack; spans wrap around the rack ring.
        const std::uint32_t first =
            s == 0 ? 0
                   : static_cast<std::uint32_t>(rng.below(racks));
        for (std::uint32_t i = 0; i < rack_span; ++i)
            storm.racks.push_back((first + i) % racks);
        std::sort(storm.racks.begin(), storm.racks.end());

        for (std::uint32_t r = 0; r < replicas; ++r) {
            const std::uint32_t rack = rackOf(r, replicas, racks);
            if (std::find(storm.racks.begin(), storm.racks.end(), rack)
                == storm.racks.end())
                continue;
            ReplicaCut cut;
            cut.replica = r;
            cut.at = uniformIn(storm.startAt, storm.startAt + window);
            storm.cuts.push_back(cut);
        }
        std::sort(storm.cuts.begin(), storm.cuts.end(),
                  [](const ReplicaCut &a, const ReplicaCut &b) {
                      if (a.at != b.at)
                          return a.at < b.at;
                      return a.replica < b.replica;
                  });
        out.push_back(std::move(storm));
    }
    return out;
}

SupervisorOutcome
RecoverySupervisor::supervise(Tick when, const std::vector<Tick> &cuts,
                              Rng &rng)
{
    if (pmem.powerCutArmed())
        fatal("RecoverySupervisor needs the store disarmed at entry");

    SupervisorOutcome out;
    Tick t = when;
    std::size_t ci = 0;
    Tick backoff = cfg.retryBackoff;

    while (true) {
        ++out.attempts;

        // Cuts in the past fell while the machine was already down;
        // the outage absorbed them.
        while (ci < cuts.size() && cuts[ci] <= t)
            ++ci;
        const Tick external = ci < cuts.size() ? cuts[ci] : maxTick;

        // The watchdog reset *is* a power cut at the deadline tick:
        // a hung Go cannot land its commit-clear past it, exactly as
        // if the rails had fallen.
        const Tick watchdog = cfg.resumeDeadline == maxTick
            ? maxTick : t + cfg.resumeDeadline;
        const Tick arm = std::min(external, watchdog);
        if (arm != maxTick)
            pmem.armPowerCut(arm, rng.next());

        const pecos::GoReport go = sng.resume(t);

        const bool interrupted = go.interrupted;
        if (arm != maxTick) {
            out.staleWritesSeen += pmem.cutStats().staleWrites;
            // The armed instant only becomes an epoch floor if the
            // machine actually reached it; a resume that converged
            // first means the cut never fired (AC back, watchdog
            // fed) and the floor must not move into the future.
            if (arm <= go.done)
                pmem.disarmPowerCut();
            else
                pmem.cancelPowerCut();
        }

        if (go.coldBoot) {
            // Nothing durable to replay: the machine converges cold.
            out.converged = true;
            out.coldBoot = true;
            out.convergedAt = go.done;
            return out;
        }
        if (!interrupted) {
            // The commit-clear landed: converged.
            out.converged = true;
            out.convergedAt = go.done;
            return out;
        }

        // This attempt died — to the external cut, or to the
        // watchdog declaring a livelock. Either way the volatile
        // side is gone and the durable EP-cut is still intact.
        if (watchdog <= external) {
            ++out.livelocks;
        } else {
            ++out.cutsConsumed;
            ++ci;
        }
        kern.scramble(rng);

        if (out.attempts >= cfg.maxAttempts) {
            // K resumes have failed against this image. Escalate:
            // invalidate it and boot cold — degraded, but the
            // machine converges instead of thrashing forever.
            const Tick boot_at = arm + backoff;
            sng.invalidateCommit(boot_at);
            const pecos::GoReport cold = sng.resume(boot_at);
            out.converged = true;
            out.coldBoot = true;
            out.degradedColdBoot = true;
            out.convergedAt = cold.done;
            return out;
        }

        t = arm + backoff;
        backoff = std::min(backoff * 2, cfg.backoffCap);
    }
}

std::uint64_t
machineStateDigest(const kernel::Kernel &kern,
                   const mem::BackingStore &pmem)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 0x100000001b3ULL;
        }
    };

    const kernel::SystemSnapshot snap = kern.snapshot();
    for (const auto &entry : snap.entries) {
        mix(entry.pid);
        mix(static_cast<std::uint64_t>(entry.state));
        for (const std::uint64_t x : entry.regs.x)
            mix(x);
        mix(entry.regs.pc);
        mix(entry.regs.sp);
        mix(entry.regs.satp);
    }
    for (const std::uint64_t cookie : snap.deviceCookies)
        mix(cookie);
    mix(pmem.contentDigest());
    return h;
}

void
CompoundResult::merge(const CompoundResult &other)
{
    trials += other.trials;
    stopCutTrials += other.stopCutTrials;
    goCutTrials += other.goCutTrials;
    brownoutTrials += other.brownoutTrials;
    stormTrials += other.stormTrials;
    oplogTrials += other.oplogTrials;
    for (std::size_t p = 0; p < stopPhaseCuts.size(); ++p)
        stopPhaseCuts[p] += other.stopPhaseCuts[p];
    for (std::size_t p = 0; p < goPhaseCuts.size(); ++p)
        goPhaseCuts[p] += other.goPhaseCuts[p];
    resumes += other.resumes;
    coldBoots += other.coldBoots;
    degradedColdBoots += other.degradedColdBoots;
    supervisorRetries += other.supervisorRetries;
    livelocks += other.livelocks;
    abortedStops += other.abortedStops;
    abortContinues += other.abortContinues;
    baselineRetries += other.baselineRetries;
    baselineRecoveries += other.baselineRecoveries;
    tornResumes += other.tornResumes;
    idempotenceChecks += other.idempotenceChecks;
    oplogTornTails += other.oplogTornTails;
    oplogReplayChecks += other.oplogReplayChecks;
    oplogRecordsReplayed += other.oplogRecordsReplayed;
    stormCutsTotal += other.stormCutsTotal;
    maxCutEpochs = std::max(maxCutEpochs, other.maxCutEpochs);
    staleWritesRejected += other.staleWritesRejected;
    droppedWrites += other.droppedWrites;
    tornWrites += other.tornWrites;
    violations += other.violations;
    for (const std::string &note : other.violationNotes) {
        if (violationNotes.size() >= 8)
            break;
        violationNotes.push_back(note);
    }
}

namespace
{

/** A MemoryPort view over the PSM (TimedMem plumbing). */
class PsmMemPort : public mem::MemoryPort
{
  public:
    explicit PsmMemPort(psm::Psm &psm) : psm(psm) {}

    mem::AccessResult
    access(const mem::MemRequest &req, Tick when) override
    {
        return psm.access(req, when);
    }

    Tick fence(Tick when) override { return psm.flush(when); }

  private:
    psm::Psm &psm;
};

/** One fresh SnG platform (identical construction every trial). */
struct SngRig
{
    kernel::Kernel kern;
    psm::Psm psm;
    mem::BackingStore store;
    pecos::Sng sng{kern, psm, store, {}};
};

/** The image-baseline fabric for brownout retry trials. */
struct ImageRig
{
    mem::BackingStore store;
    psm::Psm psm;
    PsmMemPort port{psm};
    mem::TimedMem pmem{port, &store};
};

void
flagViolation(CompoundResult &result, const std::string &note)
{
    ++result.violations;
    if (result.violationNotes.size() < 8)
        result.violationNotes.push_back(note);
}

/** Register/cookie round-trip check against a pre-stop snapshot. */
bool
stateRoundTrips(const kernel::SystemSnapshot &before,
                const kernel::SystemSnapshot &after)
{
    if (after.entries.size() != before.entries.size()
        || after.deviceCookies != before.deviceCookies)
        return false;
    for (std::size_t p = 0; p < after.entries.size(); ++p) {
        if (after.entries[p].pid != before.entries[p].pid
            || !(after.entries[p].regs == before.entries[p].regs))
            return false;
    }
    return true;
}

double
busyWatts(const power::PowerModel &model, std::uint32_t cores,
          std::uint32_t pram_dimms)
{
    power::ActivitySample sample;
    sample.coresActive = cores;
    sample.coresIdle = 0;
    sample.coreUtilization = 1.0;
    sample.pramDimms = pram_dimms;
    return model.staticWattsOf(sample);
}

} // namespace

CompoundResult
runCompoundCampaign(const CompoundConfig &config)
{
    using pecos::GoSubPhase;
    using pecos::StopSubPhase;

    // Dry runs: the Stop and Go timelines (construction is
    // deterministic, so every trial replays these boundaries until a
    // cut diverges it).
    pecos::StopReport dryStop;
    pecos::GoReport dryGo;
    std::uint32_t cores = 0;
    std::uint32_t dimms = 0;
    {
        SngRig rig;
        dryStop = rig.sng.stop(0);
        dryGo = rig.sng.resume(dryStop.offlineDone + 100 * tickMs);
        cores = rig.kern.cores();
        dimms = rig.psm.params().dimms;
    }
    const Tick goWindow = dryGo.done - dryGo.start;

    const power::PowerModel power_model;
    const double watts = busyWatts(power_model, cores, dimms);
    const Tick holdup = config.psu.holdupTime(watts);

    // Each trial's randomness is a pure function of (seed, i): an
    // Rng stream and a CutStorm stream of its own, so trials can run
    // on any worker in any order and still replay the sequential
    // campaign exactly.
    const std::uint64_t rng_seed = config.seed ^ 0x636f6d70ULL;  // "comp"
    const std::uint64_t storm_seed =
        config.seed * 0x9e3779b97f4a7c15ULL + 1;

    auto trial = [&config, &dryStop, &dryGo, goWindow, watts, holdup,
                  rng_seed, storm_seed](std::uint64_t i) {
        CompoundResult result;
        Rng rng(Rng::streamSeed(rng_seed, i));
        CutStorm storm(Rng::streamSeed(storm_seed, i));

        const int scenario = static_cast<int>(i % 5);

        if (scenario == 0) {
            // ---- Cut-during-Stop, one drain sub-phase per trial —
            // rotating so every sub-phase is hit, then supervised
            // recovery.
            ++result.stopCutTrials;

            struct Window { Tick lo, hi; };
            const Window windows[7] = {
                {0, dryStop.processStopDone},
                {dryStop.processStopDone, dryStop.ctxSaveDone},
                {dryStop.ctxSaveDone, dryStop.deviceStopDone},
                {dryStop.deviceStopDone, dryStop.workerOfflineDone},
                {dryStop.workerOfflineDone, dryStop.commitStart},
                {dryStop.commitStart, dryStop.commitAt},
                {dryStop.commitAt + 1,
                 dryStop.commitAt + dryStop.offlineDone / 8},
            };
            const Window &w = windows[(i / 5) % 7];
            const Tick cut = storm.uniformIn(w.lo, w.hi);

            SngRig rig;
            const kernel::SystemSnapshot before = rig.kern.snapshot();
            rig.store.armPowerCut(cut, rng.next());

            const pecos::StopReport stop = rig.sng.stop(0);
            ++result.stopPhaseCuts[static_cast<std::size_t>(
                stop.cutSubPhase)];
            result.droppedWrites += stop.writesDropped;
            result.tornWrites += stop.writesTorn;

            const bool expect = stop.commitAt < cut;
            rig.kern.scramble(rng);
            rig.store.disarmPowerCut();
            if (rig.sng.hasCommit() != expect) {
                std::ostringstream note;
                note << "stop-cut@" << cut << " ("
                     << pecos::stopSubPhaseName(stop.cutSubPhase)
                     << "): commit durable=" << rig.sng.hasCommit()
                     << " expected=" << expect;
                flagViolation(result, note.str());
            }

            RecoverySupervisor sup(rig.sng, rig.kern, rig.store,
                                   config.supervisor);
            const SupervisorOutcome out =
                sup.supervise(cut + 100 * tickMs, {}, rng);
            result.supervisorRetries += out.attempts - 1;
            result.livelocks += out.livelocks;
            if (!out.converged) {
                flagViolation(result, "stop-cut: supervisor failed "
                                      "to converge");
            } else if (out.coldBoot == expect
                       && !out.degradedColdBoot) {
                std::ostringstream note;
                note << "stop-cut@" << cut << ": coldBoot="
                     << out.coldBoot << " but commit durable="
                     << expect;
                flagViolation(result, note.str());
            }
            if (!out.coldBoot) {
                if (!stateRoundTrips(before, rig.kern.snapshot()))
                    flagViolation(result,
                                  "stop-cut: resumed with corrupt "
                                  "register state");
                ++result.resumes;
            } else {
                ++result.coldBoots;
            }
        } else if (scenario == 1) {
            // ---- Cut-during-Go: a clean EP-cut, then the cut lands
            // inside the resume. A torn resume must leave the commit
            // valid, and replaying it must be byte-identical to an
            // uninterrupted resume of the same image.
            ++result.goCutTrials;

            // The uninterrupted reference machine.
            SngRig ref;
            ref.sng.stop(0);
            const Tick resume_at = dryStop.offlineDone + 100 * tickMs;
            ref.kern.scramble(rng);
            ref.sng.resume(resume_at);
            const std::uint64_t ref_digest =
                machineStateDigest(ref.kern, ref.store);

            SngRig rig;
            rig.sng.stop(0);
            rig.kern.scramble(rng);

            // Rotate the cut across the Go sub-phase windows (the
            // dry-run boundaries are exact: the trial resumes at the
            // same tick the dry run did).
            struct Window { Tick lo, hi; };
            const Window windows[6] = {
                {dryGo.start, dryGo.bcbRestored},
                {dryGo.bcbRestored, dryGo.coresUp},
                {dryGo.coresUp, dryGo.devicesResumed},
                {dryGo.devicesResumed, dryGo.thawDone},
                {dryGo.thawDone, dryGo.done + 1},
                {dryGo.done + 1, dryGo.done + 1 + goWindow / 8},
            };
            const Window &w = windows[(i / 5) % 6];
            const Tick cut = storm.uniformIn(w.lo, w.hi);
            rig.store.armPowerCut(cut, rng.next());
            const pecos::GoReport go1 = rig.sng.resume(resume_at);
            ++result.goPhaseCuts[static_cast<std::size_t>(
                go1.cutSubPhase)];
            result.droppedWrites += rig.store.cutStats().droppedWrites;
            result.tornWrites += rig.store.cutStats().tornWrites;
            result.staleWritesRejected +=
                rig.store.cutStats().staleWrites;
            rig.store.disarmPowerCut();

            if (go1.interrupted) {
                ++result.tornResumes;
                if (!rig.sng.hasCommit()) {
                    flagViolation(result, "go-cut: torn resume lost "
                                          "the durable EP-cut");
                }
                // The machine died mid-Go; replay from the image.
                rig.kern.scramble(rng);
                const pecos::GoReport go2 =
                    rig.sng.resume(go1.cutTick + 100 * tickMs);
                if (go2.coldBoot || go2.interrupted)
                    flagViolation(result, "go-cut: resume replay "
                                          "failed to converge");
            } else if (rig.sng.hasCommit()) {
                flagViolation(result, "go-cut: converged resume left "
                                      "the commit set");
            }
            ++result.resumes;

            // The idempotence proof: torn-and-replayed or not, the
            // machine must equal the once-resumed reference.
            ++result.idempotenceChecks;
            if (machineStateDigest(rig.kern, rig.store)
                != ref_digest) {
                std::ostringstream note;
                note << "go-cut@" << cut << " ("
                     << pecos::goSubPhaseName(go1.cutSubPhase)
                     << "): replayed resume diverged from the "
                        "reference machine";
                flagViolation(result, note.str());
            }
        } else if (scenario == 2) {
            // ---- Brownout: a mains sag that may or may not reach
            // the hold-up floor.
            ++result.brownoutTrials;

            const double supply = 0.7 * rng.uniform();
            const double depth = 1.0 - supply;
            const Tick floor = static_cast<Tick>(
                static_cast<double>(holdup) / depth);
            const Tick dur = static_cast<Tick>(
                (0.3 + 1.3 * rng.uniform())
                * static_cast<double>(floor));

            PowerRail rail(config.psu, watts);
            rail.addSag(0, dur, supply);
            const SagOutcome sag = rail.evaluateSags();

            if (sag.railsFailed) {
                // Deep sag: a real cut at the drained tick, racing
                // the Stop that the power event started.
                SngRig rig;
                const kernel::SystemSnapshot before =
                    rig.kern.snapshot();
                rig.store.armPowerCut(sag.failTick, rng.next());
                const pecos::StopReport stop = rig.sng.stop(0);
                ++result.stopPhaseCuts[static_cast<std::size_t>(
                    stop.cutSubPhase)];
                result.droppedWrites += stop.writesDropped;
                result.tornWrites += stop.writesTorn;
                const bool expect = stop.commitAt < sag.failTick;
                rig.kern.scramble(rng);
                rig.store.disarmPowerCut();
                RecoverySupervisor sup(rig.sng, rig.kern, rig.store,
                                       config.supervisor);
                const SupervisorOutcome out = sup.supervise(
                    sag.failTick + 100 * tickMs, {}, rng);
                if (out.coldBoot == expect)
                    flagViolation(result,
                                  "brownout-cut: recovery disagrees "
                                  "with commit durability");
                if (!out.coldBoot) {
                    if (!stateRoundTrips(before, rig.kern.snapshot()))
                        flagViolation(result,
                                      "brownout-cut: corrupt resume");
                    ++result.resumes;
                } else {
                    ++result.coldBoots;
                }
            } else if ((i / 5) % 2 == 0) {
                // Shallow sag, SnG: the Stop ran to completion on
                // capacitor reserve, then AC recovered — abort in
                // place, no reboot, and keep running.
                SngRig rig;
                const kernel::SystemSnapshot before =
                    rig.kern.snapshot();
                const pecos::StopReport stop = rig.sng.stop(0);
                const Tick abort_at =
                    std::max(sag.recoveredAt, stop.offlineDone) + 1;
                const pecos::AbortReport abort =
                    rig.sng.abortStop(abort_at);
                ++result.abortedStops;

                if (!abort.commitCleared || rig.sng.hasCommit())
                    flagViolation(result,
                                  "brownout-abort: stale EP-cut "
                                  "survived the abort");
                if (rig.kern.devices().suspendedCount() != 0
                    || abort.devicesRevived != stop.devicesSuspended)
                    flagViolation(result,
                                  "brownout-abort: devices left "
                                  "suspended");
                if (abort.tasksUnparked != stop.tasksParked)
                    flagViolation(result,
                                  "brownout-abort: parked tasks "
                                  "left frozen");
                if (!stateRoundTrips(before, rig.kern.snapshot()))
                    flagViolation(result,
                                  "brownout-abort: register state "
                                  "changed across the abort");

                // ...and continue: the aborted machine must still
                // persist correctly through a later real cycle.
                const kernel::SystemSnapshot mid =
                    rig.kern.snapshot();
                const pecos::StopReport stop2 =
                    rig.sng.stop(abort.done + 50 * tickMs);
                rig.kern.scramble(rng);
                const pecos::GoReport go = rig.sng.resume(
                    stop2.offlineDone + 100 * tickMs);
                if (go.coldBoot
                    || !stateRoundTrips(mid, rig.kern.snapshot())) {
                    flagViolation(result,
                                  "brownout-abort: post-abort cycle "
                                  "failed to round-trip");
                } else {
                    ++result.abortContinues;
                    ++result.resumes;
                }
            } else {
                // Shallow sag, image baseline: each dump attempt
                // during the sag dies to the drained reserve; the
                // service retries with capped exponential backoff
                // until AC is stable.
                ImageRig rig;
                persist::SysPc syspc(rig.pmem);
                FaultInjector injector(rig.store);

                constexpr std::uint64_t image_bytes = 2 << 20;
                const std::uint32_t failures =
                    1 + static_cast<std::uint32_t>(rng.below(3));
                Tick t = 0;
                Tick backoff = config.supervisor.retryBackoff;
                std::uint32_t attempt = 0;
                for (;;) {
                    ++attempt;
                    if (attempt <= failures) {
                        const Tick cut =
                            t + tickMs + rng.below(tickMs);
                        injector.armCut(cut, rng.next());
                        syspc.dumpImageCommitted(t, image_bytes,
                                                 rng.next());
                        injector.powerRestored();
                        if (syspc.committedImage().seq != 0) {
                            flagViolation(result,
                                          "brownout-baseline: dump "
                                          "committed past the cut");
                        }
                        ++result.baselineRetries;
                        t = cut + backoff;
                        backoff =
                            std::min(backoff * 2,
                                     config.supervisor.backoffCap);
                    } else {
                        // AC stable: this dump must land.
                        syspc.dumpImageCommitted(t, image_bytes,
                                                 rng.next());
                        const auto rec = syspc.committedImage();
                        if (rec.seq != attempt
                            || !syspc.committedImageIntact(rec)) {
                            flagViolation(result,
                                          "brownout-baseline: "
                                          "post-sag dump did not "
                                          "commit intact");
                        } else {
                            ++result.baselineRecoveries;
                        }
                        break;
                    }
                }
            }
        } else if (scenario == 3) {
            // ---- Poisson cut storm against ONE store: every cut
            // opens a new durability epoch; bytes dropped by an
            // earlier cut must never resurface under a later one.
            ++result.stormTrials;

            SngRig rig;
            const std::size_t n_cuts = 3
                + static_cast<std::size_t>(
                      rng.below(config.stormExtraCuts + 1));
            const Tick mean_gap = static_cast<Tick>(
                config.stormGapFraction
                * static_cast<double>(holdup));
            const std::vector<Tick> schedule = storm.poisson(
                storm.uniformIn(0, dryStop.offlineDone), mean_gap,
                n_cuts);
            result.stormCutsTotal += schedule.size();

            Tick t = 0;
            std::size_t idx = 0;
            while (idx < schedule.size()) {
                const Tick cut = schedule[idx];
                if (cut <= t) {
                    // This cut fell while the machine was down or
                    // recovering; the outage absorbed it.
                    ++idx;
                    continue;
                }
                const kernel::SystemSnapshot before =
                    rig.kern.snapshot();
                rig.store.armPowerCut(cut, rng.next());
                const pecos::StopReport stop = rig.sng.stop(t);
                ++result.stopPhaseCuts[static_cast<std::size_t>(
                    stop.cutSubPhase)];
                result.droppedWrites += stop.writesDropped;
                result.tornWrites += stop.writesTorn;
                result.staleWritesRejected +=
                    rig.store.cutStats().staleWrites;

                const bool expect = stop.commitAt < cut;
                rig.kern.scramble(rng);
                rig.store.disarmPowerCut();
                if (rig.sng.hasCommit() != expect) {
                    std::ostringstream note;
                    note << "storm cut#" << idx << "@" << cut
                         << ": commit durable=" << rig.sng.hasCommit()
                         << " expected=" << expect;
                    flagViolation(result, note.str());
                }
                ++idx;

                // Restore inside the storm: the next cuts are live
                // and can land mid-Go; the supervisor replays until
                // it converges past them.
                const std::vector<Tick> remaining(
                    schedule.begin()
                        + static_cast<std::ptrdiff_t>(idx),
                    schedule.end());
                RecoverySupervisor sup(rig.sng, rig.kern, rig.store,
                                       config.supervisor);
                const SupervisorOutcome out = sup.supervise(
                    cut + mean_gap / 4, remaining, rng);
                result.supervisorRetries += out.attempts - 1;
                result.livelocks += out.livelocks;
                result.staleWritesRejected += out.staleWritesSeen;
                result.tornResumes += out.cutsConsumed;
                if (out.degradedColdBoot)
                    ++result.degradedColdBoots;

                if (!out.converged) {
                    flagViolation(result, "storm: supervisor failed "
                                          "to converge");
                } else if (expect && !out.coldBoot) {
                    if (!stateRoundTrips(before,
                                         rig.kern.snapshot()))
                        flagViolation(result,
                                      "storm: corrupt resume state");
                    ++result.resumes;
                } else if (expect && out.coldBoot
                           && !out.degradedColdBoot) {
                    flagViolation(result,
                                  "storm: durable commit but "
                                  "converged cold");
                } else if (!expect && !out.coldBoot) {
                    flagViolation(result,
                                  "storm: no durable commit but "
                                  "warm resume");
                } else {
                    ++result.coldBoots;
                }

                idx += out.cutsConsumed;
                t = out.convergedAt + mean_gap / 2;
            }
            result.maxCutEpochs = std::max<std::uint64_t>(
                result.maxCutEpochs, rig.store.cutEpoch());
        } else {
            // ---- Op-log torn tail: a KvService on the op-log write
            // path, with a deliberately tiny (wrapping) log, takes a
            // cut in the middle of a seeded PUT stream. Recovery of
            // the resulting image must be *deterministic*: two
            // independent services recovering two copies of the same
            // durable bytes end byte-identical, and the replayed
            // state passes the version-sum audit.
            ++result.oplogTrials;

            net::KvParams kp;
            kp.writePath = net::WritePath::OpLog;
            kp.keyCapacity = 64;
            kp.dedupCapacity = 256;
            kp.oplog.capacity = 16 * net::OpLog::recordBytes;

            ImageRig rig;
            net::KvService kv(rig.store, rig.pmem, kp);

            constexpr std::uint64_t n_puts = 48;
            const std::uint64_t cut_after = 8 + rng.below(n_puts - 16);
            Tick t = 0;
            std::uint64_t req_id = 1;
            bool cut_armed = false;
            for (std::uint64_t p = 0; p < n_puts; ++p) {
                if (p == cut_after) {
                    // Land the cut inside this PUT's append window
                    // (a few µs of parse + probes + the line store).
                    rig.store.armPowerCut(
                        t + storm.uniformIn(tickUs, 8 * tickUs),
                        rng.next());
                    cut_armed = true;
                }
                net::RpcRequest req;
                req.reqId = req_id++;
                req.client = static_cast<std::uint32_t>(p % 5);
                req.op = workload::KvOp::Put;
                req.key = 1 + rng.below(8);
                req.valueSeed = rng.next();
                req.deadline = maxTick;
                bool deferred = false;
                (void)kv.execute(t, req, &deferred);
                if (p % 4 == 3)
                    kv.logCommit(t);
                if (p % 8 == 7)
                    (void)kv.logDrain(t, 4);
            }
            if (cut_armed) {
                result.droppedWrites +=
                    rig.store.cutStats().droppedWrites;
                result.tornWrites += rig.store.cutStats().tornWrites;
                rig.store.disarmPowerCut();
            }

            // Two copies of the durable image, recovered separately.
            struct ReplayOutcome
            {
                net::KvStats kv;
                std::uint64_t scanStops = 0;
            };
            auto recoverCopy = [&kp](const mem::BackingStore &from,
                                     mem::BackingStore &copy) {
                copy.copyContentsFrom(from);
                psm::Psm psm;
                PsmMemPort port(psm);
                mem::TimedMem pmem(port, &copy);
                net::KvService svc(copy, pmem, kp);
                Tick rt = 1 * tickSec;
                svc.recover(rt);
                svc.logDrainAll(rt);
                ReplayOutcome out;
                out.kv = svc.stats();
                if (svc.opLog())
                    out.scanStops = svc.opLog()->stats().checksumStops
                        + svc.opLog()->stats().seqStops;
                return out;
            };
            mem::BackingStore c1;
            mem::BackingStore c2;
            const ReplayOutcome r1 = recoverCopy(rig.store, c1);
            const ReplayOutcome r2 = recoverCopy(rig.store, c2);

            ++result.oplogReplayChecks;
            result.oplogRecordsReplayed +=
                r1.kv.logReplayApplied + r1.kv.logReplaySkipped;
            if (r1.scanStops > 0)
                ++result.oplogTornTails;
            if (r1.scanStops != r2.scanStops
                || r1.kv.logReplayApplied != r2.kv.logReplayApplied) {
                std::ostringstream note;
                note << "oplog trial " << i << ": the two recovery "
                        "scans disagreed";
                flagViolation(result, note.str());
            }
            if (!c1.equals(c2)) {
                std::ostringstream note;
                note << "oplog trial " << i << ": two recoveries of "
                        "the same image diverged";
                flagViolation(result, note.str());
            }

            // Version-sum audit on one recovered copy: every applied
            // PUT bumped exactly one key's version by one.
            {
                psm::Psm psm;
                PsmMemPort port(psm);
                mem::TimedMem pmem(port, &c1);
                net::KvService audit(c1, pmem, kp);
                std::uint64_t version_sum = 0;
                for (std::uint64_t key = 1; key <= 8; ++key) {
                    const auto state = audit.lookup(key);
                    if (state)
                        version_sum += state->version;
                }
                if (version_sum != audit.appliedCount()
                    || audit.appliedCount()
                           != audit.appliedIds().size()
                               + audit.compactedCount()) {
                    std::ostringstream note;
                    note << "oplog trial " << i << ": version sum "
                         << version_sum << " != applied count "
                         << audit.appliedCount();
                    flagViolation(result, note.str());
                }
            }
        }
        ++result.trials;
        return result;
    };

    sim::ParallelExecutor pool(config.threads);
    CompoundResult result = pool.reduce<CompoundResult>(
        config.trials, CompoundResult{}, trial,
        [](CompoundResult &acc, const CompoundResult &partial) {
            acc.merge(partial);
        });
    result.psu = config.psu.spec().name;

    // Determinism anchor over every counter.
    sim::Fnv64 fnv;
    auto mix = [&fnv](std::uint64_t v) { fnv.mix(v); };
    mix(result.trials);
    mix(result.stopCutTrials);
    mix(result.goCutTrials);
    mix(result.brownoutTrials);
    mix(result.stormTrials);
    mix(result.oplogTrials);
    for (const std::uint64_t c : result.stopPhaseCuts)
        mix(c);
    for (const std::uint64_t c : result.goPhaseCuts)
        mix(c);
    mix(result.resumes);
    mix(result.coldBoots);
    mix(result.degradedColdBoots);
    mix(result.supervisorRetries);
    mix(result.livelocks);
    mix(result.abortedStops);
    mix(result.abortContinues);
    mix(result.baselineRetries);
    mix(result.baselineRecoveries);
    mix(result.tornResumes);
    mix(result.idempotenceChecks);
    mix(result.oplogTornTails);
    mix(result.oplogReplayChecks);
    mix(result.oplogRecordsReplayed);
    mix(result.stormCutsTotal);
    mix(result.maxCutEpochs);
    mix(result.staleWritesRejected);
    mix(result.droppedWrites);
    mix(result.tornWrites);
    mix(result.violations);
    result.digest = fnv.h;
    return result;
}

} // namespace lightpc::fault
