#include "fault/cluster_campaign.hh"

#include <algorithm>
#include <sstream>

#include "sim/digest.hh"
#include "sim/logging.hh"
#include "sim/parallel.hh"
#include "sim/rng.hh"

namespace lightpc::fault
{

namespace
{

/** Storm count / rack span one intensity rung encodes. */
struct StormShape
{
    std::size_t storms = 0;
    std::uint32_t rackSpan = 1;
};

StormShape
shapeOf(std::uint32_t intensity, std::uint32_t racks)
{
    switch (intensity) {
    case 1: return {1, 1};
    case 2: return {2, 1};
    case 3: return {2, racks};
    default:
        fatal("cluster campaign: intensity ", intensity,
                   " is not on the 1..3 storm ladder");
    }
    return {};
}

void
validate(const ClusterCampaignConfig &config)
{
    if (config.seedsPerCell == 0)
        fatal("cluster campaign: seedsPerCell must be nonzero");
    if (config.replicaCounts.empty())
        fatal("cluster campaign: no replica counts to sweep");
    if (config.intensities.empty())
        fatal("cluster campaign: no storm intensities to sweep");
    if (config.modes.empty())
        fatal("cluster campaign: no persistence modes to sweep");
    for (const std::uint32_t intensity : config.intensities)
        if (intensity < 1 || intensity > 3)
            fatal("cluster campaign: intensity ", intensity,
                       " is not on the 1..3 storm ladder");
    // The stream-column packing gives seedIdx 32 bits, intIdx 8 and
    // repIdx the rest; overflow would silently alias storm/arrival
    // streams across cells and void the paired comparison.
    if (config.seedsPerCell > (std::uint64_t(1) << 32))
        fatal("cluster campaign: seedsPerCell ", config.seedsPerCell,
              " overflows the 32-bit seed field of the stream "
              "column packing");
    if (config.intensities.size() > 256)
        fatal("cluster campaign: ", config.intensities.size(),
              " intensities overflow the 8-bit intensity field of "
              "the stream column packing");
    if (config.replicaCounts.size() > (std::size_t(1) << 24))
        fatal("cluster campaign: ", config.replicaCounts.size(),
              " replica counts overflow the stream column packing");
    if (config.runFor == 0)
        fatal("cluster campaign: runFor must be nonzero");
    if (config.clients == 0)
        fatal("cluster campaign: zero clients");
    if (config.arrivalsPerSec <= 0.0)
        fatal("cluster campaign: arrival rate must be positive");
}

} // namespace

std::uint64_t
clusterCampaignTrials(const ClusterCampaignConfig &config)
{
    return std::uint64_t(config.replicaCounts.size())
           * config.intensities.size() * config.modes.size()
           * config.seedsPerCell;
}

cluster::ClusterConfig
clusterTrialConfig(const ClusterCampaignConfig &config,
                   std::uint64_t index)
{
    validate(config);
    if (index >= clusterCampaignTrials(config))
        fatal("cluster campaign: trial index ", index,
                   " past the ", clusterCampaignTrials(config),
                   "-trial grid");

    // Decode replicas-major, then intensity, then mode, then seed.
    const std::uint64_t seedIdx = index % config.seedsPerCell;
    std::uint64_t cell = index / config.seedsPerCell;
    const std::size_t modeIdx = cell % config.modes.size();
    cell /= config.modes.size();
    const std::size_t intIdx = cell % config.intensities.size();
    cell /= config.intensities.size();
    const std::size_t repIdx = cell;

    cluster::ClusterConfig cc;
    cc.mode = config.modes[modeIdx];
    cc.replicas = config.replicaCounts[repIdx];
    cc.racks = 2;

    const std::uint32_t intensity = config.intensities[intIdx];
    const StormShape shape = shapeOf(intensity, cc.racks);
    cc.storms = shape.storms;
    cc.stormRackSpan = shape.rackSpan;

    cc.runFor = config.runFor;
    cc.drainGrace = config.drainGrace;
    cc.fleet.clients = config.clients;
    cc.fleet.arrivalsPerSec = config.arrivalsPerSec;

    // Small kernel population: a trial holds up to five machines.
    cc.userProcesses = 6;
    cc.kernelThreads = 4;
    cc.deviceCount = 12;

    // One stream per grid position: the *same* seed index replays
    // identical storm/arrival schedules against every mode in the
    // cell's column, so the availability comparison is paired. The
    // column packs (repIdx, intIdx, seedIdx) into disjoint wide
    // fields — validate() bounds each so they cannot collide.
    const std::uint64_t column =
        ((std::uint64_t(repIdx) * 256 + std::uint64_t(intIdx)) << 32)
        | std::uint64_t(seedIdx);
    cc.seed = Rng::streamSeed(config.seed, 0x636c7573ULL + column);
    return cc;
}

ClusterCampaignResult
runClusterCampaign(const ClusterCampaignConfig &config)
{
    validate(config);

    const std::uint64_t trials = clusterCampaignTrials(config);
    const std::size_t cellCount = config.replicaCounts.size()
                                  * config.intensities.size()
                                  * config.modes.size();

    sim::ParallelExecutor pool(config.threads);
    const std::vector<cluster::ClusterResult> runs =
        pool.map<cluster::ClusterResult>(
            trials, [&config](std::uint64_t index) {
                return cluster::runCluster(
                    clusterTrialConfig(config, index));
            });

    // Fold in canonical index order: trial i belongs to cell
    // i / seedsPerCell, and cells come out replicas-major.
    ClusterCampaignResult result;
    result.threads = config.threads;
    result.trials = trials;
    result.cells.resize(cellCount);

    for (std::uint64_t i = 0; i < trials; ++i) {
        const cluster::ClusterResult &r = runs[i];
        const std::size_t cellIdx =
            static_cast<std::size_t>(i / config.seedsPerCell);
        ClusterCellStats &cell = result.cells[cellIdx];

        if (cell.trials == 0) {
            std::size_t c = cellIdx;
            const std::size_t modeIdx = c % config.modes.size();
            c /= config.modes.size();
            cell.intensity =
                config.intensities[c % config.intensities.size()];
            cell.replicas =
                config.replicaCounts[c / config.intensities.size()];
            cell.mode = config.modes[modeIdx];
            cell.modeName = net::persistModeName(cell.mode);
        }

        ++cell.trials;
        cell.cutsInjected += r.cutsInjected;
        cell.writeAvailMean += r.writeAvailability;
        cell.writeAvailMin =
            std::min(cell.writeAvailMin, r.writeAvailability);
        cell.readAvailMean += r.readAvailability;
        cell.readAvailMin =
            std::min(cell.readAvailMin, r.readAvailability);
        cell.worstWriteGap = std::max(cell.worstWriteGap,
                                      r.worstWriteGap);
        cell.readOnlySpans += r.readOnlySpans;
        cell.completed += r.completed;
        cell.failed += r.failed;
        cell.ackedPuts += r.ackedPuts;
        cell.redirects += r.redirects;
        cell.elections += r.elections;
        cell.leaderChanges += r.leaderChanges;
        cell.stepDowns += r.stepDowns;
        cell.syncDeltas += r.syncDeltas;
        cell.syncFulls += r.syncFulls;
        cell.syncBytes += r.syncBytes;
        cell.resumes += r.resumes;
        cell.coldBoots += r.coldBoots;
        cell.degradedColdBoots += r.degradedColdBoots;
        cell.lostAckedPuts += r.lostAckedPuts;
        cell.splitBrainEpochs += r.splitBrainEpochs;
        cell.divergentCommits += r.divergentCommits;
        cell.violations += r.violations.size();

        result.lostAckedPuts += r.lostAckedPuts;
        result.splitBrainEpochs += r.splitBrainEpochs;
        result.divergentCommits += r.divergentCommits;
        result.violations += r.violations.size();
        for (const std::string &note : r.violations) {
            std::ostringstream tagged;
            tagged << "trial " << i << " [" << r.modeName << " x"
                   << r.replicas << "]: " << note;
            if (result.violationNotes.size() < 64)
                result.violationNotes.push_back(tagged.str());
        }
    }

    for (ClusterCellStats &cell : result.cells) {
        cell.writeAvailMean /= double(cell.trials);
        cell.readAvailMean /= double(cell.trials);
    }

    // Determinism anchor: every cell counter plus the per-trial run
    // digests, in canonical order.
    sim::Fnv64 fnv;
    fnv.mix(result.trials);
    for (const cluster::ClusterResult &r : runs)
        fnv.mix(r.digest);
    for (const ClusterCellStats &cell : result.cells) {
        fnv.mix(cell.replicas);
        fnv.mix(cell.intensity);
        fnv.mix(static_cast<std::uint64_t>(cell.mode));
        fnv.mix(cell.trials);
        fnv.mix(cell.cutsInjected);
        fnv.mix(static_cast<std::uint64_t>(cell.worstWriteGap));
        fnv.mix(cell.readOnlySpans);
        fnv.mix(cell.completed);
        fnv.mix(cell.failed);
        fnv.mix(cell.ackedPuts);
        fnv.mix(cell.redirects);
        fnv.mix(cell.elections);
        fnv.mix(cell.leaderChanges);
        fnv.mix(cell.stepDowns);
        fnv.mix(cell.syncDeltas);
        fnv.mix(cell.syncFulls);
        fnv.mix(cell.syncBytes);
        fnv.mix(cell.resumes);
        fnv.mix(cell.coldBoots);
        fnv.mix(cell.degradedColdBoots);
        fnv.mix(cell.lostAckedPuts);
        fnv.mix(cell.splitBrainEpochs);
        fnv.mix(cell.divergentCommits);
        fnv.mix(cell.violations);
    }
    result.digest = fnv.h;
    return result;
}

} // namespace lightpc::fault
