#include "fault/campaign.hh"

#include <algorithm>
#include <functional>
#include <sstream>

#include "fault/fault_injector.hh"
#include "fault/power_rail.hh"
#include "kernel/kernel.hh"
#include "mem/backing_store.hh"
#include "mem/timed_mem.hh"
#include "net/kv_service.hh"
#include "pecos/sng.hh"
#include "persist/checkpoint.hh"
#include "power/power_model.hh"
#include "psm/psm.hh"
#include "sim/digest.hh"
#include "sim/parallel.hh"
#include "sim/rng.hh"

namespace lightpc::fault
{

const char *
cutPhaseName(CutPhase phase)
{
    switch (phase) {
      case CutPhase::ProcessStop: return "process-stop";
      case CutPhase::DeviceStop: return "device-stop";
      case CutPhase::EpCut: return "ep-cut";
      case CutPhase::PostCommit: return "post-commit";
      case CutPhase::MidDump: return "mid-dump";
      case CutPhase::CommitWindow: return "commit-window";
      case CutPhase::Count: break;
    }
    return "?";
}

void
CampaignResult::merge(const CampaignResult &other)
{
    cuts += other.cuts;
    for (std::size_t p = 0; p < phaseCuts.size(); ++p)
        phaseCuts[p] += other.phaseCuts[p];
    resumes += other.resumes;
    coldBoots += other.coldBoots;
    droppedWrites += other.droppedWrites;
    tornWrites += other.tornWrites;
    violations += other.violations;
    for (const std::string &note : other.violationNotes) {
        if (violationNotes.size() >= 8)
            break;
        violationNotes.push_back(note);
    }
}

namespace
{

/** A MemoryPort view over the PSM (TimedMem plumbing). */
class PsmMemPort : public mem::MemoryPort
{
  public:
    explicit PsmMemPort(psm::Psm &psm) : psm(psm) {}

    mem::AccessResult
    access(const mem::MemRequest &req, Tick when) override
    {
        return psm.access(req, when);
    }

    Tick fence(Tick when) override { return psm.flush(when); }

  private:
    psm::Psm &psm;
};

void
countPhase(CampaignResult &result, CutPhase phase)
{
    ++result.phaseCuts[static_cast<std::size_t>(phase)];
}

void
flagViolation(CampaignResult &result, const std::string &note)
{
    ++result.violations;
    if (result.violationNotes.size() < 8)
        result.violationNotes.push_back(note);
}

/**
 * Static platform load while @p active cores compute and the rest
 * idle, with the OC-PMEM DIMMs always powered.
 */
double
phaseWatts(const power::PowerModel &model, std::uint32_t active,
           std::uint32_t idle, std::uint32_t pram_dimms)
{
    power::ActivitySample sample;
    sample.coresActive = active;
    sample.coresIdle = idle;
    sample.coreUtilization = 1.0;
    sample.pramDimms = pram_dimms;
    return model.staticWattsOf(sample);
}

/**
 * The per-trial cut tick: drain a stored-energy budget that is
 * @p frac of what the load profile consumes over the window of
 * interest, capped by what the PSU can physically store.
 */
Tick
cutFromEnergyFraction(const CampaignConfig &config,
                      const PowerRail &profile, Tick ac_loss,
                      Tick window_end, double frac)
{
    const double budget = std::min(
        frac * profile.energyUsedBy(ac_loss, window_end),
        config.psu.spec().storedJoules);

    power::PsuSpec spec = config.psu.spec();
    spec.storedJoules = budget;
    PowerRail scaled(power::PsuModel(spec), profile.loadAt(0));
    for (const LoadStep &step : profile.profile()) {
        if (step.at != 0)
            scaled.addStep(step.at, step.watts);
    }
    return scaled.failTick(ac_loss);
}

/**
 * Campaign RNG seed: user seed + mode salt + PSU name, so the two
 * PSUs probe different cut ticks instead of replaying each other.
 * Trial i draws from the independent stream
 * Rng(Rng::streamSeed(campaignSeed(...), i)) — a pure function of
 * (config, i), which is what lets the trial pool run seeds in any
 * order and still reproduce the sequential campaign bit-for-bit.
 */
std::uint64_t
campaignSeed(const CampaignConfig &config, std::uint64_t salt)
{
    std::uint64_t h = 0xcbf29ce484222325ULL ^ config.seed ^ salt;
    for (const char c : config.psu.spec().name)
        h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ULL;
    return h;
}

/** Sweep position of trial @p i, jittered inside its stratum. */
double
sweepFraction(std::uint64_t i, std::uint64_t cuts, Rng &rng)
{
    const double lo = 0.02;
    const double hi = 1.25;
    return lo
        + (hi - lo) * (static_cast<double>(i) + rng.uniform())
              / static_cast<double>(std::max<std::uint64_t>(cuts, 1));
}

/**
 * The deterministic reduction driver every mode shares: fan
 * config.cuts isolated trials across the pool, merge the per-trial
 * results in ascending seed order, stamp mode/PSU, and digest the
 * merged counters. @p trial must be a pure function of its index —
 * it is invoked concurrently from multiple workers.
 */
CampaignResult
runSeededTrials(const CampaignConfig &config, const char *mode,
                const std::function<CampaignResult(std::uint64_t)>
                    &trial)
{
    sim::ParallelExecutor pool(config.threads);
    CampaignResult result = pool.reduce<CampaignResult>(
        config.cuts, CampaignResult{}, trial,
        [](CampaignResult &acc, const CampaignResult &partial) {
            acc.merge(partial);
        });
    result.mode = mode;
    result.psu = config.psu.spec().name;

    sim::Fnv64 digest;
    digest.mix(result.cuts);
    for (const std::uint64_t c : result.phaseCuts)
        digest.mix(c);
    digest.mix(result.resumes);
    digest.mix(result.coldBoots);
    digest.mix(result.droppedWrites);
    digest.mix(result.tornWrites);
    digest.mix(result.violations);
    result.digest = digest.h;
    return result;
}

} // namespace

CampaignResult
runSngCampaign(const CampaignConfig &config)
{
    const power::PowerModel power_model;

    // Dry run: phase boundaries (construction is deterministic, so
    // every trial's Stop timeline is identical to this one).
    pecos::StopReport dry;
    std::uint32_t cores = 0;
    std::uint32_t dimms = 0;
    {
        kernel::Kernel kern;
        psm::Psm psm;
        mem::BackingStore store;
        pecos::Sng sng(kern, psm, store, {});
        dry = sng.stop(0);
        cores = kern.cores();
        dimms = psm.params().dimms;
    }

    // Load profile over the Stop phases: Drive-to-Idle runs every
    // core hot, Auto-Stop leaves the master active, the EP-cut runs
    // with the workers offlined.
    PowerRail profile(config.psu,
                      phaseWatts(power_model, cores, 0, dimms));
    profile.addStep(dry.processStopDone,
                    phaseWatts(power_model, 1, cores - 1, dimms));
    profile.addStep(dry.deviceStopDone,
                    phaseWatts(power_model, 1, 0, dimms));
    const Tick window_end =
        dry.offlineDone + (dry.offlineDone - dry.start) / 4;

    const std::uint64_t seed = campaignSeed(config, 0x536e47ULL);

    return runSeededTrials(config, "SnG", [&config, profile,
                                           window_end, seed](
                                              std::uint64_t i) {
        CampaignResult result;
        Rng rng(Rng::streamSeed(seed, i));

        const Tick cut = cutFromEnergyFraction(
            config, profile, 0, window_end,
            sweepFraction(i, config.cuts, rng));

        kernel::Kernel kern;
        psm::Psm psm;
        mem::BackingStore store;
        pecos::Sng sng(kern, psm, store, {});
        FaultInjector injector(store);

        const kernel::SystemSnapshot before = kern.snapshot();
        injector.armCut(cut, rng.next());

        const pecos::StopReport stop = sng.stop(0);
        result.droppedWrites += stop.writesDropped;
        result.tornWrites += stop.writesTorn;

        const CutPhase phase = cut <= stop.processStopDone
            ? CutPhase::ProcessStop
            : cut <= stop.deviceStopDone ? CutPhase::DeviceStop
            : cut <= stop.commitAt ? CutPhase::EpCut
                                   : CutPhase::PostCommit;
        countPhase(result, phase);

        // Power loss: everything volatile is gone. The PCBs get
        // scrambled so a resume that "works" by reading stale DRAM
        // instead of OC-PMEM cannot pass the register check.
        kern.scramble(rng);
        injector.powerRestored();

        const bool expect_resume = stop.commitAt < cut;
        if (sng.hasCommit() != expect_resume) {
            std::ostringstream note;
            note << "SnG cut@" << cut << " " << cutPhaseName(phase)
                 << ": commit durable=" << sng.hasCommit()
                 << " expected=" << expect_resume;
            flagViolation(result, note.str());
        }

        const pecos::GoReport go = sng.resume(cut + 100 * tickMs);
        if (go.coldBoot == expect_resume) {
            std::ostringstream note;
            note << "SnG cut@" << cut << " " << cutPhaseName(phase)
                 << ": coldBoot=" << go.coldBoot
                 << " but commit durable=" << expect_resume;
            flagViolation(result, note.str());
        }

        if (!go.coldBoot) {
            // Byte-exact register + device-cookie round-trip through
            // OC-PMEM (the scramble above guarantees stale volatile
            // copies cannot pass).
            const kernel::SystemSnapshot after = kern.snapshot();
            bool regs_ok =
                after.entries.size() == before.entries.size()
                && after.deviceCookies == before.deviceCookies;
            for (std::size_t p = 0; regs_ok
                 && p < after.entries.size(); ++p) {
                regs_ok = after.entries[p].pid
                        == before.entries[p].pid
                    && after.entries[p].regs
                        == before.entries[p].regs;
            }
            if (!regs_ok) {
                std::ostringstream note;
                note << "SnG cut@" << cut
                     << ": resumed with corrupt register state";
                flagViolation(result, note.str());
            }
            ++result.resumes;
        } else {
            ++result.coldBoots;
        }
        ++result.cuts;
        return result;
    });
}

namespace
{

/** Shared fabric of one image-baseline trial. */
struct ImageRig
{
    mem::BackingStore store;
    psm::Psm psm;
    PsmMemPort port{psm};
    mem::TimedMem pmem{port, &store};
};

constexpr std::uint64_t sysPcBaseBytes = 4 << 20;
constexpr std::uint64_t sysPcDumpBytes = 8 << 20;

} // namespace

CampaignResult
runSysPcCampaign(const CampaignConfig &config)
{
    const power::PowerModel power_model;

    // Dry run (with a base image) for the dump/commit windows used
    // by the forced commit-window trials.
    Tick dry_ac = 0;
    Tick dry_body_done = 0;
    Tick dry_commit_at = 0;
    std::uint32_t dimms = 0;
    std::uint32_t cores = kernel::KernelParams().cores;
    {
        ImageRig rig;
        persist::SysPc syspc(rig.pmem);
        Tick t = syspc.dumpImageCommitted(0, sysPcBaseBytes, 7);
        dry_ac = t + tickMs;
        syspc.dumpImageCommitted(dry_ac, sysPcDumpBytes, 8);
        dry_body_done = syspc.lastBodyDoneAt();
        dry_commit_at = syspc.lastCommitAt();
        dimms = rig.psm.params().dimms;
    }

    // Hibernate runs every core flat out until the rails die.
    const double dump_watts = phaseWatts(power_model, cores, 0, dimms);
    const std::uint64_t seed = campaignSeed(config, 0x537973ULL);

    return runSeededTrials(config, "SysPC", [&config, dry_ac,
                                             dry_body_done,
                                             dry_commit_at,
                                             dump_watts, seed](
                                                std::uint64_t i) {
        CampaignResult result;
        Rng rng(Rng::streamSeed(seed, i));

        // Every 8th trial aims inside the commit record's own write
        // — a window far too narrow for the energy sweep to hit.
        const bool force_commit_window = i % 8 == 7
            && dry_commit_at > dry_body_done;
        const bool have_base = force_commit_window || rng.chance(0.5);

        ImageRig rig;
        persist::SysPc syspc(rig.pmem);
        FaultInjector injector(rig.store);

        Tick t = 0;
        if (have_base)
            t = syspc.dumpImageCommitted(0, sysPcBaseBytes,
                                         rng.next());
        const Tick ac = t + tickMs;

        Tick cut;
        if (force_commit_window) {
            cut = dry_body_done + 1
                + rng.below(dry_commit_at - dry_body_done);
        } else {
            PowerRail profile(config.psu, dump_watts);
            const Tick limit = ac + (dry_commit_at - dry_ac)
                + (dry_commit_at - dry_ac) / 4;
            cut = cutFromEnergyFraction(
                config, profile, ac, limit,
                sweepFraction(i, config.cuts, rng));
        }

        injector.armCut(cut, rng.next());
        syspc.dumpImageCommitted(ac, sysPcDumpBytes, rng.next());
        const Tick body_done = syspc.lastBodyDoneAt();
        const Tick commit_at = syspc.lastCommitAt();
        result.droppedWrites += rig.store.cutStats().droppedWrites;
        result.tornWrites += rig.store.cutStats().tornWrites;

        countPhase(result, cut <= body_done ? CutPhase::MidDump
                       : cut <= commit_at ? CutPhase::CommitWindow
                                          : CutPhase::PostCommit);

        injector.powerRestored();
        syspc.recover(cut + 100 * tickMs);
        const std::uint64_t got = syspc.recoveredSeq();
        const std::uint64_t base_seq = have_base ? 1 : 0;
        const std::uint64_t final_seq = base_seq + 1;

        // Resume iff the commit record beat the rails; a cut inside
        // the record's own write may legally land it whole (it is
        // then checksum-valid over a fully durable body) or tear it
        // (then it must read as "no commit"), never anything else.
        bool ok;
        if (commit_at < cut)
            ok = got == final_seq;
        else if (cut <= body_done)
            ok = got == base_seq;
        else
            ok = got == base_seq || got == final_seq;
        if (ok && got == 2)
            ok = syspc.committedImageIntact(syspc.committedImage());

        if (!ok) {
            std::ostringstream note;
            note << "SysPC cut@" << cut << " recovered seq " << got
                 << " (base " << base_seq << ", commit@" << commit_at
                 << ")";
            flagViolation(result, note.str());
        }
        got != 0 ? ++result.resumes : ++result.coldBoots;
        ++result.cuts;
        return result;
    });
}

CampaignResult
runSCheckPcCampaign(const CampaignConfig &config)
{
    const power::PowerModel power_model;
    constexpr std::uint64_t vm_bytes = 6 << 20;
    constexpr Tick period = 50 * tickMs;

    Tick dry_start = 0;
    Tick dry_commit_at = 0;
    std::uint32_t dimms = 0;
    const std::uint32_t cores = kernel::KernelParams().cores;
    {
        ImageRig rig;
        persist::SCheckPc scheck(rig.pmem, period);
        Tick t = scheck.dumpCommitted(0, vm_bytes, 7);
        t = scheck.dumpCommitted(t + period, vm_bytes, 8);
        dry_start = t + period;
        scheck.dumpCommitted(dry_start, vm_bytes, 9);
        dry_commit_at = scheck.lastCommitAt();
        dimms = rig.psm.params().dimms;
    }

    const double dump_watts = phaseWatts(power_model, cores, 0, dimms);
    const Tick dry_window = dry_commit_at - dry_start;
    const std::uint64_t seed = campaignSeed(config, 0x5343506bULL);

    return runSeededTrials(config, "S-CheckPC", [&config, dry_window,
                                                 dump_watts, seed](
                                                    std::uint64_t i) {
        CampaignResult result;
        Rng rng(Rng::streamSeed(seed, i));

        const bool have_history = rng.chance(0.7);

        ImageRig rig;
        persist::SCheckPc scheck(rig.pmem, period);
        FaultInjector injector(rig.store);

        Tick t = 0;
        std::uint64_t base_seq = 0;
        if (have_history) {
            t = scheck.dumpCommitted(0, vm_bytes, rng.next());
            t = scheck.dumpCommitted(t + period, vm_bytes, rng.next());
            t += period;
            base_seq = 2;
        }

        // The cut races the dump that is running when AC drops.
        PowerRail profile(config.psu, dump_watts);
        const Tick cut = cutFromEnergyFraction(
            config, profile, t, t + dry_window + dry_window / 4,
            sweepFraction(i, config.cuts, rng));

        injector.armCut(cut, rng.next());
        scheck.dumpCommitted(t, vm_bytes, rng.next());
        const Tick body_done = scheck.lastBodyDoneAt();
        const Tick commit_at = scheck.lastCommitAt();
        result.tornWrites += rig.store.cutStats().tornWrites;
        result.droppedWrites += rig.store.cutStats().droppedWrites;

        countPhase(result, cut <= body_done ? CutPhase::MidDump
                       : cut <= commit_at ? CutPhase::CommitWindow
                                          : CutPhase::PostCommit);

        injector.powerRestored();
        scheck.recoverAfterLoss(cut + 100 * tickMs);
        const std::uint64_t got = scheck.recoveredSeq();
        const std::uint64_t final_seq = base_seq + 1;

        bool ok;
        if (commit_at < cut)
            ok = got == final_seq;
        else if (cut <= body_done)
            ok = got == base_seq;
        else
            ok = got == base_seq || got == final_seq;
        if (ok && got == final_seq)
            ok = scheck.commitIntact(scheck.latestCommit());

        if (!ok) {
            std::ostringstream note;
            note << "S-CheckPC cut@" << cut << " recovered seq "
                 << got << " (base " << base_seq << ", commit@"
                 << commit_at << ")";
            flagViolation(result, note.str());
        }
        got != 0 ? ++result.resumes : ++result.coldBoots;
        ++result.cuts;
        return result;
    });
}

CampaignResult
runACheckPcCampaign(const CampaignConfig &config)
{
    // Per-function checkpoints: a run of small committed dumps, each
    // body + fence + ledger record, sized like the decorator's
    // stack/heap captures (4-32 KB).
    constexpr std::uint64_t checkpoints = 6;
    const persist::ACheckPcParams params;
    const mem::Addr ledger_base = params.pmemBase;
    const mem::Addr slot_base = params.pmemBase + (1 << 20);

    auto bodyBytes = [](std::uint64_t k) {
        return 4096 + (k * 2654435761ULL) % (28 << 10);
    };
    auto slotAddr = [slot_base](std::uint64_t seq) {
        return slot_base + (seq & 1) * (1 << 20);
    };

    // Dry run for the per-checkpoint body/commit windows.
    std::vector<Tick> dry_commit_at(checkpoints + 1, 0);
    {
        ImageRig rig;
        persist::CheckpointLedger ledger(rig.pmem, ledger_base);
        Tick t = 0;
        for (std::uint64_t k = 1; k <= checkpoints; ++k) {
            t += 200 * tickUs;  // the function body between dumps
            t = persist::writeBodyPattern(rig.pmem, t, slotAddr(k),
                                          bodyBytes(k), k);
            t = rig.pmem.fence(t);
            t = ledger.commit(t, k, k & 1, bodyBytes(k), k);
            dry_commit_at[k] = ledger.lastCommitAt();
        }
    }

    const Tick dry_total = dry_commit_at[checkpoints];
    const std::uint64_t seed = campaignSeed(config, 0x414350ULL);

    return runSeededTrials(config, "A-CheckPC", [bodyBytes, slotAddr,
                                                 ledger_base,
                                                 dry_total, seed](
                                                    std::uint64_t i) {
        CampaignResult result;
        Rng rng(Rng::streamSeed(seed, i));

        // A-CheckPC checkpoints continuously; the cut is uniform
        // over the run (plus a post-run margin), no rail profile
        // needed to reach every window.
        const Tick cut = 1 + rng.below(dry_total + dry_total / 8);

        ImageRig rig;
        persist::CheckpointLedger ledger(rig.pmem, ledger_base);
        FaultInjector injector(rig.store);
        injector.armCut(cut, rng.next());

        std::vector<std::uint64_t> seeds(checkpoints + 1, 0);
        std::vector<Tick> commit_at(checkpoints + 1, 0);
        std::vector<Tick> body_done(checkpoints + 1, 0);
        Tick t = 0;
        for (std::uint64_t k = 1; k <= checkpoints; ++k) {
            seeds[k] = rng.next();
            t += 200 * tickUs;
            t = persist::writeBodyPattern(rig.pmem, t, slotAddr(k),
                                          bodyBytes(k), seeds[k]);
            t = rig.pmem.fence(t);
            body_done[k] = t;
            t = ledger.commit(t, k, k & 1, bodyBytes(k), seeds[k]);
            commit_at[k] = ledger.lastCommitAt();
        }
        result.tornWrites += rig.store.cutStats().tornWrites;
        result.droppedWrites += rig.store.cutStats().droppedWrites;

        // Which window did the cut land in?
        CutPhase phase = CutPhase::PostCommit;
        std::uint64_t window_k = 0;  ///< checkpoint in flight at cut
        for (std::uint64_t k = 1; k <= checkpoints; ++k) {
            if (cut <= commit_at[k]) {
                window_k = k;
                phase = cut <= body_done[k] ? CutPhase::MidDump
                                            : CutPhase::CommitWindow;
                break;
            }
        }
        countPhase(result, phase);

        injector.powerRestored();
        const persist::CheckpointLedger::Record rec = ledger.latest();
        const std::uint64_t got = rec.seq;

        // The newest checkpoint whose record write beat the rails.
        std::uint64_t expect = 0;
        for (std::uint64_t k = 1; k <= checkpoints; ++k) {
            if (commit_at[k] < cut)
                expect = k;
        }
        // A cut inside record k's own write may land it whole — then
        // and only then may one newer commit than expected survive.
        const bool straddle_ok = phase == CutPhase::CommitWindow
            && got == window_k;

        bool ok = got == expect || straddle_ok;
        if (ok && got != 0) {
            ok = rec.valid()
                && persist::verifyBodyPattern(
                       rig.store, slotAddr(rec.seq),
                       std::min<std::uint64_t>(rec.bytes,
                                               bodyBytes(rec.seq)),
                       seeds[rec.seq]);
        }

        if (!ok) {
            std::ostringstream note;
            note << "A-CheckPC cut@" << cut << " recovered seq "
                 << got << " expected " << expect;
            flagViolation(result, note.str());
        }
        got != 0 ? ++result.resumes : ++result.coldBoots;
        ++result.cuts;
        return result;
    });
}

namespace
{

// The op-log campaign workload: enough PUTs to wrap a deliberately
// tiny ring several times (forcing stall drains), spread over few
// enough keys that every key sees multiple versions.
constexpr std::uint64_t oplogPuts = 32;
constexpr std::uint64_t oplogKeys = 8;

net::KvParams
oplogCampaignParams()
{
    net::KvParams params;
    params.writePath = net::WritePath::OpLog;
    params.keyCapacity = 64;
    params.dedupCapacity = 256;
    params.oplog.capacity = 8 * net::OpLog::recordBytes;
    return params;
}

net::RpcRequest
oplogPutReq(std::uint64_t id, std::uint64_t key, std::uint64_t seed)
{
    net::RpcRequest req;
    req.reqId = id;
    req.client = static_cast<std::uint32_t>(id % 5);
    req.op = workload::KvOp::Put;
    req.key = key;
    req.valueSeed = seed;
    req.deadline = maxTick;
    return req;
}

} // namespace

CampaignResult
runOpLogCampaign(const CampaignConfig &config)
{
    // Dry run for the timeline length. Service times are independent
    // of payload seeds and of the cut (the media drops writes without
    // changing their timing), so every trial ends at this same tick.
    Tick dry_total = 0;
    std::vector<std::pair<Tick, Tick>> dry_commits;
    {
        ImageRig rig;
        net::KvService svc(rig.store, rig.pmem,
                           oplogCampaignParams());
        Tick t = 0;
        for (std::uint64_t p = 1; p <= oplogPuts; ++p) {
            svc.execute(t, oplogPutReq(p, 1 + (p - 1) % oplogKeys, p));
            if (p % 4 == 0) {
                const Tick start = t;
                svc.logCommit(t);
                dry_commits.emplace_back(start, t);
            }
            if (p % 8 == 0)
                svc.logDrain(t, 2);
        }
        const Tick start = t;
        svc.logCommit(t);
        dry_commits.emplace_back(start, t);
        dry_total = t;
    }

    const std::uint64_t seed = campaignSeed(config, 0x4f704c6fULL);

    return runSeededTrials(config, "SnG-OpLog", [dry_total,
                                                 dry_commits, seed](
                                                    std::uint64_t i) {
        CampaignResult result;
        Rng rng(Rng::streamSeed(seed, i));

        // The PUT stream checkpoints durability continuously (every
        // group commit, plus stall drains inside appends), so a
        // uniform cut reaches every window without a rail profile.
        // Every 8th trial aims inside a group commit's own tail
        // store + fence — a window far too narrow for the uniform
        // sweep to hit reliably.
        Tick cut = 1 + rng.below(dry_total + dry_total / 8);
        if (i % 8 == 7) {
            const auto &w = dry_commits[rng.below(dry_commits.size())];
            if (w.second > w.first + 1)
                cut = w.first + 1 + rng.below(w.second - w.first);
        }

        ImageRig rig;
        net::KvService svc(rig.store, rig.pmem,
                           oplogCampaignParams());
        FaultInjector injector(rig.store);
        injector.armCut(cut, rng.next());

        // Oracle bookkeeping (1-based by request ID).
        std::vector<std::uint64_t> keys(oplogPuts + 1, 0);
        std::vector<std::uint64_t> seeds(oplogPuts + 1, 0);
        std::vector<std::pair<Tick, Tick>> commit_windows;

        // Records guaranteed durable: covered by any commit (explicit
        // group commit or a stall drain's inline one) whose stores all
        // completed before the cut.
        std::uint64_t committed_min = 0;
        // Records that can possibly survive: append started pre-cut.
        std::uint64_t append_bound = 0;

        Tick t = 0;
        auto noteDurable = [&](Tick done) {
            if (done >= cut)
                return;
            committed_min = std::max(
                committed_min, svc.stats().logAppends
                                   - svc.logUncommittedRecords());
        };
        for (std::uint64_t p = 1; p <= oplogPuts; ++p) {
            keys[p] = 1 + (p - 1) % oplogKeys;
            seeds[p] = rng.next();
            if (t < cut)
                ++append_bound;
            svc.execute(t, oplogPutReq(p, keys[p], seeds[p]));
            noteDurable(t);
            if (p % 4 == 0) {
                const Tick start = t;
                svc.logCommit(t);
                commit_windows.emplace_back(start, t);
                noteDurable(t);
            }
            if (p % 8 == 0)
                svc.logDrain(t, 2);
        }
        {
            const Tick start = t;
            svc.logCommit(t);
            commit_windows.emplace_back(start, t);
            noteDurable(t);
        }

        result.droppedWrites += rig.store.cutStats().droppedWrites;
        result.tornWrites += rig.store.cutStats().tornWrites;

        CutPhase phase = CutPhase::PostCommit;
        if (cut <= commit_windows.back().second) {
            phase = CutPhase::MidDump;
            for (const auto &w : commit_windows) {
                if (cut > w.first && cut <= w.second) {
                    phase = CutPhase::CommitWindow;
                    break;
                }
            }
        }
        countPhase(result, phase);

        injector.powerRestored();

        // Crash recovery on the same store: reopen the pool (rolling
        // back a torn apply transaction), scan the log from the
        // durable head, replay, then drain whatever the scan rebuilt.
        Tick rt = cut + 100 * tickMs;
        svc.recover(rt);
        svc.logDrainAll(rt);

        // The applied set must be an exact prefix of the append
        // sequence, bracketed by the durable-commit floor and the
        // appends-started ceiling.
        const std::uint64_t got = svc.appliedCount();
        bool ok = got >= committed_min && got <= append_bound
            && svc.compactedCount() == 0;
        if (ok) {
            std::vector<std::uint64_t> ids = svc.appliedIds();
            ok = ids.size() == got;
            if (ok) {
                std::sort(ids.begin(), ids.end());
                for (std::uint64_t p = 0; ok && p < got; ++p)
                    ok = ids[p] == p + 1;
            }
        }
        // Key table == the prefix's oracle, byte for byte.
        for (std::uint64_t k = 1; ok && k <= oplogKeys; ++k) {
            std::uint64_t version = 0;
            std::uint64_t last = 0;
            for (std::uint64_t p = 1; p <= got; ++p) {
                if (keys[p] == k) {
                    ++version;
                    last = p;
                }
            }
            const std::optional<net::KvKeyState> state = svc.lookup(k);
            if (version == 0)
                ok = !state.has_value();
            else
                ok = state && state->version == version
                    && state->lastReqId == last
                    && state->valueSeed == seeds[last];
        }

        if (!ok) {
            std::ostringstream note;
            note << "SnG-OpLog cut@" << cut << " "
                 << cutPhaseName(phase) << ": applied " << got
                 << " records (floor " << committed_min << ", ceiling "
                 << append_bound << ") or key table off-oracle";
            flagViolation(result, note.str());
        }
        got != 0 ? ++result.resumes : ++result.coldBoots;
        ++result.cuts;
        return result;
    });
}

} // namespace lightpc::fault
