/**
 * @file
 * Power-cut fault-injection campaigns.
 *
 * The paper's durability argument is an invariant, not a latency: at
 * *every* possible power-cut instant the machine must either resume
 * from a durable commit or come up cold — never a third outcome
 * (torn resume, resurrected pre-cut state, lost committed work). A
 * campaign sweeps seeded cut ticks across one persistence mechanism:
 * each trial derives the cut from a PowerRail draining a scaled
 * stored-energy budget, arms the FaultInjector, runs the power-down
 * path, simulates the loss of all volatile state, runs recovery, and
 * checks the invariant. Phase histograms prove the cuts actually
 * landed in every window (mid Drive-to-Idle, mid Auto-Stop, mid
 * EP-cut, mid image dump, inside the commit record's own write).
 */

#ifndef LIGHTPC_FAULT_CAMPAIGN_HH
#define LIGHTPC_FAULT_CAMPAIGN_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "power/psu.hh"
#include "sim/ticks.hh"

namespace lightpc::fault
{

/** Which window of the power-down path the cut landed in. */
enum class CutPhase
{
    ProcessStop,   ///< SnG Drive-to-Idle
    DeviceStop,    ///< SnG Auto-Stop (DCB/MMIO writes)
    EpCut,         ///< SnG offline + bootloader, before the commit
    PostCommit,    ///< after the commit store landed
    MidDump,       ///< image baselines: body still writing
    CommitWindow,  ///< inside the commit record's own write
    Count
};

const char *cutPhaseName(CutPhase phase);

/** One campaign's knobs. */
struct CampaignConfig
{
    /** Seeded cut trials to run. */
    std::uint64_t cuts = 50;

    std::uint64_t seed = 1;

    /** The PSU whose stored energy gets scaled per trial. */
    power::PsuModel psu = power::PsuModel::atx();

    /**
     * Host threads fanning the trials out (0 = hardware
     * concurrency). Every trial owns its rig and Rng stream and the
     * per-trial results merge in canonical seed order, so the
     * campaign aggregate — including its digest — is bit-identical
     * at every thread count.
     */
    unsigned threads = 1;
};

/** Aggregated outcome of one campaign. */
struct CampaignResult
{
    std::string mode;
    std::string psu;

    std::uint64_t cuts = 0;

    /** Cut counts per phase window. */
    std::array<std::uint64_t,
               static_cast<std::size_t>(CutPhase::Count)>
        phaseCuts{};

    /** Trials that recovered from a durable commit. */
    std::uint64_t resumes = 0;

    /** Trials that (correctly) came up with nothing durable. */
    std::uint64_t coldBoots = 0;

    /** Durability-cursor outcomes summed over all trials. */
    std::uint64_t droppedWrites = 0;
    std::uint64_t tornWrites = 0;

    /** Invariant violations (must be zero). */
    std::uint64_t violations = 0;
    std::vector<std::string> violationNotes;

    /**
     * FNV digest over every counter above, computed after the
     * canonical-order reduction (determinism anchor: equal at every
     * thread count).
     */
    std::uint64_t digest = 0;

    std::uint64_t
    phaseCount(CutPhase phase) const
    {
        return phaseCuts[static_cast<std::size_t>(phase)];
    }

    /** Fold another (partial) result's counters into this one. */
    void merge(const CampaignResult &other);
};

/**
 * SnG: cuts across Drive-to-Idle / Auto-Stop / EP-cut / post-commit.
 * Invariant: Go resumes iff the commit store beat the rails, and a
 * resume restores every PCB register file byte-exactly.
 */
CampaignResult runSngCampaign(const CampaignConfig &config);

/** SysPC: cuts across the hibernate dump and its commit record. */
CampaignResult runSysPcCampaign(const CampaignConfig &config);

/** S-CheckPC: cuts across periodic BLCR-style dumps. */
CampaignResult runSCheckPcCampaign(const CampaignConfig &config);

/** A-CheckPC: cuts across a run of per-function checkpoints. */
CampaignResult runACheckPcCampaign(const CampaignConfig &config);

/**
 * SnG-OpLog: cuts across a KvService PUT stream on the op-log write
 * path — mid-append, inside a group commit's tail store, and after
 * the final commit. Invariant: recovery + full drain always lands on
 * an exact prefix of the append sequence, at least every record
 * covered by a commit that beat the rails and never a record whose
 * append started after them, with the key table byte-exactly equal to
 * that prefix's oracle (versions, last writer, value seeds).
 */
CampaignResult runOpLogCampaign(const CampaignConfig &config);

} // namespace lightpc::fault

#endif // LIGHTPC_FAULT_CAMPAIGN_HH
