/**
 * @file
 * Power-rail droop model for fault-injection campaigns.
 *
 * PsuModel::holdupTime() answers "how long do the rails stay in
 * specification under a constant load?". During a real Stop the load
 * is anything but constant: Drive-to-Idle still runs every core hot,
 * Auto-Stop leaves only the master active, and the EP-cut runs from
 * the bootloader with the workers offlined. PowerRail integrates a
 * piecewise-constant load profile against the PSU's stored energy
 * and reports the exact tick the rails fall out of specification —
 * the power-cut tick the FaultInjector arms.
 */

#ifndef LIGHTPC_FAULT_POWER_RAIL_HH
#define LIGHTPC_FAULT_POWER_RAIL_HH

#include <vector>

#include "power/psu.hh"
#include "sim/ticks.hh"

namespace lightpc::fault
{

/** One piecewise-constant load step: @p watts from @p at onwards. */
struct LoadStep
{
    Tick at = 0;
    double watts = 0.0;
};

/**
 * One mains sag (brownout): for [at, at + duration) the input stage
 * only covers @p supplyFraction of the platform load, and the bulk
 * capacitors make up the difference. 0.0 is a full outage, 1.0 no
 * sag at all.
 */
struct SagEvent
{
    Tick at = 0;
    Tick duration = 0;
    double supplyFraction = 0.0;
};

/** What a sequence of sags did to the reserve. */
struct SagOutcome
{
    bool railsFailed = false;  ///< reserve hit zero inside a sag
    Tick failTick = maxTick;   ///< the tick it hit zero
    Tick recoveredAt = 0;      ///< end of the last sag when survived
    double minJoules = 0.0;    ///< reserve low-water mark
};

/**
 * Integrates the platform load against the PSU's bulk-capacitor
 * energy after AC loss.
 */
class PowerRail
{
  public:
    /** @param initial_watts The load from tick 0 onwards. */
    PowerRail(const power::PsuModel &psu, double initial_watts);

    /**
     * Append a load change. Steps must be added in increasing @p at
     * order; a step at or before the previous one replaces it from
     * that point on.
     */
    void addStep(Tick at, double watts);

    /** The load drawn at tick @p t. */
    double loadAt(Tick t) const;

    /**
     * The tick the rails fall out of specification when AC is
     * removed at @p ac_loss. maxTick when the profile never drains
     * the stored energy (zero load).
     */
    Tick failTick(Tick ac_loss) const;

    /** Hold-up interval from @p ac_loss (failTick - ac_loss). */
    Tick
    holdupFrom(Tick ac_loss) const
    {
        const Tick fail = failTick(ac_loss);
        return fail == maxTick ? maxTick : fail - ac_loss;
    }

    /**
     * Energy the profile consumes between @p ac_loss and @p until,
     * ignoring the PSU's actual reserve (campaigns scale stored
     * energy against this integral to place cuts).
     */
    double energyUsedBy(Tick ac_loss, Tick until) const;

    /** The load profile, in increasing-tick order. */
    const std::vector<LoadStep> &profile() const { return steps; }

    const power::PsuModel &psu() const { return _psu; }

    // --- brownout (partial sag) model -----------------------------

    /**
     * Append a mains sag. Sags must be added in increasing @p at
     * order and must not overlap.
     */
    void addSag(Tick at, Tick duration, double supply_fraction);

    const std::vector<SagEvent> &sags() const { return _sags; }

    /**
     * Run the reserve through every registered sag. During a sag the
     * capacitors drain at load * (1 - supplyFraction); between sags
     * the AC input recharges them at the PSU's rechargeWatts, capped
     * at the full reserve. The rails fail the instant the reserve
     * reaches zero *strictly inside* a sag — a sag whose duration is
     * exactly the hold-up floor is the boundary case that just
     * barely survives (the supply returns the same instant the
     * reserve empties).
     */
    SagOutcome evaluateSags() const;

  private:
    power::PsuModel _psu;
    std::vector<LoadStep> steps;
    std::vector<SagEvent> _sags;
};

} // namespace lightpc::fault

#endif // LIGHTPC_FAULT_POWER_RAIL_HH
