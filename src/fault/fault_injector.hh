/**
 * @file
 * Power-cut fault injector.
 *
 * The paper validates SnG by physically pulling AC power at
 * arbitrary moments; the FaultInjector is the simulator's plug. It
 * arms the functional store's durability cursor at the tick the
 * rails fall out of specification (typically computed by a
 * PowerRail), so that every byte a persistence mechanism writes
 * after that moment is dropped — or, for the one cache line in
 * flight, torn. Disarm it when "AC returns" and run the recovery
 * path; the campaign invariants then check that the machine either
 * resumes from the last durable commit or cold-boots, never a third
 * outcome.
 */

#ifndef LIGHTPC_FAULT_FAULT_INJECTOR_HH
#define LIGHTPC_FAULT_FAULT_INJECTOR_HH

#include <cstdint>

#include "mem/backing_store.hh"
#include "sim/ticks.hh"

namespace lightpc::fault
{

/**
 * Arms and disarms power cuts on one functional store.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(mem::BackingStore &store_in)
        : store(store_in)
    {}

    /** Disarms on destruction so a store never outlives its cut. */
    ~FaultInjector()
    {
        if (_armed)
            store.disarmPowerCut();
    }

    FaultInjector(const FaultInjector &) = delete;
    FaultInjector &operator=(const FaultInjector &) = delete;

    /**
     * Rails out of specification at @p cut_tick; @p seed drives the
     * torn-line RNG.
     */
    void
    armCut(Tick cut_tick, std::uint64_t seed)
    {
        store.armPowerCut(cut_tick, seed);
        _armed = true;
        _cut = cut_tick;
        ++_cuts;
    }

    /** AC restored: durable writes flow again. Stats stay readable. */
    void
    powerRestored()
    {
        store.disarmPowerCut();
        _armed = false;
    }

    bool armed() const { return _armed; }
    Tick cutTick() const { return _cut; }

    /** Cuts armed over this injector's lifetime. */
    std::uint64_t cuts() const { return _cuts; }

    /** Outcome counters of the current/last cut. */
    const mem::DurabilityCutStats &stats() const
    {
        return store.cutStats();
    }

  private:
    mem::BackingStore &store;
    bool _armed = false;
    Tick _cut = 0;
    std::uint64_t _cuts = 0;
};

} // namespace lightpc::fault

#endif // LIGHTPC_FAULT_FAULT_INJECTOR_HH
