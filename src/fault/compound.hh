/**
 * @file
 * Compound-failure engine: nested cuts, brownouts, cut storms, and a
 * recovery supervisor that converges.
 *
 * PR 2's campaigns inject exactly one clean cut per trial into steady
 * state. Real outages are messier — brownouts that sag and recover,
 * back-to-back cut storms spaced closer than one PSU hold-up, and
 * (worst of all) cuts that land *inside* the Stop drain or the Go
 * resume path, exactly where the recovery code itself is running.
 * This module provides:
 *
 *  - CutStorm: seeded schedule generator for Poisson cut storms with
 *    sub-hold-up spacing, plus per-sub-phase targeted cuts derived
 *    from a dry-run Stop/Go timeline.
 *  - RecoverySupervisor: a watchdog that replays boot -> resume until
 *    the Go converges (its commit-clear store lands), treats a
 *    resume overrunning its deadline as a livelock (the watchdog
 *    reset *is* a power cut at the deadline tick), retries torn
 *    resumes with capped exponential backoff, and escalates to a
 *    degraded cold boot after K failed attempts.
 *  - runCompoundCampaign(): seeded trials across five scenario
 *    classes — cut-during-Stop at every drain sub-phase,
 *    cut-during-Go with a double-resume idempotence proof,
 *    brownout-abort-and-continue (plus baseline capped-backoff
 *    retries), >= 3-cut Poisson storms against a single backing
 *    store (multi-cut-epoch durability), and op-log torn-tail
 *    recovery: a KvService on the op-log write path takes a cut
 *    mid-stream on a deliberately tiny (wrapping) log, and two
 *    independent recoveries of the same durable image must replay to
 *    byte-identical stores.
 *
 * The invariant is PR 2's, extended through recovery: at every cut
 * instant — including cuts into Stop's drain and Go's replay — the
 * machine either converges onto the durable EP-cut or cold-boots,
 * never a third outcome; and re-running a torn resume (or an op-log
 * replay) from the same durable image is byte-identical to running
 * it once.
 */

#ifndef LIGHTPC_FAULT_COMPOUND_HH
#define LIGHTPC_FAULT_COMPOUND_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "kernel/kernel.hh"
#include "mem/backing_store.hh"
#include "pecos/sng.hh"
#include "power/psu.hh"
#include "sim/rng.hh"
#include "sim/ticks.hh"

namespace lightpc::fault
{

/** One replica's cut instant inside a correlated storm. */
struct ReplicaCut
{
    std::uint32_t replica = 0;
    Tick at = 0;
};

/**
 * One rack-correlated storm: every replica in the struck racks takes
 * a cut inside one window (shorter than a PSU hold-up, so the fleet
 * sees them as a single correlated event, not independent faults).
 */
struct CorrelatedStorm
{
    Tick startAt = 0;                  ///< window start
    std::vector<ReplicaCut> cuts;      ///< ascending by (at, replica)
    std::vector<std::uint32_t> racks;  ///< racks struck (ascending)
};

/**
 * Seeded cut-schedule generator.
 */
class CutStorm
{
  public:
    explicit CutStorm(std::uint64_t seed) : rng(seed) {}

    /**
     * A Poisson storm: @p count cut instants starting at or after
     * @p start, with exponentially distributed gaps of mean
     * @p mean_gap ticks (every gap at least one tick). With
     * mean_gap under the PSU hold-up, later cuts land inside the
     * recovery from earlier ones.
     */
    std::vector<Tick> poisson(Tick start, Tick mean_gap,
                              std::size_t count);

    /** Uniform tick in [lo, hi); lo itself when the window is empty. */
    Tick uniformIn(Tick lo, Tick hi);

    /**
     * Contiguous rack assignment: replica @p replica of @p replicas
     * lives in rack replica * racks / replicas. With 3 replicas over
     * 2 racks, rack 0 holds {0, 1} — the majority rack, so a
     * one-rack storm against it is already a quorum-threatening
     * event.
     */
    static std::uint32_t rackOf(std::uint32_t replica,
                                std::uint32_t replicas,
                                std::uint32_t racks);

    /**
     * Rack-correlated storm schedule: @p storms storm windows, their
     * starts spread evenly (with jitter) across [@p start, @p end).
     * Each storm strikes @p rack_span racks — the first storm always
     * rack 0 (where the bootstrap leader lives), later storms
     * rng-picked — and every replica in a struck rack takes one cut
     * at an rng instant inside [startAt, startAt + @p window). The
     * schedule is a pure function of the generator seed and the
     * arguments — never of who leads at run time — so the same
     * schedule can be replayed against every persistence mode.
     */
    std::vector<CorrelatedStorm> correlated(
        Tick start, Tick end, std::size_t storms,
        std::uint32_t replicas, std::uint32_t racks,
        std::uint32_t rack_span, Tick window);

    Rng &generator() { return rng; }

  private:
    Rng rng;
};

/** Watchdog policy. */
struct SupervisorConfig
{
    /**
     * Livelock deadline: a Go still running this long after its
     * attempt started is declared hung, and the watchdog resets the
     * machine — modeled as a power cut at exactly this tick, so the
     * convergence store (the commit-clear) cannot land.
     */
    Tick resumeDeadline = 2 * tickSec;

    /** K: failed resume attempts before the degraded cold boot. */
    std::uint32_t maxAttempts = 4;

    /** First retry delay after a torn/hung resume. */
    Tick retryBackoff = 50 * tickMs;

    /** Exponential backoff cap. */
    Tick backoffCap = 400 * tickMs;
};

/** What one supervised recovery did. */
struct SupervisorOutcome
{
    bool converged = false;  ///< a resume (warm or cold) completed
    bool coldBoot = false;   ///< converged via the cold path
    bool degradedColdBoot = false;  ///< escalated after K failures

    std::uint32_t attempts = 0;      ///< resume attempts driven
    std::uint64_t livelocks = 0;     ///< watchdog-reset attempts
    std::size_t cutsConsumed = 0;    ///< external cuts that fired
    std::uint64_t staleWritesSeen = 0;  ///< dead-epoch writes dropped

    Tick convergedAt = 0;
};

/**
 * Replays boot -> resume until convergence.
 *
 * Convergence is defined by the Go path's linearization point: the
 * atomic commit-clear store. An attempt whose clear landed before
 * any cut has converged; an attempt preempted by a cut (external or
 * the watchdog's own deadline reset) left the durable EP-cut intact,
 * so the supervisor scrambles the (lost) volatile state, waits out a
 * capped exponential backoff, and replays the resume from the same
 * image — which is idempotent, because everything before the clear
 * only reads OC-PMEM. After K failed attempts the supervisor
 * invalidates the image and boots cold (degraded, but converged).
 */
class RecoverySupervisor
{
  public:
    RecoverySupervisor(pecos::Sng &sng, kernel::Kernel &kern,
                       mem::BackingStore &pmem,
                       const SupervisorConfig &config = {})
        : sng(sng), kern(kern), pmem(pmem), cfg(config)
    {}

    const SupervisorConfig &config() const { return cfg; }

    /**
     * Supervise recovery starting at @p when. @p cuts are the
     * remaining external cut instants (ascending); whichever of the
     * next external cut and the watchdog deadline comes first is
     * armed against each attempt. @p rng drives volatile-loss
     * scrambles and torn-line seeds. The store must be disarmed at
     * entry; it is disarmed again on return.
     */
    SupervisorOutcome supervise(Tick when,
                                const std::vector<Tick> &cuts,
                                Rng &rng);

  private:
    pecos::Sng &sng;
    kernel::Kernel &kern;
    mem::BackingStore &pmem;
    SupervisorConfig cfg;
};

/**
 * Digest of the full machine state: every PCB (pid, task state,
 * register file), every device cookie, and the OC-PMEM contents.
 * Two machines with equal digests are byte-identical as far as
 * persistence is concerned — the idempotence proof compares these.
 */
std::uint64_t machineStateDigest(const kernel::Kernel &kern,
                                 const mem::BackingStore &pmem);

/** Compound-campaign knobs. */
struct CompoundConfig
{
    std::uint64_t trials = 500;
    std::uint64_t seed = 2026;

    power::PsuModel psu = power::PsuModel::atx();

    SupervisorConfig supervisor;

    /** Poisson storm: cuts per trial is 3 + below(stormExtraCuts+1). */
    std::uint32_t stormExtraCuts = 2;

    /** Storm mean gap as a fraction of the measured hold-up. */
    double stormGapFraction = 0.6;

    /**
     * Host threads fanning the trials out (0 = hardware
     * concurrency). Each trial owns its rigs, Rng stream, and storm
     * generator — all pure functions of (seed, trial index) — and
     * the partials merge in canonical index order, so the campaign
     * aggregate and digest are bit-identical at every thread count.
     */
    unsigned threads = 1;
};

/** Aggregated compound-campaign outcome. */
struct CompoundResult
{
    std::string psu;
    std::uint64_t trials = 0;

    // Scenario-class populations.
    std::uint64_t stopCutTrials = 0;
    std::uint64_t goCutTrials = 0;
    std::uint64_t brownoutTrials = 0;
    std::uint64_t stormTrials = 0;
    std::uint64_t oplogTrials = 0;

    /** Cuts per Stop drain sub-phase (indexed by StopSubPhase). */
    std::array<std::uint64_t, 8> stopPhaseCuts{};

    /** Cuts per Go sub-phase (indexed by GoSubPhase). */
    std::array<std::uint64_t, 7> goPhaseCuts{};

    // Recovery outcomes.
    std::uint64_t resumes = 0;
    std::uint64_t coldBoots = 0;
    std::uint64_t degradedColdBoots = 0;
    std::uint64_t supervisorRetries = 0;
    std::uint64_t livelocks = 0;

    // Brownouts.
    std::uint64_t abortedStops = 0;      ///< sag recovered: in-place
    std::uint64_t abortContinues = 0;    ///< post-abort cycle survived
    std::uint64_t baselineRetries = 0;   ///< capped-backoff dump retries
    std::uint64_t baselineRecoveries = 0;

    // Go-path idempotence.
    std::uint64_t tornResumes = 0;
    std::uint64_t idempotenceChecks = 0;

    // Op-log torn-tail recovery.
    std::uint64_t oplogTornTails = 0;     ///< scans stopped by a tear
    std::uint64_t oplogReplayChecks = 0;  ///< byte-identity proofs run
    std::uint64_t oplogRecordsReplayed = 0;

    // Multi-epoch durability.
    std::uint64_t stormCutsTotal = 0;
    std::uint64_t maxCutEpochs = 0;      ///< most epochs on one store
    std::uint64_t staleWritesRejected = 0;

    // Cursor traffic.
    std::uint64_t droppedWrites = 0;
    std::uint64_t tornWrites = 0;

    /** Invariant violations (must stay zero). */
    std::uint64_t violations = 0;
    std::vector<std::string> violationNotes;

    /** FNV digest over every counter above (determinism anchor). */
    std::uint64_t digest = 0;

    std::uint64_t
    stopPhaseCount(pecos::StopSubPhase phase) const
    {
        return stopPhaseCuts[static_cast<std::size_t>(phase)];
    }

    std::uint64_t
    goPhaseCount(pecos::GoSubPhase phase) const
    {
        return goPhaseCuts[static_cast<std::size_t>(phase)];
    }

    /** Fold another (partial) result's counters into this one. */
    void merge(const CompoundResult &other);
};

/** Run one seeded compound campaign. */
CompoundResult runCompoundCampaign(const CompoundConfig &config);

} // namespace lightpc::fault

#endif // LIGHTPC_FAULT_COMPOUND_HH
