/**
 * @file
 * Media-error RAS campaigns.
 *
 * The power-cut campaigns (campaign.hh) attack the durability
 * invariant from the outside — AC loss at every instant. This
 * campaign attacks it from the inside: the media itself corrupts
 * data, at raw bit-error rates and wear levels swept per cell, and
 * the RAS pipeline must turn every corruption into one of exactly
 * three outcomes — a counted correction, a counted retirement, or a
 * contained machine check. The invariant is *zero silent data
 * corruption*: every decode runs the real codecs against ground
 * truth, and any mismatch that was not flagged is an sdcEvent.
 *
 * Each cell additionally exercises the MCE escalation arms: under
 * Contain the owning task is killed, the faulty line retired, and
 * the system must survive a subsequent SnG stop/resume; under
 * ResetColdBoot the machine check takes the OC-PMEM reset path. A
 * configurable fraction of trials also arms a power cut during the
 * SnG stop, composing the media-fault and power-fault models in one
 * trial.
 */

#ifndef LIGHTPC_FAULT_RAS_CAMPAIGN_HH
#define LIGHTPC_FAULT_RAS_CAMPAIGN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "psm/psm.hh"

namespace lightpc::fault
{

/** The RAS sweep's knobs. */
struct RasCampaignConfig
{
    /** Transient raw symbol-error rates swept. */
    std::vector<double> bers{0.0, 1e-5, 1e-4, 1e-3};

    /** Pre-conditioning wear levels swept (fraction of endurance). */
    std::vector<double> wearLevels{0.0, 0.95};

    /** Seeded trials per (ber, wear, policy) cell. */
    std::uint64_t seedsPerCell = 32;

    std::uint64_t seed = 1;

    /** Demand accesses per trial. */
    std::uint64_t opsPerTrial = 1200;

    /** Fraction of demand accesses that are writes. */
    double writeFraction = 0.3;

    /** Patrol-scrub step every this many demand accesses. */
    std::uint64_t scrubEveryOps = 64;

    /** Scrub budget per step (lines). */
    std::uint64_t scrubLinesPerStep = 32;

    /** Every Nth trial also arms a power cut during the SnG stop. */
    std::uint64_t powerCutEvery = 4;

    /** Stuck-at creation rate at full wear (see MediaFaultParams). */
    double wearStuckRate = 0.02;

    /** Retirement spare pool (physical line slots). */
    std::uint64_t spareLines = 2048;

    /** Hot working set: lines the demand traffic hammers. */
    std::uint64_t regionLines = 4096;

    /** User processes registered as owners of the working set. */
    std::uint32_t victims = 8;

    /**
     * Host threads fanning the trials out (0 = hardware
     * concurrency). Trial randomness is a pure function of the
     * flattened trial index, and per-trial partials merge in
     * canonical index order, so the sweep aggregate — including its
     * digest — is bit-identical at every thread count.
     */
    unsigned threads = 1;
};

/** Aggregates of one (ber, wear, policy) cell. */
struct RasCell
{
    double ber = 0.0;
    double wear = 0.0;
    std::string policy;

    std::uint64_t trials = 0;
    std::uint64_t checkedReads = 0;
    std::uint64_t corrected = 0;
    std::uint64_t symbolCorrections = 0;
    std::uint64_t parityRewrites = 0;
    std::uint64_t uncorrectable = 0;
    std::uint64_t retired = 0;
    std::uint64_t sdc = 0;
    std::uint64_t mceContained = 0;
    std::uint64_t mceColdBoots = 0;
};

/** Aggregated outcome of the whole sweep. */
struct RasCampaignResult
{
    std::uint64_t trials = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;

    /** The invariant: must be zero. */
    std::uint64_t sdcEvents = 0;

    std::uint64_t checkedReads = 0;
    std::uint64_t correctedReads = 0;
    std::uint64_t symbolCorrections = 0;
    std::uint64_t parityRewrites = 0;
    std::uint64_t uncorrectableReads = 0;

    std::uint64_t mceContained = 0;
    std::uint64_t mceColdBoots = 0;
    std::uint64_t tasksKilled = 0;
    std::uint64_t kernelEscalations = 0;

    std::uint64_t linesRetired = 0;
    std::uint64_t spareExhausted = 0;

    std::uint64_t scrubbedLines = 0;
    std::uint64_t scrubRepairs = 0;
    std::uint64_t scrubDeferrals = 0;

    /** Contain-arm trials that took >=1 contained MCE with the
     *  faulty line retired and then resumed cleanly from SnG. */
    std::uint64_t containSurvivedSng = 0;

    /** SnG outcomes across all trials. */
    std::uint64_t resumes = 0;
    std::uint64_t coldBootResumes = 0;

    /** Combined power-cut + media-fault trials. */
    std::uint64_t cutTrials = 0;
    std::uint64_t droppedWrites = 0;
    std::uint64_t tornWrites = 0;

    /** Invariant violations (must be zero). */
    std::uint64_t violations = 0;
    std::vector<std::string> violationNotes;

    std::vector<RasCell> cells;

    /**
     * FNV digest over the counters above and every cell, computed
     * after the canonical-order reduction (determinism anchor:
     * equal at every thread count).
     */
    std::uint64_t digest = 0;
};

/** Run the full (ber x wear x policy x seed) sweep. */
RasCampaignResult runRasCampaign(const RasCampaignConfig &config);

} // namespace lightpc::fault

#endif // LIGHTPC_FAULT_RAS_CAMPAIGN_HH
