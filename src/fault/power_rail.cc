#include "fault/power_rail.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace lightpc::fault
{

PowerRail::PowerRail(const power::PsuModel &psu, double initial_watts)
    : _psu(psu)
{
    steps.push_back({0, initial_watts});
}

void
PowerRail::addStep(Tick at, double watts)
{
    // Replace any step at or after `at` (profiles are rebuilt from
    // phase boundaries; out-of-order inserts are a caller bug except
    // for exact-tick replacement).
    while (!steps.empty() && steps.back().at >= at)
        steps.pop_back();
    if (steps.empty() && at != 0)
        fatal("PowerRail profile must start at tick 0");
    steps.push_back({at, watts});
}

double
PowerRail::loadAt(Tick t) const
{
    double watts = steps.front().watts;
    for (const LoadStep &step : steps) {
        if (step.at > t)
            break;
        watts = step.watts;
    }
    return watts;
}

double
PowerRail::energyUsedBy(Tick ac_loss, Tick until) const
{
    double joules = 0.0;
    Tick t = ac_loss;
    for (std::size_t i = 0; i < steps.size() && t < until; ++i) {
        const Tick seg_end = std::min(
            until, i + 1 < steps.size() ? steps[i + 1].at : maxTick);
        if (seg_end <= t)
            continue;
        joules += steps[i].watts * ticksToSec(seg_end - t);
        t = seg_end;
    }
    return joules;
}

Tick
PowerRail::failTick(Tick ac_loss) const
{
    double remaining = _psu.spec().storedJoules;
    if (remaining <= 0.0)
        return ac_loss;

    Tick t = ac_loss;
    for (std::size_t i = 0; i < steps.size(); ++i) {
        const Tick seg_end =
            i + 1 < steps.size() ? steps[i + 1].at : maxTick;
        if (seg_end <= t)
            continue;

        const double watts = steps[i].watts;
        if (watts <= 0.0) {
            if (seg_end == maxTick)
                return maxTick;  // the residual charge never drains
            t = seg_end;
            continue;
        }

        const double seconds_left = remaining / watts;
        const double ticks_left =
            seconds_left * static_cast<double>(tickSec);
        const double seg_ticks = static_cast<double>(seg_end - t);
        if (ticks_left < seg_ticks)
            return t + static_cast<Tick>(ticks_left);

        remaining -= watts * ticksToSec(seg_end - t);
        t = seg_end;
    }
    return t;
}

void
PowerRail::addSag(Tick at, Tick duration, double supply_fraction)
{
    if (!_sags.empty()
        && at < _sags.back().at + _sags.back().duration)
        fatal("sags must be added in order and must not overlap");
    if (supply_fraction < 0.0 || supply_fraction > 1.0)
        fatal("sag supply fraction must be within [0, 1]");
    _sags.push_back({at, duration, supply_fraction});
}

SagOutcome
PowerRail::evaluateSags() const
{
    const double full = _psu.spec().storedJoules;
    const double recharge = _psu.spec().rechargeWatts;

    SagOutcome out;
    out.minJoules = full;

    double joules = full;
    Tick prev_end = 0;
    for (const SagEvent &sag : _sags) {
        // AC is nominal between sags: refill, capped at the reserve.
        if (sag.at > prev_end && recharge > 0.0)
            joules = std::min(
                full,
                joules + recharge * ticksToSec(sag.at - prev_end));

        // Drain through the sag, segmented by the load profile.
        const Tick sag_end = sag.at + sag.duration;
        Tick t = sag.at;
        for (std::size_t i = 0; i < steps.size() && t < sag_end;
             ++i) {
            const Tick seg_end = std::min(
                sag_end,
                i + 1 < steps.size() ? steps[i + 1].at : maxTick);
            if (seg_end <= t)
                continue;

            const double drain =
                steps[i].watts * (1.0 - sag.supplyFraction);
            if (drain <= 0.0) {
                t = seg_end;
                continue;
            }

            const double ticks_left =
                (joules / drain) * static_cast<double>(tickSec);
            const double seg_ticks = static_cast<double>(seg_end - t);
            if (ticks_left < seg_ticks) {
                out.railsFailed = true;
                out.failTick = t + static_cast<Tick>(ticks_left);
                out.minJoules = 0.0;
                return out;
            }
            joules -= drain * ticksToSec(seg_end - t);
            t = seg_end;
        }

        out.minJoules = std::min(out.minJoules, joules);
        prev_end = sag_end;
    }
    out.recoveredAt = prev_end;
    return out;
}

} // namespace lightpc::fault
