/**
 * @file
 * Seeded cluster campaign: replicated-KV fleets under rack-correlated
 * cut storms, swept across replica count x storm intensity x all five
 * persistence modes.
 *
 * Each trial is one full cluster::runCluster() — N LightPC machines,
 * a client fleet, a correlated storm schedule — and is a pure
 * function of (campaign seed, trial index): the grid position picks
 * the cell (replicas, intensity, mode) and the per-cell seed index
 * picks the storm/arrival streams via Rng::streamSeed. Trials fan
 * across sim::ParallelExecutor and fold in canonical index order, so
 * the campaign digest is bit-identical at any thread count.
 *
 * Intensity is the storm ladder the acceptance gate sweeps:
 *
 *   1 — one storm, one rack struck (a minority loses power);
 *   2 — two storms, one rack each (repeated partial outages);
 *   3 — two storms, every rack struck (full-fleet blackouts: the
 *       whole cluster rides through on hold-up or cold-boots).
 *
 * Per cell the campaign reports mean/min write availability, read
 * availability, worst write gap, catch-up traffic (delta vs full
 * resyncs), and the invariant counters that must stay zero: lost
 * acked PUTs, split-brain epochs, divergent commits.
 */

#ifndef LIGHTPC_FAULT_CLUSTER_CAMPAIGN_HH
#define LIGHTPC_FAULT_CLUSTER_CAMPAIGN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/cluster.hh"
#include "sim/ticks.hh"

namespace lightpc::fault
{

/** Campaign sweep shape. */
struct ClusterCampaignConfig
{
    std::uint64_t seed = 42;

    /** Seeded trials per (replicas, intensity, mode) cell. */
    std::size_t seedsPerCell = 10;

    std::vector<std::uint32_t> replicaCounts = {3, 5};
    std::vector<std::uint32_t> intensities = {1, 2, 3};
    std::vector<net::PersistMode> modes = {
        net::PersistMode::SnG,      net::PersistMode::OpLog,
        net::PersistMode::SysPc,    net::PersistMode::SCheckPc,
        net::PersistMode::ACheckPc,
    };

    /** Per-trial run shape (kept small: the grid is 300 trials). */
    Tick runFor = 2 * tickSec;
    Tick drainGrace = 2 * tickSec;
    std::uint32_t clients = 120;
    double arrivalsPerSec = 1500.0;

    unsigned threads = 1;
};

/** Aggregate over one (replicas, intensity, mode) cell. */
struct ClusterCellStats
{
    std::uint32_t replicas = 0;
    std::uint32_t intensity = 0;
    net::PersistMode mode = net::PersistMode::SnG;
    std::string modeName;

    std::uint64_t trials = 0;
    std::uint64_t cutsInjected = 0;

    double writeAvailMean = 0.0;
    double writeAvailMin = 1.0;
    double readAvailMean = 0.0;
    double readAvailMin = 1.0;
    Tick worstWriteGap = 0;        ///< max across the cell's trials
    std::uint64_t readOnlySpans = 0;

    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    std::uint64_t ackedPuts = 0;
    std::uint64_t redirects = 0;

    std::uint64_t elections = 0;
    std::uint64_t leaderChanges = 0;
    std::uint64_t stepDowns = 0;

    std::uint64_t syncDeltas = 0;
    std::uint64_t syncFulls = 0;
    std::uint64_t syncBytes = 0;

    std::uint64_t resumes = 0;
    std::uint64_t coldBoots = 0;
    std::uint64_t degradedColdBoots = 0;

    // Must stay zero across the whole campaign.
    std::uint64_t lostAckedPuts = 0;
    std::uint64_t splitBrainEpochs = 0;
    std::uint64_t divergentCommits = 0;
    std::uint64_t violations = 0;
};

/** Everything one campaign run produces. */
struct ClusterCampaignResult
{
    std::uint64_t trials = 0;
    unsigned threads = 1;

    /** Canonical order: replicas-major, then intensity, then mode. */
    std::vector<ClusterCellStats> cells;

    // Campaign-wide invariant totals (all must be zero).
    std::uint64_t lostAckedPuts = 0;
    std::uint64_t splitBrainEpochs = 0;
    std::uint64_t divergentCommits = 0;
    std::uint64_t violations = 0;
    std::vector<std::string> violationNotes;

    /** FNV digest over every cell counter (thread-invariant). */
    std::uint64_t digest = 0;
};

/**
 * The ClusterConfig trial @p index of the campaign would run —
 * exposed so tests can replay one grid point without the sweep.
 * Pure function of (config, index); fatal on index out of range.
 */
cluster::ClusterConfig
clusterTrialConfig(const ClusterCampaignConfig &config,
                   std::uint64_t index);

/** Total trials the grid encodes. */
std::uint64_t clusterCampaignTrials(const ClusterCampaignConfig &config);

/** Run the sweep on config.threads workers. */
ClusterCampaignResult
runClusterCampaign(const ClusterCampaignConfig &config);

} // namespace lightpc::fault

#endif // LIGHTPC_FAULT_CLUSTER_CAMPAIGN_HH
