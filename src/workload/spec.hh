/**
 * @file
 * Workload characterization table (Table II).
 *
 * The paper evaluates 17 workloads: crypto (AES, SHA512), HPC proxies
 * (miniFE, AMG, SNAP), SPEC CPU2006 picks, and in-memory databases.
 * Table II publishes per-workload memory read/write counts, D$ hit
 * rates, and threading; our synthetic generators are parameterized
 * from these plus three model knobs (memory-instruction fraction,
 * sequential run length, and read-after-write affinity) chosen per
 * workload from the paper's qualitative descriptions (e.g. wrf
 * "recursively uses the prediction history", mcf "writes are
 * significantly smaller than reads").
 */

#ifndef LIGHTPC_WORKLOAD_SPEC_HH
#define LIGHTPC_WORKLOAD_SPEC_HH

#include <cstdint>
#include <string>
#include <vector>

namespace lightpc::workload
{

/** Workload category, as grouped in Table II. */
enum class Category
{
    Crypto,
    Hpc,
    Spec,
    InMemoryDb,
};

/** One row of Table II plus generator knobs. */
struct WorkloadSpec
{
    std::string name;
    Category category = Category::Spec;

    /** Memory reads over the full run (paper scale). */
    std::uint64_t reads = 0;

    /** Memory writes over the full run (paper scale). */
    std::uint64_t writes = 0;

    /** Target D$ read hit rate (Table II). */
    double readHitRate = 0.95;

    /** Target D$ write hit rate (Table II). */
    double writeHitRate = 0.95;

    /** Executed with multiple threads on the prototype. */
    bool multithread = false;

    // --- generator knobs (not in Table II; see file comment) ---

    /** Fraction of dynamic instructions that touch memory. */
    double memFraction = 0.35;

    /** Mean sequential run length of cold accesses, in lines. */
    double seqRunLines = 8.0;

    /**
     * Probability that a cold read targets a recently-written line
     * (read-after-write affinity — the head-of-line blocking driver
     * in Fig. 16).
     */
    double rawAffinity = 0.35;

    /** Cold footprint in bytes (scaled-down working set). */
    std::uint64_t footprintBytes = std::uint64_t(64) << 20;

    /** Read-to-write ratio. */
    double
    rwRatio() const
    {
        return writes ? static_cast<double>(reads)
            / static_cast<double>(writes) : 0.0;
    }
};

/** The 17 Table II workloads, in paper order. */
const std::vector<WorkloadSpec> &tableTwo();

/** Find a workload by name; fatal() if absent. */
const WorkloadSpec &findWorkload(const std::string &name);

/** Category display name ("Crypto", "HPC", ...). */
std::string categoryName(Category category);

} // namespace lightpc::workload

#endif // LIGHTPC_WORKLOAD_SPEC_HH
