/**
 * @file
 * The STREAM sustainable-bandwidth kernels (McCalpin [68], Fig. 17).
 *
 * Unlike the Table II generators this is a faithful access-level
 * implementation: the four kernels walk real arrays element by
 * element (8 B doubles), so cache-line effects, write-allocate fills,
 * and uncached streaming writes arise naturally. STREAM's mostly-
 * write behaviour is precisely what narrows LightPC's advantage in
 * Fig. 17 (78% of LegacyPC bandwidth on average).
 */

#ifndef LIGHTPC_WORKLOAD_STREAM_BENCH_HH
#define LIGHTPC_WORKLOAD_STREAM_BENCH_HH

#include <cstdint>
#include <string>

#include "cpu/instr.hh"
#include "mem/request.hh"

namespace lightpc::workload
{

/** The four STREAM kernels. */
enum class StreamKernel
{
    Copy,   ///< c[i] = a[i]
    Scale,  ///< b[i] = s * c[i]
    Add,    ///< c[i] = a[i] + b[i]
    Triad,  ///< a[i] = b[i] + s * c[i]
};

/** Display name of a kernel. */
std::string streamKernelName(StreamKernel kernel);

/** Bytes moved per loop iteration (STREAM's bandwidth accounting). */
std::uint64_t streamBytesPerIteration(StreamKernel kernel);

/**
 * Instruction stream for one STREAM kernel.
 */
class StreamWorkload : public cpu::InstrStream
{
  public:
    /**
     * @param kernel    Which kernel to run.
     * @param elements  Array length (each array `elements` doubles).
     * @param base_addr Placement of the three arrays.
     * @param thread_id Thread index (arrays are chunked per thread).
     * @param threads   Total threads.
     */
    StreamWorkload(StreamKernel kernel, std::uint64_t elements,
                   mem::Addr base_addr, std::uint32_t thread_id = 0,
                   std::uint32_t threads = 1);

    bool next(cpu::Instr &out) override;

    /** Total bytes this thread's slice moves (for MB/s). */
    std::uint64_t bytesMoved() const;

    /** Iterations this slice executes. */
    std::uint64_t iterations() const { return end - begin; }

  private:
    static constexpr std::uint64_t elementBytes = 8;

    mem::Addr arrayA, arrayB, arrayC;
    StreamKernel kernel;
    std::uint64_t begin;
    std::uint64_t end;
    std::uint64_t index;
    std::uint32_t microStep = 0;
};

} // namespace lightpc::workload

#endif // LIGHTPC_WORKLOAD_STREAM_BENCH_HH
