#include "workload/synthetic.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace lightpc::workload
{

SyntheticStream::SyntheticStream(const WorkloadSpec &spec_in,
                                 const SyntheticConfig &config_in,
                                 std::uint32_t thread_id,
                                 mem::Addr base_addr)
    : spec(spec_in),
      config(config_in),
      seedBase(config_in.seed * 0x9e3779b97f4a7c15ULL + thread_id),
      rng(seedBase)
{
    if (config.scaleDivisor == 0)
        fatal("SyntheticConfig scaleDivisor must be nonzero");
    if (config.threads == 0)
        fatal("SyntheticConfig threads must be nonzero");

    // Disjoint per-thread hot sets at the front of the region, cold
    // footprint behind them.
    hotBase = base_addr
        + mem::Addr(thread_id) * config.hotBytes;
    coldBase = base_addr
        + mem::Addr(config.threads) * config.hotBytes;

    // Table II's read/write counts are *memory-level* requests (the
    // only interpretation consistent with the paper's ~60 B-cycle
    // runs); the D$ hit rates expand them to CPU-level loads and
    // stores.
    const double read_miss =
        std::max(1.0 - spec.readHitRate, 1e-3);
    const double write_miss =
        std::max(1.0 - spec.writeHitRate, 1e-3);
    const double cpu_reads =
        static_cast<double>(spec.reads) / read_miss;
    const double cpu_writes =
        static_cast<double>(spec.writes) / write_miss;
    const std::uint64_t mem_ops = static_cast<std::uint64_t>(
        (cpu_reads + cpu_writes)
        / static_cast<double>(config.scaleDivisor)
        / config.threads);
    probMem = spec.memFraction;
    probRead = cpu_reads / (cpu_reads + cpu_writes);
    totalInstr = static_cast<std::uint64_t>(
        static_cast<double>(mem_ops) / probMem);

    // The cold footprint scales with the run so that, like the real
    // workload, the working set is traversed several times: caches
    // beyond L1 (e.g. mem-mode's NMEM DRAM cache) warm up instead of
    // seeing a compulsory-unique stream. Bounded below so it still
    // dwarfs L1.
    const double cold_rate =
        (1.0 - spec.readHitRate) * probRead
        + (1.0 - spec.writeHitRate) * (1.0 - probRead);
    const std::uint64_t cold_accesses = static_cast<std::uint64_t>(
        static_cast<double>(mem_ops) * cold_rate);
    coldLines = std::max<std::uint64_t>(
        std::min(spec.footprintBytes / mem::cacheLineBytes,
                 cold_accesses / 4),
        32 * 1024);

    cursorLine = rng.below(coldLines);

    // A cold line is written back roughly when the whole L1 has
    // been refilled by newer cold allocations; express that age in
    // cold-*write* counts so it indexes the ring below.
    const double cold_write_rate =
        (1.0 - spec.writeHitRate) * (1.0 - probRead);
    const double cold_alloc_rate = cold_write_rate
        + (1.0 - spec.readHitRate) * probRead;
    const double share = cold_alloc_rate > 0.0
        ? cold_write_rate / cold_alloc_rate : 0.0;
    evictionAge = std::max<std::uint64_t>(
        8, static_cast<std::uint64_t>(
               share * static_cast<double>(config.assumedCacheLines)));
    recentWrites.assign(
        std::max<std::size_t>(64, 4 * evictionAge), 0);
}

void
SyntheticStream::rewind()
{
    rng = Rng(seedBase);
    count = 0;
    cursorLine = rng.below(coldLines);
    runRemaining = 0;
    recentPos = 0;
    recentCount = 0;
}

mem::Addr
SyntheticStream::hotAddr()
{
    const std::uint64_t hot_lines =
        config.hotBytes / mem::cacheLineBytes;
    return hotBase + rng.below(hot_lines) * mem::cacheLineBytes;
}

mem::Addr
SyntheticStream::coldAddr(bool is_read)
{
    if (is_read && recentCount == recentWrites.size()
        && rng.chance(spec.rawAffinity)) {
        // Read-after-write: target a line written about an eviction
        // age ago — written back from L1 by now (so the read reaches
        // the memory and the Table II hit rates stay faithful),
        // possibly with its writeback still cooling off in the PRAM
        // (Fig. 16). Each written line is re-read at most once; a
        // consumed or not-yet-filled slot falls through to a normal
        // cold read.
        const std::size_t age = evictionAge
            + rng.below(std::max<std::uint64_t>(2 * evictionAge, 1));
        const std::size_t idx =
            (recentPos + recentWrites.size() - 1 - age)
            % recentWrites.size();
        const mem::Addr target = recentWrites[idx];
        if (target != 0) {
            recentWrites[idx] = 0;
            return target;
        }
    }

    if (runRemaining == 0) {
        // Start a new sequential run somewhere else in the footprint.
        cursorLine = rng.below(coldLines);
        // Geometric run length with the spec's mean (>= 1).
        const double mean = std::max(spec.seqRunLines, 1.0);
        const double p = 1.0 / mean;
        runRemaining = 1;
        while (runRemaining < 512 && !rng.chance(p))
            ++runRemaining;
    }
    --runRemaining;
    const mem::Addr addr =
        coldBase + (cursorLine % coldLines) * mem::cacheLineBytes;
    ++cursorLine;

    if (!is_read) {
        recentWrites[recentPos] = addr;
        recentPos = (recentPos + 1) % recentWrites.size();
        recentCount = std::min(recentCount + 1, recentWrites.size());
    }
    return addr;
}

bool
SyntheticStream::next(cpu::Instr &out)
{
    if (count >= totalInstr)
        return false;
    ++count;

    if (!rng.chance(probMem)) {
        out.kind = cpu::InstrKind::Alu;
        out.addr = 0;
        return true;
    }

    const bool is_read = rng.chance(probRead);
    const double hit_rate =
        is_read ? spec.readHitRate : spec.writeHitRate;
    const bool hot = rng.chance(hit_rate);
    out.kind = is_read ? cpu::InstrKind::Load : cpu::InstrKind::Store;
    out.addr = hot ? hotAddr() : coldAddr(is_read);
    return true;
}

std::vector<std::unique_ptr<SyntheticStream>>
makeMixedStreams(const std::vector<std::string> &names,
                 const SyntheticConfig &config_in,
                 mem::Addr base_addr)
{
    SyntheticConfig config = config_in;
    config.threads = 1;

    std::vector<std::unique_ptr<SyntheticStream>> streams;
    streams.reserve(names.size());
    mem::Addr region = base_addr;
    std::uint32_t index = 0;
    for (const auto &name : names) {
        const WorkloadSpec &spec = findWorkload(name);
        SyntheticConfig per = config;
        per.seed = config.seed * 1000003ULL + index++;
        streams.push_back(
            std::make_unique<SyntheticStream>(spec, per, 0, region));
        // Disjoint regions: hot set + the scaled cold footprint,
        // rounded up generously.
        region += per.hotBytes + spec.footprintBytes
            + (std::uint64_t(16) << 20);
    }
    return streams;
}

std::vector<std::unique_ptr<SyntheticStream>>
makeStreams(const WorkloadSpec &spec, const SyntheticConfig &config_in,
            std::uint32_t available_cores, mem::Addr base_addr)
{
    SyntheticConfig config = config_in;
    config.threads = spec.multithread
        ? std::max<std::uint32_t>(available_cores, 1) : 1;

    std::vector<std::unique_ptr<SyntheticStream>> streams;
    streams.reserve(config.threads);
    for (std::uint32_t t = 0; t < config.threads; ++t)
        streams.push_back(std::make_unique<SyntheticStream>(
            spec, config, t, base_addr));
    return streams;
}

} // namespace lightpc::workload
