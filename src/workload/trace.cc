#include "workload/trace.hh"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "sim/logging.hh"

namespace lightpc::workload
{

TraceWriter::TraceWriter(std::ostream &os) : os(os)
{
    os << "# lightpc instruction trace v1\n";
}

TraceWriter::~TraceWriter()
{
    finish();
}

void
TraceWriter::append(const cpu::Instr &instr)
{
    if (instr.kind == cpu::InstrKind::Alu) {
        ++pendingAlu;
        return;
    }
    finish();
    os << (instr.kind == cpu::InstrKind::Load ? "L " : "S ")
       << std::hex << instr.addr << std::dec << '\n';
}

void
TraceWriter::finish()
{
    if (pendingAlu > 0) {
        os << "A " << pendingAlu << '\n';
        pendingAlu = 0;
    }
}

std::uint64_t
TraceWriter::capture(cpu::InstrStream &stream)
{
    cpu::Instr instr;
    std::uint64_t n = 0;
    while (stream.next(instr)) {
        append(instr);
        ++n;
    }
    finish();
    return n;
}

TraceStream::TraceStream(std::istream &is)
{
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        char kind;
        ls >> kind;
        Record record{};
        switch (kind) {
          case 'A':
            record.kind = cpu::InstrKind::Alu;
            ls >> std::dec >> record.value;
            if (record.value == 0)
                fatal("trace: zero-length ALU run");
            total += record.value;
            break;
          case 'L':
            record.kind = cpu::InstrKind::Load;
            ls >> std::hex >> record.value;
            ++total;
            break;
          case 'S':
            record.kind = cpu::InstrKind::Store;
            ls >> std::hex >> record.value;
            ++total;
            break;
          default:
            fatal("trace: unknown record kind '", kind, "'");
        }
        if (ls.fail())
            fatal("trace: malformed record: ", line);
        records.push_back(record);
    }
}

bool
TraceStream::next(cpu::Instr &out)
{
    if (runLeft > 0) {
        --runLeft;
        out = {cpu::InstrKind::Alu, 0};
        return true;
    }
    if (recordPos >= records.size())
        return false;
    const Record &record = records[recordPos++];
    if (record.kind == cpu::InstrKind::Alu) {
        runLeft = record.value - 1;
        out = {cpu::InstrKind::Alu, 0};
        return true;
    }
    out = {record.kind, record.value};
    return true;
}

void
TraceStream::rewind()
{
    recordPos = 0;
    runLeft = 0;
}

std::uint64_t
captureTraceFile(const std::string &path, cpu::InstrStream &stream)
{
    std::ofstream os(path);
    if (!os)
        fatal("cannot open trace file for writing: ", path);
    TraceWriter writer(os);
    return writer.capture(stream);
}

std::unique_ptr<TraceStream>
loadTraceFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        fatal("cannot open trace file: ", path);
    return std::make_unique<TraceStream>(is);
}

} // namespace lightpc::workload
