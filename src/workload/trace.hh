/**
 * @file
 * Instruction-trace recording and replay.
 *
 * Any InstrStream can be captured to a compact text trace and
 * replayed later — the standard workflow for driving a memory-system
 * simulator from real-application traces (e.g. produced by a PIN /
 * DynamoRIO tool) instead of the built-in synthetic generators.
 *
 * Format: one record per line.
 *   A <count>   — <count> consecutive non-memory instructions
 *   L <hexaddr> — one load
 *   S <hexaddr> — one store
 * Lines starting with '#' are comments.
 */

#ifndef LIGHTPC_WORKLOAD_TRACE_HH
#define LIGHTPC_WORKLOAD_TRACE_HH

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "cpu/instr.hh"

namespace lightpc::workload
{

/**
 * Streams instructions into a trace file.
 */
class TraceWriter
{
  public:
    /** Write to @p os (kept open by the caller). */
    explicit TraceWriter(std::ostream &os);
    ~TraceWriter();

    /** Append one instruction (ALU runs are length-encoded). */
    void append(const cpu::Instr &instr);

    /** Flush any pending ALU run. */
    void finish();

    /** Drain @p stream entirely into the trace. @return count. */
    std::uint64_t capture(cpu::InstrStream &stream);

  private:
    std::ostream &os;
    std::uint64_t pendingAlu = 0;
};

/**
 * Replays a trace as an InstrStream.
 */
class TraceStream : public cpu::InstrStream
{
  public:
    /** Parse from @p is eagerly (whole trace in memory). */
    explicit TraceStream(std::istream &is);

    bool next(cpu::Instr &out) override;

    /** Total instructions in the trace. */
    std::uint64_t totalInstructions() const { return total; }

    /** Restart from the beginning. */
    void rewind();

  private:
    struct Record
    {
        cpu::InstrKind kind;
        std::uint64_t value;  ///< addr, or run length for Alu
    };

    std::vector<Record> records;
    std::uint64_t total = 0;
    std::size_t recordPos = 0;
    std::uint64_t runLeft = 0;
};

/** Capture a stream to a file. @return instructions captured. */
std::uint64_t captureTraceFile(const std::string &path,
                               cpu::InstrStream &stream);

/** Load a trace file. fatal() if unreadable. */
std::unique_ptr<TraceStream> loadTraceFile(const std::string &path);

} // namespace lightpc::workload

#endif // LIGHTPC_WORKLOAD_TRACE_HH
