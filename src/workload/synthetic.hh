/**
 * @file
 * Synthetic instruction stream matched to a Table II workload.
 *
 * The generator reproduces, statistically, the properties the memory
 * system reacts to:
 *
 *  - load/store mix from the Table II read/write counts;
 *  - D$ hit rates via a resident hot set (always hits after warmup)
 *    vs a cold streaming footprint (always misses);
 *  - row-buffer locality via geometric sequential runs through the
 *    cold footprint;
 *  - read-after-write behaviour via an affinity knob that redirects
 *    cold reads at recently-written lines (the Fig. 16 driver).
 *
 * Multithreaded workloads instantiate one stream per core with
 * disjoint hot sets and interleaved cold regions, sharing the total
 * operation budget.
 */

#ifndef LIGHTPC_WORKLOAD_SYNTHETIC_HH
#define LIGHTPC_WORKLOAD_SYNTHETIC_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cpu/instr.hh"
#include "sim/rng.hh"
#include "workload/spec.hh"

namespace lightpc::workload
{

/** Runtime scaling for a synthetic stream. */
struct SyntheticConfig
{
    /** Divide the paper-scale operation counts by this factor. */
    std::uint64_t scaleDivisor = 100;

    /** RNG seed (combined with the thread id). */
    std::uint64_t seed = 42;

    /** Number of threads sharing the budget (1 for ST workloads). */
    std::uint32_t threads = 1;

    /**
     * Hot-set size per thread in bytes. 6 KB in a 16 KB 4-way L1
     * leaves enough headroom that cold-stream pollution does not
     * depress the achieved hit rates below the Table II targets.
     */
    std::uint64_t hotBytes = 6 * 1024;

    /**
     * L1 lines assumed when computing the read-after-write target
     * age (see SyntheticStream::coldAddr): a cold line lives about
     * this many cold allocations before its dirty writeback, and a
     * dependent read arriving then collides with the cooling PRAM.
     */
    std::uint64_t assumedCacheLines = 256;
};

/**
 * One thread's synthetic stream.
 */
class SyntheticStream : public cpu::InstrStream
{
  public:
    /**
     * @param spec      The Table II row to imitate.
     * @param config    Scaling parameters.
     * @param thread_id This stream's index in [0, config.threads).
     * @param base_addr Start of this workload's address region.
     */
    SyntheticStream(const WorkloadSpec &spec,
                    const SyntheticConfig &config,
                    std::uint32_t thread_id, mem::Addr base_addr);

    bool next(cpu::Instr &out) override;

    /** Total instructions this stream will produce. */
    std::uint64_t totalInstructions() const { return totalInstr; }

    /** Instructions produced so far. */
    std::uint64_t produced() const { return count; }

    /** Restart the stream from the beginning (same sequence). */
    void rewind();

  private:
    mem::Addr hotAddr();
    mem::Addr coldAddr(bool is_read);

    const WorkloadSpec &spec;
    SyntheticConfig config;
    std::uint64_t seedBase;
    Rng rng;
    mem::Addr hotBase;
    mem::Addr coldBase;
    std::uint64_t coldLines;
    std::uint64_t totalInstr;
    std::uint64_t count = 0;

    double probMem;
    double probRead;

    /** Sequential-run state. */
    std::uint64_t cursorLine = 0;
    std::uint64_t runRemaining = 0;

    /** Ring of recently written cold lines (RAW affinity). */
    std::vector<mem::Addr> recentWrites;
    std::size_t recentPos = 0;
    std::size_t recentCount = 0;

    /** Cold-write age (ring distance) at which L1 evicts a line. */
    std::uint64_t evictionAge = 64;
};

/**
 * Create the per-core streams for @p spec: `threads` streams for
 * multithreaded workloads, one otherwise.
 */
std::vector<std::unique_ptr<SyntheticStream>>
makeStreams(const WorkloadSpec &spec, const SyntheticConfig &config,
            std::uint32_t available_cores, mem::Addr base_addr);

/**
 * Multi-programmed consolidation: one single-threaded instance of
 * each named workload on its own core, with disjoint address
 * regions — the "server running many things at once" scenario the
 * paper's busy system approximates.
 *
 * @pre specs.size() <= available cores.
 */
std::vector<std::unique_ptr<SyntheticStream>>
makeMixedStreams(const std::vector<std::string> &names,
                 const SyntheticConfig &config, mem::Addr base_addr);

} // namespace lightpc::workload

#endif // LIGHTPC_WORKLOAD_SYNTHETIC_HH
