#include "workload/stream_bench.hh"

#include "sim/logging.hh"

namespace lightpc::workload
{

std::string
streamKernelName(StreamKernel kernel)
{
    switch (kernel) {
      case StreamKernel::Copy:
        return "Copy";
      case StreamKernel::Scale:
        return "Scale";
      case StreamKernel::Add:
        return "Add";
      case StreamKernel::Triad:
        return "Triad";
    }
    return "?";
}

std::uint64_t
streamBytesPerIteration(StreamKernel kernel)
{
    switch (kernel) {
      case StreamKernel::Copy:
      case StreamKernel::Scale:
        return 16;  // one load + one store of 8 B
      case StreamKernel::Add:
      case StreamKernel::Triad:
        return 24;  // two loads + one store
    }
    return 0;
}

StreamWorkload::StreamWorkload(StreamKernel kernel_in,
                               std::uint64_t elements,
                               mem::Addr base_addr,
                               std::uint32_t thread_id,
                               std::uint32_t threads)
    : kernel(kernel_in)
{
    if (elements == 0 || threads == 0 || thread_id >= threads)
        fatal("StreamWorkload: bad elements/threads configuration");

    const std::uint64_t array_bytes = elements * elementBytes;
    arrayA = base_addr;
    arrayB = base_addr + array_bytes;
    arrayC = base_addr + 2 * array_bytes;

    const std::uint64_t chunk = (elements + threads - 1) / threads;
    begin = std::min<std::uint64_t>(thread_id * chunk, elements);
    end = std::min<std::uint64_t>(begin + chunk, elements);
    index = begin;
}

std::uint64_t
StreamWorkload::bytesMoved() const
{
    return iterations() * streamBytesPerIteration(kernel);
}

bool
StreamWorkload::next(cpu::Instr &out)
{
    if (index >= end)
        return false;

    const mem::Addr off = index * elementBytes;
    // Micro-sequence per iteration, element granularity so that line
    // reuse within a cache line arises naturally.
    switch (kernel) {
      case StreamKernel::Copy:
        // load a[i]; store c[i]
        switch (microStep) {
          case 0:
            out = {cpu::InstrKind::Load, arrayA + off};
            ++microStep;
            return true;
          default:
            out = {cpu::InstrKind::Store, arrayC + off};
            microStep = 0;
            ++index;
            return true;
        }

      case StreamKernel::Scale:
        // load c[i]; mul; store b[i]
        switch (microStep) {
          case 0:
            out = {cpu::InstrKind::Load, arrayC + off};
            ++microStep;
            return true;
          case 1:
            out = {cpu::InstrKind::Alu, 0};
            ++microStep;
            return true;
          default:
            out = {cpu::InstrKind::Store, arrayB + off};
            microStep = 0;
            ++index;
            return true;
        }

      case StreamKernel::Add:
        // load a[i]; load b[i]; add; store c[i]
        switch (microStep) {
          case 0:
            out = {cpu::InstrKind::Load, arrayA + off};
            ++microStep;
            return true;
          case 1:
            out = {cpu::InstrKind::Load, arrayB + off};
            ++microStep;
            return true;
          case 2:
            out = {cpu::InstrKind::Alu, 0};
            ++microStep;
            return true;
          default:
            out = {cpu::InstrKind::Store, arrayC + off};
            microStep = 0;
            ++index;
            return true;
        }

      case StreamKernel::Triad:
        // load b[i]; load c[i]; mul; add; store a[i]
        switch (microStep) {
          case 0:
            out = {cpu::InstrKind::Load, arrayB + off};
            ++microStep;
            return true;
          case 1:
            out = {cpu::InstrKind::Load, arrayC + off};
            ++microStep;
            return true;
          case 2:
          case 3:
            out = {cpu::InstrKind::Alu, 0};
            ++microStep;
            return true;
          default:
            out = {cpu::InstrKind::Store, arrayA + off};
            microStep = 0;
            ++index;
            return true;
        }
    }
    return false;
}

} // namespace lightpc::workload
