/**
 * @file
 * Operation mix for the KV service plane (src/net/).
 *
 * The mix is a workload-layer concern: it decides what the client
 * fleet asks for (GET/PUT/SCAN ratios, key popularity, value sizes),
 * independent of how the RPC plane delivers it. Keys are drawn
 * uniformly from a bounded key space so that PUT version counters
 * accumulate on hot keys and the duplicate-apply oracle has real
 * collisions to check.
 */

#ifndef LIGHTPC_WORKLOAD_SERVICE_MIX_HH
#define LIGHTPC_WORKLOAD_SERVICE_MIX_HH

#include <cstdint>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace lightpc::workload
{

/** KV operation kinds issued by the service client fleet. */
enum class KvOp : std::uint32_t
{
    Get = 0,
    Put = 1,
    Scan = 2,
};

/** Display name. */
inline const char *
kvOpName(KvOp op)
{
    switch (op) {
    case KvOp::Get: return "GET";
    case KvOp::Put: return "PUT";
    case KvOp::Scan: return "SCAN";
    }
    return "?";
}

/** GET/PUT/SCAN ratios plus key/value shape. */
struct ServiceMix
{
    double getFraction = 0.55;
    double putFraction = 0.40;  ///< remainder is SCAN

    /** Distinct keys (1-based; 0 is the empty-slot sentinel). */
    std::uint32_t keySpace = 1024;

    /** Slots touched per SCAN. */
    std::uint32_t scanLength = 16;

    /** Logical value payload per object (cost model input). */
    std::uint64_t valueBytes = 128;

    /** Draw an operation kind. */
    KvOp
    pickOp(Rng &rng) const
    {
        const double u = rng.uniform();
        if (u < getFraction)
            return KvOp::Get;
        if (u < getFraction + putFraction)
            return KvOp::Put;
        return KvOp::Scan;
    }

    /** Draw a key in [1, keySpace]. */
    std::uint64_t
    pickKey(Rng &rng) const
    {
        if (keySpace == 0)
            fatal("ServiceMix keySpace must be nonzero");
        return 1 + rng.below(keySpace);
    }

    /** YCSB-C-like read-mostly preset. */
    static ServiceMix
    readHeavy()
    {
        ServiceMix m;
        m.getFraction = 0.90;
        m.putFraction = 0.08;
        return m;
    }

    /** Write-heavy preset (stresses PUT durability under cuts). */
    static ServiceMix
    updateHeavy()
    {
        ServiceMix m;
        m.getFraction = 0.25;
        m.putFraction = 0.70;
        return m;
    }
};

} // namespace lightpc::workload

#endif // LIGHTPC_WORKLOAD_SERVICE_MIX_HH
