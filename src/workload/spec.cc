#include "workload/spec.hh"

#include "sim/logging.hh"

namespace lightpc::workload
{

namespace
{

constexpr std::uint64_t M = 1'000'000;
constexpr std::uint64_t K = 1'000;

std::vector<WorkloadSpec>
buildTable()
{
    // name, category, reads, writes, read-hit, write-hit, MT,
    // then knobs: memFraction, seqRunLines, rawAffinity, footprint.
    auto mb = [](std::uint64_t n) { return n << 20; };
    std::vector<WorkloadSpec> t;

    auto add = [&](std::string name, Category cat, std::uint64_t r,
                   std::uint64_t w, double rh, double wh, bool mt,
                   double memf, double run, double raw,
                   std::uint64_t foot) {
        WorkloadSpec s;
        s.name = std::move(name);
        s.category = cat;
        s.reads = r;
        s.writes = w;
        s.readHitRate = rh;
        s.writeHitRate = wh;
        s.multithread = mt;
        s.memFraction = memf;
        s.seqRunLines = run;
        s.rawAffinity = raw;
        s.footprintBytes = foot;
        t.push_back(std::move(s));
    };

    // Crypto: tiny working sets, compute bound, almost no misses.
    add("AES", Category::Crypto, 21'700 * K, 4'500 * K,
        0.995, 0.989, false, 0.20, 4.0, 0.30, mb(8));
    add("SHA512", Category::Crypto, 6'300 * K, 438 * K,
        0.999, 0.999, false, 0.18, 4.0, 0.15, mb(4));

    // HPC proxies: multithreaded, long sequential sweeps.
    add("miniFE", Category::Hpc, 419 * M, 37'300 * K,
        0.933, 0.994, true, 0.33, 16.0, 0.40, mb(96));
    add("AMG", Category::Hpc, 513 * M, 46'700 * K,
        0.841, 0.898, true, 0.35, 12.0, 0.40, mb(128));
    add("SNAP", Category::Hpc, 370 * M, 137 * M,
        0.979, 0.990, true, 0.33, 16.0, 0.55, mb(96));

    // SPEC CPU2006 (single-threaded per the paper's methodology).
    add("perlbench", Category::Spec, 239 * M, 38'900 * K,
        0.802, 0.813, false, 0.35, 6.0, 0.35, mb(64));
    add("bzip2", Category::Spec, 123 * M, 47'200 * K,
        0.946, 0.544, false, 0.32, 10.0, 0.45, mb(48));
    add("gcc", Category::Spec, 360 * M, 81'300 * K,
        0.990, 0.984, false, 0.34, 8.0, 0.40, mb(64));
    add("mcf", Category::Spec, 578 * M, 1'700 * K,
        0.934, 0.955, false, 0.45, 2.0, 0.05, mb(192));
    add("astar", Category::Spec, 789 * M, 296 * M,
        0.962, 0.987, false, 0.38, 3.0, 0.55, mb(128));
    add("cactusADM", Category::Spec, 428 * M, 36'800 * K,
        0.961, 0.941, false, 0.34, 14.0, 0.40, mb(96));
    add("dealII", Category::Spec, 352 * M, 26'700 * K,
        0.758, 0.975, false, 0.36, 6.0, 0.35, mb(96));
    add("wrf", Category::Spec, 345 * M, 80'100 * K,
        0.962, 0.942, false, 0.35, 10.0, 0.80, mb(96));

    // In-memory databases: multithreaded request processing.
    add("Redis", Category::InMemoryDb, 377 * M, 60'400 * K,
        0.979, 0.991, true, 0.38, 5.0, 0.45, mb(128));
    add("KeyDB", Category::InMemoryDb, 195 * M, 75'700 * K,
        0.977, 0.990, true, 0.38, 5.0, 0.50, mb(128));
    add("Memcached", Category::InMemoryDb, 354 * M, 57'300 * K,
        0.953, 0.985, true, 0.38, 5.0, 0.45, mb(128));
    add("SQLite", Category::InMemoryDb, 187 * M, 14'900 * K,
        0.781, 0.984, true, 0.36, 6.0, 0.35, mb(64));

    return t;
}

} // namespace

const std::vector<WorkloadSpec> &
tableTwo()
{
    static const std::vector<WorkloadSpec> table = buildTable();
    return table;
}

const WorkloadSpec &
findWorkload(const std::string &name)
{
    for (const auto &spec : tableTwo())
        if (spec.name == name)
            return spec;
    fatal("unknown workload: ", name);
}

std::string
categoryName(Category category)
{
    switch (category) {
      case Category::Crypto:
        return "Crypto";
      case Category::Hpc:
        return "HPC";
      case Category::Spec:
        return "SPEC";
      case Category::InMemoryDb:
        return "In-memory DB";
    }
    return "?";
}

} // namespace lightpc::workload
