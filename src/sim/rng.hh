/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic model in the simulator draws from an explicitly
 * seeded Rng so that a given platform + workload + seed triple always
 * reproduces the same trace. The generator is xoshiro256** which is
 * fast enough to sit on the per-access path of the workload
 * generators.
 */

#ifndef LIGHTPC_SIM_RNG_HH
#define LIGHTPC_SIM_RNG_HH

#include <cstdint>

namespace lightpc
{

/** Deterministic xoshiro256** generator. */
class Rng
{
  public:
    /** Seed via splitmix64 so that nearby seeds decorrelate. */
    explicit Rng(std::uint64_t seed = 1)
    {
        std::uint64_t x = seed;
        for (auto &word : state) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /**
     * Seed of the @p index-th independent stream of a campaign
     * rooted at @p seed. Trials that each construct
     * Rng(streamSeed(seed, i)) draw decorrelated sequences that
     * depend only on (seed, i) — never on how many values any other
     * trial consumed — which is what lets a thread pool run trials
     * in any order and still reproduce the sequential campaign
     * bit-for-bit.
     */
    static std::uint64_t
    streamSeed(std::uint64_t seed, std::uint64_t index)
    {
        // splitmix64 finalizer over the (seed, index) pair.
        std::uint64_t z =
            seed + 0x9e3779b97f4a7c15ULL * (index + 1);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
        const std::uint64_t t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's multiply-shift rejection-free approximation is
        // adequate here; bias is < 2^-64 * bound.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi]. @pre lo <= hi. */
    std::uint64_t
    between(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p of true. */
    bool chance(double p) { return uniform() < p; }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state[4];
};

} // namespace lightpc

#endif // LIGHTPC_SIM_RNG_HH
