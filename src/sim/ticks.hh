/**
 * @file
 * Simulation time base.
 *
 * All simulated time in LightPC is expressed in Ticks, where one tick
 * is one picosecond. Helper constants and conversion routines let
 * device models express latencies in natural units (nanoseconds,
 * cycles at a given frequency) without losing precision.
 */

#ifndef LIGHTPC_SIM_TICKS_HH
#define LIGHTPC_SIM_TICKS_HH

#include <cstdint>

namespace lightpc
{

/** Simulated time, in picoseconds. */
using Tick = std::uint64_t;

/** A signed tick difference. */
using TickDelta = std::int64_t;

/** One picosecond. */
constexpr Tick tickPs = 1;
/** One nanosecond. */
constexpr Tick tickNs = 1000 * tickPs;
/** One microsecond. */
constexpr Tick tickUs = 1000 * tickNs;
/** One millisecond. */
constexpr Tick tickMs = 1000 * tickUs;
/** One second. */
constexpr Tick tickSec = 1000 * tickMs;

/** The largest representable time; used as "never". */
constexpr Tick maxTick = ~Tick(0);

/**
 * Clock period for a frequency given in megahertz.
 *
 * @param mhz Frequency in MHz.
 * @return Ticks per clock cycle.
 */
constexpr Tick
periodFromMhz(std::uint64_t mhz)
{
    return tickSec / (mhz * 1000 * 1000);
}

/** Convert ticks to (double) nanoseconds, for reporting. */
constexpr double
ticksToNs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(tickNs);
}

/** Convert ticks to (double) microseconds, for reporting. */
constexpr double
ticksToUs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(tickUs);
}

/** Convert ticks to (double) milliseconds, for reporting. */
constexpr double
ticksToMs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(tickMs);
}

/** Convert ticks to (double) seconds, for reporting. */
constexpr double
ticksToSec(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(tickSec);
}

/**
 * A clock domain: converts between cycles and ticks for one frequency.
 *
 * Cores and memory devices each carry a ClockDomain so that models can
 * be written in cycles while the event queue runs in ticks.
 */
class ClockDomain
{
  public:
    /** Construct a domain running at @p mhz megahertz. */
    explicit ClockDomain(std::uint64_t mhz)
        : _period(periodFromMhz(mhz)), _mhz(mhz)
    {}

    /** Ticks per cycle. */
    Tick period() const { return _period; }

    /** Frequency in MHz. */
    std::uint64_t mhz() const { return _mhz; }

    /** Convert a cycle count to ticks. */
    Tick toTicks(std::uint64_t cycles) const { return cycles * _period; }

    /** Convert ticks to whole cycles (rounding up). */
    std::uint64_t
    toCycles(Tick t) const
    {
        return (t + _period - 1) / _period;
    }

  private:
    Tick _period;
    std::uint64_t _mhz;
};

} // namespace lightpc

#endif // LIGHTPC_SIM_TICKS_HH
