/**
 * @file
 * Discrete-event simulation kernel.
 *
 * The EventQueue orders callbacks by (tick, priority, sequence) and
 * executes them in non-decreasing time order. Cores, devices, and the
 * PecOS kernel all advance by scheduling events; the queue is the only
 * source of simulated time.
 *
 * The implementation is allocation-free on the steady-state path:
 *
 *  - Event records live in slab-allocated pools and are recycled
 *    through a free list; callbacks with captures of up to
 *    SmallCallback::inlineBytes are stored inside the record (no
 *    std::function, no per-event malloc).
 *
 *  - EventIds embed a per-slot generation counter, so deschedule()
 *    is one array index plus one integer compare, and the closure is
 *    destroyed eagerly at cancellation instead of lingering until the
 *    heap reaches its tick. Stale (cancelled) ordering entries are
 *    swept once they outnumber live events 2:1.
 *
 *  - A calendar-queue front end (a ring of width-2^bucketShift tick
 *    buckets) makes near-horizon scheduling O(1); only events beyond
 *    the ring's window go through the binary heap, and they migrate
 *    into the ring as time advances.
 *
 * Ordering entries are 24-byte PODs; priority and sequence number are
 * packed into one comparison key, so equal-tick ordering (priority,
 * then scheduling order) costs a single integer compare.
 */

#ifndef LIGHTPC_SIM_EVENT_QUEUE_HH
#define LIGHTPC_SIM_EVENT_QUEUE_HH

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/logging.hh"
#include "sim/small_callback.hh"
#include "sim/ticks.hh"

// The kernel's hot path must stay flat even at -O2 (the default
// RelWithDebInfo build), where gcc's inliner gives up on execute()
// and insertBucket(); cold paths are kept out of line so the hot
// loop stays small.
#if defined(__GNUC__) || defined(__clang__)
#define LIGHTPC_HOT_INLINE [[gnu::always_inline]] inline
#define LIGHTPC_COLD_OUTLINE [[gnu::noinline]]
#else
#define LIGHTPC_HOT_INLINE inline
#define LIGHTPC_COLD_OUTLINE
#endif

namespace lightpc
{

/** Ordering hint for events scheduled at the same tick. */
enum class EventPriority : int
{
    PowerEvent = 0,   ///< Power-fail interrupts preempt everything.
    Interrupt = 10,   ///< IPIs and device interrupts.
    Default = 50,     ///< Ordinary model progress.
    Stats = 90,       ///< Sampling after the tick's work is done.
};

/**
 * Handle used to cancel a scheduled event.
 *
 * Encodes (pool slot, generation); the generation changes whenever
 * the slot is retired, so handles to completed or cancelled events
 * can never resurrect a reused slot.
 */
using EventId = std::uint64_t;

/** An invalid event handle. */
constexpr EventId invalidEventId = 0;

/**
 * Time-ordered callback queue.
 *
 * Events scheduled at equal ticks run in priority order, then in
 * scheduling order, which keeps multi-core interleavings
 * deterministic.
 */
class EventQueue
{
  public:
    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return _now; }

    /**
     * Schedule @p fn to run at absolute time @p when.
     *
     * @return A handle that can be passed to deschedule().
     */
    template <typename F>
    EventId
    schedule(Tick when, F &&fn,
             EventPriority prio = EventPriority::Default)
    {
        if (when < _now) [[unlikely]]
            panic("scheduling event in the past: ", when, " < ", _now);
        const std::uint32_t idx = acquireSlot();
        SlotRec &r = rec(idx);
        r.cb.emplace(std::forward<F>(fn));
        const std::uint32_t gen = r.gen;

        Ref ref;
        ref.when = when;
        ref.key = (static_cast<std::uint64_t>(static_cast<int>(prio))
                   << seqBits)
            | ++lastSeq;
        ref.slot = idx;
        ref.gen = gen;

        const std::uint64_t abs = when >> bucketShift;
        if (abs < curAbs + bucketCount) [[likely]]
            insertBucket(ref, abs);
        else
            pushFar(ref);
        ++liveCount;
        return makeId(idx, gen);
    }

    /** Schedule @p fn to run @p delta ticks from now. */
    template <typename F>
    EventId
    scheduleIn(Tick delta, F &&fn,
               EventPriority prio = EventPriority::Default)
    {
        return schedule(_now + delta, std::forward<F>(fn), prio);
    }

    /**
     * Cancel a previously scheduled event. Idempotent.
     *
     * The closure is destroyed immediately; the 24-byte ordering
     * entry is dropped lazily, or swept early once stale entries
     * outnumber live events 2:1.
     */
    void
    deschedule(EventId id)
    {
        const std::uint32_t idx = static_cast<std::uint32_t>(id >> 32);
        const std::uint32_t gen = static_cast<std::uint32_t>(id);
        if (idx >= slotCount)
            return;
        if (rec(idx).gen != gen)
            return;  // already fired, cancelled, or a stale handle
        retireSlot(idx);
        --liveCount;
        ++staleCount;
        if (staleCount > pruneFloor && staleCount > 2 * liveCount)
            prune();
    }

    /** True when no live events remain. */
    bool empty() const { return liveCount == 0; }

    /** Number of live (scheduled, not cancelled) events. */
    std::size_t size() const { return liveCount; }

    /**
     * Run events until the queue drains or time would pass @p limit.
     *
     * Events scheduled exactly at @p limit still execute.
     * @return The time of the last executed event, or now() if none.
     */
    Tick
    run(Tick limit = maxTick)
    {
        while (stepOne(limit)) {
        }
        return _now;
    }

    /** Execute exactly one event. @return false if the queue is empty. */
    bool step() { return stepOne(maxTick); }

    // --- introspection (tests, BENCH_kernel.json) ------------------

    /** Ordering entries currently held (live + not-yet-swept stale). */
    std::size_t pendingEntries() const { return liveCount + staleCount; }

    /** Cancelled entries awaiting lazy removal or the next sweep. */
    std::size_t stalePending() const { return staleCount; }

    /** Event records allocated across all slabs. */
    std::size_t poolCapacity() const { return slotCount; }

  private:
    // Ring of 2^8 buckets, each bucketWidth ticks wide; events inside
    // the window [curAbs, curAbs + bucketCount) bucket widths go into
    // the ring, later ones into the far heap.
    static constexpr unsigned bucketShift = 12;
    static constexpr unsigned bucketCount = 256;
    static constexpr unsigned bucketMask = bucketCount - 1;
    static constexpr unsigned slabShift = 8;
    static constexpr unsigned slabSize = 1u << slabShift;
    static constexpr unsigned seqBits = 56;
    static constexpr std::uint32_t noFree = ~std::uint32_t(0);
    static constexpr std::uint64_t noAbs = ~std::uint64_t(0);
    static constexpr std::size_t pruneFloor = 256;

    /** A 24-byte ordering entry referencing a pooled record. */
    struct Ref
    {
        Tick when;
        std::uint64_t key;          ///< (priority << 56) | sequence
        std::uint32_t slot;
        std::uint32_t gen;
    };

    /** "Later than": orders the far heap (min at front). */
    struct RefGreater
    {
        bool
        operator()(const Ref &a, const Ref &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.key > b.key;
        }
    };

    static EventId
    makeId(std::uint32_t slot_idx, std::uint32_t gen)
    {
        return (static_cast<EventId>(slot_idx) << 32) | gen;
    }

    /**
     * A pooled event record: the callback plus its bookkeeping on
     * the same cache-line neighborhood, so the liveness check, the
     * invocation, and the free-list relink all touch one line.
     */
    struct SlotRec
    {
        SmallCallback cb;
        /**
         * Bumped on every retirement. Generations stay odd (they
         * start at 1 and advance by 2, wrapping odd), so no live
         * handle ever carries generation 0 and the bump needs no
         * wrap check against invalidEventId.
         */
        std::uint32_t gen = 1;
        std::uint32_t nextFree = noFree;
    };

    /** Record for a slot; slabs are never relocated. */
    SlotRec &
    rec(std::uint32_t idx)
    {
        if (idx < slabSize) [[likely]]
            return firstSlab[idx];
        return slabs[idx >> slabShift][idx & (slabSize - 1)];
    }

    const SlotRec &
    rec(std::uint32_t idx) const
    {
        if (idx < slabSize) [[likely]]
            return firstSlab[idx];
        return slabs[idx >> slabShift][idx & (slabSize - 1)];
    }

    bool
    refLive(const Ref &ref) const
    {
        return rec(ref.slot).gen == ref.gen;
    }

    std::uint32_t
    acquireSlot()
    {
        if (freeHead != noFree) [[likely]] {
            const std::uint32_t idx = freeHead;
            freeHead = rec(idx).nextFree;
            return idx;
        }
        slabs.push_back(std::make_unique<SlotRec[]>(slabSize));
        if (slabs.size() == 1)
            firstSlab = slabs.front().get();
        const std::uint32_t base =
            static_cast<std::uint32_t>(slotCount);
        slotCount += slabSize;
        // Chain all but the first new slot onto the free list.
        for (std::uint32_t i = slabSize - 1; i >= 1; --i) {
            rec(base + i).nextFree = freeHead;
            freeHead = base + i;
        }
        return base;
    }

    /** Destroy the closure and recycle the record. */
    void
    retireSlot(std::uint32_t idx)
    {
        SlotRec &r = rec(idx);
        r.cb.reset();
        r.gen += 2;
        r.nextFree = freeHead;
        freeHead = idx;
    }

    LIGHTPC_HOT_INLINE void
    insertBucket(const Ref &ref, std::uint64_t abs)
    {
        const unsigned pos = static_cast<unsigned>(abs) & bucketMask;
        auto &b = buckets[pos];
        // Kept sorted descending so the minimum pops from the back.
        // A non-empty bucket already has its occupancy bit set (bits
        // are only cleared when a bucket is seen empty), so the
        // bitmap update is needed in the empty case alone.
        if (b.empty()) [[likely]] {
            occ[pos >> 6] |= std::uint64_t(1) << (pos & 63);
            b.push_back(ref);
        } else if (!RefGreater{}(ref, b.back())) {
            b.push_back(ref);
        } else {
            b.insert(std::upper_bound(b.begin(), b.end(), ref,
                                      RefGreater{}),
                     ref);
        }
    }

    void
    pushFar(const Ref &ref)
    {
        far.push_back(ref);
        std::push_heap(far.begin(), far.end(), RefGreater{});
    }

    void
    popFarFront()
    {
        std::pop_heap(far.begin(), far.end(), RefGreater{});
        far.pop_back();
    }

    void
    clearOcc(unsigned pos)
    {
        occ[pos >> 6] &= ~(std::uint64_t(1) << (pos & 63));
    }

    /**
     * First occupied ring position at or after @p start in window
     * order, or -1 when the ring is empty.
     */
    int
    scanFrom(unsigned start) const
    {
        unsigned w = start >> 6;
        std::uint64_t word = occ[w]
            & (~std::uint64_t(0) << (start & 63));
        for (;;) {
            if (word)
                return static_cast<int>((w << 6)
                                        + std::countr_zero(word));
            if (++w == occ.size())
                break;
            word = occ[w];
        }
        for (w = 0; (w << 6) < start; ++w) {
            std::uint64_t wd = occ[w];
            if ((w << 6) + 64 > start)
                wd &= (std::uint64_t(1) << (start & 63)) - 1;
            if (wd)
                return static_cast<int>((w << 6)
                                        + std::countr_zero(wd));
        }
        return -1;
    }

    /** Pull far events that now fall inside the ring's window. */
    LIGHTPC_COLD_OUTLINE void
    migrateFar()
    {
        while (!far.empty()) {
            const std::uint64_t abs = far.front().when >> bucketShift;
            if (abs >= curAbs + bucketCount)
                break;
            const Ref ref = far.front();
            popFarFront();
            if (!refLive(ref)) {
                --staleCount;
                continue;
            }
            insertBucket(ref, abs);
        }
    }

    /**
     * Locate, remove, and execute the earliest live event, dropping
     * stale entries met on the way. Does not execute past @p limit.
     *
     * Popping the last entry of a bucket leaves its occupancy bit
     * set; the empty-bucket cleanse below clears such bits the next
     * time the scan lands on them. That keeps the bitmap write out
     * of the pop path.
     *
     * @return false when the queue is empty or the next event lies
     *         beyond @p limit.
     */
    LIGHTPC_HOT_INLINE bool
    stepOne(Tick limit)
    {
        for (;;) {
            while (!far.empty() && !refLive(far.front()))
                [[unlikely]] {
                popFarFront();
                --staleCount;
            }
            const unsigned start =
                static_cast<unsigned>(curAbs) & bucketMask;
            // Fast path: the bucket at the cursor is occupied (the
            // common case under same-tick/near-tick scheduling).
            int pos;
            if ((occ[start >> 6] >> (start & 63)) & 1) [[likely]]
                pos = static_cast<int>(start);
            else
                pos = scanFrom(start);
            if (pos < 0) [[unlikely]] {
                if (far.empty())
                    return false;
                // Ring empty: the far heap's front is the global min.
                const Ref ref = far.front();
                if (ref.when > limit)
                    return false;
                popFarFront();
                execute(ref);
                return true;
            }
            auto &b = buckets[static_cast<unsigned>(pos)];
            while (!b.empty() && !refLive(b.back())) [[unlikely]] {
                b.pop_back();
                --staleCount;
            }
            if (b.empty()) [[unlikely]] {
                clearOcc(static_cast<unsigned>(pos));
                continue;
            }
            // Every ring event precedes every far event (the window
            // invariant), so this bucket's back is the global min.
            const Ref ref = b.back();
            if (ref.when > limit)
                return false;
            b.pop_back();
            execute(ref);
            return true;
        }
    }

    LIGHTPC_HOT_INLINE void
    execute(const Ref &ref)
    {
        SlotRec &r = rec(ref.slot);
        _now = ref.when;
        // Advance the ring window with time and pull newly-near far
        // events before running the callback, so events it schedules
        // land in a consistent window. The window only moves when the
        // event crosses into a new bucket.
        const std::uint64_t abs = ref.when >> bucketShift;
        if (abs != curAbs) [[unlikely]] {
            curAbs = abs;
            if (!far.empty())
                migrateFar();
        }
        --liveCount;
        // Invalidate the handle before invoking: descheduling a
        // running event is a no-op (matches the original kernel),
        // and the closure must not be destroyed mid-invocation.
        r.gen += 2;
        r.cb();
        r.cb.releaseAfterInvoke();
        r.nextFree = freeHead;
        freeHead = ref.slot;
    }

    /** Sweep cancelled ordering entries out of the ring and heap. */
    LIGHTPC_COLD_OUTLINE void
    prune()
    {
        for (unsigned pos = 0; pos < bucketCount; ++pos) {
            auto &b = buckets[pos];
            if (b.empty())
                continue;
            std::erase_if(b, [this](const Ref &r) {
                return !refLive(r);
            });
            if (b.empty())
                clearOcc(pos);
        }
        std::erase_if(far, [this](const Ref &r) {
            return !refLive(r);
        });
        std::make_heap(far.begin(), far.end(), RefGreater{});
        staleCount = 0;
    }

    Tick _now = 0;
    std::uint64_t lastSeq = 0;
    std::uint64_t curAbs = 0;
    std::size_t liveCount = 0;
    std::size_t staleCount = 0;

    /** Stable pooled-record storage. */
    std::vector<std::unique_ptr<SlotRec[]>> slabs;
    SlotRec *firstSlab = nullptr;
    std::size_t slotCount = 0;
    std::uint32_t freeHead = noFree;

    // The 32-byte occupancy bitmap stays adjacent to the scalars
    // above (one hot cache-line neighborhood) instead of landing
    // 6 KiB away past the bucket array.
    std::array<std::uint64_t, bucketCount / 64> occ{};
    std::array<std::vector<Ref>, bucketCount> buckets;
    std::vector<Ref> far;
};

} // namespace lightpc

#endif // LIGHTPC_SIM_EVENT_QUEUE_HH
