/**
 * @file
 * Discrete-event simulation kernel.
 *
 * The EventQueue orders callbacks by (tick, priority, sequence) and
 * executes them in non-decreasing time order. Cores, devices, and the
 * PecOS kernel all advance by scheduling events; the queue is the only
 * source of simulated time.
 */

#ifndef LIGHTPC_SIM_EVENT_QUEUE_HH
#define LIGHTPC_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/logging.hh"
#include "sim/ticks.hh"

namespace lightpc
{

/** Ordering hint for events scheduled at the same tick. */
enum class EventPriority : int
{
    PowerEvent = 0,   ///< Power-fail interrupts preempt everything.
    Interrupt = 10,   ///< IPIs and device interrupts.
    Default = 50,     ///< Ordinary model progress.
    Stats = 90,       ///< Sampling after the tick's work is done.
};

/** Handle used to cancel a scheduled event. */
using EventId = std::uint64_t;

/** An invalid event handle. */
constexpr EventId invalidEventId = 0;

/**
 * Time-ordered callback queue.
 *
 * Events scheduled at equal ticks run in priority order, then in
 * scheduling order, which keeps multi-core interleavings
 * deterministic.
 */
class EventQueue
{
  public:
    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return _now; }

    /**
     * Schedule @p fn to run at absolute time @p when.
     *
     * @return A handle that can be passed to deschedule().
     */
    EventId
    schedule(Tick when, std::function<void()> fn,
             EventPriority prio = EventPriority::Default)
    {
        if (when < _now)
            panic("scheduling event in the past: ", when, " < ", _now);
        const EventId id = ++lastId;
        heap.push(Entry{when, static_cast<int>(prio), id, std::move(fn)});
        live.insert(id);
        return id;
    }

    /** Schedule @p fn to run @p delta ticks from now. */
    EventId
    scheduleIn(Tick delta, std::function<void()> fn,
               EventPriority prio = EventPriority::Default)
    {
        return schedule(_now + delta, std::move(fn), prio);
    }

    /** Cancel a previously scheduled event. Idempotent. */
    void
    deschedule(EventId id)
    {
        live.erase(id);
    }

    /** True when no live events remain. */
    bool empty() const { return live.empty(); }

    /** Number of live (scheduled, not cancelled) events. */
    std::size_t size() const { return live.size(); }

    /**
     * Run events until the queue drains or time would pass @p limit.
     *
     * Events scheduled exactly at @p limit still execute.
     * @return The time of the last executed event, or now() if none.
     */
    Tick
    run(Tick limit = maxTick)
    {
        while (!heap.empty()) {
            if (heap.top().when > limit)
                break;
            Entry entry = heap.top();
            heap.pop();
            if (live.erase(entry.id) == 0)
                continue;  // descheduled
            _now = entry.when;
            entry.fn();
        }
        return _now;
    }

    /** Execute exactly one event. @return false if the queue is empty. */
    bool
    step()
    {
        while (!heap.empty()) {
            Entry entry = heap.top();
            heap.pop();
            if (live.erase(entry.id) == 0)
                continue;  // descheduled
            _now = entry.when;
            entry.fn();
            return true;
        }
        return false;
    }

  private:
    struct Entry
    {
        Tick when;
        int prio;
        EventId id;
        std::function<void()> fn;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.prio != b.prio)
                return a.prio > b.prio;
            return a.id > b.id;
        }
    };

    Tick _now = 0;
    EventId lastId = invalidEventId;
    std::priority_queue<Entry, std::vector<Entry>, Later> heap;
    std::unordered_set<EventId> live;
};

} // namespace lightpc

#endif // LIGHTPC_SIM_EVENT_QUEUE_HH
