/**
 * @file
 * Division by a runtime-fixed divisor, shift-based when possible.
 *
 * The memory routing paths (PSM interleaving, DRAM bank/row decode,
 * PRAM wear regions) divide every access by configuration values
 * that are fixed after construction and almost always powers of two.
 * FastDiv captures the divisor once and turns the per-access
 * divide/modulo into a shift/mask in that common case, falling back
 * to hardware division for odd configurations. Results are identical
 * either way.
 */

#ifndef LIGHTPC_SIM_FAST_DIV_HH
#define LIGHTPC_SIM_FAST_DIV_HH

#include <bit>
#include <cstdint>

namespace lightpc
{

/** Divide/modulo by a divisor fixed at configuration time. */
class FastDiv
{
  public:
    FastDiv() = default;

    explicit FastDiv(std::uint64_t divisor) { set(divisor); }

    /** Set the divisor. @pre divisor != 0. */
    void
    set(std::uint64_t divisor)
    {
        d = divisor;
        pow2 = std::has_single_bit(divisor);
        shift = static_cast<unsigned>(std::countr_zero(divisor));
    }

    std::uint64_t value() const { return d; }

    std::uint64_t
    div(std::uint64_t x) const
    {
        return pow2 ? x >> shift : x / d;
    }

    std::uint64_t
    mod(std::uint64_t x) const
    {
        return pow2 ? x & (d - 1) : x % d;
    }

  private:
    std::uint64_t d = 1;
    unsigned shift = 0;
    bool pow2 = true;
};

} // namespace lightpc

#endif // LIGHTPC_SIM_FAST_DIV_HH
