#include "sim/logging.hh"

#include <cstdlib>
#include <iostream>

namespace lightpc
{

namespace
{
bool logQuiet = false;
} // namespace

void
setLogQuiet(bool quiet)
{
    logQuiet = quiet;
}

namespace detail
{

void
panicImpl(const char *, int, const std::string &msg)
{
    std::cerr << "panic: " << msg << std::endl;
    std::abort();
}

void
fatalImpl(const char *, int, const std::string &msg)
{
    throw FatalError(msg);
}

void
warnImpl(const std::string &msg)
{
    if (!logQuiet)
        std::cerr << "warn: " << msg << std::endl;
}

void
informImpl(const std::string &msg)
{
    if (!logQuiet)
        std::cout << "info: " << msg << std::endl;
}

} // namespace detail

} // namespace lightpc
