#include "sim/logging.hh"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <mutex>

namespace lightpc
{

namespace
{

std::atomic<bool> logQuiet{false};

/**
 * One global sink guarded by one mutex: parallel campaign trials all
 * report through here, and each message must land as one intact line
 * (never interleaved mid-line with another worker's). Messages are
 * formatted before the lock, so the critical section is a single
 * stream insertion.
 */
std::mutex &
logMutex()
{
    static std::mutex m;
    return m;
}

} // namespace

void
setLogQuiet(bool quiet)
{
    logQuiet.store(quiet, std::memory_order_relaxed);
}

namespace detail
{

void
panicImpl(const char *, int, const std::string &msg)
{
    {
        const std::lock_guard<std::mutex> lock(logMutex());
        std::cerr << "panic: " + msg + "\n" << std::flush;
    }
    std::abort();
}

void
fatalImpl(const char *, int, const std::string &msg)
{
    throw FatalError(msg);
}

void
warnImpl(const std::string &msg)
{
    if (logQuiet.load(std::memory_order_relaxed))
        return;
    const std::lock_guard<std::mutex> lock(logMutex());
    std::cerr << "warn: " + msg + "\n" << std::flush;
}

void
informImpl(const std::string &msg)
{
    if (logQuiet.load(std::memory_order_relaxed))
        return;
    const std::lock_guard<std::mutex> lock(logMutex());
    std::cout << "info: " + msg + "\n" << std::flush;
}

} // namespace detail

} // namespace lightpc
