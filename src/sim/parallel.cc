#include "sim/parallel.hh"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <limits>
#include <mutex>
#include <thread>

namespace lightpc::sim
{

unsigned
hardwareThreads()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n ? n : 1;
}

unsigned
resolveThreads(unsigned requested)
{
    return requested ? requested : hardwareThreads();
}

unsigned
parseThreadsArg(const char *text)
{
    long value = 0;
    bool parsed = false;
    if (text && *text != '\0') {
        errno = 0;
        char *end = nullptr;
        value = std::strtol(text, &end, 10);
        parsed = end != text && *end == '\0' && errno != ERANGE;
    }
    if (!parsed || value <= 0
        || value > static_cast<long>(
               std::numeric_limits<int>::max())) {
        std::fprintf(stderr,
                     "warning: invalid thread count '%s' (expected a "
                     "positive integer); falling back to 1 worker\n",
                     text ? text : "");
        return 1;
    }
    return static_cast<unsigned>(value);
}

ParallelExecutor::ParallelExecutor(unsigned threads)
    : nThreads(resolveThreads(threads))
{}

namespace
{

constexpr std::uint64_t noIndex = ~std::uint64_t(0);

/**
 * One worker's slice of the trial index space. The owner pops from
 * the front, thieves carve off the back half; both under the shard
 * mutex. Trials run for milliseconds, so an uncontended lock per pop
 * is noise — what matters is that an index is claimed exactly once.
 */
struct Shard
{
    std::mutex m;
    std::uint64_t next = 0;
    std::uint64_t end = 0;
};

std::uint64_t
popOwn(Shard &shard)
{
    const std::lock_guard<std::mutex> lock(shard.m);
    return shard.next < shard.end ? shard.next++ : noIndex;
}

/**
 * Steal the back half of @p victim into @p self (which must be
 * empty). Returns true when work moved.
 */
bool
stealInto(Shard &victim, Shard &self)
{
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
    {
        const std::lock_guard<std::mutex> lock(victim.m);
        const std::uint64_t rem = victim.end - victim.next;
        if (rem < 2)
            return false;  // a lone index stays with its owner
        const std::uint64_t take = rem / 2;
        hi = victim.end;
        lo = victim.end - take;
        victim.end = lo;
    }
    const std::lock_guard<std::mutex> lock(self.m);
    self.next = lo;
    self.end = hi;
    return true;
}

} // namespace

void
ParallelExecutor::forEach(
    std::uint64_t count,
    const std::function<void(std::uint64_t)> &fn) const
{
    if (count == 0)
        return;

    const unsigned workers = static_cast<unsigned>(
        std::min<std::uint64_t>(nThreads, count));
    if (workers <= 1) {
        // The sequential kernel: no pool, no locks, ascending order.
        for (std::uint64_t i = 0; i < count; ++i)
            fn(i);
        return;
    }

    // Carve the index space into one contiguous slice per worker.
    std::vector<Shard> shards(workers);
    const std::uint64_t base = count / workers;
    const std::uint64_t extra = count % workers;
    std::uint64_t at = 0;
    for (unsigned w = 0; w < workers; ++w) {
        const std::uint64_t len = base + (w < extra ? 1 : 0);
        shards[w].next = at;
        shards[w].end = at + len;
        at += len;
    }

    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex errorMutex;

    auto worker = [&](unsigned self) {
        for (;;) {
            if (failed.load(std::memory_order_relaxed))
                return;
            std::uint64_t idx = popOwn(shards[self]);
            if (idx == noIndex) {
                // Steal from the fullest victim; re-sweep until a
                // full pass finds every shard empty (work is never
                // re-added, so that pass is the termination proof).
                unsigned victim = workers;
                std::uint64_t best = 0;
                for (unsigned v = 0; v < workers; ++v) {
                    if (v == self)
                        continue;
                    const std::lock_guard<std::mutex> lock(
                        shards[v].m);
                    const std::uint64_t rem =
                        shards[v].end - shards[v].next;
                    if (rem > best) {
                        best = rem;
                        victim = v;
                    }
                }
                if (victim == workers)
                    return;  // everything everywhere is claimed
                if (best >= 2
                    && stealInto(shards[victim], shards[self]))
                    idx = popOwn(shards[self]);
                else
                    idx = popOwn(shards[victim]);
                if (idx == noIndex)
                    continue;  // lost the race; sweep again
            }
            try {
                fn(idx);
            } catch (...) {
                const std::lock_guard<std::mutex> lock(errorMutex);
                if (!error)
                    error = std::current_exception();
                failed.store(true, std::memory_order_relaxed);
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (unsigned w = 1; w < workers; ++w)
        pool.emplace_back(worker, w);
    worker(0);
    for (std::thread &th : pool)
        th.join();

    if (error)
        std::rethrow_exception(error);
}

} // namespace lightpc::sim
