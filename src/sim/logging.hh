/**
 * @file
 * Status and error reporting, following the gem5 idiom.
 *
 * panic() is for conditions that indicate a bug in the simulator
 * itself and aborts; fatal() is for user-caused conditions (bad
 * configuration) and throws so that tests can observe it; warn() and
 * inform() report without stopping.
 *
 * All reporting paths are thread-safe: messages are formatted on the
 * calling thread and written to the shared sink under one mutex, so
 * parallel campaign trials can never interleave or tear each other's
 * log lines.
 */

#ifndef LIGHTPC_SIM_LOGGING_HH
#define LIGHTPC_SIM_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace lightpc
{

/** Exception thrown by fatal(): a user-correctable misconfiguration. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &what)
        : std::runtime_error(what)
    {}
};

namespace detail
{

/** Fold a parameter pack into one message string. */
template <typename... Args>
std::string
formatMessage(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/** Abort: a simulator bug that should never happen. */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::panicImpl("", 0,
                      detail::formatMessage(std::forward<Args>(args)...));
}

/** Stop: a user error (bad configuration, invalid argument). */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::fatalImpl("", 0,
                      detail::formatMessage(std::forward<Args>(args)...));
}

/** Report a suspicious but survivable condition. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::formatMessage(std::forward<Args>(args)...));
}

/** Report normal operating status. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::informImpl(detail::formatMessage(std::forward<Args>(args)...));
}

/** Quiet mode suppresses warn()/inform() output (used by tests). */
void setLogQuiet(bool quiet);

} // namespace lightpc

#endif // LIGHTPC_SIM_LOGGING_HH
