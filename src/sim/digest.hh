/**
 * @file
 * FNV-1a digest over 64-bit counters.
 *
 * Campaign results fold every observable counter into one of these;
 * equal digests at --threads 1 and --threads N are the determinism
 * proof the parallel campaign engine is held to. The byte-wise FNV
 * walk matches the ad-hoc digests the compound and service planes
 * shipped with, so historical digest values stay comparable.
 */

#ifndef LIGHTPC_SIM_DIGEST_HH
#define LIGHTPC_SIM_DIGEST_HH

#include <cstdint>

namespace lightpc::sim
{

/** Streaming FNV-1a over little-endian 64-bit words. */
struct Fnv64
{
    std::uint64_t h = 0xcbf29ce484222325ULL;

    void
    mix(std::uint64_t v)
    {
        for (int b = 0; b < 8; ++b) {
            h ^= (v >> (8 * b)) & 0xff;
            h *= 0x100000001b3ULL;
        }
    }
};

} // namespace lightpc::sim

#endif // LIGHTPC_SIM_DIGEST_HH
