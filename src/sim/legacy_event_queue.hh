/**
 * @file
 * The pre-pooling event queue, kept verbatim as a baseline.
 *
 * This is the kernel the repository shipped with before the
 * zero-allocation rewrite: a binary heap of std::function entries
 * with an unordered_set tracking liveness. It exists for two jobs:
 *
 *  - bench/sweep_main.cc measures it side by side with the pooled
 *    EventQueue so BENCH_kernel.json records the before/after
 *    throughput on every run, and
 *
 *  - the determinism tests replay identical schedule/cancel
 *    sequences through both kernels and assert the firing orders
 *    match exactly ((tick, priority, sequence) semantics must never
 *    drift).
 *
 * Do not use it in models; it pays one heap allocation and one hash
 * insert per event.
 */

#ifndef LIGHTPC_SIM_LEGACY_EVENT_QUEUE_HH
#define LIGHTPC_SIM_LEGACY_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/logging.hh"
#include "sim/ticks.hh"

namespace lightpc
{

/** Handle used to cancel an event scheduled on the legacy queue. */
using LegacyEventId = std::uint64_t;

/**
 * Baseline time-ordered callback queue (heap + unordered_set).
 */
class LegacyEventQueue
{
  public:
    LegacyEventQueue() = default;

    LegacyEventQueue(const LegacyEventQueue &) = delete;
    LegacyEventQueue &operator=(const LegacyEventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return _now; }

    /** Schedule @p fn at absolute time @p when. */
    LegacyEventId
    schedule(Tick when, std::function<void()> fn, int prio = 50)
    {
        if (when < _now)
            panic("scheduling event in the past: ", when, " < ", _now);
        const LegacyEventId id = ++lastId;
        heap.push(Entry{when, prio, id, std::move(fn)});
        live.insert(id);
        return id;
    }

    /** Cancel a previously scheduled event. Idempotent. */
    void
    deschedule(LegacyEventId id)
    {
        live.erase(id);
    }

    /** True when no live events remain. */
    bool empty() const { return live.empty(); }

    /** Number of live (scheduled, not cancelled) events. */
    std::size_t size() const { return live.size(); }

    /** Run events until the queue drains or time would pass @p limit. */
    Tick
    run(Tick limit = maxTick)
    {
        while (!heap.empty()) {
            if (heap.top().when > limit)
                break;
            Entry entry = heap.top();
            heap.pop();
            if (live.erase(entry.id) == 0)
                continue;  // descheduled
            _now = entry.when;
            entry.fn();
        }
        return _now;
    }

    /** Execute exactly one event. @return false if the queue is empty. */
    bool
    step()
    {
        while (!heap.empty()) {
            Entry entry = heap.top();
            heap.pop();
            if (live.erase(entry.id) == 0)
                continue;  // descheduled
            _now = entry.when;
            entry.fn();
            return true;
        }
        return false;
    }

  private:
    struct Entry
    {
        Tick when;
        int prio;
        LegacyEventId id;
        std::function<void()> fn;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.prio != b.prio)
                return a.prio > b.prio;
            return a.id > b.id;
        }
    };

    Tick _now = 0;
    LegacyEventId lastId = 0;
    std::priority_queue<Entry, std::vector<Entry>, Later> heap;
    std::unordered_set<LegacyEventId> live;
};

} // namespace lightpc

#endif // LIGHTPC_SIM_LEGACY_EVENT_QUEUE_HH
