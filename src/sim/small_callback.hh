/**
 * @file
 * Small-buffer-optimized callback storage for pooled events.
 *
 * std::function heap-allocates any capture larger than its (16 B on
 * libstdc++) internal buffer, which put one malloc/free pair on the
 * event kernel's hot path. SmallCallback stores captures of up to
 * inlineBytes directly inside the event slot; only oversized captures
 * fall back to the heap. Slots live in stable slabs and are never
 * relocated, so no move support is needed — just construct, invoke,
 * destroy.
 */

#ifndef LIGHTPC_SIM_SMALL_CALLBACK_HH
#define LIGHTPC_SIM_SMALL_CALLBACK_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace lightpc
{

/**
 * A non-movable type-erased void() callable with inline storage.
 */
class SmallCallback
{
  public:
    /** Captures up to this many bytes stay inside the event slot. */
    static constexpr std::size_t inlineBytes = 48;

    SmallCallback() = default;

    SmallCallback(const SmallCallback &) = delete;
    SmallCallback &operator=(const SmallCallback &) = delete;

    ~SmallCallback() { reset(); }

    /** Construct a callable in place. @pre empty. */
    template <typename F>
    void
    emplace(F &&fn)
    {
        using D = std::decay_t<F>;
        if constexpr (sizeof(D) <= inlineBytes
                      && alignof(D) <= alignof(std::max_align_t)) {
            ::new (static_cast<void *>(buf)) D(std::forward<F>(fn));
            invoke_ = [](void *p) { (*static_cast<D *>(p))(); };
            if constexpr (std::is_trivially_destructible_v<D>) {
                destroy_ = nullptr;
            } else {
                destroy_ = [](void *p) { static_cast<D *>(p)->~D(); };
            }
        } else {
            // Oversized capture: the slot holds only a pointer.
            D *heap = new D(std::forward<F>(fn));
            ::new (static_cast<void *>(buf)) D *(heap);
            invoke_ = [](void *p) { (**static_cast<D **>(p))(); };
            destroy_ = [](void *p) { delete *static_cast<D **>(p); };
        }
    }

    /** Invoke the stored callable. @pre engaged. */
    void operator()() { invoke_(buf); }

    /** True when a callable is stored. */
    bool engaged() const { return invoke_ != nullptr; }

    /** Destroy the stored callable (idempotent). */
    void
    reset()
    {
        if (destroy_)
            destroy_(buf);
        invoke_ = nullptr;
        destroy_ = nullptr;
    }

    /**
     * Destroy the callable without clearing the invoke pointer.
     * Cheaper than reset() on the hot path; the slot is either
     * re-emplace()d (which overwrites both pointers) or destroyed
     * (which only consults destroy_) afterwards.
     */
    void
    releaseAfterInvoke()
    {
        if (destroy_) {
            destroy_(buf);
            destroy_ = nullptr;
        }
    }

  private:
    alignas(std::max_align_t) unsigned char buf[inlineBytes];
    void (*invoke_)(void *) = nullptr;
    void (*destroy_)(void *) = nullptr;
};

} // namespace lightpc

#endif // LIGHTPC_SIM_SMALL_CALLBACK_HH
