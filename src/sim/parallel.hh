/**
 * @file
 * Work-stealing trial pool with deterministic reduction.
 *
 * Every headline result in this repro comes from hundreds of seeded,
 * fully isolated trials: each one builds its own platform::System (or
 * Kernel + Psm + BackingStore rig), draws from its own Rng stream,
 * and writes its own stat sinks. Trials therefore parallelize
 * embarrassingly — *if* the campaign output cannot depend on which
 * host thread ran which trial. ParallelExecutor enforces that split:
 *
 *  - The pool only decides *where* a trial index runs. Each worker
 *    owns a contiguous slice of the index space and pops from its
 *    front; a worker that drains its slice steals the back half of
 *    the fullest remaining slice (classic work stealing, coarse
 *    enough that the per-pop mutex costs nothing against trials that
 *    run for milliseconds).
 *
 *  - The reduction layer decides *what the campaign reports*: map()
 *    lands every trial's result in its canonical per-index slot, and
 *    reduce() folds those slots in ascending seed order regardless of
 *    completion order. A campaign digest computed from the reduction
 *    is therefore bit-identical at --threads 1 and --threads N — the
 *    determinism proof the benches and CI enforce.
 *
 * Event execution inside one trial stays single-threaded: the kernel
 * is a sequential discrete-event simulator and its determinism
 * argument (seeded Rng streams, tick-ordered queue) relies on that.
 * Parallelism lives strictly at the trial boundary.
 */

#ifndef LIGHTPC_SIM_PARALLEL_HH
#define LIGHTPC_SIM_PARALLEL_HH

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace lightpc::sim
{

/** Host hardware concurrency, never less than 1. */
unsigned hardwareThreads();

/**
 * Resolve a user-facing --threads knob: 0 means one worker per host
 * thread, anything else is taken literally.
 */
unsigned resolveThreads(unsigned requested);

/**
 * Parse a --threads / -j command-line value. Accepts strictly
 * positive decimal integers only. Anything else — zero, a negative
 * number (which a raw strtoul would wrap into a four-billion-worker
 * fleet), non-numeric text, trailing junk, or overflow — prints a
 * clear warning to stderr and returns the safe fallback of one
 * worker. Campaign results are digest-identical at any thread count,
 * so the fallback changes wall clock only, never output.
 */
unsigned parseThreadsArg(const char *text);

/**
 * Fans independent trial indices across host threads.
 */
class ParallelExecutor
{
  public:
    /** @param threads Worker count; 0 = hardwareThreads(). */
    explicit ParallelExecutor(unsigned threads = 0);

    unsigned threads() const { return nThreads; }

    /**
     * Run @p fn(i) once for every i in [0, count). Trials must be
     * mutually independent; @p fn is invoked concurrently from
     * multiple threads (the calling thread participates as worker 0).
     * With one worker — or one trial — everything runs inline on the
     * calling thread, so --threads 1 is exactly the sequential
     * kernel. The first exception a trial throws is rethrown here
     * after all workers drain.
     */
    void forEach(std::uint64_t count,
                 const std::function<void(std::uint64_t)> &fn) const;

    /**
     * forEach() with each trial's result captured in its canonical
     * per-index slot, regardless of which worker produced it.
     */
    template <typename R, typename Fn>
    std::vector<R>
    map(std::uint64_t count, Fn &&fn) const
    {
        std::vector<R> out(static_cast<std::size_t>(count));
        forEach(count, [&](std::uint64_t i) {
            out[static_cast<std::size_t>(i)] = fn(i);
        });
        return out;
    }

    /**
     * The deterministic reduction: run @p trial(i) for every index,
     * then fold the per-trial results into @p init with
     * @p merge(acc, result) in ascending index order. Completion
     * order never leaks into the fold, so any merge that is
     * well-defined sequentially yields the same campaign aggregate
     * at every thread count.
     */
    template <typename R, typename TrialFn, typename MergeFn>
    R
    reduce(std::uint64_t count, R init, TrialFn &&trial,
           MergeFn &&merge) const
    {
        const std::vector<R> partials =
            map<R>(count, std::forward<TrialFn>(trial));
        R acc = std::move(init);
        for (const R &partial : partials)
            merge(acc, partial);
        return acc;
    }

  private:
    unsigned nThreads;
};

} // namespace lightpc::sim

#endif // LIGHTPC_SIM_PARALLEL_HH
