/**
 * @file
 * Base class for named simulation components.
 */

#ifndef LIGHTPC_SIM_SIM_OBJECT_HH
#define LIGHTPC_SIM_SIM_OBJECT_HH

#include <string>
#include <utility>

namespace lightpc
{

class EventQueue;

/**
 * A named component attached to an event queue.
 *
 * Names follow a dotted hierarchy (e.g. "system.psm.rowbuf0") and are
 * used to label statistics and log messages.
 */
class SimObject
{
  public:
    SimObject(std::string name, EventQueue &eq)
        : _name(std::move(name)), _eventQueue(&eq)
    {}

    virtual ~SimObject() = default;

    SimObject(const SimObject &) = delete;
    SimObject &operator=(const SimObject &) = delete;

    /** Hierarchical instance name. */
    const std::string &name() const { return _name; }

    /** The event queue this object schedules on. */
    EventQueue &eventQueue() const { return *_eventQueue; }

  private:
    std::string _name;
    EventQueue *_eventQueue;
};

} // namespace lightpc

#endif // LIGHTPC_SIM_SIM_OBJECT_HH
