/**
 * @file
 * Component power models and energy integration.
 *
 * Power in LightPC's evaluation splits into a static part (core
 * idle/active power, DRAM background + refresh — the burden LightPC
 * removes) and a dynamic part (per-access energy). The PowerModel
 * composes per-component contributions over simulated intervals;
 * constants live in PowerConstants and are calibrated once in
 * platform/ against the paper's 18.9 W (LegacyPC) / 5.3 W (LightPC)
 * totals, then reused unchanged by every experiment.
 */

#ifndef LIGHTPC_POWER_POWER_MODEL_HH
#define LIGHTPC_POWER_POWER_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/ticks.hh"

namespace lightpc::power
{

/** Per-core power. */
struct CorePower
{
    double activeWatts = 0.45;
    double idleWatts = 0.08;
};

/** Per-DIMM DRAM power. */
struct DramPower
{
    /** Background (precharge standby, I/O, PLL) per DIMM. */
    double backgroundWatts = 1.35;

    /** Refresh burden per DIMM (the part PRAM does not pay). */
    double refreshWatts = 0.75;

    /** Dynamic energy per 64 B access. */
    double accessNanojoules = 18.0;
};

/** Per-DIMM bare PRAM power. */
struct PramPower
{
    /** Standby power per Bare-NVDIMM (no refresh, no DLL). */
    double backgroundWatts = 0.12;

    /** Dynamic energy per 64 B read. */
    double readNanojoules = 12.0;

    /** Dynamic energy per 64 B write (RESET/SET pulses). */
    double writeNanojoules = 55.0;
};

/** Per-DIMM Optane-style PMEM complex power. */
struct PmemPower
{
    /** Controller + internal SRAM/DRAM + firmware standby. */
    double backgroundWatts = 2.2;

    /** Dynamic energy per 64 B access (buffer + media average). */
    double accessNanojoules = 70.0;
};

/** The full constant set used by a platform. */
struct PowerConstants
{
    CorePower core;
    DramPower dram;
    PramPower pram;
    PmemPower pmem;

    /** Baseboard / uncore / PSM logic overhead. */
    double uncoreWatts = 0.55;
};

/**
 * Accumulates energy from static power over intervals and dynamic
 * energy per operation.
 */
class EnergyMeter
{
  public:
    /** Charge @p watts of static power over @p duration. */
    void
    addStatic(double watts, Tick duration)
    {
        _joules += watts * ticksToSec(duration);
    }

    /** Charge @p count operations of @p nanojoules each. */
    void
    addDynamic(double nanojoules, std::uint64_t count)
    {
        _joules += nanojoules * 1e-9 * static_cast<double>(count);
    }

    /** Total accumulated energy. */
    double joules() const { return _joules; }

    /** Average power over @p duration. */
    double
    averageWatts(Tick duration) const
    {
        const double sec = ticksToSec(duration);
        return sec > 0.0 ? _joules / sec : 0.0;
    }

    void reset() { _joules = 0.0; }

  private:
    double _joules = 0.0;
};

/** A snapshot of activity used to evaluate platform power. */
struct ActivitySample
{
    Tick duration = 0;
    std::uint32_t coresActive = 0;
    std::uint32_t coresIdle = 0;
    /** Fraction of the interval each active core actually computed. */
    double coreUtilization = 1.0;
    std::uint64_t dramAccesses = 0;
    std::uint64_t pramReads = 0;
    std::uint64_t pramWrites = 0;
    std::uint64_t pmemAccesses = 0;
    std::uint32_t dramDimms = 0;
    std::uint32_t pramDimms = 0;
    std::uint32_t pmemDimms = 0;
};

/**
 * Evaluates power/energy for activity snapshots.
 */
class PowerModel
{
  public:
    explicit PowerModel(const PowerConstants &constants =
                            PowerConstants())
        : k(constants)
    {}

    const PowerConstants &constants() const { return k; }

    /** Energy of one activity sample, in joules. */
    double energyOf(const ActivitySample &sample) const;

    /** Average power of one activity sample, in watts. */
    double
    powerOf(const ActivitySample &sample) const
    {
        const double sec = ticksToSec(sample.duration);
        return sec > 0.0 ? energyOf(sample) / sec : 0.0;
    }

    /** Static (time-proportional) platform power for a sample. */
    double staticWattsOf(const ActivitySample &sample) const;

  private:
    PowerConstants k;
};

} // namespace lightpc::power

#endif // LIGHTPC_POWER_POWER_MODEL_HH
