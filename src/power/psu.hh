/**
 * @file
 * Power supply unit hold-up model (Fig. 8a / Fig. 20).
 *
 * When AC is removed, the PSU's bulk capacitors keep the rails in
 * specification for the hold-up time; SnG must finish within it. The
 * hold-up time depends on the load: the paper measures 22 ms on a
 * standard ATX unit and 55 ms on a Dell server unit with the
 * processor fully utilized, both longer than the 16 ms the ATX
 * specification guarantees (which is what SnG is engineered
 * against).
 */

#ifndef LIGHTPC_POWER_PSU_HH
#define LIGHTPC_POWER_PSU_HH

#include <string>

#include "sim/ticks.hh"

namespace lightpc::power
{

/** One PSU's stored-energy model. */
struct PsuSpec
{
    std::string name;

    /** Usable energy in the bulk capacitors at nominal rail droop. */
    double storedJoules = 0.0;

    /** The load at which the vendor/measured hold-up was taken. */
    double referenceLoadWatts = 0.0;

    /** Hold-up time documented by the relevant specification. */
    Tick specHoldup = 0;

    /**
     * Recharge rate of the bulk capacitors while AC is present (the
     * inrush/PFC stage limits it). Brownout models use it to refill
     * the reserve between sags; 0 keeps the reserve frozen.
     */
    double rechargeWatts = 0.0;
};

/**
 * PSU hold-up calculator.
 */
class PsuModel
{
  public:
    explicit PsuModel(const PsuSpec &spec) : _spec(spec) {}

    const PsuSpec &spec() const { return _spec; }

    /** Hold-up time at @p loadWatts. */
    Tick
    holdupTime(double load_watts) const
    {
        if (load_watts <= 0.0)
            return maxTick;
        const double seconds = _spec.storedJoules / load_watts;
        return static_cast<Tick>(seconds
                                 * static_cast<double>(tickSec));
    }

    /** Residual stored energy after @p elapsed at @p loadWatts. */
    double
    residualJoules(double load_watts, Tick elapsed) const
    {
        const double used = load_watts * ticksToSec(elapsed);
        return used >= _spec.storedJoules
            ? 0.0 : _spec.storedJoules - used;
    }

    /**
     * The standard ATX unit (Super Flower SF-600R12A class):
     * measured 22 ms hold-up fully loaded, 16 ms per specification.
     */
    static PsuModel
    atx()
    {
        // 22 ms at the prototype's fully-utilized 18.9 W load; the
        // PFC stage refills the bulk caps in tens of milliseconds
        // once AC returns.
        return PsuModel({"ATX", 0.022 * 18.9, 18.9, 16 * tickMs,
                         25.0});
    }

    /** The Dell server unit: measured 55 ms fully loaded. */
    static PsuModel
    dellServer()
    {
        return PsuModel({"Server", 0.055 * 18.9, 18.9, 55 * tickMs,
                         60.0});
    }

  private:
    PsuSpec _spec;
};

} // namespace lightpc::power

#endif // LIGHTPC_POWER_PSU_HH
