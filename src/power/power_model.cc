#include "power/power_model.hh"

namespace lightpc::power
{

double
PowerModel::staticWattsOf(const ActivitySample &sample) const
{
    double watts = k.uncoreWatts;
    watts += sample.coresActive
        * (k.core.idleWatts
           + (k.core.activeWatts - k.core.idleWatts)
               * sample.coreUtilization);
    watts += sample.coresIdle * k.core.idleWatts;
    watts += sample.dramDimms
        * (k.dram.backgroundWatts + k.dram.refreshWatts);
    watts += sample.pramDimms * k.pram.backgroundWatts;
    watts += sample.pmemDimms * k.pmem.backgroundWatts;
    return watts;
}

double
PowerModel::energyOf(const ActivitySample &sample) const
{
    EnergyMeter meter;
    meter.addStatic(staticWattsOf(sample), sample.duration);
    meter.addDynamic(k.dram.accessNanojoules, sample.dramAccesses);
    meter.addDynamic(k.pram.readNanojoules, sample.pramReads);
    meter.addDynamic(k.pram.writeNanojoules, sample.pramWrites);
    meter.addDynamic(k.pmem.accessNanojoules, sample.pmemAccesses);
    return meter.joules();
}

} // namespace lightpc::power
