/**
 * @file
 * The conventional PMEM operating modes compared in Fig. 4.
 *
 * Five configurations run the same workloads:
 *
 *  - DramOnly: the non-persistent reference (local-node DRAM).
 *  - MemMode: PMEM as working memory behind the NMEM controller,
 *    which caches PMEM data in local-node DRAM and overlaps the
 *    transfer latencies ("snarf") — within ~1.3% of DRAM-only.
 *  - AppMode: app-direct + DAX; loads/stores go to the PMEM DIMM
 *    complex itself (internal buffer lookups, device-level
 *    translation) — ~28% slower, ~47% more memory power.
 *  - ObjectMode: libpmemobj on top of app-direct; every object
 *    access pays offset-pointer swizzling in software (~1.8x).
 *  - TransMode: object mode with durable transactions; stores are
 *    undo-logged and every commit runs a pmem_persist cacheline
 *    flush loop (~8.7x vs DRAM-only).
 *
 * Object/Trans overheads are modeled as *instruction-stream
 * decorators*: the software work (swizzle arithmetic, log copies,
 * flush stalls) becomes real instructions and real extra memory
 * traffic, so the slowdown and power both emerge mechanistically.
 */

#ifndef LIGHTPC_PLATFORM_PMEM_MODES_HH
#define LIGHTPC_PLATFORM_PMEM_MODES_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cpu/instr.hh"
#include "mem/memory_port.hh"
#include "mem/pmem_dimm.hh"
#include "mem/tag_cache.hh"
#include "platform/dram_array.hh"
#include "platform/system.hh"
#include "sim/rng.hh"
#include "workload/spec.hh"

namespace lightpc::platform
{

/** The five Fig. 4 configurations. */
enum class PmemMode
{
    DramOnly,
    MemMode,
    AppMode,
    ObjectMode,
    TransMode,
};

std::string pmemModeName(PmemMode mode);

/**
 * Interleaved PMEM DIMMs behind one port (app-direct path).
 */
class PmemArray : public mem::MemoryPort
{
  public:
    explicit PmemArray(std::uint32_t dimms = 4,
                       const mem::PmemDimmParams &params =
                           mem::PmemDimmParams(),
                       std::uint64_t interleave_bytes = 4096);

    mem::AccessResult access(const mem::MemRequest &req,
                             Tick when) override;

    std::uint32_t dimmCount() const
    {
        return static_cast<std::uint32_t>(devices.size());
    }

    mem::PmemDimm &dimm(std::uint32_t idx) { return *devices[idx]; }

    std::uint64_t totalAccesses() const { return accesses; }

  private:
    std::uint64_t interleave;
    std::vector<std::unique_ptr<mem::PmemDimm>> devices;
    std::uint64_t accesses = 0;
};

/**
 * The NMEM controller: DRAM as a cache in front of PMEM (mem-mode).
 */
class NmemPort : public mem::MemoryPort
{
  public:
    NmemPort(DramArray &dram, PmemArray &pmem,
             std::uint64_t cache_bytes = std::uint64_t(16) << 30);

    mem::AccessResult access(const mem::MemRequest &req,
                             Tick when) override;

    std::uint64_t hits() const { return _hits; }
    std::uint64_t misses() const { return _misses; }

  private:
    DramArray &dram;
    PmemArray &pmem;
    mem::TagCache tags;
    std::uint64_t _hits = 0;
    std::uint64_t _misses = 0;
};

/** Software-overhead knobs for the PMDK-like runtime. */
struct PmdkStreamParams
{
    /** Probability that a memory op pays an object-ID swizzle. */
    double swizzleProbability = 0.05;

    /** ALU instructions per swizzle (offset arithmetic + checks). */
    std::uint32_t swizzleOps = 14;

    /**
     * Object metadata region the swizzle dereferences (root/header
     * lookups — extra memory traffic object-mode pays).
     */
    mem::Addr metadataBase = std::uint64_t(2) << 32;
    std::uint64_t metadataBytes = std::uint64_t(8) << 20;

    /** Stores per transaction (TX_BEGIN .. TX_END granularity). */
    std::uint32_t txStores = 8;

    /** ALU-equivalents per cacheline flushed by pmem_persist. */
    std::uint32_t flushOps = 95;

    /** ALU-equivalents for the commit fence. */
    std::uint32_t fenceOps = 160;

    /** Undo-log region base (extra write traffic, 100% overhead). */
    mem::Addr logBase = std::uint64_t(3) << 32;

    std::uint64_t seed = 1234;
};

/**
 * Object-mode decorator: swizzle work before object accesses.
 */
class ObjectModeStream : public cpu::InstrStream
{
  public:
    ObjectModeStream(cpu::InstrStream &inner,
                     const PmdkStreamParams &params);

    bool next(cpu::Instr &out) override;

  private:
    cpu::InstrStream &inner;
    PmdkStreamParams params;
    Rng rng;
    std::uint32_t pendingAlu = 0;
    cpu::Instr held;
    bool holding = false;
};

/**
 * Trans-mode decorator: object mode plus undo logging and commit
 * flush loops.
 */
class TransModeStream : public cpu::InstrStream
{
  public:
    TransModeStream(cpu::InstrStream &inner,
                    const PmdkStreamParams &params);

    bool next(cpu::Instr &out) override;

    std::uint64_t commits() const { return _commits; }

  private:
    ObjectModeStream objectStream;
    PmdkStreamParams params;
    std::uint32_t storesInTx = 0;
    std::uint32_t pendingAlu = 0;
    bool pendingLogStore = false;
    mem::Addr logCursor;
    cpu::Instr held;
    bool holding = false;
    std::uint64_t _commits = 0;
};

/** Result row of one Fig. 4 run. */
struct PmemModeResult
{
    PmemMode mode;
    RunResult run;

    /** Memory-subsystem-only power (what Fig. 4b reports). */
    double memWatts = 0.0;
    double memJoules = 0.0;
};

/**
 * Run one workload under one mode on a fresh system.
 */
PmemModeResult runPmemMode(PmemMode mode,
                           const workload::WorkloadSpec &spec,
                           std::uint64_t scale_divisor = 100,
                           std::uint64_t seed = 42,
                           std::uint32_t cores = 8);

} // namespace lightpc::platform

#endif // LIGHTPC_PLATFORM_PMEM_MODES_HH
