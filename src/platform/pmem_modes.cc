#include "platform/pmem_modes.hh"

#include <algorithm>

#include "power/power_model.hh"
#include "sim/logging.hh"
#include "workload/synthetic.hh"

namespace lightpc::platform
{

std::string
pmemModeName(PmemMode mode)
{
    switch (mode) {
      case PmemMode::DramOnly:
        return "DRAM-only";
      case PmemMode::MemMode:
        return "mem-mode";
      case PmemMode::AppMode:
        return "app-mode";
      case PmemMode::ObjectMode:
        return "object-mode";
      case PmemMode::TransMode:
        return "trans-mode";
    }
    return "?";
}

PmemArray::PmemArray(std::uint32_t dimms,
                     const mem::PmemDimmParams &params,
                     std::uint64_t interleave_bytes)
    : interleave(interleave_bytes)
{
    if (dimms == 0)
        fatal("PmemArray requires at least one DIMM");
    for (std::uint32_t i = 0; i < dimms; ++i)
        devices.push_back(std::make_unique<mem::PmemDimm>(params));
}

mem::AccessResult
PmemArray::access(const mem::MemRequest &req, Tick when)
{
    ++accesses;
    const std::uint64_t chunk = req.addr / interleave;
    mem::PmemDimm &dev = *devices[chunk % devices.size()];
    mem::MemRequest local = req;
    local.addr = (chunk / devices.size()) * interleave
        + req.addr % interleave;
    return dev.access(local, when);
}

NmemPort::NmemPort(DramArray &dram, PmemArray &pmem,
                   std::uint64_t cache_bytes)
    : dram(dram), pmem(pmem), tags(cache_bytes, 4096, 16)
{
}

mem::AccessResult
NmemPort::access(const mem::MemRequest &req, Tick when)
{
    // The NMEM controller caches PMEM contents in local-node DRAM;
    // the "snarf" shared-memory interface overlaps the PMEM and DRAM
    // transfers on a miss.
    const auto tag = tags.access(req.addr,
                                 req.op == mem::MemOp::Write);
    if (tag.hit) {
        ++_hits;
        return dram.access(req, when);
    }

    ++_misses;
    if (tag.evicted && tag.evictedDirty) {
        // Write the victim 4 KB block back to PMEM (background).
        mem::MemRequest wb;
        wb.op = mem::MemOp::Write;
        wb.addr = tag.evictedBlock;
        pmem.access(wb, when);
    }

    // Fill: PMEM read overlapped with the DRAM-side installation.
    const mem::AccessResult pmem_result = pmem.access(req, when);
    const mem::AccessResult dram_result = dram.access(req, when);
    mem::AccessResult result = pmem_result;
    result.completeAt =
        std::max(pmem_result.completeAt, dram_result.completeAt);

    // The NMEM controller prefetches the next 4 KB block into the
    // DRAM cache in the background (the snarf interface overlaps
    // the transfer), hiding the miss cost of sequential sweeps.
    const mem::Addr next_block = tags.blockOf(req.addr) + 4096;
    if (!tags.contains(next_block)) {
        const auto pf = tags.access(next_block, /*dirty=*/false);
        if (pf.evicted && pf.evictedDirty) {
            mem::MemRequest wb;
            wb.op = mem::MemOp::Write;
            wb.addr = pf.evictedBlock;
            pmem.access(wb, when);
        }
        mem::MemRequest pf_req;
        pf_req.op = mem::MemOp::Read;
        pf_req.addr = next_block;
        pmem.access(pf_req, when);
    }
    return result;
}

ObjectModeStream::ObjectModeStream(cpu::InstrStream &inner_in,
                                   const PmdkStreamParams &params_in)
    : inner(inner_in), params(params_in), rng(params_in.seed)
{
}

bool
ObjectModeStream::next(cpu::Instr &out)
{
    if (pendingAlu > 0) {
        --pendingAlu;
        out = {cpu::InstrKind::Alu, 0};
        return true;
    }
    if (holding) {
        holding = false;
        out = held;
        return true;
    }
    if (!inner.next(out))
        return false;

    if (out.kind != cpu::InstrKind::Alu
        && rng.chance(params.swizzleProbability)) {
        // Persistent-pointer swizzle: dereference the object header
        // in the pool metadata region, then offset arithmetic,
        // before the actual access.
        held = out;
        holding = true;
        pendingAlu = params.swizzleOps - 1;
        const mem::Addr header = params.metadataBase
            + (rng.below(params.metadataBytes) & ~std::uint64_t(63));
        out = {cpu::InstrKind::Load, header};
        return true;
    }
    return true;
}

TransModeStream::TransModeStream(cpu::InstrStream &inner_in,
                                 const PmdkStreamParams &params_in)
    : objectStream(inner_in, params_in),
      params(params_in),
      logCursor(params_in.logBase)
{
}

bool
TransModeStream::next(cpu::Instr &out)
{
    if (pendingAlu > 0) {
        --pendingAlu;
        out = {cpu::InstrKind::Alu, 0};
        return true;
    }
    if (pendingLogStore) {
        // The undo-log copy of the line about to change (the 100%
        // write-traffic overhead of durable transactions).
        pendingLogStore = false;
        out = {cpu::InstrKind::Store, logCursor};
        logCursor += mem::cacheLineBytes;
        return true;
    }
    if (holding) {
        holding = false;
        out = held;
        return true;
    }
    if (!objectStream.next(out))
        return false;

    if (out.kind == cpu::InstrKind::Store) {
        held = out;
        holding = true;
        pendingLogStore = true;
        if (++storesInTx >= params.txStores) {
            // TX_END: pmem_persist flushes each logged cacheline
            // (the stores and their log copies), then fences.
            storesInTx = 0;
            ++_commits;
            pendingAlu = params.flushOps * params.txStores * 2
                + params.fenceOps;
        }
        // Emit the log store first.
        pendingLogStore = false;
        out = {cpu::InstrKind::Store, logCursor};
        logCursor += mem::cacheLineBytes;
        return true;
    }
    return true;
}

PmemModeResult
runPmemMode(PmemMode mode, const workload::WorkloadSpec &spec,
            std::uint64_t scale_divisor, std::uint64_t seed,
            std::uint32_t cores)
{
    // Mode-specific memory fabric. The DIMM's internal SRAM/DRAM
    // buffers are scaled with the same divisor as the workload
    // footprints (the real 190 GB working sets dwarf the 16 GB of
    // internal DRAM by ~12x; the scaled footprints must dwarf the
    // scaled buffers the same way, or app-direct mode would be
    // entirely buffer-served).
    auto dram = std::make_unique<DramArray>(6);
    mem::PmemDimmParams dimm_params;
    dimm_params.sramBytes = 64 * 1024;
    dimm_params.dramBytes = std::uint64_t(2) << 20;
    auto pmem = std::make_unique<PmemArray>(4, dimm_params);
    std::unique_ptr<NmemPort> nmem;

    mem::MemoryPort *port = nullptr;
    switch (mode) {
      case PmemMode::DramOnly:
        port = dram.get();
        break;
      case PmemMode::MemMode:
        nmem = std::make_unique<NmemPort>(*dram, *pmem);
        port = nmem.get();
        break;
      case PmemMode::AppMode:
      case PmemMode::ObjectMode:
      case PmemMode::TransMode:
        port = pmem.get();
        break;
    }

    SystemConfig config;
    config.kind = PlatformKind::LegacyPC;
    config.cores = cores;
    config.scaleDivisor = scale_divisor;
    config.seed = seed;
    config.overridePort = port;
    System system(config);

    workload::SyntheticConfig wconfig;
    wconfig.scaleDivisor = scale_divisor;
    wconfig.seed = seed;
    auto streams = workload::makeStreams(spec, wconfig, cores,
                                         System::workloadBase);

    PmdkStreamParams pmdk;
    pmdk.seed = seed * 31 + 7;
    std::vector<std::unique_ptr<cpu::InstrStream>> decorated;
    std::vector<cpu::InstrStream *> raw;
    for (auto &stream : streams) {
        cpu::InstrStream *use = stream.get();
        if (mode == PmemMode::ObjectMode) {
            decorated.push_back(
                std::make_unique<ObjectModeStream>(*use, pmdk));
            use = decorated.back().get();
        } else if (mode == PmemMode::TransMode) {
            decorated.push_back(
                std::make_unique<TransModeStream>(*use, pmdk));
            use = decorated.back().get();
        }
        raw.push_back(use);
    }

    PmemModeResult result;
    result.mode = mode;
    result.run = system.runStreams(raw);
    result.run.workload = spec.name;
    result.run.platform = pmemModeName(mode);

    // Memory-subsystem power, measured the way Fig. 4b does
    // (LIKWID/RAPL style): per-access dynamic energy dominates, with
    // only the active controllers' standby power on top — idle DIMM
    // background is not attributed to the workload.
    const auto &k = system.powerModel().constants();
    power::EnergyMeter meter;
    const bool has_dram =
        mode == PmemMode::DramOnly || mode == PmemMode::MemMode;
    const bool has_pmem = mode != PmemMode::DramOnly;
    if (has_dram) {
        meter.addStatic(0.5, result.run.elapsed);
        meter.addDynamic(k.dram.accessNanojoules,
                         dram->totalAccesses());
    }
    if (has_pmem) {
        meter.addStatic(0.7, result.run.elapsed);
        meter.addDynamic(k.pmem.accessNanojoules,
                         pmem->totalAccesses());
    }
    result.memJoules = meter.joules();
    result.memWatts = meter.averageWatts(result.run.elapsed);
    result.run.watts = result.memWatts;
    result.run.joules = result.memJoules;
    return result;
}

} // namespace lightpc::platform
