#include "platform/system.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace lightpc::platform
{

std::string
platformName(PlatformKind kind)
{
    switch (kind) {
      case PlatformKind::LegacyPC:
        return "LegacyPC";
      case PlatformKind::LightPCB:
        return "LightPC-B";
      case PlatformKind::LightPC:
        return "LightPC";
    }
    return "?";
}

psm::PsmParams
psmParamsFor(PlatformKind kind, std::uint32_t dimms)
{
    psm::PsmParams params;
    params.dimms = dimms;
    params.dimm.layout = psm::DimmLayout::DualChannel;
    switch (kind) {
      case PlatformKind::LightPC:
      case PlatformKind::LegacyPC:
        // LegacyPC's OC-PMEM (the persistence target of the
        // checkpoint baselines) is the same full-featured PSM.
        params.earlyReturnWrites = true;
        params.eccReconstruction = true;
        break;
      case PlatformKind::LightPCB:
        // The baseline handles writes and read-after-writes like a
        // conventional controller: synchronous at the media.
        params.earlyReturnWrites = false;
        params.eccReconstruction = false;
        break;
    }
    return params;
}

System::System(const SystemConfig &config)
    : _config(config)
{
    if (_config.cores == 0)
        fatal("System requires at least one core");

    psm::PsmParams psm_params = _config.psmParams
        ? *_config.psmParams
        : psmParamsFor(_config.kind, _config.pmemDimms);
    // RAS knobs layer on top of whichever base was chosen, so a
    // campaign can flip one arm without restating the PSM geometry.
    if (_config.mcePolicy)
        psm_params.mcePolicy = *_config.mcePolicy;
    if (_config.mediaFaults)
        psm_params.dimm.device.faults = *_config.mediaFaults;
    if (_config.spareLines)
        psm_params.spareLines = *_config.spareLines;
    _psm = std::make_unique<psm::Psm>(psm_params);

    if (_config.kind == PlatformKind::LegacyPC)
        _dram = std::make_unique<DramArray>(6);

    ownedPort = std::make_unique<RoutedPort>(_dram.get(), *_psm);
    routedPort = _config.overridePort ? _config.overridePort
                                      : ownedPort.get();

    cpu::CoreParams core_params;
    core_params.freqMhz = _config.freqMhz;
    for (std::uint32_t i = 0; i < _config.cores; ++i) {
        cores.push_back(std::make_unique<cpu::Core>(
            "system.core" + std::to_string(i), eq, core_params,
            *routedPort));
    }

    kernel::KernelParams kparams = _config.kernel;
    kparams.cores = _config.cores;
    _kernel = std::make_unique<kernel::Kernel>(kparams);

    std::vector<cache::L1Cache *> sng_caches;
    for (auto &core : cores)
        sng_caches.push_back(&core->dcache());
    _sng = std::make_unique<pecos::Sng>(*_kernel, *_psm, _pmemStore,
                                        std::move(sng_caches));
    _mce = std::make_unique<pecos::MceHandler>(*_kernel, *_psm);
}

System::~System() = default;

RunResult
System::run(const workload::WorkloadSpec &spec)
{
    workload::SyntheticConfig wconfig;
    wconfig.scaleDivisor = _config.scaleDivisor;
    wconfig.seed = _config.seed;
    auto streams = workload::makeStreams(spec, wconfig,
                                         coreCount(), workloadBase);

    std::vector<cpu::InstrStream *> raw;
    raw.reserve(streams.size());
    for (auto &stream : streams)
        raw.push_back(stream.get());

    RunResult result = runStreams(raw);
    result.workload = spec.name;
    return result;
}

RunResult
System::runStreams(std::vector<cpu::InstrStream *> streams, Tick until)
{
    if (streams.empty())
        fatal("runStreams with no streams");
    if (streams.size() > cores.size())
        fatal("more streams than cores");

    const Tick start = eq.now();
    for (std::size_t i = 0; i < streams.size(); ++i)
        cores[i]->run(*streams[i], start);

    eq.run(until);

    Tick end = eq.now();
    for (std::size_t i = 0; i < streams.size(); ++i)
        end = std::max(end, cores[i]->localTime());

    return collect(end - start,
                   static_cast<std::uint32_t>(streams.size()));
}

power::ActivitySample
System::activity(Tick elapsed, std::uint32_t active_cores) const
{
    power::ActivitySample sample;
    sample.duration = elapsed;
    sample.coresActive = active_cores;
    sample.coresIdle = _config.cores - active_cores;

    Tick busy = 0;
    for (const auto &core : cores)
        busy += core->stats().busyTicks;
    sample.coreUtilization = (elapsed && active_cores)
        ? std::min(1.0,
                   static_cast<double>(busy)
                       / (static_cast<double>(elapsed) * active_cores))
        : 0.0;

    if (_dram) {
        sample.dramDimms = _dram->dimmCount();
        sample.dramAccesses = _dram->totalAccesses();
    }
    sample.pramDimms = _config.pmemDimms;
    sample.pramReads = _psm->stats().reads;
    sample.pramWrites = _psm->stats().writes;
    return sample;
}

RunResult
System::collect(Tick elapsed, std::uint32_t active_cores) const
{
    RunResult result;
    result.platform = platformName(_config.kind);
    result.elapsed = elapsed;

    for (const auto &core : cores) {
        const cpu::CoreStats &stats = core->stats();
        result.instructions += stats.instructions;
        result.coreTotals.instructions += stats.instructions;
        result.coreTotals.loads += stats.loads;
        result.coreTotals.stores += stats.stores;
        result.coreTotals.busyTicks += stats.busyTicks;
        result.coreTotals.loadStallTicks += stats.loadStallTicks;
        result.coreTotals.storeStallTicks += stats.storeStallTicks;
    }

    const Tick period = periodFromMhz(_config.freqMhz);
    result.cycles = elapsed / period;
    result.ipc = result.cycles
        ? static_cast<double>(result.instructions)
            / static_cast<double>(result.cycles) : 0.0;

    std::uint64_t load_hits = 0, load_total = 0;
    std::uint64_t store_hits = 0, store_total = 0;
    for (const auto &core : cores) {
        const cache::L1Stats &cs = core->dcache().stats();
        load_hits += cs.loadHits;
        load_total += cs.loadHits + cs.loadMisses;
        store_hits += cs.storeHits;
        store_total += cs.storeHits + cs.storeMisses;
    }
    result.loadHitRate = load_total
        ? static_cast<double>(load_hits)
            / static_cast<double>(load_total) : 0.0;
    result.storeHitRate = store_total
        ? static_cast<double>(store_hits)
            / static_cast<double>(store_total) : 0.0;
    result.memReads = result.coreTotals.loads;
    result.memWrites = result.coreTotals.stores;

    result.psmStats = _psm->stats();
    result.memReadLatencyNs = _psm->readLatencyHist().mean() / tickNs;

    const power::ActivitySample sample =
        activity(elapsed, active_cores);
    result.joules = _power.energyOf(sample);
    result.watts = _power.powerOf(sample);
    return result;
}

} // namespace lightpc::platform
