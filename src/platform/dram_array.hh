/**
 * @file
 * A bank of DRAM DIMMs behind one memory port (LegacyPC's working
 * memory and the local-node DRAM of the PMEM complex).
 */

#ifndef LIGHTPC_PLATFORM_DRAM_ARRAY_HH
#define LIGHTPC_PLATFORM_DRAM_ARRAY_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "mem/dram_device.hh"
#include "mem/memory_port.hh"
#include "mem/request.hh"

namespace lightpc::platform
{

/**
 * Page-interleaved DRAM DIMMs.
 */
class DramArray : public mem::MemoryPort
{
  public:
    /**
     * @param dimms            Number of DIMMs (prototype board: 6).
     * @param params           Per-DIMM configuration.
     * @param interleave_bytes Address interleave granularity.
     */
    /**
     * @param dimms            Number of DIMMs (prototype board: 6).
     * @param params           Per-DIMM configuration.
     * @param interleave_bytes Address interleave granularity.
     * @param bus_latency      Front-side bus/controller latency,
     *                         matching the PSM's AXI crossbar cost.
     */
    explicit DramArray(std::uint32_t dimms = 6,
                       const mem::DramParams &params = mem::DramParams(),
                       std::uint64_t interleave_bytes = 4096,
                       Tick bus_latency = 10 * tickNs)
        : interleave(interleave_bytes), busLatency(bus_latency)
    {
        for (std::uint32_t i = 0; i < dimms; ++i)
            devices.push_back(
                std::make_unique<mem::DramDevice>(params));
    }

    mem::AccessResult
    access(const mem::MemRequest &req, Tick when) override
    {
        const std::uint64_t chunk = req.addr / interleave;
        mem::DramDevice &dev = *devices[chunk % devices.size()];
        mem::MemRequest local = req;
        local.addr = (chunk / devices.size()) * interleave
            + req.addr % interleave;
        return dev.access(local, when + busLatency);
    }

    std::uint32_t dimmCount() const
    {
        return static_cast<std::uint32_t>(devices.size());
    }

    mem::DramDevice &dimm(std::uint32_t idx) { return *devices[idx]; }

    /** Aggregate access counts (power accounting). */
    std::uint64_t
    totalAccesses() const
    {
        std::uint64_t n = 0;
        for (const auto &dev : devices)
            n += dev->readCount() + dev->writeCount();
        return n;
    }

  private:
    std::uint64_t interleave;
    Tick busLatency;
    std::vector<std::unique_ptr<mem::DramDevice>> devices;
};

} // namespace lightpc::platform

#endif // LIGHTPC_PLATFORM_DRAM_ARRAY_HH
