/**
 * @file
 * Platform assembly: LegacyPC, LightPC-B, and LightPC (Section VI).
 *
 * All three share the computing complex (8 RV64 out-of-order cores,
 * 16 KB L1 I/D, Table I); they differ in the memory subsystem:
 *
 *  - LegacyPC: all processes and data in local-node DRAM; OC-PMEM is
 *    present only as the persistence target of the checkpoint
 *    baselines (addresses above `pmemWindowBase` route to the PSM).
 *  - LightPC-B: everything on OC-PMEM, but the PSM runs without
 *    early-return writes or ECC reconstruction (reads block behind
 *    in-flight writes).
 *  - LightPC: everything on OC-PMEM with the full PSM.
 */

#ifndef LIGHTPC_PLATFORM_SYSTEM_HH
#define LIGHTPC_PLATFORM_SYSTEM_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cache/l1_cache.hh"
#include "cpu/core.hh"
#include "kernel/kernel.hh"
#include "mem/backing_store.hh"
#include "mem/memory_port.hh"
#include "pecos/mce.hh"
#include "pecos/sng.hh"
#include "platform/dram_array.hh"
#include "power/power_model.hh"
#include "psm/psm.hh"
#include "sim/event_queue.hh"
#include "stats/histogram.hh"
#include "workload/spec.hh"
#include "workload/synthetic.hh"

namespace lightpc::platform
{

/** Which memory subsystem the platform uses. */
enum class PlatformKind
{
    LegacyPC,
    LightPCB,
    LightPC,
};

/** Display name. */
std::string platformName(PlatformKind kind);

/** Platform configuration (defaults per Table I, ASIC timing). */
struct SystemConfig
{
    PlatformKind kind = PlatformKind::LightPC;
    std::uint32_t cores = 8;
    std::uint64_t freqMhz = 1600;

    /** Workload downscale divisor (see DESIGN.md section 5). */
    std::uint64_t scaleDivisor = 100;

    std::uint64_t seed = 42;

    /** Kernel population (SnG experiments). */
    kernel::KernelParams kernel;

    /** PSM overrides applied on top of the kind's defaults. */
    std::uint32_t pmemDimms = 6;

    /** Full PSM parameter override (kind defaults when absent). */
    std::optional<psm::PsmParams> psmParams;

    /**
     * Machine-check policy override, applied on top of psmParams /
     * the kind defaults (so RAS campaigns can flip the arm without
     * re-deriving the whole PSM configuration).
     */
    std::optional<psm::McePolicy> mcePolicy;

    /** Media-fault model applied to every PRAM device group. */
    std::optional<mem::MediaFaultParams> mediaFaults;

    /** Retirement spare pool size (physical line slots). */
    std::optional<std::uint64_t> spareLines;

    /**
     * Optional externally-owned port the cores use instead of the
     * platform memory (the Fig. 4 PMEM-mode experiments).
     */
    mem::MemoryPort *overridePort = nullptr;
};

/** Result of running one workload to completion. */
struct RunResult
{
    std::string workload;
    std::string platform;
    Tick elapsed = 0;
    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;
    double ipc = 0.0;

    double watts = 0.0;
    double joules = 0.0;

    /** Mean memory-level read latency in ns (Fig. 16). */
    double memReadLatencyNs = 0.0;

    /** Aggregate cache behaviour (Table II validation). */
    double loadHitRate = 0.0;
    double storeHitRate = 0.0;
    std::uint64_t memReads = 0;
    std::uint64_t memWrites = 0;

    psm::PsmStats psmStats;
    cpu::CoreStats coreTotals;
};

/**
 * One platform instance. Construct fresh per run.
 */
class System
{
  public:
    explicit System(const SystemConfig &config = SystemConfig());
    ~System();

    const SystemConfig &config() const { return _config; }

    EventQueue &eventQueue() { return eq; }

    /** The OC-PMEM controller (present on every platform kind). */
    psm::Psm &psm() { return *_psm; }

    /** Functional OC-PMEM contents. */
    mem::BackingStore &pmemStore() { return _pmemStore; }

    /**
     * Arm a power cut on the OC-PMEM store: functional writes whose
     * completion is at or past @p cut_tick are dropped (or torn, for
     * the line in flight). Forwards to the BackingStore cursor; see
     * fault::FaultInjector for campaign use.
     */
    void
    armPowerCut(Tick cut_tick, std::uint64_t torn_seed)
    {
        _pmemStore.armPowerCut(cut_tick, torn_seed);
    }

    /** AC restored: durable writes flow again. */
    void disarmPowerCut() { _pmemStore.disarmPowerCut(); }

    /** LegacyPC working memory (null on LightPC/B). */
    DramArray *dram() { return _dram.get(); }

    /** The port workload cores are attached to. */
    mem::MemoryPort &memoryPort() { return *routedPort; }

    cpu::Core &core(std::uint32_t idx) { return *cores[idx]; }
    std::uint32_t coreCount() const
    {
        return static_cast<std::uint32_t>(cores.size());
    }

    kernel::Kernel &kernel() { return *_kernel; }
    pecos::Sng &sng() { return *_sng; }
    pecos::MceHandler &mceHandler() { return *_mce; }

    const power::PowerModel &powerModel() const { return _power; }

    /** Base address the workload data region starts at. */
    static constexpr mem::Addr workloadBase = 16 << 20;

    /** Addresses at or above this route to OC-PMEM on LegacyPC. */
    static constexpr mem::Addr pmemWindowBase = std::uint64_t(1) << 40;

    /**
     * Run one Table II workload to completion (multithreaded specs
     * use every core).
     */
    RunResult run(const workload::WorkloadSpec &spec);

    /**
     * Run caller-provided streams, one per entry, on cores 0..n-1.
     * @param until Optional time limit (maxTick = to completion).
     */
    RunResult runStreams(std::vector<cpu::InstrStream *> streams,
                         Tick until = maxTick);

    /** Build the power-accounting sample for [0, elapsed]. */
    power::ActivitySample activity(Tick elapsed,
                                   std::uint32_t active_cores) const;

    /** Snapshot counters into a RunResult (after eq has run). */
    RunResult collect(Tick elapsed, std::uint32_t active_cores) const;

  private:
    /** Routes LegacyPC traffic between DRAM and the PSM window. */
    class RoutedPort : public mem::MemoryPort
    {
      public:
        RoutedPort(DramArray *dram, psm::Psm &psm)
            : dram(dram), psm(psm)
        {}

        mem::AccessResult
        access(const mem::MemRequest &req, Tick when) override
        {
            if (dram && req.addr < pmemWindowBase)
                return dram->access(req, when);
            mem::MemRequest local = req;
            local.addr = req.addr >= pmemWindowBase
                ? req.addr - pmemWindowBase : req.addr;
            return psm.access(local, when);
        }

        Tick fence(Tick when) override { return psm.flush(when); }

      private:
        DramArray *dram;
        psm::Psm &psm;
    };

    SystemConfig _config;
    EventQueue eq;
    std::unique_ptr<psm::Psm> _psm;
    std::unique_ptr<DramArray> _dram;
    std::unique_ptr<RoutedPort> ownedPort;
    mem::MemoryPort *routedPort = nullptr;
    std::vector<std::unique_ptr<cpu::Core>> cores;
    mem::BackingStore _pmemStore;
    std::unique_ptr<kernel::Kernel> _kernel;
    std::unique_ptr<pecos::Sng> _sng;
    std::unique_ptr<pecos::MceHandler> _mce;
    power::PowerModel _power;
};

/** PSM parameters for a platform kind (Table I defaults). */
psm::PsmParams psmParamsFor(PlatformKind kind, std::uint32_t dimms);

} // namespace lightpc::platform

#endif // LIGHTPC_PLATFORM_SYSTEM_HH
