/**
 * @file
 * The orthogonal-persistence baselines (Section VI):
 *
 *  - SysPc: system images. Execution runs unencumbered on LegacyPC;
 *    on a power event the whole system image (every process
 *    footprint + kernel) is dumped to OC-PMEM, and recovery loads it
 *    back. The dump takes seconds — orders of magnitude past any
 *    PSU hold-up time (Fig. 20) — so it needs external energy.
 *
 *  - ACheckPcStream: application-level checkpoint-restart (based on
 *    user-level HPC checkpointing [59]). At the end of every
 *    function the touched stack/heap bytes are copied DRAM ->
 *    OC-PMEM *synchronously*, stalling the benchmark; implemented as
 *    an instruction-stream decorator that interleaves real copy
 *    loads/stores, so the slowdown arises in the memory system.
 *
 *  - SCheckPc: system-level checkpoint-restart (BLCR [60]). A kernel
 *    service periodically dumps the target's vm_area_struct spans to
 *    OC-PMEM; execution is quiesced during each dump (stop-the-world
 *    first-order model).
 *
 * A/S-CheckPC cannot capture kernel state or machine-mode registers,
 * so power recovery additionally pays a cold reboot before the
 * restart (Fig. 21a's IPC spike).
 */

#ifndef LIGHTPC_PERSIST_CHECKPOINT_HH
#define LIGHTPC_PERSIST_CHECKPOINT_HH

#include <cstdint>
#include <memory>

#include "cpu/instr.hh"
#include "mem/timed_mem.hh"
#include "sim/rng.hh"
#include "sim/ticks.hh"

namespace lightpc::persist
{

/** Costs shared by the image-based baselines. */
struct ImageCosts
{
    /** Snapshot/copy handling per 4 KB page on dump. */
    Tick dumpPerPage = 5 * tickUs;

    /** Page restore handling on load. */
    Tick loadPerPage = 1500 * tickNs;

    /** Cold reboot (kernel boot + driver probe) after power loss. */
    Tick coldReboot = 1500 * tickMs;
};

/**
 * SysPC: hibernate-style whole-system images.
 */
class SysPc
{
  public:
    SysPc(mem::TimedMem &pmem, const ImageCosts &costs = ImageCosts())
        : pmem(pmem), costs(costs)
    {}

    /** Dump @p image_bytes at power-down. @return completion tick. */
    Tick
    dumpImage(Tick when, std::uint64_t image_bytes)
    {
        const std::uint64_t pages = (image_bytes + 4095) / 4096;
        Tick t = when + pages * costs.dumpPerPage;
        return pmem.writeSpan(t, imageBase, image_bytes);
    }

    /** Load the image at power-up. @return completion tick. */
    Tick
    loadImage(Tick when, std::uint64_t image_bytes)
    {
        const std::uint64_t pages = (image_bytes + 4095) / 4096;
        Tick t = when + pages * costs.loadPerPage;
        return pmem.readSpan(t, imageBase, image_bytes);
    }

    static constexpr mem::Addr imageBase = std::uint64_t(1) << 40;

  private:
    mem::TimedMem &pmem;
    ImageCosts costs;
};

/**
 * S-CheckPC: periodic BLCR-style VM dumps.
 */
class SCheckPc
{
  public:
    SCheckPc(mem::TimedMem &pmem, Tick period,
             const ImageCosts &costs = ImageCosts())
        : pmem(pmem), _period(period), costs(costs)
    {}

    Tick period() const { return _period; }

    /** One periodic dump of @p vm_bytes. @return completion tick. */
    Tick
    dump(Tick when, std::uint64_t vm_bytes)
    {
        ++_dumps;
        const std::uint64_t pages = (vm_bytes + 4095) / 4096;
        // BLCR walks vm_area_structs; handling is lighter than a
        // hibernate snapshot.
        Tick t = when + pages * (costs.dumpPerPage / 4);
        return pmem.writeSpan(t, SysPc::imageBase, vm_bytes);
    }

    /** Restore after the post-crash cold reboot. */
    Tick
    restore(Tick when, std::uint64_t vm_bytes)
    {
        const std::uint64_t pages = (vm_bytes + 4095) / 4096;
        Tick t = when + pages * costs.loadPerPage;
        return pmem.readSpan(t, SysPc::imageBase, vm_bytes);
    }

    std::uint64_t dumps() const { return _dumps; }

  private:
    mem::TimedMem &pmem;
    Tick _period;
    ImageCosts costs;
    std::uint64_t _dumps = 0;
};

/** Parameters of the per-function checkpoint decorator. */
struct ACheckPcParams
{
    /** Mean dynamic instructions per function body. */
    double meanFunctionInstr = 2000.0;

    /** Mean stack+heap bytes dumped per checkpoint. */
    double meanCheckpointBytes = 18000.0;

    /** Where the process data lives (DRAM on LegacyPC). */
    mem::Addr dramBase = 0x4000000;

    /** Where checkpoints are written (OC-PMEM region). */
    mem::Addr pmemBase = std::uint64_t(1) << 41;

    std::uint64_t seed = 97;
};

/**
 * A-CheckPC: interleaves synchronous checkpoint copies into an
 * instruction stream at function boundaries.
 */
class ACheckPcStream : public cpu::InstrStream
{
  public:
    ACheckPcStream(cpu::InstrStream &inner,
                   const ACheckPcParams &params = ACheckPcParams());

    bool next(cpu::Instr &out) override;

    /** Checkpoints emitted so far. */
    std::uint64_t checkpoints() const { return _checkpoints; }

    /** Copy bytes emitted so far. */
    std::uint64_t copiedBytes() const { return _copiedBytes; }

  private:
    void startCheckpoint();

    cpu::InstrStream &inner;
    ACheckPcParams params;
    Rng rng;
    std::uint64_t untilCheckpoint;
    std::uint64_t copyLinesLeft = 0;
    bool copyPhaseIsLoad = true;
    mem::Addr copySrc = 0;
    mem::Addr copyDst = 0;
    std::uint64_t _checkpoints = 0;
    std::uint64_t _copiedBytes = 0;
};

} // namespace lightpc::persist

#endif // LIGHTPC_PERSIST_CHECKPOINT_HH
