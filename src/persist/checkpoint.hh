/**
 * @file
 * The orthogonal-persistence baselines (Section VI):
 *
 *  - SysPc: system images. Execution runs unencumbered on LegacyPC;
 *    on a power event the whole system image (every process
 *    footprint + kernel) is dumped to OC-PMEM, and recovery loads it
 *    back. The dump takes seconds — orders of magnitude past any
 *    PSU hold-up time (Fig. 20) — so it needs external energy.
 *
 *  - ACheckPcStream: application-level checkpoint-restart (based on
 *    user-level HPC checkpointing [59]). At the end of every
 *    function the touched stack/heap bytes are copied DRAM ->
 *    OC-PMEM *synchronously*, stalling the benchmark; implemented as
 *    an instruction-stream decorator that interleaves real copy
 *    loads/stores, so the slowdown arises in the memory system.
 *
 *  - SCheckPc: system-level checkpoint-restart (BLCR [60]). A kernel
 *    service periodically dumps the target's vm_area_struct spans to
 *    OC-PMEM; execution is quiesced during each dump (stop-the-world
 *    first-order model).
 *
 * A/S-CheckPC cannot capture kernel state or machine-mode registers,
 * so power recovery additionally pays a cold reboot before the
 * restart (Fig. 21a's IPC spike).
 */

#ifndef LIGHTPC_PERSIST_CHECKPOINT_HH
#define LIGHTPC_PERSIST_CHECKPOINT_HH

#include <cstdint>
#include <memory>

#include "cpu/instr.hh"
#include "mem/timed_mem.hh"
#include "sim/rng.hh"
#include "sim/ticks.hh"

namespace lightpc::persist
{

/**
 * Durable commit ledger shared by the image-based baselines.
 *
 * A checkpoint only protects against power loss if its *commit* is
 * crash-consistent: the body must be fully on media before the
 * record that names it becomes visible, and a record torn by the
 * rails falling mid-write must be detectable. The ledger keeps two
 * alternating single-line commit records (so the previous commit
 * survives while the next one is being written) and checksums each
 * record so a torn write reads as "no commit" instead of garbage.
 */
class CheckpointLedger
{
  public:
    struct Record
    {
        std::uint64_t magic = 0;
        std::uint64_t seq = 0;       ///< 1-based commit sequence
        std::uint64_t slot = 0;      ///< body slot the record names
        std::uint64_t bytes = 0;     ///< body length
        std::uint64_t bodySeed = 0;  ///< body pattern seed
        std::uint64_t checksum = 0;

        bool valid() const;
    };

    static constexpr std::uint64_t recordMagic =
        0x434b50544c646731ULL;  // "CKPTLdg1"

    CheckpointLedger(mem::TimedMem &pmem, mem::Addr base)
        : pmem(pmem), base(base)
    {}

    static std::uint64_t checksumOf(const Record &record);

    /**
     * Write the commit record for @p seq. The caller must have
     * fenced the body first. @return the post-fence completion tick;
     * the record write's own completion (which decides durability)
     * is in lastCommitAt().
     */
    Tick commit(Tick when, std::uint64_t seq, std::uint64_t slot,
                std::uint64_t bytes, std::uint64_t body_seed);

    /**
     * The highest-sequence checksum-valid record (default-
     * constructed, seq 0, when none survived).
     */
    Record latest();

    /** Completion tick of the most recent commit-record write. */
    Tick lastCommitAt() const { return _lastCommitAt; }

    /** Record line for @p seq (records alternate between two lines). */
    mem::Addr
    recordAddr(std::uint64_t seq) const
    {
        return base + (seq & 1) * mem::cacheLineBytes;
    }

  private:
    mem::TimedMem &pmem;
    mem::Addr base;
    Tick _lastCommitAt = 0;
};

/**
 * Deterministic body pattern, functional + timed: lets recovery
 * verify byte-exactly that a committed image is untorn.
 */
Tick writeBodyPattern(mem::TimedMem &pmem, Tick when, mem::Addr addr,
                      std::uint64_t len, std::uint64_t seed);

/** True when @p len bytes at @p addr match the seeded pattern. */
bool verifyBodyPattern(const mem::BackingStore &store, mem::Addr addr,
                       std::uint64_t len, std::uint64_t seed);

/** Costs shared by the image-based baselines. */
struct ImageCosts
{
    /** Snapshot/copy handling per 4 KB page on dump. */
    Tick dumpPerPage = 5 * tickUs;

    /** Page restore handling on load. */
    Tick loadPerPage = 1500 * tickNs;

    /** Cold reboot (kernel boot + driver probe) after power loss. */
    Tick coldReboot = 1500 * tickMs;
};

/**
 * SysPC: hibernate-style whole-system images.
 */
class SysPc
{
  public:
    SysPc(mem::TimedMem &pmem, const ImageCosts &costs = ImageCosts())
        : pmem(pmem), costs(costs), _ledger(pmem, ledgerBase)
    {}

    /** Dump @p image_bytes at power-down. @return completion tick. */
    Tick
    dumpImage(Tick when, std::uint64_t image_bytes)
    {
        const std::uint64_t pages = (image_bytes + 4095) / 4096;
        Tick t = when + pages * costs.dumpPerPage;
        return pmem.writeSpan(t, imageBase, image_bytes);
    }

    /** Load the image at power-up. @return completion tick. */
    Tick
    loadImage(Tick when, std::uint64_t image_bytes)
    {
        const std::uint64_t pages = (image_bytes + 4095) / 4096;
        Tick t = when + pages * costs.loadPerPage;
        return pmem.readSpan(t, imageBase, image_bytes);
    }

    /**
     * Crash-consistent dump: pattern-filled body into the slot for
     * the next sequence number, fence, then the ledger record. Only
     * the first patternBytes of the body move real bytes (enough to
     * detect tears); the rest is charged timing-only.
     *
     * @return completion tick. The commit-record write's own
     * completion — what decides durability under a cut — is in
     * lastCommitAt().
     */
    Tick dumpImageCommitted(Tick when, std::uint64_t image_bytes,
                            std::uint64_t body_seed);

    /**
     * Power-up recovery: load the latest durable committed image, or
     * pay the cold reboot when none (or only a torn one) survived.
     * recoveredSeq() tells which commit was restored (0 = cold boot).
     */
    Tick recover(Tick when);

    /** The latest durable, checksum-valid commit record. */
    CheckpointLedger::Record committedImage() { return _ledger.latest(); }

    /** Byte-exact body-prefix check of @p record's image slot. */
    bool committedImageIntact(const CheckpointLedger::Record &record);

    /** Body done (post-fence) tick of the last committed dump. */
    Tick lastBodyDoneAt() const { return _lastBodyDoneAt; }

    /** Commit-record write completion of the last committed dump. */
    Tick lastCommitAt() const { return _ledger.lastCommitAt(); }

    /** Sequence restored by the last recover(); 0 = cold boot. */
    std::uint64_t recoveredSeq() const { return _recoveredSeq; }

    static constexpr mem::Addr imageBase = std::uint64_t(1) << 40;

    /** Ledger record lines live just below the image slots. */
    static constexpr mem::Addr ledgerBase = imageBase - 4096;

    /** Functional pattern prefix per image body. */
    static constexpr std::uint64_t patternBytes = 64 << 10;

    /** Double-buffered body slots, 4 GB apart. */
    static mem::Addr
    slotAddr(std::uint64_t slot)
    {
        return imageBase + slot * (std::uint64_t(1) << 32);
    }

  private:
    mem::TimedMem &pmem;
    ImageCosts costs;
    CheckpointLedger _ledger;
    std::uint64_t _seq = 0;
    Tick _lastBodyDoneAt = 0;
    std::uint64_t _recoveredSeq = 0;
};

/**
 * S-CheckPC: periodic BLCR-style VM dumps.
 */
class SCheckPc
{
  public:
    SCheckPc(mem::TimedMem &pmem, Tick period,
             const ImageCosts &costs = ImageCosts())
        : pmem(pmem), _period(period), costs(costs),
          _ledger(pmem, ledgerBase)
    {}

    Tick period() const { return _period; }

    /** One periodic dump of @p vm_bytes. @return completion tick. */
    Tick
    dump(Tick when, std::uint64_t vm_bytes)
    {
        ++_dumps;
        const std::uint64_t pages = (vm_bytes + 4095) / 4096;
        // BLCR walks vm_area_structs; handling is lighter than a
        // hibernate snapshot.
        Tick t = when + pages * (costs.dumpPerPage / 4);
        return pmem.writeSpan(t, SysPc::imageBase, vm_bytes);
    }

    /** Restore after the post-crash cold reboot. */
    Tick
    restore(Tick when, std::uint64_t vm_bytes)
    {
        const std::uint64_t pages = (vm_bytes + 4095) / 4096;
        Tick t = when + pages * costs.loadPerPage;
        return pmem.readSpan(t, SysPc::imageBase, vm_bytes);
    }

    /**
     * Crash-consistent periodic dump: body, fence, ledger record —
     * the same protocol as SysPc::dumpImageCommitted, with BLCR's
     * lighter page handling.
     */
    Tick dumpCommitted(Tick when, std::uint64_t vm_bytes,
                       std::uint64_t body_seed);

    /**
     * Power-loss recovery: cold reboot (kernel state is never in a
     * BLCR checkpoint), then restart from the latest durable commit
     * when one survived untorn. recoveredSeq() is 0 when the process
     * restarts from scratch.
     */
    Tick recoverAfterLoss(Tick when);

    /** The latest durable, checksum-valid commit record. */
    CheckpointLedger::Record latestCommit() { return _ledger.latest(); }

    /** Byte-exact body-prefix check of @p record's slot. */
    bool commitIntact(const CheckpointLedger::Record &record);

    /** Body done (post-fence) tick of the last committed dump. */
    Tick lastBodyDoneAt() const { return _lastBodyDoneAt; }

    /** Commit-record write completion of the last committed dump. */
    Tick lastCommitAt() const { return _ledger.lastCommitAt(); }

    /** Sequence restored by the last recoverAfterLoss(); 0 = none. */
    std::uint64_t recoveredSeq() const { return _recoveredSeq; }

    std::uint64_t dumps() const { return _dumps; }

    /** Separate ledger lines from SysPc's. */
    static constexpr mem::Addr ledgerBase = SysPc::imageBase - 8192;

    /** Body slots above SysPc's pair. */
    static mem::Addr
    slotAddr(std::uint64_t slot)
    {
        return SysPc::slotAddr(2 + slot);
    }

  private:
    mem::TimedMem &pmem;
    Tick _period;
    ImageCosts costs;
    CheckpointLedger _ledger;
    std::uint64_t _dumps = 0;
    std::uint64_t _seq = 0;
    Tick _lastBodyDoneAt = 0;
    std::uint64_t _recoveredSeq = 0;
};

/** Parameters of the per-function checkpoint decorator. */
struct ACheckPcParams
{
    /** Mean dynamic instructions per function body. */
    double meanFunctionInstr = 2000.0;

    /** Mean stack+heap bytes dumped per checkpoint. */
    double meanCheckpointBytes = 18000.0;

    /** Where the process data lives (DRAM on LegacyPC). */
    mem::Addr dramBase = 0x4000000;

    /** Where checkpoints are written (OC-PMEM region). */
    mem::Addr pmemBase = std::uint64_t(1) << 41;

    std::uint64_t seed = 97;
};

/**
 * A-CheckPC: interleaves synchronous checkpoint copies into an
 * instruction stream at function boundaries.
 */
class ACheckPcStream : public cpu::InstrStream
{
  public:
    ACheckPcStream(cpu::InstrStream &inner,
                   const ACheckPcParams &params = ACheckPcParams());

    bool next(cpu::Instr &out) override;

    /** Checkpoints emitted so far. */
    std::uint64_t checkpoints() const { return _checkpoints; }

    /** Copy bytes emitted so far. */
    std::uint64_t copiedBytes() const { return _copiedBytes; }

  private:
    void startCheckpoint();

    cpu::InstrStream &inner;
    ACheckPcParams params;
    Rng rng;
    std::uint64_t untilCheckpoint;
    std::uint64_t copyLinesLeft = 0;
    bool copyPhaseIsLoad = true;
    mem::Addr copySrc = 0;
    mem::Addr copyDst = 0;
    std::uint64_t _checkpoints = 0;
    std::uint64_t _copiedBytes = 0;
};

} // namespace lightpc::persist

#endif // LIGHTPC_PERSIST_CHECKPOINT_HH
