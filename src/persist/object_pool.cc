#include "persist/object_pool.hh"

#include <cstring>
#include <vector>

#include "sim/logging.hh"

namespace lightpc::persist
{

namespace
{

constexpr std::uint64_t poolMagic = 0x504d444b4f425021ULL;  // PMDKOBP!
constexpr std::uint64_t headerBytes = 4096;
constexpr std::uint64_t logAreaBytes = std::uint64_t(1) << 20;
constexpr std::uint64_t objectHeaderBytes = 16;

} // namespace

/** On-media pool header. */
struct ObjectPool::Header
{
    std::uint64_t magic = 0;
    std::uint64_t rootOid = 0;
    std::uint64_t rootBytes = 0;
    std::uint64_t heapCursor = 0;    ///< bump pointer (pool offset)
    std::uint64_t freeListHead = 0;  ///< first free object (offset)
    std::uint64_t logCount = 0;      ///< live undo-log entries
    std::uint64_t logCursor = 0;     ///< bytes used in the log area
    std::uint64_t allocated = 0;     ///< live payload bytes
};

/** On-media undo-log entry header (followed by the old bytes). */
struct ObjectPool::LogEntry
{
    std::uint64_t target = 0;  ///< pool offset of the saved range
    std::uint64_t len = 0;
};

ObjectPool::ObjectPool(mem::BackingStore &store_in, mem::Addr base_in,
                       std::uint64_t size_in, const PoolCosts &costs)
    : store(store_in), base(base_in), size(size_in), _costs(costs)
{
    if (size < headerBytes + logAreaBytes + 4096)
        fatal("ObjectPool region too small: ", size);
    Header header = readHeader();
    if (header.magic == poolMagic) {
        _openedExisting = true;
        recover();
    } else {
        format();
    }
}

ObjectPool::Header
ObjectPool::readHeader() const
{
    return store.readValue<Header>(base);
}

void
ObjectPool::writeHeader(const Header &header)
{
    store.writeValue(base, header);
}

void
ObjectPool::format()
{
    Header header;
    header.magic = poolMagic;
    header.heapCursor = headerBytes + logAreaBytes;
    writeHeader(header);
}

void
ObjectPool::recover()
{
    Header header = readHeader();
    if (header.logCount == 0)
        return;

    // Roll the uncommitted transaction back: restore ranges in
    // reverse append order.
    ++_stats.recoveries;
    std::vector<std::pair<LogEntry, std::uint64_t>> entries;
    std::uint64_t cursor = 0;
    for (std::uint64_t i = 0; i < header.logCount; ++i) {
        const LogEntry entry = store.readValue<LogEntry>(
            base + headerBytes + cursor);
        entries.emplace_back(entry,
                             cursor + sizeof(LogEntry));
        cursor += sizeof(LogEntry) + entry.len;
    }
    for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
        std::vector<std::uint8_t> old(it->first.len);
        store.read(base + headerBytes + it->second, old.data(),
                   old.size());
        store.write(base + it->first.target, old.data(), old.size());
        ++_stats.rolledBackRanges;
    }

    header.logCount = 0;
    header.logCursor = 0;
    writeHeader(header);
}

mem::Addr
ObjectPool::objectAddr(ObjectId oid) const
{
    return base + oid.offset;
}

ObjectId
ObjectPool::root(Tick &t, std::uint64_t bytes)
{
    Header header = readHeader();
    if (header.rootOid != 0) {
        t += _costs.swizzle;
        return ObjectId{header.rootOid};
    }
    const ObjectId oid = allocate(t, bytes);
    header = readHeader();
    header.rootOid = oid.offset;
    header.rootBytes = bytes;
    writeHeader(header);
    return oid;
}

ObjectId
ObjectPool::allocate(Tick &t, std::uint64_t bytes)
{
    if (bytes == 0)
        fatal("ObjectPool::allocate of zero bytes");
    t += _costs.allocMetadata;
    ++_stats.allocations;

    const std::uint64_t need = (bytes + 15) & ~std::uint64_t(15);
    Header header = readHeader();

    // First-fit over the free list.
    std::uint64_t prev = 0;
    std::uint64_t cur = header.freeListHead;
    while (cur != 0) {
        const std::uint64_t obj_size =
            store.readValue<std::uint64_t>(base + cur);
        const std::uint64_t next =
            store.readValue<std::uint64_t>(base + cur + 8);
        if (obj_size >= need) {
            if (prev == 0)
                header.freeListHead = next;
            else
                store.writeValue<std::uint64_t>(base + prev + 8, next);
            store.writeValue<std::uint64_t>(base + cur + 8, 0);
            header.allocated += obj_size;
            writeHeader(header);
            return ObjectId{cur + objectHeaderBytes};
        }
        prev = cur;
        cur = next;
    }

    // Bump allocation.
    const std::uint64_t obj = header.heapCursor;
    if (obj + objectHeaderBytes + need > size)
        fatal("ObjectPool out of space");
    store.writeValue<std::uint64_t>(base + obj, need);
    store.writeValue<std::uint64_t>(base + obj + 8, 0);
    header.heapCursor = obj + objectHeaderBytes + need;
    header.allocated += need;
    writeHeader(header);
    return ObjectId{obj + objectHeaderBytes};
}

void
ObjectPool::free(Tick &t, ObjectId oid)
{
    if (!oid.valid())
        fatal("ObjectPool::free of null object");
    t += _costs.allocMetadata;
    ++_stats.frees;

    const std::uint64_t obj = oid.offset - objectHeaderBytes;
    Header header = readHeader();
    const std::uint64_t obj_size =
        store.readValue<std::uint64_t>(base + obj);
    store.writeValue<std::uint64_t>(base + obj + 8,
                                    header.freeListHead);
    header.freeListHead = obj;
    header.allocated -= obj_size;
    writeHeader(header);
}

std::uint64_t
ObjectPool::sizeOf(ObjectId oid) const
{
    if (!oid.valid())
        return 0;
    return store.readValue<std::uint64_t>(
        base + oid.offset - objectHeaderBytes);
}

mem::Addr
ObjectPool::direct(Tick &t, ObjectId oid)
{
    t += _costs.swizzle;
    ++_stats.swizzles;
    return objectAddr(oid);
}

void
ObjectPool::readObject(ObjectId oid, std::uint64_t off, void *out,
                       std::uint64_t len) const
{
    store.read(objectAddr(oid) + off, out, len);
}

void
ObjectPool::writeObject(ObjectId oid, std::uint64_t off,
                        const void *in, std::uint64_t len)
{
    store.write(objectAddr(oid) + off, in, len);
}

void
ObjectPool::txBegin(Tick &t)
{
    if (txOpen)
        fatal("nested transactions are not supported");
    txOpen = true;
    t += _costs.txBegin;
}

void
ObjectPool::txAddRange(Tick &t, ObjectId oid, std::uint64_t off,
                       std::uint64_t len)
{
    if (!txOpen)
        fatal("txAddRange outside a transaction");
    Header header = readHeader();

    LogEntry entry;
    entry.target = oid.offset + off;
    entry.len = len;
    const std::uint64_t entry_bytes = sizeof(LogEntry) + len;
    if (header.logCursor + entry_bytes > logAreaBytes)
        fatal("ObjectPool undo log overflow");

    // Write-ahead: payload + entry first, then bump the count.
    std::vector<std::uint8_t> old(len);
    store.read(base + entry.target, old.data(), len);
    const mem::Addr log_at = base + headerBytes + header.logCursor;
    store.writeValue(log_at, entry);
    store.write(log_at + sizeof(LogEntry), old.data(), len);

    header.logCursor += entry_bytes;
    ++header.logCount;
    writeHeader(header);

    t += _costs.logAppend
        + _costs.logCopyPer64B * ((len + 63) / 64);
}

void
ObjectPool::txCommit(Tick &t)
{
    if (!txOpen)
        fatal("txCommit outside a transaction");
    Header header = readHeader();

    // pmem_persist over every logged range: the CPU cache controller
    // walks the VA range cacheline by cacheline, then fences.
    std::uint64_t cursor = 0;
    for (std::uint64_t i = 0; i < header.logCount; ++i) {
        const LogEntry entry = store.readValue<LogEntry>(
            base + headerBytes + cursor);
        const std::uint64_t lines = (entry.len + 63) / 64;
        t += _costs.flushPer64B * lines;
        _stats.linesFlushed += lines;
        cursor += sizeof(LogEntry) + entry.len;
    }
    t += _costs.fence + _costs.txCommit;

    header.logCount = 0;
    header.logCursor = 0;
    writeHeader(header);
    txOpen = false;
    ++_stats.txCommits;
}

void
ObjectPool::txAbort(Tick &t)
{
    if (!txOpen)
        fatal("txAbort outside a transaction");
    txOpen = false;
    ++_stats.txAborts;
    recover();
    // recover() counts itself; an explicit abort is not a recovery.
    --_stats.recoveries;
    t += _costs.txCommit;
}

std::uint64_t
ObjectPool::allocatedBytes() const
{
    return readHeader().allocated;
}

} // namespace lightpc::persist
