/**
 * @file
 * A libpmemobj-style persistent object store (Section II-B, Fig. 3).
 *
 * Applications on conventional PMEM platforms manage persistence
 * through PMDK's libpmemobj: data lives in *objects* named by
 * persistent pointers (pool-relative offsets, not process VAs), a
 * root object anchors the graph, and durability requires explicit
 * transactions whose commit path flushes the touched cachelines
 * (pmem_persist).
 *
 * This implementation is functional *and* crash-consistent: object
 * data and allocator metadata live in a BackingStore region, updates
 * inside a transaction are undo-logged, and recovery after a crash
 * rolls uncommitted transactions back. Timing is charged through a
 * cost model (pointer swizzling per direct() call, logging per
 * range, cacheline flush loops per commit) so the Fig. 4 object/
 * trans-mode overheads arise from executed mechanism, not a fudge
 * factor.
 */

#ifndef LIGHTPC_PERSIST_OBJECT_POOL_HH
#define LIGHTPC_PERSIST_OBJECT_POOL_HH

#include <cstdint>
#include <vector>

#include "mem/backing_store.hh"
#include "mem/request.hh"
#include "sim/ticks.hh"

namespace lightpc::persist
{

/** A persistent pointer: pool-relative offset (0 = null). */
struct ObjectId
{
    std::uint64_t offset = 0;

    bool valid() const { return offset != 0; }
    bool operator==(const ObjectId &other) const = default;
};

/** Timing costs of the PMDK-like runtime paths. */
struct PoolCosts
{
    /** Offset -> VA swizzle per object access (software). */
    Tick swizzle = 20 * tickNs;

    /** Allocator metadata update per alloc/free. */
    Tick allocMetadata = 150 * tickNs;

    /** Undo-log append per tx_add_range, plus per-64B copy. */
    Tick logAppend = 120 * tickNs;
    Tick logCopyPer64B = 60 * tickNs;

    /** pmem_persist: per-cacheline flush (clwb) plus one fence. */
    Tick flushPer64B = 45 * tickNs;
    Tick fence = 80 * tickNs;

    /** Transaction begin/commit fixed costs. */
    Tick txBegin = 100 * tickNs;
    Tick txCommit = 180 * tickNs;
};

/** Pool statistics. */
struct PoolStats
{
    std::uint64_t allocations = 0;
    std::uint64_t frees = 0;
    std::uint64_t swizzles = 0;
    std::uint64_t txCommits = 0;
    std::uint64_t txAborts = 0;
    std::uint64_t linesFlushed = 0;
    std::uint64_t recoveries = 0;
    std::uint64_t rolledBackRanges = 0;
};

/**
 * The persistent object pool.
 */
class ObjectPool
{
  public:
    /**
     * Open (or format) a pool over [base, base+size) of @p store.
     *
     * A pool with a valid header is opened in place and recovered
     * (uncommitted transactions rolled back); anything else is
     * formatted fresh.
     */
    ObjectPool(mem::BackingStore &store, mem::Addr base,
               std::uint64_t size, const PoolCosts &costs = PoolCosts());

    /** True when the constructor found and opened an existing pool. */
    bool openedExisting() const { return _openedExisting; }

    /** The root object (allocated on demand with @p bytes). */
    ObjectId root(Tick &t, std::uint64_t bytes);

    /** Allocate an object. Durable immediately (allocator metadata). */
    ObjectId allocate(Tick &t, std::uint64_t bytes);

    /** Free an object. */
    void free(Tick &t, ObjectId oid);

    /** Object payload size. */
    std::uint64_t sizeOf(ObjectId oid) const;

    /**
     * Translate a persistent pointer to a pool-physical address
     * (the per-access swizzle that makes object-mode slow).
     */
    mem::Addr direct(Tick &t, ObjectId oid);

    /** Read/write object payload (functional; caller charges time). */
    void readObject(ObjectId oid, std::uint64_t off, void *out,
                    std::uint64_t len) const;
    void writeObject(ObjectId oid, std::uint64_t off, const void *in,
                     std::uint64_t len);

    // --- transactions -------------------------------------------------

    /** Begin a transaction. @pre no transaction is open. */
    void txBegin(Tick &t);

    /**
     * Undo-log [off, off+len) of @p oid before modifying it.
     * @pre a transaction is open.
     */
    void txAddRange(Tick &t, ObjectId oid, std::uint64_t off,
                    std::uint64_t len);

    /**
     * Commit: pmem_persist every logged range (cacheline flush loop
     * + fence), then truncate the log.
     */
    void txCommit(Tick &t);

    /** Abort: roll every logged range back to its old contents. */
    void txAbort(Tick &t);

    /** True while a transaction is open. */
    bool inTransaction() const { return txOpen; }

    /**
     * Crash simulation: drop the volatile runtime state as a power
     * failure would. The next ObjectPool constructed over the same
     * region recovers (rolling back the open transaction, if any).
     */
    void crash() { txOpen = false; }

    const PoolStats &stats() const { return _stats; }
    const PoolCosts &costs() const { return _costs; }

    /** Bytes currently allocated to objects. */
    std::uint64_t allocatedBytes() const;

  private:
    struct Header;
    struct LogEntry;

    Header readHeader() const;
    void writeHeader(const Header &header);
    void format();
    void recover();
    mem::Addr objectAddr(ObjectId oid) const;

    mem::BackingStore &store;
    mem::Addr base;
    std::uint64_t size;
    PoolCosts _costs;
    PoolStats _stats;
    bool txOpen = false;
    bool _openedExisting = false;
};

} // namespace lightpc::persist

#endif // LIGHTPC_PERSIST_OBJECT_POOL_HH
