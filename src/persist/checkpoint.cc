#include "persist/checkpoint.hh"

#include <cmath>

namespace lightpc::persist
{

ACheckPcStream::ACheckPcStream(cpu::InstrStream &inner_in,
                               const ACheckPcParams &params_in)
    : inner(inner_in), params(params_in), rng(params_in.seed)
{
    untilCheckpoint = static_cast<std::uint64_t>(
        std::max(1.0, -params.meanFunctionInstr
                          * std::log(1.0 - rng.uniform())));
}

void
ACheckPcStream::startCheckpoint()
{
    ++_checkpoints;
    // Exponentially distributed checkpoint size around the mean,
    // minimum one line.
    const double bytes = std::max(
        64.0, -params.meanCheckpointBytes
                  * std::log(1.0 - rng.uniform()));
    copyLinesLeft = static_cast<std::uint64_t>(bytes + 63) / 64;
    _copiedBytes += copyLinesLeft * 64;
    copyPhaseIsLoad = true;
    // Stack/heap pages of the process; spread to look like real
    // variable dumps.
    copySrc = params.dramBase + (rng.next() % (16 << 20) & ~63ull);
    copyDst = params.pmemBase + (rng.next() % (64 << 20) & ~63ull);
    untilCheckpoint = static_cast<std::uint64_t>(
        std::max(1.0, -params.meanFunctionInstr
                          * std::log(1.0 - rng.uniform())));
}

bool
ACheckPcStream::next(cpu::Instr &out)
{
    if (copyLinesLeft > 0) {
        // Synchronous copy loop: load a line from DRAM, store it to
        // OC-PMEM; the benchmark is stalled for the duration.
        if (copyPhaseIsLoad) {
            out = {cpu::InstrKind::Load, copySrc};
            copyPhaseIsLoad = false;
        } else {
            out = {cpu::InstrKind::Store, copyDst};
            copyPhaseIsLoad = true;
            copySrc += 64;
            copyDst += 64;
            --copyLinesLeft;
        }
        return true;
    }

    if (!inner.next(out))
        return false;

    if (untilCheckpoint-- == 0)
        startCheckpoint();
    return true;
}

} // namespace lightpc::persist
