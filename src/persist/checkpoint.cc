#include "persist/checkpoint.hh"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace lightpc::persist
{

namespace
{

/** splitmix64-style mixer for records and body patterns. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

std::uint64_t
patternWord(std::uint64_t seed, std::uint64_t index)
{
    return mix64(seed ^ mix64(index + 1));
}

} // namespace

bool
CheckpointLedger::Record::valid() const
{
    return magic == recordMagic && seq != 0
           && checksum == checksumOf(*this);
}

std::uint64_t
CheckpointLedger::checksumOf(const Record &record)
{
    std::uint64_t h = mix64(record.magic);
    h = mix64(h ^ record.seq);
    h = mix64(h ^ record.slot);
    h = mix64(h ^ record.bytes);
    h = mix64(h ^ record.bodySeed);
    return h;
}

Tick
CheckpointLedger::commit(Tick when, std::uint64_t seq,
                         std::uint64_t slot, std::uint64_t bytes,
                         std::uint64_t body_seed)
{
    Record record;
    record.magic = recordMagic;
    record.seq = seq;
    record.slot = slot;
    record.bytes = bytes;
    record.bodySeed = body_seed;
    record.checksum = checksumOf(record);

    Tick t = pmem.writeBytes(when, recordAddr(seq), &record,
                             sizeof(Record));
    _lastCommitAt = t;
    return pmem.fence(t);
}

CheckpointLedger::Record
CheckpointLedger::latest()
{
    const mem::BackingStore *store = pmem.backing();
    Record best;
    if (!store)
        return best;
    for (std::uint64_t line = 0; line < 2; ++line) {
        Record record;
        store->read(base + line * mem::cacheLineBytes, &record,
                    sizeof(Record));
        if (record.valid() && record.seq > best.seq)
            best = record;
    }
    return best;
}

Tick
writeBodyPattern(mem::TimedMem &pmem, Tick when, mem::Addr addr,
                 std::uint64_t len, std::uint64_t seed)
{
    std::uint64_t buf[512];  // 4 KB staging chunk
    std::uint64_t off = 0;
    Tick t = when;
    while (off < len) {
        const std::uint64_t chunk = std::min<std::uint64_t>(
            len - off, sizeof(buf));
        const std::uint64_t words = (chunk + 7) / 8;
        for (std::uint64_t w = 0; w < words; ++w)
            buf[w] = patternWord(seed, off / 8 + w);
        t = pmem.writeBytes(t, addr + off, buf, chunk);
        off += chunk;
    }
    return t;
}

bool
verifyBodyPattern(const mem::BackingStore &store, mem::Addr addr,
                  std::uint64_t len, std::uint64_t seed)
{
    std::uint64_t buf[512];
    std::uint64_t off = 0;
    while (off < len) {
        const std::uint64_t chunk = std::min<std::uint64_t>(
            len - off, sizeof(buf));
        store.read(addr + off, buf, chunk);
        const std::uint64_t full_words = chunk / 8;
        for (std::uint64_t w = 0; w < full_words; ++w) {
            if (buf[w] != patternWord(seed, off / 8 + w))
                return false;
        }
        const std::uint64_t tail = chunk % 8;
        if (tail) {
            const std::uint64_t want =
                patternWord(seed, off / 8 + full_words);
            if (std::memcmp(&buf[full_words], &want, tail) != 0)
                return false;
        }
        off += chunk;
    }
    return true;
}

Tick
SysPc::dumpImageCommitted(Tick when, std::uint64_t image_bytes,
                          std::uint64_t body_seed)
{
    const std::uint64_t seq = ++_seq;
    const std::uint64_t slot = seq & 1;
    const mem::Addr body = slotAddr(slot);

    const std::uint64_t pages = (image_bytes + 4095) / 4096;
    Tick t = when + pages * costs.dumpPerPage;

    const std::uint64_t pattern =
        std::min(image_bytes, patternBytes);
    t = writeBodyPattern(pmem, t, body, pattern, body_seed);
    if (image_bytes > pattern)
        t = pmem.writeSpan(t, body + pattern, image_bytes - pattern);
    t = pmem.fence(t);
    _lastBodyDoneAt = t;

    return _ledger.commit(t, seq, slot, image_bytes, body_seed);
}

bool
SysPc::committedImageIntact(const CheckpointLedger::Record &record)
{
    const mem::BackingStore *store = pmem.backing();
    if (!store || !record.valid())
        return false;
    const std::uint64_t pattern =
        std::min(record.bytes, patternBytes);
    return verifyBodyPattern(*store, slotAddr(record.slot), pattern,
                             record.bodySeed);
}

Tick
SysPc::recover(Tick when)
{
    const CheckpointLedger::Record record = _ledger.latest();
    if (record.valid() && committedImageIntact(record)) {
        _recoveredSeq = record.seq;
        const std::uint64_t pages = (record.bytes + 4095) / 4096;
        Tick t = when + pages * costs.loadPerPage;
        return pmem.readSpan(t, slotAddr(record.slot), record.bytes);
    }
    // Nothing durable (or a torn commit was rejected): cold boot.
    _recoveredSeq = 0;
    return when + costs.coldReboot;
}

Tick
SCheckPc::dumpCommitted(Tick when, std::uint64_t vm_bytes,
                        std::uint64_t body_seed)
{
    ++_dumps;
    const std::uint64_t seq = ++_seq;
    const std::uint64_t slot = seq & 1;
    const mem::Addr body = slotAddr(slot);

    const std::uint64_t pages = (vm_bytes + 4095) / 4096;
    Tick t = when + pages * (costs.dumpPerPage / 4);

    const std::uint64_t pattern =
        std::min(vm_bytes, SysPc::patternBytes);
    t = writeBodyPattern(pmem, t, body, pattern, body_seed);
    if (vm_bytes > pattern)
        t = pmem.writeSpan(t, body + pattern, vm_bytes - pattern);
    t = pmem.fence(t);
    _lastBodyDoneAt = t;

    return _ledger.commit(t, seq, slot, vm_bytes, body_seed);
}

bool
SCheckPc::commitIntact(const CheckpointLedger::Record &record)
{
    const mem::BackingStore *store = pmem.backing();
    if (!store || !record.valid())
        return false;
    const std::uint64_t pattern =
        std::min(record.bytes, SysPc::patternBytes);
    return verifyBodyPattern(*store, slotAddr(record.slot), pattern,
                             record.bodySeed);
}

Tick
SCheckPc::recoverAfterLoss(Tick when)
{
    // Checkpoint-restart can never skip the reboot: machine-mode and
    // kernel state are outside the checkpoint.
    Tick t = when + costs.coldReboot;
    const CheckpointLedger::Record record = _ledger.latest();
    if (record.valid() && commitIntact(record)) {
        _recoveredSeq = record.seq;
        const std::uint64_t pages = (record.bytes + 4095) / 4096;
        t += pages * costs.loadPerPage;
        return pmem.readSpan(t, slotAddr(record.slot), record.bytes);
    }
    _recoveredSeq = 0;
    return t;
}

ACheckPcStream::ACheckPcStream(cpu::InstrStream &inner_in,
                               const ACheckPcParams &params_in)
    : inner(inner_in), params(params_in), rng(params_in.seed)
{
    untilCheckpoint = static_cast<std::uint64_t>(
        std::max(1.0, -params.meanFunctionInstr
                          * std::log(1.0 - rng.uniform())));
}

void
ACheckPcStream::startCheckpoint()
{
    ++_checkpoints;
    // Exponentially distributed checkpoint size around the mean,
    // minimum one line.
    const double bytes = std::max(
        64.0, -params.meanCheckpointBytes
                  * std::log(1.0 - rng.uniform()));
    copyLinesLeft = static_cast<std::uint64_t>(bytes + 63) / 64;
    _copiedBytes += copyLinesLeft * 64;
    copyPhaseIsLoad = true;
    // Stack/heap pages of the process; spread to look like real
    // variable dumps.
    copySrc = params.dramBase + (rng.next() % (16 << 20) & ~63ull);
    copyDst = params.pmemBase + (rng.next() % (64 << 20) & ~63ull);
    untilCheckpoint = static_cast<std::uint64_t>(
        std::max(1.0, -params.meanFunctionInstr
                          * std::log(1.0 - rng.uniform())));
}

bool
ACheckPcStream::next(cpu::Instr &out)
{
    if (copyLinesLeft > 0) {
        // Synchronous copy loop: load a line from DRAM, store it to
        // OC-PMEM; the benchmark is stalled for the duration.
        if (copyPhaseIsLoad) {
            out = {cpu::InstrKind::Load, copySrc};
            copyPhaseIsLoad = false;
        } else {
            out = {cpu::InstrKind::Store, copyDst};
            copyPhaseIsLoad = true;
            copySrc += 64;
            copyDst += 64;
            --copyLinesLeft;
        }
        return true;
    }

    if (!inner.next(out))
        return false;

    if (untilCheckpoint-- == 0)
        startCheckpoint();
    return true;
}

} // namespace lightpc::persist
