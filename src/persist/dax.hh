/**
 * @file
 * Direct-access (DAX) mapping (Section II-B, Fig. 3a).
 *
 * Linux exposes PMEM as a device file; DAX maps it straight into the
 * application's address space so that translation is a constant
 * offset — "negligible overhead" per the paper, in contrast to the
 * per-access object-ID swizzling libpmemobj adds on top.
 */

#ifndef LIGHTPC_PERSIST_DAX_HH
#define LIGHTPC_PERSIST_DAX_HH

#include "mem/request.hh"
#include "sim/logging.hh"

namespace lightpc::persist
{

/**
 * One mmap'ed DAX region.
 */
class DaxMapping
{
  public:
    /**
     * @param va_base   Virtual base the file is mapped at.
     * @param phys_base Physical base of the region within the device.
     * @param length    Mapped length in bytes.
     */
    DaxMapping(mem::Addr va_base, mem::Addr phys_base,
               std::uint64_t length)
        : vaBase(va_base), physBase(phys_base), len(length)
    {
        if (length == 0)
            fatal("DaxMapping of zero length");
    }

    mem::Addr vaStart() const { return vaBase; }
    mem::Addr physStart() const { return physBase; }
    std::uint64_t length() const { return len; }

    /** True when @p va falls inside the mapping. */
    bool
    contains(mem::Addr va) const
    {
        return va >= vaBase && va - vaBase < len;
    }

    /** VA -> PA: a single offset add. */
    mem::Addr
    toPhys(mem::Addr va) const
    {
        if (!contains(va))
            fatal("DAX translation outside mapping: ", va);
        return physBase + (va - vaBase);
    }

    /** PA -> VA (for completeness). */
    mem::Addr
    toVirt(mem::Addr pa) const
    {
        if (pa < physBase || pa - physBase >= len)
            fatal("DAX reverse translation outside mapping: ", pa);
        return vaBase + (pa - physBase);
    }

  private:
    mem::Addr vaBase;
    mem::Addr physBase;
    std::uint64_t len;
};

} // namespace lightpc::persist

#endif // LIGHTPC_PERSIST_DAX_HH
