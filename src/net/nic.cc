#include "net/nic.hh"

#include <algorithm>
#include <cstring>
#include <memory>
#include <utility>

#include "sim/logging.hh"

namespace lightpc::net
{

NicDevice::NicDevice(kernel::DeviceManager &devices, std::string name,
                     const NicParams &params)
    : _params(params),
      rx(params.ringEntries),
      tx(params.ringEntries)
{
    if (_params.ringEntries == 0)
        fatal("NicDevice needs at least one ring entry");
    dev = &devices.add(std::make_unique<kernel::Device>(
        std::move(name), kernel::DeviceClass::Network, _params.dpm,
        contextImageBytes(), _params.mmioBytes));
    dev->bindContext(this, contextImageBytes());
}

std::uint64_t
NicDevice::contextImageBytes() const
{
    return sizeof(ContextHeader)
        + std::uint64_t(_params.ringEntries) * sizeof(RpcRequest)
        + std::uint64_t(_params.ringEntries) * sizeof(RpcResponse);
}

bool
NicDevice::rxPush(const RpcRequest &req)
{
    if (!linkUp()) {
        ++_stats.rxDropsDown;
        return false;
    }
    if (rxCount == _params.ringEntries) {
        ++_stats.rxDropsFull;
        return false;
    }
    rx[(rxHead + rxCount) % _params.ringEntries] = req;
    ++rxCount;
    ++_stats.framesRx;
    _stats.maxRxOccupancy = std::max(_stats.maxRxOccupancy, rxCount);
    return true;
}

bool
NicDevice::rxPop(RpcRequest &out)
{
    if (rxCount == 0)
        return false;
    out = rx[rxHead];
    rxHead = (rxHead + 1) % _params.ringEntries;
    --rxCount;
    return true;
}

bool
NicDevice::txPush(const RpcResponse &resp)
{
    if (!linkUp()) {
        ++_stats.txDropsDown;
        return false;
    }
    if (txCount == _params.ringEntries) {
        ++_stats.txDropsFull;
        return false;
    }
    tx[(txHead + txCount) % _params.ringEntries] = resp;
    ++txCount;
    ++_stats.framesTx;
    _stats.maxTxOccupancy = std::max(_stats.maxTxOccupancy, txCount);
    return true;
}

bool
NicDevice::txPop(RpcResponse &out)
{
    if (txCount == 0)
        return false;
    out = tx[txHead];
    txHead = (txHead + 1) % _params.ringEntries;
    --txCount;
    return true;
}

void
NicDevice::scrambleVolatile(Rng &rng)
{
    auto garble = [&rng](void *p, std::size_t bytes) {
        auto *b = static_cast<std::uint8_t *>(p);
        for (std::size_t i = 0; i < bytes; ++i)
            b[i] = static_cast<std::uint8_t>(rng.next());
    };
    garble(rx.data(), rx.size() * sizeof(RpcRequest));
    garble(tx.data(), tx.size() * sizeof(RpcResponse));
    rxHead = static_cast<std::uint32_t>(rng.next());
    rxCount = static_cast<std::uint32_t>(rng.next());
    txHead = static_cast<std::uint32_t>(rng.next());
    txCount = static_cast<std::uint32_t>(rng.next());
}

void
NicDevice::resetVolatile()
{
    std::memset(rx.data(), 0, rx.size() * sizeof(RpcRequest));
    std::memset(tx.data(), 0, tx.size() * sizeof(RpcResponse));
    rxHead = rxCount = txHead = txCount = 0;
}

void
NicDevice::saveContext(std::vector<std::uint8_t> &out)
{
    ContextHeader hdr;
    hdr.magic = contextMagic;
    hdr.ringEntries = _params.ringEntries;
    hdr.rxHead = rxHead;
    hdr.rxCount = rxCount;
    hdr.txHead = txHead;
    hdr.txCount = txCount;
    hdr.framesRx = _stats.framesRx;
    hdr.framesTx = _stats.framesTx;

    const std::size_t off = out.size();
    out.resize(off + contextImageBytes());
    std::uint8_t *p = out.data() + off;
    std::memcpy(p, &hdr, sizeof(hdr));
    p += sizeof(hdr);
    std::memcpy(p, rx.data(), rx.size() * sizeof(RpcRequest));
    p += rx.size() * sizeof(RpcRequest);
    std::memcpy(p, tx.data(), tx.size() * sizeof(RpcResponse));
}

void
NicDevice::restoreContext(const std::uint8_t *data, std::size_t len)
{
    if (len != contextImageBytes())
        panic("NIC context image is ", len, " bytes, expected ",
              contextImageBytes());
    ContextHeader hdr;
    std::memcpy(&hdr, data, sizeof(hdr));
    if (hdr.magic != contextMagic)
        panic("NIC context image has bad magic");
    if (hdr.ringEntries != _params.ringEntries)
        panic("NIC context image for ", hdr.ringEntries,
              "-entry rings, device has ", _params.ringEntries);
    const std::uint8_t *p = data + sizeof(hdr);
    std::memcpy(rx.data(), p, rx.size() * sizeof(RpcRequest));
    p += rx.size() * sizeof(RpcRequest);
    std::memcpy(tx.data(), p, tx.size() * sizeof(RpcResponse));
    rxHead = hdr.rxHead % _params.ringEntries;
    rxCount = hdr.rxCount;
    txHead = hdr.txHead % _params.ringEntries;
    txCount = hdr.txCount;
    if (rxCount > _params.ringEntries || txCount > _params.ringEntries)
        panic("NIC context image has out-of-bounds ring occupancy");
    _stats.framesRx = hdr.framesRx;
    _stats.framesTx = hdr.framesTx;
}

} // namespace lightpc::net
