/**
 * @file
 * KV/RPC server over the persistent object pool.
 *
 * Data plane: an open-addressed key table plus a persistent request-
 * ID dedup set, both inside one root object of a PMDK-style
 * ObjectPool on OC-PMEM, with two selectable write paths:
 *
 *  - WritePath::Undo (default): every PUT runs as an undo-logged
 *    transaction that updates the key slot, the dedup entry, and the
 *    applied counter together; the acknowledgement is only sent after
 *    commit truncation, so an acked PUT is durable by construction.
 *  - WritePath::OpLog: the Persimmon-style fast path. A PUT appends
 *    one 64-byte record to a persistent circular op log (net::OpLog)
 *    and its ack is *deferred* until the next group commit (one
 *    8-byte tail persist + fence covering the whole batch); a
 *    background drain applies committed records to the pool through
 *    the same undo-logged transaction and advances the log head.
 *    Acked => committed => durable still holds; crash recovery scans
 *    the log from the durable head, discards the torn tail by
 *    checksum/sequence, and replays idempotently through the dedup
 *    set.
 *
 * Either way the store's write clock advances at every stage, so a
 * power cut mid-operation drops a *suffix* of the writes and recovery
 * (pool reopen + log replay) restores exactly the committed state.
 *
 * The dedup set is *bounded*: entries carry their apply tick, and
 * when the table fills past 3/4 a compaction transaction evicts
 * entries older than the retention horizon — set from the client
 * fleet's worst-case retry span, so an ID is only forgotten once no
 * conforming client can still retry it. The persisted dedupFloor and
 * compactedCount keep the audit exact across compactions.
 *
 * Control plane: a bounded admission queue with backpressure
 * (Rejected when full) and per-request absolute deadlines
 * (DeadlineExceeded at dequeue, without applying).
 */

#ifndef LIGHTPC_NET_KV_SERVICE_HH
#define LIGHTPC_NET_KV_SERVICE_HH

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "mem/backing_store.hh"
#include "mem/timed_mem.hh"
#include "net/op_log.hh"
#include "net/rpc.hh"
#include "persist/object_pool.hh"
#include "sim/ticks.hh"

namespace lightpc::net
{

/** How PUTs reach the pool. */
enum class WritePath
{
    Undo,   ///< synchronous undo-logged transaction per PUT
    OpLog,  ///< append + group commit, background drain applies
};

/** Service sizing and per-operation costs. */
struct KvParams
{
    /** Pool placement on OC-PMEM (below the SnG reserved area). */
    mem::Addr poolBase = std::uint64_t(256) << 20;
    std::uint64_t poolSize = 24 << 20;

    /** Open-addressed key-table slots (power of two). */
    std::uint32_t keyCapacity = 4096;

    /** Persistent dedup-set slots (power of two). */
    std::uint32_t dedupCapacity = 1 << 15;

    /**
     * Dedup retention horizon: entries applied longer ago than this
     * may be evicted by compaction. Must exceed the worst-case span
     * over which a conforming client can still retry a request ID
     * (FleetParams::maxRetrySpan() plus wire margins).
     */
    Tick dedupRetention = 4 * tickSec;

    /** PUT write path. */
    WritePath writePath = WritePath::Undo;

    /** Op-log placement/size (base 0 = right after the pool). */
    OpLogParams oplog;

    /** Admission-queue bound (backpressure past this). */
    std::uint32_t queueCapacity = 512;

    /** RPC decode + handler dispatch. */
    Tick parseCost = 3 * tickUs;

    /** Per-slot cost of SCAN iteration. */
    Tick scanPerSlot = 400 * tickNs;

    /**
     * A-CheckPC baseline: synchronous per-request checkpoint copy of
     * this many stack/heap bytes (0 = off). Charged through the
     * timed memory so the overhead arises in the memory system.
     */
    std::uint64_t checkpointBytesPerOp = 0;

    /** Where the per-request checkpoints land (A-CheckPC region). */
    mem::Addr checkpointBase = std::uint64_t(1) << 41;

    /** Page-copy handling cost for the per-request checkpoint. */
    Tick checkpointPerPage = 5 * tickUs;
};

/** Service-side counters. */
struct KvStats
{
    std::uint64_t executed = 0;
    std::uint64_t gets = 0;
    std::uint64_t puts = 0;
    std::uint64_t scans = 0;
    std::uint64_t putsApplied = 0;     ///< new transactions committed
    std::uint64_t idempotentHits = 0;  ///< PUT retries already applied
    std::uint64_t rejected = 0;        ///< admission backpressure
    std::uint64_t deadlineExceeded = 0;
    std::uint64_t queueDropped = 0;    ///< admitted but lost to cold boot
    std::uint64_t recoveries = 0;
    std::uint32_t maxQueueDepth = 0;

    // Op-log write path.
    std::uint64_t logAppends = 0;
    std::uint64_t logCommits = 0;        ///< group commits issued
    std::uint64_t logDrainApplied = 0;   ///< records applied by drain
    std::uint64_t logReplayApplied = 0;  ///< recovery replays applied
    std::uint64_t logReplaySkipped = 0;  ///< replays deduped away
    std::uint64_t logStallDrains = 0;    ///< appends that hit a full ring

    // Dedup compaction.
    std::uint64_t dedupCompactions = 0;
    std::uint64_t dedupEvicted = 0;
};

/** Key-table state exposed for oracle checks. */
struct KvKeyState
{
    std::uint64_t key = 0;
    std::uint64_t version = 0;
    std::uint64_t lastReqId = 0;
    std::uint64_t valueSeed = 0;
};

/**
 * Replication metadata persisted inside the root header. Five words
 * the cluster plane needs durable across power cuts: the highest
 * replication sequence this replica holds, its current epoch, the
 * encoded vote (epoch * 64 + votedFor + 1; 0 = never voted — durable
 * so a replica cannot vote twice in one epoch across a crash), the
 * highest *committed* sequence, and the epoch of the record at that
 * commit point (the election up-to-dateness comparator survives a
 * cold boot with it). Persisted with a small undo transaction so a
 * cut mid-update rolls the group back together.
 */
struct ClusterMeta
{
    std::uint64_t seq = 0;       ///< highest sequence held
    std::uint64_t epoch = 0;     ///< current election epoch
    std::uint64_t voteWord = 0;  ///< epoch*64 + votedFor + 1; 0 = none
    std::uint64_t commit = 0;    ///< highest committed sequence
    std::uint64_t commitEpoch = 0;  ///< epoch of the record at commit
};

/**
 * The server.
 */
class KvService
{
  public:
    /**
     * Open (or create) the service state in @p store; @p timed
     * charges the PSM-path line traffic of each operation.
     */
    KvService(mem::BackingStore &store, mem::TimedMem &timed,
              const KvParams &params = KvParams());

    const KvParams &params() const { return _params; }
    const KvStats &stats() const { return _stats; }

    // --- admission queue ------------------------------------------

    /** Admit a request. False = backpressure (caller sends Rejected). */
    bool admit(const RpcRequest &req);

    /** Dequeue the oldest admitted request. */
    bool queuePop(RpcRequest &out);

    std::uint32_t queueDepth() const
    {
        return static_cast<std::uint32_t>(queue.size());
    }
    std::uint32_t queueCapacity() const
    {
        return _params.queueCapacity;
    }

    /** Cold boot: the volatile admission queue is lost. */
    void dropQueue();

    // --- execution ------------------------------------------------

    /**
     * Execute one request. @p t advances by the full service time
     * (parse, probes, transaction, flushes); the store's write clock
     * tracks @p t stage by stage, so an armed power cut interacts
     * with the transaction exactly as the rails would.
     *
     * @p deferred (when non-null) is set true iff the response must
     * NOT be released until the next logCommit() completes — op-log
     * PUT appends and GETs that observed an uncommitted pending
     * value. The caller owns that group-commit barrier.
     */
    RpcResponse execute(Tick &t, const RpcRequest &req,
                        bool *deferred = nullptr);

    /**
     * Crash recovery: reopen the pool over the same region (rolling
     * back any uncommitted transaction), re-anchor the root, and —
     * on the op-log path — scan the log from the durable head,
     * discard the torn tail, and replay the valid run idempotently.
     */
    void recover(Tick &t);

    // --- op-log control (plane-driven group commit / drain) -------

    bool opLogEnabled() const
    {
        return _params.writePath == WritePath::OpLog;
    }

    /** Appended records not yet covered by a group commit. */
    std::uint64_t logUncommittedRecords() const;

    /** Committed records not yet applied to the pool. */
    std::uint64_t logBacklogRecords() const;

    /**
     * Group commit: persist the log tail over every appended record
     * and fence. After this returns, acks for the batch may release.
     */
    void logCommit(Tick &t);

    /**
     * Background drain step: apply up to @p max_records committed
     * records to the pool (skipping already-applied ones) and persist
     * the advanced head. @return records processed.
     */
    std::uint64_t logDrain(Tick &t, std::uint64_t max_records);

    /** Commit everything appended, then drain the whole backlog. */
    void logDrainAll(Tick &t);

    const OpLog *opLog() const { return _log ? &*_log : nullptr; }

    // --- oracle accessors (functional reads, no timing) -----------

    /** Key-table state for @p key. */
    std::optional<KvKeyState> lookup(std::uint64_t key) const;

    /** Every request ID in the persistent dedup set (slot order). */
    std::vector<std::uint64_t> appliedIds() const;

    /** The persistent applied-PUT counter. */
    std::uint64_t appliedCount() const;

    /** IDs evicted from the dedup set by compaction (persisted). */
    std::uint64_t compactedCount() const;

    /**
     * Persisted retention floor: every dedup entry applied at or
     * after this tick is guaranteed still present.
     */
    Tick dedupFloor() const;

    // --- cluster replication hooks --------------------------------

    /** The persisted replication metadata (root header words). */
    ClusterMeta clusterMeta() const;

    /**
     * Persist new replication metadata as one small undo transaction
     * over the four header words. Call AFTER the content the new
     * commit cursor describes is durable (post-apply / post-group-
     * commit), never before — the meta must not claim a commit the
     * rails could still tear away.
     */
    void persistClusterMeta(Tick &t, const ClusterMeta &meta);

    /**
     * Apply one replicated PUT through the shared undo transaction,
     * installing the absolute @p version fixed by the leader. Dedup
     * hits and stale versions (slot already at >= @p version, e.g. a
     * snapshot replayed over delta-applied state) are skipped.
     * @return true iff the record was newly applied.
     */
    bool applyReplicated(Tick &t, std::uint64_t req_id,
                         std::uint64_t key, std::uint64_t value_seed,
                         std::uint64_t version);

    /**
     * Op-log path of a replicated commit: append the record (version
     * fixed by the leader) and leave it for the plane-driven group
     * commit + drain, exactly like a local op-log PUT. @return true
     * iff newly appended (false = already pending or applied).
     */
    bool appendReplicated(Tick &t, std::uint64_t req_id,
                          std::uint64_t key, std::uint64_t value_seed,
                          std::uint64_t version, std::uint32_t client);

    /** Every occupied key slot (slot order) — full-resync payload. */
    std::vector<KvKeyState> snapshotRecords() const;

    /** Is @p req_id in the persistent dedup set? */
    bool isApplied(std::uint64_t req_id) const;

    /** Is @p req_id still sitting undrained in the op log? */
    bool logPending(std::uint64_t req_id) const
    {
        return pendingByReq.find(req_id) != pendingByReq.end();
    }

    /** Occupied dedup slots (volatile mirror, audited in tests). */
    std::uint64_t dedupLiveCount() const { return dedupLive; }

    const persist::ObjectPool &pool() const { return *_pool; }

  private:
    struct KvSlot
    {
        std::uint64_t key = 0;  ///< 0 = empty
        std::uint64_t version = 0;
        std::uint64_t lastReqId = 0;
        std::uint64_t valueSeed = 0;
    };

    /** Dedup slot: the ID plus its apply tick (compaction input). */
    struct DedupEntry
    {
        std::uint64_t id = 0;  ///< 0 = empty
        std::uint64_t appliedAt = 0;
    };

    struct RootHeader
    {
        std::uint64_t magic = 0;
        std::uint32_t keyCapacity = 0;
        std::uint32_t dedupCapacity = 0;
        std::uint64_t appliedCount = 0;
        std::uint64_t compactedCount = 0;
        std::uint64_t dedupFloor = 0;
        // Replication metadata (ClusterMeta image); the five words
        // are contiguous so persistClusterMeta can cover them with
        // one ranged undo entry.
        std::uint64_t replSeq = 0;
        std::uint64_t replEpoch = 0;
        std::uint64_t replVote = 0;
        std::uint64_t replCommit = 0;
        std::uint64_t replCommitEpoch = 0;
    };

    static constexpr std::uint64_t rootMagic =
        0x4b565f524f4f5433ULL;  // "KV_ROOT3"

    /** Volatile record of a PUT sitting in the op log, undrained. */
    struct PendingPut
    {
        std::uint64_t key = 0;
        std::uint64_t version = 0;
        std::uint64_t valueSeed = 0;
        std::uint64_t seq = 0;  ///< log sequence number
    };

    std::uint64_t rootBytes() const;
    std::uint64_t keyTableOffset() const { return sizeof(RootHeader); }
    std::uint64_t
    dedupOffset() const
    {
        return keyTableOffset()
            + std::uint64_t(_params.keyCapacity) * sizeof(KvSlot);
    }

    void openRoot(Tick &t);
    void openLog(Tick &t);

    /** Advance the store's write clock to @p t (stage boundary). */
    void clock(Tick t);

    static std::uint64_t hashOf(std::uint64_t x);

    /** Key-table probe: slot index holding @p key, or the first
     *  empty slot on its probe path. */
    std::uint32_t probeKey(std::uint64_t key, bool &found) const;

    /** Dedup probe: slot holding @p req_id, or first empty slot. */
    std::uint32_t probeDedup(std::uint64_t req_id, bool &found) const;

    void readSlot(std::uint32_t idx, KvSlot &out) const;
    DedupEntry dedupAt(std::uint32_t idx) const;

    /** Recount occupied dedup slots (ctor / recovery). */
    void rebuildDedupLive();

    RpcResponse executeGet(Tick &t, const RpcRequest &req,
                           bool *deferred);
    RpcResponse executePut(Tick &t, const RpcRequest &req,
                           bool *deferred);
    RpcResponse executePutOpLog(Tick &t, const RpcRequest &req,
                                bool *deferred);
    RpcResponse executeScan(Tick &t, const RpcRequest &req);
    void chargeCheckpoint(Tick &t);

    /**
     * The shared apply transaction: key slot + dedup entry + applied
     * counter move together or not at all. @p version is the
     * absolute version to install (the undo path passes current+1,
     * the op-log drain passes the version fixed at append).
     */
    void applyPut(Tick &t, std::uint64_t req_id, std::uint64_t key,
                  std::uint64_t value_seed, std::uint64_t version,
                  KvSlot &slot_out);

    /** Drop a drained/applied record from the pending-put maps. */
    void forgetPending(const OpRecord &rec);

    /**
     * Evict dedup entries older than the retention horizon once the
     * table passes 3/4 occupancy (one undo-logged transaction over
     * the dedup region + header).
     */
    void maybeCompactDedup(Tick &t);

    mem::BackingStore &store;
    mem::TimedMem &timed;
    KvParams _params;
    KvStats _stats;
    std::optional<persist::ObjectPool> _pool;
    std::optional<OpLog> _log;
    persist::ObjectId root;
    mem::Addr rootAddr = 0;  ///< pool-physical address of the root
    std::vector<RpcRequest> queue;  ///< volatile admission queue

    /** Op-log pending index: reqId -> its undrained record. */
    std::unordered_map<std::uint64_t, PendingPut> pendingByReq;

    /** Newest undrained record per key (read-your-writes, chaining). */
    std::unordered_map<std::uint64_t, PendingPut> newestByKey;

    std::uint64_t dedupLive = 0;  ///< occupied dedup slots (mirror)

    /** Suppress compaction retries while nothing is evictable. */
    std::uint64_t compactionHoldoff = 0;
};

} // namespace lightpc::net

#endif // LIGHTPC_NET_KV_SERVICE_HH
