/**
 * @file
 * KV/RPC server over the persistent object pool.
 *
 * Data plane: an open-addressed key table plus a persistent request-
 * ID dedup set, both inside one root object of a PMDK-style
 * ObjectPool on OC-PMEM. Every PUT runs as an undo-logged transaction
 * that updates the key slot, the dedup entry, and the applied
 * counter together; the pool's write-ahead log plus the backing
 * store's durability cursor give exact crash semantics:
 *
 *  - the service advances the store's write clock at every stage, so
 *    a power cut mid-PUT drops a *suffix* of the transaction's
 *    writes; recovery (pool reopen) rolls the survivors back;
 *  - the acknowledgement is only sent after commit truncation, so an
 *    acked PUT is durable by construction;
 *  - a retry of an already-applied PUT hits the dedup set and is
 *    acknowledged without re-applying (idempotence).
 *
 * Control plane: a bounded admission queue with backpressure
 * (Rejected when full) and per-request absolute deadlines
 * (DeadlineExceeded at dequeue, without applying).
 */

#ifndef LIGHTPC_NET_KV_SERVICE_HH
#define LIGHTPC_NET_KV_SERVICE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "mem/backing_store.hh"
#include "mem/timed_mem.hh"
#include "net/rpc.hh"
#include "persist/object_pool.hh"
#include "sim/ticks.hh"

namespace lightpc::net
{

/** Service sizing and per-operation costs. */
struct KvParams
{
    /** Pool placement on OC-PMEM (below the SnG reserved area). */
    mem::Addr poolBase = std::uint64_t(256) << 20;
    std::uint64_t poolSize = 24 << 20;

    /** Open-addressed key-table slots (power of two). */
    std::uint32_t keyCapacity = 4096;

    /** Persistent dedup-set slots (power of two). */
    std::uint32_t dedupCapacity = 1 << 15;

    /** Admission-queue bound (backpressure past this). */
    std::uint32_t queueCapacity = 512;

    /** RPC decode + handler dispatch. */
    Tick parseCost = 3 * tickUs;

    /** Per-slot cost of SCAN iteration. */
    Tick scanPerSlot = 400 * tickNs;

    /**
     * A-CheckPC baseline: synchronous per-request checkpoint copy of
     * this many stack/heap bytes (0 = off). Charged through the
     * timed memory so the overhead arises in the memory system.
     */
    std::uint64_t checkpointBytesPerOp = 0;

    /** Where the per-request checkpoints land (A-CheckPC region). */
    mem::Addr checkpointBase = std::uint64_t(1) << 41;

    /** Page-copy handling cost for the per-request checkpoint. */
    Tick checkpointPerPage = 5 * tickUs;
};

/** Service-side counters. */
struct KvStats
{
    std::uint64_t executed = 0;
    std::uint64_t gets = 0;
    std::uint64_t puts = 0;
    std::uint64_t scans = 0;
    std::uint64_t putsApplied = 0;     ///< new transactions committed
    std::uint64_t idempotentHits = 0;  ///< PUT retries already applied
    std::uint64_t rejected = 0;        ///< admission backpressure
    std::uint64_t deadlineExceeded = 0;
    std::uint64_t queueDropped = 0;    ///< admitted but lost to cold boot
    std::uint64_t recoveries = 0;
    std::uint32_t maxQueueDepth = 0;
};

/** Key-table state exposed for oracle checks. */
struct KvKeyState
{
    std::uint64_t key = 0;
    std::uint64_t version = 0;
    std::uint64_t lastReqId = 0;
    std::uint64_t valueSeed = 0;
};

/**
 * The server.
 */
class KvService
{
  public:
    /**
     * Open (or create) the service state in @p store; @p timed
     * charges the PSM-path line traffic of each operation.
     */
    KvService(mem::BackingStore &store, mem::TimedMem &timed,
              const KvParams &params = KvParams());

    const KvParams &params() const { return _params; }
    const KvStats &stats() const { return _stats; }

    // --- admission queue ------------------------------------------

    /** Admit a request. False = backpressure (caller sends Rejected). */
    bool admit(const RpcRequest &req);

    /** Dequeue the oldest admitted request. */
    bool queuePop(RpcRequest &out);

    std::uint32_t queueDepth() const
    {
        return static_cast<std::uint32_t>(queue.size());
    }
    std::uint32_t queueCapacity() const
    {
        return _params.queueCapacity;
    }

    /** Cold boot: the volatile admission queue is lost. */
    void dropQueue();

    // --- execution ------------------------------------------------

    /**
     * Execute one request. @p t advances by the full service time
     * (parse, probes, transaction, flushes); the store's write clock
     * tracks @p t stage by stage, so an armed power cut interacts
     * with the transaction exactly as the rails would.
     */
    RpcResponse execute(Tick &t, const RpcRequest &req);

    /**
     * Crash recovery: reopen the pool over the same region (rolling
     * back any uncommitted transaction) and re-anchor the root.
     */
    void recover(Tick &t);

    // --- oracle accessors (functional reads, no timing) -----------

    /** Key-table state for @p key. */
    std::optional<KvKeyState> lookup(std::uint64_t key) const;

    /** Every request ID in the persistent dedup set (slot order). */
    std::vector<std::uint64_t> appliedIds() const;

    /** The persistent applied-PUT counter. */
    std::uint64_t appliedCount() const;

    const persist::ObjectPool &pool() const { return *_pool; }

  private:
    struct KvSlot
    {
        std::uint64_t key = 0;  ///< 0 = empty
        std::uint64_t version = 0;
        std::uint64_t lastReqId = 0;
        std::uint64_t valueSeed = 0;
    };

    struct RootHeader
    {
        std::uint64_t magic = 0;
        std::uint32_t keyCapacity = 0;
        std::uint32_t dedupCapacity = 0;
        std::uint64_t appliedCount = 0;
        std::uint64_t pad[5] = {};
    };

    static constexpr std::uint64_t rootMagic =
        0x4b565f524f4f5431ULL;  // "KV_ROOT1"

    std::uint64_t rootBytes() const;
    std::uint64_t keyTableOffset() const { return sizeof(RootHeader); }
    std::uint64_t
    dedupOffset() const
    {
        return keyTableOffset()
            + std::uint64_t(_params.keyCapacity) * sizeof(KvSlot);
    }

    void openRoot(Tick &t);

    /** Advance the store's write clock to @p t (stage boundary). */
    void clock(Tick t);

    static std::uint64_t hashOf(std::uint64_t x);

    /** Key-table probe: slot index holding @p key, or the first
     *  empty slot on its probe path. */
    std::uint32_t probeKey(std::uint64_t key, bool &found) const;

    /** Dedup probe: slot holding @p req_id, or first empty slot. */
    std::uint32_t probeDedup(std::uint64_t req_id, bool &found) const;

    void readSlot(std::uint32_t idx, KvSlot &out) const;
    std::uint64_t dedupAt(std::uint32_t idx) const;

    RpcResponse executeGet(Tick &t, const RpcRequest &req);
    RpcResponse executePut(Tick &t, const RpcRequest &req);
    RpcResponse executeScan(Tick &t, const RpcRequest &req);
    void chargeCheckpoint(Tick &t);

    mem::BackingStore &store;
    mem::TimedMem &timed;
    KvParams _params;
    KvStats _stats;
    std::optional<persist::ObjectPool> _pool;
    persist::ObjectId root;
    mem::Addr rootAddr = 0;  ///< pool-physical address of the root
    std::vector<RpcRequest> queue;  ///< volatile admission queue
};

} // namespace lightpc::net

#endif // LIGHTPC_NET_KV_SERVICE_HH
