/**
 * @file
 * Persistent operation log in OC-PMEM (Persimmon-style psm_log).
 *
 * A cache-line-aligned circular buffer of fixed 64-byte records with
 * explicit persist ordering, designed so that a power cut at *any*
 * byte offset of any in-flight write leaves a recoverable log:
 *
 *  - The header, the head cursor, and the tail cursor live on three
 *    separate cache lines, so persisting one never tears another.
 *    Both cursors are single 8-byte stores — atomic under the
 *    durability cursor's torn-write model (<= 8-byte writes never
 *    tear).
 *  - Every record carries a sequence number derived from its virtual
 *    log offset plus an FNV-1a checksum over the rest of the record,
 *    written last. A torn record (the cursor tears exactly one
 *    in-flight line to a byte prefix) fails the checksum; a stale
 *    previous-lap record fails the sequence check. Either way the
 *    recovery scan stops exactly at the torn tail.
 *  - append() writes records past the committed tail without
 *    persisting any cursor; commit() persists the tail over the whole
 *    batch with one 8-byte store + fence (group commit) — the ack
 *    release point. pop()/persistHead() advance the drain cursor,
 *    volatile first, persisted once per drain batch.
 *
 * Persist-ordering invariant (what makes recovery sound): a slot is
 * never rewritten until the head persist covering its eviction has
 * completed, so the recovery scan — which starts at the *durable*
 * head — only ever sees fully-drained slots overwritten. And because
 * the tail is persisted strictly after every record it covers, a
 * durable tail implies durable records: the scan's valid run can end
 * short of the durable tail only if the protocol is broken.
 *
 * Virtual offsets are monotonic byte counts (physical slot = offset
 * mod capacity), so sequence numbers distinguish laps for free.
 */

#ifndef LIGHTPC_NET_OP_LOG_HH
#define LIGHTPC_NET_OP_LOG_HH

#include <cstdint>
#include <vector>

#include "mem/backing_store.hh"
#include "mem/timed_mem.hh"
#include "sim/ticks.hh"

namespace lightpc::net
{

/** Placement and sizing. */
struct OpLogParams
{
    /**
     * Region base on OC-PMEM (cache-line aligned). 0 lets the owner
     * derive it (KvService places the log right after its pool).
     */
    mem::Addr base = 0;

    /** Data-region bytes (multiple of the record size). */
    std::uint64_t capacity = std::uint64_t(1) << 20;
};

/**
 * One log entry: exactly one cache line, so a record write is one
 * line-granular store and the cursor's torn-prefix model applies to
 * it directly. The checksum covers every preceding byte and is
 * written as part of the same line store; `seq` is assigned by
 * append() from the record's virtual offset.
 */
struct OpRecord
{
    std::uint64_t seq = 0;       ///< virt/64 + 1 (lap-disambiguating)
    std::uint64_t reqId = 0;
    std::uint64_t key = 0;
    std::uint64_t valueSeed = 0;
    std::uint64_t version = 0;   ///< key version assigned at append
    std::uint32_t client = 0;
    std::uint32_t pad0 = 0;
    std::uint64_t appendedAt = 0; ///< service tick of the append
    std::uint64_t checksum = 0;  ///< FNV-1a over the first 56 bytes
};

static_assert(sizeof(OpRecord) == 64,
              "OpRecord must fill one cache line");

/** Log-side counters. */
struct OpLogStats
{
    std::uint64_t appends = 0;
    std::uint64_t commits = 0;       ///< tail persists (group commits)
    std::uint64_t pops = 0;          ///< records drained
    std::uint64_t headPersists = 0;
    std::uint64_t recoveries = 0;
    std::uint64_t recoveredRecords = 0;
    std::uint64_t checksumStops = 0; ///< scans ended by a torn record
    std::uint64_t seqStops = 0;      ///< scans ended by a stale lap
};

/** What one recovery scan found. */
struct OpLogRecovery
{
    std::uint64_t headVirt = 0;     ///< durable head at scan start
    std::uint64_t tailVirt = 0;     ///< durable committed tail
    std::uint64_t scanEndVirt = 0;  ///< end of the valid record run
    /**
     * scanEndVirt >= tailVirt: every committed record was found
     * intact. False would mean an acked record tore — a protocol
     * violation, never a legal crash outcome.
     */
    bool tailCovered = false;
    std::vector<OpRecord> records;  ///< valid run, log order
};

/**
 * The log. All functional writes go through the TimedMem (and thus
 * the backing store's durability cursor) with the store's write
 * clock advanced to the caller's tick first, so an armed power cut
 * drops or tears them exactly as the rails would.
 */
class OpLog
{
  public:
    static constexpr std::uint64_t recordBytes = sizeof(OpRecord);

    OpLog(mem::BackingStore &store, mem::TimedMem &timed,
          const OpLogParams &params);

    const OpLogParams &params() const { return _params; }
    const OpLogStats &stats() const { return _stats; }

    /** FNV-1a over the first 56 record bytes (checksum input). */
    static std::uint64_t checksumOf(const OpRecord &rec);

    // --- lifecycle ------------------------------------------------

    /** Initialize a fresh log: header + zero cursors, persisted. */
    void format(Tick &t);

    /**
     * Attach to an existing region: read the header and the durable
     * cursors. @return false when no valid header is present (the
     * caller should format()).
     */
    bool attach(Tick &t);

    // --- producer side --------------------------------------------

    /**
     * True when appending one more record would rewrite a slot not
     * yet covered by a *persisted* head — the caller must drain and
     * persist the head before appending (stall drain).
     */
    bool wouldBlock() const
    {
        return appendCursor + recordBytes - persistedHead
            > _params.capacity;
    }

    /**
     * Append one record past the committed tail. Assigns seq and
     * checksum; @return the assigned sequence number. The record is
     * NOT durable-on-ack until the next commit().
     */
    std::uint64_t append(Tick &t, OpRecord rec);

    /** Records appended but not yet covered by a commit. */
    std::uint64_t
    uncommittedRecords() const
    {
        return (appendCursor - tail) / recordBytes;
    }

    /**
     * Group commit: persist the tail over every appended record
     * (one 8-byte store) and fence. Acks release after this returns.
     */
    void commit(Tick &t);

    /** True when the record at @p virt is covered by a commit. */
    bool
    committedThrough(std::uint64_t seq) const
    {
        return seq * recordBytes <= tail;
    }

    // --- consumer side --------------------------------------------

    /** Committed records not yet popped (the drain backlog). */
    std::uint64_t
    backlogRecords() const
    {
        return (tail - head) / recordBytes;
    }

    /** Functional + timed read of the record at the drain head. */
    OpRecord readHead(Tick &t);

    /** Advance the volatile drain head one record. */
    void pop();

    /**
     * Persist the drain head (one 8-byte store) + fence. Called once
     * per drain batch; the lag is safe because replay after a crash
     * is idempotent through the request-ID dedup set.
     */
    void persistHead(Tick &t);

    // --- crash recovery -------------------------------------------

    /**
     * Re-read the durable cursors and scan forward from the durable
     * head, validating checksum + sequence per record; the scan stops
     * at the torn tail (first invalid line). On return the volatile
     * cursors are rebuilt: head at the durable head, tail and append
     * cursor at the end of the valid run — durable-but-uncommitted
     * records are replayed too (their acks never released, and replay
     * is idempotent).
     */
    OpLogRecovery recover(Tick &t);

    /**
     * After the caller replayed every recovered record: mark the log
     * drained and persist both cursors.
     */
    void resetAfterReplay(Tick &t);

    // --- cursors (oracle / tests) ---------------------------------

    std::uint64_t headVirt() const { return head; }
    std::uint64_t persistedHeadVirt() const { return persistedHead; }
    std::uint64_t tailVirt() const { return tail; }
    std::uint64_t appendVirt() const { return appendCursor; }

    mem::Addr headAddr() const { return _params.base + 64; }
    mem::Addr tailAddr() const { return _params.base + 128; }
    mem::Addr dataAddr() const { return _params.base + 192; }

    /** Physical address of the slot holding virtual offset @p virt. */
    mem::Addr
    slotAddr(std::uint64_t virt) const
    {
        return dataAddr() + virt % _params.capacity;
    }

  private:
    struct Header
    {
        std::uint64_t magic = 0;
        std::uint64_t capacity = 0;
        std::uint64_t pad[6] = {};
    };
    static_assert(sizeof(Header) == 64, "header fills one line");

    static constexpr std::uint64_t logMagic =
        0x4f504c4f475f5631ULL;  // "OPLOG_V1"

    void clock(Tick t) { store.setWriteClock(t); }

    mem::BackingStore &store;
    mem::TimedMem &timed;
    OpLogParams _params;
    OpLogStats _stats;

    // Virtual (monotonic) byte cursors; physical = virt % capacity.
    std::uint64_t head = 0;           ///< volatile drain cursor
    std::uint64_t persistedHead = 0;  ///< last head value persisted
    std::uint64_t tail = 0;           ///< committed boundary
    std::uint64_t appendCursor = 0;   ///< volatile append cursor
};

} // namespace lightpc::net

#endif // LIGHTPC_NET_OP_LOG_HH
