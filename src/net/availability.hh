/**
 * @file
 * Client-visible availability and tail-latency recorder.
 *
 * Tracks what the *clients* observe: the goodput timeline (completed
 * requests per sampling window), the end-to-end latency distribution
 * (first issue to acknowledgement, so retries and outage dwell count
 * against the tail), and per-outage downtime — the gap between the
 * last acknowledgement before a power event and the first one served
 * after it. The downtime attributable to the persistence mechanism is that
 * gap minus the AC-off dwell, which every mode pays equally.
 */

#ifndef LIGHTPC_NET_AVAILABILITY_HH
#define LIGHTPC_NET_AVAILABILITY_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/logging.hh"
#include "sim/ticks.hh"
#include "stats/histogram.hh"
#include "stats/summary.hh"
#include "stats/time_series.hh"

namespace lightpc::net
{

/** One power event as the clients experienced it. */
struct OutageRecord
{
    Tick eventAt = 0;             ///< power-event interrupt tick
    Tick lastSuccessBefore = 0;   ///< latest ack preceding the event
    Tick firstSuccessAfter = 0;   ///< earliest ack *served* after it
    bool closed = false;          ///< saw a post-event-served success

    /** Client-visible downtime (maxTick while still open). */
    Tick
    downtime() const
    {
        if (!closed)
            return maxTick;
        return firstSuccessAfter - lastSuccessBefore;
    }
};

/**
 * The recorder. The service plane calls onSuccess() for every
 * acknowledged request, sample() from a periodic stats event, and
 * outageBegin() when a power event fires.
 */
class AvailabilityRecorder
{
  public:
    explicit AvailabilityRecorder(Tick window_in) : window(window_in)
    {
        if (window == 0)
            fatal("AvailabilityRecorder window must be nonzero");
    }

    /**
     * An acknowledgement reached a client. @p served_at is when the
     * server generated the response: an outage only closes on an ack
     * *served* after its power event — a straggler frame that was on
     * the wire when power died still delivers, but it proves nothing
     * about the service being back.
     */
    void
    onSuccess(Tick now, Tick first_issued_at, Tick served_at)
    {
        lat.add(now - first_issued_at);
        latSummary.add(ticksToUs(now - first_issued_at));
        ++windowCompletions;
        lastSuccess = now;
        for (OutageRecord &o : outages) {
            if (o.closed)
                continue;
            if (served_at > o.eventAt) {
                o.firstSuccessAfter = now;
                o.closed = true;
            } else if (served_at < o.eventAt
                       && now > o.lastSuccessBefore) {
                // A straggler served before the event is still a
                // client-visible success: it narrows the gap even
                // though it cannot close it. Strictly before: an ack
                // stamped exactly at the event tick (e.g. a batch
                // flushed as the rails failed) proves nothing about
                // either side of the cut, and it may ride a preserved
                // ring and deliver long after restoration — letting
                // it narrow would push lastSuccessBefore to that late
                // delivery and under-count the whole outage.
                o.lastSuccessBefore = now;
            }
        }
    }

    /** A power event fired; opens an outage record. */
    void
    outageBegin(Tick event_at)
    {
        OutageRecord o;
        o.eventAt = event_at;
        o.lastSuccessBefore = lastSuccess;
        outages.push_back(o);
    }

    /** Periodic goodput sample (requests/s over the last window). */
    void
    sample(Tick now)
    {
        const double seconds =
            static_cast<double>(window) / static_cast<double>(tickSec);
        goodput.record(now, static_cast<double>(windowCompletions)
                                / seconds);
        windowCompletions = 0;
    }

    /**
     * Fold another replica's recorder into this one (fleet-level
     * availability from per-replica views). Commutative up to the
     * final ordering: latency and goodput merges are order-free, and
     * the outage ledger is re-sorted into a canonical (eventAt,
     * replica-agnostic field) order afterwards — so folding replicas
     * 0..N-1 in any order yields byte-identical state. Windows must
     * match; the sampling cadence is part of the goodput unit.
     */
    void
    merge(const AvailabilityRecorder &other)
    {
        if (other.window != window)
            fatal("AvailabilityRecorder::merge needs matching windows: ",
                  window, " vs ", other.window);
        lat.merge(other.lat);
        latSummary.merge(other.latSummary);
        goodput.merge(other.goodput);
        windowCompletions += other.windowCompletions;
        if (other.lastSuccess > lastSuccess)
            lastSuccess = other.lastSuccess;
        outages.insert(outages.end(), other.outages.begin(),
                       other.outages.end());
        std::sort(outages.begin(), outages.end(),
                  [](const OutageRecord &a, const OutageRecord &b) {
                      if (a.eventAt != b.eventAt)
                          return a.eventAt < b.eventAt;
                      if (a.lastSuccessBefore != b.lastSuccessBefore)
                          return a.lastSuccessBefore
                              < b.lastSuccessBefore;
                      if (a.firstSuccessAfter != b.firstSuccessAfter)
                          return a.firstSuccessAfter
                              < b.firstSuccessAfter;
                      return a.closed < b.closed;
                  });
    }

    Tick sampleWindow() const { return window; }
    Tick lastSuccessAt() const { return lastSuccess; }
    const std::vector<OutageRecord> &outageRecords() const
    {
        return outages;
    }
    stats::Histogram &latency() { return lat; }
    const stats::Summary &latencySummaryUs() const { return latSummary; }
    const stats::TimeSeries &goodputSeries() const { return goodput; }

  private:
    Tick window;
    Tick lastSuccess = 0;
    std::uint64_t windowCompletions = 0;
    stats::Histogram lat;           ///< ticks, first issue -> ack
    stats::Summary latSummary;      ///< microseconds (mean/cv)
    stats::TimeSeries goodput{"goodput"};
    std::vector<OutageRecord> outages;
};

} // namespace lightpc::net

#endif // LIGHTPC_NET_AVAILABILITY_HH
