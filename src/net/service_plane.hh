/**
 * @file
 * The network service plane: end-to-end client-visible availability
 * of a persistent KV service across power cycles.
 *
 * runService() assembles one LightPC platform (kernel + dpm devices +
 * PSM-backed OC-PMEM), registers a NicDevice in the dpm_list, runs a
 * KvService over a persistent ObjectPool, and drives an open-loop
 * ClientFleet against it on the discrete-event queue. Seeded power
 * cuts interrupt the run; what happens next depends on the
 * persistence mode:
 *
 *  - SnG        — PecOS Stop-and-Go: the EP-cut commits within the
 *                 PSU hold-up, the NIC rings ride the DCB through the
 *                 outage, and Go resumes the service with its queued
 *                 traffic intact.
 *  - SysPc      — hibernate-style full-system image, attempted at the
 *                 power event; the dump cannot beat the hold-up, so
 *                 recovery is a cold reboot.
 *  - SCheckPc   — periodic BLCR-style dumps that stall the service
 *                 (stop-the-world), plus a cold reboot on power loss.
 *  - ACheckPc   — per-request synchronous checkpoint copies, plus a
 *                 cold reboot on power loss.
 *  - OpLog      — SnG power machinery plus a Persimmon-style
 *                 persistent op log: PUTs append one record and ack
 *                 on group commit (batched tail persist), a
 *                 background drain applies committed records to the
 *                 pool, and recovery replays the log from the
 *                 durable head (torn tail discarded by checksum).
 *
 * All modes share the same transactional pool, so *durability* of
 * acknowledged writes holds everywhere (that is an invariant, checked
 * against the fleet's ledger); what differs is the client-visible
 * downtime and tail latency — the paper's Fig. 19-22 argument
 * recast as a service-level benchmark.
 */

#ifndef LIGHTPC_NET_SERVICE_PLANE_HH
#define LIGHTPC_NET_SERVICE_PLANE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "net/client_fleet.hh"
#include "net/kv_service.hh"
#include "net/nic.hh"
#include "sim/ticks.hh"

namespace lightpc::net
{

/** Which persistence mechanism carries the service through outages. */
enum class PersistMode
{
    SnG,       ///< PecOS Stop-and-Go (LightPC)
    SysPc,     ///< full-system image at power-down
    SCheckPc,  ///< periodic system-level checkpoint (BLCR-style)
    ACheckPc,  ///< per-request application-level checkpoint
    OpLog,     ///< SnG + persistent op-log write path (group commit)
};

/** Display name. */
const char *persistModeName(PersistMode mode);

/** One experiment configuration. */
struct ServiceConfig
{
    PersistMode mode = PersistMode::SnG;

    /** Arrivals are generated for this long; then the run drains. */
    Tick runFor = 8 * tickSec;

    /** Extra drain time after the last arrival. */
    Tick drainGrace = 3 * tickSec;

    /** Power events, evenly spaced inside runFor. */
    std::uint32_t cuts = 3;

    /**
     * Land each cut while the service is mid-flight (server busy or
     * frames queued in a NIC ring): from its nominal instant, the
     * power event probes every cutProbeInterval until it catches the
     * service under load, up to half the inter-cut spacing. This is
     * the adversarial case — queued traffic and an unsent ack are at
     * stake — and what makes DCB ring resurrection observable.
     */
    bool cutUnderLoad = true;
    Tick cutProbeInterval = 37 * tickUs;

    /** AC-off dwell between the power event and restoration. */
    Tick offDwell = 100 * tickMs;

    /**
     * Cut storms: after each scheduled cut fires, this many follow-up
     * cuts chase the recovery. Each is scheduled stormSpacing past
     * the previous restoration and fires as soon as the service is
     * back up (no under-load wait) — the compound-failure case where
     * the next outage lands inside the recovery from the last.
     */
    std::uint32_t stormFollowUps = 0;
    Tick stormSpacing = 30 * tickMs;

    /** PSU hold-up: rails stay in spec this long past the event. */
    Tick holdup = 16 * tickMs;

    /** One-way client <-> server propagation. */
    Tick wireLatency = 20 * tickUs;

    /** NIC TX drain interval (one response frame per interval). */
    Tick txDrainInterval = 2 * tickUs;

    /** Server-side deadline granted to each attempt. */
    Tick requestDeadline = 250 * tickMs;

    /** Goodput sampling window. */
    Tick goodputWindow = 10 * tickMs;

    /** S-CheckPC: period and VM footprint of the periodic dump. */
    Tick scheckPeriod = 100 * tickMs;
    std::uint64_t scheckVmBytes = std::uint64_t(48) << 20;

    /** A-CheckPC: synchronous checkpoint bytes per request. */
    std::uint64_t acheckBytesPerOp = 18000;

    /**
     * OpLog mode: group-commit cadence. A commit fires when either
     * this many records are waiting or the interval elapses since
     * the first deferred ack of the batch — amortizing the tail
     * persist + fence across the batch while bounding ack latency.
     */
    Tick oplogCommitInterval = 25 * tickUs;
    std::uint32_t oplogCommitRecords = 16;

    /** OpLog mode: background drain cadence and batch size. */
    Tick oplogDrainInterval = 150 * tickUs;
    std::uint32_t oplogDrainBatch = 32;

    /** Kernel population behind the service. */
    std::uint32_t userProcesses = 24;
    std::uint32_t kernelThreads = 16;
    std::size_t deviceCount = 60;

    FleetParams fleet;
    KvParams kv;
    NicParams nic;

    std::uint64_t seed = 42;
};

/** One power event as measured at the clients. */
struct ServiceOutage
{
    Tick eventAt = 0;
    Tick lastSuccessBefore = 0;
    Tick firstSuccessAfter = 0;  ///< maxTick when never recovered
    Tick downtime = 0;           ///< client-visible ack gap
    Tick attributable = 0;       ///< downtime minus the AC-off dwell
    bool coldBoot = false;       ///< recovery had no usable commit
};

/** Everything one run produces. */
struct ServiceResult
{
    PersistMode mode = PersistMode::SnG;
    std::string modeName;

    // Client side.
    std::uint64_t arrivals = 0;
    std::uint64_t attempts = 0;
    std::uint64_t retries = 0;
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    std::uint64_t duplicateAcks = 0;
    std::uint64_t ackedPuts = 0;

    // Server side.
    std::uint64_t executed = 0;
    std::uint64_t putsApplied = 0;
    std::uint64_t idempotentHits = 0;
    std::uint64_t rejected = 0;
    std::uint64_t deadlineExceeded = 0;
    std::uint64_t queueDropped = 0;
    std::uint64_t recoveries = 0;

    // Op-log write path (OpLog mode; zero elsewhere).
    std::uint64_t logAppends = 0;
    std::uint64_t logCommits = 0;
    std::uint64_t logDrainApplied = 0;
    std::uint64_t logReplayApplied = 0;
    std::uint64_t logStallDrains = 0;

    // Dedup-table compaction (any mode).
    std::uint64_t dedupCompactions = 0;
    std::uint64_t dedupEvicted = 0;

    // NIC.
    std::uint64_t framesRx = 0;
    std::uint64_t framesTx = 0;
    std::uint64_t rxDropsDown = 0;
    std::uint64_t rxDropsFull = 0;

    /** Bounded-queue high-water marks (audited against capacity). */
    std::uint32_t maxQueueDepth = 0;
    std::uint32_t maxRxOccupancy = 0;
    std::uint32_t maxTxOccupancy = 0;
    std::uint64_t wireDrops = 0;  ///< frames lost to AC-off (plane)

    /** Frames resurrected from the DCB ring images across outages. */
    std::uint64_t ringPreservedFrames = 0;

    /** Queued frames destroyed by cold boots (baselines pay this). */
    std::uint64_t ringFramesLost = 0;
    std::uint64_t contextImagesSaved = 0;
    std::uint64_t contextImagesRestored = 0;

    std::uint64_t coldBoots = 0;

    /** Storm follow-up cuts that fired (chasing recoveries). */
    std::uint64_t stormFollowUpCuts = 0;

    // Latency, first issue -> ack, in microseconds.
    double meanUs = 0.0;
    double p50Us = 0.0;
    double p99Us = 0.0;
    double p999Us = 0.0;

    /** Mean goodput over the arrival phase (completions / runFor). */
    double goodputMean = 0.0;

    /** Goodput timeline (window samples, req/s). */
    std::vector<std::pair<Tick, double>> goodput;

    std::vector<ServiceOutage> outages;
    Tick worstDowntime = 0;
    Tick worstAttributable = 0;

    /** Accumulated SnG Stop / Go wall time across outages. */
    Tick stopTicksTotal = 0;
    Tick goTicksTotal = 0;

    // Invariant audit (all must be zero / empty).
    std::uint64_t lostAckedPuts = 0;    ///< acked but not in dedup set
    std::uint64_t duplicateApplied = 0; ///< version/dedup mismatches
    std::vector<std::string> violations;

    /** FNV digest of the run's observable counters (determinism). */
    std::uint64_t digest = 0;
};

/**
 * Reject degenerate configurations with a clear message instead of
 * letting them silently degenerate (a zero-client fleet, a
 * zero-capacity ring that can never carry a frame, storm follow-ups
 * with no storm to follow). Called at runService entry; exposed so
 * callers embedding ServiceConfig (the cluster plane) and tests can
 * invoke it directly.
 */
void validateServiceConfig(const ServiceConfig &config);

/** Run one configuration to completion. */
ServiceResult runService(const ServiceConfig &config);

/**
 * Run a suite of configurations, fanned across @p threads host
 * threads (0 = hardware concurrency). Each run owns its whole
 * platform and event queue, and results come back in the input's
 * order regardless of which worker finished first — so a suite is
 * bit-identical to running each config sequentially, digests
 * included.
 */
std::vector<ServiceResult>
runServiceSuite(const std::vector<ServiceConfig> &configs,
                unsigned threads = 1);

} // namespace lightpc::net

#endif // LIGHTPC_NET_SERVICE_PLANE_HH
