#include "net/kv_service.hh"

#include <algorithm>
#include <cstddef>

#include "sim/logging.hh"

namespace lightpc::net
{

namespace
{

bool
isPowerOfTwo(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

} // namespace

KvService::KvService(mem::BackingStore &store_in, mem::TimedMem &timed_in,
                     const KvParams &params)
    : store(store_in), timed(timed_in), _params(params)
{
    if (!isPowerOfTwo(_params.keyCapacity)
        || !isPowerOfTwo(_params.dedupCapacity))
        fatal("KvService capacities must be powers of two");
    if (_params.queueCapacity == 0)
        fatal("KvService queue capacity must be nonzero");
    if (_params.dedupRetention == 0)
        fatal("KvService dedup retention must be nonzero");
    queue.reserve(_params.queueCapacity);
    _pool.emplace(store, _params.poolBase, _params.poolSize);
    Tick t = 0;
    openRoot(t);
    if (opLogEnabled())
        openLog(t);
    rebuildDedupLive();
}

std::uint64_t
KvService::rootBytes() const
{
    return sizeof(RootHeader)
        + std::uint64_t(_params.keyCapacity) * sizeof(KvSlot)
        + std::uint64_t(_params.dedupCapacity) * sizeof(DedupEntry);
}

void
KvService::openRoot(Tick &t)
{
    root = _pool->root(t, rootBytes());
    rootAddr = _pool->direct(t, root);

    RootHeader hdr;
    _pool->readObject(root, 0, &hdr, sizeof(hdr));
    if (hdr.magic == rootMagic) {
        if (hdr.keyCapacity != _params.keyCapacity
            || hdr.dedupCapacity != _params.dedupCapacity)
            fatal("KvService reopened with mismatched capacities");
        return;
    }
    hdr = RootHeader{};
    hdr.magic = rootMagic;
    hdr.keyCapacity = _params.keyCapacity;
    hdr.dedupCapacity = _params.dedupCapacity;
    clock(t);
    _pool->writeObject(root, 0, &hdr, sizeof(hdr));
    t = timed.writeSpan(t, rootAddr, sizeof(hdr));
}

void
KvService::openLog(Tick &t)
{
    OpLogParams lp = _params.oplog;
    if (lp.base == 0)
        lp.base = (_params.poolBase + _params.poolSize + 63)
            & ~mem::Addr(63);
    _params.oplog = lp;
    _log.emplace(store, timed, lp);
    if (!_log->attach(t))
        _log->format(t);
}

void
KvService::clock(Tick t)
{
    store.setWriteClock(t);
}

std::uint64_t
KvService::hashOf(std::uint64_t x)
{
    // splitmix64 finalizer.
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

void
KvService::readSlot(std::uint32_t idx, KvSlot &out) const
{
    _pool->readObject(root,
                      keyTableOffset()
                          + std::uint64_t(idx) * sizeof(KvSlot),
                      &out, sizeof(out));
}

KvService::DedupEntry
KvService::dedupAt(std::uint32_t idx) const
{
    DedupEntry entry;
    _pool->readObject(root,
                      dedupOffset()
                          + std::uint64_t(idx) * sizeof(DedupEntry),
                      &entry, sizeof(entry));
    return entry;
}

std::uint32_t
KvService::probeKey(std::uint64_t key, bool &found) const
{
    const std::uint32_t mask = _params.keyCapacity - 1;
    std::uint32_t idx =
        static_cast<std::uint32_t>(hashOf(key)) & mask;
    for (std::uint32_t i = 0; i < _params.keyCapacity; ++i) {
        KvSlot slot;
        readSlot(idx, slot);
        if (slot.key == key) {
            found = true;
            return idx;
        }
        if (slot.key == 0) {
            found = false;
            return idx;
        }
        idx = (idx + 1) & mask;
    }
    fatal("KvService key table full (keyCapacity too small)");
}

std::uint32_t
KvService::probeDedup(std::uint64_t req_id, bool &found) const
{
    const std::uint32_t mask = _params.dedupCapacity - 1;
    std::uint32_t idx =
        static_cast<std::uint32_t>(hashOf(req_id)) & mask;
    for (std::uint32_t i = 0; i < _params.dedupCapacity; ++i) {
        const DedupEntry entry = dedupAt(idx);
        if (entry.id == req_id) {
            found = true;
            return idx;
        }
        if (entry.id == 0) {
            found = false;
            return idx;
        }
        idx = (idx + 1) & mask;
    }
    fatal("KvService dedup set full (dedupCapacity too small)");
}

void
KvService::rebuildDedupLive()
{
    dedupLive = 0;
    for (std::uint32_t i = 0; i < _params.dedupCapacity; ++i)
        if (dedupAt(i).id != 0)
            ++dedupLive;
    compactionHoldoff = 0;
}

bool
KvService::admit(const RpcRequest &req)
{
    if (queue.size() >= _params.queueCapacity) {
        ++_stats.rejected;
        return false;
    }
    queue.push_back(req);
    _stats.maxQueueDepth = std::max(
        _stats.maxQueueDepth, static_cast<std::uint32_t>(queue.size()));
    return true;
}

bool
KvService::queuePop(RpcRequest &out)
{
    if (queue.empty())
        return false;
    out = queue.front();
    queue.erase(queue.begin());
    return true;
}

void
KvService::dropQueue()
{
    _stats.queueDropped += queue.size();
    queue.clear();
}

void
KvService::chargeCheckpoint(Tick &t)
{
    if (_params.checkpointBytesPerOp == 0)
        return;
    const std::uint64_t pages =
        (_params.checkpointBytesPerOp + 4095) / 4096;
    t += pages * _params.checkpointPerPage;
    t = timed.writeSpan(t, _params.checkpointBase,
                        _params.checkpointBytesPerOp);
}

RpcResponse
KvService::execute(Tick &t, const RpcRequest &req, bool *deferred)
{
    ++_stats.executed;
    if (deferred)
        *deferred = false;
    t += _params.parseCost;
    clock(t);

    RpcResponse resp;
    resp.reqId = req.reqId;
    resp.client = req.client;
    resp.attempt = req.attempt;

    if (req.deadline != 0 && t > req.deadline) {
        ++_stats.deadlineExceeded;
        resp.status = RpcStatus::DeadlineExceeded;
        resp.servedAt = t;
        return resp;
    }

    switch (req.op) {
    case workload::KvOp::Get:
        resp = executeGet(t, req, deferred);
        break;
    case workload::KvOp::Put:
        resp = executePut(t, req, deferred);
        break;
    case workload::KvOp::Scan:
        resp = executeScan(t, req);
        break;
    }

    // A-CheckPC: synchronous checkpoint at the handler's function
    // boundary, before the response leaves the server.
    chargeCheckpoint(t);
    resp.servedAt = t;
    return resp;
}

RpcResponse
KvService::executeGet(Tick &t, const RpcRequest &req, bool *deferred)
{
    ++_stats.gets;
    RpcResponse resp;
    resp.reqId = req.reqId;
    resp.client = req.client;
    resp.attempt = req.attempt;

    if (_log) {
        // Read-your-writes through the undrained log: the newest
        // record for the key wins over the (stale) pool slot. An ack
        // that exposed an uncommitted value must wait for the commit
        // that makes it durable, or a crash could un-happen a read.
        const auto it = newestByKey.find(req.key);
        if (it != newestByKey.end()) {
            const PendingPut &p = it->second;
            t = timed.readSpan(t, _log->slotAddr((p.seq - 1)
                                                 * OpLog::recordBytes),
                               OpLog::recordBytes);
            if (deferred && !_log->committedThrough(p.seq))
                *deferred = true;
            resp.status = RpcStatus::Ok;
            resp.version = p.version;
            resp.valueSeed = p.valueSeed;
            return resp;
        }
    }

    (void)_pool->direct(t, root);  // swizzle cost per object access
    bool found = false;
    const std::uint32_t idx = probeKey(req.key, found);
    t = timed.readSpan(t,
                       rootAddr + keyTableOffset()
                           + std::uint64_t(idx) * sizeof(KvSlot),
                       sizeof(KvSlot));
    if (!found) {
        resp.status = RpcStatus::NotFound;
        return resp;
    }
    KvSlot slot;
    readSlot(idx, slot);
    resp.status = RpcStatus::Ok;
    resp.version = slot.version;
    resp.valueSeed = slot.valueSeed;
    return resp;
}

void
KvService::applyPut(Tick &t, std::uint64_t req_id, std::uint64_t key,
                    std::uint64_t value_seed, std::uint64_t version,
                    KvSlot &slot_out)
{
    bool key_found = false;
    const std::uint32_t slot_idx = probeKey(key, key_found);
    const std::uint64_t slot_off =
        keyTableOffset() + std::uint64_t(slot_idx) * sizeof(KvSlot);
    KvSlot slot;
    readSlot(slot_idx, slot);

    bool applied = false;
    const std::uint32_t dedup_idx = probeDedup(req_id, applied);
    if (applied)
        fatal("applyPut on an already-applied request ID");
    const std::uint64_t dedup_off =
        dedupOffset() + std::uint64_t(dedup_idx) * sizeof(DedupEntry);
    const std::uint64_t count_off = offsetof(RootHeader, appliedCount);

    RootHeader hdr;
    _pool->readObject(root, 0, &hdr, sizeof(hdr));

    // The transaction: key slot + dedup entry + applied counter move
    // together or not at all. The write clock advances with t at
    // every stage, so an armed power cut drops a suffix of these
    // writes and recovery rolls the survivors back.
    clock(t);
    _pool->txBegin(t);
    clock(t);
    _pool->txAddRange(t, root, slot_off, sizeof(KvSlot));
    clock(t);
    _pool->txAddRange(t, root, dedup_off, sizeof(DedupEntry));
    clock(t);
    _pool->txAddRange(t, root, count_off, sizeof(std::uint64_t));

    slot.key = key;
    slot.version = version;
    slot.lastReqId = req_id;
    slot.valueSeed = value_seed;
    clock(t);
    _pool->writeObject(root, slot_off, &slot, sizeof(slot));
    t = timed.writeSpan(t, rootAddr + slot_off, sizeof(slot));

    const DedupEntry entry{req_id, t};
    clock(t);
    _pool->writeObject(root, dedup_off, &entry, sizeof(entry));
    t = timed.writeSpan(t, rootAddr + dedup_off, sizeof(entry));

    hdr.appliedCount += 1;
    clock(t);
    _pool->writeObject(root, count_off, &hdr.appliedCount,
                       sizeof(hdr.appliedCount));
    t = timed.writeSpan(t, rootAddr + count_off,
                        sizeof(hdr.appliedCount));

    clock(t);
    _pool->txCommit(t);
    t = timed.fence(t);

    ++_stats.putsApplied;
    ++dedupLive;
    slot_out = slot;
    maybeCompactDedup(t);
}

RpcResponse
KvService::executePut(Tick &t, const RpcRequest &req, bool *deferred)
{
    if (opLogEnabled())
        return executePutOpLog(t, req, deferred);

    ++_stats.puts;
    RpcResponse resp;
    resp.reqId = req.reqId;
    resp.client = req.client;
    resp.attempt = req.attempt;

    // Idempotence: a retry of an applied PUT is acknowledged from
    // the dedup set without touching the key table.
    bool applied = false;
    const std::uint32_t dedup_idx = probeDedup(req.reqId, applied);
    t = timed.readSpan(t,
                       rootAddr + dedupOffset()
                           + std::uint64_t(dedup_idx)
                                 * sizeof(DedupEntry),
                       sizeof(DedupEntry));
    bool key_found = false;
    const std::uint32_t slot_idx = probeKey(req.key, key_found);
    const std::uint64_t slot_off =
        keyTableOffset() + std::uint64_t(slot_idx) * sizeof(KvSlot);
    t = timed.readSpan(t, rootAddr + slot_off, sizeof(KvSlot));

    KvSlot slot;
    readSlot(slot_idx, slot);

    if (applied) {
        ++_stats.idempotentHits;
        resp.status = RpcStatus::Ok;
        resp.version = slot.version;
        resp.valueSeed = slot.valueSeed;
        return resp;
    }

    applyPut(t, req.reqId, req.key, req.valueSeed, slot.version + 1,
             slot);
    resp.status = RpcStatus::Ok;
    resp.version = slot.version;
    resp.valueSeed = slot.valueSeed;
    return resp;
}

RpcResponse
KvService::executePutOpLog(Tick &t, const RpcRequest &req,
                           bool *deferred)
{
    ++_stats.puts;
    RpcResponse resp;
    resp.reqId = req.reqId;
    resp.client = req.client;
    resp.attempt = req.attempt;

    // Retry of a record still sitting in the log: acknowledge from
    // the pending index; the ack is deferred iff the record's group
    // commit has not happened yet.
    const auto pit = pendingByReq.find(req.reqId);
    if (pit != pendingByReq.end()) {
        ++_stats.idempotentHits;
        t = timed.readSpan(t,
                           _log->slotAddr((pit->second.seq - 1)
                                          * OpLog::recordBytes),
                           OpLog::recordBytes);
        if (deferred && !_log->committedThrough(pit->second.seq))
            *deferred = true;
        resp.status = RpcStatus::Ok;
        resp.version = pit->second.version;
        resp.valueSeed = pit->second.valueSeed;
        return resp;
    }

    // Retry of a record already drained into the pool.
    bool applied = false;
    const std::uint32_t dedup_idx = probeDedup(req.reqId, applied);
    t = timed.readSpan(t,
                       rootAddr + dedupOffset()
                           + std::uint64_t(dedup_idx)
                                 * sizeof(DedupEntry),
                       sizeof(DedupEntry));
    if (applied) {
        ++_stats.idempotentHits;
        bool key_found = false;
        const std::uint32_t slot_idx = probeKey(req.key, key_found);
        t = timed.readSpan(t,
                           rootAddr + keyTableOffset()
                               + std::uint64_t(slot_idx)
                                     * sizeof(KvSlot),
                           sizeof(KvSlot));
        KvSlot slot;
        readSlot(slot_idx, slot);
        resp.status = RpcStatus::Ok;
        resp.version = slot.version;
        resp.valueSeed = slot.valueSeed;
        return resp;
    }

    // The version is fixed at append time so replay can install it
    // absolutely; it chains through undrained records for the key.
    std::uint64_t version = 0;
    const auto kit = newestByKey.find(req.key);
    if (kit != newestByKey.end()) {
        version = kit->second.version + 1;
    } else {
        bool key_found = false;
        const std::uint32_t slot_idx = probeKey(req.key, key_found);
        t = timed.readSpan(t,
                           rootAddr + keyTableOffset()
                               + std::uint64_t(slot_idx)
                                     * sizeof(KvSlot),
                           sizeof(KvSlot));
        KvSlot slot;
        readSlot(slot_idx, slot);
        version = slot.version + 1;
    }

    if (_log->wouldBlock()) {
        // Ring full against the *persisted* head: take the slow path
        // once — commit, drain the whole backlog, persist the head —
        // then append. This is the stall the group-commit cadence is
        // tuned to avoid.
        ++_stats.logStallDrains;
        logCommit(t);
        while (logDrain(t, 64) != 0) {
        }
    }

    OpRecord rec;
    rec.reqId = req.reqId;
    rec.key = req.key;
    rec.valueSeed = req.valueSeed;
    rec.version = version;
    rec.client = req.client;
    rec.appendedAt = t;
    const std::uint64_t seq = _log->append(t, rec);
    ++_stats.logAppends;

    const PendingPut pending{req.key, version, req.valueSeed, seq};
    pendingByReq.emplace(req.reqId, pending);
    newestByKey[req.key] = pending;

    if (deferred)
        *deferred = true;
    resp.status = RpcStatus::Ok;
    resp.version = version;
    resp.valueSeed = req.valueSeed;
    return resp;
}

RpcResponse
KvService::executeScan(Tick &t, const RpcRequest &req)
{
    ++_stats.scans;
    RpcResponse resp;
    resp.reqId = req.reqId;
    resp.client = req.client;
    resp.attempt = req.attempt;

    const std::uint32_t mask = _params.keyCapacity - 1;
    const std::uint32_t len = std::min(
        req.scanLength == 0 ? 1u : req.scanLength,
        _params.keyCapacity);
    std::uint32_t idx =
        static_cast<std::uint32_t>(hashOf(req.key)) & mask;
    std::uint64_t digest = 0;
    for (std::uint32_t i = 0; i < len; ++i) {
        KvSlot slot;
        readSlot(idx, slot);
        digest ^= hashOf(slot.key ^ (slot.version << 32));
        t += _params.scanPerSlot;
        idx = (idx + 1) & mask;
    }
    t = timed.readSpan(t, rootAddr + keyTableOffset(),
                       std::uint64_t(len) * sizeof(KvSlot));
    resp.status = RpcStatus::Ok;
    resp.valueSeed = digest;
    return resp;
}

// --- op-log control ---------------------------------------------------

std::uint64_t
KvService::logUncommittedRecords() const
{
    return _log ? _log->uncommittedRecords() : 0;
}

std::uint64_t
KvService::logBacklogRecords() const
{
    return _log ? _log->backlogRecords() : 0;
}

void
KvService::logCommit(Tick &t)
{
    if (!_log || _log->uncommittedRecords() == 0)
        return;
    _log->commit(t);
    ++_stats.logCommits;
}

std::uint64_t
KvService::logDrain(Tick &t, std::uint64_t max_records)
{
    if (!_log)
        return 0;
    std::uint64_t processed = 0;
    while (processed < max_records && _log->backlogRecords() > 0) {
        const OpRecord rec = _log->readHead(t);
        bool applied = false;
        const std::uint32_t dedup_idx = probeDedup(rec.reqId, applied);
        t = timed.readSpan(t,
                           rootAddr + dedupOffset()
                               + std::uint64_t(dedup_idx)
                                     * sizeof(DedupEntry),
                           sizeof(DedupEntry));
        if (!applied) {
            KvSlot slot;
            applyPut(t, rec.reqId, rec.key, rec.valueSeed, rec.version,
                     slot);
            ++_stats.logDrainApplied;
        }
        _log->pop();
        forgetPending(rec);
        ++processed;
    }
    if (processed != 0)
        _log->persistHead(t);
    return processed;
}

void
KvService::logDrainAll(Tick &t)
{
    if (!_log)
        return;
    logCommit(t);
    while (logDrain(t, 64) != 0) {
    }
}

void
KvService::forgetPending(const OpRecord &rec)
{
    const auto it = pendingByReq.find(rec.reqId);
    if (it == pendingByReq.end() || it->second.seq != rec.seq)
        return;
    const auto kit = newestByKey.find(rec.key);
    if (kit != newestByKey.end() && kit->second.seq == rec.seq)
        newestByKey.erase(kit);
    pendingByReq.erase(it);
}

void
KvService::maybeCompactDedup(Tick &t)
{
    const std::uint64_t threshold =
        std::uint64_t(_params.dedupCapacity) * 3 / 4;
    if (dedupLive < threshold || dedupLive < compactionHoldoff)
        return;

    RootHeader hdr;
    _pool->readObject(root, 0, &hdr, sizeof(hdr));
    const Tick floor = std::max<Tick>(
        hdr.dedupFloor,
        t > _params.dedupRetention ? t - _params.dedupRetention : 0);

    std::vector<DedupEntry> survivors;
    survivors.reserve(dedupLive);
    std::uint64_t evicted = 0;
    for (std::uint32_t i = 0; i < _params.dedupCapacity; ++i) {
        const DedupEntry entry = dedupAt(i);
        if (entry.id == 0)
            continue;
        if (entry.appliedAt >= floor)
            survivors.push_back(entry);
        else
            ++evicted;
    }
    if (evicted == 0) {
        // Everything is still inside the retry horizon. Hold off
        // until the table has grown materially so a hot service does
        // not rescan the region on every PUT.
        compactionHoldoff = dedupLive + _params.dedupCapacity / 16;
        return;
    }
    compactionHoldoff = 0;

    // One undo-logged transaction over the dedup region + header:
    // a crash mid-compaction rolls the whole region back, so no ID
    // is ever half-forgotten.
    const std::uint64_t region =
        std::uint64_t(_params.dedupCapacity) * sizeof(DedupEntry);
    clock(t);
    _pool->txBegin(t);
    clock(t);
    _pool->txAddRange(t, root, dedupOffset(), region);
    clock(t);
    _pool->txAddRange(t, root, 0, sizeof(RootHeader));

    std::vector<unsigned char> zeros(4096, 0);
    for (std::uint64_t off = 0; off < region; off += zeros.size()) {
        const std::uint64_t n =
            std::min<std::uint64_t>(zeros.size(), region - off);
        clock(t);
        _pool->writeObject(root, dedupOffset() + off, zeros.data(), n);
    }
    t = timed.writeSpan(t, rootAddr + dedupOffset(), region);

    for (const DedupEntry &entry : survivors) {
        bool found = false;
        const std::uint32_t idx = probeDedup(entry.id, found);
        clock(t);
        _pool->writeObject(root,
                           dedupOffset()
                               + std::uint64_t(idx)
                                     * sizeof(DedupEntry),
                           &entry, sizeof(entry));
    }
    t = timed.writeSpan(t, rootAddr + dedupOffset(),
                        survivors.size() * sizeof(DedupEntry));

    hdr.compactedCount += evicted;
    hdr.dedupFloor = floor;
    clock(t);
    _pool->writeObject(root, 0, &hdr, sizeof(hdr));
    t = timed.writeSpan(t, rootAddr, sizeof(hdr));

    clock(t);
    _pool->txCommit(t);
    t = timed.fence(t);

    dedupLive -= evicted;
    ++_stats.dedupCompactions;
    _stats.dedupEvicted += evicted;
}

void
KvService::recover(Tick &t)
{
    ++_stats.recoveries;
    // Reopen over the same region: the constructor rolls back any
    // transaction whose commit truncation did not beat the rails.
    _pool.emplace(store, _params.poolBase, _params.poolSize);
    if (!_pool->openedExisting())
        fatal("KvService recovery found no pool header");
    // Runtime re-attach: root lookup and swizzle, plus a fixed
    // reopen cost (header checks, allocator map rebuild).
    t += 200 * tickUs;
    openRoot(t);
    rebuildDedupLive();

    if (!opLogEnabled())
        return;

    // Op-log replay: scan from the durable head, stop at the torn
    // tail, apply the valid run idempotently through the dedup set.
    pendingByReq.clear();
    newestByKey.clear();
    if (!_log->attach(t))
        fatal("KvService recovery found no op-log header");
    const OpLogRecovery scan = _log->recover(t);
    if (!scan.tailCovered)
        fatal("op-log recovery: committed tail not covered by valid "
              "records (persist ordering broken)");
    for (const OpRecord &rec : scan.records) {
        bool applied = false;
        probeDedup(rec.reqId, applied);
        if (applied) {
            ++_stats.logReplaySkipped;
            continue;
        }
        KvSlot slot;
        applyPut(t, rec.reqId, rec.key, rec.valueSeed, rec.version,
                 slot);
        ++_stats.logReplayApplied;
    }
    _log->resetAfterReplay(t);
}

std::optional<KvKeyState>
KvService::lookup(std::uint64_t key) const
{
    bool found = false;
    const std::uint32_t idx = probeKey(key, found);
    if (!found)
        return std::nullopt;
    KvSlot slot;
    readSlot(idx, slot);
    return KvKeyState{slot.key, slot.version, slot.lastReqId,
                      slot.valueSeed};
}

std::vector<std::uint64_t>
KvService::appliedIds() const
{
    std::vector<std::uint64_t> out;
    for (std::uint32_t i = 0; i < _params.dedupCapacity; ++i) {
        const DedupEntry entry = dedupAt(i);
        if (entry.id != 0)
            out.push_back(entry.id);
    }
    return out;
}

std::uint64_t
KvService::appliedCount() const
{
    RootHeader hdr;
    _pool->readObject(root, 0, &hdr, sizeof(hdr));
    return hdr.appliedCount;
}

std::uint64_t
KvService::compactedCount() const
{
    RootHeader hdr;
    _pool->readObject(root, 0, &hdr, sizeof(hdr));
    return hdr.compactedCount;
}

Tick
KvService::dedupFloor() const
{
    RootHeader hdr;
    _pool->readObject(root, 0, &hdr, sizeof(hdr));
    return hdr.dedupFloor;
}

// --- cluster replication hooks ---------------------------------------

ClusterMeta
KvService::clusterMeta() const
{
    RootHeader hdr;
    _pool->readObject(root, 0, &hdr, sizeof(hdr));
    return ClusterMeta{hdr.replSeq, hdr.replEpoch, hdr.replVote,
                       hdr.replCommit, hdr.replCommitEpoch};
}

void
KvService::persistClusterMeta(Tick &t, const ClusterMeta &meta)
{
    const std::uint64_t off = offsetof(RootHeader, replSeq);
    const std::uint64_t bytes = 5 * sizeof(std::uint64_t);
    const std::uint64_t words[5] = {meta.seq, meta.epoch,
                                    meta.voteWord, meta.commit,
                                    meta.commitEpoch};
    clock(t);
    _pool->txBegin(t);
    clock(t);
    _pool->txAddRange(t, root, off, bytes);
    clock(t);
    _pool->writeObject(root, off, words, bytes);
    t = timed.writeSpan(t, rootAddr + off, bytes);
    clock(t);
    _pool->txCommit(t);
    t = timed.fence(t);
}

bool
KvService::applyReplicated(Tick &t, std::uint64_t req_id,
                           std::uint64_t key, std::uint64_t value_seed,
                           std::uint64_t version)
{
    bool applied = false;
    const std::uint32_t dedup_idx = probeDedup(req_id, applied);
    t = timed.readSpan(t,
                       rootAddr + dedupOffset()
                           + std::uint64_t(dedup_idx)
                                 * sizeof(DedupEntry),
                       sizeof(DedupEntry));
    if (applied)
        return false;

    bool key_found = false;
    const std::uint32_t slot_idx = probeKey(key, key_found);
    t = timed.readSpan(t,
                       rootAddr + keyTableOffset()
                           + std::uint64_t(slot_idx) * sizeof(KvSlot),
                       sizeof(KvSlot));
    KvSlot slot;
    readSlot(slot_idx, slot);
    if (key_found && slot.version >= version)
        return false;  // stale (snapshot replayed over newer state)

    applyPut(t, req_id, key, value_seed, version, slot);
    return true;
}

bool
KvService::appendReplicated(Tick &t, std::uint64_t req_id,
                            std::uint64_t key, std::uint64_t value_seed,
                            std::uint64_t version, std::uint32_t client)
{
    if (!_log)
        fatal("appendReplicated needs the op-log write path");
    if (pendingByReq.find(req_id) != pendingByReq.end())
        return false;
    bool applied = false;
    const std::uint32_t dedup_idx = probeDedup(req_id, applied);
    t = timed.readSpan(t,
                       rootAddr + dedupOffset()
                           + std::uint64_t(dedup_idx)
                                 * sizeof(DedupEntry),
                       sizeof(DedupEntry));
    if (applied)
        return false;

    if (_log->wouldBlock()) {
        // Same slow path as a local op-log PUT against a full ring.
        ++_stats.logStallDrains;
        logCommit(t);
        while (logDrain(t, 64) != 0) {
        }
    }

    OpRecord rec;
    rec.reqId = req_id;
    rec.key = key;
    rec.valueSeed = value_seed;
    rec.version = version;
    rec.client = client;
    rec.appendedAt = t;
    const std::uint64_t seq = _log->append(t, rec);
    ++_stats.logAppends;

    const PendingPut pending{key, version, value_seed, seq};
    pendingByReq.emplace(req_id, pending);
    newestByKey[key] = pending;
    return true;
}

std::vector<KvKeyState>
KvService::snapshotRecords() const
{
    std::vector<KvKeyState> out;
    for (std::uint32_t i = 0; i < _params.keyCapacity; ++i) {
        KvSlot slot;
        readSlot(i, slot);
        if (slot.key != 0)
            out.push_back(KvKeyState{slot.key, slot.version,
                                     slot.lastReqId, slot.valueSeed});
    }
    return out;
}

bool
KvService::isApplied(std::uint64_t req_id) const
{
    bool applied = false;
    probeDedup(req_id, applied);
    return applied;
}

} // namespace lightpc::net
