#include "net/kv_service.hh"

#include <algorithm>
#include <cstddef>

#include "sim/logging.hh"

namespace lightpc::net
{

namespace
{

bool
isPowerOfTwo(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

} // namespace

KvService::KvService(mem::BackingStore &store_in, mem::TimedMem &timed_in,
                     const KvParams &params)
    : store(store_in), timed(timed_in), _params(params)
{
    if (!isPowerOfTwo(_params.keyCapacity)
        || !isPowerOfTwo(_params.dedupCapacity))
        fatal("KvService capacities must be powers of two");
    if (_params.queueCapacity == 0)
        fatal("KvService queue capacity must be nonzero");
    queue.reserve(_params.queueCapacity);
    _pool.emplace(store, _params.poolBase, _params.poolSize);
    Tick t = 0;
    openRoot(t);
}

std::uint64_t
KvService::rootBytes() const
{
    return sizeof(RootHeader)
        + std::uint64_t(_params.keyCapacity) * sizeof(KvSlot)
        + std::uint64_t(_params.dedupCapacity) * sizeof(std::uint64_t);
}

void
KvService::openRoot(Tick &t)
{
    root = _pool->root(t, rootBytes());
    rootAddr = _pool->direct(t, root);

    RootHeader hdr;
    _pool->readObject(root, 0, &hdr, sizeof(hdr));
    if (hdr.magic == rootMagic) {
        if (hdr.keyCapacity != _params.keyCapacity
            || hdr.dedupCapacity != _params.dedupCapacity)
            fatal("KvService reopened with mismatched capacities");
        return;
    }
    hdr = RootHeader{};
    hdr.magic = rootMagic;
    hdr.keyCapacity = _params.keyCapacity;
    hdr.dedupCapacity = _params.dedupCapacity;
    clock(t);
    _pool->writeObject(root, 0, &hdr, sizeof(hdr));
    t = timed.writeSpan(t, rootAddr, sizeof(hdr));
}

void
KvService::clock(Tick t)
{
    store.setWriteClock(t);
}

std::uint64_t
KvService::hashOf(std::uint64_t x)
{
    // splitmix64 finalizer.
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

void
KvService::readSlot(std::uint32_t idx, KvSlot &out) const
{
    _pool->readObject(root,
                      keyTableOffset()
                          + std::uint64_t(idx) * sizeof(KvSlot),
                      &out, sizeof(out));
}

std::uint64_t
KvService::dedupAt(std::uint32_t idx) const
{
    std::uint64_t id = 0;
    _pool->readObject(root,
                      dedupOffset()
                          + std::uint64_t(idx) * sizeof(std::uint64_t),
                      &id, sizeof(id));
    return id;
}

std::uint32_t
KvService::probeKey(std::uint64_t key, bool &found) const
{
    const std::uint32_t mask = _params.keyCapacity - 1;
    std::uint32_t idx =
        static_cast<std::uint32_t>(hashOf(key)) & mask;
    for (std::uint32_t i = 0; i < _params.keyCapacity; ++i) {
        KvSlot slot;
        readSlot(idx, slot);
        if (slot.key == key) {
            found = true;
            return idx;
        }
        if (slot.key == 0) {
            found = false;
            return idx;
        }
        idx = (idx + 1) & mask;
    }
    fatal("KvService key table full (keyCapacity too small)");
}

std::uint32_t
KvService::probeDedup(std::uint64_t req_id, bool &found) const
{
    const std::uint32_t mask = _params.dedupCapacity - 1;
    std::uint32_t idx =
        static_cast<std::uint32_t>(hashOf(req_id)) & mask;
    for (std::uint32_t i = 0; i < _params.dedupCapacity; ++i) {
        const std::uint64_t id = dedupAt(idx);
        if (id == req_id) {
            found = true;
            return idx;
        }
        if (id == 0) {
            found = false;
            return idx;
        }
        idx = (idx + 1) & mask;
    }
    fatal("KvService dedup set full (dedupCapacity too small)");
}

bool
KvService::admit(const RpcRequest &req)
{
    if (queue.size() >= _params.queueCapacity) {
        ++_stats.rejected;
        return false;
    }
    queue.push_back(req);
    _stats.maxQueueDepth = std::max(
        _stats.maxQueueDepth, static_cast<std::uint32_t>(queue.size()));
    return true;
}

bool
KvService::queuePop(RpcRequest &out)
{
    if (queue.empty())
        return false;
    out = queue.front();
    queue.erase(queue.begin());
    return true;
}

void
KvService::dropQueue()
{
    _stats.queueDropped += queue.size();
    queue.clear();
}

void
KvService::chargeCheckpoint(Tick &t)
{
    if (_params.checkpointBytesPerOp == 0)
        return;
    const std::uint64_t pages =
        (_params.checkpointBytesPerOp + 4095) / 4096;
    t += pages * _params.checkpointPerPage;
    t = timed.writeSpan(t, _params.checkpointBase,
                        _params.checkpointBytesPerOp);
}

RpcResponse
KvService::execute(Tick &t, const RpcRequest &req)
{
    ++_stats.executed;
    t += _params.parseCost;
    clock(t);

    RpcResponse resp;
    resp.reqId = req.reqId;
    resp.client = req.client;

    if (req.deadline != 0 && t > req.deadline) {
        ++_stats.deadlineExceeded;
        resp.status = RpcStatus::DeadlineExceeded;
        resp.servedAt = t;
        return resp;
    }

    switch (req.op) {
    case workload::KvOp::Get: resp = executeGet(t, req); break;
    case workload::KvOp::Put: resp = executePut(t, req); break;
    case workload::KvOp::Scan: resp = executeScan(t, req); break;
    }

    // A-CheckPC: synchronous checkpoint at the handler's function
    // boundary, before the response leaves the server.
    chargeCheckpoint(t);
    resp.servedAt = t;
    return resp;
}

RpcResponse
KvService::executeGet(Tick &t, const RpcRequest &req)
{
    ++_stats.gets;
    RpcResponse resp;
    resp.reqId = req.reqId;
    resp.client = req.client;

    (void)_pool->direct(t, root);  // swizzle cost per object access
    bool found = false;
    const std::uint32_t idx = probeKey(req.key, found);
    t = timed.readSpan(t,
                       rootAddr + keyTableOffset()
                           + std::uint64_t(idx) * sizeof(KvSlot),
                       sizeof(KvSlot));
    if (!found) {
        resp.status = RpcStatus::NotFound;
        return resp;
    }
    KvSlot slot;
    readSlot(idx, slot);
    resp.status = RpcStatus::Ok;
    resp.version = slot.version;
    resp.valueSeed = slot.valueSeed;
    return resp;
}

RpcResponse
KvService::executePut(Tick &t, const RpcRequest &req)
{
    ++_stats.puts;
    RpcResponse resp;
    resp.reqId = req.reqId;
    resp.client = req.client;

    // Idempotence: a retry of an applied PUT is acknowledged from
    // the dedup set without touching the key table.
    bool applied = false;
    const std::uint32_t dedup_idx = probeDedup(req.reqId, applied);
    t = timed.readSpan(t,
                       rootAddr + dedupOffset()
                           + std::uint64_t(dedup_idx)
                                 * sizeof(std::uint64_t),
                       sizeof(std::uint64_t));
    bool key_found = false;
    const std::uint32_t slot_idx = probeKey(req.key, key_found);
    const std::uint64_t slot_off =
        keyTableOffset() + std::uint64_t(slot_idx) * sizeof(KvSlot);
    t = timed.readSpan(t, rootAddr + slot_off, sizeof(KvSlot));

    if (applied) {
        ++_stats.idempotentHits;
        KvSlot slot;
        readSlot(slot_idx, slot);
        resp.status = RpcStatus::Ok;
        resp.version = slot.version;
        resp.valueSeed = slot.valueSeed;
        return resp;
    }

    KvSlot slot;
    readSlot(slot_idx, slot);

    RootHeader hdr;
    _pool->readObject(root, 0, &hdr, sizeof(hdr));

    // The transaction: key slot + dedup entry + applied counter move
    // together or not at all. The write clock advances with t at
    // every stage, so an armed power cut drops a suffix of these
    // writes and recovery rolls the survivors back.
    const std::uint64_t dedup_off =
        dedupOffset() + std::uint64_t(dedup_idx) * sizeof(std::uint64_t);
    const std::uint64_t count_off = offsetof(RootHeader, appliedCount);

    clock(t);
    _pool->txBegin(t);
    clock(t);
    _pool->txAddRange(t, root, slot_off, sizeof(KvSlot));
    clock(t);
    _pool->txAddRange(t, root, dedup_off, sizeof(std::uint64_t));
    clock(t);
    _pool->txAddRange(t, root, count_off, sizeof(std::uint64_t));

    slot.key = req.key;
    slot.version += 1;
    slot.lastReqId = req.reqId;
    slot.valueSeed = req.valueSeed;
    clock(t);
    _pool->writeObject(root, slot_off, &slot, sizeof(slot));
    t = timed.writeSpan(t, rootAddr + slot_off, sizeof(slot));

    clock(t);
    _pool->writeObject(root, dedup_off, &req.reqId,
                       sizeof(req.reqId));
    t = timed.writeSpan(t, rootAddr + dedup_off, sizeof(req.reqId));

    hdr.appliedCount += 1;
    clock(t);
    _pool->writeObject(root, count_off, &hdr.appliedCount,
                       sizeof(hdr.appliedCount));
    t = timed.writeSpan(t, rootAddr + count_off,
                        sizeof(hdr.appliedCount));

    clock(t);
    _pool->txCommit(t);
    t = timed.fence(t);

    ++_stats.putsApplied;
    resp.status = RpcStatus::Ok;
    resp.version = slot.version;
    resp.valueSeed = slot.valueSeed;
    return resp;
}

RpcResponse
KvService::executeScan(Tick &t, const RpcRequest &req)
{
    ++_stats.scans;
    RpcResponse resp;
    resp.reqId = req.reqId;
    resp.client = req.client;

    const std::uint32_t mask = _params.keyCapacity - 1;
    const std::uint32_t len = std::min(
        req.scanLength == 0 ? 1u : req.scanLength,
        _params.keyCapacity);
    std::uint32_t idx =
        static_cast<std::uint32_t>(hashOf(req.key)) & mask;
    std::uint64_t digest = 0;
    for (std::uint32_t i = 0; i < len; ++i) {
        KvSlot slot;
        readSlot(idx, slot);
        digest ^= hashOf(slot.key ^ (slot.version << 32));
        t += _params.scanPerSlot;
        idx = (idx + 1) & mask;
    }
    t = timed.readSpan(t, rootAddr + keyTableOffset(),
                       std::uint64_t(len) * sizeof(KvSlot));
    resp.status = RpcStatus::Ok;
    resp.valueSeed = digest;
    return resp;
}

void
KvService::recover(Tick &t)
{
    ++_stats.recoveries;
    // Reopen over the same region: the constructor rolls back any
    // transaction whose commit truncation did not beat the rails.
    _pool.emplace(store, _params.poolBase, _params.poolSize);
    if (!_pool->openedExisting())
        fatal("KvService recovery found no pool header");
    // Runtime re-attach: root lookup and swizzle, plus a fixed
    // reopen cost (header checks, allocator map rebuild).
    t += 200 * tickUs;
    openRoot(t);
}

std::optional<KvKeyState>
KvService::lookup(std::uint64_t key) const
{
    bool found = false;
    const std::uint32_t idx = probeKey(key, found);
    if (!found)
        return std::nullopt;
    KvSlot slot;
    readSlot(idx, slot);
    return KvKeyState{slot.key, slot.version, slot.lastReqId,
                      slot.valueSeed};
}

std::vector<std::uint64_t>
KvService::appliedIds() const
{
    std::vector<std::uint64_t> out;
    for (std::uint32_t i = 0; i < _params.dedupCapacity; ++i) {
        const std::uint64_t id = dedupAt(i);
        if (id != 0)
            out.push_back(id);
    }
    return out;
}

std::uint64_t
KvService::appliedCount() const
{
    RootHeader hdr;
    _pool->readObject(root, 0, &hdr, sizeof(hdr));
    return hdr.appliedCount;
}

} // namespace lightpc::net
