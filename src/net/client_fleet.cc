#include "net/client_fleet.hh"

#include <cmath>

#include "sim/logging.hh"

namespace lightpc::net
{

ClientFleet::ClientFleet(const FleetParams &params)
    : _params(params), rng(params.seed)
{
    if (_params.clients == 0)
        fatal("ClientFleet needs at least one client");
    if (_params.arrivalsPerSec <= 0.0)
        fatal("ClientFleet arrival rate must be positive");
    if (_params.maxAttempts == 0)
        fatal("ClientFleet needs at least one attempt per request");
    clientJitter.reserve(_params.clients);
    for (std::uint32_t c = 0; c < _params.clients; ++c)
        clientJitter.emplace_back(Rng::streamSeed(_params.seed, c));
}

Tick
ClientFleet::nextInterarrival()
{
    // Exponential inter-arrival: -ln(U) / lambda, clamped away from
    // zero so two arrivals never share a tick.
    double u = rng.uniform();
    if (u <= 0.0)
        u = 0x1.0p-53;
    const double seconds = -std::log(u) / _params.arrivalsPerSec;
    const auto ticks =
        static_cast<Tick>(seconds * static_cast<double>(tickSec));
    return ticks > 0 ? ticks : 1;
}

RpcRequest
ClientFleet::newRequest(Tick now)
{
    RpcRequest req;
    req.reqId = nextReqId++;
    req.client = static_cast<std::uint32_t>(rng.below(_params.clients));
    req.op = _params.mix.pickOp(rng);
    req.key = _params.mix.pickKey(rng);
    req.valueSeed = rng.next();
    req.scanLength = _params.mix.scanLength;
    req.attempt = 1;
    req.firstIssuedAt = now;

    Pending pending;
    pending.base = req;
    pending.attempts = 1;
    pending.op = req.op;
    outstanding.emplace(req.reqId, pending);
    if (req.op == workload::KvOp::Put)
        putKeys.emplace(req.reqId, req.key);

    ++_stats.arrivals;
    ++_stats.attempts;
    return req;
}

Tick
ClientFleet::timeoutFor(std::uint32_t client, std::uint32_t attempt)
{
    // Exponential backoff: timeout * 2^(attempt-1), capped, plus
    // jitter so a fleet stalled by the same outage does not retry in
    // lockstep. The jitter comes from the client's own stream, not
    // the shared fleet Rng: replica failover reorders which responses
    // (and therefore which timeouts) happen first, and a shared draw
    // order would let one client's redirect perturb every other
    // client's backoff schedule.
    Tick wait = _params.clientTimeout;
    for (std::uint32_t i = 1; i < attempt && wait < _params.backoffCap;
         ++i)
        wait *= 2;
    if (wait > _params.backoffCap)
        wait = _params.backoffCap;
    if (_params.retryJitter > 0)
        wait += clientJitter[client % _params.clients].below(
            _params.retryJitter);
    return wait;
}

std::optional<RpcRequest>
ClientFleet::retryAttempt(std::uint64_t req_id, Tick now,
                          std::uint32_t expected_attempt)
{
    auto it = outstanding.find(req_id);
    if (it == outstanding.end())
        return std::nullopt;  // already acknowledged
    Pending &pending = it->second;
    if (expected_attempt != 0 && pending.attempts != expected_attempt)
        return std::nullopt;  // a newer attempt is already in flight
    if (pending.attempts >= _params.maxAttempts) {
        ++_stats.failed;
        outstanding.erase(it);
        return std::nullopt;
    }
    ++pending.attempts;
    ++_stats.attempts;
    ++_stats.retries;
    RpcRequest req = pending.base;
    req.attempt = pending.attempts;
    (void)now;
    return req;
}

ClientFleet::AckOutcome
ClientFleet::onResponse(const RpcResponse &resp, Tick now)
{
    auto it = outstanding.find(resp.reqId);
    if (it == outstanding.end()) {
        ++_stats.duplicateAcks;
        return AckOutcome::Duplicate;
    }
    if (resp.status == RpcStatus::Rejected
        || resp.status == RpcStatus::DeadlineExceeded
        || resp.status == RpcStatus::NotLeader
        || resp.status == RpcStatus::ReadOnly) {
        // Server is alive but pushed back (or is the wrong replica);
        // leave the request pending so the caller retries it — the
        // armed timeout with backoff, or a fast redirect for the
        // cluster statuses.
        ++_stats.retriableErrors;
        if (resp.status == RpcStatus::NotLeader
            || resp.status == RpcStatus::ReadOnly)
            ++_stats.redirects;
        return AckOutcome::RetriableError;
    }

    if (it->second.op == workload::KvOp::Put
        && resp.status == RpcStatus::Ok) {
        AckedPut put;
        put.reqId = resp.reqId;
        put.key = it->second.base.key;
        put.version = resp.version;
        put.ackedAt = now;
        acked.push_back(put);
        ++_stats.ackedPuts;
    }
    ++_stats.completed;
    outstanding.erase(it);
    return AckOutcome::Completed;
}

Tick
ClientFleet::firstIssuedAt(std::uint64_t req_id) const
{
    auto it = outstanding.find(req_id);
    return it == outstanding.end() ? 0 : it->second.base.firstIssuedAt;
}

std::uint64_t
ClientFleet::putKeyOf(std::uint64_t req_id) const
{
    auto it = putKeys.find(req_id);
    return it == putKeys.end() ? 0 : it->second;
}

} // namespace lightpc::net
