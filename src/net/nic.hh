/**
 * @file
 * Simulated NIC with persistent descriptor-ring context.
 *
 * The NIC registers itself in the kernel dpm_list as a
 * DeviceClass::Network driver and binds a kernel::DeviceContext, so
 * Auto-Stop serializes its RX/TX rings byte-for-byte into the DCB
 * payload region (through the durability cursor) and Go hands the
 * image back. Requests queued at the moment of a power event are
 * therefore *real state* that survives an SnG power cycle — and real
 * state that a checkpoint baseline's cold boot loses.
 *
 * The rings are bounded: pushes fail when the ring is full or the
 * device is suspended (link down), which is how the service plane
 * models frame loss during an outage.
 */

#ifndef LIGHTPC_NET_NIC_HH
#define LIGHTPC_NET_NIC_HH

#include <cstdint>
#include <vector>

#include "kernel/device.hh"
#include "net/rpc.hh"
#include "sim/rng.hh"

namespace lightpc::net
{

/** NIC geometry and dpm costs. */
struct NicParams
{
    /** Descriptor entries per direction. */
    std::uint32_t ringEntries = 256;

    /** MMIO register window copied by Auto-Stop. */
    std::uint64_t mmioBytes = 16384;

    /** dpm callback latencies (eth-class driver). */
    kernel::DpmCosts dpm{3 * tickUs,  18 * tickUs, 4 * tickUs,
                         4 * tickUs,  18 * tickUs, 3 * tickUs};
};

/** Traffic counters. */
struct NicStats
{
    std::uint64_t framesRx = 0;      ///< requests accepted into RX
    std::uint64_t framesTx = 0;      ///< responses accepted into TX
    std::uint64_t rxDropsFull = 0;   ///< RX pushes refused: ring full
    std::uint64_t rxDropsDown = 0;   ///< RX pushes refused: link down
    std::uint64_t txDropsFull = 0;
    std::uint64_t txDropsDown = 0;
    std::uint32_t maxRxOccupancy = 0;
    std::uint32_t maxTxOccupancy = 0;
};

/**
 * The NIC: bounded RX (request) and TX (response) rings plus the
 * dpm_list registration.
 */
class NicDevice : public kernel::DeviceContext
{
  public:
    /**
     * Construct and register in @p devices (appended to dpm_list, so
     * the NIC suspends last and resumes first — a late registrant,
     * like a hot-plugged driver).
     */
    NicDevice(kernel::DeviceManager &devices, std::string name,
              const NicParams &params = NicParams());

    const NicParams &params() const { return _params; }
    kernel::Device &device() { return *dev; }
    const NicStats &stats() const { return _stats; }

    /** Link is up while the driver is not suspended. */
    bool linkUp() const { return !dev->suspended(); }

    std::uint32_t capacity() const { return _params.ringEntries; }
    std::uint32_t rxOccupancy() const { return rxCount; }
    std::uint32_t txOccupancy() const { return txCount; }

    /** Enqueue an inbound request. False when full or link down. */
    bool rxPush(const RpcRequest &req);

    /** Dequeue the oldest inbound request. False when empty. */
    bool rxPop(RpcRequest &out);

    /** Enqueue an outbound response. False when full or link down. */
    bool txPush(const RpcResponse &resp);

    /** Dequeue the oldest outbound response. False when empty. */
    bool txPop(RpcResponse &out);

    /**
     * Power-loss scramble: overwrite the volatile rings with garbage
     * (the DRAM-side state is unspecified once the rails fall). A
     * following restoreContext() must reinstate the true contents
     * from the DCB image — this is how tests prove the durable copy,
     * not a lucky survivor, is what Go resurrects.
     */
    void scrambleVolatile(Rng &rng);

    /** Cold boot: rings empty, heads reset (queued traffic lost). */
    void resetVolatile();

    /** Fixed serialized image size for this geometry. */
    std::uint64_t contextImageBytes() const;

    // --- kernel::DeviceContext ------------------------------------
    void saveContext(std::vector<std::uint8_t> &out) override;
    void restoreContext(const std::uint8_t *data,
                        std::size_t len) override;

  private:
    struct ContextHeader
    {
        std::uint64_t magic = 0;
        std::uint32_t ringEntries = 0;
        std::uint32_t rxHead = 0;
        std::uint32_t rxCount = 0;
        std::uint32_t txHead = 0;
        std::uint32_t txCount = 0;
        std::uint32_t pad = 0;
        std::uint64_t framesRx = 0;
        std::uint64_t framesTx = 0;
    };

    static constexpr std::uint64_t contextMagic =
        0x4e49435f52494e47ULL;  // "NIC_RING"

    NicParams _params;
    kernel::Device *dev = nullptr;
    NicStats _stats;

    std::vector<RpcRequest> rx;
    std::vector<RpcResponse> tx;
    std::uint32_t rxHead = 0, rxCount = 0;
    std::uint32_t txHead = 0, txCount = 0;
};

} // namespace lightpc::net

#endif // LIGHTPC_NET_NIC_HH
