#include "net/service_plane.hh"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "fault/fault_injector.hh"
#include "mem/timed_mem.hh"
#include "net/availability.hh"
#include "persist/checkpoint.hh"
#include "platform/system.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/parallel.hh"

namespace lightpc::net
{

const char *
persistModeName(PersistMode mode)
{
    switch (mode) {
    case PersistMode::SnG: return "LightPC-SnG";
    case PersistMode::SysPc: return "SysPC";
    case PersistMode::SCheckPc: return "S-CheckPC";
    case PersistMode::ACheckPc: return "A-CheckPC";
    case PersistMode::OpLog: return "SnG-OpLog";
    }
    return "?";
}

namespace
{

/** FNV-1a over 64-bit words. */
struct Digest
{
    std::uint64_t h = 0xcbf29ce484222325ULL;

    void
    mix(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (i * 8)) & 0xff;
            h *= 0x100000001b3ULL;
        }
    }
};

platform::SystemConfig
sysConfigFor(const ServiceConfig &cfg)
{
    platform::SystemConfig sc;
    sc.kind = platform::PlatformKind::LightPC;
    sc.seed = cfg.seed;
    sc.kernel.cores = sc.cores;
    sc.kernel.userProcesses = cfg.userProcesses;
    sc.kernel.kernelThreads = cfg.kernelThreads;
    sc.kernel.deviceCount = cfg.deviceCount;
    sc.kernel.busy = true;
    sc.kernel.seed = cfg.seed ^ 0x6b65726eULL;  // "kern"
    return sc;
}

KvParams
kvParamsFor(const ServiceConfig &cfg)
{
    KvParams kp = cfg.kv;
    if (cfg.mode == PersistMode::ACheckPc)
        kp.checkpointBytesPerOp = cfg.acheckBytesPerOp;
    if (cfg.mode == PersistMode::OpLog)
        kp.writePath = WritePath::OpLog;
    // Dedup retention: an ID may only be compacted away once no
    // conforming client can still retry it — the fleet's worst-case
    // retry span, plus the server-side deadline a queued retry can
    // still execute under, wire delays, and one full outage.
    kp.dedupRetention = cfg.fleet.maxRetrySpan() + cfg.requestDeadline
        + 2 * cfg.wireLatency + cfg.offDwell + cfg.holdup;
    return kp;
}

/**
 * Fixed-latency port for the scratch-copy durability audit: the
 * audit replays recovery against a *copy* of the PMEM store, and
 * must not perturb the live PSM pipeline's timing state.
 */
struct OraclePort : mem::MemoryPort
{
    mem::AccessResult
    access(const mem::MemRequest &, Tick when) override
    {
        mem::AccessResult r;
        r.completeAt = when + 50 * tickNs;
        r.mediaFreeAt = r.completeAt;
        return r;
    }
};

FleetParams
fleetParamsFor(const ServiceConfig &cfg)
{
    FleetParams fp = cfg.fleet;
    fp.seed = fp.seed ^ (cfg.seed * 0x9e3779b97f4a7c15ULL);
    return fp;
}

/**
 * One live run: the platform wiring plus the event-driven control
 * state. Event closures capture only `this`.
 */
struct Plane
{
    const ServiceConfig &cfg;
    platform::System sys;
    EventQueue &eq;
    NicDevice nic;
    mem::TimedMem timed;
    KvService kv;
    ClientFleet fleet;
    AvailabilityRecorder recorder;
    fault::FaultInjector injector;
    persist::SysPc sysPc;
    persist::SCheckPc sCheck;
    persist::ImageCosts imageCosts;
    Rng rng;          ///< torn seeds, dump body seeds
    Rng scrambleRng;  ///< volatile-loss corruption

    // Control state.
    bool powerOn = true;
    bool serviceUp = true;
    bool dumpStall = false;  ///< S-CheckPC stop-the-world dump
    bool serverBusy = false;
    bool txDraining = false;

    /**
     * Bumped at every power event; machine-side events scheduled
     * before the cut (service completion, TX drain) check it and die.
     * Client-side events (timeouts, arrivals) and frames already on
     * the wire are unaffected — the outage is the machine's, not the
     * world's.
     */
    std::uint64_t epoch = 0;

    RpcResponse pendingResp{};
    bool havePendingResp = false;
    bool pendingDeferred = false;

    /** OpLog mode: acks waiting on the next group commit. */
    std::vector<RpcResponse> deferredAcks;
    bool commitScheduled = false;
    bool drainScheduled = false;

    ServiceResult res;

    explicit Plane(const ServiceConfig &config)
        : cfg(config),
          sys(sysConfigFor(config)),
          eq(sys.eventQueue()),
          nic(sys.kernel().devices(), "eth0", config.nic),
          timed(sys.memoryPort(), &sys.pmemStore()),
          kv(sys.pmemStore(), timed, kvParamsFor(config)),
          fleet(fleetParamsFor(config)),
          recorder(config.goodputWindow),
          injector(sys.pmemStore()),
          sysPc(timed),
          sCheck(timed, config.scheckPeriod),
          rng(config.seed ^ 0x5eedf00dULL),
          scrambleRng(config.seed ^ 0x7a57eULL)
    {
        res.mode = cfg.mode;
        res.modeName = persistModeName(cfg.mode);
    }

    bool canServe() const { return powerOn && serviceUp && !dumpStall; }

    // --- client side ----------------------------------------------

    void
    arrivalFire()
    {
        const Tick now = eq.now();
        if (now > cfg.runFor)
            return;
        RpcRequest req = fleet.newRequest(now);
        issueAttempt(req, now);
        eq.schedule(now + fleet.nextInterarrival(),
                    [this] { arrivalFire(); });
    }

    void
    issueAttempt(RpcRequest req, Tick now)
    {
        req.deadline = now + cfg.requestDeadline;
        eq.schedule(now + cfg.wireLatency,
                    [this, req] { rxArrive(req); });
        const Tick wait = fleet.timeoutFor(req.client, req.attempt);
        eq.schedule(now + cfg.wireLatency + wait,
                    [this, id = req.reqId] { timeoutFire(id); });
    }

    void
    timeoutFire(std::uint64_t req_id)
    {
        const Tick now = eq.now();
        auto next = fleet.retryAttempt(req_id, now);
        if (next)
            issueAttempt(*next, now);
    }

    void
    deliverResponse(const RpcResponse &resp)
    {
        const Tick now = eq.now();
        const Tick first = fleet.firstIssuedAt(resp.reqId);
        const auto outcome = fleet.onResponse(resp, now);
        if (outcome == ClientFleet::AckOutcome::Completed)
            recorder.onSuccess(now, first, resp.servedAt);
    }

    // --- machine side ---------------------------------------------

    void
    rxArrive(const RpcRequest &req)
    {
        if (!powerOn) {
            ++res.wireDrops;
            return;
        }
        nic.rxPush(req);  // counts its own full/link-down drops
        kickService();
    }

    void
    kickService()
    {
        if (!canServe() || serverBusy)
            return;
        const Tick now = eq.now();
        RpcRequest r;
        // Admission from the RX ring; backpressure answers at once.
        while (nic.rxPop(r)) {
            if (!kv.admit(r)) {
                RpcResponse rej;
                rej.reqId = r.reqId;
                rej.client = r.client;
                rej.status = RpcStatus::Rejected;
                rej.servedAt = now;
                nic.txPush(rej);
            }
        }
        RpcRequest head;
        if (!kv.queuePop(head)) {
            kickTx();
            return;
        }
        serverBusy = true;
        Tick t = now;
        pendingDeferred = false;
        pendingResp = kv.execute(t, head, &pendingDeferred);
        havePendingResp = true;
        const std::uint64_t e = epoch;
        eq.schedule(t, [this, e] {
            if (e == epoch)
                serviceDone();
        });
        kickTx();
    }

    void
    serviceDone()
    {
        serverBusy = false;
        if (havePendingResp) {
            if (pendingDeferred) {
                // The ack waits for the group commit that makes its
                // record durable; commitFire() releases it.
                deferredAcks.push_back(pendingResp);
                maybeScheduleCommit();
            } else {
                nic.txPush(pendingResp);
            }
            havePendingResp = false;
            pendingDeferred = false;
        }
        kickTx();
        kickService();
    }

    // --- op-log group commit / background drain -------------------

    void
    maybeScheduleCommit()
    {
        if (cfg.mode != PersistMode::OpLog)
            return;
        if (kv.logUncommittedRecords() >= cfg.oplogCommitRecords) {
            commitFire();
            return;
        }
        if (commitScheduled)
            return;
        commitScheduled = true;
        const std::uint64_t e = epoch;
        eq.scheduleIn(cfg.oplogCommitInterval, [this, e] {
            commitScheduled = false;
            if (e == epoch)
                commitFire();
        });
    }

    void
    commitFire()
    {
        if (!canServe())
            return;
        Tick t = eq.now();
        kv.logCommit(t);
        if (!deferredAcks.empty()) {
            // Release the batch's acks once the tail persist has
            // completed. servedAt is the release tick — strictly
            // after the records' durability point, so the outage
            // close predicate stays sound. (shared_ptr keeps the
            // closure inside the queue's inline-storage bound.)
            auto batch = std::make_shared<std::vector<RpcResponse>>(
                std::move(deferredAcks));
            deferredAcks.clear();
            const std::uint64_t e = epoch;
            eq.schedule(t, [this, e, batch] {
                if (e != epoch)
                    return;
                const Tick now = eq.now();
                for (RpcResponse resp : *batch) {
                    resp.servedAt = now;
                    nic.txPush(resp);
                }
                kickTx();
            });
        }
        scheduleDrain();
    }

    void
    scheduleDrain()
    {
        if (cfg.mode != PersistMode::OpLog || drainScheduled
            || kv.logBacklogRecords() == 0)
            return;
        drainScheduled = true;
        const std::uint64_t e = epoch;
        eq.scheduleIn(cfg.oplogDrainInterval, [this, e] {
            drainScheduled = false;
            if (e == epoch)
                drainFire();
        });
    }

    void
    drainFire()
    {
        if (!canServe())
            return;
        // The drain runs on a spare core: it charges the memory
        // system through its own timeline without blocking the
        // serving path.
        Tick t = eq.now();
        kv.logDrain(t, cfg.oplogDrainBatch);
        scheduleDrain();
    }

    void
    kickTx()
    {
        if (!powerOn || txDraining || nic.txOccupancy() == 0)
            return;
        txDraining = true;
        const std::uint64_t e = epoch;
        eq.scheduleIn(cfg.txDrainInterval, [this, e] {
            if (e == epoch)
                txDrainFire();
        });
    }

    void
    txDrainFire()
    {
        txDraining = false;
        RpcResponse resp;
        if (!nic.txPop(resp))
            return;
        // On the wire: delivery happens even if the machine dies now.
        eq.scheduleIn(cfg.wireLatency,
                      [this, resp] { deliverResponse(resp); });
        kickTx();
    }

    // --- stats ----------------------------------------------------

    void
    samplerFire()
    {
        recorder.sample(eq.now());
        if (eq.now() + cfg.goodputWindow <= cfg.runFor + cfg.drainGrace)
            eq.scheduleIn(cfg.goodputWindow, [this] { samplerFire(); },
                          EventPriority::Stats);
    }

    // --- S-CheckPC periodic dump ----------------------------------

    void
    scheckDumpFire()
    {
        const Tick now = eq.now();
        if (canServe()) {
            dumpStall = true;
            const Tick done =
                sCheck.dumpCommitted(now, cfg.scheckVmBytes, rng.next());
            eq.schedule(done, [this] {
                dumpStall = false;
                kickService();
            });
        }
        eq.schedule(now + cfg.scheckPeriod,
                    [this] { scheckDumpFire(); });
    }

    // --- power events ---------------------------------------------

    void
    powerFailFire(Tick probe_deadline, std::uint32_t follow_ups_left = 0,
                  bool is_follow_up = false)
    {
        const Tick now = eq.now();
        const bool underLoad = serverBusy || nic.rxOccupancy() > 0
            || nic.txOccupancy() > 0;
        // Never cut into an outage still in progress; and (when
        // configured) hold the cut until the service is mid-flight.
        // Follow-up storm cuts carry an already-expired probe
        // deadline, so they fire the instant the service is back up.
        if (!powerOn || !serviceUp
            || (cfg.cutUnderLoad && !underLoad
                && now < probe_deadline)) {
            eq.scheduleIn(
                cfg.cutProbeInterval,
                [this, probe_deadline, follow_ups_left, is_follow_up] {
                    powerFailFire(probe_deadline, follow_ups_left,
                                  is_follow_up);
                },
                EventPriority::PowerEvent);
            return;
        }
        if (is_follow_up)
            ++res.stormFollowUpCuts;
        recorder.outageBegin(now);
        powerOn = false;
        serviceUp = false;
        ++epoch;
        txDraining = false;
        injector.armCut(now + cfg.holdup, rng.next());

        ServiceOutage o;
        o.eventAt = now;

        switch (cfg.mode) {
        case PersistMode::SnG: {
            // The in-flight request already committed its writes;
            // Drive-to-Idle drains its handler, and the unsent ack
            // rides the TX ring into the DCB.
            if (serverBusy && havePendingResp) {
                nic.txPush(pendingResp);
                havePendingResp = false;
            }
            serverBusy = false;
            const auto stop = sys.sng().stop(now, cfg.holdup);
            res.stopTicksTotal += stop.totalTicks();
            res.contextImagesSaved += stop.contextImagesSaved;
            o.coldBoot = stop.commitFailed;
            break;
        }
        case PersistMode::OpLog: {
            // Emergency group commit inside the hold-up: the cut is
            // armed a full hold-up out and the tail persist takes
            // microseconds, so every appended record becomes durable.
            // The batch's acks flush to the TX ring stamped at the
            // event tick — they ride the DCB and can narrow the
            // outage but never close it (strictly-after predicate);
            // on a cold boot the ring is lost and clients retry into
            // the dedup set instead.
            Tick t = now;
            kv.logCommit(t);
            if (serverBusy && havePendingResp) {
                if (pendingDeferred)
                    deferredAcks.push_back(pendingResp);
                else
                    nic.txPush(pendingResp);
                havePendingResp = false;
                pendingDeferred = false;
            }
            for (RpcResponse resp : deferredAcks) {
                resp.servedAt = now;
                nic.txPush(resp);
            }
            deferredAcks.clear();
            serverBusy = false;
            const auto stop = sys.sng().stop(now, cfg.holdup);
            res.stopTicksTotal += stop.totalTicks();
            res.contextImagesSaved += stop.contextImagesSaved;
            o.coldBoot = stop.commitFailed;
            break;
        }
        case PersistMode::SysPc: {
            // Hibernate dump against a 16 ms hold-up: the image takes
            // seconds, so the commit record lands past the cut and
            // the durability cursor drops it.
            serverBusy = false;
            havePendingResp = false;
            sysPc.dumpImageCommitted(
                now, sys.kernel().systemImageBytes(), rng.next());
            o.coldBoot = true;
            break;
        }
        case PersistMode::SCheckPc:
        case PersistMode::ACheckPc:
            serverBusy = false;
            havePendingResp = false;
            o.coldBoot = true;
            break;
        }
        res.outages.push_back(o);
        eq.schedule(now + cfg.offDwell, [this] { powerRestoreFire(); },
                    EventPriority::PowerEvent);

        if (follow_ups_left > 0) {
            // The next storm cut lands just past this restoration;
            // the up-front guard then holds it until the recovery
            // actually completes.
            const Tick next_at = now + cfg.offDwell + cfg.stormSpacing;
            eq.schedule(
                next_at,
                [this, next_at, follow_ups_left] {
                    powerFailFire(next_at, follow_ups_left - 1, true);
                },
                EventPriority::PowerEvent);
        }
    }

    /** Cold-boot recovery common path. @return service-up tick. */
    Tick
    coldBootRecover(Tick from)
    {
        ++res.coldBoots;
        // Reboot re-probes every driver; rings and queue are gone.
        auto &devices = sys.kernel().devices();
        for (std::size_t i = 0; i < devices.count(); ++i)
            devices.device(i).setSuspended(false);
        res.ringFramesLost += nic.rxOccupancy() + nic.txOccupancy();
        nic.resetVolatile();
        kv.dropQueue();
        deferredAcks.clear();
        Tick t = from;
        kv.recover(t);
        return t;
    }

    void
    powerRestoreFire()
    {
        const Tick now = eq.now();
        injector.powerRestored();
        powerOn = true;
        ServiceOutage &o = res.outages.back();
        Tick upAt = now;

        switch (cfg.mode) {
        case PersistMode::SnG:
        case PersistMode::OpLog:
            if (!o.coldBoot && sys.sng().hasCommit()) {
                // The rails ate the volatile side; Go must rebuild
                // it from the DCB images alone.
                sys.kernel().scramble(scrambleRng);
                nic.scrambleVolatile(scrambleRng);
                const auto go = sys.sng().resume(now);
                res.goTicksTotal += go.totalTicks();
                res.contextImagesRestored += go.contextImagesRestored;
                res.ringPreservedFrames +=
                    nic.rxOccupancy() + nic.txOccupancy();
                upAt = go.done;
            } else {
                o.coldBoot = true;
                upAt = coldBootRecover(now + imageCosts.coldReboot);
            }
            break;
        case PersistMode::SysPc:
            upAt = coldBootRecover(sysPc.recover(now));
            break;
        case PersistMode::SCheckPc:
            upAt = coldBootRecover(sCheck.recoverAfterLoss(now));
            break;
        case PersistMode::ACheckPc:
            upAt = coldBootRecover(now + imageCosts.coldReboot);
            break;
        }

        eq.schedule(upAt, [this] { serviceUpFire(); });
    }

    void
    serviceUpFire()
    {
        serviceUp = true;
        kickService();
        kickTx();
        // A warm resume can come back with committed-but-undrained
        // records (and uncommitted appends the emergency flush
        // covered); restart the commit/drain cadence.
        maybeScheduleCommit();
        scheduleDrain();
        // Audit acked-write durability right after every recovery.
        verifyInvariants();
    }

    // --- verification ---------------------------------------------

    void
    violation(const std::string &msg)
    {
        if (std::find(res.violations.begin(), res.violations.end(),
                      msg)
            == res.violations.end())
            res.violations.push_back(msg);
    }

    void
    verifyInvariants()
    {
        if (cfg.mode == PersistMode::OpLog) {
            // Audit what a crash *right now* would recover to: copy
            // the PMEM store, reopen the pool and replay the op log
            // over the copy, and check the ledger against that. A
            // fixed-latency port keeps the audit off the live PSM
            // pipeline's timing state.
            OraclePort port;
            mem::BackingStore scratch;
            scratch.copyContentsFrom(sys.pmemStore());
            mem::TimedMem stm(port, &scratch);
            KvService audit(scratch, stm, kvParamsFor(cfg));
            Tick t = 0;
            audit.recover(t);
            auditDurable(audit);
        } else {
            auditDurable(kv);
        }
    }

    void
    auditDurable(const KvService &svc)
    {
        const auto ids = svc.appliedIds();
        std::unordered_set<std::uint64_t> applied(ids.begin(),
                                                  ids.end());
        std::uint64_t duplicates = 0;
        if (applied.size() != ids.size()) {
            duplicates += ids.size() - applied.size();
            violation("duplicate request ID in persistent dedup set");
        }
        if (svc.appliedCount() != ids.size() + svc.compactedCount()) {
            ++duplicates;
            violation("applied counter disagrees with dedup set size "
                      "+ compacted count");
        }
        for (const std::uint64_t id : ids) {
            if (fleet.putKeyOf(id) == 0)
                violation("dedup set holds an unknown request ID");
        }

        // An acked PUT's ID may legally be gone only once compaction's
        // retention floor has passed it (no conforming client can
        // still retry); its version must survive regardless.
        const Tick floor = svc.dedupFloor();
        const Tick ackSlack =
            cfg.offDwell + cfg.holdup + cfg.requestDeadline;
        std::uint64_t lost = 0;
        for (const AckedPut &put : fleet.ackedPuts()) {
            if (!applied.count(put.reqId)
                && !(floor != 0 && put.ackedAt < floor + ackSlack))
                ++lost;
            const auto state = svc.lookup(put.key);
            if (!state || state->version < put.version)
                violation("acked PUT's key version regressed");
        }
        if (lost)
            violation("acknowledged PUT missing from dedup set "
                      "(acked-then-lost)");

        std::uint64_t versionSum = 0;
        const std::uint64_t key_space = fleet.params().mix.keySpace;
        for (std::uint64_t key = 1; key <= key_space; ++key) {
            if (const auto state = svc.lookup(key))
                versionSum += state->version;
        }
        if (versionSum != svc.appliedCount()) {
            ++duplicates;
            violation("key version sum != applied PUT count "
                      "(double apply)");
        }

        res.lostAckedPuts = lost;
        res.duplicateApplied = duplicates;
    }

    // --- assembly -------------------------------------------------

    void
    finish()
    {
        const FleetStats &fs = fleet.stats();
        res.arrivals = fs.arrivals;
        res.attempts = fs.attempts;
        res.retries = fs.retries;
        res.completed = fs.completed;
        res.failed = fs.failed;
        res.duplicateAcks = fs.duplicateAcks;
        res.ackedPuts = fs.ackedPuts;

        const KvStats &ks = kv.stats();
        res.executed = ks.executed;
        res.putsApplied = ks.putsApplied;
        res.idempotentHits = ks.idempotentHits;
        res.rejected = ks.rejected;
        res.deadlineExceeded = ks.deadlineExceeded;
        res.queueDropped = ks.queueDropped;
        res.recoveries = ks.recoveries;
        res.logAppends = ks.logAppends;
        res.logCommits = ks.logCommits;
        res.logDrainApplied = ks.logDrainApplied;
        res.logReplayApplied = ks.logReplayApplied;
        res.logStallDrains = ks.logStallDrains;
        res.dedupCompactions = ks.dedupCompactions;
        res.dedupEvicted = ks.dedupEvicted;

        const NicStats &ns = nic.stats();
        res.framesRx = ns.framesRx;
        res.framesTx = ns.framesTx;
        res.rxDropsDown = ns.rxDropsDown;
        res.rxDropsFull = ns.rxDropsFull;
        res.maxQueueDepth = ks.maxQueueDepth;
        res.maxRxOccupancy = ns.maxRxOccupancy;
        res.maxTxOccupancy = ns.maxTxOccupancy;

        auto &lat = recorder.latency();
        res.meanUs = recorder.latencySummaryUs().mean();
        res.p50Us = ticksToUs(lat.percentile(0.50));
        res.p99Us = ticksToUs(lat.percentile(0.99));
        res.p999Us = ticksToUs(lat.percentile(0.999));

        res.goodputMean = static_cast<double>(res.completed)
            / (static_cast<double>(cfg.runFor)
               / static_cast<double>(tickSec));
        for (const auto &s : recorder.goodputSeries().samples())
            res.goodput.emplace_back(s.when, s.value);

        const auto &outs = recorder.outageRecords();
        for (std::size_t i = 0;
             i < outs.size() && i < res.outages.size(); ++i) {
            ServiceOutage &o = res.outages[i];
            o.lastSuccessBefore = outs[i].lastSuccessBefore;
            o.firstSuccessAfter =
                outs[i].closed ? outs[i].firstSuccessAfter : maxTick;
            o.downtime = outs[i].downtime();
            o.attributable = o.downtime == maxTick
                ? maxTick
                : (o.downtime > cfg.offDwell
                       ? o.downtime - cfg.offDwell
                       : 0);
            res.worstDowntime =
                std::max(res.worstDowntime, o.downtime);
            res.worstAttributable =
                std::max(res.worstAttributable, o.attributable);
        }

        Digest d;
        d.mix(res.arrivals);
        d.mix(res.attempts);
        d.mix(res.completed);
        d.mix(res.failed);
        d.mix(res.ackedPuts);
        d.mix(res.executed);
        d.mix(res.putsApplied);
        d.mix(res.idempotentHits);
        d.mix(kv.appliedCount());
        d.mix(res.framesRx);
        d.mix(res.framesTx);
        d.mix(res.ringPreservedFrames);
        d.mix(res.stormFollowUpCuts);
        d.mix(res.logAppends);
        d.mix(res.logCommits);
        d.mix(res.dedupEvicted);
        d.mix(lat.percentile(0.99));
        d.mix(recorder.lastSuccessAt());
        for (const ServiceOutage &o : res.outages)
            d.mix(o.downtime);
        res.digest = d.h;
    }

    ServiceResult
    run()
    {
        eq.schedule(fleet.nextInterarrival(),
                    [this] { arrivalFire(); });
        eq.schedule(cfg.goodputWindow, [this] { samplerFire(); },
                    EventPriority::Stats);
        const Tick spacing = cfg.runFor / (cfg.cuts + 1);
        for (std::uint32_t k = 0; k < cfg.cuts; ++k) {
            const Tick at = spacing * (k + 1);
            const Tick deadline = at + spacing / 2;
            eq.schedule(
                at,
                [this, deadline] {
                    powerFailFire(deadline, cfg.stormFollowUps);
                },
                EventPriority::PowerEvent);
        }
        if (cfg.mode == PersistMode::SCheckPc)
            eq.schedule(cfg.scheckPeriod,
                        [this] { scheckDumpFire(); });

        eq.run(cfg.runFor + cfg.drainGrace);

        verifyInvariants();
        finish();
        return res;
    }
};

} // namespace

void
validateServiceConfig(const ServiceConfig &config)
{
    if (config.fleet.clients == 0)
        fatal("ServiceConfig: fleet.clients must be >= 1 "
              "(a zero-client fleet generates no load)");
    if (config.fleet.arrivalsPerSec <= 0.0)
        fatal("ServiceConfig: fleet.arrivalsPerSec must be positive");
    if (config.fleet.maxAttempts == 0)
        fatal("ServiceConfig: fleet.maxAttempts must be >= 1");
    if (config.nic.ringEntries == 0)
        fatal("ServiceConfig: nic.ringEntries must be >= 1 "
              "(a zero-capacity ring can never carry a frame)");
    if (config.kv.queueCapacity == 0)
        fatal("ServiceConfig: kv.queueCapacity must be >= 1");
    if (config.runFor == 0)
        fatal("ServiceConfig: runFor must be nonzero");
    if (config.goodputWindow == 0)
        fatal("ServiceConfig: goodputWindow must be nonzero");
    if (config.stormFollowUps > 0 && config.cuts == 0)
        fatal("ServiceConfig: stormFollowUps = ",
              config.stormFollowUps,
              " without any cuts never fires; set cuts >= 1 or "
              "stormFollowUps = 0");
    if (config.cuts > 0 && config.runFor / (config.cuts + 1) == 0)
        fatal("ServiceConfig: runFor too short for ", config.cuts,
              " cuts");
}

ServiceResult
runService(const ServiceConfig &config)
{
    validateServiceConfig(config);
    Plane plane(config);
    return plane.run();
}

std::vector<ServiceResult>
runServiceSuite(const std::vector<ServiceConfig> &configs,
                unsigned threads)
{
    sim::ParallelExecutor pool(threads);
    return pool.map<ServiceResult>(
        configs.size(),
        [&configs](std::uint64_t i) { return runService(configs[i]); });
}

} // namespace lightpc::net
