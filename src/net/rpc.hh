/**
 * @file
 * RPC wire types of the network service plane.
 *
 * Requests and responses are trivially-copyable PODs: they live in
 * the NIC's RX/TX descriptor rings, whose contents Auto-Stop
 * serializes byte-for-byte into the DCB payload region, so the wire
 * format doubles as the persistent ring-context format.
 *
 * Request IDs are globally unique and *stable across retries*: a
 * client that times out re-sends the same reqId, and the server's
 * persistent dedup table makes re-execution idempotent. That is what
 * keeps a retry that races a power cut from double-applying a PUT.
 */

#ifndef LIGHTPC_NET_RPC_HH
#define LIGHTPC_NET_RPC_HH

#include <cstdint>
#include <type_traits>

#include "sim/ticks.hh"
#include "workload/service_mix.hh"

namespace lightpc::net
{

/** Server verdict on one request attempt. */
enum class RpcStatus : std::uint32_t
{
    Ok = 0,
    NotFound = 1,          ///< GET of a never-written key
    Rejected = 2,          ///< admission queue full (backpressure)
    DeadlineExceeded = 3,  ///< dequeued past its deadline; not applied
    NotLeader = 4,         ///< replica is a follower; see leaderHint
    ReadOnly = 5,          ///< quorum lost: writes refused, not applied
};

/** Display name. */
inline const char *
rpcStatusName(RpcStatus status)
{
    switch (status) {
    case RpcStatus::Ok: return "OK";
    case RpcStatus::NotFound: return "NOT_FOUND";
    case RpcStatus::Rejected: return "REJECTED";
    case RpcStatus::DeadlineExceeded: return "DEADLINE_EXCEEDED";
    case RpcStatus::NotLeader: return "NOT_LEADER";
    case RpcStatus::ReadOnly: return "READ_ONLY";
    }
    return "?";
}

/** RpcResponse::leaderHint when the responder knows no leader. */
inline constexpr std::uint32_t noLeaderHint = ~std::uint32_t(0);

/** One request attempt as it sits in the NIC RX ring. */
struct RpcRequest
{
    std::uint64_t reqId = 0;    ///< stable across retries (idempotence)
    std::uint32_t client = 0;
    workload::KvOp op = workload::KvOp::Get;
    std::uint64_t key = 0;
    std::uint64_t valueSeed = 0;   ///< PUT payload digest
    std::uint32_t scanLength = 0;
    std::uint32_t attempt = 1;     ///< 1 = first issue
    Tick deadline = 0;             ///< absolute server-side deadline
    Tick firstIssuedAt = 0;        ///< latency base (first attempt)
};

/** One response as it sits in the NIC TX ring. */
struct RpcResponse
{
    std::uint64_t reqId = 0;
    std::uint32_t client = 0;
    RpcStatus status = RpcStatus::Ok;
    std::uint64_t version = 0;    ///< key version after/at the op
    std::uint64_t valueSeed = 0;  ///< GET payload / SCAN digest
    Tick servedAt = 0;            ///< server completion tick

    /**
     * Attempt number this response answers (0 when the server did not
     * echo one). A client fast-redirecting on NotLeader/ReadOnly
     * passes it as the guarded-retry expectation, so a redirect for a
     * superseded attempt cannot race the newer attempt's timeout into
     * a duplicate issue.
     */
    std::uint32_t attempt = 0;

    /** Replica that produced the response (single node: 0). */
    std::uint32_t source = 0;

    /** NotLeader redirect target (noLeaderHint when unknown). */
    std::uint32_t leaderHint = noLeaderHint;

    /**
     * Leader epoch under which a replicated PUT was acked (0 = not a
     * replicated-write ack; cluster epochs start at 1). The client
     * plane feeds it to the online split-brain audit: acks from two
     * distinct sources inside one epoch are an invariant violation.
     */
    std::uint64_t epoch = 0;
};

static_assert(std::is_trivially_copyable_v<RpcRequest>);
static_assert(std::is_trivially_copyable_v<RpcResponse>);

} // namespace lightpc::net

#endif // LIGHTPC_NET_RPC_HH
