/**
 * @file
 * Open-loop client load generator.
 *
 * Models thousands of independent clients behind a Poisson arrival
 * process: new logical requests arrive at a configured aggregate
 * rate regardless of how the server is doing (open loop — an outage
 * does not pause the offered load, it piles it up). Each logical
 * request retries on timeout with exponential backoff and jitter,
 * re-sending the *same* request ID so the server's dedup set keeps
 * retries idempotent; after the attempt budget it gives up.
 *
 * The fleet also keeps the verification oracle: which PUTs were
 * acknowledged (and must therefore be durable) and which request IDs
 * belong to which key (so per-key version counters can be audited
 * against the server's persistent dedup set).
 */

#ifndef LIGHTPC_NET_CLIENT_FLEET_HH
#define LIGHTPC_NET_CLIENT_FLEET_HH

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/rpc.hh"
#include "sim/rng.hh"
#include "sim/ticks.hh"
#include "workload/service_mix.hh"

namespace lightpc::net
{

/** Fleet sizing and client-side retry policy. */
struct FleetParams
{
    /** Simulated client endpoints (request fan-in). */
    std::uint32_t clients = 2000;

    /** Aggregate open-loop arrival rate. */
    double arrivalsPerSec = 4000.0;

    /** First-attempt timeout; doubles per retry up to backoffCap. */
    Tick clientTimeout = 30 * tickMs;
    Tick backoffCap = 500 * tickMs;
    Tick retryJitter = 5 * tickMs;

    /** Total attempts per logical request (first + retries). */
    std::uint32_t maxAttempts = 9;

    workload::ServiceMix mix;

    std::uint64_t seed = 1;

    /**
     * Worst-case span from a request's first send to its last
     * possible retry send: every per-attempt timeout at its jitter
     * ceiling, summed (mirrors ClientFleet::timeoutFor). A server
     * that remembers a request ID for at least this long — plus
     * wire/deadline margins, which the caller adds — can never
     * mistake a conforming client's retry for a new request.
     */
    Tick
    maxRetrySpan() const
    {
        Tick span = 0;
        Tick wait = clientTimeout;
        for (std::uint32_t attempt = 1; attempt < maxAttempts;
             ++attempt) {
            span += (wait > backoffCap ? backoffCap : wait)
                + retryJitter;
            if (wait < backoffCap)
                wait *= 2;
        }
        return span;
    }
};

/** Client-side counters. */
struct FleetStats
{
    std::uint64_t arrivals = 0;       ///< logical requests created
    std::uint64_t attempts = 0;       ///< attempts incl. retries
    std::uint64_t retries = 0;
    std::uint64_t completed = 0;      ///< acknowledged requests
    std::uint64_t failed = 0;         ///< attempt budget exhausted
    std::uint64_t duplicateAcks = 0;  ///< late acks for done requests
    std::uint64_t retriableErrors = 0;///< Rejected/Deadline/NotLeader/RO
    std::uint64_t redirects = 0;      ///< NotLeader/ReadOnly responses
    std::uint64_t ackedPuts = 0;
};

/** Oracle record of one acknowledged PUT. */
struct AckedPut
{
    std::uint64_t reqId = 0;
    std::uint64_t key = 0;
    std::uint64_t version = 0;  ///< version the ack reported
    Tick ackedAt = 0;
};

/**
 * The fleet. Passive: the service plane owns the event queue and
 * calls in; the fleet owns request identity, retry state, and the
 * oracle ledger.
 */
class ClientFleet
{
  public:
    explicit ClientFleet(const FleetParams &params = FleetParams());

    const FleetParams &params() const { return _params; }
    const FleetStats &stats() const { return _stats; }

    /** Exponential inter-arrival draw for the Poisson process. */
    Tick nextInterarrival();

    /** Create a new logical request (attempt 1). */
    RpcRequest newRequest(Tick now);

    /**
     * Timeout fired for @p req_id: either the next attempt to send
     * (same reqId, bumped attempt counter) or nullopt when the
     * request is done, unknown, or out of attempts (then it counts
     * as failed). A nonzero @p expected_attempt makes the call a
     * guarded retry: it only fires when that attempt is still the
     * latest one issued — a fast redirect that already re-sent the
     * request leaves the old attempt's armed timeout stale, and the
     * guard keeps the stale timer from issuing a duplicate attempt.
     */
    std::optional<RpcRequest> retryAttempt(
        std::uint64_t req_id, Tick now,
        std::uint32_t expected_attempt = 0);

    /**
     * Client-side wait before retrying attempt @p attempt of
     * @p client. The jitter draw comes from the client's own
     * Rng::streamSeed(seed, clientId) stream, so one client's retry
     * schedule is independent of every other client's draw order —
     * stable under replica-failover response reordering.
     */
    Tick timeoutFor(std::uint32_t client, std::uint32_t attempt);

    /** What a delivered response did to the logical request. */
    enum class AckOutcome
    {
        Completed,       ///< first ack: request done
        Duplicate,       ///< request already done (late/dup ack)
        RetriableError,  ///< backpressure/deadline: retry on timeout
    };

    /** Deliver a response to its client. */
    AckOutcome onResponse(const RpcResponse &resp, Tick now);

    bool isOutstanding(std::uint64_t req_id) const
    {
        return outstanding.find(req_id) != outstanding.end();
    }
    std::size_t outstandingCount() const { return outstanding.size(); }

    /** First-issue tick of an outstanding request (0 if unknown). */
    Tick firstIssuedAt(std::uint64_t req_id) const;

    // --- oracle ---------------------------------------------------

    /** Every acknowledged PUT so far (append order). */
    const std::vector<AckedPut> &ackedPuts() const { return acked; }

    /** Key of a PUT request ID (any PUT ever issued), 0 if unknown. */
    std::uint64_t putKeyOf(std::uint64_t req_id) const;

  private:
    struct Pending
    {
        RpcRequest base;            ///< attempt-1 form
        std::uint32_t attempts = 1; ///< attempts issued so far
        workload::KvOp op = workload::KvOp::Get;
    };

    FleetParams _params;
    FleetStats _stats;
    Rng rng;
    std::vector<Rng> clientJitter;  ///< per-client backoff streams
    std::uint64_t nextReqId = 1;
    std::unordered_map<std::uint64_t, Pending> outstanding;
    std::unordered_map<std::uint64_t, std::uint64_t> putKeys;
    std::vector<AckedPut> acked;
};

} // namespace lightpc::net

#endif // LIGHTPC_NET_CLIENT_FLEET_HH
