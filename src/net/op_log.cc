#include "net/op_log.hh"

#include <cstring>

#include "sim/logging.hh"

namespace lightpc::net
{

OpLog::OpLog(mem::BackingStore &store_in, mem::TimedMem &timed_in,
             const OpLogParams &params)
    : store(store_in), timed(timed_in), _params(params)
{
    if (_params.base == 0)
        fatal("OpLog needs an explicit base address");
    if (_params.base % 64 != 0)
        fatal("OpLog base must be cache-line aligned");
    if (_params.capacity < 2 * recordBytes
        || _params.capacity % recordBytes != 0)
        fatal("OpLog capacity must hold >= 2 aligned records");
}

std::uint64_t
OpLog::checksumOf(const OpRecord &rec)
{
    unsigned char bytes[sizeof(OpRecord)];
    std::memcpy(bytes, &rec, sizeof(rec));
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::size_t i = 0; i + sizeof(std::uint64_t) < sizeof(rec);
         ++i) {
        h ^= bytes[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

void
OpLog::format(Tick &t)
{
    Header hdr;
    hdr.magic = logMagic;
    hdr.capacity = _params.capacity;
    clock(t);
    t = timed.writeValue(t, _params.base, hdr);
    const std::uint64_t zero = 0;
    clock(t);
    t = timed.writeValue(t, headAddr(), zero);
    clock(t);
    t = timed.writeValue(t, tailAddr(), zero);
    t = timed.fence(t);
    head = persistedHead = tail = appendCursor = 0;
}

bool
OpLog::attach(Tick &t)
{
    Header hdr;
    t = timed.readValue(t, _params.base, hdr);
    if (hdr.magic != logMagic)
        return false;
    if (hdr.capacity != _params.capacity)
        fatal("OpLog reopened with mismatched capacity");
    t = timed.readValue(t, headAddr(), head);
    t = timed.readValue(t, tailAddr(), tail);
    persistedHead = head;
    appendCursor = tail;
    return true;
}

std::uint64_t
OpLog::append(Tick &t, OpRecord rec)
{
    if (wouldBlock())
        fatal("OpLog append into an undrained slot (caller must "
              "stall-drain first)");
    const std::uint64_t virt = appendCursor;
    rec.seq = virt / recordBytes + 1;
    rec.checksum = checksumOf(rec);
    // One line-granular store: an armed cut either keeps the whole
    // record, drops it, or tears it to a byte prefix that fails the
    // trailing checksum.
    clock(t);
    t = timed.writeBytes(t, slotAddr(virt), &rec, sizeof(rec));
    appendCursor = virt + recordBytes;
    ++_stats.appends;
    return rec.seq;
}

void
OpLog::commit(Tick &t)
{
    if (appendCursor == tail)
        return;
    // Tail persist strictly after every record it covers: one atomic
    // 8-byte store, then a fence. This is the durability point the
    // group's acks wait for.
    tail = appendCursor;
    clock(t);
    t = timed.writeValue(t, tailAddr(), tail);
    t = timed.fence(t);
    ++_stats.commits;
}

OpRecord
OpLog::readHead(Tick &t)
{
    if (backlogRecords() == 0)
        fatal("OpLog readHead on an empty backlog");
    OpRecord rec;
    t = timed.readValue(t, slotAddr(head), rec);
    return rec;
}

void
OpLog::pop()
{
    if (backlogRecords() == 0)
        fatal("OpLog pop on an empty backlog");
    head += recordBytes;
    ++_stats.pops;
}

void
OpLog::persistHead(Tick &t)
{
    if (persistedHead == head)
        return;
    clock(t);
    t = timed.writeValue(t, headAddr(), head);
    t = timed.fence(t);
    persistedHead = head;
    ++_stats.headPersists;
}

OpLogRecovery
OpLog::recover(Tick &t)
{
    ++_stats.recoveries;
    OpLogRecovery out;
    t = timed.readValue(t, headAddr(), out.headVirt);
    t = timed.readValue(t, tailAddr(), out.tailVirt);

    // Scan forward from the durable head: a record is valid iff its
    // checksum matches and its sequence number is the one this
    // virtual offset (lap included) must carry. Zero-filled slots
    // fail the checksum (FNV of zeros is nonzero), previous-lap
    // records fail the sequence check, torn prefixes fail the
    // checksum — any of them ends the run.
    std::uint64_t virt = out.headVirt;
    while (virt - out.headVirt < _params.capacity) {
        OpRecord rec;
        t = timed.readValue(t, slotAddr(virt), rec);
        if (rec.checksum != checksumOf(rec)) {
            ++_stats.checksumStops;
            break;
        }
        if (rec.seq != virt / recordBytes + 1) {
            ++_stats.seqStops;
            break;
        }
        out.records.push_back(rec);
        virt += recordBytes;
    }
    out.scanEndVirt = virt;
    out.tailCovered = out.scanEndVirt >= out.tailVirt;
    _stats.recoveredRecords += out.records.size();

    head = out.headVirt;
    persistedHead = out.headVirt;
    tail = out.scanEndVirt;
    appendCursor = out.scanEndVirt;
    return out;
}

void
OpLog::resetAfterReplay(Tick &t)
{
    head = tail = appendCursor;
    clock(t);
    t = timed.writeValue(t, tailAddr(), tail);
    clock(t);
    t = timed.writeValue(t, headAddr(), head);
    t = timed.fence(t);
    persistedHead = head;
}

} // namespace lightpc::net
