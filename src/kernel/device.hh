/**
 * @file
 * Device drivers and the device power management (dpm) list.
 *
 * Auto-Stop suspends every driver registered in dpm_list through the
 * standard callback sequence — dpm_prepare(), dpm_suspend(),
 * dpm_suspend_noirq() — in registration order (dependencies), dumps
 * each device's context into its Device Control Block (DCB) in
 * OC-PMEM, and copies memory-mapped peripheral regions. Go revives
 * them in the inverse order with dpm_resume_noirq(), dpm_resume(),
 * dpm_complete().
 */

#ifndef LIGHTPC_KERNEL_DEVICE_HH
#define LIGHTPC_KERNEL_DEVICE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/rng.hh"
#include "sim/ticks.hh"

namespace lightpc::kernel
{

/** Rough driver classes with characteristic costs. */
enum class DeviceClass
{
    Storage,   ///< block devices: queues to quiesce
    Network,   ///< NICs: rings + interrupts
    Serial,    ///< consoles, UARTs
    Spi,       ///< manually handled (no dpm), cheap
    Gpio,      ///< manually handled (no dpm), cheap
    Timer,     ///< clocksources/clockevents
    Platform,  ///< the long tail of platform devices
};

/**
 * Provider of real device context bytes.
 *
 * By default Auto-Stop charges timing for a device's context dump
 * but moves no bytes (the context is opaque). A driver that owns
 * genuine volatile state — descriptor rings, queue heads — binds a
 * DeviceContext to its Device; Auto-Stop then serializes the image
 * through the durability cursor into the DCB payload region, and Go
 * reads it back and hands it to restoreContext(), so the state that
 * survives a power cycle is exactly what the cursor let through.
 */
class DeviceContext
{
  public:
    virtual ~DeviceContext() = default;

    /**
     * Append the device's serialized volatile state to @p out. The
     * image must be exactly Device::contextBytes() long (the DCB
     * payload region is laid out from the declared sizes).
     */
    virtual void saveContext(std::vector<std::uint8_t> &out) = 0;

    /** Reinstate volatile state from the DCB image read back on Go. */
    virtual void restoreContext(const std::uint8_t *data,
                                std::size_t len) = 0;
};

/** Latency of each dpm callback. */
struct DpmCosts
{
    Tick prepare = 0;
    Tick suspend = 0;
    Tick suspendNoirq = 0;
    Tick resumeNoirq = 0;
    Tick resume = 0;
    Tick complete = 0;

    Tick
    totalSuspend() const
    {
        return prepare + suspend + suspendNoirq;
    }

    Tick
    totalResume() const
    {
        return resumeNoirq + resume + complete;
    }
};

/**
 * One driver entry in dpm_list.
 */
class Device
{
  public:
    Device(std::string name, DeviceClass cls, const DpmCosts &costs,
           std::uint64_t context_bytes, std::uint64_t mmio_bytes);

    const std::string &name() const { return _name; }
    DeviceClass deviceClass() const { return _class; }
    const DpmCosts &costs() const { return _costs; }

    /** DCB payload: driver state saved to OC-PMEM. */
    std::uint64_t contextBytes() const { return _contextBytes; }

    /** Memory-mapped peripheral region copied by Auto-Stop. */
    std::uint64_t mmioBytes() const { return _mmioBytes; }

    bool suspended() const { return _suspended; }

    void
    setSuspended(bool v)
    {
        if (v && !_suspended)
            ++_suspendCycles;
        else if (!v && _suspended)
            ++_resumeCycles;
        _suspended = v;
    }

    /** Live->suspended transitions over the device's lifetime. */
    std::uint64_t suspendCycles() const { return _suspendCycles; }

    /** Suspended->live transitions (Go revivals + aborted stops). */
    std::uint64_t resumeCycles() const { return _resumeCycles; }

    /**
     * A context cookie, scrambled while the device is live and
     * verified after Go restores the DCB.
     */
    std::uint64_t contextCookie() const { return cookie; }
    void setContextCookie(std::uint64_t v) { cookie = v; }

    /**
     * Bind a real context provider; @p context_bytes (when nonzero)
     * replaces the declared context size with the provider's fixed
     * image size. Pass nullptr to unbind.
     */
    void
    bindContext(DeviceContext *provider, std::uint64_t context_bytes = 0)
    {
        _context = provider;
        if (provider && context_bytes != 0)
            _contextBytes = context_bytes;
    }

    /** The bound provider (nullptr = timing-only context dump). */
    DeviceContext *context() const { return _context; }

  private:
    std::string _name;
    DeviceClass _class;
    DpmCosts _costs;
    std::uint64_t _contextBytes;
    std::uint64_t _mmioBytes;
    bool _suspended = false;
    std::uint64_t _suspendCycles = 0;
    std::uint64_t _resumeCycles = 0;
    std::uint64_t cookie = 0;
    DeviceContext *_context = nullptr;
};

/**
 * The ordered dpm_list.
 */
class DeviceManager
{
  public:
    DeviceManager() = default;

    /** Append a device (registration order == suspend order). */
    Device &add(std::unique_ptr<Device> device);

    std::size_t count() const { return dpmList.size(); }

    Device &device(std::size_t idx) { return *dpmList[idx]; }
    const Device &device(std::size_t idx) const { return *dpmList[idx]; }

    /** Iteration in dpm (suspend) order. */
    const std::vector<std::unique_ptr<Device>> &list() const
    {
        return dpmList;
    }

    /** Sum of all DCB context bytes. */
    std::uint64_t totalContextBytes() const;

    /** Sum of all MMIO region bytes. */
    std::uint64_t totalMmioBytes() const;

    /** True when every device is suspended. */
    bool allSuspended() const;

    /** How many devices are currently suspended. */
    std::size_t suspendedCount() const;

    /**
     * The prototype's default driver population ("all default device
     * driver packages"), around @p count devices across the classes.
     */
    static DeviceManager makeDefault(std::size_t count = 300,
                                     std::uint64_t seed = 7);

    /**
     * The Fig. 22 worst case: the maximum dpm_list population (730
     * drivers).
     */
    static DeviceManager makeWorstCase(std::uint64_t seed = 7);

  private:
    std::vector<std::unique_ptr<Device>> dpmList;
};

} // namespace lightpc::kernel

#endif // LIGHTPC_KERNEL_DEVICE_HH
