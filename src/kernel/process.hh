/**
 * @file
 * Process control blocks (task_struct analogue).
 *
 * PecOS's SnG manipulates real scheduling state: Drive-to-Idle walks
 * PCBs derived from the init task, signals user processes, drives
 * sleepers through their pending work, and parks everything
 * TASK_UNINTERRUPTIBLE off the run queues. The Go phase later flips
 * them back to TASK_NORMAL and re-executes from the EP-cut, so the
 * PCB carries the full architectural state (register file, program
 * counter, page-table pointer) that must survive the power cycle
 * bit-for-bit.
 */

#ifndef LIGHTPC_KERNEL_PROCESS_HH
#define LIGHTPC_KERNEL_PROCESS_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "mem/request.hh"
#include "sim/rng.hh"

namespace lightpc::kernel
{

/** Scheduling states (the subset SnG manipulates). */
enum class TaskState
{
    Running,          ///< currently on a core
    Runnable,         ///< on a run queue
    Sleeping,         ///< interruptible sleep
    Uninterruptible,  ///< parked by Drive-to-Idle (or real D-state)
    Stopped,          ///< fully stopped (idle task placed)
};

/** RISC-V-ish architectural state stored in the PCB. */
struct RegisterFile
{
    std::array<std::uint64_t, 31> x{};  ///< integer registers
    std::uint64_t pc = 0;
    std::uint64_t sp = 0;
    std::uint64_t satp = 0;  ///< page-table directory pointer

    bool
    operator==(const RegisterFile &other) const = default;

    /** Scramble with an RNG (simulating execution progress). */
    void randomize(Rng &rng);
};

/** One mapped region of a process (vm_area_struct analogue). */
struct VmArea
{
    enum class Kind
    {
        Code,
        Data,
        Heap,
        Stack,
    };

    Kind kind = Kind::Data;
    mem::Addr start = 0;
    std::uint64_t bytes = 0;
};

/**
 * A process control block.
 */
class Process
{
  public:
    Process(std::uint32_t pid, std::string name, bool kernel_thread);

    std::uint32_t pid() const { return _pid; }
    const std::string &name() const { return _name; }

    /** Kernel threads have no user address space to checkpoint. */
    bool isKernelThread() const { return kernelThread; }

    TaskState state() const { return _state; }
    void setState(TaskState s) { _state = s; }

    /** TIF_SIGPENDING analogue set by Drive-to-Idle. */
    bool signalPending() const { return sigPending; }
    void setSignalPending(bool v) { sigPending = v; }

    /** set_tsk_need_resched() analogue. */
    bool needResched() const { return _needResched; }
    void setNeedResched(bool v) { _needResched = v; }

    /** Core this task last ran on (-1 if never scheduled). */
    int cpu() const { return _cpu; }
    void setCpu(int c) { _cpu = c; }

    /** Architectural state (saved to the PCB on context switch). */
    RegisterFile &regs() { return _regs; }
    const RegisterFile &regs() const { return _regs; }

    /** Mapped regions (consumed by checkpoint baselines). */
    std::vector<VmArea> &vmAreas() { return _vmAreas; }
    const std::vector<VmArea> &vmAreas() const { return _vmAreas; }

    /** Total mapped bytes. */
    std::uint64_t footprintBytes() const;

    /** Stack + heap bytes (A-CheckPC's selective dump). */
    std::uint64_t stackHeapBytes() const;

    /** Pending signals/softirq work to handle before parking. */
    std::uint32_t pendingWork() const { return _pendingWork; }
    void setPendingWork(std::uint32_t n) { _pendingWork = n; }

  private:
    std::uint32_t _pid;
    std::string _name;
    bool kernelThread;
    TaskState _state = TaskState::Sleeping;
    bool sigPending = false;
    bool _needResched = false;
    int _cpu = -1;
    RegisterFile _regs;
    std::vector<VmArea> _vmAreas;
    std::uint32_t _pendingWork = 0;
};

} // namespace lightpc::kernel

#endif // LIGHTPC_KERNEL_PROCESS_HH
