#include "kernel/process.hh"

namespace lightpc::kernel
{

void
RegisterFile::randomize(Rng &rng)
{
    for (auto &reg : x)
        reg = rng.next();
    pc = rng.next();
    sp = rng.next();
    satp = rng.next();
}

Process::Process(std::uint32_t pid, std::string name,
                 bool kernel_thread)
    : _pid(pid), _name(std::move(name)), kernelThread(kernel_thread)
{
}

std::uint64_t
Process::footprintBytes() const
{
    std::uint64_t total = 0;
    for (const auto &area : _vmAreas)
        total += area.bytes;
    return total;
}

std::uint64_t
Process::stackHeapBytes() const
{
    std::uint64_t total = 0;
    for (const auto &area : _vmAreas) {
        if (area.kind == VmArea::Kind::Stack
            || area.kind == VmArea::Kind::Heap) {
            total += area.bytes;
        }
    }
    return total;
}

} // namespace lightpc::kernel
