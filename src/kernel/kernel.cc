#include "kernel/kernel.hh"

#include "sim/logging.hh"

namespace lightpc::kernel
{

Kernel::Kernel(const KernelParams &params)
    : _params(params), rng(params.seed)
{
    if (_params.cores == 0)
        fatal("Kernel requires at least one core");
    runQueues.resize(_params.cores);
    _devices = DeviceManager::makeDefault(_params.deviceCount,
                                          _params.seed);
    populate();
}

std::unique_ptr<Process>
Kernel::makeUserProcess(const std::string &name)
{
    auto proc = std::make_unique<Process>(nextPid++, name, false);
    // A plausible user address space; sizes feed the checkpoint
    // baselines (SysPC dumps everything, A-CheckPC stack+heap).
    const std::uint64_t kb = 1024;
    const std::uint64_t mb = 1024 * kb;
    proc->vmAreas().push_back(
        {VmArea::Kind::Code, 0x10000, rng.between(512 * kb, 4 * mb)});
    proc->vmAreas().push_back(
        {VmArea::Kind::Data, 0x800000, rng.between(256 * kb, 2 * mb)});
    proc->vmAreas().push_back(
        {VmArea::Kind::Heap, 0x1000000, rng.between(1 * mb, 64 * mb)});
    proc->vmAreas().push_back(
        {VmArea::Kind::Stack, 0x7ff0000,
         rng.between(64 * kb, 512 * kb)});
    proc->regs().randomize(rng);
    // Busy systems carry more pending signals/softirq work that
    // Drive-to-Idle must drain before parking each task.
    proc->setPendingWork(static_cast<std::uint32_t>(
        rng.between(0, _params.busy ? 3 : 1)));
    return proc;
}

std::unique_ptr<Process>
Kernel::makeKernelThread(const std::string &name)
{
    auto proc = std::make_unique<Process>(nextPid++, name, true);
    // Kernel threads only carry their kernel stack.
    proc->vmAreas().push_back(
        {VmArea::Kind::Stack, 0xffff0000, 16 * 1024});
    proc->regs().randomize(rng);
    return proc;
}

void
Kernel::populate()
{
    // init is PID 1 and always present.
    procs.push_back(makeUserProcess("init"));
    procs.back()->setState(TaskState::Sleeping);

    for (std::uint32_t i = 0; i < _params.kernelThreads; ++i) {
        auto proc = makeKernelThread("kthread/" + std::to_string(i));
        // A few kernel threads are always runnable housekeeping.
        if (i < _params.cores) {
            proc->setState(TaskState::Runnable);
            proc->setCpu(static_cast<int>(i % _params.cores));
            runQueues[i % _params.cores].push_back(proc.get());
        } else {
            proc->setState(TaskState::Sleeping);
        }
        procs.push_back(std::move(proc));
    }

    for (std::uint32_t i = 0; i < _params.userProcesses; ++i) {
        auto proc = makeUserProcess("user/" + std::to_string(i));
        const std::uint32_t cpu = i % _params.cores;
        if (_params.busy) {
            // Fully-utilized system: heavy threads occupy every core
            // with more waiting behind them.
            if (i < _params.cores) {
                proc->setState(TaskState::Running);
            } else if (i < _params.cores * 4) {
                proc->setState(TaskState::Runnable);
            } else {
                proc->setState(TaskState::Sleeping);
            }
        } else {
            // Idle system: one interactive shell, everything else
            // asleep.
            proc->setState(i == 0 ? TaskState::Running
                                  : TaskState::Sleeping);
        }
        if (proc->state() != TaskState::Sleeping) {
            proc->setCpu(static_cast<int>(cpu));
            runQueues[cpu].push_back(proc.get());
        }
        procs.push_back(std::move(proc));
    }
}

Process &
Kernel::spawnProcess(const std::string &name, bool kernel_thread,
                     TaskState initial, int cpu)
{
    auto proc = kernel_thread ? makeKernelThread(name)
                              : makeUserProcess(name);
    proc->setState(initial);
    if (initial == TaskState::Running
        || initial == TaskState::Runnable) {
        std::uint32_t target;
        if (cpu >= 0) {
            target = static_cast<std::uint32_t>(cpu) % _params.cores;
        } else {
            target = 0;
            for (std::uint32_t c = 1; c < _params.cores; ++c)
                if (runQueues[c].size() < runQueues[target].size())
                    target = c;
        }
        proc->setCpu(static_cast<int>(target));
        runQueues[target].push_back(proc.get());
    }
    procs.push_back(std::move(proc));
    return *procs.back();
}

bool
Kernel::exitProcess(std::uint32_t pid)
{
    if (pid == 1)
        fatal("init (PID 1) cannot exit");
    for (auto it = procs.begin(); it != procs.end(); ++it) {
        if ((*it)->pid() != pid)
            continue;
        Process *raw = it->get();
        for (auto &queue : runQueues)
            std::erase(queue, raw);
        procs.erase(it);
        return true;
    }
    return false;
}

Process *
Kernel::findProcess(std::uint32_t pid)
{
    for (auto &proc : procs)
        if (proc->pid() == pid)
            return proc.get();
    return nullptr;
}

std::vector<Process *>
Kernel::sleepingProcesses()
{
    std::vector<Process *> out;
    for (auto &proc : procs)
        if (proc->state() == TaskState::Sleeping)
            out.push_back(proc.get());
    return out;
}

std::size_t
Kernel::runnableCount() const
{
    std::size_t n = 0;
    for (const auto &queue : runQueues)
        n += queue.size();
    return n;
}

std::uint64_t
Kernel::systemImageBytes() const
{
    // Kernel text/data/slabs: a fixed 192 MB plus every process's
    // mapped footprint.
    std::uint64_t total = std::uint64_t(192) << 20;
    for (const auto &proc : procs)
        total += proc->footprintBytes();
    return total;
}

void
Kernel::scramble(Rng &scramble_rng)
{
    for (auto &proc : procs)
        proc->regs().randomize(scramble_rng);
    std::uint64_t cookie = scramble_rng.next();
    for (auto &dev : _devices.list())
        dev->setContextCookie(cookie ^= 0x9e3779b97f4a7c15ULL);
}

SystemSnapshot
Kernel::snapshot() const
{
    SystemSnapshot snap;
    snap.entries.reserve(procs.size());
    for (const auto &proc : procs)
        snap.entries.push_back(
            {proc->pid(), proc->regs(), proc->state()});
    for (const auto &dev : _devices.list())
        snap.deviceCookies.push_back(dev->contextCookie());
    return snap;
}

} // namespace lightpc::kernel
