#include "kernel/device.hh"

#include "sim/logging.hh"

namespace lightpc::kernel
{

Device::Device(std::string name, DeviceClass cls, const DpmCosts &costs,
               std::uint64_t context_bytes, std::uint64_t mmio_bytes)
    : _name(std::move(name)),
      _class(cls),
      _costs(costs),
      _contextBytes(context_bytes),
      _mmioBytes(mmio_bytes)
{
}

Device &
DeviceManager::add(std::unique_ptr<Device> device)
{
    dpmList.push_back(std::move(device));
    return *dpmList.back();
}

std::uint64_t
DeviceManager::totalContextBytes() const
{
    std::uint64_t total = 0;
    for (const auto &dev : dpmList)
        total += dev->contextBytes();
    return total;
}

std::uint64_t
DeviceManager::totalMmioBytes() const
{
    std::uint64_t total = 0;
    for (const auto &dev : dpmList)
        total += dev->mmioBytes();
    return total;
}

bool
DeviceManager::allSuspended() const
{
    for (const auto &dev : dpmList)
        if (!dev->suspended())
            return false;
    return true;
}

std::size_t
DeviceManager::suspendedCount() const
{
    std::size_t n = 0;
    for (const auto &dev : dpmList)
        n += dev->suspended() ? 1 : 0;
    return n;
}

namespace
{

struct ClassTemplate
{
    DeviceClass cls;
    const char *prefix;
    double weight;        ///< share of the population
    Tick prepareUs;
    Tick suspendUs;
    Tick noirqUs;
    std::uint64_t contextBytes;
    std::uint64_t mmioBytes;
};

// Costs in microseconds; resume costs mirror suspend costs with a
// small asymmetry applied below. The mix approximates a full default
// driver package: a handful of expensive storage/network drivers and
// a long tail of platform devices.
constexpr ClassTemplate classTemplates[] = {
    {DeviceClass::Storage, "blk", 0.03, 3, 24, 5, 4096, 8192},
    {DeviceClass::Network, "eth", 0.03, 3, 18, 4, 8192, 16384},
    {DeviceClass::Serial, "tty", 0.05, 1, 5, 2, 512, 2048},
    {DeviceClass::Spi, "spi", 0.08, 0, 2, 1, 128, 256},
    {DeviceClass::Gpio, "gpio", 0.08, 0, 2, 1, 64, 256},
    {DeviceClass::Timer, "clk", 0.04, 1, 4, 1, 256, 1024},
    {DeviceClass::Platform, "pdev", 0.69, 1, 6, 2, 256, 1024},
};

DeviceManager
makePopulation(std::size_t count, std::uint64_t seed)
{
    if (count == 0)
        fatal("device population must be nonzero");

    DeviceManager mgr;
    Rng rng(seed);
    std::size_t made = 0;
    for (const auto &tpl : classTemplates) {
        std::size_t n = static_cast<std::size_t>(
            tpl.weight * static_cast<double>(count) + 0.5);
        if (&tpl == &classTemplates[std::size(classTemplates) - 1])
            n = count - made;  // absorb rounding in the tail class
        for (std::size_t i = 0; i < n && made < count; ++i, ++made) {
            // +/-30% jitter on callback costs.
            auto jitter = [&](Tick us) -> Tick {
                if (us == 0)
                    return 0;
                const double f = 0.7 + 0.6 * rng.uniform();
                return static_cast<Tick>(
                    static_cast<double>(us * tickUs) * f);
            };
            DpmCosts costs;
            costs.prepare = jitter(tpl.prepareUs);
            costs.suspend = jitter(tpl.suspendUs);
            costs.suspendNoirq = jitter(tpl.noirqUs);
            // Resume is typically slightly cheaper than quiescing.
            costs.resumeNoirq = jitter(tpl.noirqUs);
            costs.resume = static_cast<Tick>(
                static_cast<double>(jitter(tpl.suspendUs)) * 0.8);
            costs.complete = jitter(tpl.prepareUs);
            mgr.add(std::make_unique<Device>(
                std::string(tpl.prefix) + std::to_string(i), tpl.cls,
                costs, tpl.contextBytes, tpl.mmioBytes));
        }
    }
    return mgr;
}

} // namespace

DeviceManager
DeviceManager::makeDefault(std::size_t count, std::uint64_t seed)
{
    return makePopulation(count, seed);
}

DeviceManager
DeviceManager::makeWorstCase(std::uint64_t seed)
{
    // The Fig. 22 worst case: the maximum kernel dpm_list (730).
    return makePopulation(730, seed);
}

} // namespace lightpc::kernel
