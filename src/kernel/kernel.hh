/**
 * @file
 * The PecOS kernel substrate.
 *
 * Aggregates everything SnG operates on: the process tree (init +
 * kernel threads + user processes), per-core run queues, the dpm
 * device list, and the system-wide persistent flag that
 * distinguishes a power-recovery boot from a cold boot.
 */

#ifndef LIGHTPC_KERNEL_KERNEL_HH
#define LIGHTPC_KERNEL_KERNEL_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "kernel/device.hh"
#include "kernel/process.hh"
#include "sim/rng.hh"

namespace lightpc::kernel
{

/** System population parameters. */
struct KernelParams
{
    std::uint32_t cores = 8;

    /** User processes (prototype busy system: 72). */
    std::uint32_t userProcesses = 72;

    /** Kernel threads (prototype busy system: 48). */
    std::uint32_t kernelThreads = 48;

    /**
     * Busy: every core runs a heavy thread with more queued behind
     * it. Idle: only kernel housekeeping and a shell are runnable.
     */
    bool busy = true;

    /** Drivers registered in dpm_list. */
    std::size_t deviceCount = 300;

    std::uint64_t seed = 11;
};

/** A snapshot of all PCB architectural state, for EP-cut checks. */
struct SystemSnapshot
{
    struct Entry
    {
        std::uint32_t pid;
        RegisterFile regs;
        TaskState state;

        bool operator==(const Entry &other) const = default;
    };

    std::vector<Entry> entries;
    std::vector<std::uint64_t> deviceCookies;

    bool operator==(const SystemSnapshot &other) const = default;
};

/**
 * The simulated kernel.
 */
class Kernel
{
  public:
    explicit Kernel(const KernelParams &params = KernelParams());

    const KernelParams &params() const { return _params; }
    std::uint32_t cores() const { return _params.cores; }

    /** All processes, init first. */
    const std::vector<std::unique_ptr<Process>> &processes() const
    {
        return procs;
    }

    /** Mutable process access. */
    Process &process(std::size_t idx) { return *procs[idx]; }
    std::size_t processCount() const { return procs.size(); }

    /** Run queue of one core (runnable/running tasks). */
    std::vector<Process *> &runQueue(std::uint32_t cpu)
    {
        return runQueues[cpu];
    }

    /** Processes in interruptible sleep (Drive-to-Idle's targets). */
    std::vector<Process *> sleepingProcesses();

    /**
     * Fork/exec: create a process at runtime. Runnable/Running
     * states enqueue it on @p cpu (or the least-loaded core).
     */
    Process &spawnProcess(const std::string &name, bool kernel_thread,
                          TaskState initial, int cpu = -1);

    /**
     * Exit: remove a process (and dequeue it). init (PID 1) cannot
     * exit. @return false when the PID does not exist.
     */
    bool exitProcess(std::uint32_t pid);

    /** Find a process by PID (nullptr when absent). */
    Process *findProcess(std::uint32_t pid);

    /** Tasks currently on any run queue. */
    std::size_t runnableCount() const;

    DeviceManager &devices() { return _devices; }
    const DeviceManager &devices() const { return _devices; }

    /** The system-wide persistent flag set by Drive-to-Idle. */
    bool persistentFlag() const { return _persistentFlag; }
    void setPersistentFlag(bool v) { _persistentFlag = v; }

    /**
     * Approximate bytes a full system image must capture (all
     * process footprints plus kernel text/data) — SysPC's payload.
     */
    std::uint64_t systemImageBytes() const;

    /** Scramble every live PCB (simulates execution progress). */
    void scramble(Rng &rng);

    /** Capture all PCB architectural state + device cookies. */
    SystemSnapshot snapshot() const;

  private:
    void populate();
    std::unique_ptr<Process> makeUserProcess(const std::string &name);
    std::unique_ptr<Process> makeKernelThread(const std::string &name);

    KernelParams _params;
    Rng rng;
    std::uint32_t nextPid = 1;
    std::vector<std::unique_ptr<Process>> procs;
    std::vector<std::vector<Process *>> runQueues;
    DeviceManager _devices;
    bool _persistentFlag = false;
};

} // namespace lightpc::kernel

#endif // LIGHTPC_KERNEL_KERNEL_HH
