/**
 * @file
 * Living with dying PRAM: the OC-PMEM reliability ladder.
 *
 * PRAM devices wear out (1e6-1e9 set/reset cycles) and fail at
 * large granularity. This demo kills devices one by one under live
 * traffic and shows each tier of the PSM's reliability design
 * (Sections V-A and VIII):
 *
 *  1. Healthy: reads served straight from the media.
 *  2. One half-device dead: XCC regenerates every read from the
 *     healthy half + parity in one extra XOR cycle — performance is
 *     barely dented and nothing is lost.
 *  3. Both halves of a group dead, XCC-only build: the error
 *     containment bit raises an MCE; the shipping policy resets
 *     OC-PMEM for a cold boot.
 *  4. Both halves dead, symbol-ECC build (the paper's future-work
 *     tier): a Reed-Solomon erasure decode recovers the line at
 *     extra latency, and the machine keeps running.
 */

#include <iostream>

#include "psm/psm.hh"
#include "psm/symbol_ecc.hh"
#include "sim/rng.hh"
#include "stats/table.hh"

using namespace lightpc;
using namespace lightpc::psm;

namespace
{

struct Phase
{
    std::string what;
    double meanReadNs;
    std::uint64_t corrected;
    std::uint64_t symbolFixes;
    std::uint64_t mces;
};

Phase
drive(Psm &psm, const std::string &what, Tick &t, Rng &rng)
{
    psm.resetStats();
    mem::MemRequest req;
    for (int i = 0; i < 20000; ++i) {
        req.op = rng.chance(0.8) ? mem::MemOp::Read
                                 : mem::MemOp::Write;
        req.addr = rng.below(std::uint64_t(1) << 28) & ~63ull;
        const auto result = psm.access(req, t);
        t = result.completeAt + 200;
        if (result.containment && psm.handleContainment()) {
            // ResetColdBoot wiped the media; in a full system the
            // bootloader would now reinitialize everything.
            break;
        }
    }
    const auto &stats = psm.stats();
    return {what, psm.readLatencyHist().mean() / tickNs,
            stats.correctedReads, stats.symbolCorrections,
            stats.mceCount};
}

} // namespace

int
main()
{
    std::cout << "OC-PMEM reliability ladder under live traffic\n\n";

    Rng rng(42);
    stats::Table table({"phase", "mean read(ns)", "XCC repairs",
                        "symbol repairs", "MCEs"});

    // XCC-only build (the shipping configuration).
    {
        PsmParams params;
        params.wearLeveling = false;
        Psm psm(params);
        Tick t = 0;

        auto healthy = drive(psm, "healthy", t, rng);
        psm.injectFault(0, 0, 0);
        psm.injectFault(2, 1, 1);
        auto degraded =
            drive(psm, "2 half-devices dead (XCC)", t, rng);
        psm.injectFault(0, 0, 1);  // group (0,0) now fully dead
        auto dead = drive(psm, "group dead, XCC only -> MCE", t, rng);

        for (const auto &phase : {healthy, degraded, dead}) {
            table.addRow({phase.what,
                          stats::Table::num(phase.meanReadNs, 1),
                          std::to_string(phase.corrected),
                          std::to_string(phase.symbolFixes),
                          std::to_string(phase.mces)});
        }
        std::cout << "(reset port fired: " << psm.stats().resets
                  << " cold boot" << ")\n";
    }

    // Symbol-ECC build (future-work tier enabled).
    {
        PsmParams params;
        params.wearLeveling = false;
        params.symbolEccFallback = true;
        Psm psm(params);
        psm.injectFault(0, 0, 0);
        psm.injectFault(0, 0, 1);
        Tick t = 0;
        auto survived =
            drive(psm, "group dead, symbol-ECC tier", t, rng);
        table.addRow({survived.what,
                      stats::Table::num(survived.meanReadNs, 1),
                      std::to_string(survived.corrected),
                      std::to_string(survived.symbolFixes),
                      std::to_string(survived.mces)});
    }
    table.print(std::cout);

    // The codec itself, demonstrated directly: stripe a line over
    // 8 devices + 2 parity, kill any two, recover.
    SymbolEcc code(8, 2);
    Rng data_rng(7);
    std::vector<std::uint8_t> lanes(8 * 8);
    for (auto &b : lanes)
        b = static_cast<std::uint8_t>(data_rng.next());
    auto coded = code.encodeLanes(lanes, 8);
    std::vector<bool> erased(10, false);
    erased[2] = erased[7] = true;  // two dead devices
    std::vector<std::uint8_t> recovered;
    const bool ok = code.decodeLanes(coded, 8, erased, recovered);

    std::cout << "\nReed-Solomon stripe over 8+2 devices with 2"
                 " dead: "
              << (ok && recovered == lanes
                      ? "recovered bit-for-bit"
                      : "RECOVERY FAILED")
              << "\n\nThe shipping XCC tier handles any single"
                 " half-device failure per pair at one XOR cycle;"
                 " the symbol tier (Section VIII future work) trades"
                 " decode latency for chipkill-class coverage so a"
                 " fully dead group no longer forces the cold-boot"
                 " MCE path.\n";
    return ok && recovered == lanes ? 0 : 1;
}
