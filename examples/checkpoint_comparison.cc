/**
 * @file
 * Surviving a power failure four ways.
 *
 * Runs the same HPC workload (AMG) under the four persistence
 * strategies the paper compares and walks through what each one
 * costs — during execution, at the power event, and at recovery.
 * A condensed, narrated version of Figs. 19-21.
 */

#include <iostream>
#include <memory>
#include <vector>

#include "mem/timed_mem.hh"
#include "persist/checkpoint.hh"
#include "platform/system.hh"
#include "stats/table.hh"
#include "workload/spec.hh"
#include "workload/synthetic.hh"

using namespace lightpc;
using namespace lightpc::platform;

namespace
{

constexpr std::uint64_t scale = 25000;

struct Outcome
{
    std::string name;
    Tick exec;          ///< extrapolated benchmark execution
    Tick at_power_down; ///< work needed after the failure signal
    Tick at_recovery;   ///< work needed before the benchmark resumes
    bool survives_atx;  ///< power-down work fits the 16 ms budget
};

Tick
full(Tick measured)
{
    return measured * scale;
}

} // namespace

int
main()
{
    const auto &spec = workload::findWorkload("AMG");
    std::cout << "How " << spec.name
              << " survives a power failure, four ways\n\n";

    std::vector<Outcome> outcomes;

    // --- LightPC: orthogonal persistence --------------------------
    {
        SystemConfig config;
        config.kind = PlatformKind::LightPC;
        config.scaleDivisor = scale;
        System system(config);
        const auto run = system.run(spec);
        const auto stop =
            system.sng().stop(system.eventQueue().now());
        const auto go =
            system.sng().resume(stop.offlineDone + tickMs);
        outcomes.push_back({"LightPC (SnG)", full(run.elapsed),
                            stop.totalTicks(), go.totalTicks(),
                            stop.totalTicks() <= 16 * tickMs});
    }

    // --- SysPC: hibernate images ----------------------------------
    {
        SystemConfig config;
        config.kind = PlatformKind::LegacyPC;
        config.scaleDivisor = scale;
        System system(config);
        const auto run = system.run(spec);
        mem::TimedMem pmem(system.memoryPort());
        persist::SysPc syspc(pmem);
        const std::uint64_t image =
            system.kernel().systemImageBytes();
        const Tick t0 = system.eventQueue().now();
        const Tick dump = syspc.dumpImage(t0, image) - t0;
        const Tick load = syspc.loadImage(t0, image) - t0;
        outcomes.push_back({"SysPC (image)", full(run.elapsed), dump,
                            load, dump <= 16 * tickMs});
    }

    // --- A-CheckPC: per-function checkpoints -----------------------
    {
        SystemConfig config;
        config.kind = PlatformKind::LegacyPC;
        config.scaleDivisor = scale;
        Tick plain;
        {
            System probe(config);
            plain = probe.run(spec).elapsed;
        }
        System system(config);
        workload::SyntheticConfig wconfig;
        wconfig.scaleDivisor = scale;
        auto streams = workload::makeStreams(
            spec, wconfig, system.coreCount(), System::workloadBase);
        persist::ACheckPcParams aparams;
        std::vector<std::unique_ptr<persist::ACheckPcStream>> wrapped;
        std::vector<cpu::InstrStream *> raw;
        for (auto &stream : streams) {
            wrapped.push_back(
                std::make_unique<persist::ACheckPcStream>(*stream,
                                                          aparams));
            raw.push_back(wrapped.back().get());
        }
        const auto run = system.runStreams(raw);
        persist::ImageCosts costs;
        mem::TimedMem pmem(system.memoryPort());
        const Tick recovery = costs.coldReboot
            + (pmem.readSpan(0, 0, 256 << 20) - 0);
        // Checkpoint copies are woven through execution; nothing
        // additional is needed at the power event itself.
        outcomes.push_back({"A-CheckPC", full(run.elapsed) - plain
                                * (scale - 1),
                            0, recovery, true});
        // Note: exec here carries the interleaved checkpoint cost.
        outcomes.back().exec = full(run.elapsed);
    }

    // --- S-CheckPC: periodic BLCR dumps ----------------------------
    {
        SystemConfig config;
        config.kind = PlatformKind::LegacyPC;
        config.scaleDivisor = scale;
        System system(config);
        const auto run = system.run(spec);
        const Tick exec_full = full(run.elapsed);
        mem::TimedMem pmem(system.memoryPort());
        persist::SCheckPc blcr(pmem, tickSec);
        const std::uint64_t vm =
            (std::uint64_t(7) << 28) + spec.footprintBytes * 6;
        const Tick one_dump =
            blcr.dump(system.eventQueue().now(), vm)
            - system.eventQueue().now();
        const std::uint64_t dumps = std::max<std::uint64_t>(
            1, exec_full / blcr.period());
        persist::ImageCosts costs;
        const Tick recovery = costs.coldReboot
            + (blcr.restore(0, vm) - 0);
        outcomes.push_back({"S-CheckPC", exec_full + dumps * one_dump,
                            one_dump / 3, recovery, true});
    }

    stats::Table table({"mechanism", "execution(s)",
                        "at power-down", "at recovery",
                        "fits 16ms hold-up?"});
    for (const auto &o : outcomes) {
        auto human = [](Tick t) {
            return t >= tickSec
                ? stats::Table::num(ticksToSec(t), 2) + " s"
                : stats::Table::num(ticksToMs(t), 1) + " ms";
        };
        table.addRow({o.name,
                      stats::Table::num(ticksToSec(o.exec), 2),
                      human(o.at_power_down), human(o.at_recovery),
                      o.survives_atx ? "yes" : "NO - data loss"});
    }
    table.print(std::cout);

    const auto &light = outcomes[0];
    std::cout
        << "\nLightPC executes unencumbered (no checkpoints, no"
           " journals), needs only "
        << ticksToMs(light.at_power_down)
        << " ms of hold-up power to draw the EP-cut, and resumes"
           " every process "
        << ticksToMs(light.at_recovery)
        << " ms after power returns -- from the exact instruction"
           " it stopped at.\n";
    return 0;
}
