/**
 * @file
 * lightpc_cli — command-line driver for the simulator.
 *
 * Usage:
 *   lightpc_cli [options]
 *     --list                      list Table II workloads and exit
 *     --workload <name>           workload to run (default Redis)
 *     --trace <file>              replay an instruction trace
 *                                 instead of a synthetic workload
 *     --platform <name>           LegacyPC | LightPC-B | LightPC
 *     --scale <N>                 downscale divisor (default 18000)
 *     --freq <MHz>                core frequency (default 1600)
 *     --cores <N>                 core count (default 8)
 *     --powerfail                 inject a power failure at the end
 *                                 and run Stop-and-Go
 *     --record <file>             dump the workload's instruction
 *                                 trace to a file and exit
 *
 * Examples:
 *   lightpc_cli --workload mcf --platform LightPC-B
 *   lightpc_cli --workload AMG --powerfail
 *   lightpc_cli --workload gcc --record gcc.trace
 *   lightpc_cli --trace gcc.trace --platform LightPC
 */

#include <cstring>
#include <iostream>
#include <string>

#include "platform/system.hh"
#include "power/psu.hh"
#include "stats/table.hh"
#include "workload/spec.hh"
#include "workload/synthetic.hh"
#include "workload/trace.hh"

using namespace lightpc;
using namespace lightpc::platform;

namespace
{

struct Options
{
    std::string workload = "Redis";
    std::string trace;
    std::string record;
    PlatformKind kind = PlatformKind::LightPC;
    std::uint64_t scale = 18000;
    std::uint64_t freqMhz = 1600;
    std::uint32_t cores = 8;
    bool powerfail = false;
    bool list = false;
};

int
usage(const char *argv0)
{
    std::cerr << "usage: " << argv0
              << " [--list] [--workload <name>] [--trace <file>]"
                 " [--platform LegacyPC|LightPC-B|LightPC]"
                 " [--scale N] [--freq MHz] [--cores N]"
                 " [--powerfail] [--record <file>]\n";
    return 2;
}

bool
parsePlatform(const std::string &name, PlatformKind &kind)
{
    if (name == "LegacyPC")
        kind = PlatformKind::LegacyPC;
    else if (name == "LightPC-B" || name == "LightPCB")
        kind = PlatformKind::LightPCB;
    else if (name == "LightPC")
        kind = PlatformKind::LightPC;
    else
        return false;
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::cerr << arg << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--list")
            opt.list = true;
        else if (arg == "--workload")
            opt.workload = value();
        else if (arg == "--trace")
            opt.trace = value();
        else if (arg == "--record")
            opt.record = value();
        else if (arg == "--platform") {
            if (!parsePlatform(value(), opt.kind))
                return usage(argv[0]);
        } else if (arg == "--scale")
            opt.scale = std::stoull(value());
        else if (arg == "--freq")
            opt.freqMhz = std::stoull(value());
        else if (arg == "--cores")
            opt.cores = static_cast<std::uint32_t>(
                std::stoul(value()));
        else if (arg == "--powerfail")
            opt.powerfail = true;
        else
            return usage(argv[0]);
    }

    if (opt.list) {
        stats::Table table({"workload", "category", "R/W", "D$ read",
                            "D$ write", "threads"});
        for (const auto &spec : workload::tableTwo()) {
            table.addRow({spec.name, categoryName(spec.category),
                          stats::Table::num(spec.rwRatio(), 1),
                          stats::Table::percent(spec.readHitRate, 1),
                          stats::Table::percent(spec.writeHitRate, 1),
                          spec.multithread ? "8" : "1"});
        }
        table.print(std::cout);
        return 0;
    }

    if (!opt.record.empty()) {
        workload::SyntheticConfig wconfig;
        wconfig.scaleDivisor = opt.scale;
        workload::SyntheticStream stream(
            workload::findWorkload(opt.workload), wconfig, 0,
            System::workloadBase);
        const auto n =
            workload::captureTraceFile(opt.record, stream);
        std::cout << "recorded " << n << " instructions of "
                  << opt.workload << " to " << opt.record << "\n";
        return 0;
    }

    SystemConfig config;
    config.kind = opt.kind;
    config.cores = opt.cores;
    config.freqMhz = opt.freqMhz;
    config.scaleDivisor = opt.scale;
    System system(config);

    RunResult result;
    std::unique_ptr<workload::TraceStream> trace;
    if (!opt.trace.empty()) {
        trace = workload::loadTraceFile(opt.trace);
        result = system.runStreams({trace.get()});
        result.workload = opt.trace;
    } else {
        result = system.run(workload::findWorkload(opt.workload));
    }

    stats::Table table({"metric", "value"});
    table.addRow({"workload", result.workload});
    table.addRow({"platform", result.platform});
    table.addRow({"simulated time",
                  stats::Table::num(ticksToMs(result.elapsed), 3)
                      + " ms"});
    table.addRow({"instructions",
                  std::to_string(result.instructions)});
    table.addRow({"aggregate IPC",
                  stats::Table::num(result.ipc, 2)});
    table.addRow({"D$ load hit rate",
                  stats::Table::percent(result.loadHitRate, 1)});
    table.addRow({"D$ store hit rate",
                  stats::Table::percent(result.storeHitRate, 1)});
    table.addRow({"memory reads",
                  std::to_string(result.psmStats.reads)});
    table.addRow({"memory writes",
                  std::to_string(result.psmStats.writes)});
    table.addRow({"mem read latency",
                  stats::Table::num(result.memReadLatencyNs, 1)
                      + " ns"});
    table.addRow({"reconstructed reads",
                  std::to_string(
                      result.psmStats.reconstructedReads)});
    table.addRow({"platform power",
                  stats::Table::num(result.watts, 2) + " W"});
    table.addRow({"energy",
                  stats::Table::num(result.joules * 1e3, 2)
                      + " mJ"});
    table.print(std::cout);

    if (opt.powerfail) {
        std::cout << "\ninjecting power failure...\n";
        const auto stop =
            system.sng().stop(system.eventQueue().now());
        const auto atx = power::PsuModel::atx();
        std::cout << "  Stop " << ticksToMs(stop.totalTicks())
                  << " ms ("
                  << ticksToMs(stop.processStopTicks()) << " process"
                  << " / " << ticksToMs(stop.deviceStopTicks())
                  << " device / " << ticksToMs(stop.offlineTicks())
                  << " offline) vs " << ticksToMs(
                         atx.spec().specHoldup)
                  << " ms budget: "
                  << (stop.totalTicks() <= atx.spec().specHoldup
                          ? "EP-cut committed"
                          : "MISSED")
                  << "\n";
        const auto go =
            system.sng().resume(stop.offlineDone + 50 * tickMs);
        std::cout << "  Go " << ticksToMs(go.totalTicks()) << " ms, "
                  << go.tasksScheduled << " tasks rescheduled, "
                  << go.devicesRevived << " devices revived\n";
    }
    return 0;
}
