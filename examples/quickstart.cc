/**
 * @file
 * Quickstart: build a LightPC platform, run an in-memory database
 * workload on OC-PMEM, pull the plug, and come back.
 *
 * Demonstrates the three headline behaviours:
 *  1. In-memory execution on OC-PMEM at near-DRAM user performance
 *     and a fraction of the power (Figs. 15/18).
 *  2. SnG's Stop producing the EP-cut well inside the PSU hold-up
 *     budget (Fig. 8).
 *  3. Go restoring every process's architectural state from OC-PMEM
 *     after the power cycle — no checkpoints, no journals.
 */

#include <iostream>

#include "platform/system.hh"
#include "power/psu.hh"
#include "sim/rng.hh"
#include "stats/table.hh"
#include "workload/spec.hh"

using namespace lightpc;

int
main()
{
    // --- 1. Build the platform and run a workload on OC-PMEM -----
    platform::SystemConfig config;
    config.kind = platform::PlatformKind::LightPC;
    config.scaleDivisor = 10000;  // quick demo scale
    platform::System lightpc(config);

    const auto &spec = workload::findWorkload("Redis");
    std::cout << "Running " << spec.name << " on "
              << platformName(config.kind) << " (8 cores, OC-PMEM"
              << " working memory)...\n";
    const platform::RunResult run = lightpc.run(spec);

    // The same workload on a DRAM-only LegacyPC, for reference.
    platform::SystemConfig legacy_config = config;
    legacy_config.kind = platform::PlatformKind::LegacyPC;
    platform::System legacy(legacy_config);
    const platform::RunResult legacy_run = legacy.run(spec);

    stats::Table table({"platform", "time(ms)", "IPC", "power(W)",
                        "energy(J)"});
    for (const auto *r : {&legacy_run, &run}) {
        table.addRow({r->platform, stats::Table::num(
                          ticksToMs(r->elapsed), 2),
                      stats::Table::num(r->ipc, 2),
                      stats::Table::num(r->watts, 1),
                      stats::Table::num(r->joules, 2)});
    }
    table.print(std::cout);
    std::cout << "LightPC runs " << stats::Table::percent(
                     static_cast<double>(run.elapsed)
                             / legacy_run.elapsed - 1.0, 1)
              << " slower than DRAM-only while drawing "
              << stats::Table::percent(1.0 - run.watts
                                       / legacy_run.watts, 0)
              << " less power.\n\n";

    // --- 2. Power failure: SnG draws the EP-cut ------------------
    std::cout << "Power event! Stopping the system...\n";
    kernel::Kernel &kern = lightpc.kernel();
    Rng rng(7);
    kern.scramble(rng);  // processes have been computing
    const kernel::SystemSnapshot before = kern.snapshot();

    const Tick power_event = lightpc.eventQueue().now();
    const pecos::StopReport stop = lightpc.sng().stop(power_event);

    const power::PsuModel atx = power::PsuModel::atx();
    std::cout << "  process stop: "
              << ticksToMs(stop.processStopTicks()) << " ms ("
              << stop.tasksParked << " tasks parked)\n"
              << "  device stop : "
              << ticksToMs(stop.deviceStopTicks()) << " ms ("
              << stop.devicesSuspended << " drivers suspended)\n"
              << "  offline     : " << ticksToMs(stop.offlineTicks())
              << " ms (" << stop.dirtyLinesFlushed
              << " dirty lines flushed)\n"
              << "  total Stop  : " << ticksToMs(stop.totalTicks())
              << " ms vs ATX spec hold-up "
              << ticksToMs(atx.spec().specHoldup) << " ms -> "
              << (stop.totalTicks() <= atx.spec().specHoldup
                      ? "EP-cut committed in time"
                      : "MISSED THE BUDGET")
              << "\n\n";

    // --- 3. Power returns: Go re-executes from the EP-cut --------
    std::cout << "Power restored. Going...\n";
    // Everything volatile is gone; corrupt the in-memory register
    // copies to prove Go restores them from OC-PMEM.
    Rng corrupt(999);
    for (std::size_t i = 0; i < kern.processCount(); ++i)
        kern.process(i).regs().randomize(corrupt);

    const pecos::GoReport go =
        lightpc.sng().resume(stop.offlineDone + 100 * tickMs);
    const kernel::SystemSnapshot after = kern.snapshot();

    bool regs_match = true;
    for (std::size_t i = 0; i < before.entries.size(); ++i)
        regs_match = regs_match
            && before.entries[i].regs == after.entries[i].regs
            && before.entries[i].pid == after.entries[i].pid;

    std::cout << "  Go latency  : " << ticksToMs(go.totalTicks())
              << " ms (" << go.devicesRevived << " devices revived, "
              << go.tasksScheduled << " tasks rescheduled)\n"
              << "  architectural state "
              << (regs_match ? "restored bit-for-bit from OC-PMEM"
                             : "MISMATCH - persistence broken!")
              << "\n";
    return regs_match ? 0 : 1;
}
