/**
 * @file
 * Server consolidation: a mixed tenant set on one persistent box.
 *
 * Runs four different single-threaded tenants (an in-memory DB, a
 * cache, a compiler, and a pointer-chasing SPEC workload) together
 * on the 8-core platform — the multi-programmed "server running
 * many things" scenario behind the paper's busy-system experiments —
 * and compares the three memory subsystems. Then the power fails
 * mid-service and SnG checkpoints *all* tenants at once with a
 * single EP-cut: per-process checkpointing machinery (which each
 * tenant would otherwise need separately) never enters the picture.
 */

#include <iostream>
#include <vector>

#include "platform/system.hh"
#include "stats/table.hh"
#include "workload/synthetic.hh"

using namespace lightpc;
using namespace lightpc::platform;

namespace
{

const std::vector<std::string> tenants = {"Redis", "Memcached",
                                          "gcc", "mcf"};

RunResult
runMix(PlatformKind kind)
{
    SystemConfig config;
    config.kind = kind;
    config.scaleDivisor = 18000;
    System system(config);

    workload::SyntheticConfig wconfig;
    wconfig.scaleDivisor = config.scaleDivisor;
    auto streams = workload::makeMixedStreams(
        tenants, wconfig, System::workloadBase);
    std::vector<cpu::InstrStream *> raw;
    for (auto &stream : streams)
        raw.push_back(stream.get());
    return system.runStreams(raw);
}

} // namespace

int
main()
{
    std::cout << "Consolidated tenants: Redis + Memcached + gcc +"
                 " mcf on one box\n\n";

    stats::Table table({"platform", "makespan(ms)", "power(W)",
                        "energy(mJ)", "mem reads", "reconstructed"});
    RunResult legacy, light;
    for (const PlatformKind kind :
         {PlatformKind::LegacyPC, PlatformKind::LightPCB,
          PlatformKind::LightPC}) {
        const auto result = runMix(kind);
        if (kind == PlatformKind::LegacyPC)
            legacy = result;
        if (kind == PlatformKind::LightPC)
            light = result;
        table.addRow(
            {result.platform,
             stats::Table::num(ticksToMs(result.elapsed), 2),
             stats::Table::num(result.watts, 1),
             stats::Table::num(result.joules * 1e3, 1),
             std::to_string(result.psmStats.reads),
             std::to_string(result.psmStats.reconstructedReads)});
    }
    table.print(std::cout);

    std::cout << "\nLightPC serves the whole tenant mix "
              << stats::Table::percent(
                     static_cast<double>(light.elapsed)
                             / legacy.elapsed
                         - 1.0,
                     1)
              << " slower than the DRAM box at "
              << stats::Table::percent(
                     1.0 - light.watts / legacy.watts, 0)
              << " less power.\n\n";

    // One power failure persists every tenant at once.
    SystemConfig config;
    config.kind = PlatformKind::LightPC;
    config.scaleDivisor = 18000;
    System system(config);
    workload::SyntheticConfig wconfig;
    wconfig.scaleDivisor = config.scaleDivisor;
    auto streams = workload::makeMixedStreams(
        tenants, wconfig, System::workloadBase);
    for (std::size_t i = 0; i < streams.size(); ++i)
        system.core(static_cast<std::uint32_t>(i))
            .run(*streams[i], 0);
    system.eventQueue().run(500 * tickUs);
    for (std::uint32_t c = 0; c < system.coreCount(); ++c)
        system.core(c).stop();

    const auto stop = system.sng().stop(system.eventQueue().now());
    const auto go = system.sng().resume(stop.offlineDone + tickMs);
    std::cout << "Power failure mid-service: one EP-cut covered all "
              << tenants.size() << " tenants plus "
              << system.kernel().processCount()
              << " system processes in "
              << ticksToMs(stop.totalTicks()) << " ms; Go brought"
              << " everything back in " << ticksToMs(go.totalTicks())
              << " ms.\nNo tenant needed its own checkpointing,"
                 " journaling, or replay logic.\n";
    return go.coldBoot ? 1 : 0;
}
