/**
 * @file
 * A crash-consistent key-value store on OC-PMEM.
 *
 * This is the "in-memory DB" scenario from the paper's introduction
 * built on the library's genuinely persistent pieces: a hash table
 * whose buckets, entries, and values live in an ObjectPool over the
 * functional OC-PMEM backing store, with every mutation wrapped in
 * an undo-logged transaction.
 *
 * The demo hammers the store with randomized operations, yanks the
 * power at random points (including mid-transaction), recovers, and
 * verifies the store against a shadow std::map oracle: committed
 * operations are all there, the interrupted one cleanly rolled
 * back. It also accounts the simulated time the PMDK-style runtime
 * costs — the overhead LightPC's orthogonal persistence exists to
 * remove.
 */

#include <cstring>
#include <iostream>
#include <map>
#include <optional>
#include <string>

#include "mem/backing_store.hh"
#include "persist/object_pool.hh"
#include "sim/rng.hh"
#include "sim/ticks.hh"

using namespace lightpc;
using persist::ObjectId;
using persist::ObjectPool;

namespace
{

constexpr std::uint32_t bucketCount = 64;
constexpr std::uint64_t poolBytes = 16 << 20;

/** On-pool entry: a singly-linked hash chain node. */
struct Entry
{
    std::uint64_t key = 0;
    std::uint64_t value = 0;
    ObjectId next;
};

/** Root object: the bucket table. */
struct Root
{
    ObjectId buckets[bucketCount];
};

class KvStore
{
  public:
    explicit KvStore(mem::BackingStore &store)
        : pool(store, 0, poolBytes)
    {
        root = pool.root(now, sizeof(Root));
        recovered = pool.openedExisting();
    }

    bool wasRecovered() const { return recovered; }
    Tick elapsed() const { return now; }
    const persist::PoolStats &stats() const { return pool.stats(); }

    void
    put(std::uint64_t key, std::uint64_t value)
    {
        const std::uint32_t b = bucket(key);
        pool.txBegin(now);

        // Update in place when the key exists.
        ObjectId cursor = bucketHead(b);
        while (cursor.valid()) {
            Entry entry = readEntry(cursor);
            if (entry.key == key) {
                pool.txAddRange(now, cursor, 0, sizeof(Entry));
                entry.value = value;
                pool.writeObject(cursor, 0, &entry, sizeof(Entry));
                pool.txCommit(now);
                return;
            }
            cursor = entry.next;
        }

        // Insert at the head of the chain.
        const ObjectId node = pool.allocate(now, sizeof(Entry));
        Entry entry;
        entry.key = key;
        entry.value = value;
        entry.next = bucketHead(b);
        pool.txAddRange(now, node, 0, sizeof(Entry));
        pool.writeObject(node, 0, &entry, sizeof(Entry));
        pool.txAddRange(now, root, bucketOffset(b),
                        sizeof(ObjectId));
        pool.writeObject(root, bucketOffset(b), &node,
                         sizeof(ObjectId));
        pool.txCommit(now);
    }

    std::optional<std::uint64_t>
    get(std::uint64_t key)
    {
        ObjectId cursor = bucketHead(bucket(key));
        while (cursor.valid()) {
            const Entry entry = readEntry(cursor);
            if (entry.key == key)
                return entry.value;
            cursor = entry.next;
        }
        return std::nullopt;
    }

    bool
    erase(std::uint64_t key)
    {
        const std::uint32_t b = bucket(key);
        pool.txBegin(now);
        ObjectId prev;
        ObjectId cursor = bucketHead(b);
        while (cursor.valid()) {
            const Entry entry = readEntry(cursor);
            if (entry.key == key) {
                if (prev.valid()) {
                    pool.txAddRange(now, prev,
                                    offsetof(Entry, next),
                                    sizeof(ObjectId));
                    pool.writeObject(prev, offsetof(Entry, next),
                                     &entry.next, sizeof(ObjectId));
                } else {
                    pool.txAddRange(now, root, bucketOffset(b),
                                    sizeof(ObjectId));
                    pool.writeObject(root, bucketOffset(b),
                                     &entry.next, sizeof(ObjectId));
                }
                pool.txCommit(now);
                Tick t = now;
                pool.free(t, cursor);
                now = t;
                return true;
            }
            prev = cursor;
            cursor = entry.next;
        }
        pool.txAbort(now);
        return false;
    }

    /** Power failure mid-whatever: volatile runtime gone. */
    void crash() { pool.crash(); }

  private:
    std::uint32_t
    bucket(std::uint64_t key) const
    {
        return static_cast<std::uint32_t>(
            (key * 0x9e3779b97f4a7c15ULL) >> 58);
    }

    std::uint64_t
    bucketOffset(std::uint32_t b) const
    {
        return offsetof(Root, buckets) + b * sizeof(ObjectId);
    }

    ObjectId
    bucketHead(std::uint32_t b)
    {
        ObjectId head;
        pool.readObject(root, bucketOffset(b), &head,
                        sizeof(ObjectId));
        return head;
    }

    Entry
    readEntry(ObjectId oid)
    {
        const mem::Addr addr = pool.direct(now, oid);
        (void)addr;  // swizzle cost charged; data via pool reads
        Entry entry;
        pool.readObject(oid, 0, &entry, sizeof(Entry));
        return entry;
    }

    ObjectPool pool;
    ObjectId root;
    Tick now = 0;
    bool recovered = false;
};

} // namespace

int
main()
{
    std::cout << "Persistent KV store over OC-PMEM (libpmemobj-style"
                 " object pool)\n\n";

    mem::BackingStore pmem;  // the OC-PMEM media contents
    std::map<std::uint64_t, std::uint64_t> oracle;
    Rng rng(20260707);

    int crashes = 0;
    int verified = 0;
    std::uint64_t operations = 0;
    Tick runtime_cost = 0;

    for (int round = 0; round < 30; ++round) {
        KvStore store(pmem);
        if (round > 0 && !store.wasRecovered()) {
            std::cout << "pool did not survive the crash!\n";
            return 1;
        }

        // Run a burst of operations; maybe pull the plug partway.
        const int burst = static_cast<int>(rng.between(50, 300));
        const int crash_at = rng.chance(0.7)
            ? static_cast<int>(rng.below(burst)) : -1;
        bool crashed = false;
        for (int i = 0; i < burst; ++i) {
            if (i == crash_at) {
                // The "power failure" strikes between or inside
                // operations; an open transaction simply never
                // commits and recovery rolls it back.
                store.crash();
                crashed = true;
                ++crashes;
                break;
            }
            const std::uint64_t key = rng.below(500);
            if (rng.chance(0.65)) {
                const std::uint64_t value = rng.next();
                store.put(key, value);
                oracle[key] = value;
            } else {
                const bool erased = store.erase(key);
                const bool oracle_erased = oracle.erase(key) > 0;
                if (erased != oracle_erased) {
                    std::cout << "erase mismatch for key " << key
                              << "\n";
                    return 1;
                }
            }
            ++operations;
        }
        runtime_cost += store.elapsed();
        if (crashed)
            continue;

        // Full verification against the oracle.
        KvStore check(pmem);
        for (const auto &[key, value] : oracle) {
            const auto got = check.get(key);
            if (!got || *got != value) {
                std::cout << "key " << key
                          << " lost or corrupted after recovery\n";
                return 1;
            }
            ++verified;
        }
        for (std::uint64_t probe = 0; probe < 500; probe += 7) {
            if (!oracle.count(probe) && check.get(probe)) {
                std::cout << "ghost key " << probe
                          << " appeared after recovery\n";
                return 1;
            }
        }
    }

    std::cout << operations << " operations across 30 sessions, "
              << crashes << " power failures injected, " << verified
              << " key verifications -- no committed data lost, no"
                 " torn updates.\n\n"
              << "PMDK-style runtime cost (simulated): "
              << ticksToMs(runtime_cost) << " ms across "
              << operations << " ops -- the per-access swizzle +"
                 " undo-log + flush overhead that LightPC's"
                 " orthogonal persistence removes (Fig. 4).\n";
    return 0;
}
