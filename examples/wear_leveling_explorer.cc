/**
 * @file
 * Wear-leveling explorer (Sections V-A and VIII).
 *
 * PRAM endures 1e6-1e9 set/reset cycles — an order of magnitude
 * below DRAM — so OC-PMEM's viability as working memory rests on
 * Start-Gap spreading writes. This example drives three write
 * patterns (uniform, hot-spot, and the adversarial single-line
 * hammer from Section VIII) against the PSM with wear leveling on
 * and off, then reports the per-region wear spread and the
 * projected lifetime of the most-worn region.
 */

#include <iostream>
#include <string>

#include "psm/psm.hh"
#include "sim/rng.hh"
#include "stats/table.hh"

using namespace lightpc;
using psm::Psm;
using psm::PsmParams;

namespace
{

constexpr std::uint64_t totalWrites = 400'000;

enum class Pattern
{
    Uniform,
    HotSpot,   ///< 95% of writes in a 256 KB region
    Hammer,    ///< one single line, forever (Section VIII)
};

std::string
patternName(Pattern pattern)
{
    switch (pattern) {
      case Pattern::Uniform:
        return "uniform";
      case Pattern::HotSpot:
        return "hot-spot";
      case Pattern::Hammer:
        return "single-line hammer";
    }
    return "?";
}

struct WearOutcome
{
    std::uint64_t maxWear = 0;
    double spread = 0.0;  ///< max/mean per-region wear
    double lifetime = 0.0;
};

WearOutcome
drive(Pattern pattern, bool leveling)
{
    PsmParams params;
    params.wearLeveling = leveling;
    // Small devices so the wear regions resolve the pattern.
    params.dimm.device.capacityBytes = 64 << 20;
    params.dimm.device.wearRegionBytes = 1 << 20;
    params.dimm.device.enduranceCycles = 10'000'000;
    Psm psm(params);

    Rng rng(99);
    mem::MemRequest req;
    req.op = mem::MemOp::Write;
    Tick t = 0;
    const std::uint64_t span = psm.capacityBytes();
    for (std::uint64_t i = 0; i < totalWrites; ++i) {
        switch (pattern) {
          case Pattern::Uniform:
            req.addr = rng.below(span) & ~63ull;
            break;
          case Pattern::HotSpot:
            req.addr = rng.chance(0.95)
                ? (rng.below(256 << 10) & ~63ull)
                : (rng.below(span) & ~63ull);
            break;
          case Pattern::Hammer:
            req.addr = 4096;
            break;
        }
        t = psm.access(req, t).completeAt + 100;
    }
    psm.flush(t);

    WearOutcome out;
    std::uint64_t total = 0, regions = 0;
    double lifetime = 1.0;
    for (std::uint32_t d = 0; d < params.dimms; ++d) {
        for (std::uint32_t g = 0; g < psm.dimm(d).groupCount(); ++g) {
            const auto &dev = psm.dimm(d).group(g);
            out.maxWear = std::max(out.maxWear, dev.maxRegionWear());
            lifetime = std::min(lifetime, dev.lifetimeRemaining());
            for (const auto w : dev.wearByRegion()) {
                total += w;
                ++regions;
            }
        }
    }
    const double mean =
        static_cast<double>(total) / static_cast<double>(regions);
    out.spread = mean > 0.0 ? out.maxWear / mean : 0.0;
    out.lifetime = lifetime;
    return out;
}

} // namespace

int
main()
{
    std::cout << "Start-Gap wear leveling under three write"
                 " patterns (" << totalWrites << " writes)\n\n";

    stats::Table table({"pattern", "leveling", "max region wear",
                        "max/mean spread", "worst lifetime left"});
    for (const Pattern pattern :
         {Pattern::Uniform, Pattern::HotSpot, Pattern::Hammer}) {
        for (const bool leveling : {false, true}) {
            const WearOutcome out = drive(pattern, leveling);
            table.addRow({patternName(pattern),
                          leveling ? "Start-Gap" : "off",
                          std::to_string(out.maxWear),
                          stats::Table::ratio(out.spread, 1),
                          stats::Table::percent(out.lifetime, 2)});
        }
    }
    table.print(std::cout);

    std::cout
        << "\nStart-Gap rotates one 64 B line every 100 writes and"
           " scatters pages with a static randomizer, so hot spots"
           " smear across the media; the wear-leveler's <64 B"
           " register file is saved into every EP-cut and survives"
           " power cycles (Section VIII).\n"
           "The single-line hammer shows the documented limit: the"
           " gap walks the whole space one line per epoch, so a"
           " pure hammer still concentrates wear -- the paper"
           " leaves periodic randomizer re-seeding to future"
           " work.\n";
    return 0;
}
