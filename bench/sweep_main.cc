/**
 * @file
 * Kernel sweep driver: runs the pooled EventQueue and the legacy
 * (heap + std::function) baseline through identical workloads and
 * emits BENCH_kernel.json with events/sec, ns/event, and
 * allocations/event for every configuration, plus the pooled/legacy
 * speedup per workload.
 *
 * Unlike the google-benchmark micro suite, this driver
 *  - counts heap allocations per event via a global operator
 *    new/delete override with thread-local counters (the pooled
 *    kernel must show zero in steady state),
 *  - interleaves legacy and pooled repetitions so background load
 *    perturbs both sides equally, and reports medians, and
 *  - fans repetitions out over a std::thread pool (-j N).
 *
 * Also emits a campaign_scaling section: the SnG power-cut campaign
 * run at 1/2/4 worker threads through sim::ParallelExecutor, with
 * trials/sec per point and a digest-equality check proving the
 * parallel reduction is bit-identical to the sequential one.
 *
 * Not registered with ctest; scripts/sweep.py and scripts/run_all.sh
 * invoke it.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "fault/campaign.hh"
#include "sim/event_queue.hh"
#include "sim/legacy_event_queue.hh"
#include "sim/parallel.hh"

namespace
{

/**
 * Per-thread allocation counter, bumped by the global operator new
 * overrides below. Thread-local so pool workers measuring different
 * configurations never see each other's allocations.
 */
thread_local std::uint64_t t_newCalls = 0;

} // namespace

void *
operator new(std::size_t size)
{
    ++t_newCalls;
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    ++t_newCalls;
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }

namespace
{

using lightpc::EventQueue;
using lightpc::LegacyEventQueue;
using lightpc::Tick;

/** Keep a value alive without letting the optimizer drop the work. */
inline void
consume(std::uint64_t v)
{
    asm volatile("" : : "r"(v) : "memory");
}

enum class Workload
{
    Churn,          ///< empty callback: schedule + execute
    ChurnCapture32, ///< 32-byte capture: SBO vs one malloc per event
    ScheduleCancel, ///< schedule two, cancel one, execute one
};

const char *
workloadName(Workload w)
{
    switch (w) {
    case Workload::Churn: return "churn";
    case Workload::ChurnCapture32: return "churn_capture32";
    case Workload::ScheduleCancel: return "schedule_cancel";
    }
    return "?";
}

struct Sample
{
    double nsPerEvent = 0.0;
    double allocsPerEvent = 0.0;
};

template <typename Queue>
Sample
runWorkload(Workload w, std::uint64_t events)
{
    Queue eq;
    Tick t = eq.now();
    std::uint64_t sink[4] = {1, 2, 3, 4};

    auto iterate = [&](std::uint64_t n) {
        switch (w) {
        case Workload::Churn:
            for (std::uint64_t i = 0; i < n; ++i) {
                t += 10;
                eq.schedule(t, [] {});
                eq.step();
            }
            break;
        case Workload::ChurnCapture32:
            for (std::uint64_t i = 0; i < n; ++i) {
                t += 10;
                eq.schedule(t, [sink] { consume(sink[0]); });
                eq.step();
            }
            break;
        case Workload::ScheduleCancel:
            for (std::uint64_t i = 0; i < n; ++i) {
                t += 10;
                eq.schedule(t, [] {});
                const auto doomed = eq.schedule(t + 5, [] {});
                eq.deschedule(doomed);
                eq.step();
            }
            break;
        }
    };

    // Warm up: grow slabs/heap capacity outside the measured region
    // so the steady-state allocation count is what models see.
    iterate(std::min<std::uint64_t>(events, 65536));

    const std::uint64_t allocs0 = t_newCalls;
    const auto t0 = std::chrono::steady_clock::now();
    iterate(events);
    const auto t1 = std::chrono::steady_clock::now();
    const std::uint64_t allocs = t_newCalls - allocs0;

    const double ns = std::chrono::duration<double, std::nano>(
        t1 - t0).count();
    return Sample{ns / static_cast<double>(events),
                  static_cast<double>(allocs)
                      / static_cast<double>(events)};
}

struct Task
{
    Workload workload;
    bool legacy;
    std::uint64_t events;
    Sample result;
};

/** Run every task on @p threads workers pulling from a shared index. */
void
runTasks(std::vector<Task> &tasks, unsigned threads)
{
    std::atomic<std::size_t> next{0};
    auto worker = [&] {
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= tasks.size())
                return;
            Task &task = tasks[i];
            task.result = task.legacy
                ? runWorkload<LegacyEventQueue>(task.workload,
                                                task.events)
                : runWorkload<EventQueue>(task.workload, task.events);
        }
    };
    if (threads <= 1) {
        worker();
        return;
    }
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        pool.emplace_back(worker);
    for (auto &th : pool)
        th.join();
}

double
median(std::vector<double> xs)
{
    std::sort(xs.begin(), xs.end());
    const std::size_t n = xs.size();
    return n % 2 ? xs[n / 2] : 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

struct ConfigResult
{
    Workload workload;
    bool legacy;
    double nsPerEvent;
    double allocsPerEvent;
};

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [-j N] [--events N] [--reps N] "
                 "[--campaign-cuts N] [--out FILE]\n",
                 argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned threads = 1;
    std::uint64_t events = 2'000'000;
    unsigned reps = 5;
    std::uint64_t campaignCuts = 64;
    std::string out = "BENCH_kernel.json";

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::exit(usage(argv[0]));
            }
            return argv[++i];
        };
        if (arg == "-j")
            threads = lightpc::sim::parseThreadsArg(value());
        else if (arg == "--events")
            events = std::strtoull(value(), nullptr, 10);
        else if (arg == "--reps")
            reps = static_cast<unsigned>(std::atoi(value()));
        else if (arg == "--campaign-cuts")
            campaignCuts = std::strtoull(value(), nullptr, 10);
        else if (arg == "--out")
            out = value();
        else
            return usage(argv[0]);
    }
    if (threads == 0)
        threads = std::max(1u, std::thread::hardware_concurrency());
    if (events == 0 || reps == 0)
        return usage(argv[0]);

    const Workload workloads[] = {Workload::Churn,
                                  Workload::ChurnCapture32,
                                  Workload::ScheduleCancel};

    // Interleave legacy/pooled within each repetition so transient
    // machine load lands on both kernels alike.
    std::vector<Task> tasks;
    for (unsigned rep = 0; rep < reps; ++rep)
        for (const Workload w : workloads)
            for (const bool legacy : {true, false})
                tasks.push_back(Task{w, legacy, events, {}});

    runTasks(tasks, threads);

    // --- campaign scaling: trials/sec vs worker threads -----------
    //
    // The honest perf claim for the parallel campaign engine: the
    // same seeded SnG cut campaign, at 1/2/4 pool workers, with the
    // digest required to be bit-identical at every point. trials/sec
    // only climbs when the host actually has cores to give
    // (host_threads records that), which is why the numbers are
    // measured, never assumed.
    struct ScalePoint
    {
        unsigned threads;
        double seconds;
        double trialsPerSec;
        std::uint64_t digest;
    };
    std::vector<ScalePoint> scaling;
    bool digestsEqual = true;
    if (campaignCuts > 0) {
        for (const unsigned th : {1u, 2u, 4u}) {
            lightpc::fault::CampaignConfig ccfg;
            ccfg.cuts = campaignCuts;
            ccfg.seed = 1;
            ccfg.threads = th;
            const auto c0 = std::chrono::steady_clock::now();
            const lightpc::fault::CampaignResult r =
                lightpc::fault::runSngCampaign(ccfg);
            const auto c1 = std::chrono::steady_clock::now();
            const double sec =
                std::chrono::duration<double>(c1 - c0).count();
            scaling.push_back(
                {th, sec,
                 static_cast<double>(campaignCuts) / sec, r.digest});
            if (r.digest != scaling.front().digest)
                digestsEqual = false;
        }
        if (!digestsEqual) {
            std::fprintf(stderr,
                         "FATAL: campaign digest diverged across"
                         " thread counts\n");
            return 1;
        }
    }

    std::vector<ConfigResult> configs;
    for (const Workload w : workloads) {
        for (const bool legacy : {true, false}) {
            std::vector<double> ns, allocs;
            for (const Task &task : tasks) {
                if (task.workload != w || task.legacy != legacy)
                    continue;
                ns.push_back(task.result.nsPerEvent);
                allocs.push_back(task.result.allocsPerEvent);
            }
            configs.push_back(
                ConfigResult{w, legacy, median(ns), median(allocs)});
        }
    }

    std::FILE *f = std::fopen(out.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot open %s\n", out.c_str());
        return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"kernel_sweep\",\n");
    std::fprintf(f, "  \"events_per_run\": %llu,\n",
                 static_cast<unsigned long long>(events));
    std::fprintf(f, "  \"repetitions\": %u,\n", reps);
    std::fprintf(f, "  \"threads\": %u,\n", threads);
    std::fprintf(f, "  \"configs\": [\n");
    for (std::size_t i = 0; i < configs.size(); ++i) {
        const ConfigResult &c = configs[i];
        std::fprintf(f,
                     "    {\"kernel\": \"%s\", \"workload\": \"%s\", "
                     "\"ns_per_event\": %.3f, "
                     "\"events_per_sec\": %.0f, "
                     "\"allocs_per_event\": %.4f}%s\n",
                     c.legacy ? "legacy" : "pooled",
                     workloadName(c.workload), c.nsPerEvent,
                     1e9 / c.nsPerEvent, c.allocsPerEvent,
                     i + 1 < configs.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    if (!scaling.empty()) {
        std::fprintf(f, "  \"campaign_scaling\": {\n");
        std::fprintf(f, "    \"campaign\": \"fault_sng\",\n");
        std::fprintf(f, "    \"trials\": %llu,\n",
                     static_cast<unsigned long long>(campaignCuts));
        std::fprintf(f, "    \"host_threads\": %u,\n",
                     lightpc::sim::hardwareThreads());
        std::fprintf(f, "    \"digest\": \"0x%016llx\",\n",
                     static_cast<unsigned long long>(
                         scaling.front().digest));
        std::fprintf(f, "    \"digests_equal\": %s,\n",
                     digestsEqual ? "true" : "false");
        std::fprintf(f, "    \"points\": [\n");
        for (std::size_t i = 0; i < scaling.size(); ++i) {
            const ScalePoint &sp = scaling[i];
            std::fprintf(f,
                         "      {\"threads\": %u,"
                         " \"seconds\": %.3f,"
                         " \"trials_per_sec\": %.1f,"
                         " \"speedup_vs_1\": %.2f}%s\n",
                         sp.threads, sp.seconds, sp.trialsPerSec,
                         sp.trialsPerSec
                             / scaling.front().trialsPerSec,
                         i + 1 < scaling.size() ? "," : "");
        }
        std::fprintf(f, "    ]\n  },\n");
    }
    std::fprintf(f, "  \"speedup\": {");
    bool first = true;
    for (const Workload w : workloads) {
        double legacyNs = 0.0, pooledNs = 0.0;
        for (const ConfigResult &c : configs) {
            if (c.workload != w)
                continue;
            (c.legacy ? legacyNs : pooledNs) = c.nsPerEvent;
        }
        std::fprintf(f, "%s\"%s\": %.2f", first ? "" : ", ",
                     workloadName(w), legacyNs / pooledNs);
        first = false;
    }
    std::fprintf(f, "}\n}\n");
    std::fclose(f);

    for (const ConfigResult &c : configs)
        std::printf("%-7s %-16s %8.2f ns/event %12.0f events/s "
                    "%8.4f allocs/event\n",
                    c.legacy ? "legacy" : "pooled",
                    workloadName(c.workload), c.nsPerEvent,
                    1e9 / c.nsPerEvent, c.allocsPerEvent);
    for (const ScalePoint &sp : scaling)
        std::printf("campaign fault_sng -j%-2u %8.1f trials/s "
                    "(%.2fx vs -j1, digest ok)\n",
                    sp.threads, sp.trialsPerSec,
                    sp.trialsPerSec / scaling.front().trialsPerSec);
    std::printf("wrote %s\n", out.c_str());
    return 0;
}
