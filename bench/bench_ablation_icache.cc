/**
 * @file
 * Ablation — instruction fetch through the 16 KB L1 I$ (Table I).
 *
 * The prototype's cores carry 16 KB instruction caches and fetch
 * their code from OC-PMEM like everything else. The evaluation
 * figures are data-traffic-bound, so the main model leaves fetch
 * off; this ablation turns it on and sweeps the code footprint to
 * show when instruction misses start to matter on PRAM-backed
 * memory — and that LightPC's read path keeps even a thrashing
 * frontend close to the DRAM machine (fetches are reads, the access
 * class PRAM is good at).
 */

#include <iostream>
#include <vector>

#include "bench_common.hh"
#include "platform/system.hh"
#include "stats/table.hh"
#include "workload/spec.hh"
#include "workload/synthetic.hh"

using namespace lightpc;
using namespace lightpc::platform;

namespace
{

struct Point
{
    double ipc;
    double fetchStallShare;
};

Point
run(PlatformKind kind, std::uint64_t code_bytes)
{
    SystemConfig config;
    config.kind = kind;
    config.scaleDivisor = 30000;
    System system(config);

    workload::SyntheticConfig wconfig;
    wconfig.scaleDivisor = config.scaleDivisor;
    const auto &spec = workload::findWorkload("gcc");
    workload::SyntheticStream stream(spec, wconfig, 0,
                                     System::workloadBase);

    // Rebuild core 0 with instruction fetch enabled.
    cpu::CoreParams params;
    params.modelIFetch = true;
    params.branchProbability = 0.08;
    cpu::Core core("icore", system.eventQueue(), params,
                   system.memoryPort());
    core.setCodeRegion(std::uint64_t(3) << 30, code_bytes);
    core.run(stream, 0);
    system.eventQueue().run();

    Point p;
    p.ipc = core.ipc();
    p.fetchStallShare =
        static_cast<double>(core.stats().fetchStallTicks)
        / static_cast<double>(core.localTime());
    return p;
}

} // namespace

int
main()
{
    bench::banner("Ablation", "instruction-fetch footprint sweep"
                              " (16 KB I$)");

    const std::uint64_t footprints[] = {
        8 << 10, 64 << 10, 512 << 10, 4 << 20};
    stats::Table table({"code size", "LightPC IPC", "fetch stalls",
                        "LegacyPC IPC", "fetch stalls"});
    std::vector<Point> light_points, legacy_points;
    for (const std::uint64_t bytes : footprints) {
        const Point light = run(PlatformKind::LightPC, bytes);
        const Point legacy = run(PlatformKind::LegacyPC, bytes);
        light_points.push_back(light);
        legacy_points.push_back(legacy);
        table.addRow(
            {bytes >= (1 << 20)
                 ? std::to_string(bytes >> 20) + "MB"
                 : std::to_string(bytes >> 10) + "KB",
             stats::Table::num(light.ipc, 3),
             stats::Table::percent(light.fetchStallShare, 1),
             stats::Table::num(legacy.ipc, 3),
             stats::Table::percent(legacy.fetchStallShare, 1)});
    }
    table.print(std::cout);
    std::cout << "\n";

    bench::paperRef("Table I: 16 KB I$/D$ per core; code and data"
                    " both live on OC-PMEM");

    bench::check(light_points.front().fetchStallShare < 0.02,
                 "resident code fetches are effectively free");
    bench::check(light_points.back().fetchStallShare
                     > light_points.front().fetchStallShare + 0.05,
                 "thrashing code footprints surface fetch stalls");
    bench::check(light_points.back().ipc
                     > 0.5 * legacy_points.back().ipc,
                 "fetches are reads served at PRAM read speed:"
                 " LightPC stays within 2x of DRAM even while"
                 " thrashing (DRAM's row hits help sequential"
                 " fetch)");
    bench::check(legacy_points.back().fetchStallShare > 0.5,
                 "with no L2, a thrashing frontend dominates on"
                 " either memory — code must fit the 16 KB I$ on"
                 " this class of machine");
    return bench::result();
}
