/**
 * @file
 * Fig. 20 — Persistence-control flush latency vs PSU hold-up time.
 *
 * How long must power stay up after the failure signal for each
 * mechanism to reach a safe state?
 *  - SysPC must finish dumping the entire system image: orders of
 *    magnitude beyond any hold-up time (paper: 172x ATX, 112x
 *    server).
 *  - S-CheckPC must flush the in-flight checkpoint chunk and its
 *    outstanding OC-PMEM writes (paper: 3.5x ATX, 1.4x server) —
 *    it survives only because each *completed* checkpoint is a
 *    committed transaction.
 *  - LightPC's Stop completes within the hold-up time (paper:
 *    12.8 ms, 33%/21% below the ATX/server budgets).
 */

#include <iostream>

#include "bench_common.hh"
#include "kernel/kernel.hh"
#include "mem/backing_store.hh"
#include "mem/timed_mem.hh"
#include "pecos/sng.hh"
#include "persist/checkpoint.hh"
#include "platform/system.hh"
#include "power/psu.hh"
#include "stats/table.hh"

using namespace lightpc;
using namespace lightpc::platform;

int
main()
{
    bench::banner("Fig. 20", "persistence flush latency vs PSU"
                             " hold-up");

    const Tick atx_holdup =
        power::PsuModel::atx().holdupTime(18.9);  // 22 ms measured
    const Tick server_holdup =
        power::PsuModel::dellServer().holdupTime(18.9);  // 55 ms

    // SysPC: the full system image must land on OC-PMEM.
    SystemConfig config;
    config.kind = PlatformKind::LegacyPC;
    Tick syspc_flush;
    {
        System system(config);
        mem::TimedMem pmem(system.memoryPort());
        persist::SysPc syspc(pmem);
        const std::uint64_t image =
            system.kernel().systemImageBytes();
        syspc_flush = syspc.dumpImage(0, image);
    }

    // S-CheckPC: flush the in-flight checkpoint chunk (~tens of MB)
    // to OC-PMEM plus the outstanding buffered writes.
    Tick scheck_flush;
    {
        System system(config);
        mem::TimedMem pmem(system.memoryPort());
        const std::uint64_t chunk = std::uint64_t(128) << 20;
        // Simulate the span exactly: the fence must see the real
        // media backlog, which extrapolated lines would hide.
        pmem.setSampleLimit(chunk / 64);
        scheck_flush =
            pmem.writeSpan(0, System::pmemWindowBase, chunk);
        scheck_flush = system.psm().flush(scheck_flush);
    }

    // LightPC: SnG Stop on a busy system.
    kernel::KernelParams kparams;
    kparams.busy = true;
    kernel::Kernel kern(kparams);
    psm::Psm psm;
    mem::BackingStore store;
    pecos::Sng sng(kern, psm, store, {});
    sng.setFallbackDirtyLines(220);
    const Tick lightpc_flush = sng.stop(0).totalTicks();

    stats::Table table({"mechanism", "flush(ms)", "vs ATX(22ms)",
                        "vs server(55ms)", "safe on power loss?"});
    auto add = [&](const std::string &name, Tick flush) {
        table.addRow(
            {name, stats::Table::num(ticksToMs(flush), 1),
             stats::Table::ratio(static_cast<double>(flush)
                                 / atx_holdup),
             stats::Table::ratio(static_cast<double>(flush)
                                 / server_holdup),
             flush <= atx_holdup ? "yes (within ATX)"
                 : flush <= server_holdup ? "server PSU only"
                                          : "NO"});
    };
    add("SysPC image dump", syspc_flush);
    add("S-CheckPC flush", scheck_flush);
    add("LightPC Stop", lightpc_flush);
    table.print(std::cout);
    std::cout << "\n";

    bench::paperRef("SysPC 172x/112x the ATX/server hold-up;"
                    " S-CheckPC 3.5x/1.4x; LightPC Stop 12.8 ms,"
                    " 33%/21% below the budgets");

    bench::check(syspc_flush > 50 * atx_holdup,
                 "SysPC cannot possibly finish within hold-up");
    bench::check(scheck_flush > atx_holdup,
                 "S-CheckPC's in-flight flush misses the ATX"
                 " budget");
    bench::check(scheck_flush < 4 * server_holdup,
                 "S-CheckPC flush is near the server budget");
    bench::check(lightpc_flush < atx_holdup,
                 "LightPC's Stop fits inside the measured ATX"
                 " hold-up");
    bench::check(lightpc_flush
                     < power::PsuModel::atx().spec().specHoldup,
                 "LightPC's Stop even fits the 16 ms spec");
    return bench::result();
}
