/**
 * @file
 * Fig. 22 — SnG worst-case scalability: cores x cache size against
 * the PSU hold-up budgets.
 *
 * Worst case per the paper: the maximum dpm_list population (730
 * drivers) and every cacheline fully dirty. The paper *estimates*
 * beyond 8 cores from per-component measurements (the FPGA die
 * limits the prototype); our substrate simulates the large machines
 * directly.
 *
 * Paper: a 64-core machine with 40 MB of cache stops within the
 * server PSU's 55 ms; meeting the ATX-documented 16 ms limits the
 * machine to ~32 cores with 16 KB caches.
 */

#include <iostream>
#include <vector>

#include "bench_common.hh"
#include "pecos/scaling.hh"
#include "power/psu.hh"
#include "stats/table.hh"

using namespace lightpc;
using namespace lightpc::pecos;

int
main()
{
    bench::banner("Fig. 22", "SnG worst-case scalability (730"
                             " drivers, fully dirty caches)");

    const Tick atx = power::PsuModel::atx().spec().specHoldup;
    const Tick server = 55 * tickMs;

    const std::uint32_t core_counts[] = {8, 16, 32, 64};
    const std::uint64_t cache_sizes[] = {
        std::uint64_t(16) << 10,   // 16 KB per core class
        std::uint64_t(1) << 20,    // 1 MB total
        std::uint64_t(8) << 20,    // 8 MB total
        std::uint64_t(40) << 20,   // 40 MB total
    };

    stats::Table table({"cores", "cache", "stop(ms)", "ATX 16ms",
                        "server 55ms"});
    ScalingResult big{}, mid{}, small{};
    for (const std::uint32_t cores : core_counts) {
        for (const std::uint64_t cache : cache_sizes) {
            // "16 KB" means 16 KB per core, as in the prototype.
            const std::uint64_t total_cache =
                cache == (std::uint64_t(16) << 10) ? cache * cores
                                                   : cache;
            const auto r = simulateWorstCaseStop(cores, total_cache);
            if (cores == 64 && cache == (std::uint64_t(40) << 20))
                big = r;
            if (cores == 32 && cache == (std::uint64_t(16) << 10))
                mid = r;
            if (cores == 8 && cache == (std::uint64_t(16) << 10))
                small = r;
            table.addRow(
                {std::to_string(cores),
                 cache >= (1 << 20)
                     ? std::to_string(cache >> 20) + "MB"
                     : std::to_string(cache >> 10) + "KB/core",
                 stats::Table::num(ticksToMs(r.report.totalTicks()),
                                   1),
                 r.withinBudget(atx) ? "ok" : "exceeded",
                 r.withinBudget(server) ? "ok" : "exceeded"});
        }
    }
    table.print(std::cout);
    std::cout << "\n";

    bench::paperRef("64 cores + 40 MB stop within the server 55 ms"
                    " but not ATX 16 ms; ATX supports up to ~32"
                    " cores with 16 KB caches");

    bench::check(big.withinBudget(server),
                 "64 cores + 40 MB fit the server budget");
    bench::check(!big.withinBudget(atx),
                 "64 cores + 40 MB exceed the ATX budget");
    bench::check(mid.withinBudget(Tick(17.5 * tickMs)),
                 "32 cores + 16 KB caches sit at the ATX boundary");
    bench::check(small.withinBudget(atx),
                 "the 8-core prototype config fits ATX with room");
    bench::check(big.report.totalTicks() > mid.report.totalTicks()
                     && mid.report.totalTicks()
                         > small.report.totalTicks(),
                 "stop latency grows with cores and cache");
    return bench::result();
}
