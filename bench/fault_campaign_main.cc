/**
 * @file
 * Power-cut fault-injection campaign driver.
 *
 * Sweeps seeded power-cut ticks across every persistence mode (SnG,
 * the three checkpoint baselines, and the SnG-OpLog KV fast path) on
 * both measured PSUs, runs
 * recovery after each cut, and asserts the durability invariant: the
 * machine resumes iff the mechanism's commit record beat the rails
 * (and untorn), otherwise it comes up cold — never a third outcome.
 * Emits BENCH_fault.json with per-phase cut-coverage histograms.
 *
 *   fault_campaign_main [--cuts N] [--seed S] [--threads N|-j N]
 *                       [--out FILE]
 *
 * --cuts is per mode and PSU; the default 100 yields 200 seeded cut
 * ticks per persistence mode. --threads 0 (the default) uses every
 * host thread; the results — digests included — are identical at any
 * thread count.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "fault/campaign.hh"
#include "power/psu.hh"
#include "sim/parallel.hh"
#include "stats/table.hh"

using namespace lightpc;

namespace
{

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--cuts N] [--seed S] [--threads N|-j N]"
                 " [--out FILE]\n",
                 argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t cuts = 100;
    std::uint64_t seed = 1;
    unsigned threads = 0;
    std::string out = "BENCH_fault.json";

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc)
                std::exit(usage(argv[0]));
            return argv[++i];
        };
        if (arg == "--cuts")
            cuts = std::strtoull(value(), nullptr, 10);
        else if (arg == "--seed")
            seed = std::strtoull(value(), nullptr, 10);
        else if (arg == "--threads" || arg == "-j")
            threads = sim::parseThreadsArg(value());
        else if (arg == "--out")
            out = value();
        else
            return usage(argv[0]);
    }
    if (cuts == 0)
        return usage(argv[0]);
    threads = sim::resolveThreads(threads);

    bench::banner("Fault campaign",
                  "seeded power cuts vs the durability invariant");
    bench::paperRef("LightPC survives AC loss at any instant: resume"
                    " iff the EP-cut committed, else cold boot");

    const power::PsuModel psus[] = {power::PsuModel::atx(),
                                    power::PsuModel::dellServer()};
    using Runner = fault::CampaignResult (*)(const fault::CampaignConfig &);
    const Runner runners[] = {
        fault::runSngCampaign,
        fault::runSysPcCampaign,
        fault::runSCheckPcCampaign,
        fault::runACheckPcCampaign,
        fault::runOpLogCampaign,
    };

    std::vector<fault::CampaignResult> results;
    for (const Runner run : runners) {
        for (const power::PsuModel &psu : psus) {
            fault::CampaignConfig config;
            config.cuts = cuts;
            config.seed = seed;
            config.psu = psu;
            config.threads = threads;
            results.push_back(run(config));
        }
    }

    stats::Table table({"mode", "psu", "cuts", "resumes", "cold",
                        "dropped", "torn", "violations"});
    for (const fault::CampaignResult &r : results) {
        table.addRow({r.mode, r.psu, std::to_string(r.cuts),
                      std::to_string(r.resumes),
                      std::to_string(r.coldBoots),
                      std::to_string(r.droppedWrites),
                      std::to_string(r.tornWrites),
                      std::to_string(r.violations)});
    }
    table.print(std::cout);

    std::cout << "\ncut coverage per phase window:\n";
    for (const fault::CampaignResult &r : results) {
        std::cout << "  " << r.mode << "/" << r.psu << ":";
        for (std::size_t p = 0;
             p < static_cast<std::size_t>(fault::CutPhase::Count);
             ++p) {
            const auto phase = static_cast<fault::CutPhase>(p);
            if (r.phaseCount(phase))
                std::cout << " " << fault::cutPhaseName(phase) << "="
                          << r.phaseCount(phase);
        }
        std::cout << "\n";
    }
    for (const fault::CampaignResult &r : results) {
        for (const std::string &note : r.violationNotes)
            std::cout << "  VIOLATION " << note << "\n";
    }

    // The invariant matrix. Also require the sweep to have exercised
    // every reachable window: all three Stop phases for SnG and the
    // mid-dump window for each baseline.
    std::uint64_t violations = 0;
    for (const fault::CampaignResult &r : results) {
        violations += r.violations;
        bench::check(r.violations == 0,
                     r.mode + "/" + r.psu + ": zero invariant"
                     " violations over " + std::to_string(r.cuts)
                     + " cuts");
        bench::check(r.resumes + r.coldBoots == r.cuts,
                     r.mode + "/" + r.psu + ": every cut resolved to"
                     " resume or cold boot");
        if (r.mode == "SnG") {
            using fault::CutPhase;
            bench::check(r.phaseCount(CutPhase::ProcessStop) > 0
                             && r.phaseCount(CutPhase::DeviceStop) > 0
                             && r.phaseCount(CutPhase::EpCut) > 0,
                         r.mode + "/" + r.psu + ": cuts landed in all"
                         " three Stop phases");
        } else if (r.mode == "SnG-OpLog") {
            using fault::CutPhase;
            bench::check(r.phaseCount(CutPhase::MidDump) > 0
                             && r.phaseCount(CutPhase::CommitWindow)
                                    > 0,
                         r.mode + "/" + r.psu + ": cuts landed both"
                         " mid-append and inside a group commit's"
                         " tail store");
        } else {
            bench::check(
                r.phaseCount(fault::CutPhase::MidDump) > 0,
                r.mode + "/" + r.psu + ": cuts landed mid-dump");
        }
    }

    std::FILE *f = std::fopen(out.c_str(), "w");
    if (!f) {
        std::perror(out.c_str());
        return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"fault_campaign\",\n");
    std::fprintf(f, "  \"cuts_per_mode_psu\": %llu,\n",
                 static_cast<unsigned long long>(cuts));
    std::fprintf(f, "  \"seed\": %llu,\n",
                 static_cast<unsigned long long>(seed));
    std::fprintf(f, "  \"threads\": %u,\n", threads);
    std::fprintf(f, "  \"total_violations\": %llu,\n",
                 static_cast<unsigned long long>(violations));
    std::fprintf(f, "  \"campaigns\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
        const fault::CampaignResult &r = results[i];
        std::fprintf(f, "    {\"mode\": \"%s\", \"psu\": \"%s\","
                        " \"cuts\": %llu, \"resumes\": %llu,"
                        " \"cold_boots\": %llu,"
                        " \"dropped_writes\": %llu,"
                        " \"torn_writes\": %llu,"
                        " \"violations\": %llu,\n",
                     r.mode.c_str(), r.psu.c_str(),
                     static_cast<unsigned long long>(r.cuts),
                     static_cast<unsigned long long>(r.resumes),
                     static_cast<unsigned long long>(r.coldBoots),
                     static_cast<unsigned long long>(r.droppedWrites),
                     static_cast<unsigned long long>(r.tornWrites),
                     static_cast<unsigned long long>(r.violations));
        std::fprintf(f, "     \"digest\": \"0x%016llx\",\n",
                     static_cast<unsigned long long>(r.digest));
        std::fprintf(f, "     \"phase_cuts\": {");
        bool first = true;
        for (std::size_t p = 0;
             p < static_cast<std::size_t>(fault::CutPhase::Count);
             ++p) {
            const auto phase = static_cast<fault::CutPhase>(p);
            std::fprintf(f, "%s\"%s\": %llu", first ? "" : ", ",
                         fault::cutPhaseName(phase),
                         static_cast<unsigned long long>(
                             r.phaseCount(phase)));
            first = false;
        }
        std::fprintf(f, "}}%s\n",
                     i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::cout << "\nwrote " << out << "\n";

    return bench::result();
}
