/**
 * @file
 * Fig. 15 — In-memory execution latency: LegacyPC vs LightPC-B vs
 * LightPC across all 17 workloads.
 *
 * Paper headlines: LightPC within ~12% of the DRAM-only LegacyPC on
 * average; LightPC ~2.8x faster than LightPC-B on average (SNAP and
 * astar up to 4.1x, SHA512 least); see EXPERIMENTS.md for the
 * magnitude discussion of the baseline gap.
 */

#include <iostream>
#include <vector>

#include "bench_common.hh"
#include "platform/system.hh"
#include "stats/summary.hh"
#include "stats/table.hh"
#include "workload/spec.hh"

using namespace lightpc;
using namespace lightpc::platform;

namespace
{

RunResult
runOn(PlatformKind kind, const workload::WorkloadSpec &spec)
{
    SystemConfig config;
    config.kind = kind;
    config.scaleDivisor = 18000;
    System system(config);
    return system.run(spec);
}

} // namespace

int
main()
{
    bench::banner("Fig. 15", "in-memory execution latency across"
                             " platforms");

    stats::Table table({"workload", "LegacyPC(Mc)", "LightPC-B",
                        "LightPC", "LightPC/Legacy", "B/LightPC"});
    std::vector<double> vs_legacy, b_vs_light;
    double sha_ratio = 0.0, writey_best = 0.0;
    std::string writey_name;

    for (const auto &spec : workload::tableTwo()) {
        const auto legacy = runOn(PlatformKind::LegacyPC, spec);
        const auto b = runOn(PlatformKind::LightPCB, spec);
        const auto light = runOn(PlatformKind::LightPC, spec);

        const double norm_light =
            static_cast<double>(light.elapsed) / legacy.elapsed;
        const double norm_b =
            static_cast<double>(b.elapsed) / light.elapsed;
        vs_legacy.push_back(norm_light);
        b_vs_light.push_back(norm_b);
        if (spec.name == "SHA512")
            sha_ratio = norm_b;
        if (norm_b > writey_best) {
            writey_best = norm_b;
            writey_name = spec.name;
        }

        table.addRow(
            {spec.name,
             stats::Table::num(
                 static_cast<double>(legacy.cycles) / 1e6, 1),
             stats::Table::num(static_cast<double>(b.cycles) / 1e6,
                               1),
             stats::Table::num(
                 static_cast<double>(light.cycles) / 1e6, 1),
             stats::Table::ratio(norm_light),
             stats::Table::ratio(norm_b)});
    }
    table.print(std::cout);

    const double avg_light = stats::geomean(vs_legacy);
    const double avg_b = stats::geomean(b_vs_light);
    std::cout << "\nLightPC vs LegacyPC (geomean): "
              << stats::Table::ratio(avg_light)
              << "   LightPC-B vs LightPC (geomean): "
              << stats::Table::ratio(avg_b) << "\n"
              << "largest baseline penalty: " << writey_name << " at "
              << stats::Table::ratio(writey_best) << "\n\n";

    bench::paperRef("LightPC only 12% slower than LegacyPC on"
                    " average; LightPC 2.8x faster than LightPC-B"
                    " (up to 4.1x); SHA512 benefits least");

    bench::check(avg_light < 1.25,
                 "LightPC within a modest factor of DRAM-only");
    bench::check(avg_light > 1.0,
                 "OC-PMEM is not magically faster than DRAM");
    bench::check(avg_b > 1.15,
                 "LightPC consistently beats the baseline PSM");
    bench::check(writey_best > 1.5,
                 "write-heavy workloads gain the most from"
                 " non-blocking services");
    bench::check(sha_ratio < avg_b * 1.05,
                 "SHA512 (few writes) gains no more than average");
    return bench::result();
}
