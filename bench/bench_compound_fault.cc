/**
 * @file
 * Compound-failure campaign driver.
 *
 * Runs the seeded compound campaign — cut-during-Stop at every drain
 * sub-phase, cut-during-Go with the double-resume idempotence proof,
 * brownout aborts and capped-backoff baseline retries, >= 3-cut
 * Poisson storms against a single multi-epoch backing store, and
 * op-log torn-tail recovery with a two-copy byte-identity proof — and
 * asserts the extended durability invariant: every failure pattern
 * converges onto the durable EP-cut or a cold boot, never a third
 * outcome. Emits BENCH_compound.json.
 *
 *   bench_compound_fault [--trials N] [--seed S] [--threads N|-j N]
 *                        [--out FILE]
 *
 * --threads 0 (the default) uses every host thread; the campaign
 * digest is identical at any thread count.
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "bench_common.hh"
#include "fault/compound.hh"
#include "sim/parallel.hh"
#include "stats/table.hh"

using namespace lightpc;

namespace
{

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--trials N] [--seed S]"
                 " [--threads N|-j N] [--out FILE]\n",
                 argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t trials = 500;
    std::uint64_t seed = 2026;
    unsigned threads = 0;
    std::string out = "BENCH_compound.json";

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc)
                std::exit(usage(argv[0]));
            return argv[++i];
        };
        if (arg == "--trials")
            trials = std::strtoull(value(), nullptr, 10);
        else if (arg == "--seed")
            seed = std::strtoull(value(), nullptr, 10);
        else if (arg == "--threads" || arg == "-j")
            threads = sim::parseThreadsArg(value());
        else if (arg == "--out")
            out = value();
        else
            return usage(argv[0]);
    }
    if (trials == 0)
        return usage(argv[0]);
    threads = sim::resolveThreads(threads);

    bench::banner("Compound failures",
                  "nested cuts, brownouts, storms, supervised recovery");
    bench::paperRef("full system persistence must hold when the next"
                    " outage lands inside the recovery from the last");

    fault::CompoundConfig config;
    config.trials = trials;
    config.seed = seed;
    config.threads = threads;
    const fault::CompoundResult r = fault::runCompoundCampaign(config);

    stats::Table table({"psu", "trials", "resumes", "cold", "degraded",
                        "retries", "torn_go", "aborts", "violations"});
    table.addRow({r.psu, std::to_string(r.trials),
                  std::to_string(r.resumes),
                  std::to_string(r.coldBoots),
                  std::to_string(r.degradedColdBoots),
                  std::to_string(r.supervisorRetries),
                  std::to_string(r.tornResumes),
                  std::to_string(r.abortedStops),
                  std::to_string(r.violations)});
    table.print(std::cout);

    std::cout << "\ncuts per Stop drain sub-phase:";
    for (std::size_t p = 1; p < r.stopPhaseCuts.size(); ++p)
        std::cout << " "
                  << pecos::stopSubPhaseName(
                         static_cast<pecos::StopSubPhase>(p))
                  << "=" << r.stopPhaseCuts[p];
    std::cout << "\ncuts per Go sub-phase:";
    for (std::size_t p = 1; p < r.goPhaseCuts.size(); ++p)
        std::cout << " "
                  << pecos::goSubPhaseName(
                         static_cast<pecos::GoSubPhase>(p))
                  << "=" << r.goPhaseCuts[p];
    std::cout << "\nstorms: " << r.stormTrials << " trials, "
              << r.stormCutsTotal << " cuts, max epochs on one store "
              << r.maxCutEpochs << ", stale writes rejected "
              << r.staleWritesRejected << "\n";
    std::cout << "op-log: " << r.oplogTrials << " trials, "
              << r.oplogTornTails << " torn tails discarded, "
              << r.oplogRecordsReplayed << " records replayed, "
              << r.oplogReplayChecks << " byte-identity proofs\n";
    for (const std::string &note : r.violationNotes)
        std::cout << "  VIOLATION " << note << "\n";

    // The acceptance matrix.
    bench::check(r.violations == 0,
                 "zero durability/SDC/convergence violations over "
                     + std::to_string(r.trials) + " trials");
    bench::check(r.trials >= 500 || trials < 500,
                 "campaign ran the full default trial count");

    using pecos::StopSubPhase;
    bool all_stop = true;
    for (std::size_t p = 1; p < r.stopPhaseCuts.size(); ++p)
        all_stop = all_stop && r.stopPhaseCuts[p] > 0;
    bench::check(all_stop,
                 "cuts landed in every Stop drain sub-phase");

    using pecos::GoSubPhase;
    bench::check(r.goPhaseCount(GoSubPhase::DeviceRestore) > 0
                     && r.goPhaseCount(GoSubPhase::ProcessThaw) > 0
                     && r.goPhaseCount(GoSubPhase::Complete) > 0,
                 "cuts landed mid context-restore, mid process-thaw,"
                 " and post-convergence");
    bench::check(r.tornResumes > 0,
                 "torn resumes were produced and replayed");
    bench::check(r.idempotenceChecks == r.goCutTrials,
                 "every Go-cut trial ran the double-resume"
                 " idempotence proof");

    bench::check(r.abortedStops > 0
                     && r.abortContinues == r.abortedStops,
                 "brownout aborts resumed in place and survived the"
                 " next persistence cycle");
    bench::check(r.baselineRetries > 0 && r.baselineRecoveries > 0,
                 "baseline dumps retried through the sag with capped"
                 " backoff and recovered");

    bench::check(r.stormTrials > 0 && r.stormCutsTotal
                     >= 3 * r.stormTrials,
                 "every storm carried at least three cuts");
    bench::check(r.maxCutEpochs >= 3,
                 "a single store survived >= 3 durability epochs");

    bench::check(r.oplogTrials > 0
                     && r.oplogReplayChecks == r.oplogTrials,
                 "every op-log trial ran the two-copy byte-identity"
                 " replay proof");
    bench::check(r.oplogTornTails > 0,
                 "op-log cuts produced torn tails that recovery"
                 " discarded");
    bench::check(r.oplogRecordsReplayed > 0,
                 "op-log recoveries replayed committed records");

    // Determinism anchors: the same seed must reproduce the same
    // campaign bit-for-bit, and a single-threaded rerun must match
    // the parallel one exactly (the reduction is canonical-order).
    const fault::CompoundResult again = fault::runCompoundCampaign(config);
    bench::check(again.digest == r.digest,
                 "campaign is deterministic under its seed");
    fault::CompoundConfig seq_config = config;
    seq_config.threads = 1;
    const fault::CompoundResult seq =
        fault::runCompoundCampaign(seq_config);
    bench::check(seq.digest == r.digest,
                 "parallel digest equals sequential digest");

    std::FILE *f = std::fopen(out.c_str(), "w");
    if (!f) {
        std::perror(out.c_str());
        return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"compound_fault\",\n");
    std::fprintf(f, "  \"trials\": %llu,\n",
                 static_cast<unsigned long long>(r.trials));
    std::fprintf(f, "  \"seed\": %llu,\n",
                 static_cast<unsigned long long>(seed));
    std::fprintf(f, "  \"threads\": %u,\n", threads);
    std::fprintf(f, "  \"psu\": \"%s\",\n", r.psu.c_str());
    std::fprintf(f, "  \"scenarios\": {\"stop_cut\": %llu,"
                    " \"go_cut\": %llu, \"brownout\": %llu,"
                    " \"storm\": %llu, \"oplog\": %llu},\n",
                 static_cast<unsigned long long>(r.stopCutTrials),
                 static_cast<unsigned long long>(r.goCutTrials),
                 static_cast<unsigned long long>(r.brownoutTrials),
                 static_cast<unsigned long long>(r.stormTrials),
                 static_cast<unsigned long long>(r.oplogTrials));
    std::fprintf(f, "  \"stop_phase_cuts\": {");
    for (std::size_t p = 1; p < r.stopPhaseCuts.size(); ++p)
        std::fprintf(f, "%s\"%s\": %llu", p == 1 ? "" : ", ",
                     pecos::stopSubPhaseName(
                         static_cast<pecos::StopSubPhase>(p)),
                     static_cast<unsigned long long>(
                         r.stopPhaseCuts[p]));
    std::fprintf(f, "},\n  \"go_phase_cuts\": {");
    for (std::size_t p = 1; p < r.goPhaseCuts.size(); ++p)
        std::fprintf(f, "%s\"%s\": %llu", p == 1 ? "" : ", ",
                     pecos::goSubPhaseName(
                         static_cast<pecos::GoSubPhase>(p)),
                     static_cast<unsigned long long>(
                         r.goPhaseCuts[p]));
    std::fprintf(f, "},\n");
    std::fprintf(f, "  \"resumes\": %llu,\n  \"cold_boots\": %llu,\n"
                    "  \"degraded_cold_boots\": %llu,\n"
                    "  \"supervisor_retries\": %llu,\n"
                    "  \"livelocks\": %llu,\n",
                 static_cast<unsigned long long>(r.resumes),
                 static_cast<unsigned long long>(r.coldBoots),
                 static_cast<unsigned long long>(r.degradedColdBoots),
                 static_cast<unsigned long long>(r.supervisorRetries),
                 static_cast<unsigned long long>(r.livelocks));
    std::fprintf(f, "  \"aborted_stops\": %llu,\n"
                    "  \"abort_continues\": %llu,\n"
                    "  \"baseline_retries\": %llu,\n"
                    "  \"baseline_recoveries\": %llu,\n",
                 static_cast<unsigned long long>(r.abortedStops),
                 static_cast<unsigned long long>(r.abortContinues),
                 static_cast<unsigned long long>(r.baselineRetries),
                 static_cast<unsigned long long>(r.baselineRecoveries));
    std::fprintf(f, "  \"torn_resumes\": %llu,\n"
                    "  \"idempotence_checks\": %llu,\n",
                 static_cast<unsigned long long>(r.tornResumes),
                 static_cast<unsigned long long>(r.idempotenceChecks));
    std::fprintf(f, "  \"oplog_torn_tails\": %llu,\n"
                    "  \"oplog_replay_checks\": %llu,\n"
                    "  \"oplog_records_replayed\": %llu,\n",
                 static_cast<unsigned long long>(r.oplogTornTails),
                 static_cast<unsigned long long>(r.oplogReplayChecks),
                 static_cast<unsigned long long>(
                     r.oplogRecordsReplayed));
    std::fprintf(f, "  \"storm_cuts\": %llu,\n"
                    "  \"max_cut_epochs\": %llu,\n"
                    "  \"stale_writes_rejected\": %llu,\n",
                 static_cast<unsigned long long>(r.stormCutsTotal),
                 static_cast<unsigned long long>(r.maxCutEpochs),
                 static_cast<unsigned long long>(
                     r.staleWritesRejected));
    std::fprintf(f, "  \"dropped_writes\": %llu,\n"
                    "  \"torn_writes\": %llu,\n"
                    "  \"violations\": %llu,\n",
                 static_cast<unsigned long long>(r.droppedWrites),
                 static_cast<unsigned long long>(r.tornWrites),
                 static_cast<unsigned long long>(r.violations));
    std::fprintf(f, "  \"digest\": \"0x%016llx\"\n}\n",
                 static_cast<unsigned long long>(r.digest));
    std::fclose(f);
    std::cout << "\nwrote " << out << "\n";

    return bench::result();
}
