/**
 * @file
 * Ablation (Section VII) — consecutive power failures.
 *
 * WSP-style flash-backed persistence needs its ultracapacitors
 * recharged (~10 s, comparable to its dump time) before it can
 * survive the *next* failure; a storm of outages inside the
 * recharge window loses state. LightPC's Stop draws only on the
 * PSU's hold-up energy, so back-to-back failures are routine: each
 * cycle commits a fresh EP-cut and Go verifies the architectural
 * state is intact.
 */

#include <iostream>

#include "bench_common.hh"
#include "kernel/kernel.hh"
#include "mem/backing_store.hh"
#include "pecos/sng.hh"
#include "psm/psm.hh"
#include "sim/rng.hh"
#include "stats/table.hh"

using namespace lightpc;

int
main()
{
    bench::banner("Ablation", "consecutive power failures (outage"
                              " storm)");

    // Outage storm: failures arrive 200 ms to 3 s apart — far
    // inside a WSP ultracapacitor recharge window.
    constexpr int storm_failures = 12;
    constexpr Tick wsp_recharge = 10 * tickSec;

    kernel::KernelParams kparams;
    kparams.busy = true;
    kernel::Kernel kern(kparams);
    psm::Psm psm;
    mem::BackingStore pmem;
    pecos::Sng sng(kern, psm, pmem, {});
    sng.setFallbackDirtyLines(200);

    Rng rng(2206);
    Tick t = 0;
    int survived = 0;
    int wsp_survived = 0;
    Tick wsp_ready_at = 0;
    Tick worst_stop = 0;

    for (int failure = 0; failure < storm_failures; ++failure) {
        // The system computes between outages...
        const Tick gap = 200 * tickMs + rng.below(2800 * tickMs);
        t += gap;
        kern.scramble(rng);
        const auto before = kern.snapshot();

        // ...then the power fails.
        const auto stop = sng.stop(t, 16 * tickMs);
        worst_stop = std::max(worst_stop, stop.totalTicks());
        const bool committed = !stop.commitFailed;

        // WSP only survives if its capacitors finished recharging.
        if (t >= wsp_ready_at)
            ++wsp_survived;
        wsp_ready_at = t + wsp_recharge;

        // Power returns after a short outage.
        t = stop.offlineDone + 50 * tickMs + rng.below(tickSec);
        const auto go = sng.resume(t);
        t = go.done;

        if (committed && !go.coldBoot
            && kern.snapshot().entries.size()
                == before.entries.size()) {
            bool intact = true;
            const auto after = kern.snapshot();
            for (std::size_t i = 0; i < before.entries.size(); ++i)
                intact = intact
                    && before.entries[i].regs
                        == after.entries[i].regs;
            if (intact)
                ++survived;
        }
    }

    stats::Table table({"mechanism", "failures", "survived",
                        "worst power-down work"});
    table.addRow({"LightPC (SnG)", std::to_string(storm_failures),
                  std::to_string(survived),
                  stats::Table::num(ticksToMs(worst_stop), 1)
                      + " ms"});
    table.addRow({"WSP (flash + ultracaps)",
                  std::to_string(storm_failures),
                  std::to_string(wsp_survived),
                  "10000 ms dump + 10 s recharge"});
    table.print(std::cout);
    std::cout << "\n";

    bench::paperRef("Section VII: WSP's persistence 'can be crashed"
                    " if there are continuous power failures' within"
                    " its ~10 s charge window; LightPC needs only"
                    " the PSU hold-up energy per cut");

    bench::check(survived == storm_failures,
                 "LightPC survives every failure in the storm with"
                 " state intact");
    bench::check(wsp_survived < storm_failures,
                 "the WSP recharge window drops failures arriving"
                 " back to back");
    bench::check(worst_stop <= 16 * tickMs,
                 "every Stop in the storm met the 16 ms budget");
    return bench::result();
}
