/**
 * @file
 * Fig. 8 — PSU hold-up time and SnG offlining speed.
 *
 * (a) Measured hold-up times of a standard ATX PSU and a server PSU
 *     under busy and idle load, against the 16 ms the ATX
 *     specification documents.
 * (b) SnG Stop latency decomposed into process stop, device stop,
 *     and offline, for a busy (120-process, full driver set) and an
 *     idle system.
 *
 * Paper: ATX 22 ms / server 55 ms measured busy; SnG total
 * 8.6-10.5 ms (46% / 34% under the 16 ms worst case), split roughly
 * 12% / 38% / 50%.
 */

#include <iostream>

#include "bench_common.hh"
#include "kernel/kernel.hh"
#include "mem/backing_store.hh"
#include "pecos/sng.hh"
#include "power/psu.hh"
#include "psm/psm.hh"
#include "stats/table.hh"

using namespace lightpc;

namespace
{

pecos::StopReport
stopSystem(bool busy)
{
    kernel::KernelParams params;
    params.busy = busy;
    kernel::Kernel kern(params);
    psm::Psm psm;
    mem::BackingStore pmem;
    pecos::Sng sng(kern, psm, pmem, {});
    // Dirty-cache assumption: busy cores have most of their 16 KB
    // D$ dirty, idle ones a fraction.
    sng.setFallbackDirtyLines(busy ? 220 : 60);
    return sng.stop(0);
}

} // namespace

int
main()
{
    bench::banner("Fig. 8", "PSU hold-up time and SnG offlining");

    // (a) hold-up times.
    const power::PsuModel atx = power::PsuModel::atx();
    const power::PsuModel server = power::PsuModel::dellServer();
    const double busy_watts = 18.9;  // fully-utilized prototype
    const double idle_watts = 12.5;

    stats::Table holdup({"PSU", "busy(ms)", "idle(ms)", "spec(ms)"});
    for (const auto *psu : {&atx, &server}) {
        holdup.addRow(
            {psu->spec().name,
             stats::Table::num(ticksToMs(psu->holdupTime(busy_watts)),
                               1),
             stats::Table::num(ticksToMs(psu->holdupTime(idle_watts)),
                               1),
             stats::Table::num(ticksToMs(psu->spec().specHoldup), 0)});
    }
    std::cout << "(a) power hold-up time\n";
    holdup.print(std::cout);

    // (b) SnG latency decomposition.
    const pecos::StopReport busy = stopSystem(true);
    const pecos::StopReport idle = stopSystem(false);

    stats::Table sng({"system", "process(ms)", "device(ms)",
                      "offline(ms)", "total(ms)", "share"});
    for (const auto &[name, report] :
         {std::pair<const char *, const pecos::StopReport &>{
              "busy", busy},
          {"idle", idle}}) {
        const double total = ticksToMs(report.totalTicks());
        sng.addRow(
            {name,
             stats::Table::num(ticksToMs(report.processStopTicks()),
                               2),
             stats::Table::num(ticksToMs(report.deviceStopTicks()), 2),
             stats::Table::num(ticksToMs(report.offlineTicks()), 2),
             stats::Table::num(total, 2),
             stats::Table::percent(
                 static_cast<double>(report.processStopTicks())
                     / report.totalTicks(),
                 0) + "/"
                 + stats::Table::percent(
                       static_cast<double>(report.deviceStopTicks())
                           / report.totalTicks(),
                       0)
                 + "/"
                 + stats::Table::percent(
                       static_cast<double>(report.offlineTicks())
                           / report.totalTicks(),
                       0)});
    }
    std::cout << "\n(b) SnG Stop latency decomposition\n";
    sng.print(std::cout);
    std::cout << "\n";

    bench::paperRef("ATX 22 ms / server 55 ms busy hold-up; SnG"
                    " total 8.6-10.5 ms (12%/38%/50% split), under"
                    " the 16 ms ATX spec worst case");

    bench::check(
        ticksToMs(atx.holdupTime(busy_watts)) > 16.0,
        "measured ATX hold-up exceeds the documented 16 ms");
    bench::check(
        atx.holdupTime(idle_watts) > atx.holdupTime(busy_watts),
        "idle load extends the hold-up time");
    bench::check(busy.totalTicks() <= atx.spec().specHoldup,
                 "busy SnG Stop fits the 16 ms ATX spec budget");
    bench::check(idle.totalTicks() < busy.totalTicks(),
                 "idle Stop is faster than busy Stop");
    bench::check(busy.totalTicks() >= Tick(8.0 * tickMs)
                     && busy.totalTicks() <= Tick(11.0 * tickMs),
                 "busy Stop lands in the paper's 8.6-10.5 ms band");
    const double offline_share =
        static_cast<double>(busy.offlineTicks()) / busy.totalTicks();
    bench::check(offline_share > 0.38 && offline_share < 0.62,
                 "offline dominates the decomposition (~50%)");
    return bench::result();
}
