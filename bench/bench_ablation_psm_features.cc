/**
 * @file
 * Ablation — factor analysis of the PSM's conflict-management
 * features (Section V-A).
 *
 * The gap between LightPC-B and LightPC comes from two mechanisms
 * layered on the same hardware:
 *   1. the row buffer + early-return writes (writes stop occupying
 *      the issuer for the full cooling window), and
 *   2. XCC read reconstruction (reads stop queueing behind writes
 *      that are already cooling).
 * This bench enables them one at a time and attributes the speedup.
 */

#include <iostream>
#include <vector>

#include "bench_common.hh"
#include "platform/system.hh"
#include "stats/summary.hh"
#include "stats/table.hh"
#include "workload/spec.hh"

using namespace lightpc;
using namespace lightpc::platform;

namespace
{

RunResult
runConfig(bool early_return, bool reconstruction,
          const workload::WorkloadSpec &spec)
{
    SystemConfig config;
    config.kind = PlatformKind::LightPC;
    config.scaleDivisor = 15000;
    psm::PsmParams params =
        psmParamsFor(PlatformKind::LightPC, config.pmemDimms);
    params.earlyReturnWrites = early_return;
    params.eccReconstruction = reconstruction;
    config.psmParams = params;
    System system(config);
    return system.run(spec);
}

} // namespace

int
main()
{
    bench::banner("Ablation", "PSM feature factor analysis:"
                              " early-return writes and XCC"
                              " reconstruction");

    const char *names[] = {"SNAP", "KeyDB", "bzip2", "wrf",
                           "Memcached"};
    stats::Table table({"workload", "baseline(Mc)", "+early-return",
                        "+reconstruction(full)", "ER share"});
    std::vector<double> er_gain, full_gain;

    for (const char *name : names) {
        const auto &spec = workload::findWorkload(name);
        const auto base = runConfig(false, false, spec);
        const auto early = runConfig(true, false, spec);
        const auto full = runConfig(true, true, spec);

        const double base_c = static_cast<double>(base.cycles);
        const double early_c = static_cast<double>(early.cycles);
        const double full_c = static_cast<double>(full.cycles);
        er_gain.push_back(base_c / early_c);
        full_gain.push_back(base_c / full_c);
        const double er_share = (base_c - early_c)
            / std::max(base_c - full_c, 1.0);

        table.addRow({name, stats::Table::num(base_c / 1e6, 1),
                      stats::Table::ratio(base_c / early_c),
                      stats::Table::ratio(base_c / full_c),
                      stats::Table::percent(er_share, 0)});
    }
    table.print(std::cout);

    std::cout << "\nspeedup over the conventional-controller"
                 " baseline (geomean): early-return "
              << stats::Table::ratio(stats::geomean(er_gain))
              << ", full PSM "
              << stats::Table::ratio(stats::geomean(full_gain))
              << "\n\n";

    bench::paperRef("Section V-A: early-return tolerates write"
                    " latency; read-after-writes make early-return"
                    " 'mostly useless' without the ECC"
                    " reconstruction that completes the"
                    " non-blocking design");

    bench::check(stats::geomean(er_gain) < 1.15,
                 "early-return alone is 'mostly useless': reads"
                 " still queue behind the deferred drains");
    bench::check(stats::geomean(full_gain)
                     > stats::geomean(er_gain) + 0.1,
                 "reconstruction is what unlocks the non-blocking"
                 " design");
    bool monotone = true;
    for (std::size_t i = 0; i < er_gain.size(); ++i)
        monotone = monotone && full_gain[i] >= er_gain[i] - 0.02;
    bench::check(monotone,
                 "the full PSM never loses to early-return alone");
    return bench::result();
}
