/**
 * @file
 * Ablation (Section VII related work) — why the EP-cut matters:
 * SnG vs eADR-style flush-on-power-event vs WSP-style flush-on-fail.
 *
 *  - eADR flushes the cached data when the power signal triggers but
 *    exercises no control over the system: cores keep executing, so
 *    cachelines dirty *during* the flush are lost, and no
 *    process/device context is captured — recovery is a cold boot.
 *  - WSP (whole-system persistence) dumps caches + DRAM to flash
 *    from DIMM-side controllers on ultracapacitors — up to ~10 s,
 *    and a consecutive failure during the capacitor recharge window
 *    is fatal.
 *  - SnG stops processes, suspends devices, and commits the EP-cut
 *    inside the PSU hold-up time; recovery resumes every process.
 */

#include <iostream>

#include "bench_common.hh"
#include "persist/checkpoint.hh"
#include "platform/system.hh"
#include "stats/table.hh"
#include "workload/spec.hh"
#include "workload/synthetic.hh"

using namespace lightpc;
using namespace lightpc::platform;

int
main()
{
    bench::banner("Ablation", "SnG vs eADR-style flush vs WSP"
                              " flush-on-fail");

    const auto &spec = workload::findWorkload("Memcached");
    SystemConfig config;
    config.kind = PlatformKind::LightPC;
    config.scaleDivisor = 3000;

    // --- eADR: flush only, no EP-cut ------------------------------
    Tick eadr_flush;
    std::uint64_t eadr_lost_lines;
    bool eadr_commit;
    {
        System system(config);
        workload::SyntheticConfig wconfig;
        wconfig.scaleDivisor = config.scaleDivisor;
        auto streams = workload::makeStreams(
            spec, wconfig, system.coreCount(), System::workloadBase);
        for (std::size_t i = 0; i < streams.size(); ++i)
            system.core(static_cast<std::uint32_t>(i))
                .run(*streams[i], 0);
        system.eventQueue().run(tickMs / 2);

        // Power signal: flush every cache... but nothing stops the
        // cores, which keep dirtying lines while the flush runs.
        const Tick t0 = system.eventQueue().now();
        Tick t = t0;
        for (std::uint32_t c = 0; c < system.coreCount(); ++c)
            t = system.core(c).dcache().flushAll(t);
        t = system.psm().flush(t);
        eadr_flush = t - t0;

        // The cores were still running during [t0, t]: whatever
        // they dirtied in that window dies with the rails.
        system.eventQueue().run(t);
        std::uint64_t dirty_after = 0;
        for (std::uint32_t c = 0; c < system.coreCount(); ++c)
            dirty_after += system.core(c).dcache().dirtyLines();
        eadr_lost_lines = dirty_after;
        eadr_commit = system.sng().hasCommit();
    }

    // --- SnG: the full EP-cut --------------------------------------
    Tick sng_stop, sng_recovery;
    std::uint64_t sng_lost_lines;
    bool sng_commit;
    {
        System system(config);
        workload::SyntheticConfig wconfig;
        wconfig.scaleDivisor = config.scaleDivisor;
        auto streams = workload::makeStreams(
            spec, wconfig, system.coreCount(), System::workloadBase);
        for (std::size_t i = 0; i < streams.size(); ++i)
            system.core(static_cast<std::uint32_t>(i))
                .run(*streams[i], 0);
        system.eventQueue().run(tickMs / 2);

        for (std::uint32_t c = 0; c < system.coreCount(); ++c)
            system.core(c).stop();
        const auto stop =
            system.sng().stop(system.eventQueue().now());
        sng_stop = stop.totalTicks();
        std::uint64_t dirty_after = 0;
        for (std::uint32_t c = 0; c < system.coreCount(); ++c)
            dirty_after += system.core(c).dcache().dirtyLines();
        sng_lost_lines = dirty_after;
        sng_commit = system.sng().hasCommit();
        const auto go =
            system.sng().resume(stop.offlineDone + tickMs);
        sng_recovery = go.totalTicks();
    }

    // --- WSP: flash-backed flush-on-fail (Section VII numbers) ----
    const Tick wsp_dump = 10 * tickSec;   // "around 10 seconds"
    const Tick wsp_recharge = 10 * tickSec;

    const persist::ImageCosts costs;
    stats::Table table({"mechanism", "power-down work", "state",
                        "lost dirty lines", "recovery"});
    table.addRow({"eADR flush",
                  stats::Table::num(ticksToMs(eadr_flush), 2) + " ms",
                  eadr_commit ? "EP-cut" : "no EP-cut",
                  std::to_string(eadr_lost_lines),
                  stats::Table::num(ticksToSec(costs.coldReboot), 1)
                      + " s cold boot"});
    table.addRow({"WSP flash dump",
                  stats::Table::num(ticksToSec(wsp_dump), 0) + " s",
                  "memory image",
                  "0 (if caps survive)",
                  stats::Table::num(ticksToSec(wsp_recharge), 0)
                      + " s cap recharge"});
    table.addRow({"SnG (LightPC)",
                  stats::Table::num(ticksToMs(sng_stop), 2) + " ms",
                  sng_commit ? "EP-cut committed" : "no EP-cut",
                  std::to_string(sng_lost_lines),
                  stats::Table::num(ticksToMs(sng_recovery), 2)
                      + " ms Go"});
    table.print(std::cout);
    std::cout << "\n";

    bench::paperRef("eADR lacks control of consistent system states"
                    " (cachelines change while flushing, no EP-cut);"
                    " WSP takes ~10 s from DIMM-side controllers and"
                    " dies on consecutive failures during recharge");

    bench::check(eadr_flush < sng_stop,
                 "a bare flush is cheaper than the full EP-cut...");
    bench::check(eadr_lost_lines > 0,
                 "...but still-running cores dirty lines during the"
                 " eADR flush: data loss");
    bench::check(!eadr_commit && sng_commit,
                 "only SnG leaves a committed EP-cut to resume"
                 " from");
    bench::check(sng_lost_lines == 0,
                 "Drive-to-Idle makes the environment immutable"
                 " before the dump");
    bench::check(sng_recovery < costs.coldReboot / 50,
                 "Go resumes orders of magnitude faster than the"
                 " cold boot eADR needs");
    return bench::result();
}
