/**
 * @file
 * Fig. 14 / Table I sidebar — CPU stall trend vs core frequency.
 *
 * The prototype runs at 400 MHz (FPGA) while the RTL closes timing
 * at 1.6 GHz (ASIC); the paper argues the memory-stall *trend* is
 * preserved across frequency by scaling a Xeon from 0.8 to 1.8 GHz
 * on two memory-intensive applications. We sweep the simulated core
 * frequency and report the memory-stall share of execution time.
 */

#include <iostream>
#include <vector>

#include "bench_common.hh"
#include "platform/system.hh"
#include "stats/table.hh"
#include "workload/spec.hh"

using namespace lightpc;
using namespace lightpc::platform;

namespace
{

double
stallShare(const std::string &workload, std::uint64_t mhz)
{
    SystemConfig config;
    config.kind = PlatformKind::LightPC;
    config.freqMhz = mhz;
    config.scaleDivisor = 30000;
    System system(config);
    const auto result =
        system.run(workload::findWorkload(workload));
    const double denom = static_cast<double>(result.elapsed)
        * system.coreCount();
    return static_cast<double>(result.coreTotals.loadStallTicks
                               + result.coreTotals.storeStallTicks)
        / denom;
}

} // namespace

int
main()
{
    bench::banner("Fig. 14", "memory-stall share vs core frequency");

    const std::vector<std::uint64_t> freqs = {400, 800, 1200, 1600,
                                              1800};
    const std::vector<std::string> apps = {"Redis", "Memcached"};

    stats::Table table({"freq(MHz)", "Redis stall", "Memcached"
                                                    " stall"});
    std::vector<std::vector<double>> shares(apps.size());
    for (const std::uint64_t mhz : freqs) {
        std::vector<std::string> row{std::to_string(mhz)};
        for (std::size_t a = 0; a < apps.size(); ++a) {
            const double s = stallShare(apps[a], mhz);
            shares[a].push_back(s);
            row.push_back(stats::Table::percent(s, 1));
        }
        table.addRow(row);
    }
    table.print(std::cout);
    std::cout << "\n";

    bench::paperRef("user-level memory-stall behaviour shows the"
                    " same trend from 0.8 to 1.8 GHz; the 400 MHz"
                    " FPGA does not diminish memory latency effects");

    for (std::size_t a = 0; a < apps.size(); ++a) {
        bench::check(shares[a].back() > shares[a].front(),
                     apps[a] + ": stall share grows monotonically"
                               " with frequency");
        bool monotone = true;
        for (std::size_t i = 1; i < shares[a].size(); ++i)
            monotone = monotone
                && shares[a][i] >= shares[a][i - 1] - 0.01;
        bench::check(monotone,
                     apps[a] + ": trend is consistent across the"
                               " sweep");
        bench::check(shares[a].front() > 0.02,
                     apps[a] + ": memory stalls visible even at"
                               " 400 MHz");
    }
    return bench::result();
}
