/**
 * @file
 * Fig. 18 — Platform power and energy for the in-memory executions.
 *
 * Paper headlines: LegacyPC draws 18.9 W; LightPC and LightPC-B
 * draw 5.3 W (28% of LegacyPC — i.e. 72-73% lower) because there is
 * no DRAM refresh/background burden. End-to-end energy: LightPC 69%
 * better than LegacyPC; LightPC-B saves only 8.2% because its
 * blocking services stretch execution.
 */

#include <iostream>
#include <vector>

#include "bench_common.hh"
#include "platform/system.hh"
#include "stats/summary.hh"
#include "stats/table.hh"
#include "workload/spec.hh"

using namespace lightpc;
using namespace lightpc::platform;

namespace
{

RunResult
runOn(PlatformKind kind, const workload::WorkloadSpec &spec)
{
    SystemConfig config;
    config.kind = kind;
    config.scaleDivisor = 18000;
    System system(config);
    return system.run(spec);
}

} // namespace

int
main()
{
    bench::banner("Fig. 18", "platform power and energy");

    stats::Table table({"workload", "Legacy(W)", "B(W)", "Light(W)",
                        "Legacy(mJ)", "B(mJ)", "Light(mJ)"});
    stats::Summary legacy_w, b_w, light_w;
    std::vector<double> energy_saving, b_saving;

    for (const auto &spec : workload::tableTwo()) {
        const auto legacy = runOn(PlatformKind::LegacyPC, spec);
        const auto b = runOn(PlatformKind::LightPCB, spec);
        const auto light = runOn(PlatformKind::LightPC, spec);

        legacy_w.add(legacy.watts);
        b_w.add(b.watts);
        light_w.add(light.watts);
        energy_saving.push_back(1.0 - light.joules / legacy.joules);
        b_saving.push_back(1.0 - b.joules / legacy.joules);

        table.addRow({spec.name, stats::Table::num(legacy.watts, 1),
                      stats::Table::num(b.watts, 1),
                      stats::Table::num(light.watts, 1),
                      stats::Table::num(legacy.joules * 1e3, 1),
                      stats::Table::num(b.joules * 1e3, 1),
                      stats::Table::num(light.joules * 1e3, 1)});
    }
    table.print(std::cout);

    auto mean = [](const std::vector<double> &v) {
        stats::Summary s;
        for (double x : v)
            s.add(x);
        return s.mean();
    };
    const double power_cut = 1.0 - light_w.mean() / legacy_w.mean();
    std::cout << "\naverage power: LegacyPC "
              << stats::Table::num(legacy_w.mean(), 1)
              << " W, LightPC-B " << stats::Table::num(b_w.mean(), 1)
              << " W, LightPC "
              << stats::Table::num(light_w.mean(), 1) << " W ("
              << stats::Table::percent(power_cut, 0)
              << " lower)\naverage energy saving: LightPC "
              << stats::Table::percent(mean(energy_saving), 0)
              << ", LightPC-B "
              << stats::Table::percent(mean(b_saving), 0) << "\n\n";

    bench::paperRef("LegacyPC 18.9 W vs LightPC 5.3 W (73% lower);"
                    " energy 69% better; LightPC-B saves only 8.2%"
                    " energy");

    bench::check(power_cut > 0.60,
                 "LightPC cuts platform power by well over half");
    bench::check(legacy_w.mean() > 10.0 && legacy_w.mean() < 25.0,
                 "LegacyPC power near the paper's 18.9 W");
    bench::check(light_w.mean() > 3.0 && light_w.mean() < 8.0,
                 "LightPC power near the paper's 5.3 W");
    bench::check(mean(energy_saving) > 0.55,
                 "LightPC's end-to-end energy saving is large");
    bench::check(mean(b_saving) < mean(energy_saving),
                 "LightPC-B loses part of the gain to blocking"
                 " services");
    return bench::result();
}
