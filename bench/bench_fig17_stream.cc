/**
 * @file
 * Fig. 17 — STREAM sustainable memory bandwidth, LightPC normalized
 * to LegacyPC.
 *
 * STREAM's streaming writes bypass the cache-friendliness of real
 * workloads, so LightPC's gap vs DRAM widens here: the paper reports
 * 78% of LegacyPC bandwidth on average, with the read-heavier Add
 * and Triad kernels closer to LegacyPC than Copy and Scale.
 */

#include <iostream>
#include <map>
#include <memory>
#include <vector>

#include "bench_common.hh"
#include "platform/system.hh"
#include "stats/table.hh"
#include "workload/stream_bench.hh"

using namespace lightpc;
using namespace lightpc::platform;
using workload::StreamKernel;

namespace
{

double
bandwidthMBps(PlatformKind kind, StreamKernel kernel)
{
    SystemConfig config;
    config.kind = kind;
    System system(config);

    constexpr std::uint64_t elements = 1 << 19;  // 4 MB arrays
    std::vector<std::unique_ptr<workload::StreamWorkload>> owned;
    std::vector<cpu::InstrStream *> raw;
    for (std::uint32_t tid = 0; tid < 8; ++tid) {
        owned.push_back(std::make_unique<workload::StreamWorkload>(
            kernel, elements, System::workloadBase, tid, 8));
        raw.push_back(owned.back().get());
    }
    const auto result = system.runStreams(raw);
    double bytes = 0.0;
    for (const auto &stream : owned)
        bytes += static_cast<double>(stream->bytesMoved());
    return bytes / ticksToSec(result.elapsed) / 1e6;
}

} // namespace

int
main()
{
    bench::banner("Fig. 17", "STREAM bandwidth, LightPC vs LegacyPC");

    const StreamKernel kernels[] = {StreamKernel::Copy,
                                    StreamKernel::Scale,
                                    StreamKernel::Add,
                                    StreamKernel::Triad};

    stats::Table table({"kernel", "LegacyPC(MB/s)", "LightPC(MB/s)",
                        "ratio"});
    std::map<StreamKernel, double> ratio;
    double sum = 0.0;
    for (const StreamKernel kernel : kernels) {
        const double legacy = bandwidthMBps(PlatformKind::LegacyPC,
                                            kernel);
        const double light = bandwidthMBps(PlatformKind::LightPC,
                                           kernel);
        ratio[kernel] = light / legacy;
        sum += ratio[kernel];
        table.addRow({workload::streamKernelName(kernel),
                      stats::Table::num(legacy, 0),
                      stats::Table::num(light, 0),
                      stats::Table::percent(ratio[kernel], 1)});
    }
    table.print(std::cout);

    const double avg = sum / 4.0;
    std::cout << "\naverage LightPC/LegacyPC bandwidth: "
              << stats::Table::percent(avg, 1) << "\n\n";

    bench::paperRef("LightPC sustains ~78% of LegacyPC STREAM"
                    " bandwidth on average; Add/Triad (two loads per"
                    " store) closer to LegacyPC than Copy/Scale");

    bench::check(avg > 0.5 && avg < 1.0,
                 "bandwidth gap wider than real workloads but"
                 " bounded");
    bench::check((ratio[StreamKernel::Add]
                  + ratio[StreamKernel::Triad])
                     > (ratio[StreamKernel::Copy]
                        + ratio[StreamKernel::Scale]),
                 "read-heavier kernels sit closer to LegacyPC");
    return bench::result();
}
