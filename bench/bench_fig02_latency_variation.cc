/**
 * @file
 * Fig. 2b — PMEM DIMM vs bare-metal PRAM vs DRAM latency variation.
 *
 * Random 64 B accesses with mixed locality against (i) the
 * Optane-style PMEM DIMM complex, (ii) a bare PRAM die, and
 * (iii) a DRAM DIMM. The paper's findings: DIMM-level reads are
 * ~2.9x slower than bare PRAM and highly variable (multi-buffer
 * lookups + firmware); DIMM-level writes are 2.3-6.1x *faster* than
 * bare PRAM writes (absorbed by the internal buffers), at times
 * beating DRAM; bare PRAM reads sit within ~1.1x of DRAM.
 */

#include <iostream>

#include "bench_common.hh"
#include "mem/dram_device.hh"
#include "mem/pmem_dimm.hh"
#include "mem/pram_device.hh"
#include "sim/rng.hh"
#include "stats/histogram.hh"
#include "stats/table.hh"

using namespace lightpc;
using namespace lightpc::mem;

namespace
{

struct Series
{
    stats::Histogram hist;
};

constexpr int accesses = 200'000;

/** Mixed-locality address: half hot (buffer-resident), half cold. */
Addr
nextAddr(Rng &rng)
{
    const std::uint64_t hot = std::uint64_t(8) << 20;
    const std::uint64_t footprint = std::uint64_t(1) << 30;
    return (rng.chance(0.5) ? rng.below(hot) : rng.below(footprint))
        & ~std::uint64_t(63);
}

void
row(stats::Table &table, const std::string &name,
    const stats::Histogram &h)
{
    table.addRow({name, stats::Table::num(h.mean() / tickNs, 1),
                  stats::Table::num(
                      static_cast<double>(h.percentile(0.5)) / tickNs,
                      1),
                  stats::Table::num(
                      static_cast<double>(h.percentile(0.99)) / tickNs,
                      1),
                  stats::Table::num(
                      static_cast<double>(h.max()) / tickNs, 1),
                  stats::Table::num(h.cv(), 3)});
}

} // namespace

int
main()
{
    bench::banner("Fig. 2b", "PMEM DIMM internal-architecture latency"
                             " variation (random accesses)");

    PmemDimm dimm;
    PramDevice pram;
    DramDevice dram;
    Rng rng(2026);

    Series dimm_rd, dimm_wr, pram_rd, pram_wr, dram_rd, dram_wr;
    Tick t_dimm = 0, t_pram = 0, t_dram = 0;

    // Latency measurement, not saturation: pace requests with think
    // time, as a pointer-chasing latency probe does.
    constexpr Tick think = 250 * tickNs;

    for (int i = 0; i < accesses; ++i) {
        const Addr addr = nextAddr(rng);
        const bool is_read = rng.chance(0.6);
        MemRequest req;
        req.op = is_read ? MemOp::Read : MemOp::Write;
        req.addr = addr;

        const auto rd = dimm.access(req, t_dimm);
        (is_read ? dimm_rd : dimm_wr)
            .hist.add(rd.completeAt - t_dimm);
        t_dimm = rd.completeAt + think;

        const auto rp = is_read
            ? pram.read(t_pram)
            : pram.write(t_pram, addr, /*early_return=*/false);
        (is_read ? pram_rd : pram_wr)
            .hist.add(rp.completeAt - t_pram);
        t_pram = rp.completeAt + think;

        const auto rr = dram.access(req, t_dram);
        (is_read ? dram_rd : dram_wr)
            .hist.add(rr.completeAt - t_dram);
        t_dram = rr.completeAt + think;
    }

    stats::Table table({"series", "mean(ns)", "p50(ns)", "p99(ns)",
                        "max(ns)", "CV"});
    row(table, "PMEM-DIMM read", dimm_rd.hist);
    row(table, "PMEM-DIMM write", dimm_wr.hist);
    row(table, "bare-PRAM read", pram_rd.hist);
    row(table, "bare-PRAM write", pram_wr.hist);
    row(table, "DRAM read", dram_rd.hist);
    row(table, "DRAM write", dram_wr.hist);
    table.print(std::cout);

    const double rd_ratio = dimm_rd.hist.mean() / pram_rd.hist.mean();
    const double wr_ratio = pram_wr.hist.mean() / dimm_wr.hist.mean();
    const double pram_dram = pram_rd.hist.mean() / dram_rd.hist.mean();
    std::cout << "\nDIMM read / bare-PRAM read  = "
              << stats::Table::ratio(rd_ratio) << "\n"
              << "bare-PRAM write / DIMM write = "
              << stats::Table::ratio(wr_ratio) << "\n"
              << "bare-PRAM read / DRAM read   = "
              << stats::Table::ratio(pram_dram) << "\n\n";

    bench::paperRef("DIMM reads 2.9x bare PRAM; DIMM writes 2.3-6.1x"
                    " faster than bare PRAM; bare PRAM reads ~1.1x"
                    " DRAM (1.1% difference)");

    bench::check(rd_ratio > 1.8, "DIMM-level reads much slower than"
                                 " bare PRAM");
    bench::check(wr_ratio > 2.0 && wr_ratio < 10.0,
                 "DIMM-level writes 2-10x faster than bare PRAM");
    bench::check(pram_dram < 1.6,
                 "bare PRAM reads near DRAM reads");
    bench::check(dimm_rd.hist.cv() > 5.0 * pram_rd.hist.cv(),
                 "DIMM-level read latency is non-deterministic,"
                 " bare PRAM is flat");
    return bench::result();
}
