/**
 * @file
 * Engineering microbenchmarks (google-benchmark): throughput of the
 * simulator's hot paths. Not a paper figure — these guard the
 * simulator's own performance so that the figure benches stay fast.
 */

#include <benchmark/benchmark.h>

#include "cache/l1_cache.hh"
#include "mem/backing_store.hh"
#include "mem/pmem_dimm.hh"
#include "psm/psm.hh"
#include "psm/start_gap.hh"
#include "psm/xcc.hh"
#include "sim/event_queue.hh"
#include "sim/legacy_event_queue.hh"
#include "sim/rng.hh"

using namespace lightpc;

namespace
{

void
BM_PsmRead(benchmark::State &state)
{
    psm::Psm psm;
    Rng rng(1);
    Tick t = 0;
    mem::MemRequest req;
    req.op = mem::MemOp::Read;
    for (auto _ : state) {
        req.addr = rng.below(std::uint64_t(1) << 30) & ~63ull;
        t = psm.access(req, t).completeAt;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PsmRead);

void
BM_PsmWrite(benchmark::State &state)
{
    psm::Psm psm;
    Rng rng(2);
    Tick t = 0;
    mem::MemRequest req;
    req.op = mem::MemOp::Write;
    for (auto _ : state) {
        req.addr = rng.below(std::uint64_t(1) << 30) & ~63ull;
        t = psm.access(req, t).completeAt;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PsmWrite);

void
BM_PmemDimmAccess(benchmark::State &state)
{
    mem::PmemDimm dimm;
    Rng rng(3);
    Tick t = 0;
    mem::MemRequest req;
    for (auto _ : state) {
        req.op = rng.chance(0.6) ? mem::MemOp::Read
                                 : mem::MemOp::Write;
        req.addr = rng.below(std::uint64_t(1) << 28) & ~63ull;
        t = dimm.access(req, t).completeAt + 200 * tickNs;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PmemDimmAccess);

void
BM_StartGapRemap(benchmark::State &state)
{
    psm::StartGapParams params;
    params.lines = 1 << 24;
    psm::StartGap sg(params);
    Rng rng(4);
    for (auto _ : state) {
        benchmark::DoNotOptimize(sg.remap(rng.below(params.lines)));
        sg.recordWrite();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StartGapRemap);

void
BM_XccReconstruct(benchmark::State &state)
{
    Rng rng(5);
    psm::HalfLine a, b;
    for (auto &x : a)
        x = static_cast<std::uint8_t>(rng.next());
    for (auto &x : b)
        x = static_cast<std::uint8_t>(rng.next());
    const psm::HalfLine parity = psm::XccCodec::encode(a, b);
    for (auto _ : state)
        benchmark::DoNotOptimize(psm::XccCodec::reconstruct(b, parity));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_XccReconstruct);

void
BM_EventQueueChurn(benchmark::State &state)
{
    EventQueue eq;
    Tick t = 0;
    for (auto _ : state) {
        t += 10;
        eq.schedule(t, [] {});
        eq.step();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueueChurn);

/** The pre-pooling kernel on the identical workload, for the ratio. */
void
BM_LegacyEventQueueChurn(benchmark::State &state)
{
    LegacyEventQueue eq;
    Tick t = 0;
    for (auto _ : state) {
        t += 10;
        eq.schedule(t, [] {});
        eq.step();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LegacyEventQueueChurn);

/** Churn with a 32-byte capture: inline for the pooled kernel, one
 *  malloc/free per event for std::function. */
void
BM_EventQueueChurnCapture32(benchmark::State &state)
{
    EventQueue eq;
    Tick t = 0;
    std::uint64_t sink[4] = {1, 2, 3, 4};
    for (auto _ : state) {
        t += 10;
        eq.schedule(t, [sink] { benchmark::DoNotOptimize(sink[0]); });
        eq.step();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueueChurnCapture32);

void
BM_LegacyEventQueueChurnCapture32(benchmark::State &state)
{
    LegacyEventQueue eq;
    Tick t = 0;
    std::uint64_t sink[4] = {1, 2, 3, 4};
    for (auto _ : state) {
        t += 10;
        eq.schedule(t, [sink] { benchmark::DoNotOptimize(sink[0]); });
        eq.step();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LegacyEventQueueChurnCapture32);

void
BM_BackingStoreWrite64(benchmark::State &state)
{
    mem::BackingStore store;
    Rng rng(6);
    std::uint8_t line[64] = {};
    for (auto _ : state) {
        const mem::Addr addr =
            rng.below(std::uint64_t(64) << 20) & ~63ull;
        store.write(addr, line, sizeof(line));
    }
    state.SetItemsProcessed(state.iterations());
    state.SetBytesProcessed(state.iterations() * 64);
}
BENCHMARK(BM_BackingStoreWrite64);

} // namespace

BENCHMARK_MAIN();
