/**
 * @file
 * Ablation (Section V-B / Fig. 13) — Bare-NVDIMM channel layout:
 * LightPC's dual-channel design vs a DRAM-like rank.
 *
 * The DRAM-like layout drives all eight PRAM devices with one chip
 * enable: every access occupies the whole rank at 256 B granularity
 * and 64 B writes pay a read-modify cycle. The dual-channel design
 * serves a 64 B line from one 2-device group, leaving the other
 * three groups free (intra-DIMM parallelism).
 */

#include <iostream>
#include <vector>

#include "bench_common.hh"
#include "platform/system.hh"
#include "stats/summary.hh"
#include "stats/table.hh"
#include "workload/spec.hh"

using namespace lightpc;
using namespace lightpc::platform;

namespace
{

RunResult
runLayout(psm::DimmLayout layout, const workload::WorkloadSpec &spec)
{
    SystemConfig config;
    config.kind = PlatformKind::LightPC;
    config.scaleDivisor = 18000;
    psm::PsmParams params =
        psmParamsFor(PlatformKind::LightPC, config.pmemDimms);
    params.dimm.layout = layout;
    config.psmParams = params;
    System system(config);
    return system.run(spec);
}

} // namespace

int
main()
{
    bench::banner("Ablation", "Bare-NVDIMM layout: dual-channel vs"
                              " DRAM-like rank");

    const char *names[] = {"SNAP", "astar", "KeyDB", "Memcached",
                           "gcc", "wrf"};
    stats::Table table({"workload", "dual(Mc)", "rank(Mc)",
                        "rank/dual", "dual rdLat(ns)",
                        "rank rdLat(ns)"});
    std::vector<double> slowdowns;
    for (const char *name : names) {
        const auto &spec = workload::findWorkload(name);
        const auto dual =
            runLayout(psm::DimmLayout::DualChannel, spec);
        const auto rank = runLayout(psm::DimmLayout::DramLike, spec);
        const double slow = static_cast<double>(rank.elapsed)
            / dual.elapsed;
        slowdowns.push_back(slow);
        table.addRow(
            {name,
             stats::Table::num(static_cast<double>(dual.cycles) / 1e6,
                               1),
             stats::Table::num(static_cast<double>(rank.cycles) / 1e6,
                               1),
             stats::Table::ratio(slow),
             stats::Table::num(dual.memReadLatencyNs, 1),
             stats::Table::num(rank.memReadLatencyNs, 1)});
    }
    table.print(std::cout);

    const double avg = stats::geomean(slowdowns);
    std::cout << "\nDRAM-like rank slowdown (geomean): "
              << stats::Table::ratio(avg) << "\n\n";

    bench::paperRef("Section V-B: the DRAM-like channel wastes PRAM"
                    " resources per 64 B service and suspends more"
                    " incoming requests; dual-channel serves lines"
                    " from one group with the rest affordable");

    bench::check(avg > 1.02,
                 "the dual-channel layout outperforms the DRAM-like"
                 " rank");
    double worst = 0.0;
    for (double s : slowdowns)
        worst = std::max(worst, s);
    bench::check(worst > 1.1,
                 "parallel workloads lose visibly on the rank"
                 " layout");
    return bench::result();
}
