/**
 * @file
 * Fig. 19 — Execution cycles of the persistent-computing platforms,
 * normalized to LightPC, with one power down mid-run.
 *
 * Four orthogonal persistence mechanisms execute every workload:
 *  - LightPC: SnG Stop at the power event, Go on recovery.
 *  - SysPC:   runs free on LegacyPC; dumps the full system image at
 *             the power event and reloads it on recovery.
 *  - A-CheckPC: synchronous per-function stack/heap checkpoints
 *             (stream-level copies), cold reboot + restore on
 *             recovery.
 *  - S-CheckPC: periodic (1 Hz at paper scale) BLCR-style VM dumps
 *             with stop-the-world semantics, cold reboot + restore.
 *
 * Execution is measured at reduced scale and extrapolated to the
 * Table II full-run length; persistence control runs at natural
 * scale (image sizes do not shrink with the workload sample).
 *
 * Paper: LightPC shorter than SysPC / A-CheckPC / S-CheckPC by
 * 1.6x / 8.8x / 2.4x; SysPC 5.5x faster than A-CheckPC; S-CheckPC
 * cuts A-CheckPC by 73% but stays 52% behind SysPC.
 */

#include <iostream>
#include <memory>
#include <vector>

#include "bench_common.hh"
#include "mem/timed_mem.hh"
#include "persist/checkpoint.hh"
#include "platform/system.hh"
#include "stats/summary.hh"
#include "stats/table.hh"
#include "workload/spec.hh"
#include "workload/synthetic.hh"

using namespace lightpc;
using namespace lightpc::platform;

namespace
{

constexpr std::uint64_t scale = 30000;

/** Extrapolated full-run execution time. */
Tick
fullExec(Tick measured)
{
    return measured * scale;
}

struct MechanismResult
{
    Tick execTicks = 0;     ///< benchmark execution (full scale)
    Tick persistTicks = 0;  ///< persistence control (full scale)

    Tick total() const { return execTicks + persistTicks; }
};

MechanismResult
runLightPc(const workload::WorkloadSpec &spec)
{
    SystemConfig config;
    config.kind = PlatformKind::LightPC;
    config.scaleDivisor = scale;
    System system(config);
    const auto run = system.run(spec);

    const auto stop = system.sng().stop(system.eventQueue().now());
    const auto go = system.sng().resume(stop.offlineDone + tickMs);

    MechanismResult result;
    result.execTicks = fullExec(run.elapsed);
    result.persistTicks = stop.totalTicks() + go.totalTicks();
    return result;
}

MechanismResult
runSysPc(const workload::WorkloadSpec &spec)
{
    SystemConfig config;
    config.kind = PlatformKind::LegacyPC;
    config.scaleDivisor = scale;
    System system(config);
    const auto run = system.run(spec);

    mem::TimedMem pmem(system.memoryPort());
    persist::SysPc syspc(pmem);
    const std::uint64_t image = system.kernel().systemImageBytes();
    const Tick t0 = system.eventQueue().now();
    const Tick dumped = syspc.dumpImage(t0, image);
    const Tick loaded = syspc.loadImage(dumped, image);

    MechanismResult result;
    result.execTicks = fullExec(run.elapsed);
    result.persistTicks = loaded - t0;
    return result;
}

MechanismResult
runACheckPc(const workload::WorkloadSpec &spec)
{
    SystemConfig config;
    config.kind = PlatformKind::LegacyPC;
    config.scaleDivisor = scale;

    // Plain run for the execution share...
    Tick plain;
    {
        System system(config);
        plain = system.run(spec).elapsed;
    }

    // ...then the checkpointing run with per-function copies.
    System system(config);
    workload::SyntheticConfig wconfig;
    wconfig.scaleDivisor = scale;
    auto streams = workload::makeStreams(spec, wconfig,
                                         system.coreCount(),
                                         System::workloadBase);
    persist::ACheckPcParams aparams;
    std::vector<std::unique_ptr<persist::ACheckPcStream>> wrapped;
    std::vector<cpu::InstrStream *> raw;
    for (std::size_t i = 0; i < streams.size(); ++i) {
        aparams.seed = 97 + i;
        wrapped.push_back(std::make_unique<persist::ACheckPcStream>(
            *streams[i], aparams));
        raw.push_back(wrapped.back().get());
    }
    const auto run = system.runStreams(raw);

    // Recovery: kernel/machine state is gone -> cold reboot, then
    // restore the last checkpoint set.
    mem::TimedMem pmem(system.memoryPort());
    persist::ImageCosts costs;
    std::uint64_t ckpt_bytes = 0;
    for (const auto &stream : wrapped)
        ckpt_bytes += stream->copiedBytes() / 64;  // resident set
    const Tick t0 = system.eventQueue().now();
    Tick recovered = t0 + costs.coldReboot;
    recovered = pmem.readSpan(recovered, 0, std::max<std::uint64_t>(
        ckpt_bytes, 64 << 20));

    MechanismResult result;
    result.execTicks = fullExec(plain);
    result.persistTicks =
        fullExec(run.elapsed - plain) + (recovered - t0);
    return result;
}

MechanismResult
runSCheckPc(const workload::WorkloadSpec &spec)
{
    SystemConfig config;
    config.kind = PlatformKind::LegacyPC;
    config.scaleDivisor = scale;
    System system(config);
    const auto run = system.run(spec);
    const Tick exec_full = fullExec(run.elapsed);

    // One BLCR dump per second of full-scale execution,
    // stop-the-world while the VM image goes out.
    mem::TimedMem pmem(system.memoryPort());
    persist::SCheckPc blcr(pmem, tickSec);
    const std::uint64_t vm_bytes =
        (std::uint64_t(7) << 28) + spec.footprintBytes * 6;
    const std::uint64_t dumps =
        std::max<std::uint64_t>(1, exec_full / blcr.period());
    Tick persist_ticks = 0;
    for (std::uint64_t i = 0; i < std::min<std::uint64_t>(dumps, 4);
         ++i)
        persist_ticks += blcr.dump(system.eventQueue().now(),
                                   vm_bytes)
            - system.eventQueue().now();
    // Dumps beyond the sampled few cost the same.
    persist_ticks = persist_ticks * dumps
        / std::min<std::uint64_t>(dumps, 4);

    // Recovery: cold reboot + restore the last image.
    persist::ImageCosts costs;
    const Tick t0 = system.eventQueue().now();
    Tick recovered = t0 + costs.coldReboot;
    recovered = blcr.restore(recovered, vm_bytes);
    persist_ticks += recovered - t0;

    MechanismResult result;
    result.execTicks = exec_full;
    result.persistTicks = persist_ticks;
    return result;
}

double
cyclesB(Tick t)
{
    return static_cast<double>(t / periodFromMhz(1600)) / 1e9;
}

} // namespace

int
main()
{
    bench::banner("Fig. 19", "persistent computing: execution +"
                             " persistence-control cycles");

    stats::Table table({"workload", "LightPC(Bc)", "SysPC", "A-Check",
                        "S-Check", "Sys/Light", "A/Light",
                        "S/Light"});
    std::vector<double> sys_norm, a_norm, s_norm;
    std::vector<double> persist_share_light;

    for (const auto &spec : workload::tableTwo()) {
        const auto light = runLightPc(spec);
        const auto sys = runSysPc(spec);
        const auto acheck = runACheckPc(spec);
        const auto scheck = runSCheckPc(spec);

        const double ns = static_cast<double>(sys.total())
            / light.total();
        const double na = static_cast<double>(acheck.total())
            / light.total();
        const double nss = static_cast<double>(scheck.total())
            / light.total();
        sys_norm.push_back(ns);
        a_norm.push_back(na);
        s_norm.push_back(nss);
        persist_share_light.push_back(
            static_cast<double>(light.persistTicks)
            / light.total());

        table.addRow({spec.name,
                      stats::Table::num(cyclesB(light.total()), 2),
                      stats::Table::num(cyclesB(sys.total()), 2),
                      stats::Table::num(cyclesB(acheck.total()), 2),
                      stats::Table::num(cyclesB(scheck.total()), 2),
                      stats::Table::ratio(ns), stats::Table::ratio(na),
                      stats::Table::ratio(nss)});
    }
    table.print(std::cout);

    const double avg_sys = stats::geomean(sys_norm);
    const double avg_a = stats::geomean(a_norm);
    const double avg_s = stats::geomean(s_norm);
    stats::Summary share;
    for (double x : persist_share_light)
        share.add(x);
    std::cout << "\nnormalized to LightPC (geomean): SysPC "
              << stats::Table::ratio(avg_sys) << "  A-CheckPC "
              << stats::Table::ratio(avg_a) << "  S-CheckPC "
              << stats::Table::ratio(avg_s) << "\n"
              << "LightPC persistence-control share of total: "
              << stats::Table::percent(share.mean(), 2) << "\n\n";

    bench::paperRef("LightPC beats SysPC/A-CheckPC/S-CheckPC by"
                    " 1.6x/8.8x/2.4x; SnG accounts for only 0.3% of"
                    " total execution; SysPC 5.5x faster than"
                    " A-CheckPC; S-CheckPC 52% behind SysPC");

    bench::check(avg_sys > 1.0, "SysPC pays for its system images");
    bench::check(avg_a > avg_s && avg_s > avg_sys,
                 "ordering: LightPC < SysPC < S-CheckPC <"
                 " A-CheckPC");
    bench::check(avg_a > 3.0,
                 "per-function checkpointing is several times"
                 " slower");
    bench::check(share.mean() < 0.02,
                 "SnG is a negligible share of LightPC execution");
    return bench::result();
}
